// Command hle-demo runs a configurable lock-elision demonstration: N
// threads over a red-black tree protected by one global lock, under a
// chosen lock and scheme, printing throughput, abort breakdown, and
// time-sliced serialization dynamics.
//
// Usage:
//
//	hle-demo -lock MCS -scheme HLE -threads 8 -size 128 -updates 20
//	hle-demo -lock MCS -scheme HLE-SCM ...
package main

import (
	"flag"
	"fmt"
	"os"

	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/stats"
	"hle/internal/tsx"
)

func main() {
	var (
		lock    = flag.String("lock", "MCS", "lock: TTAS, MCS, Ticket, AdjTicket, CLH, AdjCLH")
		scheme  = flag.String("scheme", "HLE", "scheme: Standard, HLE, HLE-HWExt, RTM-LE, HLE-SCM, HLE-SCM-multi, Pes-SLR, Opt-SLR, Opt-SLR-SCM")
		threads = flag.Int("threads", 8, "simulated hardware threads")
		size    = flag.Int("size", 128, "red-black tree size")
		updates = flag.Int("updates", 20, "update percentage (split evenly insert/delete)")
		budget  = flag.Uint64("budget", 2_000_000, "virtual-cycle budget")
		seed    = flag.Int64("seed", 1, "random seed")
		hwext   = flag.Bool("hwext", false, "enable the Chapter 7 hardware extension")
	)
	flag.Parse()

	cfg := tsx.DefaultConfig(*threads)
	cfg.Seed = *seed
	cfg.MemWords = *size*16 + 1<<16
	cfg.HWExt = *hwext

	mix := harness.Mix{InsertPct: *updates / 2, DeletePct: *updates / 2}
	m := tsx.NewMachine(cfg)
	var w harness.Workload
	var s core.Scheme
	m.RunOne(func(t *tsx.Thread) {
		w = harness.NewRBTree(t, *size, mix)
		w.Populate(t)
		spec := harness.SchemeSpec{Scheme: *scheme, Lock: *lock}
		defer func() {
			if r := recover(); r != nil {
				fmt.Fprintf(os.Stderr, "hle-demo: %v\n", r)
				os.Exit(1)
			}
		}()
		s = spec.Build(t)
	})
	res := harness.Run(m, s, w, harness.Config{
		Threads:     *threads,
		CycleBudget: *budget,
		SliceCycles: *budget / 40,
	})

	fmt.Printf("workload: %s, %d threads, %s %s lock, %d virtual cycles\n\n",
		w.Name(), *threads, *scheme, *lock, *budget)
	fmt.Printf("operations           %10d\n", res.Ops.Ops)
	fmt.Printf("throughput           %10.1f ops/Mcycle\n", res.Throughput)
	fmt.Printf("attempts/op          %10.2f\n", res.Ops.AttemptsPerOp())
	fmt.Printf("non-spec fraction    %10.3f\n", res.Ops.NonSpecFraction())
	fmt.Printf("transactions begun   %10d\n", res.TSX.Begun)
	fmt.Printf("transactions commit  %10d\n", res.TSX.Committed)
	fmt.Printf("aborts               %10d\n", res.TSX.TotalAborts())
	for c := tsx.CauseConflict; c <= tsx.CauseHLERestore; c++ {
		if n := res.TSX.Aborted[c]; n > 0 {
			fmt.Printf("  %-18s %10d\n", c.String(), n)
		}
	}
	fmt.Println("\nserialization dynamics (non-spec fraction per slot):")
	fmt.Printf("  [%s]\n", stats.Sparkline(res.Timeline.NonSpecFractions(), 1))
	fmt.Println("throughput per slot (normalized to mean):")
	fmt.Printf("  [%s]\n", stats.Sparkline(res.Timeline.NormalizedOps(), 2))
}
