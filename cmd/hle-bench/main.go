// Command hle-bench regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	hle-bench -list
//	hle-bench -fig 3.1 [-quick] [-threads 8] [-budget 2000000] [-seed 1] [-parallel 4]
//	hle-bench -all [-quick] [-timing bench.json]
//	hle-bench -fig 3.1 -profile json -profile-out profiles.json
//	hle-bench -explore [-quick] [-parallel 4]
//
// -explore replaces figure generation with the bounded model-checking
// sweep (internal/explore): every scheme crossed with every sweep lock,
// reporting states, schedules and pruning counts per configuration. The
// report is deterministic at any -parallel; -quick selects the CI tier.
//
// -profile attaches the abort-attribution profiler (internal/obs) to every
// experiment point and emits each point's profile — cause breakdown,
// conflict heatmap, occupancy waterfall, latency histograms — as json or
// text, after the tables (or to -profile-out). Profiling is passive: the
// tables are byte-identical with it on or off, and profile output is
// deterministic for a fixed seed at any -parallel.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hle/internal/explore"
	"hle/internal/figures"
	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/sim"
	"hle/internal/stats"
)

// figTiming is one per-figure record of the -timing report.
type figTiming struct {
	ID           string  `json:"id"`
	Seconds      float64 `json:"seconds"`
	Points       uint64  `json:"points"`
	Grants       uint64  `json:"grants"`
	GrantsPerSec float64 `json:"grants_per_sec"`
}

// timingReport is the -timing output: the run's configuration and the
// wall-clock cost of each figure generated.
type timingReport struct {
	Parallel int         `json:"parallel"`
	HostCPUs int         `json:"host_cpus"`
	Threads  int         `json:"threads"`
	Quick    bool        `json:"quick"`
	Seed     int64       `json:"seed"`
	Figures  []figTiming `json:"figures"`
	Total    float64     `json:"total_seconds"`
}

func main() {
	var (
		figID     = flag.String("fig", "", "figure id to run (see -list)")
		all       = flag.Bool("all", false, "run every figure")
		list      = flag.Bool("list", false, "list available figures")
		doExplore = flag.Bool("explore", false,
			"run the bounded model-checking sweep (every scheme x sweep lock) instead of figures; -quick selects the CI tier")
		quick    = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		threads  = flag.Int("threads", 8, "simulated hardware threads")
		budget   = flag.Uint64("budget", 0, "virtual-cycle budget per measurement (0 = default)")
		seed     = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"host workers experiment points fan out across (output is identical for any value)")
		timing     = flag.String("timing", "", "write per-figure wall-clock/point-count JSON to this file")
		profile    = flag.String("profile", "", "collect per-point abort-attribution profiles: json or text")
		profileOut = flag.String("profile-out", "", "write -profile output to this file instead of stdout")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *profile != "" && *profile != "json" && *profile != "text" {
		fmt.Fprintf(os.Stderr, "hle-bench: -profile must be json or text, got %q\n", *profile)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hle-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hle-bench: %v\n", err)
			}
		}()
	}

	opts := figures.Options{
		Threads:  *threads,
		Budget:   *budget,
		Quick:    *quick,
		Seed:     *seed,
		Parallel: *parallel,
	}

	// namedProfile pairs one experiment point's profile with its figure
	// and point coordinates for the -profile report.
	type namedProfile struct {
		Figure  string       `json:"figure"`
		Point   string       `json:"point"`
		Profile *obs.Profile `json:"profile"`
	}
	var profiles []namedProfile
	var curFig string
	if *profile != "" {
		opts.Profile = &obs.Options{}
		// Figures run serially and deliver points in declaration order,
		// so appending here keeps the report deterministic.
		opts.ProfileSink = func(name string, p *obs.Profile) {
			profiles = append(profiles, namedProfile{Figure: curFig, Point: name, Profile: p})
		}
	}

	report := timingReport{
		Parallel: *parallel,
		HostCPUs: runtime.NumCPU(),
		Threads:  *threads,
		Quick:    *quick,
		Seed:     *seed,
	}
	// timeFigure runs one generator, records its wall clock, how many
	// experiment points it executed, and its scheduler-grant throughput
	// (grants/sec is the simulator's unit of useful work — each grant is
	// one token handoff plus the simulated execution it admits), and
	// returns its tables.
	timeFigure := func(f figures.Figure) []*stats.Table {
		curFig = f.ID
		beforePoints := harness.PointsRun()
		beforeGrants := sim.Grants()
		start := time.Now()
		tables := f.Run(opts)
		secs := time.Since(start).Seconds()
		ft := figTiming{
			ID:      f.ID,
			Seconds: secs,
			Points:  harness.PointsRun() - beforePoints,
			Grants:  sim.Grants() - beforeGrants,
		}
		if secs > 0 {
			ft.GrantsPerSec = float64(ft.Grants) / secs
		}
		report.Figures = append(report.Figures, ft)
		return tables
	}

	switch {
	case *doExplore:
		runExplore(*quick, *parallel)
	case *list:
		for _, f := range figures.All() {
			fmt.Printf("%-8s %s\n", f.ID, f.Title)
		}
	case *all:
		for _, f := range figures.All() {
			fmt.Printf("\n### Figure %s — %s\n\n", f.ID, f.Title)
			printTables(timeFigure(f), *csv)
		}
	case *figID != "":
		f := figures.ByID(*figID)
		if f == nil {
			ids := make([]string, 0, len(figures.All()))
			for _, f := range figures.All() {
				ids = append(ids, f.ID)
			}
			fmt.Fprintf(os.Stderr, "hle-bench: unknown figure %q; valid ids: %s\n",
				*figID, strings.Join(ids, ", "))
			os.Exit(1)
		}
		fmt.Printf("### Figure %s — %s\n\n", f.ID, f.Title)
		printTables(timeFigure(*f), *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *profile != "" {
		var buf bytes.Buffer
		if *profile == "json" {
			out, err := json.MarshalIndent(profiles, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "hle-bench: marshaling profiles: %v\n", err)
				os.Exit(1)
			}
			buf.Write(out)
			buf.WriteByte('\n')
		} else {
			for _, np := range profiles {
				fmt.Fprintf(&buf, "== %s %s ==\n%s\n", np.Figure, np.Point, np.Profile.Text())
			}
		}
		if *profileOut != "" {
			if err := os.WriteFile(*profileOut, buf.Bytes(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hle-bench: writing profiles: %v\n", err)
				os.Exit(1)
			}
		} else {
			os.Stdout.Write(buf.Bytes())
		}
	}

	if *timing != "" && len(report.Figures) > 0 {
		for _, ft := range report.Figures {
			report.Total += ft.Seconds
		}
		out, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*timing, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: writing timing report: %v\n", err)
			os.Exit(1)
		}
	}
}

// runExplore runs the bounded model-checking sweep and prints one report
// line per configuration, then a totals line. The output is deterministic
// at any -parallel. Any violation prints its counterexample schedule and
// diagnostic dump and exits nonzero.
func runExplore(quick bool, parallel int) {
	var states, schedules, replays, truncated uint64
	violations := 0
	start := time.Now()
	for _, cfg := range explore.Battery(quick) {
		cfg.Parallel = parallel
		r := explore.Run(cfg)
		fmt.Println(r.Line())
		states += r.States
		schedules += r.Schedules
		replays += r.Replays
		truncated += r.Truncated
		if r.Violation != nil {
			violations++
			fmt.Printf("\n%s: %s\n%s\n", cfg.Label(), r.Violation.Error(), r.Violation.Failure.Dump())
		}
	}
	// Wall time goes to stderr so stdout stays byte-identical at any
	// -parallel value — the determinism check diffs stdout directly.
	fmt.Printf("total: states=%d schedules=%d replays=%d truncated=%d violations=%d\n",
		states, schedules, replays, truncated, violations)
	fmt.Fprintf(os.Stderr, "explore: %.1fs\n", time.Since(start).Seconds())
	if violations > 0 {
		os.Exit(1)
	}
}

func printTables(tables []*stats.Table, csv bool) {
	for _, tb := range tables {
		if csv {
			tb.FprintCSV(os.Stdout)
		} else {
			tb.Fprint(os.Stdout)
		}
		fmt.Println()
	}
}
