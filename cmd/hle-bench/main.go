// Command hle-bench regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	hle-bench -list
//	hle-bench -fig 3.1 [-quick] [-threads 8] [-budget 2000000] [-seed 1]
//	hle-bench -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"hle/internal/figures"
)

func main() {
	var (
		figID   = flag.String("fig", "", "figure id to run (see -list)")
		all     = flag.Bool("all", false, "run every figure")
		list    = flag.Bool("list", false, "list available figures")
		quick   = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
		csv     = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		threads = flag.Int("threads", 8, "simulated hardware threads")
		budget  = flag.Uint64("budget", 0, "virtual-cycle budget per measurement (0 = default)")
		seed    = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	)
	flag.Parse()

	opts := figures.Options{
		Threads: *threads,
		Budget:  *budget,
		Quick:   *quick,
		Seed:    *seed,
	}

	switch {
	case *list:
		for _, f := range figures.All() {
			fmt.Printf("%-8s %s\n", f.ID, f.Title)
		}
	case *all:
		figures.RunAll(os.Stdout, opts)
	case *figID != "":
		f := figures.ByID(*figID)
		if f == nil {
			fmt.Fprintf(os.Stderr, "hle-bench: unknown figure %q (try -list)\n", *figID)
			os.Exit(1)
		}
		fmt.Printf("### Figure %s — %s\n\n", f.ID, f.Title)
		for _, tb := range f.Run(opts) {
			if *csv {
				tb.FprintCSV(os.Stdout)
			} else {
				tb.Fprint(os.Stdout)
			}
			fmt.Println()
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
