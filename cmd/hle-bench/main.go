// Command hle-bench regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	hle-bench -list
//	hle-bench -fig 3.1 [-quick] [-threads 8] [-budget 2000000] [-seed 1] [-parallel 4]
//	hle-bench -all [-quick] [-timing bench.json]
//	hle-bench -fig 3.1 -profile json -profile-out profiles.json
//	hle-bench -explore [-quick] [-parallel 4]
//	hle-bench -shard-bench shard.json [-quick] [-shard-guard BENCH_shard.json]
//	hle-bench -place-bench place.json [-quick] [-place-guard BENCH_place.json]
//
// -shard-bench runs the sharded-store sweep (figure ext-shard) and writes
// its benchmark record — every point's throughput, the two regimes, the
// skew crossover, and the wall clock — to the given file; -shard-guard
// compares the wall clock against the quick-tier time recorded in
// BENCH_shard.json and fails on a >2x regression.
//
// -place-bench runs the allocator-placement sweep (figure ext-place) and
// writes its benchmark record — every (workload, policy, scheme) point,
// the auto-pad trajectory (plan lines, packed vs auto-pad data-conflict
// aborts), and the wall clock — to the given file; -place-guard is the
// matching >2x wall-clock gate against BENCH_place.json.
//
// -explore replaces figure generation with the bounded model-checking
// sweep (internal/explore): every scheme crossed with every sweep lock,
// reporting states, schedules and pruning counts per configuration. The
// report is deterministic at any -parallel; -quick selects the CI tier.
//
// -profile attaches the abort-attribution profiler (internal/obs) to every
// experiment point and emits each point's profile — cause breakdown,
// conflict heatmap, occupancy waterfall, latency histograms — as json or
// text, after the tables (or to -profile-out). Profiling is passive: the
// tables are byte-identical with it on or off, and profile output is
// deterministic for a fixed seed at any -parallel.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hle/internal/explore"
	"hle/internal/figures"
	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/sim"
	"hle/internal/stats"
)

// figTiming is one per-figure record of the -timing report.
type figTiming struct {
	ID           string  `json:"id"`
	Seconds      float64 `json:"seconds"`
	Points       uint64  `json:"points"`
	Grants       uint64  `json:"grants"`
	GrantsPerSec float64 `json:"grants_per_sec"`
}

// timingReport is the -timing output: the run's configuration and the
// wall-clock cost of each figure generated.
type timingReport struct {
	Parallel int         `json:"parallel"`
	HostCPUs int         `json:"host_cpus"`
	Threads  int         `json:"threads"`
	Quick    bool        `json:"quick"`
	Seed     int64       `json:"seed"`
	Figures  []figTiming `json:"figures"`
	Total    float64     `json:"total_seconds"`
}

func main() {
	var (
		figID     = flag.String("fig", "", "figure id to run (see -list)")
		all       = flag.Bool("all", false, "run every figure")
		list      = flag.Bool("list", false, "list available figures")
		doExplore = flag.Bool("explore", false,
			"run the bounded model-checking sweep (every scheme x sweep lock) instead of figures; -quick selects the CI tier")
		quick    = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		threads  = flag.Int("threads", 8, "simulated hardware threads")
		budget   = flag.Uint64("budget", 0, "virtual-cycle budget per measurement (0 = default)")
		seed     = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"host workers experiment points fan out across (output is identical for any value)")
		timing     = flag.String("timing", "", "write per-figure (or, with -explore, per-configuration) wall-clock JSON to this file and print a timing summary to stderr")
		chain      = flag.Int("chain", 0, "explore: frontiers one replay may bank past its own node (0 = default 2, negative = none)")
		cacheMB    = flag.Int("cache-mb", 0, "explore: banked-outcome cache budget in MiB (0 = default 64, negative = unlimited)")
		scratch    = flag.Bool("scratch", false, "explore: replay every node from scratch (same as -chain -1; the differential baseline)")
		validate   = flag.Bool("validate-forks", false, "explore: cross-check every forked node against a scratch replay (slow; audits bit-identity)")
		guard      = flag.String("explore-guard", "", "explore: fail if the sweep runs over 2x the quick-tier wall clock recorded in this BENCH_explore.json")
		shardBench = flag.String("shard-bench", "", "run the sharded-store sweep (ext-shard) and write its benchmark record (points, regimes, crossover, wall clock) to this JSON file")
		shardGuard = flag.String("shard-guard", "", "with -shard-bench: fail if the sweep runs over 2x the quick-tier wall clock recorded in this BENCH_shard.json")
		placeBench = flag.String("place-bench", "", "run the placement-policy sweep (ext-place) and write its benchmark record (points, auto-pad trajectory, wall clock) to this JSON file")
		placeGuard = flag.String("place-guard", "", "with -place-bench: fail if the sweep runs over 2x the quick-tier wall clock recorded in this BENCH_place.json")
		profile    = flag.String("profile", "", "collect per-point abort-attribution profiles: json or text")
		profileOut = flag.String("profile-out", "", "write -profile output to this file instead of stdout")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *profile != "" && *profile != "json" && *profile != "text" {
		fmt.Fprintf(os.Stderr, "hle-bench: -profile must be json or text, got %q\n", *profile)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hle-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hle-bench: %v\n", err)
			}
		}()
	}

	opts := figures.Options{
		Threads:  *threads,
		Budget:   *budget,
		Quick:    *quick,
		Seed:     *seed,
		Parallel: *parallel,
	}

	// namedProfile pairs one experiment point's profile with its figure
	// and point coordinates for the -profile report.
	type namedProfile struct {
		Figure  string       `json:"figure"`
		Point   string       `json:"point"`
		Profile *obs.Profile `json:"profile"`
	}
	var profiles []namedProfile
	var curFig string
	if *profile != "" {
		opts.Profile = &obs.Options{}
		// Figures run serially and deliver points in declaration order,
		// so appending here keeps the report deterministic.
		opts.ProfileSink = func(name string, p *obs.Profile) {
			profiles = append(profiles, namedProfile{Figure: curFig, Point: name, Profile: p})
		}
	}

	report := timingReport{
		Parallel: *parallel,
		HostCPUs: runtime.NumCPU(),
		Threads:  *threads,
		Quick:    *quick,
		Seed:     *seed,
	}
	// timeFigure runs one generator, records its wall clock, how many
	// experiment points it executed, and its scheduler-grant throughput
	// (grants/sec is the simulator's unit of useful work — each grant is
	// one token handoff plus the simulated execution it admits), and
	// returns its tables.
	timeFigure := func(f figures.Figure) []*stats.Table {
		curFig = f.ID
		beforePoints := harness.PointsRun()
		beforeGrants := sim.Grants()
		start := time.Now()
		tables := f.Run(opts)
		secs := time.Since(start).Seconds()
		ft := figTiming{
			ID:      f.ID,
			Seconds: secs,
			Points:  harness.PointsRun() - beforePoints,
			Grants:  sim.Grants() - beforeGrants,
		}
		if secs > 0 {
			ft.GrantsPerSec = float64(ft.Grants) / secs
		}
		report.Figures = append(report.Figures, ft)
		return tables
	}

	switch {
	case *doExplore:
		ch := *chain
		if *scratch {
			ch = -1
		}
		runExplore(exploreOpts{
			quick:      *quick,
			parallel:   *parallel,
			chain:      ch,
			cacheMB:    *cacheMB,
			validate:   *validate,
			timingFile: *timing,
			guardFile:  *guard,
		})
	case *list:
		for _, f := range figures.All() {
			fmt.Printf("%-8s %s\n", f.ID, f.Title)
		}
	case *shardBench != "":
		curFig = "ext-shard"
		start := time.Now()
		bench, tables := figures.ShardSweep(opts)
		bench.Seconds = time.Since(start).Seconds()
		printTables(tables, *csv)
		if err := os.WriteFile(*shardBench, bench.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: writing shard bench: %v\n", err)
			os.Exit(1)
		}
		if *shardGuard != "" {
			guardShardTime(*shardGuard, bench.Seconds)
		}
	case *placeBench != "":
		curFig = "ext-place"
		start := time.Now()
		bench, tables := figures.PlaceSweep(opts)
		bench.Seconds = time.Since(start).Seconds()
		printTables(tables, *csv)
		if err := os.WriteFile(*placeBench, bench.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: writing place bench: %v\n", err)
			os.Exit(1)
		}
		if *placeGuard != "" {
			guardPlaceTime(*placeGuard, bench.Seconds)
		}
	case *all:
		for _, f := range figures.All() {
			fmt.Printf("\n### Figure %s — %s\n\n", f.ID, f.Title)
			printTables(timeFigure(f), *csv)
		}
	case *figID != "":
		f := figures.ByID(*figID)
		if f == nil {
			// Group the valid ids by family so the error stays readable as
			// the extension list grows.
			var core, ext []string
			for _, f := range figures.All() {
				if strings.HasPrefix(f.ID, "ext-") {
					ext = append(ext, f.ID)
				} else {
					core = append(core, f.ID)
				}
			}
			fmt.Fprintf(os.Stderr, "hle-bench: unknown figure %q; valid ids:\n  core: %s\n  extensions: %s\n",
				*figID, strings.Join(core, ", "), strings.Join(ext, ", "))
			os.Exit(1)
		}
		fmt.Printf("### Figure %s — %s\n\n", f.ID, f.Title)
		printTables(timeFigure(*f), *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *profile != "" {
		var buf bytes.Buffer
		if *profile == "json" {
			out, err := json.MarshalIndent(profiles, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "hle-bench: marshaling profiles: %v\n", err)
				os.Exit(1)
			}
			buf.Write(out)
			buf.WriteByte('\n')
		} else {
			for _, np := range profiles {
				fmt.Fprintf(&buf, "== %s %s ==\n%s\n", np.Figure, np.Point, np.Profile.Text())
			}
		}
		if *profileOut != "" {
			if err := os.WriteFile(*profileOut, buf.Bytes(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hle-bench: writing profiles: %v\n", err)
				os.Exit(1)
			}
		} else {
			os.Stdout.Write(buf.Bytes())
		}
	}

	if *timing != "" && len(report.Figures) > 0 {
		for _, ft := range report.Figures {
			report.Total += ft.Seconds
		}
		out, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*timing, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: writing timing report: %v\n", err)
			os.Exit(1)
		}
	}
}

// exploreOpts carries the -explore mode's flags.
type exploreOpts struct {
	quick      bool
	parallel   int
	chain      int
	cacheMB    int
	validate   bool
	timingFile string
	guardFile  string
}

// exploreCfgTiming is one configuration's record in the -explore -timing
// report: wall clock, state throughput, and the fork-vs-replay breakdown
// that makes the checkpoint-fork speedup observable rather than asserted.
type exploreCfgTiming struct {
	Config         string            `json:"config"`
	Seconds        float64           `json:"seconds"`
	States         uint64            `json:"states"`
	StatesPerSec   float64           `json:"states_per_sec"`
	Replays        uint64            `json:"replays"`
	Forks          uint64            `json:"forks"`
	ScratchReplays uint64            `json:"scratch_replays"`
	ForkRate       float64           `json:"fork_rate"`
	SpecWasted     uint64            `json:"spec_wasted"`
	CacheDropped   uint64            `json:"cache_dropped"`
	CachePeakBytes uint64            `json:"cache_peak_bytes"`
	SuffixHist     map[string]uint64 `json:"suffix_hist"`
}

// exploreTimingReport is the -explore -timing JSON: per-configuration
// records plus sweep totals. BENCH_explore.json embeds these reports.
type exploreTimingReport struct {
	Parallel   int                `json:"parallel"`
	HostCPUs   int                `json:"host_cpus"`
	Quick      bool               `json:"quick"`
	ChainDepth int                `json:"chain_depth"`
	CacheMB    int                `json:"cache_mb"`
	Configs    []exploreCfgTiming `json:"configs"`
	Totals     exploreCfgTiming   `json:"totals"`
}

// benchExploreFile mirrors BENCH_explore.json for the -explore-guard
// regression check.
type benchExploreFile struct {
	Recorded struct {
		Quick exploreTimingReport `json:"quick"`
	} `json:"recorded"`
}

func suffixHistMap(r *explore.Result) map[string]uint64 {
	m := make(map[string]uint64, len(r.SuffixHist))
	for i, n := range r.SuffixHist {
		if n > 0 {
			m[explore.SuffixHistLabels[i]] = n
		}
	}
	return m
}

// runExplore runs the bounded model-checking sweep and prints one report
// line per configuration, then a totals line. The output is deterministic
// at any -parallel, -chain and -cache-mb (banked outcomes are bit-identical
// to the replays they replace), so stdout diffs cleanly across modes; all
// timing output goes to stderr or the -timing file. Any violation prints
// its counterexample schedule and diagnostic dump and exits nonzero.
func runExplore(o exploreOpts) {
	var total exploreCfgTiming
	report := exploreTimingReport{
		Parallel:   o.parallel,
		HostCPUs:   runtime.NumCPU(),
		Quick:      o.quick,
		ChainDepth: o.chain,
		CacheMB:    o.cacheMB,
	}
	violations := 0
	var schedules, truncated uint64
	totalHist := make(map[string]uint64)
	start := time.Now()
	for _, cfg := range explore.Battery(o.quick) {
		cfg.Parallel = o.parallel
		cfg.ChainDepth = o.chain
		cfg.CacheMB = o.cacheMB
		cfg.ValidateForks = o.validate
		cfgStart := time.Now()
		r := explore.Run(cfg)
		secs := time.Since(cfgStart).Seconds()
		fmt.Println(r.Line())
		ct := exploreCfgTiming{
			Config:         cfg.Label(),
			Seconds:        secs,
			States:         r.States,
			Replays:        r.Replays,
			Forks:          r.Forks,
			ScratchReplays: r.ScratchReplays,
			SpecWasted:     r.SpecWasted,
			CacheDropped:   r.CacheDropped,
			CachePeakBytes: r.CachePeakBytes,
			SuffixHist:     suffixHistMap(r),
		}
		if secs > 0 {
			ct.StatesPerSec = float64(r.States) / secs
		}
		if r.Replays > 0 {
			ct.ForkRate = float64(r.Forks) / float64(r.Replays)
		}
		report.Configs = append(report.Configs, ct)
		total.States += r.States
		total.Replays += r.Replays
		schedules += r.Schedules
		truncated += r.Truncated
		total.Forks += r.Forks
		total.ScratchReplays += r.ScratchReplays
		total.SpecWasted += r.SpecWasted
		total.CacheDropped += r.CacheDropped
		if r.CachePeakBytes > total.CachePeakBytes {
			total.CachePeakBytes = r.CachePeakBytes
		}
		for k, v := range ct.SuffixHist {
			totalHist[k] += v
		}
		if o.timingFile != "" {
			fmt.Fprintf(os.Stderr, "%-28s %6.2fs %9.0f states/s forks=%-7d scratch=%-7d hit=%5.1f%% wasted=%-6d peak=%.1fMB\n",
				cfg.Label(), secs, ct.StatesPerSec, r.Forks, r.ScratchReplays,
				100*ct.ForkRate, r.SpecWasted, float64(r.CachePeakBytes)/(1<<20))
		}
		if r.ForkMismatches > 0 {
			violations++
			fmt.Printf("\n%s: %d forked outcomes disagreed with scratch replay\n", cfg.Label(), r.ForkMismatches)
		}
		if r.Violation != nil {
			violations++
			fmt.Printf("\n%s: %s\n%s\n", cfg.Label(), r.Violation.Error(), r.Violation.Failure.Dump())
		}
	}
	// Totals on stdout keep the original fields only, so the line is
	// byte-identical across chain/scratch modes and any -parallel — the
	// determinism check diffs stdout directly.
	fmt.Printf("total: states=%d schedules=%d replays=%d truncated=%d violations=%d\n",
		total.States, schedules, total.Replays, truncated, violations)
	total.Seconds = time.Since(start).Seconds()
	total.Config = "total"
	total.SuffixHist = totalHist
	if total.Seconds > 0 {
		total.StatesPerSec = float64(total.States) / total.Seconds
	}
	if total.Replays > 0 {
		total.ForkRate = float64(total.Forks) / float64(total.Replays)
	}
	report.Totals = total
	fmt.Fprintf(os.Stderr, "explore: %.1fs forks=%d scratch=%d hit=%.1f%%\n",
		total.Seconds, total.Forks, total.ScratchReplays, 100*total.ForkRate)
	if o.timingFile != "" {
		out, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(o.timingFile, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hle-bench: writing explore timing report: %v\n", err)
			os.Exit(1)
		}
	}
	if o.guardFile != "" {
		guardExploreTime(o.guardFile, total.Seconds)
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// guardExploreTime is the CI wall-clock regression gate: the measured
// sweep time must stay within 2x the quick-tier time recorded in
// BENCH_explore.json (generous enough for CI-runner noise, tight enough
// to catch an accidental return to scratch-replay cost).
func guardExploreTime(file string, measured float64) {
	raw, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hle-bench: -explore-guard: %v\n", err)
		os.Exit(1)
	}
	var bench benchExploreFile
	if err := json.Unmarshal(raw, &bench); err != nil {
		fmt.Fprintf(os.Stderr, "hle-bench: -explore-guard: %v\n", err)
		os.Exit(1)
	}
	recorded := bench.Recorded.Quick.Totals.Seconds
	if recorded <= 0 {
		fmt.Fprintf(os.Stderr, "hle-bench: -explore-guard: %s records no quick-tier wall clock\n", file)
		os.Exit(1)
	}
	if measured > 2*recorded {
		fmt.Fprintf(os.Stderr, "hle-bench: -explore-guard: sweep took %.1fs, over 2x the recorded %.1fs — explore performance regressed\n",
			measured, recorded)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "explore-guard: %.1fs within 2x of recorded %.1fs\n", measured, recorded)
}

// guardShardTime is the sharded sweep's CI wall-clock gate, mirroring
// guardExploreTime: the measured quick sweep must stay within 2x the
// quick-tier time recorded in BENCH_shard.json.
func guardShardTime(file string, measured float64) {
	raw, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hle-bench: -shard-guard: %v\n", err)
		os.Exit(1)
	}
	var bench struct {
		Recorded struct {
			Quick figures.ShardBench `json:"quick"`
		} `json:"recorded"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		fmt.Fprintf(os.Stderr, "hle-bench: -shard-guard: %v\n", err)
		os.Exit(1)
	}
	recorded := bench.Recorded.Quick.Seconds
	if recorded <= 0 {
		fmt.Fprintf(os.Stderr, "hle-bench: -shard-guard: %s records no quick-tier wall clock\n", file)
		os.Exit(1)
	}
	if measured > 2*recorded {
		fmt.Fprintf(os.Stderr, "hle-bench: -shard-guard: sweep took %.1fs, over 2x the recorded %.1fs — sharded-store performance regressed\n",
			measured, recorded)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "shard-guard: %.1fs within 2x of recorded %.1fs\n", measured, recorded)
}

// guardPlaceTime is the placement sweep's CI wall-clock gate, mirroring
// guardShardTime: the measured quick sweep must stay within 2x the
// quick-tier time recorded in BENCH_place.json.
func guardPlaceTime(file string, measured float64) {
	raw, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hle-bench: -place-guard: %v\n", err)
		os.Exit(1)
	}
	var bench struct {
		Recorded struct {
			Quick figures.PlaceBench `json:"quick"`
		} `json:"recorded"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		fmt.Fprintf(os.Stderr, "hle-bench: -place-guard: %v\n", err)
		os.Exit(1)
	}
	recorded := bench.Recorded.Quick.Seconds
	if recorded <= 0 {
		fmt.Fprintf(os.Stderr, "hle-bench: -place-guard: %s records no quick-tier wall clock\n", file)
		os.Exit(1)
	}
	if measured > 2*recorded {
		fmt.Fprintf(os.Stderr, "hle-bench: -place-guard: sweep took %.1fs, over 2x the recorded %.1fs — placement-sweep performance regressed\n",
			measured, recorded)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "place-guard: %.1fs within 2x of recorded %.1fs\n", measured, recorded)
}

func printTables(tables []*stats.Table, csv bool) {
	for _, tb := range tables {
		if csv {
			tb.FprintCSV(os.Stdout)
		} else {
			tb.Fprint(os.Stdout)
		}
		fmt.Println()
	}
}
