// Command hle-trace prints an annotated engine-event trace of a small
// two-thread lock-elision scenario — the avalanche in microcosm. It is a
// teaching and debugging aid: every simulated coherence event (loads,
// stores, elisions, dooms, publishes) is shown in token order.
//
// Usage:
//
//	hle-trace [-scheme HLE|HLE-SCM] [-events 120]
package main

import (
	"flag"
	"fmt"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

func main() {
	var (
		scheme = flag.String("scheme", "HLE", "HLE or HLE-SCM")
		limit  = flag.Int("events", 120, "number of events to print")
	)
	flag.Parse()

	cfg := tsx.DefaultConfig(2)
	cfg.Seed = 4
	cfg.SpuriousPerAccess = 0
	m := tsx.NewMachine(cfg)

	var s core.Scheme
	var hot mem.Addr
	var lockAddr mem.Addr
	m.RunOne(func(t *tsx.Thread) {
		main := locks.NewTTAS(t)
		lockAddr = main.Addr()
		switch *scheme {
		case "HLE":
			s = core.NewHLE(main)
		case "HLE-SCM":
			s = core.NewHLESCM(main, locks.NewMCS(t), core.SCMConfig{})
		default:
			panic("unknown scheme " + *scheme)
		}
		hot = t.AllocLines(1)
	})

	names := map[mem.Addr]string{hot: "counter", lockAddr: "lock"}
	annotate := func(a mem.Addr) string {
		if n, ok := names[a]; ok {
			return n
		}
		if n, ok := names[mem.Addr(mem.LineOf(a)*mem.LineWords)]; ok {
			return n + "-line"
		}
		return fmt.Sprintf("@%d", a)
	}

	count := 0
	tsx.Trace = func(id int, event string, a mem.Addr, v uint64) {
		if count >= *limit {
			return
		}
		count++
		indent := ""
		if id == 1 {
			indent = "                                      "
		}
		fmt.Printf("%s[T%d] %-10s %-12s = %d\n", indent, id, event, annotate(a), v)
	}
	defer func() { tsx.Trace = nil }()

	fmt.Printf("two threads increment one counter under %s (TTAS main lock)\n", s.Name())
	fmt.Println("left column: thread 0; right column: thread 1")
	fmt.Println()
	m.Run(2, func(t *tsx.Thread) {
		s.Setup(t)
		for i := 0; i < 6; i++ {
			s.Run(t, func() {
				v := t.Load(hot)
				t.Work(10)
				t.Store(hot, v+1)
			})
		}
	})

	var final uint64
	tsx.Trace = nil
	m.RunOne(func(t *tsx.Thread) { final = t.Load(hot) })
	fmt.Printf("\nfinal counter = %d (12 expected)\n", final)
	st := s.TotalStats()
	fmt.Printf("attempts/op %.2f, non-speculative fraction %.2f\n",
		st.AttemptsPerOp(), st.NonSpecFraction())
}
