// Command hle-trace prints an annotated engine-event trace of a small
// two-thread lock-elision scenario — the avalanche in microcosm. It is a
// teaching and debugging aid: every simulated coherence event (loads,
// stores, elisions, dooms, publishes) is shown in token order.
//
// Two further modes render the profiling subsystem's view of a contended
// run: -mode waterfall charts per-window speculating/serialized occupancy
// (the avalanche as a time series), and -mode heatmap ranks the cache
// lines conflict aborts die on, with the lock words named. Both accept
// any harness scheme/lock combination.
//
// Usage:
//
//	hle-trace [-scheme HLE|HLE-SCM] [-events 120]
//	hle-trace -mode waterfall [-scheme HLE] [-lock MCS] [-threads 8] [-budget 400000] [-seed 4]
//	hle-trace -mode heatmap   [-scheme HLE] [-lock TTAS] [-threads 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/tsx"
)

// modes lists every hle-trace mode with a one-line description. The -mode
// flag help and the unknown-mode error are both derived from this table,
// so adding a mode here keeps them in sync (the same way hle-bench lists
// figure ids on an unknown -fig).
var modes = []struct{ name, desc string }{
	{"trace", "annotated engine-event trace of a two-thread elision scenario"},
	{"waterfall", "per-window speculating/serialized occupancy chart"},
	{"heatmap", "conflict-abort ranking of the hottest cache lines"},
}

func modeNames() string {
	names := make([]string, len(modes))
	for i, m := range modes {
		names[i] = m.name
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		mode    = flag.String("mode", "trace", "one of: "+modeNames())
		scheme  = flag.String("scheme", "HLE", "scheme (trace mode: HLE or HLE-SCM; profile modes: any harness scheme)")
		lock    = flag.String("lock", "TTAS", "lock for waterfall/heatmap modes (TTAS, MCS, ...)")
		threads = flag.Int("threads", 8, "simulated threads for waterfall/heatmap modes")
		budget  = flag.Uint64("budget", 400_000, "virtual-cycle budget for waterfall/heatmap modes")
		seed    = flag.Int64("seed", 4, "random seed")
		limit   = flag.Int("events", 120, "number of events to print (trace mode)")
	)
	flag.Parse()

	switch *mode {
	case "trace":
	case "waterfall", "heatmap":
		runProfileMode(*mode, *scheme, *lock, *threads, *budget, *seed)
		return
	default:
		fmt.Fprintf(os.Stderr, "hle-trace: unknown mode %q; valid modes:\n", *mode)
		for _, m := range modes {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", m.name, m.desc)
		}
		os.Exit(2)
	}

	cfg := tsx.DefaultConfig(2)
	cfg.Seed = *seed
	cfg.SpuriousPerAccess = 0
	m := tsx.NewMachine(cfg)

	var s core.Scheme
	var hot mem.Addr
	var lockAddr mem.Addr
	m.RunOne(func(t *tsx.Thread) {
		main := locks.NewTTAS(t)
		lockAddr = main.Addr()
		switch *scheme {
		case "HLE":
			s = core.NewHLE(main)
		case "HLE-SCM":
			s = core.NewHLESCM(main, locks.NewMCS(t), core.SCMConfig{})
		default:
			panic("unknown scheme " + *scheme)
		}
		hot = t.AllocLines(1)
	})

	names := map[mem.Addr]string{hot: "counter", lockAddr: "lock"}
	annotate := func(a mem.Addr) string {
		if n, ok := names[a]; ok {
			return n
		}
		if n, ok := names[mem.Addr(mem.LineOf(a)*mem.LineWords)]; ok {
			return n + "-line"
		}
		return fmt.Sprintf("@%d", a)
	}

	count := 0
	tsx.Trace = func(id int, event string, a mem.Addr, v uint64) {
		if count >= *limit {
			return
		}
		count++
		indent := ""
		if id == 1 {
			indent = "                                      "
		}
		fmt.Printf("%s[T%d] %-10s %-12s = %d\n", indent, id, event, annotate(a), v)
	}
	defer func() { tsx.Trace = nil }()

	fmt.Printf("two threads increment one counter under %s (TTAS main lock)\n", s.Name())
	fmt.Println("left column: thread 0; right column: thread 1")
	fmt.Println()
	m.Run(2, func(t *tsx.Thread) {
		s.Setup(t)
		for i := 0; i < 6; i++ {
			s.Run(t, func() {
				v := t.Load(hot)
				t.Work(10)
				t.Store(hot, v+1)
			})
		}
	})

	var final uint64
	tsx.Trace = nil
	m.RunOne(func(t *tsx.Thread) { final = t.Load(hot) })
	fmt.Printf("\nfinal counter = %d (12 expected)\n", final)
	st := s.TotalStats()
	fmt.Printf("attempts/op %.2f, non-speculative fraction %.2f\n",
		st.AttemptsPerOp(), st.NonSpecFraction())
}

// runProfileMode runs a contended red-black-tree point under the named
// scheme/lock with the profiler attached and renders the requested view.
func runProfileMode(mode, scheme, lock string, threads int, budget uint64, seed int64) {
	cfg := tsx.DefaultConfig(threads)
	cfg.Seed = seed
	cfg.MemWords = 1 << 18
	// ~40 windows across the run keeps the waterfall terminal-sized.
	window := budget / 40
	if window == 0 {
		window = 1
	}
	res := harness.Point(cfg,
		harness.SchemeSpec{Scheme: scheme, Lock: lock},
		func(th *tsx.Thread) harness.Workload {
			return harness.NewRBTree(th, 64, harness.MixExtensive)
		},
		harness.Config{
			Threads:     threads,
			CycleBudget: budget,
			Profile:     &obs.Options{WindowCycles: window},
		})
	p := res.Profile
	fmt.Printf("%s %s, %d threads, 64-node tree, 50/50 updates, %d cycles (seed %d)\n",
		scheme, lock, threads, budget, seed)
	fmt.Printf("profile %s: begun=%d committed=%d aborted=%d\n",
		p.Label, p.TotalBegun, p.TotalCommits, p.TotalAborts)
	switch mode {
	case "waterfall":
		fmt.Print(p.Waterfall())
	case "heatmap":
		fmt.Print(p.HeatmapText())
	}
}
