package hle

import "hle/internal/core"

// This file holds the pre-options scheme constructors, kept only for
// source compatibility on the public surface. Nothing inside this module
// calls them (api_test.go's equivalence tests excepted, which exist to
// pin each wrapper to its replacement); new code should use the option
// API on Elide and Removal.

// ElideWithSCM wraps lock in HLE with software-assisted conflict
// management over aux.
//
// Deprecated: use Elide(lock, WithSCM(aux)).
func ElideWithSCM(lock, aux Lock) Scheme {
	return Elide(lock, WithSCM(aux))
}

// ElideWithSCMConfig is ElideWithSCM with explicit tuning.
//
// Deprecated: use Elide(lock, WithSCM(aux), WithSCMTuning(cfg)).
func ElideWithSCMConfig(lock, aux Lock, cfg core.SCMConfig) Scheme {
	return Elide(lock, WithSCM(aux), WithSCMTuning(cfg))
}

// LockRemoval wraps lock in optimistic software lock removal with the
// given speculative retry budget (0 selects the paper's 10).
//
// Deprecated: use Removal(lock, MaxAttempts(n)).
func LockRemoval(lock Lock, maxAttempts int) Scheme {
	return Removal(lock, MaxAttempts(maxAttempts))
}

// PessimisticLockRemoval gives up after a single speculative failure.
//
// Deprecated: use Removal(lock, Pessimistic()).
func PessimisticLockRemoval(lock Lock) Scheme {
	return Removal(lock, Pessimistic())
}

// LockRemovalWithSCM applies conflict management to lock removal.
//
// Deprecated: use Removal(lock, WithSCM(aux)).
func LockRemovalWithSCM(lock, aux Lock) Scheme {
	return Removal(lock, WithSCM(aux))
}
