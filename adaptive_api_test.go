package hle_test

import (
	"testing"

	"hle"
)

// TestAdaptiveFacade drives the Adaptive constructor end to end: a
// contended counter stays exact, the scheme reports its name and level,
// and the decision log is exposed through the AdaptiveScheme interface.
func TestAdaptiveFacade(t *testing.T) {
	sys := hle.NewSystem(4, hle.WithSeed(23))
	var counter hle.Addr
	var scheme hle.AdaptiveScheme
	sys.Init(func(th *hle.Thread) {
		counter = th.AllocLines(1)
		scheme = hle.Adaptive(hle.NewTTASLock(th), hle.WithSCM(hle.NewMCSLock(th)),
			hle.WithAdaptiveTuning(hle.AdaptiveConfig{DemotePct: 40, SerialDemotePct: 55}))
	})
	const perThread = 250
	sys.Parallel(4, func(th *hle.Thread) {
		scheme.Setup(th)
		for i := 0; i < perThread; i++ {
			scheme.Run(th, func() {
				v := th.Load(counter)
				th.Work(8)
				th.Store(counter, v+1)
			})
		}
	})
	var got uint64
	sys.Init(func(th *hle.Thread) { got = th.Load(counter) })
	if got != 4*perThread {
		t.Fatalf("counter = %d, want %d", got, 4*perThread)
	}
	if scheme.Name() != "Adaptive" {
		t.Errorf("name %q, want Adaptive", scheme.Name())
	}
	if int(scheme.Level()) < 0 || scheme.Level() > hle.LevelSerial {
		t.Errorf("level out of range: %v", scheme.Level())
	}
	for i, tr := range scheme.Transitions() {
		if tr.Seq != i || tr.From == tr.To {
			t.Errorf("incoherent transition %d: %+v", i, tr)
		}
	}
}

// TestAdaptiveDeterministic: identically-seeded systems produce identical
// statistics and transition logs through the facade.
func TestAdaptiveDeterministic(t *testing.T) {
	run := func() (hle.OpStats, []hle.AdaptiveTransition) {
		sys := hle.NewSystem(4, hle.WithSeed(9))
		var counter hle.Addr
		var scheme hle.AdaptiveScheme
		sys.Init(func(th *hle.Thread) {
			counter = th.AllocLines(1)
			scheme = hle.Adaptive(hle.NewTTASLock(th), hle.WithSCM(hle.NewMCSLock(th)))
		})
		sys.Parallel(4, func(th *hle.Thread) {
			scheme.Setup(th)
			for i := 0; i < 200; i++ {
				scheme.Run(th, func() {
					th.Store(counter, th.Load(counter)+1)
				})
			}
		})
		return scheme.TotalStats(), scheme.Transitions()
	}
	s1, tr1 := run()
	s2, tr2 := run()
	if s1 != s2 {
		t.Errorf("stats differ across identical seeds: %+v vs %+v", s1, s2)
	}
	if len(tr1) != len(tr2) {
		t.Fatalf("transition logs differ in length: %d vs %d", len(tr1), len(tr2))
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Errorf("transition %d differs: %+v vs %+v", i, tr1[i], tr2[i])
		}
	}
}

// TestAdaptiveMisusePanics: the Adaptive constructor rejects option
// combinations that cannot work, same contract as Elide/Removal.
func TestAdaptiveMisusePanics(t *testing.T) {
	cases := []struct {
		name  string
		build func(th *hle.Thread)
	}{
		{"MissingSCM", func(th *hle.Thread) {
			hle.Adaptive(hle.NewTTASLock(th))
		}},
		{"Adaptive+Pessimistic", func(th *hle.Thread) {
			hle.Adaptive(hle.NewTTASLock(th), hle.WithSCM(hle.NewMCSLock(th)), hle.Pessimistic())
		}},
		{"Adaptive+MaxAttempts", func(th *hle.Thread) {
			hle.Adaptive(hle.NewTTASLock(th), hle.WithSCM(hle.NewMCSLock(th)), hle.MaxAttempts(3))
		}},
		{"TuningOnElide", func(th *hle.Thread) {
			hle.Elide(hle.NewTTASLock(th), hle.WithAdaptiveTuning(hle.AdaptiveConfig{}))
		}},
		{"TuningOnRemoval", func(th *hle.Thread) {
			hle.Removal(hle.NewTTASLock(th), hle.WithAdaptiveTuning(hle.AdaptiveConfig{}))
		}},
		{"InvalidTuning", func(th *hle.Thread) {
			hle.Adaptive(hle.NewTTASLock(th), hle.WithSCM(hle.NewMCSLock(th)),
				hle.WithAdaptiveTuning(hle.AdaptiveConfig{DemotePct: 200}))
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sys := hle.NewSystem(1, hle.WithSeed(1))
			defer func() {
				if recover() == nil {
					t.Fatal("expected construction panic")
				}
			}()
			sys.Init(c.build)
		})
	}
}
