package hle_test

import (
	"testing"

	"hle/internal/figures"
	"hle/internal/harness"
	"hle/internal/mem"
	"hle/internal/stamp"
	"hle/internal/tsx"
)

// The benchmarks below regenerate each of the paper's tables and figures at
// a reduced scale per iteration, reporting the figure's headline quantity
// as a custom metric. Run the full-scale versions with
//
//	go run ./cmd/hle-bench -fig <id>
//
// which prints the complete rows/series; see EXPERIMENTS.md for the
// paper-vs-measured record.

func quickOpts(b *testing.B) figures.Options {
	b.Helper()
	return figures.Options{Threads: 8, Quick: true, Seed: 1, Budget: 300_000}
}

// benchFigure runs a figure generator b.N times.
func benchFigure(b *testing.B, id string) {
	f := figures.ByID(id)
	if f == nil {
		b.Fatalf("unknown figure %s", id)
	}
	o := quickOpts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := f.Run(o)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("figure %s produced no rows", id)
		}
	}
}

func BenchmarkFig2_1_SetSizeLimits(b *testing.B)         { benchFigure(b, "2.1") }
func BenchmarkFig3_1_Avalanche(b *testing.B)             { benchFigure(b, "3.1") }
func BenchmarkFig3_3_SerializationDynamics(b *testing.B) { benchFigure(b, "3.3") }
func BenchmarkFig3_4_HLESpeedup(b *testing.B)            { benchFigure(b, "3.4") }
func BenchmarkFig3_5_HLEvsRTM(b *testing.B)              { benchFigure(b, "3.5") }
func BenchmarkFig5_1_SchemeScaling(b *testing.B)         { benchFigure(b, "5.1") }
func BenchmarkFig5_2_SchemeSweep(b *testing.B)           { benchFigure(b, "5.2") }
func BenchmarkFig5_3_AbortAnalysis(b *testing.B)         { benchFigure(b, "5.3") }
func BenchmarkTable5_2_HashTable(b *testing.B)           { benchFigure(b, "5.2ht") }
func BenchmarkCh6_FairLocks(b *testing.B)                { benchFigure(b, "ch6") }
func BenchmarkCh7_HWExtension(b *testing.B)              { benchFigure(b, "ch7") }
func BenchmarkAblationSCMRetries(b *testing.B)           { benchFigure(b, "abl-scm") }
func BenchmarkAblationSpurious(b *testing.B)             { benchFigure(b, "abl-spur") }
func BenchmarkAblationMultiAux(b *testing.B)             { benchFigure(b, "abl-multi") }
func BenchmarkAblationMissModel(b *testing.B)            { benchFigure(b, "abl-miss") }
func BenchmarkAblationBackoff(b *testing.B)              { benchFigure(b, "abl-backoff") }
func BenchmarkWorkloadProfiles(b *testing.B)             { benchFigure(b, "profiles") }
func BenchmarkExtScaling(b *testing.B)                   { benchFigure(b, "ext-scale") }
func BenchmarkExtCSLength(b *testing.B)                  { benchFigure(b, "ext-cslen") }
func BenchmarkExtSTAMP(b *testing.B)                     { benchFigure(b, "ext-stamp") }
func BenchmarkExtChaos(b *testing.B)                     { benchFigure(b, "ext-chaos") }
func BenchmarkExtLazy(b *testing.B)                      { benchFigure(b, "ext-lazy") }

// BenchmarkFig5_4_STAMP runs one STAMP application per scheme pair per
// iteration (the full 7×6×2 matrix lives behind `hle-bench -fig 5.4`),
// reporting the HLE-SCM speedup over plain HLE on the intruder benchmark.
func BenchmarkFig5_4_STAMP(b *testing.B) {
	app := stamp.Apps()[1] // intruder: the high-contention member
	cfg := tsx.DefaultConfig(8)
	cfg.MemWords = 1 << 18
	var speedup float64
	for i := 0; i < b.N; i++ {
		hleRes, err := stamp.Run(cfg, harness.SchemeSpec{Scheme: "HLE", Lock: "MCS"}, app.Make, 8)
		if err != nil {
			b.Fatal(err)
		}
		scmRes, err := stamp.Run(cfg, harness.SchemeSpec{Scheme: "HLE-SCM", Lock: "MCS"}, app.Make, 8)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(hleRes.Runtime) / float64(scmRes.Runtime)
	}
	b.ReportMetric(speedup, "scm-speedup")
}

// BenchmarkTxReadWrite measures the transactional load/store hot path: one
// thread reading and writing disjoint lines inside committed transactions.
// This is the path the line-index hoisting and write-buffer fast checks
// target.
func BenchmarkTxReadWrite(b *testing.B) {
	cfg := tsx.DefaultConfig(1)
	cfg.Seed = 1
	m := tsx.NewMachine(cfg)
	var cells []mem.Addr
	m.RunOne(func(t *tsx.Thread) {
		for i := 0; i < 16; i++ {
			cells = append(cells, t.AllocLines(1))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunOne(func(t *tsx.Thread) {
			for j := 0; j < 100; j++ {
				t.RTM(func() {
					for _, c := range cells {
						t.Store(c, t.Load(c)+1)
					}
				})
			}
		})
	}
	b.ReportMetric(float64(b.N*100*16*2)/b.Elapsed().Seconds(), "sim-accesses/s")
}

// BenchmarkAllocFree measures the simulated allocator: alloc/free cycles
// across several size classes, exercising the size-class free lists and the
// thread-local cache.
func BenchmarkAllocFree(b *testing.B) {
	cfg := tsx.DefaultConfig(1)
	cfg.Seed = 1
	m := tsx.NewMachine(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunOne(func(t *tsx.Thread) {
			var addrs [64]mem.Addr
			for j := 0; j < 100; j++ {
				for k := range addrs {
					addrs[k] = t.Alloc(1 + k%7)
				}
				for k := range addrs {
					t.Free(addrs[k], 1+k%7)
				}
			}
		})
	}
	b.ReportMetric(float64(b.N*100*64)/b.Elapsed().Seconds(), "alloc-free/s")
}

// BenchmarkHarnessPoint measures one full experiment point through the pool
// path: clone a populated template, reseed, and run a short measurement.
func BenchmarkHarnessPoint(b *testing.B) {
	cfg := tsx.DefaultConfig(4)
	cfg.Seed = 1
	tmpl := tsx.NewMachine(cfg)
	var w harness.Workload
	tmpl.RunOne(func(t *tsx.Thread) {
		w = harness.NewRBTree(t, 128, harness.MixModerate)
		w.Populate(t)
	})
	spec := harness.PointSpec{
		Template: tmpl,
		Workload: w,
		Scheme:   harness.SchemeSpec{Scheme: "HLE", Lock: "MCS"},
		Cfg:      harness.Config{Threads: 4, CycleBudget: 100_000},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seed = harness.DeriveSeed(1, i)
		if r := spec.Run(); r.Ops.Ops == 0 {
			b.Fatal("point completed no operations")
		}
	}
}

// BenchmarkEngineThroughput measures the simulator's raw speed: simulated
// transactional accesses per second on this host.
func BenchmarkEngineThroughput(b *testing.B) {
	cfg := tsx.DefaultConfig(8)
	cfg.Seed = 1
	m := tsx.NewMachine(cfg)
	var cells []mem.Addr
	m.RunOne(func(t *tsx.Thread) {
		for i := 0; i < 8; i++ {
			cells = append(cells, t.AllocLines(1))
		}
	})
	b.ResetTimer()
	accesses := 0
	for i := 0; i < b.N; i++ {
		m.Run(8, func(t *tsx.Thread) {
			cell := cells[t.ID]
			for j := 0; j < 1000; j++ {
				t.RTM(func() {
					v := t.Load(cell)
					t.Store(cell, v+1)
				})
			}
		})
		accesses += 8 * 1000 * 2
	}
	b.ReportMetric(float64(accesses)/b.Elapsed().Seconds(), "sim-accesses/s")
}
