package hle

import (
	"fmt"

	"hle/internal/shard"
)

// ShardedStore is an N-shard keyed map on the simulated machine: keys
// hash to shards, each shard is an independent data structure guarded by
// its own elidable lock and scheme instance, and cross-shard operations
// (Size) take every shard lock in order. It is the package's service-level
// building block: sharding removes cross-key contention structurally,
// while the per-shard scheme decides how contention inside a shard —
// a hot key, a skewed tenant — is handled (plain locking, HLE, SCM, or
// the adaptive controller, per WithShardScheme).
type ShardedStore struct {
	data *shard.Data
	st   *shard.Store
}

// shardCfg accumulates Sharded options.
type shardCfg struct {
	dcfg shard.DataConfig
	scfg shard.StoreConfig
	// schemeOpt names the scheme-selecting option already applied, so a
	// second selector (WithShardScheme + WithShardSchemeName) panics as
	// contradictory instead of silently last-writer-wins.
	schemeOpt    string
	placement    Placement
	placementSet bool
}

func shardOption(name string, fn func(*shardCfg)) ShardOption {
	return Option{name: name, targets: tSharded, shd: fn}
}

// setScheme installs a scheme maker, rejecting a second selector.
func (c *shardCfg) setScheme(opt string, mk shard.SchemeMaker) {
	if c.schemeOpt != "" {
		panic("hle: Sharded: " + opt + " contradicts " + c.schemeOpt +
			": at most one scheme selector per store")
	}
	c.schemeOpt = opt
	c.scfg.MkScheme = mk
}

// WithShardHashTable backs each shard with a hash table of the given
// bucket count (0 selects the default) instead of a red-black tree.
// Applies to Sharded.
func WithShardHashTable(buckets int) ShardOption {
	return shardOption("WithShardHashTable", func(c *shardCfg) {
		c.dcfg.Backend = shard.HashTable
		c.dcfg.Buckets = buckets
	})
}

// WithShardHash overrides the key→shard routing hash. The default is a
// splitmix finalizer; tests use identity hashes for exact placement.
// Applies to Sharded.
func WithShardHash(h func(key uint64) uint64) ShardOption {
	return shardOption("WithShardHash", func(c *shardCfg) { c.dcfg.Hash = h })
}

// WithShardStripes sets the per-shard size-counter stripe count (each
// stripe lives on its own cache line, so concurrent updates within a
// shard do not serialize on one counter line). Applies to Sharded.
func WithShardStripes(n int) ShardOption {
	return shardOption("WithShardStripes", func(c *shardCfg) { c.dcfg.SizeStripes = n })
}

// WithShardLock overrides each shard's main lock constructor (default
// MCS, the paper's representative HLE-compatible fair lock). Applies to
// Sharded.
func WithShardLock(mk func(t *Thread) Lock) ShardOption {
	return shardOption("WithShardLock", func(c *shardCfg) { c.scfg.MkLock = mk })
}

// WithShardScheme overrides each shard's scheme constructor. The maker
// runs once per shard, receiving the shard's main lock and index, so
// every shard gets private scheme state — its own SCM auxiliary lock,
// its own adaptive controller:
//
//	hle.Sharded(t, 16, hle.WithShardScheme(func(t *hle.Thread, main hle.Lock, si int) hle.Scheme {
//		return hle.Adaptive(main, hle.WithSCM(hle.NewMCSLock(t)))
//	}))
//
// Applies to Sharded; contradicts WithShardSchemeName.
func WithShardScheme(mk func(t *Thread, main Lock, shard int) Scheme) ShardOption {
	return shardOption("WithShardScheme", func(c *shardCfg) {
		c.setScheme("WithShardScheme", mk)
	})
}

// WithShardSchemeName selects each shard's scheme by harness name
// (Standard, HLE, RTM-LE, HLE-SCM, Adaptive); unknown names panic at
// construction. Applies to Sharded; contradicts WithShardScheme.
func WithShardSchemeName(name string) ShardOption {
	mk := shard.SchemeMakerByName(name)
	if mk == nil {
		panic("hle: Sharded: unknown scheme name " + name)
	}
	return shardOption("WithShardSchemeName", func(c *shardCfg) {
		c.setScheme("WithShardSchemeName("+name+")", mk)
	})
}

// Sharded builds an N-shard store on t's machine (call inside System.Init,
// like every constructor). Default shape: red-black tree shards under MCS
// locks with plain HLE per shard. WithPlacement lays the store's
// structures out under a placement policy for the duration of
// construction, restoring the machine's policy afterwards.
func Sharded(t *Thread, shards int, opts ...ShardOption) *ShardedStore {
	if shards <= 0 {
		panic(fmt.Sprintf("hle: Sharded: shard count must be positive, got %d", shards))
	}
	c := shardCfg{dcfg: shard.DataConfig{Shards: shards}}
	for _, o := range opts {
		o.use("Sharded", tSharded)
		o.shd(&c)
	}
	if c.placementSet {
		prev := t.Memory().SetPlacement(c.placement)
		defer t.Memory().SetPlacement(prev)
	}
	d := shard.NewData(t, c.dcfg)
	return &ShardedStore{data: d, st: shard.Bind(t, d, c.scfg)}
}

// Setup prepares every shard's lock and scheme for thread t; each
// measuring thread calls it once before operating.
func (s *ShardedStore) Setup(t *Thread) { s.st.Setup(t) }

// Shards returns the shard count.
func (s *ShardedStore) Shards() int { return s.data.Shards() }

// ShardOf returns the shard index key routes to.
func (s *ShardedStore) ShardOf(key uint64) int { return s.data.ShardOf(key) }

// Get returns the value stored under key, synchronizing only on key's
// shard.
func (s *ShardedStore) Get(t *Thread, key uint64) (val uint64, ok bool) {
	s.st.RunKeyed(t, key, func() { val, ok = s.data.Lookup(t, key) })
	return val, ok
}

// Put stores val under key, reporting whether the key was absent (an
// existing key's value is updated in place).
func (s *ShardedStore) Put(t *Thread, key, val uint64) (inserted bool) {
	s.st.RunKeyed(t, key, func() { inserted = s.data.Insert(t, key, val) })
	return inserted
}

// Delete removes key, reporting whether it was present.
func (s *ShardedStore) Delete(t *Thread, key uint64) (deleted bool) {
	s.st.RunKeyed(t, key, func() { deleted = s.data.Delete(t, key) })
	return deleted
}

// Size returns a consistent total element count — the cross-shard
// operation: it really acquires every shard lock (in ascending order, so
// concurrent Sizes cannot deadlock) and sums the striped per-shard
// counters under them.
func (s *ShardedStore) Size(t *Thread) uint64 { return s.st.Size(t) }

// Stats returns thread t's operation statistics across all shards plus
// its cross-shard operations.
func (s *ShardedStore) Stats(threadID int) OpStats { return s.st.Stats(threadID) }

// TotalStats aggregates every thread's statistics.
func (s *ShardedStore) TotalStats() OpStats { return s.st.TotalStats() }
