package hle_test

import (
	"testing"

	"hle"
)

// TestWithSubscription drives the lazy-subscription mode through the
// public surface: Elide(lock, WithSubscription(Lazy)) must behave as a
// correct eliding scheme (no lost updates, real speculation), and the
// explicit Eager value must be the default scheme exactly.
func TestWithSubscription(t *testing.T) {
	run := func(sub hle.Subscription) (hle.Scheme, uint64) {
		sys := hle.NewSystem(4, hle.WithSeed(17))
		var counter hle.Addr
		var scheme hle.Scheme
		sys.Init(func(th *hle.Thread) {
			counter = th.AllocLines(1)
			scheme = hle.Elide(hle.NewTTASLock(th), hle.WithSubscription(sub))
		})
		sys.Parallel(4, func(th *hle.Thread) {
			scheme.Setup(th)
			for i := 0; i < 250; i++ {
				scheme.Run(th, func() {
					th.Store(counter, th.Load(counter)+1)
				})
			}
		})
		var got uint64
		sys.Init(func(th *hle.Thread) { got = th.Load(counter) })
		return scheme, got
	}

	lazy, got := run(hle.Lazy)
	if got != 1000 {
		t.Fatalf("lazy counter = %d, want 1000 (lost updates)", got)
	}
	if lazy.Name() != "HLE-lazy" {
		t.Errorf("lazy scheme name %q, want HLE-lazy", lazy.Name())
	}
	if st := lazy.TotalStats(); st.Spec == 0 {
		t.Errorf("lazy scheme never speculated")
	}

	eager, got := run(hle.Eager)
	if got != 1000 {
		t.Fatalf("eager counter = %d, want 1000", got)
	}
	if eager.Name() != "HLE" {
		t.Errorf("explicit WithSubscription(Eager) built %q, want the default HLE", eager.Name())
	}
}
