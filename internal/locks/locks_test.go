package locks_test

import (
	"testing"

	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

func newMachine(n int, seed int64) *tsx.Machine {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0
	return tsx.NewMachine(cfg)
}

func allLocks(t *tsx.Thread) []locks.Lock {
	var ls []locks.Lock
	for _, mk := range locks.Makers() {
		ls = append(ls, mk(t))
	}
	return ls
}

// TestMutualExclusionStandard: under the standard path, the critical
// section is never occupied by two threads. The occupancy counter is a
// plain Go variable, safe because simulated execution is token-serialized.
func TestMutualExclusionStandard(t *testing.T) {
	for _, name := range []string{"TTAS", "BackoffTTAS", "MCS", "Ticket", "AdjTicket", "CLH", "AdjCLH"} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(6, 7)
			var l locks.Lock
			m.RunOne(func(th *tsx.Thread) { l = locks.MakerByName(name)(th) })
			occupancy, maxOcc, total := 0, 0, 0
			m.Run(6, func(th *tsx.Thread) {
				l.Prepare(th)
				for i := 0; i < 100; i++ {
					l.Acquire(th)
					occupancy++
					if occupancy > maxOcc {
						maxOcc = occupancy
					}
					th.Work(uint64(th.Rand().Intn(20)))
					total++
					occupancy--
					l.Release(th)
					th.Work(uint64(th.Rand().Intn(10)))
				}
			})
			if maxOcc != 1 {
				t.Fatalf("max occupancy %d, want 1", maxOcc)
			}
			if total != 600 {
				t.Fatalf("completed %d operations, want 600", total)
			}
		})
	}
}

// TestMutualExclusionSpecPath: the HLE path also preserves mutual exclusion
// in the sense of serializability: a shared counter incremented in every
// critical section ends exact.
func TestMutualExclusionSpecPath(t *testing.T) {
	for _, name := range []string{"TTAS", "BackoffTTAS", "MCS", "Ticket", "AdjTicket", "CLH", "AdjCLH"} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(6, 13)
			var l locks.Lock
			var ctr mem.Addr
			m.RunOne(func(th *tsx.Thread) {
				l = locks.MakerByName(name)(th)
				ctr = th.AllocLines(1)
			})
			const perThread = 100
			m.Run(6, func(th *tsx.Thread) {
				l.Prepare(th)
				for i := 0; i < perThread; i++ {
					th.HLERegion(func() {
						l.SpecAcquire(th)
						v := th.Load(ctr)
						th.Work(3)
						th.Store(ctr, v+1)
						l.SpecRelease(th)
					})
				}
			})
			var got uint64
			m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
			if got != 6*perThread {
				t.Fatalf("counter = %d, want %d", got, 6*perThread)
			}
		})
	}
}

// TestElisionConcurrency: two threads with disjoint data must both complete
// their elided critical sections speculatively, and the lock word is never
// actually written.
func TestElisionConcurrency(t *testing.T) {
	for _, name := range []string{"TTAS", "BackoffTTAS", "MCS", "AdjTicket", "AdjCLH"} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(4, 3)
			var l locks.Lock
			var cells [4]mem.Addr
			m.RunOne(func(th *tsx.Thread) {
				l = locks.MakerByName(name)(th)
				for i := range cells {
					cells[i] = th.AllocLines(1)
				}
			})
			ths := m.Run(4, func(th *tsx.Thread) {
				l.Prepare(th)
				for i := 0; i < 50; i++ {
					th.HLERegion(func() {
						l.SpecAcquire(th)
						v := th.Load(cells[th.ID])
						th.Work(5)
						th.Store(cells[th.ID], v+1)
						l.SpecRelease(th)
					})
				}
			})
			for _, th := range ths {
				if th.Stats.Committed < 45 {
					t.Errorf("thread %d committed only %d/50 speculatively", th.ID, th.Stats.Committed)
				}
			}
		})
	}
}

// TestHLEIllusion: inside an elided TTAS critical section the lock reads as
// held, even though it was never written — HLE's self-illusion.
func TestHLEIllusion(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		l := locks.NewTTAS(th)
		sawHeld := false
		th.HLERegion(func() {
			l.SpecAcquire(th)
			sawHeld = l.Held(th)
			l.SpecRelease(th)
		})
		if !sawHeld {
			t.Error("elided critical section did not see the lock as held")
		}
		if l.Held(th) {
			t.Error("lock still held after elided release")
		}
	})
}

// TestAdjustedTicketSoloRestores verifies Theorem 1(i): a solo
// (non-speculative) run of the adjusted ticket lock restores the lock to
// its initial state on release.
func TestAdjustedTicketSoloRestores(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		l := locks.NewAdjustedTicket(th)
		for i := 0; i < 5; i++ {
			l.Acquire(th)
			th.Work(3)
			l.Release(th)
		}
		if next := th.Load(l.Addr()); next != 0 {
			t.Errorf("next = %d after solo runs, want 0 (state restored)", next)
		}
		if owner := th.Load(l.Addr() + 1); owner != 0 {
			t.Errorf("owner = %d after solo runs, want 0", owner)
		}
	})
}

// TestAdjustedCLHSoloRestores verifies Theorem 2(i) for the adjusted CLH.
func TestAdjustedCLHSoloRestores(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		l := locks.NewAdjustedCLH(th)
		l.Prepare(th)
		initialTail := th.Load(l.Addr())
		for i := 0; i < 5; i++ {
			l.Acquire(th)
			th.Work(3)
			l.Release(th)
		}
		if tail := th.Load(l.Addr()); tail != initialTail {
			t.Errorf("tail = %d after solo runs, want initial %d", tail, initialTail)
		}
	})
}

// TestUnadjustedTicketMultiThreaded: the standard ticket lock still works
// (the HLE incompatibility is about elision, not correctness).
func TestUnadjustedFairLocksProgress(t *testing.T) {
	for _, name := range []string{"Ticket", "CLH"} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(4, 21)
			var l locks.Lock
			var ctr mem.Addr
			m.RunOne(func(th *tsx.Thread) {
				l = locks.MakerByName(name)(th)
				ctr = th.AllocLines(1)
			})
			m.Run(4, func(th *tsx.Thread) {
				l.Prepare(th)
				for i := 0; i < 50; i++ {
					// SpecAcquire falls back to the standard path.
					th.HLERegion(func() {
						l.SpecAcquire(th)
						th.Store(ctr, th.Load(ctr)+1)
						l.SpecRelease(th)
					})
				}
			})
			var got uint64
			m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
			if got != 200 {
				t.Fatalf("counter = %d, want 200", got)
			}
		})
	}
}

// TestFairLockFIFO: with a ticket lock, threads waiting on a held lock are
// served in arrival order.
func TestFairLockFIFO(t *testing.T) {
	m := newMachine(4, 5)
	var l locks.Lock
	m.RunOne(func(th *tsx.Thread) { l = locks.NewTicket(th) })
	var arrival, service []int
	m.Run(4, func(th *tsx.Thread) {
		l.Prepare(th)
		// Stagger arrivals deterministically by ID.
		th.Work(uint64(th.ID) * 1000)
		arrival = append(arrival, th.ID)
		l.Acquire(th)
		service = append(service, th.ID)
		th.Work(5000) // hold long enough that all later threads queue up
		l.Release(th)
	})
	if len(arrival) != 4 || len(service) != 4 {
		t.Fatalf("arrival=%v service=%v", arrival, service)
	}
	for i := range arrival {
		if arrival[i] != service[i] {
			t.Fatalf("FIFO violated: arrival %v, service %v", arrival, service)
		}
	}
}

// TestFairnessNoStarvation: under heavy contention on a fair lock, the
// spread of per-thread completions stays small.
func TestFairnessNoStarvation(t *testing.T) {
	m := newMachine(8, 17)
	var l locks.Lock
	m.RunOne(func(th *tsx.Thread) { l = locks.NewMCS(th) })
	counts := make([]int, 8)
	const budget = 2_000_00
	m.Run(8, func(th *tsx.Thread) {
		l.Prepare(th)
		for th.Clock() < budget {
			l.Acquire(th)
			th.Work(30)
			l.Release(th)
			counts[th.ID]++
		}
	})
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || float64(max)/float64(min) > 2.0 {
		t.Fatalf("unfair completion spread under MCS: %v", counts)
	}
}

func TestMakerByNameUnknown(t *testing.T) {
	if locks.MakerByName("nope") != nil {
		t.Fatal("unknown lock name should return nil")
	}
}
