package locks

import (
	"hle/internal/mem"
	"hle/internal/tsx"
)

// TTAS is the test-and-test-and-set spinlock of Algorithm 1: the lock is a
// single word, 0 when free, taken by an atomic swap of 1. It is unfair but
// recovers well from HLE aborts, which is why the paper uses it as the
// non-fair reference lock.
type TTAS struct {
	word mem.Addr
}

// NewTTAS allocates a TTAS lock on its own cache line.
func NewTTAS(t *tsx.Thread) *TTAS {
	l := &TTAS{word: t.AllocLines(1)}
	t.LabelLockLines(l.word, 1, "ttas-lock")
	return l
}

// Name implements Lock.
func (l *TTAS) Name() string { return "TTAS" }

// Fair implements Lock; TTAS provides no fairness.
func (l *TTAS) Fair() bool { return false }

// Prepare implements Lock; TTAS has no per-thread state.
func (l *TTAS) Prepare(t *tsx.Thread) {}

// Addr returns the lock word's simulated address (tests use this).
func (l *TTAS) Addr() mem.Addr { return l.word }

// Acquire spins until the lock reads free, then swaps 1 in.
func (l *TTAS) Acquire(t *tsx.Thread) {
	for {
		for t.Load(l.word) == 1 {
			t.Pause()
		}
		if t.Swap(l.word, 1) == 0 {
			return
		}
	}
}

// TryAcquire is a single test-and-set attempt.
func (l *TTAS) TryAcquire(t *tsx.Thread) bool {
	return t.Swap(l.word, 1) == 0
}

// Release stores 0.
func (l *TTAS) Release(t *tsx.Thread) {
	t.Store(l.word, 0)
}

// SpecAcquire is Algorithm 1's lock path: test, then XACQUIRE-prefixed
// test-and-set. When the swap begins an elision the returned value is the
// in-memory lock value; 0 means the elided critical section may proceed.
// If the lock was taken between the test and the swap, the thread spins
// inside the transaction on the illusory value until PAUSE aborts it —
// the doomed speculative spin Chapter 3 describes.
func (l *TTAS) SpecAcquire(t *tsx.Thread) {
	for {
		// After an abort, hardware re-executes the XACQUIRE swap
		// itself (no pre-test): it usually fails against the aborter
		// holding the lock, and the loop then spins and re-elides —
		// the recovery behaviour Chapter 3 credits TTAS with.
		if !t.ReissuePending() {
			for !t.InTx() && t.Load(l.word) == 1 {
				t.Pause()
			}
		}
		if t.XAcquireSwap(l.word, 1) == 0 {
			return
		}
		t.Pause()
	}
}

// SpecRelease is the XRELEASE store of Algorithm 1's unlock.
func (l *TTAS) SpecRelease(t *tsx.Thread) {
	t.XReleaseStore(l.word, 0)
}

// Held implements Lock.
func (l *TTAS) Held(t *tsx.Thread) bool {
	return t.Load(l.word) == 1
}
