package locks

import (
	"hle/internal/mem"
	"hle/internal/tsx"
)

// BackoffTTAS is a test-and-test-and-set lock with exponential backoff on
// failed acquisition attempts. The related-work chapter notes that Dice et
// al.'s transactional lock elision used backoffs against the lemming
// effect (their name for the avalanche); this lock lets the benchmarks
// compare that mitigation against the paper's SCM, which prevents the
// problem instead of damping it.
type BackoffTTAS struct {
	word mem.Addr

	// MinDelay/MaxDelay bound the randomized backoff in cycles.
	MinDelay uint64
	MaxDelay uint64
}

// NewBackoffTTAS allocates the lock with the default backoff window.
func NewBackoffTTAS(t *tsx.Thread) *BackoffTTAS {
	l := &BackoffTTAS{word: t.AllocLines(1), MinDelay: 16, MaxDelay: 1024}
	t.LabelLockLines(l.word, 1, "backoff-ttas-lock")
	return l
}

// Name implements Lock.
func (l *BackoffTTAS) Name() string { return "BackoffTTAS" }

// Fair implements Lock.
func (l *BackoffTTAS) Fair() bool { return false }

// Prepare implements Lock.
func (l *BackoffTTAS) Prepare(t *tsx.Thread) {}

// backoff waits a randomized delay and doubles the window.
func (l *BackoffTTAS) backoff(t *tsx.Thread, delay *uint64) {
	t.Work(uint64(t.Rand().Int63n(int64(*delay))) + 1)
	if *delay < l.MaxDelay {
		*delay *= 2
	}
}

// Acquire implements Lock.
func (l *BackoffTTAS) Acquire(t *tsx.Thread) {
	delay := l.MinDelay
	for {
		for t.Load(l.word) == 1 {
			t.Pause()
		}
		if t.Swap(l.word, 1) == 0 {
			return
		}
		l.backoff(t, &delay)
	}
}

// TryAcquire implements Lock.
func (l *BackoffTTAS) TryAcquire(t *tsx.Thread) bool {
	return t.Swap(l.word, 1) == 0
}

// Release implements Lock.
func (l *BackoffTTAS) Release(t *tsx.Thread) {
	t.Store(l.word, 0)
}

// SpecAcquire implements Lock: the TTAS elision path with backoff between
// failed speculative attempts.
func (l *BackoffTTAS) SpecAcquire(t *tsx.Thread) {
	delay := l.MinDelay
	for {
		if !t.ReissuePending() {
			for !t.InTx() && t.Load(l.word) == 1 {
				t.Pause()
			}
		}
		if t.XAcquireSwap(l.word, 1) == 0 {
			return
		}
		t.Pause()
		if !t.InTx() {
			l.backoff(t, &delay)
		}
	}
}

// SpecRelease implements Lock.
func (l *BackoffTTAS) SpecRelease(t *tsx.Thread) {
	t.XReleaseStore(l.word, 0)
}

// Held implements Lock.
func (l *BackoffTTAS) Held(t *tsx.Thread) bool {
	return t.Load(l.word) == 1
}
