package locks

import (
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Ticket is the classic ticket lock of Algorithm 4 (used by the Linux
// kernel): an arriving thread fetch-and-adds the next counter and waits for
// owner to reach its ticket; release increments owner. Releasing never
// restores next, so HLE cannot be applied (the XRELEASE store would not
// restore the elided value): the speculative path falls back to the
// standard path.
type Ticket struct {
	next    mem.Addr // owner lives at next+1, deliberately on the same line
	tickets [MaxThreads]uint64
}

const ticketOwnerOff = 1

// NewTicket allocates a ticket lock with next and owner sharing one line,
// as in the usual single-word implementation the paper describes.
func NewTicket(t *tsx.Thread) *Ticket {
	l := &Ticket{next: t.AllocLines(2)}
	t.LabelLockLines(l.next, 2, "ticket-lock")
	return l
}

// Name implements Lock.
func (l *Ticket) Name() string { return "Ticket" }

// Fair implements Lock; ticket locks are FIFO.
func (l *Ticket) Fair() bool { return true }

// Prepare implements Lock; the ticket lock has no simulated-memory
// per-thread state.
func (l *Ticket) Prepare(t *tsx.Thread) {}

// Acquire draws a ticket and waits for its turn.
func (l *Ticket) Acquire(t *tsx.Thread) {
	cur := t.FetchAdd(l.next, 1)
	l.tickets[t.ID] = cur
	for t.Load(l.next+ticketOwnerOff) != cur {
		t.Pause()
	}
}

// TryAcquire draws a ticket and waits its turn (fair locks remember the
// request).
func (l *Ticket) TryAcquire(t *tsx.Thread) bool {
	l.Acquire(t)
	return true
}

// Release advances the owner counter.
func (l *Ticket) Release(t *tsx.Thread) {
	t.FetchAdd(l.next+ticketOwnerOff, 1)
}

// SpecAcquire falls back to the standard path: the unadjusted ticket lock
// is not HLE-compatible (Chapter 6).
func (l *Ticket) SpecAcquire(t *tsx.Thread) { l.Acquire(t) }

// SpecRelease falls back to the standard path.
func (l *Ticket) SpecRelease(t *tsx.Thread) { l.Release(t) }

// Held implements Lock.
func (l *Ticket) Held(t *tsx.Thread) bool {
	return t.Load(l.next) != t.Load(l.next+ticketOwnerOff)
}

// AdjustedTicket is the paper's HLE-compatible ticket lock (Algorithm 5):
// release first tries to CAS next back from current+1 to current, which
// succeeds exactly in speculative or solo runs and erases all traces of the
// acquisition; otherwise it falls back to advancing owner as usual.
type AdjustedTicket struct {
	next    mem.Addr
	tickets [MaxThreads]uint64
}

// NewAdjustedTicket allocates an adjusted ticket lock.
func NewAdjustedTicket(t *tsx.Thread) *AdjustedTicket {
	l := &AdjustedTicket{next: t.AllocLines(2)}
	t.LabelLockLines(l.next, 2, "adjticket-lock")
	return l
}

// Name implements Lock.
func (l *AdjustedTicket) Name() string { return "AdjTicket" }

// Fair implements Lock.
func (l *AdjustedTicket) Fair() bool { return true }

// Prepare implements Lock.
func (l *AdjustedTicket) Prepare(t *tsx.Thread) {}

// Addr returns the next counter's simulated address (tests use this).
func (l *AdjustedTicket) Addr() mem.Addr { return l.next }

// Acquire is the standard path of Algorithm 5 (the XACQUIRE prefix is the
// only difference on the lock side).
func (l *AdjustedTicket) Acquire(t *tsx.Thread) {
	cur := t.FetchAdd(l.next, 1)
	l.tickets[t.ID] = cur
	for t.Load(l.next+ticketOwnerOff) != cur {
		t.Pause()
	}
}

// TryAcquire draws a ticket and waits its turn.
func (l *AdjustedTicket) TryAcquire(t *tsx.Thread) bool {
	l.Acquire(t)
	return true
}

// Release implements Algorithm 5's unlock: try to retract the ticket; if
// another requester arrived, advance owner instead.
func (l *AdjustedTicket) Release(t *tsx.Thread) {
	cur := l.tickets[t.ID]
	if !t.CAS(l.next, cur+1, cur) {
		t.FetchAdd(l.next+ticketOwnerOff, 1)
	}
}

// SpecAcquire draws a ticket with an XACQUIRE-prefixed fetch-and-add. In an
// elided run the thread sees itself alone: its ticket equals owner and it
// enters immediately; if the lock is busy the speculative spin aborts.
func (l *AdjustedTicket) SpecAcquire(t *tsx.Thread) {
	cur := t.XAcquireFetchAdd(l.next, 1)
	l.tickets[t.ID] = cur
	for t.Load(l.next+ticketOwnerOff) != cur {
		t.Pause()
	}
}

// SpecRelease is Algorithm 5's unlock with an XRELEASE-prefixed CAS, which
// in an elided run always succeeds and restores the pre-acquire state,
// committing the transaction.
func (l *AdjustedTicket) SpecRelease(t *tsx.Thread) {
	cur := l.tickets[t.ID]
	if !t.XReleaseCAS(l.next, cur+1, cur) {
		t.FetchAdd(l.next+ticketOwnerOff, 1)
	}
}

// Held implements Lock.
func (l *AdjustedTicket) Held(t *tsx.Thread) bool {
	return t.Load(l.next) != t.Load(l.next+ticketOwnerOff)
}
