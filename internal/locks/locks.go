// Package locks implements the lock algorithms the paper studies, all
// operating on simulated memory (internal/mem) through the TSX engine
// (internal/tsx):
//
//   - TTAS: test-and-test-and-set spinlock (Algorithm 1)
//   - MCS: the queue lock of Mellor-Crummey and Scott (Algorithm 2), the
//     paper's representative of HLE-compatible fair locks
//   - Ticket: the classic ticket lock (Algorithm 4), NOT HLE-compatible
//   - AdjustedTicket: the paper's HLE-compatible ticket lock (Algorithm 5)
//   - CLH: the Craig, Landin and Hagersten queue lock (Algorithm 6), NOT
//     HLE-compatible
//   - AdjustedCLH: the paper's HLE-compatible CLH lock (Algorithm 7)
//
// Every lock offers a standard path (Acquire/Release) and a speculative
// path (SpecAcquire/SpecRelease) that issues XACQUIRE/XRELEASE operations.
// The speculative path must run inside tsx.Thread.HLERegion (or inside an
// RTM transaction for Algorithm 3's nesting mode). For the two unadjusted
// fair locks the speculative path falls back to the standard path, because
// their releases do not restore the lock word and HLE cannot be applied
// (Chapter 6).
package locks

import "hle/internal/tsx"

// MaxThreads bounds per-thread lock state (matches the TSX engine's
// 64-thread limit).
const MaxThreads = 64

// Lock is a mutual-exclusion lock living in simulated memory.
type Lock interface {
	// Name identifies the algorithm in reports ("TTAS", "MCS", ...).
	Name() string
	// Fair reports whether the lock provides FIFO fairness.
	Fair() bool
	// Prepare allocates thread-local state (queue nodes) for t. It must
	// be called once per thread, outside any transaction, before the
	// thread first uses the lock. Idempotent.
	Prepare(t *tsx.Thread)
	// Acquire takes the lock non-speculatively.
	Acquire(t *tsx.Thread)
	// TryAcquire makes one non-speculative acquisition attempt, the
	// software analogue of HLE's re-issued acquiring write. For queue
	// locks the re-issued write enqueues the thread, which then must
	// wait its turn, so TryAcquire blocks and returns true; for TTAS it
	// is a single test-and-set.
	TryAcquire(t *tsx.Thread) bool
	// Release exits the standard (non-speculative) critical section.
	Release(t *tsx.Thread)
	// SpecAcquire enters the critical section with lock elision
	// (XACQUIRE). Must execute within tsx.Thread.HLERegion.
	SpecAcquire(t *tsx.Thread)
	// SpecRelease exits the critical section entered by SpecAcquire
	// (XRELEASE): it commits the elision or releases the really-held
	// lock, whichever applies.
	SpecRelease(t *tsx.Thread)
	// Held reports whether the lock is observably taken. Inside a
	// transaction this places the lock state in the read set, which is
	// exactly what the SLR and SCM schemes need.
	Held(t *tsx.Thread) bool
}

// Maker constructs a lock in the simulated memory reachable from t.
// Construction must happen outside any transaction.
type Maker func(t *tsx.Thread) Lock

// Makers enumerates the lock constructors by report name, in the order the
// paper discusses them.
func Makers() []Maker {
	return []Maker{
		func(t *tsx.Thread) Lock { return NewTTAS(t) },
		func(t *tsx.Thread) Lock { return NewMCS(t) },
		func(t *tsx.Thread) Lock { return NewTicket(t) },
		func(t *tsx.Thread) Lock { return NewAdjustedTicket(t) },
		func(t *tsx.Thread) Lock { return NewCLH(t) },
		func(t *tsx.Thread) Lock { return NewAdjustedCLH(t) },
	}
}

// MakerByName returns the constructor for the named lock, or nil.
func MakerByName(name string) Maker {
	switch name {
	case "TTAS":
		return func(t *tsx.Thread) Lock { return NewTTAS(t) }
	case "MCS":
		return func(t *tsx.Thread) Lock { return NewMCS(t) }
	case "Ticket":
		return func(t *tsx.Thread) Lock { return NewTicket(t) }
	case "AdjTicket":
		return func(t *tsx.Thread) Lock { return NewAdjustedTicket(t) }
	case "CLH":
		return func(t *tsx.Thread) Lock { return NewCLH(t) }
	case "AdjCLH":
		return func(t *tsx.Thread) Lock { return NewAdjustedCLH(t) }
	case "BackoffTTAS":
		return func(t *tsx.Thread) Lock { return NewBackoffTTAS(t) }
	}
	return nil
}
