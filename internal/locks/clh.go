package locks

import (
	"hle/internal/mem"
	"hle/internal/tsx"
)

// CLH is the Craig/Landin/Hagersten queue lock of Algorithm 6: tail points
// at the last enqueued node; an arriving thread swaps its node in and spins
// on its predecessor's locked flag; release clears the thread's own flag
// and recycles the predecessor node. A CLH release never writes tail, so it
// is not HLE-compatible: the speculative path falls back to the standard
// path (Chapter 6).
type CLH struct {
	tail mem.Addr
	// myNode and pred are thread-local node pointers; the nodes
	// themselves live in simulated memory (one locked word each).
	myNode [MaxThreads]mem.Addr
	pred   [MaxThreads]mem.Addr
}

// NewCLH allocates a CLH lock whose tail initially points at an unlocked
// dummy node.
func NewCLH(t *tsx.Thread) *CLH {
	l := &CLH{tail: t.AllocLines(1)}
	dummy := t.AllocLines(1) // locked = 0
	t.LabelLockLines(l.tail, 1, "clh-tail")
	t.LabelLockLines(dummy, 1, "clh-node")
	t.Store(l.tail, uint64(dummy))
	return l
}

// Name implements Lock.
func (l *CLH) Name() string { return "CLH" }

// Fair implements Lock; CLH is FIFO.
func (l *CLH) Fair() bool { return true }

// Prepare allocates thread t's queue node.
func (l *CLH) Prepare(t *tsx.Thread) {
	if l.myNode[t.ID] == mem.Nil {
		l.myNode[t.ID] = t.AllocLines(1)
		t.LabelLockLines(l.myNode[t.ID], 1, "clh-node")
	}
}

// Acquire enqueues and waits on the predecessor's flag.
func (l *CLH) Acquire(t *tsx.Thread) {
	n := l.myNode[t.ID]
	if n == mem.Nil {
		panic("locks: CLH used before Prepare")
	}
	t.Store(n, 1)
	pred := mem.Addr(t.Swap(l.tail, uint64(n)))
	l.pred[t.ID] = pred
	for t.Load(pred) == 1 {
		t.Pause()
	}
}

// TryAcquire enqueues and waits its turn.
func (l *CLH) TryAcquire(t *tsx.Thread) bool {
	l.Acquire(t)
	return true
}

// Release clears the thread's flag and recycles the predecessor node.
func (l *CLH) Release(t *tsx.Thread) {
	t.Store(l.myNode[t.ID], 0)
	l.myNode[t.ID] = l.pred[t.ID]
}

// SpecAcquire falls back to the standard path (not HLE-compatible).
func (l *CLH) SpecAcquire(t *tsx.Thread) { l.Acquire(t) }

// SpecRelease falls back to the standard path.
func (l *CLH) SpecRelease(t *tsx.Thread) { l.Release(t) }

// Held implements Lock: the tail node's flag is set.
func (l *CLH) Held(t *tsx.Thread) bool {
	return t.Load(mem.Addr(t.Load(l.tail))) == 1
}

// AdjustedCLH is the paper's HLE-compatible CLH lock (Algorithm 7): release
// first tries to CAS tail back from myNode to pred, erasing the node's
// presence; in speculative or solo runs this always succeeds and restores
// the pre-acquire state. Otherwise release proceeds as standard CLH.
type AdjustedCLH struct {
	tail   mem.Addr
	myNode [MaxThreads]mem.Addr
	pred   [MaxThreads]mem.Addr
}

// NewAdjustedCLH allocates an adjusted CLH lock with an unlocked dummy
// tail node.
func NewAdjustedCLH(t *tsx.Thread) *AdjustedCLH {
	l := &AdjustedCLH{tail: t.AllocLines(1)}
	dummy := t.AllocLines(1)
	t.LabelLockLines(l.tail, 1, "adjclh-tail")
	t.LabelLockLines(dummy, 1, "adjclh-node")
	t.Store(l.tail, uint64(dummy))
	return l
}

// Name implements Lock.
func (l *AdjustedCLH) Name() string { return "AdjCLH" }

// Fair implements Lock.
func (l *AdjustedCLH) Fair() bool { return true }

// Addr returns the tail word's simulated address (tests use this).
func (l *AdjustedCLH) Addr() mem.Addr { return l.tail }

// Prepare allocates thread t's queue node.
func (l *AdjustedCLH) Prepare(t *tsx.Thread) {
	if l.myNode[t.ID] == mem.Nil {
		l.myNode[t.ID] = t.AllocLines(1)
		t.LabelLockLines(l.myNode[t.ID], 1, "adjclh-node")
	}
}

// Acquire is standard CLH acquisition (Algorithm 7's lock path without the
// XACQUIRE prefix).
func (l *AdjustedCLH) Acquire(t *tsx.Thread) {
	n := l.myNode[t.ID]
	if n == mem.Nil {
		panic("locks: AdjustedCLH used before Prepare")
	}
	t.Store(n, 1)
	pred := mem.Addr(t.Swap(l.tail, uint64(n)))
	l.pred[t.ID] = pred
	for t.Load(pred) == 1 {
		t.Pause()
	}
}

// TryAcquire enqueues and waits its turn.
func (l *AdjustedCLH) TryAcquire(t *tsx.Thread) bool {
	l.Acquire(t)
	return true
}

// Release implements Algorithm 7's unlock: try to pop the node off the
// tail; if other requesters arrived, hand over as standard CLH.
func (l *AdjustedCLH) Release(t *tsx.Thread) {
	n := l.myNode[t.ID]
	pred := l.pred[t.ID]
	if t.CAS(l.tail, uint64(n), uint64(pred)) {
		return
	}
	t.Store(n, 0)
	l.myNode[t.ID] = pred
}

// SpecAcquire enqueues with an XACQUIRE-prefixed swap. Under elision the
// swap returns the real tail node; if that node's flag is clear the elided
// critical section proceeds (concurrent elided threads all observe the same
// unlocked tail and run in parallel), otherwise the speculative spin
// aborts.
func (l *AdjustedCLH) SpecAcquire(t *tsx.Thread) {
	n := l.myNode[t.ID]
	if n == mem.Nil {
		panic("locks: AdjustedCLH used before Prepare")
	}
	t.Store(n, 1)
	pred := mem.Addr(t.XAcquireSwap(l.tail, uint64(n)))
	l.pred[t.ID] = pred
	for t.Load(pred) == 1 {
		t.Pause()
	}
}

// SpecRelease is Algorithm 7's unlock with an XRELEASE-prefixed CAS: under
// elision it restores tail to the predecessor (the pre-acquire value) and
// commits.
func (l *AdjustedCLH) SpecRelease(t *tsx.Thread) {
	n := l.myNode[t.ID]
	pred := l.pred[t.ID]
	if t.XReleaseCAS(l.tail, uint64(n), uint64(pred)) {
		return
	}
	t.Store(n, 0)
	l.myNode[t.ID] = pred
}

// Held implements Lock.
func (l *AdjustedCLH) Held(t *tsx.Thread) bool {
	return t.Load(mem.Addr(t.Load(l.tail))) == 1
}
