package locks

import (
	"reflect"
	"testing"

	"hle/internal/mem"
	"hle/internal/tsx"
)

func monitorMachine(t *testing.T, n int) *tsx.Machine {
	t.Helper()
	cfg := tsx.DefaultConfig(n)
	cfg.SpuriousPerAccess = 0
	return tsx.NewMachine(cfg)
}

// TestMonitorTracksStandardPath: Acquire/Release maintain holder state and
// Cycle stays nil for a single-lock workload.
func TestMonitorTracksStandardPath(t *testing.T) {
	m := monitorMachine(t, 2)
	mo := NewMonitor()
	var l Lock
	m.RunOne(func(th *tsx.Thread) {
		l = Monitored(NewTTAS(th), mo)
		l.Prepare(th)
		l.Acquire(th)
		if inner := (l.(*monitoredLock)).Lock; mo.Holder(inner) != th.ID {
			t.Errorf("holder = %d, want %d", mo.Holder(inner), th.ID)
		}
		if mo.Cycle() != nil {
			t.Error("cycle reported for a held, uncontended lock")
		}
		l.Release(th)
		if inner := (l.(*monitoredLock)).Lock; mo.Holder(inner) != -1 {
			t.Error("holder survives release")
		}
	})
}

// TestMonitorIgnoresElision: an elided critical section registers neither
// a hold nor a wait, while a suppressed (real) re-issue registers both.
func TestMonitorIgnoresElision(t *testing.T) {
	m := monitorMachine(t, 1)
	mo := NewMonitor()
	m.RunOne(func(th *tsx.Thread) {
		raw := NewTTAS(th)
		l := Monitored(raw, mo)
		l.Prepare(th)
		th.HLERegion(func() {
			l.SpecAcquire(th)
			if th.InElision() && mo.Holder(raw) != -1 {
				t.Error("elided acquisition registered a hold")
			}
			l.SpecRelease(th)
		})
		if mo.Holder(raw) != -1 {
			t.Error("hold left behind after elided region")
		}
	})
}

// TestMonitorCycleDetection: hand-built waits-for graphs, including the
// classic two-thread ABBA deadlock and a chain without a cycle.
func TestMonitorCycleDetection(t *testing.T) {
	m := monitorMachine(t, 1)
	var a, b Lock
	m.RunOne(func(th *tsx.Thread) {
		a, b = NewTTAS(th), NewTTAS(th)
	})
	mo := NewMonitor()

	// Chain: 0 waits on a (held by 1), 1 not waiting — no cycle.
	mo.acquired(1, a)
	mo.wait(0, a)
	if c := mo.Cycle(); c != nil {
		t.Errorf("chain reported as cycle %v", c)
	}

	// ABBA: 0 holds a and waits on b; 1 holds b and waits on a.
	mo.Reset()
	mo.acquired(0, a)
	mo.acquired(1, b)
	mo.wait(0, b)
	mo.wait(1, a)
	if c := mo.Cycle(); !reflect.DeepEqual(c, []int{0, 1}) {
		t.Errorf("cycle = %v, want [0 1]", c)
	}

	// Determinism: repeated calls return the identical cycle.
	if c1, c2 := mo.Cycle(), mo.Cycle(); !reflect.DeepEqual(c1, c2) {
		t.Errorf("cycle not deterministic: %v vs %v", c1, c2)
	}

	mo.Reset()
	if mo.Cycle() != nil {
		t.Error("cycle survives Reset")
	}
}

// TestMonitoredIsInvisibleToSimulation: wrapping locks in a Monitor must
// not change the simulated execution — clocks and results are identical.
func TestMonitoredIsInvisibleToSimulation(t *testing.T) {
	run := func(wrap bool) []uint64 {
		m := monitorMachine(t, 4)
		mo := NewMonitor()
		var l Lock
		var ctr mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			l = NewMCS(th)
			if wrap {
				l = Monitored(l, mo)
			}
			ctr = th.AllocLines(1)
		})
		clocks := make([]uint64, 4)
		m.Run(4, func(th *tsx.Thread) {
			l.Prepare(th)
			for i := 0; i < 30; i++ {
				th.HLERegion(func() {
					l.SpecAcquire(th)
					th.Store(ctr, th.Load(ctr)+1)
					l.SpecRelease(th)
				})
				l.Acquire(th)
				th.Store(ctr, th.Load(ctr)+1)
				l.Release(th)
			}
			clocks[th.ID] = th.Clock()
		})
		return clocks
	}
	plain := run(false)
	wrapped := run(true)
	if !reflect.DeepEqual(plain, wrapped) {
		t.Errorf("monitoring changed the schedule:\nplain:   %v\nwrapped: %v", plain, wrapped)
	}
}
