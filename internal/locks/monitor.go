package locks

import "hle/internal/tsx"

// Monitor maintains a waits-for graph over monitored locks: which thread
// holds each lock non-speculatively, and which lock each thread is waiting
// to acquire. The deadlock watchdog in internal/harness walks the graph.
//
// The graph is updated only from simulated execution (token-serialized by
// internal/sim), so it needs no synchronization of its own. One Monitor
// serves all the locks of one machine; never share a Monitor between
// machines running on different host goroutines.
//
// Only real, non-speculative acquisitions enter the graph: an elided
// critical section never actually holds the lock, so it can participate in
// a data conflict but not in a deadlock.
type Monitor struct {
	holder  map[Lock]int // lock -> holding thread
	waiting [MaxThreads]Lock
	have    [MaxThreads]bool // waiting[i] is valid
}

// NewMonitor returns an empty waits-for graph.
func NewMonitor() *Monitor {
	return &Monitor{holder: make(map[Lock]int)}
}

// Reset clears the graph (between Run calls; a watchdog-stopped run leaves
// stale holders behind).
func (mo *Monitor) Reset() {
	clear(mo.holder)
	for i := range mo.waiting {
		mo.waiting[i] = nil
		mo.have[i] = false
	}
}

func (mo *Monitor) wait(id int, l Lock) {
	mo.waiting[id] = l
	mo.have[id] = true
}

func (mo *Monitor) acquired(id int, l Lock) {
	mo.waiting[id] = nil
	mo.have[id] = false
	mo.holder[l] = id
}

func (mo *Monitor) abandoned(id int) {
	mo.waiting[id] = nil
	mo.have[id] = false
}

func (mo *Monitor) released(l Lock) {
	delete(mo.holder, l)
}

// Holder returns the thread holding l non-speculatively, or -1.
func (mo *Monitor) Holder(l Lock) int {
	if id, ok := mo.holder[l]; ok {
		return id
	}
	return -1
}

// Cycle returns a waits-for cycle as an ordered thread-id list (each thread
// waits on a lock held by the next, wrapping around), or nil if the graph
// is acyclic. Starting points are scanned in thread-id order so the result
// is deterministic — never a function of map iteration order.
func (mo *Monitor) Cycle() []int {
	for start := 0; start < MaxThreads; start++ {
		if !mo.have[start] {
			continue
		}
		var path []int
		onPath := [MaxThreads]bool{}
		id := start
		for {
			if !mo.have[id] {
				break // chain ends at a thread that is not waiting
			}
			holder, held := mo.holder[mo.waiting[id]]
			if !held {
				break // waiting on a free (or elided) lock
			}
			if onPath[id] {
				// Found a cycle; trim the lead-in before id.
				for i, p := range path {
					if p == id {
						return path[i:]
					}
				}
			}
			onPath[id] = true
			path = append(path, id)
			id = holder
		}
	}
	return nil
}

// monitoredLock wraps a Lock, reporting standard-path transitions to a
// Monitor. The wrapper performs no simulated memory accesses of its own,
// so monitoring never changes the simulated execution — only the
// host-side graph. The speculative path is passed through unreported:
// elided acquisitions do not hold the lock (see Monitor).
type monitoredLock struct {
	Lock
	mo *Monitor
}

// Monitored wraps l so its non-speculative transitions update mo.
func Monitored(l Lock, mo *Monitor) Lock {
	return &monitoredLock{Lock: l, mo: mo}
}

func (ml *monitoredLock) Acquire(t *tsx.Thread) {
	ml.mo.wait(t.ID, ml.Lock)
	ml.Lock.Acquire(t)
	ml.mo.acquired(t.ID, ml.Lock)
}

func (ml *monitoredLock) TryAcquire(t *tsx.Thread) bool {
	ml.mo.wait(t.ID, ml.Lock)
	if ml.Lock.TryAcquire(t) {
		ml.mo.acquired(t.ID, ml.Lock)
		return true
	}
	ml.mo.abandoned(t.ID)
	return false
}

func (ml *monitoredLock) Release(t *tsx.Thread) {
	ml.Lock.Release(t)
	ml.mo.released(ml.Lock)
}

// SpecRelease must unregister when the elision fell back to a real
// acquisition: HLERegion re-issues the acquiring write non-speculatively
// after an abort, and that path goes through the inner lock's
// SpecAcquire/SpecRelease, not Acquire/Release. Elision is sampled before
// the inner call — SpecRelease commits an elided region, so afterwards
// both paths look identical.
func (ml *monitoredLock) SpecRelease(t *tsx.Thread) {
	elided := t.InElision()
	ml.Lock.SpecRelease(t)
	if !elided {
		// The region was a real critical section.
		ml.mo.released(ml.Lock)
	}
}

// SpecAcquire registers a hold only when the acquisition ends up real —
// the non-transactional re-issue after an HLE abort, or a lock whose
// speculative path falls back to the standard one. While elided (or
// buffered inside an enclosing transaction), the thread neither holds nor
// waits.
func (ml *monitoredLock) SpecAcquire(t *tsx.Thread) {
	if t.ReissuePending() {
		ml.mo.wait(t.ID, ml.Lock)
	}
	ml.Lock.SpecAcquire(t)
	if !t.InTx() {
		ml.mo.acquired(t.ID, ml.Lock)
	} else {
		ml.mo.abandoned(t.ID)
	}
}
