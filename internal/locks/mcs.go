package locks

import (
	"hle/internal/mem"
	"hle/internal/tsx"
)

// MCS is the queue lock of Algorithm 2. Each thread owns a queue node
// (locked flag + next pointer); an arriving thread swaps its node into the
// tail and spins on its own flag. MCS releases restore nothing about the
// tail word when the queue is empty — but the release CAS(tail, myNode,
// NULL) does restore the pre-acquire state in a solo run, which makes MCS
// the one classic fair lock that is HLE-compatible as-is. The paper uses it
// as the representative fair lock.
type MCS struct {
	tail  mem.Addr
	nodes [MaxThreads]mem.Addr // per-thread queue nodes: [locked, next]
}

const (
	mcsLocked = 0 // word offset of the locked flag
	mcsNext   = 1 // word offset of the next pointer
)

// NewMCS allocates an MCS lock with a tail word on its own cache line.
func NewMCS(t *tsx.Thread) *MCS {
	l := &MCS{tail: t.AllocLines(1)}
	t.LabelLockLines(l.tail, 1, "mcs-tail")
	return l
}

// Name implements Lock.
func (l *MCS) Name() string { return "MCS" }

// Fair implements Lock; MCS is FIFO.
func (l *MCS) Fair() bool { return true }

// Addr returns the tail word's simulated address (tests use this).
func (l *MCS) Addr() mem.Addr { return l.tail }

// Prepare allocates thread t's queue node. Must run outside a transaction.
func (l *MCS) Prepare(t *tsx.Thread) {
	if l.nodes[t.ID] == mem.Nil {
		l.nodes[t.ID] = t.AllocLines(2)
		t.LabelLockLines(l.nodes[t.ID], 2, "mcs-node")
	}
}

func (l *MCS) node(t *tsx.Thread) mem.Addr {
	n := l.nodes[t.ID]
	if n == mem.Nil {
		panic("locks: MCS used before Prepare")
	}
	return n
}

// Acquire enqueues the thread's node and spins until its predecessor hands
// the lock over.
func (l *MCS) Acquire(t *tsx.Thread) {
	n := l.node(t)
	t.Store(n+mcsLocked, 1)
	t.Store(n+mcsNext, 0)
	pred := mem.Addr(t.Swap(l.tail, uint64(n)))
	if pred != mem.Nil {
		t.Store(pred+mcsNext, uint64(n))
		for t.Load(n+mcsLocked) == 1 {
			t.Pause()
		}
	}
}

// TryAcquire enqueues and waits (the re-issued swap joins the queue).
func (l *MCS) TryAcquire(t *tsx.Thread) bool {
	l.Acquire(t)
	return true
}

// Release hands the lock to the successor, or empties the queue.
func (l *MCS) Release(t *tsx.Thread) {
	n := l.node(t)
	if t.Load(n+mcsNext) == 0 {
		if t.CAS(l.tail, uint64(n), 0) {
			return
		}
		for t.Load(n+mcsNext) == 0 {
			t.Pause()
		}
	}
	t.Store(mem.Addr(t.Load(n+mcsNext))+mcsLocked, 0)
}

// SpecAcquire is Algorithm 2's lock path with an XACQUIRE-prefixed swap.
// Under elision the swap returns the real tail: NULL lets the elided
// critical section proceed; a non-NULL predecessor dooms the speculation
// (the elided enqueue is invisible, so the flag will never clear — the
// spin's PAUSE aborts, as Chapter 3 explains).
func (l *MCS) SpecAcquire(t *tsx.Thread) {
	n := l.node(t)
	t.Store(n+mcsLocked, 1)
	t.Store(n+mcsNext, 0)
	pred := mem.Addr(t.XAcquireSwap(l.tail, uint64(n)))
	if pred != mem.Nil {
		t.Store(pred+mcsNext, uint64(n))
		for t.Load(n+mcsLocked) == 1 {
			t.Pause()
		}
	}
}

// SpecRelease is Algorithm 2's unlock with an XRELEASE-prefixed CAS: in an
// elided solo view the queue appears empty, the CAS restores NULL and the
// transaction commits. On the standard path it is a plain MCS release.
func (l *MCS) SpecRelease(t *tsx.Thread) {
	n := l.node(t)
	if t.Load(n+mcsNext) == 0 {
		if t.XReleaseCAS(l.tail, uint64(n), 0) {
			return
		}
		for t.Load(n+mcsNext) == 0 {
			t.Pause()
		}
	}
	t.Store(mem.Addr(t.Load(n+mcsNext))+mcsLocked, 0)
}

// Held implements Lock: the queue is non-empty.
func (l *MCS) Held(t *tsx.Thread) bool {
	return t.Load(l.tail) != 0
}
