package locks_test

import (
	"fmt"
	"testing"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// TestAdjustedLockWordRestoration is a randomized property test of
// Theorems 1-2: when every critical section of a run is elided, the
// adjusted ticket and CLH locks' shared words are bit-identical to their
// pre-run values — both at quiescence and at every point in between, since
// elided stores stay in speculative write buffers and are discarded by the
// XRELEASE restoration before commit. Each seed produces a different
// concurrent arrival schedule (random per-op work, random grant jitter);
// every thread re-checks the globally visible lock words after each of its
// elided sections, not just at the end.
func TestAdjustedLockWordRestoration(t *testing.T) {
	const threads, opsPerThread = 4, 25
	type lockCase struct {
		name  string
		words func(th *tsx.Thread) (locks.Lock, []mem.Addr)
	}
	cases := []lockCase{
		{"AdjTicket", func(th *tsx.Thread) (locks.Lock, []mem.Addr) {
			l := locks.NewAdjustedTicket(th)
			return l, []mem.Addr{l.Addr(), l.Addr() + 1} // next, owner
		}},
		{"AdjCLH", func(th *tsx.Thread) (locks.Lock, []mem.Addr) {
			l := locks.NewAdjustedCLH(th)
			return l, []mem.Addr{l.Addr()} // tail
		}},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 12; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				m := newMachine(threads, seed)
				var l locks.Lock
				var words []mem.Addr
				var pre []uint64
				m.RunOne(func(th *tsx.Thread) {
					l, words = tc.words(th)
					for _, a := range words {
						pre = append(pre, m.Mem.Read(a))
					}
				})
				scheme := core.NewHLE(l)
				// Threads share no data, so with spurious aborts disabled
				// every section elides; the elided lock line is read-shared
				// and never a conflict.
				data := make([]mem.Addr, threads)
				m.RunOne(func(th *tsx.Thread) {
					for i := range data {
						data[i] = th.AllocLines(1)
					}
				})
				allSpec := true
				m.Run(threads, func(th *tsx.Thread) {
					scheme.Setup(th)
					for op := 0; op < opsPerThread; op++ {
						r := scheme.Run(th, func() {
							v := th.Load(data[th.ID])
							th.Work(uint64(th.Rand().Intn(30)))
							th.Store(data[th.ID], v+1)
						})
						if !r.Spec {
							allSpec = false
							continue
						}
						// The op was elided: the restoration must already
						// be globally invisible, whatever the other threads
						// are speculating on right now.
						for i, a := range words {
							if got := th.Load(a); got != pre[i] {
								t.Errorf("thread %d op %d: %s word %d is %#x mid-run, want pre-run %#x",
									th.ID, op, tc.name, i, got, pre[i])
							}
						}
					}
				})
				if !allSpec {
					t.Fatalf("a section fell back to real acquisition with spurious aborts off and disjoint data")
				}
				for i, a := range words {
					if got := m.Mem.Read(a); got != pre[i] {
						t.Errorf("%s word %d is %#x at quiescence, want pre-run %#x", tc.name, i, got, pre[i])
					}
				}
			})
		}
	}
}
