package locks_test

import (
	"testing"

	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// TestMixedSpeculativeAndStandard covers the "mixed runs" case of the
// Chapter 6 correctness theorems: half the threads use the speculative
// path, half the standard path, concurrently — mutual exclusion must hold
// (checked through exact counter arithmetic).
func TestMixedSpeculativeAndStandard(t *testing.T) {
	for _, name := range []string{"TTAS", "MCS", "AdjTicket", "AdjCLH"} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(6, 29)
			var l locks.Lock
			var ctr mem.Addr
			m.RunOne(func(th *tsx.Thread) {
				l = locks.MakerByName(name)(th)
				ctr = th.AllocLines(1)
			})
			const perThread = 80
			m.Run(6, func(th *tsx.Thread) {
				l.Prepare(th)
				for i := 0; i < perThread; i++ {
					if th.ID%2 == 0 {
						th.HLERegion(func() {
							l.SpecAcquire(th)
							v := th.Load(ctr)
							th.Work(4)
							th.Store(ctr, v+1)
							l.SpecRelease(th)
						})
					} else {
						l.Acquire(th)
						v := th.Load(ctr)
						th.Work(4)
						th.Store(ctr, v+1)
						l.Release(th)
					}
				}
			})
			var got uint64
			m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
			if got != 6*perThread {
				t.Fatalf("counter = %d, want %d", got, 6*perThread)
			}
		})
	}
}

// TestTryAcquire covers the HLE-reissue analogue: TTAS's single attempt can
// fail; queue locks block and succeed.
func TestTryAcquire(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		ttas := locks.NewTTAS(th)
		ttas.Prepare(th)
		if !ttas.TryAcquire(th) {
			t.Fatal("TryAcquire on free TTAS failed")
		}
		if ttas.TryAcquire(th) {
			t.Fatal("TryAcquire on held TTAS succeeded")
		}
		ttas.Release(th)

		mcs := locks.NewMCS(th)
		mcs.Prepare(th)
		if !mcs.TryAcquire(th) {
			t.Fatal("MCS TryAcquire must block and succeed")
		}
		mcs.Release(th)
	})
}

// TestHeldReflectsState for each lock.
func TestHeldReflectsState(t *testing.T) {
	for _, name := range []string{"TTAS", "MCS", "Ticket", "AdjTicket", "CLH", "AdjCLH"} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(1, 1)
			m.RunOne(func(th *tsx.Thread) {
				l := locks.MakerByName(name)(th)
				l.Prepare(th)
				if l.Held(th) {
					t.Fatal("fresh lock reads held")
				}
				l.Acquire(th)
				if !l.Held(th) {
					t.Fatal("acquired lock reads free")
				}
				l.Release(th)
				if l.Held(th) {
					t.Fatal("released lock reads held")
				}
			})
		})
	}
}

// TestFairAttribute pins the fairness metadata the schemes rely on.
func TestFairAttribute(t *testing.T) {
	want := map[string]bool{
		"TTAS": false, "MCS": true, "Ticket": true,
		"AdjTicket": true, "CLH": true, "AdjCLH": true,
	}
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		for name, fair := range want {
			l := locks.MakerByName(name)(th)
			if l.Fair() != fair {
				t.Errorf("%s.Fair() = %v, want %v", name, l.Fair(), fair)
			}
			if l.Name() != name {
				t.Errorf("Name() = %q, want %q", l.Name(), name)
			}
		}
	})
}

// TestAdjustedLocksEraseTracesUnderElision: Theorem 1(i)/2(i) for the
// speculative path — after a fully-elided acquire/release, the lock's
// shared state (tail word or ticket counters) is bit-identical to before.
// (The thread's private queue-node initialization happens before the
// XACQUIRE and is a real store on hardware too, so it is excluded.)
func TestAdjustedLocksEraseTracesUnderElision(t *testing.T) {
	for _, name := range []string{"AdjTicket", "AdjCLH", "MCS"} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(1, 1)
			m.RunOne(func(th *tsx.Thread) {
				l := locks.MakerByName(name)(th)
				l.Prepare(th)
				var shared []mem.Addr
				switch v := l.(type) {
				case *locks.AdjustedTicket:
					shared = []mem.Addr{v.Addr(), v.Addr() + 1}
				case *locks.AdjustedCLH:
					shared = []mem.Addr{v.Addr(), mem.Addr(th.Load(v.Addr()))}
				case *locks.MCS:
					shared = []mem.Addr{v.Addr()}
				}
				before := make([]uint64, len(shared))
				for i, a := range shared {
					before[i] = th.Load(a)
				}
				th.HLERegion(func() {
					l.SpecAcquire(th)
					if !th.InElision() {
						t.Fatal("did not elide")
					}
					l.SpecRelease(th)
				})
				for i, a := range shared {
					if got := th.Load(a); got != before[i] {
						t.Errorf("lock word %d changed from %d to %d after elided critical section",
							a, before[i], got)
					}
				}
			})
		})
	}
}

// TestLockMetadataAndMakers covers the registry and metadata across all
// locks, including the backoff variant.
func TestLockMetadataAndMakers(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		if got := len(allLocks(th)); got != 6 {
			t.Errorf("Makers() returned %d locks", got)
		}
		b := locks.NewBackoffTTAS(th)
		b.Prepare(th)
		if b.Name() != "BackoffTTAS" || b.Fair() {
			t.Error("BackoffTTAS metadata wrong")
		}
		if !b.TryAcquire(th) {
			t.Fatal("TryAcquire on free backoff lock failed")
		}
		if b.TryAcquire(th) {
			t.Fatal("TryAcquire on held backoff lock succeeded")
		}
		if !b.Held(th) {
			t.Fatal("Held wrong")
		}
		b.Release(th)

		ttas := locks.NewTTAS(th)
		ttas.Prepare(th)
		if ttas.Addr() == 0 {
			t.Error("TTAS.Addr returned nil address")
		}
		tk := locks.NewTicket(th)
		tk.Prepare(th)
		if !tk.TryAcquire(th) {
			t.Fatal("ticket TryAcquire should block-and-succeed")
		}
		tk.Release(th)
		at := locks.NewAdjustedTicket(th)
		at.Prepare(th)
		if !at.TryAcquire(th) {
			t.Fatal("adjusted-ticket TryAcquire should block-and-succeed")
		}
		at.Release(th)
		clh := locks.NewCLH(th)
		clh.Prepare(th)
		if !clh.TryAcquire(th) {
			t.Fatal("CLH TryAcquire should block-and-succeed")
		}
		clh.Release(th)
		aclh := locks.NewAdjustedCLH(th)
		aclh.Prepare(th)
		if !aclh.TryAcquire(th) {
			t.Fatal("adjusted-CLH TryAcquire should block-and-succeed")
		}
		aclh.Release(th)
	})
}

// TestMCSReleaseWithLateSuccessor exercises the MCS release race window:
// the releaser sees next==nil, its CAS fails because a successor is mid-
// enqueue, and it must wait for the successor link before handing over.
func TestMCSReleaseWithLateSuccessor(t *testing.T) {
	m := newMachine(8, 77)
	var l locks.Lock
	var ctr mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		l = locks.NewMCS(th)
		ctr = th.AllocLines(1)
	})
	// Zero think time maximizes enqueue-during-release races.
	m.Run(8, func(th *tsx.Thread) {
		l.Prepare(th)
		for i := 0; i < 200; i++ {
			l.Acquire(th)
			th.Store(ctr, th.Load(ctr)+1)
			l.Release(th)
		}
	})
	var got uint64
	m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
	if got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
}
