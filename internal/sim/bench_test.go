package sim

import (
	"fmt"
	"testing"
)

// BenchmarkStepYield measures the scheduler handoff itself: with Quantum 1
// and unit step costs, nearly every Step exhausts its grant and passes the
// token, so ns/op approximates the cost of one yield-reschedule-resume
// cycle (divided across procs).
func BenchmarkStepYield(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			steps := b.N/n + 1
			b.ResetTimer()
			Run(Config{Seed: 1, Quantum: 1}, n, func(p *Proc) {
				for i := 0; i < steps; i++ {
					p.Step(1)
				}
			})
		})
	}
}

// BenchmarkStepSole measures Step when a sole proc holds an unbounded
// grant: the no-yield fast path every uncontended access takes.
func BenchmarkStepSole(b *testing.B) {
	Run(Config{Seed: 1}, 1, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Step(1)
		}
	})
}

// BenchmarkStepSoleWatchdog measures the sole-runner path with an armed
// watchdog: grants must stay finite, so the proc re-enters the scheduler
// every quantum — the self-grant case of the direct-handoff design.
func BenchmarkStepSoleWatchdog(b *testing.B) {
	Run(Config{Seed: 1, Watchdog: func(uint64) bool { return false }}, 1, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Step(1)
		}
	})
}
