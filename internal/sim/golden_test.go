package sim

import (
	"flag"
	"testing"
)

// printHashes makes the golden tests print the hashes they compute instead
// of asserting, for regenerating the constants below after an intentional
// schedule change:
//
//	go test ./internal/sim -run TestGoldenScheduleHash -sim.printhashes -v
var printHashes = flag.Bool("sim.printhashes", false, "print schedule hashes instead of asserting")

// hashSchedule runs the workload and returns an FNV-1a fingerprint of the
// complete schedule: every grant in issue order — (procID, target, stop) —
// followed by each proc's final clock and stopped flag. Any change to
// min-clock selection, tie-breaking, RNG consumption, grant-slice
// computation, or the stop cascade changes the hash.
func hashSchedule(cfg Config, n int, body func(p *Proc)) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	grantHook = func(procID int, target uint64, stop bool) {
		mix(uint64(procID))
		mix(target)
		if stop {
			mix(1)
		} else {
			mix(0)
		}
	}
	defer func() { grantHook = nil }()
	procs := Run(cfg, n, body)
	for _, p := range procs {
		mix(p.Clock())
		if p.Stopped() {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// goldenSchedules are representative workloads whose schedule hashes were
// recorded against the pre-direct-handoff central scheduler. The direct
// handoff rewrite must reproduce every one byte-for-byte: same grant
// targets, same grant order, same RNG draws, same stop cascades.
var goldenSchedules = []struct {
	name string
	want uint64
	run  func() uint64
}{
	{
		// Plain contended run: equal-priority procs drawing step costs
		// from their per-proc RNG, exercising min-clock selection and
		// grant-slice randomization.
		name: "uniform-4procs",
		want: 0xceacf5a525b1df7d,
		run: func() uint64 {
			return hashSchedule(Config{Seed: 42, Quantum: 16}, 4, func(p *Proc) {
				for i := 0; i < 300; i++ {
					p.Step(uint64(p.Rand().Intn(5) + 1))
				}
			})
		},
	},
	{
		// Procs finishing at very different times: exercises removal from
		// the run queue (and therefore the tie-break order among the
		// survivors) plus the sole-runner endgame.
		name: "uneven-finish-6procs",
		want: 0x317fae7137f37085,
		run: func() uint64 {
			return hashSchedule(Config{Seed: 7}, 6, func(p *Proc) {
				for i := 0; i < 50*(p.ID+1); i++ {
					p.Step(uint64(p.ID%3 + 1))
				}
			})
		},
	},
	{
		// Many procs with clock ties: procs stepping identical costs tie
		// constantly, locking the tie-breaking order into the hash.
		name: "ties-8procs",
		want: 0x3421f200e59bddcf,
		run: func() uint64 {
			return hashSchedule(Config{Seed: 3, Quantum: 4}, 8, func(p *Proc) {
				for i := 0; i < 200; i++ {
					p.Step(2)
				}
			})
		},
	},
	{
		// Sole runner with an armed (never-tripping) watchdog: every grant
		// is finite and re-granted to the same proc — the self-grant fast
		// path of the direct-handoff scheduler.
		name: "sole-watchdog",
		want: 0xd822b105bce74f41,
		run: func() uint64 {
			return hashSchedule(Config{Seed: 11, Watchdog: func(uint64) bool { return false }}, 1, func(p *Proc) {
				for i := 0; i < 500; i++ {
					p.Step(3)
				}
			})
		},
	},
	{
		// Watchdog trip mid-run: locks the stop-cascade order (min-clock
		// procs are stopped first) and the stopped flags.
		name: "stop-cascade",
		want: 0x7431015c9bfaa9c7,
		run: func() uint64 {
			return hashSchedule(Config{Seed: 5, Watchdog: func(minClock uint64) bool {
				return minClock > 5_000
			}}, 4, func(p *Proc) {
				for {
					p.Step(uint64(p.Rand().Intn(3) + 1))
				}
			})
		},
	},
	{
		// Grant hook skewing slices (chaos-engine style): the hook runs
		// after the scheduler's own draw, so the RNG consumption pattern
		// is the plain one even though targets differ.
		name: "grant-skew",
		want: 0x48011415bdd35f77,
		run: func() uint64 {
			return hashSchedule(Config{Seed: 13, Quantum: 8, Grant: func(id int, clock, slice uint64) uint64 {
				if id == 0 {
					return 1
				}
				return slice * 3
			}}, 3, func(p *Proc) {
				for i := 0; i < 250; i++ {
					p.Step(uint64(1 + (i+p.ID)%4))
				}
			})
		},
	},
}

// TestGoldenScheduleHash asserts the schedule fingerprints recorded before
// the direct-handoff scheduler rewrite, pinning byte-identical scheduling
// in place. A mismatch means the scheduler changed observable behavior —
// which invalidates every recorded figure in EXPERIMENTS.md.
func TestGoldenScheduleHash(t *testing.T) {
	for _, g := range goldenSchedules {
		got := g.run()
		if *printHashes {
			t.Logf("%-22s 0x%016x", g.name, got)
			continue
		}
		if got != g.want {
			t.Errorf("%s: schedule hash = 0x%016x, want 0x%016x (schedule changed!)", g.name, got, g.want)
		}
	}
}
