// Package sim provides a deterministic, cycle-approximate simulator of a
// small multicore machine.
//
// Simulated hardware threads ("procs") run as goroutines, but execution is
// serialized through a scheduler token: at any instant exactly one proc is
// running, and the scheduler always resumes the proc with the smallest
// virtual clock. Each simulated memory access advances the issuing proc's
// clock by the access cost, so virtual time behaves like parallel wall time
// on a real machine, while the host needs only a single CPU and every run is
// reproducible from a seed.
//
// Upper layers (the TSX engine in internal/tsx) perform all shared-state
// manipulation between a grant and the following yield, so they need no
// Go-level synchronization of their own.
package sim

import (
	"fmt"
	"math/rand"
)

// Config describes the simulated machine.
type Config struct {
	// Procs is the number of simulated hardware threads.
	Procs int
	// Seed makes runs reproducible. Two runs with equal Config and equal
	// workloads produce identical schedules and identical statistics.
	Seed int64
	// Quantum is the number of virtual cycles a proc may run past the
	// runner-up clock before it must yield to the scheduler. Smaller
	// values interleave more finely at higher simulation cost.
	// Zero selects DefaultQuantum.
	Quantum uint64
}

// DefaultQuantum is used when Config.Quantum is zero. It is small enough
// that independent procs interleave within a single short critical section.
const DefaultQuantum = 12

// Proc is one simulated hardware thread. A Proc is only valid inside the
// body function passed to Run, and must not be shared across bodies.
type Proc struct {
	// ID is the hardware thread index, in [0, Config.Procs).
	ID int

	clock  uint64
	target uint64
	grant  chan uint64
	yield  chan yieldKind
	rng    *rand.Rand
}

type yieldKind uint8

const (
	yieldRunning yieldKind = iota
	yieldDone
)

// Clock returns the proc's current virtual time in cycles.
func (p *Proc) Clock() uint64 { return p.clock }

// Rand returns the proc's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Step advances the proc's virtual clock by cost cycles, yielding to the
// scheduler if the proc has run ahead of its peers. Every simulated memory
// access and every unit of simulated computation funnels through Step.
func (p *Proc) Step(cost uint64) {
	p.clock += cost
	if p.clock >= p.target {
		p.yield <- yieldRunning
		p.target = <-p.grant
	}
}

// Run simulates n procs, each executing body, and returns when all bodies
// have returned. The scheduler resumes the minimum-clock proc first (ties
// broken by lowest ID), granting it a quantum beyond the runner-up clock.
//
// A panic in a body is re-raised on the caller's goroutine.
func Run(cfg Config, n int, body func(p *Proc)) []*Proc {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Run with n = %d", n))
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}

	procs := make([]*Proc, n)
	panics := make([]any, n)
	for i := range procs {
		procs[i] = &Proc{
			ID:    i,
			grant: make(chan uint64),
			yield: make(chan yieldKind),
			rng:   rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)*7919 + 1)),
		}
	}
	for i, p := range procs {
		go func(i int, p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
					p.yield <- yieldDone
				}
			}()
			p.target = <-p.grant
			body(p)
			p.yield <- yieldDone
		}(i, p)
	}

	// Grant lengths are randomized in [1, quantum] to break phase-locking:
	// with deterministic equal-length grants, threads running identical
	// loops execute in rigid lockstep and their critical sections never
	// interleave in token order, hiding conflicts that overlap in virtual
	// time. Real machines have scheduling noise; so does this one.
	schedRng := rand.New(rand.NewSource(cfg.Seed*2_654_435_761 + 97))

	running := make([]*Proc, len(procs))
	copy(running, procs)
	for len(running) > 0 {
		// Pick the minimum-clock proc; find the runner-up clock to set
		// the grant target.
		minIdx := 0
		for i, p := range running[1:] {
			if p.clock < running[minIdx].clock {
				minIdx = i + 1
			}
		}
		target := ^uint64(0)
		if len(running) > 1 {
			second := ^uint64(0)
			for i, p := range running {
				if i != minIdx && p.clock < second {
					second = p.clock
				}
			}
			slice := 1 + uint64(schedRng.Int63n(int64(quantum)))
			if second < ^uint64(0)-slice {
				target = second + slice
			}
		}
		p := running[minIdx]
		p.grant <- target
		if <-p.yield == yieldDone {
			running[minIdx] = running[len(running)-1]
			running = running[:len(running)-1]
		}
	}
	for i, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("sim: proc %d panicked: %v", i, r))
		}
	}
	return procs
}
