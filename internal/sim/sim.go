// Package sim provides a deterministic, cycle-approximate simulator of a
// small multicore machine.
//
// Simulated hardware threads ("procs") run as goroutines, but execution is
// serialized through a scheduler token: at any instant exactly one proc is
// running, and the scheduler always resumes the proc with the smallest
// virtual clock. Each simulated memory access advances the issuing proc's
// clock by the access cost, so virtual time behaves like parallel wall time
// on a real machine, while the host needs only a single CPU and every run is
// reproducible from a seed.
//
// Upper layers (the TSX engine in internal/tsx) perform all shared-state
// manipulation between a grant and the following yield, so they need no
// Go-level synchronization of their own.
package sim

import (
	"fmt"
	"math/rand"
)

// Config describes the simulated machine.
type Config struct {
	// Procs is the number of simulated hardware threads.
	Procs int
	// Seed makes runs reproducible. Two runs with equal Config and equal
	// workloads produce identical schedules and identical statistics.
	Seed int64
	// Quantum is the number of virtual cycles a proc may run past the
	// runner-up clock before it must yield to the scheduler. Smaller
	// values interleave more finely at higher simulation cost.
	// Zero selects DefaultQuantum.
	Quantum uint64

	// Grant, when non-nil, adjusts the randomized grant slice before it is
	// handed to a proc — the fault-injection point for scheduler-grant
	// skew. It runs after the scheduler's own random draw, so a nil Grant
	// and an identity Grant produce byte-identical schedules.
	Grant func(procID int, clock, slice uint64) uint64

	// Watchdog, when non-nil, is consulted before every grant with the
	// about-to-run proc's clock (the minimum clock in the machine).
	// Returning true stops the simulation: every remaining proc unwinds
	// at its next Step and Run returns normally with those procs marked
	// Stopped. The liveness watchdogs in internal/harness use this to
	// degrade a livelocked or deadlocked run into a diagnostic result
	// instead of a hang.
	Watchdog func(minClock uint64) bool
}

// DefaultQuantum is used when Config.Quantum is zero. It is small enough
// that independent procs interleave within a single short critical section.
const DefaultQuantum = 12

// Proc is one simulated hardware thread. A Proc is only valid inside the
// body function passed to Run, and must not be shared across bodies.
type Proc struct {
	// ID is the hardware thread index, in [0, Config.Procs).
	ID int

	clock   uint64
	target  uint64
	grant   chan grantMsg
	yield   chan yieldKind
	rng     *rand.Rand
	stopped bool
}

type yieldKind uint8

const (
	yieldRunning yieldKind = iota
	yieldDone
)

// grantMsg is what the scheduler hands a resuming proc: a new clock target,
// or a stop order that unwinds the proc's body.
type grantMsg struct {
	target uint64
	stop   bool
}

// stopSignal is the panic value that unwinds a proc's body when the
// scheduler stops the simulation. It deliberately does not implement error:
// transaction-rollback recovers (internal/tsx) re-raise everything that is
// not their own sentinel, so the signal always reaches the proc wrapper.
type stopSignal struct{}

// Clock returns the proc's current virtual time in cycles.
func (p *Proc) Clock() uint64 { return p.clock }

// Rand returns the proc's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Stopped reports whether the proc was unwound by a watchdog stop rather
// than returning from its body. A stopped proc's body did not finish: its
// upper-layer state (open transactions, held locks) is torn and only good
// for diagnostics.
func (p *Proc) Stopped() bool { return p.stopped }

// Step advances the proc's virtual clock by cost cycles, yielding to the
// scheduler if the proc has run ahead of its peers. Every simulated memory
// access and every unit of simulated computation funnels through Step.
func (p *Proc) Step(cost uint64) {
	p.clock += cost
	if p.clock >= p.target {
		p.yield <- yieldRunning
		p.target = p.recvGrant()
	}
}

// recvGrant blocks for the next grant, unwinding the proc on a stop order.
func (p *Proc) recvGrant() uint64 {
	g := <-p.grant
	if g.stop {
		p.stopped = true
		panic(stopSignal{})
	}
	return g.target
}

// Run simulates n procs, each executing body, and returns when all bodies
// have returned. The scheduler resumes the minimum-clock proc first (ties
// broken by lowest ID), granting it a quantum beyond the runner-up clock.
//
// A panic in a body is re-raised on the caller's goroutine.
func Run(cfg Config, n int, body func(p *Proc)) []*Proc {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Run with n = %d", n))
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}

	procs := make([]*Proc, n)
	panics := make([]any, n)
	for i := range procs {
		procs[i] = &Proc{
			ID:    i,
			grant: make(chan grantMsg),
			yield: make(chan yieldKind),
			rng:   rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)*7919 + 1)),
		}
	}
	for i, p := range procs {
		go func(i int, p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					if _, isStop := r.(stopSignal); !isStop {
						panics[i] = r
					}
					p.yield <- yieldDone
				}
			}()
			p.target = p.recvGrant()
			body(p)
			p.yield <- yieldDone
		}(i, p)
	}

	// Grant lengths are randomized in [1, quantum] to break phase-locking:
	// with deterministic equal-length grants, threads running identical
	// loops execute in rigid lockstep and their critical sections never
	// interleave in token order, hiding conflicts that overlap in virtual
	// time. Real machines have scheduling noise; so does this one.
	schedRng := rand.New(rand.NewSource(cfg.Seed*2_654_435_761 + 97))

	running := make([]*Proc, len(procs))
	copy(running, procs)
	stopping := false
	for len(running) > 0 {
		// Pick the minimum-clock proc; find the runner-up clock to set
		// the grant target.
		minIdx := 0
		for i, p := range running[1:] {
			if p.clock < running[minIdx].clock {
				minIdx = i + 1
			}
		}
		p := running[minIdx]
		if !stopping && cfg.Watchdog != nil && cfg.Watchdog(p.clock) {
			stopping = true
		}
		var msg grantMsg
		if stopping {
			msg.stop = true
		} else {
			second := ^uint64(0)
			if len(running) > 1 {
				for i, q := range running {
					if i != minIdx && q.clock < second {
						second = q.clock
					}
				}
			}
			target := ^uint64(0)
			// A sole remaining proc normally gets an unbounded grant, but
			// with a watchdog armed every grant must be finite or a
			// livelocked last proc would never yield the token back.
			if second != ^uint64(0) || cfg.Watchdog != nil {
				slice := 1 + uint64(schedRng.Int63n(int64(quantum)))
				if cfg.Grant != nil {
					slice = cfg.Grant(p.ID, p.clock, slice)
					if slice == 0 {
						slice = 1
					}
				}
				base := second
				if base == ^uint64(0) {
					base = p.clock
				}
				if base < ^uint64(0)-slice {
					target = base + slice
				}
			}
			msg.target = target
		}
		p.grant <- msg
		if <-p.yield == yieldDone {
			running[minIdx] = running[len(running)-1]
			running = running[:len(running)-1]
		}
	}
	for i, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("sim: proc %d panicked: %v", i, r))
		}
	}
	return procs
}
