// Package sim provides a deterministic, cycle-approximate simulator of a
// small multicore machine.
//
// Simulated hardware threads ("procs") run as goroutines, but execution is
// serialized through a scheduler token: at any instant exactly one proc is
// running, and the token always passes to the proc with the smallest
// virtual clock. Each simulated memory access advances the issuing proc's
// clock by the access cost, so virtual time behaves like parallel wall time
// on a real machine, while the host needs only a single CPU and every run is
// reproducible from a seed.
//
// Scheduling is direct handoff: there is no scheduler goroutine. The proc
// that exhausts its grant runs the scheduling decision inline — one fused
// min/runner-up clock scan, one RNG draw — and wakes the next proc itself,
// so a yield costs a single goroutine switch instead of the two that a
// round-trip through a central scheduler would. A sole remaining proc
// re-grants itself with no synchronization at all. See DESIGN.md for why
// this preserves byte-identical schedules with the central-scheduler
// formulation it replaced.
//
// Upper layers (the TSX engine in internal/tsx) perform all shared-state
// manipulation between a grant and the following yield, so they need no
// Go-level synchronization of their own.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Config describes the simulated machine.
type Config struct {
	// Procs is the number of simulated hardware threads.
	Procs int
	// Seed makes runs reproducible. Two runs with equal Config and equal
	// workloads produce identical schedules and identical statistics.
	Seed int64
	// Quantum is the number of virtual cycles a proc may run past the
	// runner-up clock before it must yield to the scheduler. Smaller
	// values interleave more finely at higher simulation cost.
	// Zero selects DefaultQuantum.
	Quantum uint64

	// Grant, when non-nil, adjusts the randomized grant slice before it is
	// handed to a proc — the fault-injection point for scheduler-grant
	// skew. It runs after the scheduler's own random draw, so a nil Grant
	// and an identity Grant produce byte-identical schedules.
	Grant func(procID int, clock, slice uint64) uint64

	// OnGrant, when non-nil, observes every scheduler grant in issue
	// order with the granted proc and its clock (the minimum clock in
	// the machine). Profiling collectors sample occupancy from it. It
	// must be passive: schedules are byte-identical with and without it.
	OnGrant func(procID int, clock uint64)

	// Watchdog, when non-nil, is consulted before every grant with the
	// about-to-run proc's clock (the minimum clock in the machine).
	// Returning true stops the simulation: every remaining proc unwinds
	// at its next Step and Run returns normally with those procs marked
	// Stopped. The liveness watchdogs in internal/harness use this to
	// degrade a livelocked or deadlocked run into a diagnostic result
	// instead of a hang.
	Watchdog func(minClock uint64) bool

	// Strategy, when non-nil, REPLACES the default scheduling policy: at
	// every scheduling decision the strategy — not the fused min-clock
	// scan plus randomized slice draw — picks which proc runs next and
	// for how long. The model checker in internal/explore uses it to
	// enumerate interleavings; see Strategy. In strategy mode Grant and
	// Watchdog are ignored (the strategy subsumes both: it controls every
	// grant and may stop the run), and the scheduler's RNG is never
	// consulted, so a strategy-driven run is a pure function of the
	// strategy's decisions and the workload. A nil Strategy leaves the
	// default policy byte-identical to a build without the hook.
	Strategy Strategy
}

// Choice is one runnable proc presented to a Strategy at a scheduling
// decision, in ascending ProcID order.
type Choice struct {
	ProcID int
	Clock  uint64
}

// Decision is a Strategy's answer to one scheduling decision.
type Decision struct {
	// Index selects choices[Index] as the proc to grant.
	Index int
	// Target is the granted proc's new clock target: the proc yields back
	// at its first Step that reaches Target. A target at or just above
	// the proc's current clock makes the grant a single simulated access
	// — the granularity an interleaving explorer wants.
	Target uint64
	// Steps, when positive, makes the grant step-counted instead of
	// clock-targeted: the proc yields back after exactly Steps calls to
	// Step with non-zero cost, and Target is ignored. A Steps=n grant is
	// observably identical to n consecutive single-step grants to the
	// same proc (each Step advances the clock by its cost either way, and
	// zero-cost Steps pass through both forms without yielding); it
	// exists so a replayer forcing a known schedule can batch runs of
	// same-proc decisions into one handoff.
	Steps int
	// Stop aborts the run: every remaining proc unwinds at its next Step
	// and Run returns normally with those procs marked Stopped.
	Stop bool
}

// Strategy decides scheduler grants in place of the default policy. Pick is
// called with the runnable procs (ascending ProcID; always at least one)
// each time a grant is needed, and runs on whichever goroutine holds the
// scheduler token — implementations need no locking but must not block.
type Strategy interface {
	Pick(choices []Choice) Decision
}

// DefaultQuantum is used when Config.Quantum is zero. It is small enough
// that independent procs interleave within a single short critical section.
const DefaultQuantum = 12

// Proc is one simulated hardware thread. A Proc is only valid inside the
// body function passed to Run, and must not be shared across bodies.
type Proc struct {
	// ID is the hardware thread index, in [0, Config.Procs).
	ID int

	clock   uint64
	target  uint64
	steps   int // remaining cost>0 steps of a step-counted grant (0: clock-targeted)
	sched   *sched
	grant   chan grantMsg
	rngSeed int64
	rng     *rand.Rand // lazily built from rngSeed on first Rand()
	stopped bool
}

// grantMsg is what a proc receives when the token is handed to it: a new
// clock target (or a step budget, for step-counted grants), or a stop
// order that unwinds the proc's body.
type grantMsg struct {
	target uint64
	steps  int
	stop   bool
}

// stopSignal is the panic value that unwinds a proc's body when the
// scheduler stops the simulation. It deliberately does not implement error:
// transaction-rollback recovers (internal/tsx) re-raise everything that is
// not their own sentinel, so the signal always reaches the proc wrapper.
type stopSignal struct{}

// grantHook, when non-nil, observes every scheduler grant in issue order:
// the granted proc, its new clock target, and whether the grant is a stop
// order. It exists for the schedule-hash regression tests, which fingerprint
// the exact grant sequence; production code must leave it nil.
var grantHook func(procID int, target uint64, stop bool)

// grantCount counts scheduler grants process-wide, flushed once per Run.
// hle-bench reads it to report grants/sec alongside wall time.
var grantCount atomic.Uint64

// Grants returns the total number of scheduler grants issued by completed
// Run calls in this process. The difference across a workload, divided by
// its wall time, is the simulator's grant throughput.
func Grants() uint64 { return grantCount.Load() }

// sched is the shared scheduling state of one Run. It has no lock: only
// the proc holding the token (or Run itself, before the first grant and
// after the last proc finishes) touches it, and the token's channel
// handoffs order those accesses.
type sched struct {
	quantum  uint64
	grantFn  func(procID int, clock, slice uint64) uint64
	onGrant  func(procID int, clock uint64)
	watchdog func(minClock uint64) bool
	strategy Strategy
	choices  []Choice // reused presentation buffer (strategy mode only)
	rngSeed  int64
	rng      *rand.Rand // lazily built from rngSeed on first default-policy pick
	running  []*Proc
	stopping bool
	grants   uint64
	panics   []any
	done     chan struct{}
}

// pick runs one scheduling decision: select the minimum-clock proc (ties
// broken by position in the run queue, i.e. lowest ID until a finished proc
// is swap-removed) and compute its grant. The minimum and runner-up clocks
// come from a single fused scan. The caller must hold the token.
func (s *sched) pick() (*Proc, grantMsg) {
	if s.strategy != nil {
		return s.pickStrategy()
	}
	running := s.running
	minIdx := 0
	minClock := running[0].clock
	second := ^uint64(0)
	for i := 1; i < len(running); i++ {
		c := running[i].clock
		if c < minClock {
			second = minClock
			minClock = c
			minIdx = i
		} else if c < second {
			second = c
		}
	}
	p := running[minIdx]
	if !s.stopping && s.watchdog != nil && s.watchdog(minClock) {
		s.stopping = true
	}
	s.grants++
	if s.onGrant != nil {
		s.onGrant(p.ID, minClock)
	}
	var msg grantMsg
	if s.stopping {
		msg.stop = true
	} else {
		target := ^uint64(0)
		// A sole remaining proc normally gets an unbounded grant, but
		// with a watchdog armed every grant must be finite or a
		// livelocked last proc would never yield the token back.
		if second != ^uint64(0) || s.watchdog != nil {
			// Grant lengths are randomized in [1, quantum] to break
			// phase-locking: with deterministic equal-length grants,
			// threads running identical loops execute in rigid lockstep
			// and their critical sections never interleave in token
			// order, hiding conflicts that overlap in virtual time.
			// Real machines have scheduling noise; so does this one.
			if s.rng == nil {
				// Seeding is deferred to here because strategy-mode
				// picks never draw: a model-checking replay that makes
				// millions of Run calls would otherwise spend most of
				// its time filling rand's 607-word state tables.
				s.rng = rand.New(rand.NewSource(s.rngSeed))
			}
			slice := 1 + uint64(s.rng.Int63n(int64(s.quantum)))
			if s.grantFn != nil {
				slice = s.grantFn(p.ID, minClock, slice)
				if slice == 0 {
					slice = 1
				}
			}
			base := second
			if base == ^uint64(0) {
				base = minClock
			}
			if base < ^uint64(0)-slice {
				target = base + slice
			}
		}
		msg.target = target
	}
	if grantHook != nil {
		grantHook(p.ID, msg.target, msg.stop)
	}
	return p, msg
}

// pickStrategy runs one scheduling decision under an installed Strategy:
// the runnable procs are presented in ascending ProcID order (the run
// queue's own order depends on finish-time swap removals, which a
// strategy's choice indices must not see) and the strategy's decision is
// applied verbatim. Once a stop has been ordered — by the strategy or by a
// prior decision — every subsequent pick issues stop grants until the run
// unwinds, without consulting the strategy again.
func (s *sched) pickStrategy() (*Proc, grantMsg) {
	running := s.running
	s.grants++
	var p *Proc
	var msg grantMsg
	if s.stopping {
		p = running[0]
		msg.stop = true
	} else {
		cs := s.choices[:0]
		for _, q := range running {
			c := Choice{ProcID: q.ID, Clock: q.clock}
			i := len(cs)
			cs = append(cs, c)
			for i > 0 && cs[i-1].ProcID > c.ProcID {
				cs[i] = cs[i-1]
				i--
			}
			cs[i] = c
		}
		s.choices = cs
		d := s.strategy.Pick(cs)
		if d.Stop {
			s.stopping = true
			p = running[0]
			msg.stop = true
		} else {
			if d.Index < 0 || d.Index >= len(cs) {
				panic(fmt.Sprintf("sim: strategy picked index %d of %d choices", d.Index, len(cs)))
			}
			id := cs[d.Index].ProcID
			for _, q := range running {
				if q.ID == id {
					p = q
					break
				}
			}
			msg.target = d.Target
			if d.Steps > 0 {
				msg.target = ^uint64(0)
				msg.steps = d.Steps
			}
		}
	}
	if s.onGrant != nil {
		s.onGrant(p.ID, p.clock)
	}
	if grantHook != nil {
		grantHook(p.ID, msg.target, msg.stop)
	}
	return p, msg
}

// finish removes p from the run queue and passes the token onward — to the
// next minimum-clock proc, or to Run's caller when p was the last runner.
// It runs on p's goroutine while p still holds the token.
func (s *sched) finish(p *Proc) {
	running := s.running
	for i, q := range running {
		if q == p {
			running[i] = running[len(running)-1]
			s.running = running[:len(running)-1]
			break
		}
	}
	if len(s.running) == 0 {
		s.done <- struct{}{}
		return
	}
	next, msg := s.pick()
	next.grant <- msg
}

// Clock returns the proc's current virtual time in cycles.
func (p *Proc) Clock() uint64 { return p.clock }

// Rand returns the proc's deterministic random source, built on first use
// so procs that never draw (e.g. under a schedule-exploration strategy
// with spurious aborts and jitter disabled) skip the seeding cost.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.rngSeed))
	}
	return p.rng
}

// Stopped reports whether the proc was unwound by a watchdog stop rather
// than returning from its body. A stopped proc's body did not finish: its
// upper-layer state (open transactions, held locks) is torn and only good
// for diagnostics.
func (p *Proc) Stopped() bool { return p.stopped }

// Step advances the proc's virtual clock by cost cycles, yielding the
// token if the proc has run ahead of its peers. Every simulated memory
// access and every unit of simulated computation funnels through Step.
func (p *Proc) Step(cost uint64) {
	p.clock += cost
	if p.steps > 0 {
		if cost != 0 {
			p.steps--
			if p.steps == 0 {
				p.yieldToken()
			}
		}
		return
	}
	if p.clock >= p.target {
		p.yieldToken()
	}
}

// yieldToken runs the scheduling decision inline on the yielding proc and
// hands the token to the chosen runner, blocking until the token comes
// back. When the yielder itself is still the minimum-clock proc (a sole
// runner under an armed watchdog, mainly), it keeps the token with no
// synchronization at all.
func (p *Proc) yieldToken() {
	next, msg := p.sched.pick()
	if next == p {
		if msg.stop {
			p.stopped = true
			panic(stopSignal{})
		}
		p.target = msg.target
		p.steps = msg.steps
		return
	}
	next.grant <- msg
	p.recvGrant()
}

// recvGrant blocks for the next grant, installing its target or step
// budget, and unwinding the proc on a stop order.
func (p *Proc) recvGrant() {
	g := <-p.grant
	if g.stop {
		p.stopped = true
		panic(stopSignal{})
	}
	p.target = g.target
	p.steps = g.steps
}

// Run simulates n procs, each executing body, and returns when all bodies
// have returned. The token always passes to the minimum-clock proc (ties
// broken by lowest ID), granted a quantum beyond the runner-up clock.
//
// A panic in a body is re-raised on the caller's goroutine.
func Run(cfg Config, n int, body func(p *Proc)) []*Proc {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Run with n = %d", n))
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}

	s := &sched{
		quantum:  quantum,
		grantFn:  cfg.Grant,
		onGrant:  cfg.OnGrant,
		watchdog: cfg.Watchdog,
		strategy: cfg.Strategy,
		rngSeed:  cfg.Seed*2_654_435_761 + 97,
		panics:   make([]any, n),
		done:     make(chan struct{}, 1),
	}
	if s.strategy != nil {
		s.choices = make([]Choice, 0, n)
	}
	procs := make([]*Proc, n)
	for i := range procs {
		procs[i] = &Proc{
			ID:    i,
			sched: s,
			// Buffered: the sender is always the sole token holder and
			// the receiver consumes exactly one message per wake, so a
			// one-slot buffer lets the handoff complete without waiting
			// for the receiver to reach its receive.
			grant:   make(chan grantMsg, 1),
			rngSeed: cfg.Seed*1_000_003 + int64(i)*7919 + 1,
		}
	}
	s.running = make([]*Proc, n)
	copy(s.running, procs)
	for i, p := range procs {
		go func(i int, p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					if _, isStop := r.(stopSignal); !isStop {
						s.panics[i] = r
					}
				}
				s.finish(p)
			}()
			growProcStack()
			p.recvGrant()
			body(p)
		}(i, p)
	}

	// The first scheduling decision runs here; every subsequent one runs
	// inline on whichever proc holds the token, and the last finishing
	// proc hands the token back by signalling done.
	next, msg := s.pick()
	next.grant <- msg
	<-s.done

	grantCount.Add(s.grants)
	for i, r := range s.panics {
		if r != nil {
			panic(fmt.Sprintf("sim: proc %d panicked: %v", i, r))
		}
	}
	return procs
}

// stackPadIdx and stackPadSink keep growProcStack's pad array opaque to the
// compiler: an unknown index forces the array to materialize on the stack
// (a constant index or an all-zero read could be folded away, and taking
// the array's address would move it to the heap, defeating the point).
// The sink is atomic because every proc goroutine writes it at startup.
var (
	stackPadIdx  int
	stackPadSink atomic.Uint32
)

// growProcStack forces the calling goroutine's stack to grow to the procs'
// steady-state depth while the stack is still nearly empty. Workload bodies
// run deep (scheme -> engine -> memory -> scheduler), and growing the stack
// mid-run copies every live frame — under short replay-style Runs that
// copying dominates the profile. One oversized frame at the top of the
// goroutine moves the growth to the cheapest possible moment.
//
//go:noinline
func growProcStack() {
	var pad [4 << 10]byte
	pad[stackPadIdx] = 1
	stackPadSink.Store(uint32(pad[stackPadIdx>>1]))
}
