package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

type pickFunc func([]Choice) Decision

func (f pickFunc) Pick(c []Choice) Decision { return f(c) }

// TestStepsGrantEquivalence pins the Decision.Steps contract: a Steps=n
// grant is observably identical to n consecutive single-step grants to the
// same proc. Both modes play the same randomly generated schedule of
// (proc, run-length) pairs — batched mode issues one counted grant per run,
// expanded mode re-grants the proc one clock tick at a time — and the
// per-step execution traces must match exactly. Zero-cost steps are
// sprinkled through the workload because they must pass through a counted
// grant without consuming it.
func TestStepsGrantEquivalence(t *testing.T) {
	const perProc = 12
	trace := func(batch bool) []string {
		var log []string
		rng := rand.New(rand.NewSource(7))
		granted := make(map[int]int)
		runProc, runLeft := -1, 0
		strat := pickFunc(func(choices []Choice) Decision {
			if runLeft > 0 {
				// Expanded mode: continue the current run one step at
				// a time.
				for i, c := range choices {
					if c.ProcID == runProc {
						runLeft--
						return Decision{Index: i, Target: c.Clock + 1}
					}
				}
				t.Fatalf("proc %d vanished mid-run", runProc)
			}
			i := rng.Intn(len(choices))
			p := choices[i].ProcID
			n := 1 + rng.Intn(3)
			if rem := perProc - granted[p]; n > rem {
				n = rem
			}
			granted[p] += n
			if batch {
				if n == 1 {
					return Decision{Index: i, Target: choices[i].Clock + 1}
				}
				return Decision{Index: i, Steps: n}
			}
			runProc, runLeft = p, n-1
			return Decision{Index: i, Target: choices[i].Clock + 1}
		})
		Run(Config{Seed: 1, Strategy: strat}, 3, func(p *Proc) {
			for i := 0; i < perProc; i++ {
				p.Step(0) // must not consume a counted grant
				p.Step(1)
				// The scheduler token serializes bodies, so the plain
				// append is safe and its order IS the interleaving.
				log = append(log, fmt.Sprintf("p%d s%d c%d", p.ID, i, p.Clock()))
			}
		})
		return log
	}

	expanded := trace(false)
	batched := trace(true)
	if len(expanded) != len(batched) {
		t.Fatalf("trace lengths differ: %d expanded vs %d batched", len(expanded), len(batched))
	}
	for i := range expanded {
		if expanded[i] != batched[i] {
			t.Fatalf("traces diverge at step %d: %q expanded vs %q batched", i, expanded[i], batched[i])
		}
	}
}
