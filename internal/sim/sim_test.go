package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunSingleProc(t *testing.T) {
	ran := false
	procs := Run(Config{Seed: 1}, 1, func(p *Proc) {
		ran = true
		for i := 0; i < 100; i++ {
			p.Step(3)
		}
	})
	if !ran {
		t.Fatal("body did not run")
	}
	if got := procs[0].Clock(); got != 300 {
		t.Fatalf("clock = %d, want 300", got)
	}
}

func TestRunAllProcsComplete(t *testing.T) {
	const n = 8
	done := make([]bool, n)
	Run(Config{Seed: 1}, n, func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Step(uint64(p.ID + 1))
		}
		done[p.ID] = true
	})
	for i, d := range done {
		if !d {
			t.Errorf("proc %d did not complete", i)
		}
	}
}

// TestMinClockScheduling verifies that execution order approximates virtual
// time: a cheap-stepping proc should be granted many more turns than an
// expensive-stepping one, so their final clocks end up close.
func TestMinClockScheduling(t *testing.T) {
	var clocks [2]uint64
	order := make([]int, 0, 64)
	Run(Config{Seed: 1, Quantum: 1}, 2, func(p *Proc) {
		cost := uint64(1)
		steps := 1000
		if p.ID == 1 {
			cost, steps = 10, 100
		}
		for i := 0; i < steps; i++ {
			p.Step(cost)
			if len(order) < cap(order) {
				order = append(order, p.ID)
			}
		}
		clocks[p.ID] = p.Clock()
	})
	if clocks[0] != 1000 || clocks[1] != 1000 {
		t.Fatalf("clocks = %v, want both 1000", clocks)
	}
	// With quantum 1 the interleaving must alternate between the procs
	// rather than running one to completion.
	saw := map[int]bool{}
	for _, id := range order[:20] {
		saw[id] = true
	}
	if !saw[0] || !saw[1] {
		t.Fatalf("first 20 steps ran only proc set %v; expected interleaving", saw)
	}
}

// TestDeterminism: identical configs produce identical schedules, observed
// through the per-proc RNG consumption pattern.
func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []uint64 {
		var out []uint64
		Run(Config{Seed: seed, Quantum: 16}, 4, func(p *Proc) {
			for i := 0; i < 200; i++ {
				p.Step(uint64(p.Rand().Intn(5) + 1))
			}
			out = append(out, p.Clock())
		})
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic: %v vs %v", a, b)
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

// TestClockMonotonic (property): for random step sequences, each proc's
// clock equals the sum of its own costs — scheduling never perturbs it.
func TestClockMonotonic(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		costs := make([]uint64, 0, len(raw))
		for _, r := range raw {
			costs = append(costs, uint64(r%17)+1)
		}
		if len(costs) == 0 {
			costs = []uint64{1}
		}
		n := 3
		sums := make([]uint64, n)
		clocks := make([]uint64, n)
		Run(Config{Seed: seed}, n, func(p *Proc) {
			rng := rand.New(rand.NewSource(int64(p.ID)))
			for i := 0; i < 100; i++ {
				c := costs[rng.Intn(len(costs))]
				sums[p.ID] += c
				p.Step(c)
			}
			clocks[p.ID] = p.Clock()
		})
		for i := range sums {
			if sums[i] != clocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from proc body")
		}
	}()
	Run(Config{Seed: 1}, 2, func(p *Proc) {
		p.Step(1)
		if p.ID == 1 {
			panic("boom")
		}
		p.Step(1)
	})
}

func TestRunZeroProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	Run(Config{Seed: 1}, 0, func(p *Proc) {})
}

// TestPickTieBreak pins the scheduler's tie-breaking order: among procs
// sharing the minimum clock, pick selects the one earliest in the run
// queue (lowest ID until a finished proc is swap-removed), and the grant
// target is runner-up clock + slice. Quantum 1 makes the slice exactly 1,
// so targets are checked exactly.
func TestPickTieBreak(t *testing.T) {
	mk := func(clocks ...uint64) *sched {
		s := &sched{quantum: 1, rng: rand.New(rand.NewSource(1))}
		for i, c := range clocks {
			s.running = append(s.running, &Proc{ID: i, clock: c})
		}
		return s
	}
	cases := []struct {
		name       string
		clocks     []uint64
		wantID     int
		wantTarget uint64
	}{
		{"all-tied-picks-first", []uint64{5, 5, 5}, 0, 6},
		{"strict-min-wins", []uint64{7, 3, 5}, 1, 6},
		{"tied-min-picks-earliest", []uint64{5, 3, 3, 7}, 1, 4},
		{"two-tied", []uint64{2, 2}, 0, 3},
		{"min-at-end", []uint64{9, 9, 4}, 2, 10},
	}
	for _, tc := range cases {
		s := mk(tc.clocks...)
		p, msg := s.pick()
		if p.ID != tc.wantID {
			t.Errorf("%s: picked proc %d, want %d", tc.name, p.ID, tc.wantID)
		}
		if msg.target != tc.wantTarget {
			t.Errorf("%s: target = %d, want %d", tc.name, msg.target, tc.wantTarget)
		}
		if msg.stop {
			t.Errorf("%s: unexpected stop grant", tc.name)
		}
	}
}

// TestPickTieBreakPositional: after a swap-removal the run queue is no
// longer ID-ordered, and ties break by queue position, not ID. This is
// load-bearing for schedule stability: pick must not re-sort.
func TestPickTieBreakPositional(t *testing.T) {
	p1 := &Proc{ID: 1, clock: 5}
	p2 := &Proc{ID: 2, clock: 5}
	s := &sched{quantum: 1, rng: rand.New(rand.NewSource(1)), running: []*Proc{p2, p1}}
	p, _ := s.pick()
	if p != p2 {
		t.Errorf("tied procs in queue order [2, 1]: picked ID %d, want 2 (queue position, not ID)", p.ID)
	}
}

// TestPickSoleRunnerGrants: a sole remaining proc gets an unbounded grant
// (no RNG draw) unless a watchdog is armed, in which case the grant is
// finite so the token keeps cycling through the watchdog check.
func TestPickSoleRunnerGrants(t *testing.T) {
	s := &sched{quantum: 1, rng: rand.New(rand.NewSource(1)),
		running: []*Proc{{ID: 0, clock: 42}}}
	if _, msg := s.pick(); msg.target != ^uint64(0) {
		t.Errorf("sole runner without watchdog: target = %d, want unbounded", msg.target)
	}
	s = &sched{quantum: 1, rng: rand.New(rand.NewSource(1)),
		watchdog: func(uint64) bool { return false },
		running:  []*Proc{{ID: 0, clock: 42}}}
	if _, msg := s.pick(); msg.target != 43 {
		t.Errorf("sole runner with watchdog: target = %d, want 43", msg.target)
	}
}

// TestUnevenFinish: procs finishing at different times must not stall the
// remaining ones.
func TestUnevenFinish(t *testing.T) {
	finish := make([]uint64, 5)
	Run(Config{Seed: 9}, 5, func(p *Proc) {
		for i := 0; i <= p.ID*100; i++ {
			p.Step(2)
		}
		finish[p.ID] = p.Clock()
	})
	for id, c := range finish {
		want := uint64((id*100 + 1) * 2)
		if c != want {
			t.Errorf("proc %d finished at %d, want %d", id, c, want)
		}
	}
}

// TestWatchdogStopsLivelockedRun: procs that would spin forever must unwind
// when the watchdog trips, and Run must return with them marked Stopped.
func TestWatchdogStopsLivelockedRun(t *testing.T) {
	var trips int
	procs := Run(Config{Seed: 3, Watchdog: func(minClock uint64) bool {
		if minClock > 10_000 {
			trips++
			return true
		}
		return false
	}}, 4, func(p *Proc) {
		for { // livelock: spin forever
			p.Step(5)
		}
	})
	for _, p := range procs {
		if !p.Stopped() {
			t.Errorf("proc %d not marked stopped", p.ID)
		}
	}
	if trips != 1 {
		t.Errorf("watchdog consulted after tripping: %d trips", trips)
	}
}

// TestWatchdogStopSparesFinishedProcs: a proc whose body already returned
// is not marked stopped.
func TestWatchdogStopSparesFinishedProcs(t *testing.T) {
	procs := Run(Config{Seed: 3, Watchdog: func(minClock uint64) bool {
		return minClock > 1_000
	}}, 2, func(p *Proc) {
		if p.ID == 0 {
			p.Step(1)
			return
		}
		for {
			p.Step(5)
		}
	})
	if procs[0].Stopped() {
		t.Error("finished proc 0 marked stopped")
	}
	if !procs[1].Stopped() {
		t.Error("spinning proc 1 not marked stopped")
	}
}

// TestWatchdogNeverTrippingIsInvisible: an armed watchdog that never trips
// must not change the schedule.
func TestWatchdogNeverTrippingIsInvisible(t *testing.T) {
	run := func(cfg Config) []uint64 {
		clocks := make([]uint64, 3)
		Run(cfg, 3, func(p *Proc) {
			for i := 0; i < 500; i++ {
				p.Step(uint64(1 + (i+p.ID)%7))
			}
			clocks[p.ID] = p.Clock()
		})
		return clocks
	}
	plain := run(Config{Seed: 11})
	armed := run(Config{Seed: 11, Watchdog: func(uint64) bool { return false }})
	for i := range plain {
		if plain[i] != armed[i] {
			t.Errorf("proc %d clock differs with inert watchdog: %d vs %d", i, plain[i], armed[i])
		}
	}
}

// TestIdentityGrantHookIsInvisible: a Grant hook that returns the slice
// unchanged must produce a byte-identical schedule, because the hook runs
// after the scheduler's own random draw.
func TestIdentityGrantHookIsInvisible(t *testing.T) {
	run := func(cfg Config) []uint64 {
		clocks := make([]uint64, 3)
		Run(cfg, 3, func(p *Proc) {
			for i := 0; i < 500; i++ {
				p.Step(uint64(1 + (i*3+p.ID)%5))
			}
			clocks[p.ID] = p.Clock()
		})
		return clocks
	}
	plain := run(Config{Seed: 7})
	hooked := run(Config{Seed: 7, Grant: func(id int, clock, slice uint64) uint64 { return slice }})
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Errorf("proc %d clock differs with identity grant hook: %d vs %d", i, plain[i], hooked[i])
		}
	}
}

// TestGrantSkewChangesInterleaving: a skewing Grant hook is allowed to (and
// here does) change the interleaving without breaking the simulation.
func TestGrantSkewChangesInterleaving(t *testing.T) {
	var order []int
	Run(Config{Seed: 7, Grant: func(id int, clock, slice uint64) uint64 {
		if id == 0 {
			return 1 // proc 0 gets minimal grants
		}
		return slice * 4
	}}, 2, func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Step(3)
			order = append(order, p.ID)
		}
	})
	if len(order) != 100 {
		t.Fatalf("expected 100 steps, got %d", len(order))
	}
}
