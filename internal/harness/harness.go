// Package harness runs the paper's benchmark methodology: N simulated
// threads continuously executing critical sections over a shared data
// structure under a (lock × elision-scheme) combination, for a fixed
// virtual-time budget, collecting throughput, attempts-per-operation,
// non-speculative fractions, and time-sliced dynamics.
package harness

import (
	"fmt"

	"hle/internal/adapt"
	"hle/internal/core"
	"hle/internal/hwext"
	"hle/internal/locks"
	"hle/internal/obs"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// OpKind enumerates the workload operations.
type OpKind uint8

// The operation kinds of the set/map workloads.
const (
	OpLookup OpKind = iota
	OpInsert
	OpDelete
	// OpScan is a cross-shard operation (consistent size/snapshot) on
	// sharded workloads: under an OpRouter scheme it runs holding every
	// shard lock instead of one shard's.
	OpScan
)

// Op is one drawn operation, executed via Workload.Exec. Ops are plain
// values rather than closures so the measurement loop performs no
// per-operation heap allocation — drawing and running millions of ops per
// point, the closure allocations this replaces dominated the harness's own
// profile.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Workload produces critical-section operations over a pre-populated
// structure in simulated memory.
//
// A Workload's Go-side state must be immutable after Populate: the
// structure lives at simulated addresses, which stay valid in every clone
// of the populated machine, so one Workload value serves many concurrent
// experiment points over cloned machines (see PointSpec).
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Populate builds the initial structure; called once, single-threaded.
	Populate(t *tsx.Thread)
	// NextOp draws the next operation using the thread's deterministic RNG.
	NextOp(t *tsx.Thread) Op
	// Exec runs op's critical section on t. It must be idempotent under
	// rollback, which all simulated-memory operations are.
	Exec(t *tsx.Thread, op Op)
}

// OpRouter is implemented by schemes that dispatch operations to
// different synchronization domains — the sharded store routes each op to
// its key's shard lock and scans to an all-shard section. When the scheme
// under measurement implements OpRouter, Run hands it the drawn Op along
// with the critical section; otherwise every op runs under the scheme's
// single Run path.
type OpRouter interface {
	RunOp(t *tsx.Thread, op Op, cs func()) core.Result
}

// Config controls one measurement run.
type Config struct {
	// Threads is the number of worker threads.
	Threads int
	// CycleBudget is the measured window in virtual cycles: each thread
	// issues operations until its clock passes Warmup+CycleBudget, and
	// operations completing before Warmup are excluded from statistics.
	CycleBudget uint64
	// Warmup discards the run's initial transient. The paper measures
	// 3-second steady states (~10^10 cycles), so its avalanche-trigger
	// transients are invisible; a short simulated window must skip them
	// explicitly to measure the same steady state.
	Warmup uint64
	// SliceCycles enables time-sliced collection (Figure 3.3) when
	// non-zero. The timeline covers the whole run including warmup.
	SliceCycles uint64
	// Watchdog, when non-nil, arms liveness detection: a starving or
	// livelocked (or, with a Monitor, deadlocked) run is stopped and
	// reported as Result.Failure instead of hanging. Nil keeps the run
	// byte-identical to a watchdog-free build.
	Watchdog *WatchdogConfig
	// Profile, when non-nil, attaches a profiling collector (internal/obs)
	// to the measurement run and delivers its Profile in the Result. The
	// collector covers exactly the measurement (not setup/population) and
	// is private to the run, so host-parallel points collect without
	// races. Nil keeps the run hook-free.
	Profile *obs.Options
}

// Result is the outcome of one measurement run.
type Result struct {
	// Ops aggregates operation-level statistics across threads.
	Ops core.OpStats
	// MaxClock is the virtual time at which the last thread stopped.
	MaxClock uint64
	// Throughput is completed operations per million cycles.
	Throughput float64
	// TSX aggregates transaction-level statistics across threads.
	TSX tsx.Stats
	// Timeline is the per-slot series (nil unless SliceCycles was set).
	Timeline *stats.Timeline
	// Failure is the watchdog diagnostic when the run was stopped for a
	// liveness violation (nil otherwise; always nil without a watchdog).
	// A failed run's other fields cover only the progress made before the
	// stop, and the machine's simulated state is torn — diagnostics only.
	Failure *Failure
	// Profile is the profiling result (nil unless Config.Profile was set).
	Profile *obs.Profile
}

// Run executes the workload under scheme on machine m.
func Run(m *tsx.Machine, scheme core.Scheme, w Workload, cfg Config) Result {
	if cfg.Threads <= 0 || cfg.CycleBudget == 0 {
		panic(fmt.Sprintf("harness: bad config %+v", cfg))
	}
	var timeline *stats.Timeline
	if cfg.SliceCycles > 0 {
		timeline = stats.NewTimeline(cfg.SliceCycles)
	}
	end := cfg.Warmup + cfg.CycleBudget
	var wd *Watchdog
	if cfg.Watchdog != nil {
		wd = NewWatchdog(*cfg.Watchdog, cfg.Threads)
		m.SetWatchdog(wd.Check)
		defer m.SetWatchdog(nil)
	}
	var col *obs.Collector
	if cfg.Profile != nil {
		col = obs.Attach(m, *cfg.Profile)
		col.SetLabel(scheme.Name())
		defer col.Detach()
	}
	// Routing is resolved once per run, not per op.
	router, routed := scheme.(OpRouter)
	var res Result
	threads := m.Run(cfg.Threads, func(t *tsx.Thread) {
		scheme.Setup(t)
		// One closure per thread, re-aimed at each drawn op: the
		// critical section the scheme retries is allocation-free.
		var op Op
		cs := func() { w.Exec(t, op) }
		for t.Clock() < end {
			op = w.NextOp(t)
			var r core.Result
			if routed {
				r = router.RunOp(t, op, cs)
			} else {
				r = scheme.Run(t, cs)
			}
			// Shared state is safe: simulated execution is
			// token-serialized.
			if wd != nil {
				wd.NoteOp(t.ID, t.Clock())
			}
			if timeline != nil {
				timeline.Record(t.Clock(), r.Spec)
			}
			if t.Clock() >= cfg.Warmup {
				res.Ops.Ops++
				res.Ops.Attempts += r.Attempts
				if r.Spec {
					res.Ops.Spec++
				} else {
					res.Ops.NonSpec++
				}
			}
		}
		if wd != nil {
			wd.NoteDone(t.ID)
		}
	})
	if wd != nil && m.Stopped() {
		res.Failure = wd.Failure(m, threads)
	}
	for _, t := range threads {
		res.TSX.Add(t.Stats)
		if t.Clock() > res.MaxClock {
			res.MaxClock = t.Clock()
		}
	}
	if res.MaxClock > cfg.Warmup {
		res.Throughput = float64(res.Ops.Ops) * 1e6 / float64(res.MaxClock-cfg.Warmup)
	}
	res.Timeline = timeline
	if col != nil {
		res.Profile = col.Profile()
		// Stamp the engine's own abort total for the attribution
		// invariant: sum(Causes) == TotalAborts == EngineAborts.
		res.Profile.EngineAborts = res.TSX.TotalAborts()
		// Adaptive runs carry their scheme-transition log in the profile,
		// so -profile surfaces the controller's decisions alongside the
		// abort attribution that drove them.
		if ad, ok := scheme.(*core.Adaptive); ok {
			res.Profile.Controller = ControllerEvents(ad.Transitions())
		}
	}
	return res
}

// ControllerEvents converts an adapt transition log to the obs profile's
// dependency-free representation.
func ControllerEvents(trs []adapt.Transition) []obs.ControllerEvent {
	if len(trs) == 0 {
		return nil
	}
	out := make([]obs.ControllerEvent, len(trs))
	for i, tr := range trs {
		out[i] = obs.ControllerEvent{
			Seq:        tr.Seq,
			Window:     tr.Window,
			Clock:      tr.Clock,
			From:       tr.From.String(),
			To:         tr.To.String(),
			Reason:     tr.Reason,
			SwapClock:  tr.SwapClock,
			DrainClock: tr.DrainClock,
			Inflight:   tr.Inflight,
		}
	}
	return out
}

// SchemeSpec names a scheme and, where applicable, how to build it.
type SchemeSpec struct {
	// Scheme is one of: Standard, NoLock, HLE, HLE-HWExt, RTM-LE,
	// HLE-SCM, HLE-SCM-ideal, HLE-SCM-multi, Pes-SLR, Opt-SLR,
	// Opt-SLR-SCM, Adaptive.
	Scheme string
	// Lock is a locks.MakerByName name: TTAS, MCS, Ticket, AdjTicket,
	// CLH, AdjCLH. Ignored by NoLock.
	Lock string
	// Adapt tunes the Adaptive scheme's controller; nil selects the
	// adapt defaults. Ignored by every other scheme.
	Adapt *adapt.Config
	// Monitor, when non-nil, wraps the scheme's locks (main and
	// auxiliary) with locks.Monitored so their non-speculative
	// transitions feed a waits-for graph — pair it with
	// WatchdogConfig.Monitor for deadlock detection. Wrapping performs
	// no simulated accesses, so it never changes the simulated run.
	Monitor *locks.Monitor
}

// String renders "Scheme/Lock".
func (s SchemeSpec) String() string {
	if s.Scheme == "NoLock" {
		return s.Scheme
	}
	return s.Scheme + " " + s.Lock
}

// Build constructs the scheme (and its locks) in t's simulated memory.
// SCM variants always use an MCS auxiliary lock, the starvation-free lock
// the paper requires.
func (s SchemeSpec) Build(t *tsx.Thread) core.Scheme {
	if s.Scheme == "NoLock" {
		return core.NewNoLock()
	}
	mk := locks.MakerByName(s.Lock)
	if mk == nil {
		panic("harness: unknown lock " + s.Lock)
	}
	main := mk(t)
	aux := func() locks.Lock { return locks.NewMCS(t) }
	if s.Monitor != nil {
		main = locks.Monitored(main, s.Monitor)
		inner := aux
		aux = func() locks.Lock { return locks.Monitored(inner(), s.Monitor) }
	}
	switch s.Scheme {
	case "Standard":
		return core.NewStandard(main)
	case "HLE":
		return core.NewHLE(main)
	case "HLE-HWExt":
		return hwext.New(main)
	case "RTM-LE":
		return core.NewRTMLE(main)
	case "HLE-lazy":
		return core.NewHLELazy(main)
	case "RTM-LE-lazy":
		return core.NewRTMLELazy(main)
	case "HLE-SCM":
		return core.NewHLESCM(main, aux(), core.SCMConfig{})
	case "HLE-SCM-ideal":
		return core.NewHLESCM(main, aux(), core.SCMConfig{Ideal: true})
	case "HLE-SCM-multi":
		return core.NewHLESCMMulti(main, []locks.Lock{aux(), aux(), aux(), aux()}, core.SCMConfig{})
	case "Pes-SLR":
		return core.NewPessimisticSLR(main)
	case "Opt-SLR":
		return core.NewSLR(main, 0)
	case "Opt-SLR-SCM":
		return core.NewSLRSCM(main, aux(), core.SCMConfig{})
	case "Adaptive":
		var acfg core.AdaptiveConfig
		if s.Adapt != nil {
			acfg.Controller = *s.Adapt
		}
		return core.NewAdaptive(main, aux(), acfg)
	}
	panic("harness: unknown scheme " + s.Scheme)
}

// Point runs one full experiment point: a fresh machine is built from
// mcfg, the workload is created and populated, the scheme is built, and
// the measurement runs.
func Point(mcfg tsx.Config, spec SchemeSpec, mkWorkload func(t *tsx.Thread) Workload, cfg Config) Result {
	m := tsx.NewMachine(mcfg)
	var scheme core.Scheme
	var w Workload
	m.RunOne(func(t *tsx.Thread) {
		w = mkWorkload(t)
		w.Populate(t)
		scheme = spec.Build(t)
	})
	return Run(m, scheme, w, cfg)
}
