package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hle/internal/core"
	"hle/internal/tsx"
)

// WarmTemplate shares one populated machine image across many points. The
// first Fork builds the machine, populates the workload, and captures a
// checkpoint of the warm state; every later Fork only copies the
// checkpoint. Compared to cloning a live template machine per point, a
// fork skips the fill phase entirely and costs one memory copy instead of
// two (a clone re-snapshots its source every time). Forks are
// deterministic: every forked machine starts from the identical image, so
// results do not depend on how many points shared the template or in what
// order workers claimed them.
type WarmTemplate struct {
	// Machine configures the template machine.
	Machine tsx.Config
	// MkWorkload builds the workload whose Populate fills the machine.
	MkWorkload func(t *tsx.Thread) Workload

	once sync.Once
	cp   *tsx.Checkpoint
	w    Workload
}

// Fork returns an independent machine holding the warm image plus the
// shared workload handle (workload Go-side state is immutable after
// Populate, so sharing it across concurrent forks is safe). The first call
// pays the build-and-populate cost; concurrent first calls serialize on it.
func (wt *WarmTemplate) Fork() (*tsx.Machine, Workload) {
	wt.once.Do(func() {
		m := tsx.NewMachine(wt.Machine)
		m.RunOne(func(t *tsx.Thread) {
			wt.w = wt.MkWorkload(t)
			wt.w.Populate(t)
		})
		wt.cp = m.Checkpoint()
	})
	return tsx.FromCheckpoint(wt.cp), wt.w
}

// PointSpec declares one experiment point: a machine, a workload, a scheme,
// and a run configuration. Points are independent simulations, so a figure
// declares its points as a flat list and RunPoints fans them out across host
// workers; results come back by declaration index, so output built from them
// is identical whatever the worker count.
type PointSpec struct {
	// Warm, when non-nil, supplies the point's machine and workload by
	// forking a shared warm template; it takes precedence over the other
	// machine modes.
	Warm *WarmTemplate

	// Template, when non-nil, is a populated machine that is cloned for
	// this point; Workload must then be the workload living in it. Many
	// points may share one Template — Clone takes a memory snapshot, and
	// workload Go-side state is immutable after Populate, so sharing is
	// safe even across concurrent workers.
	Template *tsx.Machine
	Workload Workload

	// Machine and MkWorkload describe the fresh-machine mode, used when
	// Template is nil: a machine is built from Machine, and MkWorkload
	// creates and the point populates the workload on it.
	Machine    tsx.Config
	MkWorkload func(t *tsx.Thread) Workload

	// Scheme selects the scheme by name; MkScheme, when non-nil, overrides
	// it for schemes that need custom construction (ablation variants).
	Scheme   SchemeSpec
	MkScheme func(t *tsx.Thread) core.Scheme

	// Seed, when non-zero, reseeds the machine after clone/populate so the
	// measurement streams are the point's own regardless of which template
	// it shares. Derive it from the figure's base seed and the point's
	// coordinates (DeriveSeed).
	Seed int64

	// Runs repeats the measurement, averaging results; memory state
	// persists across repetitions (the structure keeps evolving), matching
	// the paper's repeated-trial methodology. Zero means one run.
	Runs int

	// Cfg is the measurement configuration.
	Cfg Config
}

// Run executes the point and returns its (possibly averaged) result.
func (p PointSpec) Run() Result {
	var m *tsx.Machine
	w := p.Workload
	if p.Warm != nil {
		m, w = p.Warm.Fork()
	} else if p.Template != nil {
		m = p.Template.Clone()
	} else {
		m = tsx.NewMachine(p.Machine)
		m.RunOne(func(t *tsx.Thread) {
			w = p.MkWorkload(t)
			w.Populate(t)
		})
	}
	if p.Seed != 0 {
		m.Reseed(p.Seed)
	}
	runs := p.Runs
	if runs <= 0 {
		runs = 1
	}
	var acc Result
	for r := 0; r < runs; r++ {
		var scheme core.Scheme
		m.RunOne(func(t *tsx.Thread) {
			if p.MkScheme != nil {
				scheme = p.MkScheme(t)
			} else {
				scheme = p.Scheme.Build(t)
			}
		})
		res := Run(m, scheme, w, p.Cfg)
		acc.Ops.Add(res.Ops)
		acc.TSX.Add(res.TSX)
		acc.MaxClock += res.MaxClock
		acc.Throughput += res.Throughput
		acc.Timeline = res.Timeline
		if res.Profile != nil {
			if acc.Profile == nil {
				acc.Profile = res.Profile
			} else {
				acc.Profile.Merge(res.Profile)
			}
		}
		if res.Failure != nil {
			// A watchdog stop leaves the machine torn; keep the first
			// failure and skip the remaining repetitions.
			if acc.Failure == nil {
				acc.Failure = res.Failure
			}
			runs = r + 1
			break
		}
	}
	acc.MaxClock /= uint64(runs)
	acc.Throughput /= float64(runs)
	pointsRun.Add(1)
	return acc
}

// RunPoints executes the points across min(parallel, len(points)) host
// workers (parallel <= 0 means GOMAXPROCS) and returns results indexed as
// declared.
func RunPoints(parallel int, points []PointSpec) []Result {
	results := make([]Result, len(points))
	ParallelFor(parallel, len(points), func(i int) {
		results[i] = points[i].Run()
	})
	return results
}

// ParallelFor runs job(0..n-1) across min(parallel, n) goroutines
// (parallel <= 0 means GOMAXPROCS). Indices are claimed dynamically, so
// uneven job costs balance; with parallel == 1 it degenerates to a plain
// loop. A panicking job is re-panicked in the caller after all workers
// stop.
func ParallelFor(parallel, n int, job func(i int)) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked any
		once     sync.Once
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							once.Do(func() { panicked = r })
						}
					}()
					job(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// DeriveSeed mixes a base seed with point coordinates into an independent,
// never-zero seed, so sibling points sharing a template get decorrelated
// measurement streams that do not depend on execution order.
func DeriveSeed(base int64, coords ...int) int64 {
	z := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, c := range coords {
		z += uint64(c)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	z &^= 1 << 63 // keep positive
	if z == 0 {
		z = 0x1e3779b97f4a7c15 // never 0: Seed==0 means "unset"
	}
	return int64(z)
}

// pointsRun counts completed experiment points process-wide, for timing
// reports.
var pointsRun atomic.Uint64

// PointsRun returns the number of experiment points completed so far.
func PointsRun() uint64 { return pointsRun.Load() }

// NotePoint counts an experiment point executed outside PointSpec (figures
// that drive a machine directly, such as STAMP runs), so timing reports see
// every point.
func NotePoint() { pointsRun.Add(1) }
