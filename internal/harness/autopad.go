package harness

import (
	"fmt"
	"sort"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/tsx"
)

// DefaultAutoPadTopK is how many of the hottest data lines the auto-pad
// plan pads when AutoPadConfig.TopK is zero.
const DefaultAutoPadTopK = 8

// AutoPadConfig configures the profiling burst of the auto-pad pass.
type AutoPadConfig struct {
	// Scheme is the scheme the burst runs under — normally the same one
	// the measured run will use, so the burst sees the conflicts that run
	// will suffer. MkScheme, when non-nil, overrides it.
	Scheme   SchemeSpec
	MkScheme func(t *tsx.Thread) core.Scheme
	// Threads and Burst shape the profiling run: Threads workers for
	// Burst virtual cycles (no warmup — the burst wants the transient
	// too, hot lines are hot from the first conflict).
	Threads int
	Burst   uint64
	// Seed, when non-zero, reseeds the burst machine, decorrelating the
	// burst from the measured run that follows.
	Seed int64
	// TopK bounds the plan to the K hottest data lines (0 selects
	// DefaultAutoPadTopK). Lock lines are never planned: locks already
	// own their lines exclusively.
	TopK int
}

// AutoPadReport says what the burst observed and what the plan covers.
type AutoPadReport struct {
	// PlanLines are the padded line indices, ascending — the burst's
	// hottest conflict data lines.
	PlanLines []int
	// BurstAborts and BurstDataConflicts are the burst's abort totals:
	// all causes, and the conflict-data-line class the plan attacks.
	BurstAborts        uint64
	BurstDataConflicts uint64
}

// AutoPad is the closed profile→layout loop: fork the warm template, run a
// short profiling burst under the scheme, read the conflict heatmap, and
// return a new template whose allocator diverts the hottest data lines'
// objects to private padded lines. The returned template re-populates
// under a PadLines plan: its shadow cursor replays the packed layout, so
// "hottest line L in the burst" precisely names "the objects that were
// packed onto L". The input template (and everything already forked from
// it) is untouched.
//
// The template must be packed (the baseline the heatmap indices and the
// shadow cursor describe); AutoPad panics on any other placement.
func AutoPad(wt *WarmTemplate, cfg AutoPadConfig) (*WarmTemplate, AutoPadReport) {
	if p := wt.Machine.Layout.Placement; p != mem.Packed {
		panic(fmt.Sprintf("harness: AutoPad needs a packed template, got %v", p))
	}
	if cfg.Threads <= 0 || cfg.Burst == 0 {
		panic(fmt.Sprintf("harness: bad AutoPad config %+v", cfg))
	}
	topK := cfg.TopK
	if topK == 0 {
		topK = DefaultAutoPadTopK
	}

	m, w := wt.Fork()
	if cfg.Seed != 0 {
		m.Reseed(cfg.Seed)
	}
	var scheme core.Scheme
	m.RunOne(func(t *tsx.Thread) {
		if cfg.MkScheme != nil {
			scheme = cfg.MkScheme(t)
		} else {
			scheme = cfg.Scheme.Build(t)
		}
	})
	// TopLines < 0 keeps every line: the plan must see the full heatmap,
	// not the display-truncated top 16.
	res := Run(m, scheme, w, Config{
		Threads:     cfg.Threads,
		CycleBudget: cfg.Burst,
		Profile:     &obs.Options{TopLines: -1},
	})

	var report AutoPadReport
	report.BurstAborts = res.Profile.TotalAborts
	report.BurstDataConflicts = res.Profile.Cause(obs.ClassConflictDataLine)
	plan := make(map[int]bool)
	// Profile.Lines is sorted hottest-first (ties by line index), so the
	// plan is deterministic: take the first K data lines.
	for _, l := range res.Profile.Lines {
		if len(report.PlanLines) >= topK {
			break
		}
		if l.LockLine || l.Count == 0 {
			continue
		}
		plan[l.Line] = true
		report.PlanLines = append(report.PlanLines, l.Line)
	}
	sort.Ints(report.PlanLines)
	if len(plan) == 0 {
		// Nothing to pad: hand back the original template unchanged, so
		// callers measure the true baseline instead of a pointless copy.
		return wt, report
	}

	ncfg := wt.Machine
	ncfg.Layout = wt.Machine.Layout.WithPadLines(plan)
	return &WarmTemplate{Machine: ncfg, MkWorkload: wt.MkWorkload}, report
}
