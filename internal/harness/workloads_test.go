package harness_test

import (
	"testing"

	"hle/internal/harness"
	"hle/internal/tsx"
)

func TestRBTreePopulateReachesTargetSize(t *testing.T) {
	m := tsx.NewMachine(machineCfg(1, 1))
	m.RunOne(func(th *tsx.Thread) {
		w := harness.NewRBTree(th, 500, harness.MixModerate)
		w.Populate(th)
		if got := w.Tree().Size(th); got != 500 {
			t.Fatalf("populated size %d, want 500", got)
		}
		w.Tree().Validate(th)
	})
}

// TestMixDistribution: NextOp respects the configured operation mix. The
// op closures are distinguished by their effect on tree size.
func TestMixDistribution(t *testing.T) {
	m := tsx.NewMachine(machineCfg(1, 3))
	m.RunOne(func(th *tsx.Thread) {
		// An always-insert mix on a tiny domain quickly saturates; an
		// always-delete mix empties; a lookup-only mix never changes
		// size. Checking sizes after a burst of ops validates the mix
		// plumbing without peeking at internals.
		w := harness.NewRBTree(th, 64, harness.Mix{InsertPct: 100})
		w.Populate(th)
		for i := 0; i < 2000; i++ {
			w.Exec(th, w.NextOp(th))
		}
		// Coupon collector: 2000 random inserts over a 128-key domain
		// saturate it with overwhelming probability.
		if got := w.Tree().Size(th); got != 128 {
			t.Errorf("insert-only mix on domain 128 saturated at %d, want 128", got)
		}

		w2 := harness.NewRBTree(th, 64, harness.Mix{DeletePct: 100})
		w2.Populate(th)
		for i := 0; i < 3000; i++ {
			w2.Exec(th, w2.NextOp(th))
		}
		if got := w2.Tree().Size(th); got != 0 {
			t.Errorf("delete-only mix left %d nodes", got)
		}

		w3 := harness.NewRBTree(th, 64, harness.MixLookupOnly)
		w3.Populate(th)
		before := w3.Tree().Size(th)
		for i := 0; i < 500; i++ {
			w3.Exec(th, w3.NextOp(th))
		}
		if got := w3.Tree().Size(th); got != before {
			t.Errorf("lookup-only mix changed size %d -> %d", before, got)
		}
	})
}

func TestModerateMixKeepsSizeStable(t *testing.T) {
	m := tsx.NewMachine(machineCfg(1, 5))
	m.RunOne(func(th *tsx.Thread) {
		w := harness.NewRBTree(th, 256, harness.MixModerate)
		w.Populate(th)
		for i := 0; i < 5000; i++ {
			w.Exec(th, w.NextOp(th))
		}
		size := w.Tree().Size(th)
		// Equal insert/delete rates keep the size near target.
		if size < 200 || size > 312 {
			t.Errorf("size drifted to %d from 256 under balanced mix", size)
		}
		w.Tree().Validate(th)
	})
}

func TestMixString(t *testing.T) {
	if got := harness.MixModerate.String(); got != "10/10/80" {
		t.Errorf("MixModerate = %q", got)
	}
	if got := harness.MixLookupOnly.String(); got != "0/0/100" {
		t.Errorf("MixLookupOnly = %q", got)
	}
}

func TestSchemeSpecString(t *testing.T) {
	if got := (harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"}).String(); got != "HLE TTAS" {
		t.Errorf("spec string %q", got)
	}
	if got := (harness.SchemeSpec{Scheme: "NoLock"}).String(); got != "NoLock" {
		t.Errorf("NoLock spec string %q", got)
	}
}

func TestUnknownSchemePanics(t *testing.T) {
	m := tsx.NewMachine(machineCfg(1, 1))
	m.RunOne(func(th *tsx.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("unknown scheme did not panic")
			}
		}()
		harness.SchemeSpec{Scheme: "bogus", Lock: "TTAS"}.Build(th)
	})
}
