package harness

import (
	"fmt"
	"strings"

	"hle/internal/locks"
	"hle/internal/tsx"
)

// WatchdogConfig arms liveness detection for a measurement run
// (Config.Watchdog). All windows are in virtual cycles; a zero window
// disables that detector.
type WatchdogConfig struct {
	// LivelockWindow trips when no thread completes an operation for this
	// many cycles while unfinished threads remain — the machine as a
	// whole is spinning (aborting, backing off) without progress.
	LivelockWindow uint64
	// StarvationWindow trips when one unfinished thread completes no
	// operation for this many cycles while some other thread does — the
	// victim is starving, not the machine. It should be comfortably
	// larger than the longest legitimate gap between a thread's
	// operations (queue-lock convoys make gaps of many critical-section
	// lengths).
	StarvationWindow uint64
	// Monitor, when non-nil, enables waits-for deadlock detection over
	// the locks registered with it (see locks.Monitored). The watchdog
	// resets the monitor when the run starts.
	Monitor *locks.Monitor
	// CheckEvery throttles the deadlock graph walk to every n-th
	// scheduler grant (the liveness windows are checked on every grant,
	// which is O(threads)). Zero selects 64.
	CheckEvery int
	// Context is a free-form label included in diagnostic dumps —
	// typically the scheme/lock under test and the fault schedule.
	Context string
}

// Failure reasons.
const (
	ReasonLivelock   = "livelock"
	ReasonStarvation = "starvation"
	ReasonDeadlock   = "deadlock"
)

// maxDumpEvents bounds the engine events included in a diagnostic dump.
const maxDumpEvents = 64

// ThreadState is one thread's state at the moment a watchdog stopped the
// run, captured into a Failure.
type ThreadState struct {
	ID     int
	Clock  uint64 // virtual time the thread had reached
	LastOp uint64 // virtual time of its last completed operation
	Done   bool   // thread had finished its measurement loop
	InTx   bool   // thread was unwound inside an open transaction
	Stats  tsx.Stats
}

// Failure is the structured result of a watchdog trip: instead of hanging
// or panicking, the run stops and reports what the machine was doing. Its
// Dump is bounded and deterministic — equal seeds and fault schedules
// produce byte-identical dumps.
type Failure struct {
	// Reason is one of ReasonLivelock, ReasonStarvation, ReasonDeadlock.
	Reason string
	// Thread is the starving thread, or -1.
	Thread int
	// Cycle is the waits-for cycle (deadlock only).
	Cycle []int
	// Clock is the minimum virtual clock when the watchdog tripped.
	Clock uint64
	// Context echoes WatchdogConfig.Context.
	Context string
	// Threads is the per-thread state at the stop.
	Threads []ThreadState
	// Events is the tail of the machine's trace ring (at most
	// maxDumpEvents entries; nil when the machine has no ring).
	Events []tsx.TraceEvent
}

// Error makes Failure usable as an error.
func (f *Failure) Error() string {
	switch f.Reason {
	case ReasonStarvation:
		return fmt.Sprintf("watchdog: starvation of thread %d at cycle %d", f.Thread, f.Clock)
	case ReasonDeadlock:
		return fmt.Sprintf("watchdog: deadlock %v at cycle %d", f.Cycle, f.Clock)
	}
	return fmt.Sprintf("watchdog: %s at cycle %d", f.Reason, f.Clock)
}

// Dump renders the full bounded diagnostic: the trip, per-thread state,
// and the last engine events. The output is deterministic.
func (f *Failure) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Error())
	if f.Context != "" {
		fmt.Fprintf(&b, "context: %s\n", f.Context)
	}
	fmt.Fprintf(&b, "threads:\n")
	for _, ts := range f.Threads {
		fmt.Fprintf(&b, "  T%d clock=%d last-op=%d done=%v in-tx=%v committed=%d aborted=%d\n",
			ts.ID, ts.Clock, ts.LastOp, ts.Done, ts.InTx, ts.Stats.Committed, ts.Stats.TotalAborts())
	}
	if len(f.Events) > 0 {
		fmt.Fprintf(&b, "last %d engine events:\n", len(f.Events))
		for _, ev := range f.Events {
			fmt.Fprintf(&b, "  T%d@%d %s addr=%d val=%d\n", ev.Thread, ev.Clock, ev.Kind, ev.Addr, ev.Val)
		}
	}
	return b.String()
}

// Watchdog tracks per-thread progress during a run and implements the
// scheduler's liveness check (tsx.Machine.SetWatchdog). All methods are
// called from token-serialized simulated execution or from the scheduler
// between grants, so no synchronization is needed.
type Watchdog struct {
	cfg WatchdogConfig
	n   int

	lastOp [locks.MaxThreads]uint64
	done   [locks.MaxThreads]bool
	ndone  int
	checks int

	tripped   bool
	reason    string
	victim    int
	cycle     []int
	tripClock uint64
}

// NewWatchdog arms a watchdog for a run with n threads.
func NewWatchdog(cfg WatchdogConfig, n int) *Watchdog {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 64
	}
	if cfg.Monitor != nil {
		cfg.Monitor.Reset()
	}
	return &Watchdog{cfg: cfg, n: n, victim: -1}
}

// NoteOp records that thread id completed an operation at the given clock.
func (wd *Watchdog) NoteOp(id int, clock uint64) {
	wd.lastOp[id] = clock
}

// NoteDone records that thread id finished its measurement loop; finished
// threads are exempt from liveness windows.
func (wd *Watchdog) NoteDone(id int) {
	if !wd.done[id] {
		wd.done[id] = true
		wd.ndone++
	}
}

// Tripped reports whether the watchdog stopped the run, and why.
func (wd *Watchdog) Tripped() (bool, string) { return wd.tripped, wd.reason }

// Check is the scheduler callback: it inspects progress at the machine's
// minimum virtual clock and returns true to stop the run. Trip priority:
// deadlock, then starvation, then livelock.
func (wd *Watchdog) Check(minClock uint64) bool {
	if wd.tripped {
		return true
	}
	if wd.ndone >= wd.n {
		return false
	}
	wd.checks++
	if mo := wd.cfg.Monitor; mo != nil && wd.checks%wd.cfg.CheckEvery == 0 {
		if cyc := mo.Cycle(); cyc != nil {
			wd.trip(ReasonDeadlock, -1, cyc, minClock)
			return true
		}
	}
	// lastAny is the most recent completed operation machine-wide,
	// over unfinished threads' last ops and finished threads alike.
	var lastAny uint64
	for id := 0; id < wd.n; id++ {
		if wd.lastOp[id] > lastAny {
			lastAny = wd.lastOp[id]
		}
	}
	if w := wd.cfg.StarvationWindow; w > 0 {
		for id := 0; id < wd.n; id++ {
			if wd.done[id] || wd.lastOp[id]+w > minClock {
				continue
			}
			if lastAny > wd.lastOp[id] {
				// Someone else progressed since the victim last did:
				// starvation, not collective livelock.
				wd.trip(ReasonStarvation, id, nil, minClock)
				return true
			}
		}
	}
	if w := wd.cfg.LivelockWindow; w > 0 && lastAny+w <= minClock {
		wd.trip(ReasonLivelock, -1, nil, minClock)
		return true
	}
	return false
}

func (wd *Watchdog) trip(reason string, victim int, cycle []int, clock uint64) {
	wd.tripped = true
	wd.reason = reason
	wd.victim = victim
	wd.cycle = cycle
	wd.tripClock = clock
}

// Failure builds the structured diagnostic after a watchdog-stopped run,
// from the machine's trace ring and the returned threads.
func (wd *Watchdog) Failure(m *tsx.Machine, threads []*tsx.Thread) *Failure {
	f := &Failure{
		Reason:  wd.reason,
		Thread:  wd.victim,
		Cycle:   wd.cycle,
		Clock:   wd.tripClock,
		Context: wd.cfg.Context,
	}
	for _, th := range threads {
		if th == nil {
			continue // stopped before the thread body even started
		}
		f.Threads = append(f.Threads, ThreadState{
			ID:     th.ID,
			Clock:  th.Clock(),
			LastOp: wd.lastOp[th.ID],
			Done:   wd.done[th.ID],
			InTx:   th.InTx(),
			Stats:  th.Stats,
		})
	}
	evs := m.TraceEvents()
	if len(evs) > maxDumpEvents {
		evs = evs[len(evs)-maxDumpEvents:]
	}
	f.Events = evs
	return f
}
