package harness

import (
	"testing"

	"hle/internal/tsx"
)

// benchCfg is a machine sized like the large-tree figure groups, where
// population dominates point setup cost.
func benchCfg(elems int) tsx.Config {
	cfg := tsx.DefaultConfig(8)
	cfg.Seed = 1
	cfg.MemWords = elems*16 + 1<<16
	return cfg
}

// BenchmarkPointSetupCold measures the per-point setup cost a sweep pays
// without warm templates: build a machine and populate the workload from
// scratch every time.
func BenchmarkPointSetupCold(b *testing.B) {
	const elems = 32768
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := tsx.NewMachine(benchCfg(elems))
		m.RunOne(func(t *tsx.Thread) {
			NewRBTree(t, elems, MixModerate).Populate(t)
		})
	}
}

// BenchmarkPointSetupClone measures the old template mode: one populated
// machine cloned per point (a clone re-snapshots its source, so it costs
// two memory copies).
func BenchmarkPointSetupClone(b *testing.B) {
	const elems = 32768
	tmpl := tsx.NewMachine(benchCfg(elems))
	tmpl.RunOne(func(t *tsx.Thread) {
		NewRBTree(t, elems, MixModerate).Populate(t)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl.Clone()
	}
}

// BenchmarkPointSetupFork measures the warm-template mode: the populated
// image is checkpointed once and every point copies the checkpoint.
func BenchmarkPointSetupFork(b *testing.B) {
	const elems = 32768
	wt := &WarmTemplate{
		Machine: benchCfg(elems),
		MkWorkload: func(t *tsx.Thread) Workload {
			return NewRBTree(t, elems, MixModerate)
		},
	}
	wt.Fork() // pay the one-time populate outside the measured loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wt.Fork()
	}
}
