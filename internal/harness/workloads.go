package harness

import (
	"fmt"

	"hle/internal/hashtable"
	"hle/internal/rbtree"
	"hle/internal/tsx"
)

// Mix is an operation distribution in percent (the remainder are lookups).
// The paper's three contention levels are: lookups only (0/0), moderate
// (10/10), and extensive (50/50).
type Mix struct {
	InsertPct int
	DeletePct int
}

// Paper mixes.
var (
	MixLookupOnly = Mix{0, 0}
	MixModerate   = Mix{10, 10}
	MixExtensive  = Mix{50, 50}
)

// String renders "i/d/l".
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d", m.InsertPct, m.DeletePct, 100-m.InsertPct-m.DeletePct)
}

// RBTree is the red-black tree workload of Chapters 3 and 5: a tree of a
// given size, initially filled with random elements from a domain of twice
// the size, exercised with a given operation mix.
type RBTree struct {
	Size int
	Mix  Mix

	tree *rbtree.Tree
}

// NewRBTree creates the workload structure (tree still empty).
func NewRBTree(t *tsx.Thread, size int, mix Mix) *RBTree {
	return &RBTree{Size: size, Mix: mix, tree: rbtree.New(t)}
}

// Name implements Workload.
func (w *RBTree) Name() string {
	return fmt.Sprintf("rbtree(size=%d,mix=%s)", w.Size, w.Mix)
}

// Populate fills the tree to its target size with random elements from a
// domain of size 2*Size, as §3 specifies.
func (w *RBTree) Populate(t *tsx.Thread) {
	count := 0
	for count < w.Size {
		if w.tree.Insert(t, uint64(t.Rand().Intn(2*w.Size)), 1) {
			count++
		}
	}
}

// Tree exposes the underlying tree (tests use this).
func (w *RBTree) Tree() *rbtree.Tree { return w.tree }

// NextOp implements Workload.
func (w *RBTree) NextOp(t *tsx.Thread) Op {
	return drawOp(t, w.Size, w.Mix)
}

// Exec implements Workload.
func (w *RBTree) Exec(t *tsx.Thread, op Op) {
	switch op.Kind {
	case OpInsert:
		w.tree.Insert(t, op.Key, 1)
	case OpDelete:
		w.tree.Delete(t, op.Key)
	default:
		w.tree.Contains(t, op.Key)
	}
}

// HashTable is the §5.2 hash-table workload: same shape as RBTree but over
// a chained hash table, so critical sections are uniformly short.
type HashTable struct {
	Size int
	Mix  Mix

	table *hashtable.Table
}

// NewHashTable creates the workload structure.
func NewHashTable(t *tsx.Thread, size int, mix Mix) *HashTable {
	return &HashTable{Size: size, Mix: mix, table: hashtable.New(t, size)}
}

// Name implements Workload.
func (w *HashTable) Name() string {
	return fmt.Sprintf("hashtable(size=%d,mix=%s)", w.Size, w.Mix)
}

// Populate fills the table to its target size.
func (w *HashTable) Populate(t *tsx.Thread) {
	filled := 0
	for filled < w.Size {
		if w.table.Insert(t, uint64(t.Rand().Intn(2*w.Size)), 1) {
			filled++
		}
	}
}

// NextOp implements Workload.
func (w *HashTable) NextOp(t *tsx.Thread) Op {
	return drawOp(t, w.Size, w.Mix)
}

// Exec implements Workload.
func (w *HashTable) Exec(t *tsx.Thread, op Op) {
	switch op.Kind {
	case OpInsert:
		w.table.Insert(t, op.Key, 1)
	case OpDelete:
		w.table.Delete(t, op.Key)
	default:
		w.table.Contains(t, op.Key)
	}
}

// drawOp samples one operation: a key uniform over twice the target size
// and a kind from the mix, matching the paper's methodology.
func drawOp(t *tsx.Thread, size int, mix Mix) Op {
	key := uint64(t.Rand().Intn(2 * size))
	p := t.Rand().Intn(100)
	switch {
	case p < mix.InsertPct:
		return Op{Kind: OpInsert, Key: key}
	case p < mix.InsertPct+mix.DeletePct:
		return Op{Kind: OpDelete, Key: key}
	default:
		return Op{Kind: OpLookup, Key: key}
	}
}
