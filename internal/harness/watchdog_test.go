package harness

import (
	"reflect"
	"strings"
	"testing"

	"hle/internal/locks"
	"hle/internal/tsx"
)

// wdMachine builds a small deterministic machine with a trace ring.
func wdMachine(seed int64, ring int) *tsx.Machine {
	cfg := tsx.DefaultConfig(2)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0
	cfg.TraceRing = ring
	return tsx.NewMachine(cfg)
}

// deadlockOnce drives a classic ABBA deadlock under a monitored lock pair
// and returns the watchdog and the stopped machine's threads.
func deadlockOnce(t *testing.T, seed int64) (*Watchdog, *tsx.Machine, []*tsx.Thread) {
	t.Helper()
	m := wdMachine(seed, 32)
	mo := locks.NewMonitor()
	var a, b locks.Lock
	m.RunOne(func(th *tsx.Thread) {
		a = locks.Monitored(locks.NewTTAS(th), mo)
		b = locks.Monitored(locks.NewTTAS(th), mo)
	})
	wd := NewWatchdog(WatchdogConfig{
		Monitor:    mo,
		CheckEvery: 1,
		Context:    "ABBA test",
	}, 2)
	m.SetWatchdog(wd.Check)
	defer m.SetWatchdog(nil)
	threads := m.Run(2, func(th *tsx.Thread) {
		a.Prepare(th)
		b.Prepare(th)
		first, second := a, b
		if th.ID == 1 {
			first, second = b, a
		}
		first.Acquire(th)
		th.Work(100)
		second.Acquire(th) // ABBA: guaranteed deadlock
		second.Release(th)
		first.Release(th)
	})
	return wd, m, threads
}

// TestWatchdogDetectsDeadlock: the ABBA pattern trips the deadlock
// detector and yields a structured failure instead of hanging.
func TestWatchdogDetectsDeadlock(t *testing.T) {
	wd, m, threads := deadlockOnce(t, 5)
	tripped, reason := wd.Tripped()
	if !tripped || reason != ReasonDeadlock {
		t.Fatalf("tripped=%v reason=%q, want deadlock", tripped, reason)
	}
	if !m.Stopped() {
		t.Fatal("machine not stopped")
	}
	f := wd.Failure(m, threads)
	if !reflect.DeepEqual(f.Cycle, []int{0, 1}) {
		t.Errorf("cycle = %v, want [0 1]", f.Cycle)
	}
	if len(f.Threads) != 2 {
		t.Errorf("thread states = %d, want 2", len(f.Threads))
	}
	if f.Error() == "" || !strings.Contains(f.Dump(), "ABBA test") {
		t.Error("dump missing context")
	}
	if !strings.Contains(f.Dump(), "engine events") {
		t.Error("dump missing trace-ring tail")
	}
}

// TestFailureDumpDeterministic: equal seeds produce byte-identical dumps.
func TestFailureDumpDeterministic(t *testing.T) {
	dump := func() string {
		wd, m, threads := deadlockOnce(t, 5)
		return wd.Failure(m, threads).Dump()
	}
	if d1, d2 := dump(), dump(); d1 != d2 {
		t.Errorf("dumps differ:\n%s\n---\n%s", d1, d2)
	}
}

// TestArmedWatchdogIsInvisible: a run with a watchdog armed (but never
// tripping), monitored locks, and a trace ring must produce a Result
// byte-identical to a bare run — the robustness layer is zero-cost when it
// does not fire.
func TestArmedWatchdogIsInvisible(t *testing.T) {
	run := func(armed bool) Result {
		mcfg := tsx.DefaultConfig(4)
		mcfg.Seed = 17
		cfg := Config{Threads: 4, CycleBudget: 120_000}
		spec := SchemeSpec{Scheme: "HLE-SCM", Lock: "TTAS"}
		if armed {
			mcfg.TraceRing = 128
			mo := locks.NewMonitor()
			spec.Monitor = mo
			cfg.Watchdog = &WatchdogConfig{
				LivelockWindow:   1 << 40,
				StarvationWindow: 1 << 40,
				Monitor:          mo,
				Context:          "inert",
			}
		}
		return Point(mcfg, spec, func(th *tsx.Thread) Workload {
			return NewRBTree(th, 64, MixExtensive)
		}, cfg)
	}
	plain := run(false)
	armed := run(true)
	if armed.Failure != nil {
		t.Fatalf("inert watchdog tripped: %v", armed.Failure)
	}
	if !reflect.DeepEqual(plain, armed) {
		t.Errorf("armed run differs from plain run:\nplain: %+v\narmed: %+v", plain, armed)
	}
}
