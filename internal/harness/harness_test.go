package harness_test

import (
	"testing"

	"hle/internal/harness"
	"hle/internal/tsx"
)

func machineCfg(n int, seed int64) tsx.Config {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.MemWords = 1 << 18
	return cfg
}

func TestPointBasic(t *testing.T) {
	res := harness.Point(machineCfg(4, 1),
		harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
		func(th *tsx.Thread) harness.Workload {
			return harness.NewRBTree(th, 128, harness.MixModerate)
		},
		harness.Config{Threads: 4, CycleBudget: 200_000})
	if res.Ops.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	if res.MaxClock < 200_000 {
		t.Fatalf("run stopped early at %d", res.MaxClock)
	}
	if res.Ops.Spec+res.Ops.NonSpec != res.Ops.Ops {
		t.Fatal("spec/nonspec accounting inconsistent")
	}
}

func TestDeterministicResults(t *testing.T) {
	point := func() harness.Result {
		return harness.Point(machineCfg(4, 7),
			harness.SchemeSpec{Scheme: "HLE-SCM", Lock: "MCS"},
			func(th *tsx.Thread) harness.Workload {
				return harness.NewRBTree(th, 64, harness.MixExtensive)
			},
			harness.Config{Threads: 4, CycleBudget: 150_000})
	}
	a, b := point(), point()
	if a.Ops != b.Ops || a.MaxClock != b.MaxClock {
		t.Fatalf("nondeterministic results: %+v vs %+v", a.Ops, b.Ops)
	}
}

func TestTimelineCollection(t *testing.T) {
	res := harness.Point(machineCfg(4, 3),
		harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
		func(th *tsx.Thread) harness.Workload {
			return harness.NewRBTree(th, 64, harness.MixModerate)
		},
		harness.Config{Threads: 4, CycleBudget: 300_000, SliceCycles: 30_000})
	if res.Timeline == nil || len(res.Timeline.Slots) < 8 {
		t.Fatalf("timeline not collected: %+v", res.Timeline)
	}
	var total uint64
	for _, s := range res.Timeline.Slots {
		total += s.Ops
	}
	if total != res.Ops.Ops {
		t.Fatalf("timeline ops %d != total ops %d", total, res.Ops.Ops)
	}
	if len(res.Timeline.NormalizedOps()) != len(res.Timeline.Slots) {
		t.Fatal("normalized series length mismatch")
	}
}

// TestAllSchemeSpecsBuild ensures the factory covers the full matrix.
func TestAllSchemeSpecsBuild(t *testing.T) {
	for _, scheme := range []string{
		"Standard", "HLE", "HLE-HWExt", "RTM-LE", "HLE-SCM",
		"HLE-SCM-ideal", "HLE-SCM-multi", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM",
	} {
		for _, lock := range []string{"TTAS", "MCS", "Ticket", "AdjTicket", "CLH", "AdjCLH"} {
			spec := harness.SchemeSpec{Scheme: scheme, Lock: lock}
			m := tsx.NewMachine(machineCfg(1, 1))
			m.RunOne(func(th *tsx.Thread) {
				s := spec.Build(th)
				if s == nil {
					t.Errorf("%v built nil", spec)
				}
			})
		}
	}
	m := tsx.NewMachine(machineCfg(1, 1))
	m.RunOne(func(th *tsx.Thread) {
		if (harness.SchemeSpec{Scheme: "NoLock"}).Build(th) == nil {
			t.Error("NoLock build failed")
		}
	})
}

func TestHashTableWorkload(t *testing.T) {
	res := harness.Point(machineCfg(4, 5),
		harness.SchemeSpec{Scheme: "Opt-SLR", Lock: "TTAS"},
		func(th *tsx.Thread) harness.Workload {
			return harness.NewHashTable(th, 256, harness.MixModerate)
		},
		harness.Config{Threads: 4, CycleBudget: 150_000})
	if res.Ops.Ops == 0 {
		t.Fatal("no hash-table ops completed")
	}
}

// TestHLEBeatsStandardOnReadOnly: the headline sanity check — elision must
// outscale a standard lock on a lookup-only workload.
func TestHLEBeatsStandardOnReadOnly(t *testing.T) {
	mk := func(th *tsx.Thread) harness.Workload {
		return harness.NewRBTree(th, 4096, harness.MixLookupOnly)
	}
	cfg := harness.Config{Threads: 8, CycleBudget: 400_000}
	std := harness.Point(machineCfg(8, 9), harness.SchemeSpec{Scheme: "Standard", Lock: "TTAS"}, mk, cfg)
	hle := harness.Point(machineCfg(8, 9), harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"}, mk, cfg)
	speedup := hle.Throughput / std.Throughput
	if speedup < 2 {
		t.Fatalf("HLE speedup over standard lock on read-only workload = %.2fx; expected clear scaling", speedup)
	}
}

// TestWarmupExcludesTransient: operations completing before the warmup
// boundary are excluded from stats, and throughput normalizes to the
// measured window.
func TestWarmupExcludesTransient(t *testing.T) {
	full := harness.Point(machineCfg(4, 13),
		harness.SchemeSpec{Scheme: "Standard", Lock: "TTAS"},
		func(th *tsx.Thread) harness.Workload {
			return harness.NewRBTree(th, 128, harness.MixModerate)
		},
		harness.Config{Threads: 4, CycleBudget: 200_000})
	warmed := harness.Point(machineCfg(4, 13),
		harness.SchemeSpec{Scheme: "Standard", Lock: "TTAS"},
		func(th *tsx.Thread) harness.Workload {
			return harness.NewRBTree(th, 128, harness.MixModerate)
		},
		harness.Config{Threads: 4, CycleBudget: 200_000, Warmup: 200_000})
	if warmed.Ops.Ops >= full.Ops.Ops*3/2 {
		t.Fatalf("warmed window recorded %d ops vs %d for the full run; warmup not excluded",
			warmed.Ops.Ops, full.Ops.Ops)
	}
	if warmed.MaxClock < 400_000 {
		t.Fatalf("warmed run stopped at %d, want >= warmup+budget", warmed.MaxClock)
	}
	// Throughputs of a steady workload agree across the two windows.
	ratio := warmed.Throughput / full.Throughput
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("steady throughput differs across windows: %.1f vs %.1f", warmed.Throughput, full.Throughput)
	}
}
