package harness_test

import (
	"slices"
	"testing"

	"hle/internal/harness"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/tsx"
)

// falseShareWorkload is a contrived placement victim: per-thread counters
// small enough that the packed allocator co-locates several per cache
// line. Every operation is one elided read-modify-write of the invoking
// thread's own counter — logically conflict-free, so every conflict abort
// it suffers is placement-induced false sharing, exactly what auto-pad
// should remove.
type falseShareWorkload struct {
	counters []mem.Addr
}

func (w *falseShareWorkload) Name() string { return "false-share" }

func (w *falseShareWorkload) Populate(t *tsx.Thread) {
	w.counters = make([]mem.Addr, 8)
	for i := range w.counters {
		w.counters[i] = t.Alloc(2)
	}
}

func (w *falseShareWorkload) NextOp(t *tsx.Thread) harness.Op {
	return harness.Op{Kind: harness.OpInsert, Key: uint64(t.ID)}
}

func (w *falseShareWorkload) Exec(t *tsx.Thread, op harness.Op) {
	a := w.counters[int(op.Key)%len(w.counters)]
	t.Store(a, t.Load(a)+1)
	t.Store(a+1, uint64(op.Key))
}

func fsTemplate() *harness.WarmTemplate {
	cfg := tsx.DefaultConfig(4)
	cfg.Seed = 21
	return &harness.WarmTemplate{
		Machine: cfg,
		MkWorkload: func(t *tsx.Thread) harness.Workload {
			return &falseShareWorkload{}
		},
	}
}

func fsMeasure(t *testing.T, wt *harness.WarmTemplate) *obs.Profile {
	t.Helper()
	res := harness.PointSpec{
		Warm:   wt,
		Scheme: harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
		Seed:   77,
		Cfg: harness.Config{
			Threads:     4,
			CycleBudget: 60_000,
			Profile:     &obs.Options{TopLines: -1},
		},
	}.Run()
	if res.Profile == nil {
		t.Fatal("no profile")
	}
	if got, want := res.Profile.CauseSum(), res.Profile.EngineAborts; got != want {
		t.Fatalf("attribution invariant broken: causes %d, engine %d", got, want)
	}
	return res.Profile
}

// TestAutoPadReducesFalseSharing drives the full profile→layout loop on
// the contrived victim: the burst must find the counters' shared lines,
// and the re-laid-out template must suffer fewer conflict-data-line
// aborts than the packed baseline on the identical measured run.
func TestAutoPadReducesFalseSharing(t *testing.T) {
	wt := fsTemplate()
	base := fsMeasure(t, wt)
	baseData := base.Cause(obs.ClassConflictDataLine)
	if baseData == 0 {
		t.Fatal("test setup: packed baseline shows no false sharing to remove")
	}

	padded, report := harness.AutoPad(wt, harness.AutoPadConfig{
		Scheme:  harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
		Threads: 4,
		Burst:   20_000,
		Seed:    5,
	})
	if padded == wt {
		t.Fatal("AutoPad found nothing to pad on the false-sharing victim")
	}
	if len(report.PlanLines) == 0 || report.BurstDataConflicts == 0 {
		t.Fatalf("empty report: %+v", report)
	}
	if !slices.IsSorted(report.PlanLines) {
		t.Fatalf("plan lines not sorted: %v", report.PlanLines)
	}

	after := fsMeasure(t, padded)
	afterData := after.Cause(obs.ClassConflictDataLine)
	if afterData >= baseData {
		t.Fatalf("auto-pad did not reduce data-line conflicts: packed %d, padded %d",
			baseData, afterData)
	}
	t.Logf("data-line conflict aborts: packed %d → auto-pad %d (plan %v)",
		baseData, afterData, report.PlanLines)
}

// TestAutoPadDeterministic: the pass is a pure function of template,
// config, and seed — two invocations produce identical plans, and the
// measured run on the re-laid-out template is byte-deterministic.
func TestAutoPadDeterministic(t *testing.T) {
	run := func() ([]int, []byte) {
		wt := fsTemplate()
		padded, report := harness.AutoPad(wt, harness.AutoPadConfig{
			Scheme:  harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
			Threads: 4,
			Burst:   20_000,
			Seed:    5,
		})
		return report.PlanLines, fsMeasure(t, padded).JSON()
	}
	p1, j1 := run()
	p2, j2 := run()
	if !slices.Equal(p1, p2) {
		t.Fatalf("plans diverge: %v vs %v", p1, p2)
	}
	if string(j1) != string(j2) {
		t.Fatal("measured profiles diverge across identical auto-pad passes")
	}
}

// TestAutoPadLeavesTemplateUntouched: the input template keeps serving
// identical packed forks after the pass.
func TestAutoPadDoesNotMutateTemplate(t *testing.T) {
	wt := fsTemplate()
	before := fsMeasure(t, wt).JSON()
	_, _ = harness.AutoPad(wt, harness.AutoPadConfig{
		Scheme:  harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
		Threads: 4,
		Burst:   20_000,
	})
	after := fsMeasure(t, wt).JSON()
	if string(before) != string(after) {
		t.Fatal("AutoPad mutated its input template")
	}
}

// TestAutoPadGuards: misuse panics.
func TestAutoPadGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	wt := fsTemplate()
	mustPanic("zero burst", func() {
		harness.AutoPad(wt, harness.AutoPadConfig{Threads: 2})
	})
	padded := fsTemplate()
	padded.Machine.Layout.Placement = mem.Padded
	mustPanic("non-packed template", func() {
		harness.AutoPad(padded, harness.AutoPadConfig{
			Scheme: harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"}, Threads: 2, Burst: 1000})
	})
}
