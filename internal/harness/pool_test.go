package harness_test

import (
	"reflect"
	"sync/atomic"
	"testing"

	"hle/internal/harness"
	"hle/internal/tsx"
)

// poolPoints builds a template machine with a populated tree and a set of
// points over it, mimicking how a figure generator declares work.
func poolPoints(t *testing.T) []harness.PointSpec {
	t.Helper()
	mcfg := machineCfg(4, 11)
	tmpl := tsx.NewMachine(mcfg)
	var w harness.Workload
	tmpl.RunOne(func(th *tsx.Thread) {
		w = harness.NewRBTree(th, 64, harness.MixModerate)
		w.Populate(th)
	})
	specs := []harness.SchemeSpec{
		{Scheme: "Standard", Lock: "TTAS"},
		{Scheme: "HLE", Lock: "TTAS"},
		{Scheme: "HLE", Lock: "MCS"},
		{Scheme: "HLE-SCM", Lock: "MCS"},
	}
	var points []harness.PointSpec
	for si, spec := range specs {
		points = append(points, harness.PointSpec{
			Template: tmpl,
			Workload: w,
			Scheme:   spec,
			Seed:     harness.DeriveSeed(11, 0, si),
			Runs:     2,
			Cfg:      harness.Config{Threads: 4, CycleBudget: 30_000, Warmup: 5_000},
		})
	}
	return points
}

// TestRunPointsParallelMatchesSequential: the pool's defining property —
// results are independent of the worker count.
func TestRunPointsParallelMatchesSequential(t *testing.T) {
	seq := harness.RunPoints(1, poolPoints(t))
	par := harness.RunPoints(4, poolPoints(t))
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel results differ from sequential:\nseq=%+v\npar=%+v", seq, par)
	}
	for i, r := range seq {
		if r.Ops.Ops == 0 {
			t.Errorf("point %d completed no operations", i)
		}
	}
}

// TestPointSpecFreshMachine: the Template-less mode builds, populates, and
// measures a machine of its own, deterministically.
func TestPointSpecFreshMachine(t *testing.T) {
	p := harness.PointSpec{
		Machine: machineCfg(2, 7),
		MkWorkload: func(th *tsx.Thread) harness.Workload {
			return harness.NewRBTree(th, 32, harness.MixExtensive)
		},
		Scheme: harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
		Cfg:    harness.Config{Threads: 2, CycleBudget: 20_000},
	}
	r1, r2 := p.Run(), p.Run()
	if r1.Ops.Ops == 0 {
		t.Fatal("fresh-machine point completed no operations")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("fresh-machine point not deterministic: %+v vs %+v", r1, r2)
	}
}

// TestTemplateSurvivesPoints: running points over clones must leave the
// template untouched, so it can be reused for another batch.
func TestTemplateSurvivesPoints(t *testing.T) {
	pts := poolPoints(t)
	tmpl := pts[0].Template
	before := tmpl.Mem.Snapshot()
	harness.RunPoints(4, pts)
	after := tmpl.Mem.Snapshot()
	if !reflect.DeepEqual(before.Words(), after.Words()) {
		t.Fatal("running cloned points mutated the template's memory")
	}
}

// TestDeriveSeed: distinct coordinates give distinct non-zero seeds, and the
// function is a pure function of its inputs.
func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for g := 0; g < 10; g++ {
		for s := 0; s < 10; s++ {
			d := harness.DeriveSeed(42, g, s)
			if d == 0 {
				t.Fatalf("DeriveSeed(42,%d,%d) = 0", g, s)
			}
			if seen[d] {
				t.Fatalf("seed collision at (%d,%d)", g, s)
			}
			seen[d] = true
			if d != harness.DeriveSeed(42, g, s) {
				t.Fatal("DeriveSeed not deterministic")
			}
		}
	}
	if harness.DeriveSeed(1, 2, 3) == harness.DeriveSeed(2, 2, 3) {
		t.Error("base seed has no effect")
	}
}

// TestParallelForCoversAllIndices: every index runs exactly once whatever
// the worker count, including counts above n and the sequential path.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, par := range []int{0, 1, 3, 64} {
		const n = 37
		var hits [n]atomic.Int32
		harness.ParallelFor(par, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", par, i, got)
			}
		}
	}
}

// TestParallelForPanicPropagates: a panicking job surfaces in the caller.
func TestParallelForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	harness.ParallelFor(4, 8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
	t.Fatal("ParallelFor returned despite panicking job")
}
