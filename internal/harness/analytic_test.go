package harness_test

import (
	"testing"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// The tests in this file validate the simulator's virtual-time semantics
// against closed-form expectations — the foundation every figure rests on.

// jitterFreeCfg returns a machine config with deterministic costs.
func jitterFreeCfg(n int, seed int64) tsx.Config {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0
	cfg.CostJitter = -1
	return cfg
}

// TestNoLockScalesLinearly: disjoint work under no locking must scale
// (throughput in ops per cycle) linearly with thread count, because
// virtual time advances independently per thread.
func TestNoLockScalesLinearly(t *testing.T) {
	run := func(threads int) float64 {
		m := tsx.NewMachine(jitterFreeCfg(threads, 3))
		var cells [8]mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			for i := range cells {
				cells[i] = th.AllocLines(1)
			}
		})
		const perThread = 500
		var maxClock uint64
		ths := m.Run(threads, func(th *tsx.Thread) {
			for i := 0; i < perThread; i++ {
				c := cells[th.ID]
				th.Store(c, th.Load(c)+1)
				th.Work(10)
			}
		})
		for _, th := range ths {
			if th.Clock() > maxClock {
				maxClock = th.Clock()
			}
		}
		return float64(threads*perThread) / float64(maxClock)
	}
	t1, t8 := run(1), run(8)
	scaling := t8 / t1
	if scaling < 7.9 || scaling > 8.1 {
		t.Fatalf("8-thread disjoint scaling = %.2fx, want ≈8 (virtual time broken)", scaling)
	}
}

// TestSerialLockThroughputMatchesCSLength: under a standard lock with
// saturating demand, system throughput is 1/(critical-section virtual
// length + handover cost), independent of thread count — Amdahl's law's
// serial limit, computable exactly with jitter disabled.
func TestSerialLockThroughputMatchesCSLength(t *testing.T) {
	run := func(threads int) float64 {
		m := tsx.NewMachine(jitterFreeCfg(threads, 5))
		var s core.Scheme
		var cell mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			s = core.NewStandard(locks.NewTTAS(th))
			cell = th.AllocLines(1)
		})
		const perThread = 300
		var maxClock uint64
		ths := m.Run(threads, func(th *tsx.Thread) {
			s.Setup(th)
			for i := 0; i < perThread; i++ {
				s.Run(th, func() {
					th.Store(cell, th.Load(cell)+1)
					th.Work(100)
				})
			}
		})
		for _, th := range ths {
			if th.Clock() > maxClock {
				maxClock = th.Clock()
			}
		}
		return float64(threads*perThread) / float64(maxClock)
	}
	t2, t8 := run(2), run(8)
	// Serialized: more threads must NOT increase throughput.
	if t8 > t2*1.15 {
		t.Fatalf("serialized throughput grew with threads: %.5f -> %.5f", t2, t8)
	}
	// And it must be in the ballpark of 1/CS-length. CS ≈ lock RMW(20) +
	// load(4)+store(4)+work(100)+unlock store(4) ≈ 132 cycles plus spin
	// overhead on waiters.
	if perOp := 1 / t8; perOp < 120 || perOp > 400 {
		t.Fatalf("serialized per-op virtual time %.0f cycles, expected 132–400", perOp)
	}
}

// TestElisionReachesParallelLimit: fully disjoint critical sections under
// HLE approach the no-lock parallel limit within the begin/commit overhead.
func TestElisionReachesParallelLimit(t *testing.T) {
	m := tsx.NewMachine(jitterFreeCfg(8, 7))
	var s core.Scheme
	var cells [8]mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = core.NewHLE(locks.NewTTAS(th))
		for i := range cells {
			cells[i] = th.AllocLines(1)
		}
	})
	const perThread = 300
	var maxClock uint64
	ths := m.Run(8, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < perThread; i++ {
			s.Run(th, func() {
				c := cells[th.ID]
				th.Store(c, th.Load(c)+1)
				th.Work(100)
			})
		}
	})
	for _, th := range ths {
		if th.Clock() > maxClock {
			maxClock = th.Clock()
		}
	}
	if s.TotalStats().NonSpecFraction() > 0.01 {
		t.Fatalf("disjoint elision serialized %.3f of ops", s.TotalStats().NonSpecFraction())
	}
	// Per-op virtual time ≈ CS(108) + elide RMW+begin(60) + release(4) +
	// commit(30) ≈ 202 cycles; with perfect overlap each thread's clock
	// advances by its own ops only.
	perOp := float64(maxClock) / perThread
	if perOp < 180 || perOp > 260 {
		t.Fatalf("elided per-op virtual time %.0f, expected ≈202 (no serialization)", perOp)
	}
}

// TestVirtualTimeUnaffectedByOtherThreads: a thread doing fixed work ends
// at the same virtual clock whether it runs alone or with 7 independent
// peers (virtual clocks only advance with own costs).
func TestVirtualTimeUnaffectedByOtherThreads(t *testing.T) {
	clockOf := func(threads int) uint64 {
		m := tsx.NewMachine(jitterFreeCfg(threads, 9))
		var cells [8]mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			for i := range cells {
				cells[i] = th.AllocLines(1)
			}
		})
		var clock0 uint64
		m.Run(threads, func(th *tsx.Thread) {
			for i := 0; i < 200; i++ {
				th.Store(cells[th.ID], uint64(i))
				th.Work(7)
			}
			if th.ID == 0 {
				clock0 = th.Clock()
			}
		})
		return clock0
	}
	alone, crowded := clockOf(1), clockOf(8)
	if alone != crowded {
		t.Fatalf("thread 0's clock differs alone (%d) vs crowded (%d): virtual time leaked between threads",
			alone, crowded)
	}
}
