package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Intruder models STAMP's network-intrusion-detection benchmark: workers
// pop packet fragments off a shared queue, reassemble them into flows in a
// shared map, and scan completed flows for attack signatures. The shared
// queue head makes it the suite's high-contention member.
type Intruder struct {
	nFlows   int
	perFlow  int
	nAttacks int

	queue    mem.Addr // shuffled fragments: packed (flow<<16 | fragIdx)
	head     mem.Addr // queue head index (the hot word)
	seen     mem.Addr // per-flow reassembled-fragment counters
	isAttack mem.Addr // per-flow attack flag (input)
	detected mem.Addr // detected-attack counter (output)
	done     mem.Addr // per-flow completion marker (output)
}

// NewIntruder creates an instance with nFlows flows of perFlow fragments.
// Every seventh flow carries an attack signature.
func NewIntruder(nFlows, perFlow int) *Intruder {
	return &Intruder{nFlows: nFlows, perFlow: perFlow}
}

// Name implements App.
func (in *Intruder) Name() string { return "intruder" }

// Setup implements App.
func (in *Intruder) Setup(t *tsx.Thread) {
	total := in.nFlows * in.perFlow
	in.queue = t.Alloc(total)
	in.head = t.AllocLines(1)
	in.seen = t.Alloc(in.nFlows)
	in.isAttack = t.Alloc(in.nFlows)
	in.detected = t.AllocLines(1)
	in.done = t.Alloc(in.nFlows)

	frags := make([]uint64, 0, total)
	for f := 0; f < in.nFlows; f++ {
		if f%7 == 3 {
			t.Store(in.isAttack+mem.Addr(f), 1)
			in.nAttacks++
		}
		for i := 0; i < in.perFlow; i++ {
			frags = append(frags, uint64(f)<<16|uint64(i))
		}
	}
	t.Rand().Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	for i, fr := range frags {
		t.Store(in.queue+mem.Addr(i), fr)
	}
}

// Worker implements App.
func (in *Intruder) Worker(t *tsx.Thread, scheme core.Scheme, threads int) {
	total := uint64(in.nFlows * in.perFlow)
	for {
		// Critical section 1: pop a fragment off the shared queue.
		var frag uint64
		empty := false
		scheme.Run(t, func() {
			empty = false
			idx := t.Load(in.head)
			if idx >= total {
				empty = true
				return
			}
			t.Store(in.head, idx+1)
			frag = t.Load(in.queue + mem.Addr(idx))
		})
		if empty {
			return
		}
		flow := frag >> 16

		// Decode the fragment outside any critical section.
		t.Work(25)

		// Critical section 2: reassemble; on flow completion, scan
		// for the attack signature and record the detection.
		scheme.Run(t, func() {
			cnt := t.Load(in.seen+mem.Addr(flow)) + 1
			t.Store(in.seen+mem.Addr(flow), cnt)
			if cnt == uint64(in.perFlow) {
				t.Work(uint64(10 * in.perFlow)) // signature scan
				t.Store(in.done+mem.Addr(flow), 1)
				if t.Load(in.isAttack+mem.Addr(flow)) == 1 {
					t.Store(in.detected, t.Load(in.detected)+1)
				}
			}
		})
	}
}

// Validate implements App.
func (in *Intruder) Validate(t *tsx.Thread) error {
	if got := t.Load(in.detected); got != uint64(in.nAttacks) {
		return fmt.Errorf("detected %d attacks, want %d", got, in.nAttacks)
	}
	for f := 0; f < in.nFlows; f++ {
		if got := t.Load(in.seen + mem.Addr(f)); got != uint64(in.perFlow) {
			return fmt.Errorf("flow %d reassembled %d fragments, want %d", f, got, in.perFlow)
		}
		if t.Load(in.done+mem.Addr(f)) != 1 {
			return fmt.Errorf("flow %d never completed", f)
		}
	}
	if got := t.Load(in.head); got != uint64(in.nFlows*in.perFlow) {
		return fmt.Errorf("queue head %d, want %d", got, in.nFlows*in.perFlow)
	}
	return nil
}
