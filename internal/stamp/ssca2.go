package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// SSCA2 models STAMP's scalable-synthetic-compact-applications graph
// kernel: workers insert a large shuffled edge list into per-vertex
// adjacency lists. Transactions are tiny and spread over many vertices, so
// contention is very low — most of the time is spent outside critical
// sections, and the paper's Figure 5.4 shows correspondingly modest elision
// effects.
type SSCA2 struct {
	nVertices int
	avgDeg    int
	nEdges    int

	edges mem.Addr // packed (u<<32 | v)
	// verts holds one cache line per vertex: [head, degree, ...pad].
	// STAMP's per-vertex structs likewise keep hot vertex state apart;
	// packing heads of different vertices onto one line would create
	// false-sharing conflicts the real benchmark does not have.
	verts mem.Addr
}

// NewSSCA2 creates a graph builder over nVertices with ~avgDeg edges per
// vertex.
func NewSSCA2(nVertices, avgDeg int) *SSCA2 {
	return &SSCA2{nVertices: nVertices, avgDeg: avgDeg}
}

// Name implements App.
func (s *SSCA2) Name() string { return "ssca2" }

// Setup implements App.
func (s *SSCA2) Setup(t *tsx.Thread) {
	s.nEdges = s.nVertices * s.avgDeg
	s.edges = t.Alloc(s.nEdges)
	s.verts = t.AllocLines(s.nVertices * mem.LineWords)
	for i := 0; i < s.nEdges; i++ {
		u := t.Rand().Intn(s.nVertices)
		v := t.Rand().Intn(s.nVertices)
		t.Store(s.edges+mem.Addr(i), uint64(u)<<32|uint64(v))
	}
}

// Worker implements App: each thread inserts its stripe of the edge list.
func (s *SSCA2) Worker(t *tsx.Thread, scheme core.Scheme, threads int) {
	for i := t.ID; i < s.nEdges; i += threads {
		e := t.Load(s.edges + mem.Addr(i))
		u, v := e>>32, e&0xffffffff
		t.Work(250) // kernel computation dominates, as in STAMP
		scheme.Run(t, func() {
			// Adjacency node: [target, next] on its own line (the
			// original allocates from per-thread arenas, so nodes
			// built by different threads never share a line).
			node := t.AllocLines(2)
			vr := s.verts + mem.Addr(u)*mem.LineWords
			t.Store(node, v)
			if head := t.Load(vr); head != 0 {
				t.Store(node+1, head)
			}
			t.Store(vr, uint64(node))
			t.Store(vr+1, t.Load(vr+1)+1)
		})
	}
}

// Validate implements App: degree sums match the edge count and every edge
// is present in its source's adjacency list.
func (s *SSCA2) Validate(t *tsx.Thread) error {
	var totalDeg, listed uint64
	for u := 0; u < s.nVertices; u++ {
		vr := s.verts + mem.Addr(u)*mem.LineWords
		totalDeg += t.Load(vr + 1)
		for n := mem.Addr(t.Load(vr)); n != mem.Nil; n = mem.Addr(t.Load(n + 1)) {
			listed++
		}
	}
	if totalDeg != uint64(s.nEdges) || listed != uint64(s.nEdges) {
		return fmt.Errorf("degrees %d, listed %d, want %d", totalDeg, listed, s.nEdges)
	}
	// Multiset check: every input edge appears in its adjacency list as
	// many times as it was inserted.
	want := map[uint64]int{}
	for i := 0; i < s.nEdges; i++ {
		want[t.Load(s.edges+mem.Addr(i))]++
	}
	got := map[uint64]int{}
	for u := 0; u < s.nVertices; u++ {
		vr := s.verts + mem.Addr(u)*mem.LineWords
		for n := mem.Addr(t.Load(vr)); n != mem.Nil; n = mem.Addr(t.Load(n + 1)) {
			got[uint64(u)<<32|t.Load(n)]++
		}
	}
	for e, w := range want {
		if got[e] != w {
			return fmt.Errorf("edge %d->%d present %d times, want %d", e>>32, e&0xffffffff, got[e], w)
		}
	}
	return nil
}
