package stamp_test

import (
	"strings"
	"testing"

	"hle/internal/harness"
	"hle/internal/stamp"
	"hle/internal/tsx"
)

// runApp is a helper running one app under one scheme.
func runApp(t *testing.T, mk func(th *tsx.Thread) stamp.App, scheme, lock string, threads int, seed int64) stamp.Result {
	t.Helper()
	cfg := machineCfg(threads, seed)
	res, err := stamp.Run(cfg, harness.SchemeSpec{Scheme: scheme, Lock: lock}, mk, threads)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenomeReconstruction(t *testing.T) {
	// Different shapes: tiny, wide duplication, single-segment edge.
	for _, shape := range []struct{ segs, segLen, dup int }{
		{16, 4, 2},
		{64, 8, 4},
		{200, 2, 1},
		{2, 1, 3},
	} {
		res := runApp(t, func(th *tsx.Thread) stamp.App {
			return stamp.NewGenome(shape.segs, shape.segLen, shape.dup)
		}, "HLE-SCM", "MCS", 4, 3)
		if res.Ops.Ops == 0 {
			t.Fatalf("genome %+v did no critical sections", shape)
		}
	}
}

func TestGenomeSingleThread(t *testing.T) {
	runApp(t, func(th *tsx.Thread) stamp.App {
		return stamp.NewGenome(64, 8, 4)
	}, "Standard", "TTAS", 1, 1)
}

func TestIntruderDetectsAllAttacks(t *testing.T) {
	// Validate() inside Run checks detected == planted; exercise various
	// shapes including single-fragment flows.
	for _, shape := range []struct{ flows, per int }{
		{10, 1},
		{50, 4},
		{96, 6},
	} {
		runApp(t, func(th *tsx.Thread) stamp.App {
			return stamp.NewIntruder(shape.flows, shape.per)
		}, "Opt-SLR", "TTAS", 6, 5)
	}
}

func TestIntruderQueueContention(t *testing.T) {
	// The shared queue head must actually be contended: under plain HLE
	// with 8 threads there should be a non-trivial abort rate.
	res := runApp(t, func(th *tsx.Thread) stamp.App {
		return stamp.NewIntruder(96, 6)
	}, "HLE", "TTAS", 8, 7)
	if res.TSX.TotalAborts() == 0 {
		t.Error("intruder showed zero aborts; its hot queue should conflict")
	}
}

func TestKMeansContentionByClusterCount(t *testing.T) {
	high := runApp(t, func(th *tsx.Thread) stamp.App {
		return stamp.NewKMeans(512, 4, 3, 4)
	}, "HLE", "TTAS", 8, 9)
	low := runApp(t, func(th *tsx.Thread) stamp.App {
		return stamp.NewKMeans(512, 32, 3, 4)
	}, "HLE", "TTAS", 8, 9)
	if high.Ops.AttemptsPerOp() < low.Ops.AttemptsPerOp() {
		t.Errorf("kmeans high (k=4) attempts %.2f < low (k=32) %.2f",
			high.Ops.AttemptsPerOp(), low.Ops.AttemptsPerOp())
	}
}

func TestKMeansDeterministicInertia(t *testing.T) {
	a := runApp(t, func(th *tsx.Thread) stamp.App {
		return stamp.NewKMeans(256, 8, 3, 5)
	}, "HLE-SCM", "MCS", 4, 11)
	b := runApp(t, func(th *tsx.Thread) stamp.App {
		return stamp.NewKMeans(256, 8, 3, 5)
	}, "HLE-SCM", "MCS", 4, 11)
	if a.Runtime != b.Runtime {
		t.Errorf("kmeans runtimes differ: %d vs %d", a.Runtime, b.Runtime)
	}
}

func TestSSCA2Shapes(t *testing.T) {
	for _, shape := range []struct{ v, d int }{
		{16, 1},
		{256, 4},
		{64, 16}, // dense
	} {
		runApp(t, func(th *tsx.Thread) stamp.App {
			return stamp.NewSSCA2(shape.v, shape.d)
		}, "HLE", "TTAS", 4, 13)
	}
}

func TestVacationConservation(t *testing.T) {
	// The conservation invariant (free+reserved, customer totals) is
	// enforced by Validate inside Run; exercise both contention shapes
	// and several schemes, including the standard baseline.
	for _, scheme := range []string{"Standard", "HLE", "HLE-SCM", "Opt-SLR"} {
		runApp(t, func(th *tsx.Thread) stamp.App {
			return stamp.NewVacation(64, 200, 8, true)
		}, scheme, "MCS", 6, 17)
		runApp(t, func(th *tsx.Thread) stamp.App {
			return stamp.NewVacation(256, 200, 4, false)
		}, scheme, "TTAS", 6, 17)
	}
}

func TestVacationLongTransactions(t *testing.T) {
	// Vacation is STAMP's long-transaction member: its mean critical
	// section must dwarf kmeans'.
	vac := runApp(t, func(th *tsx.Thread) stamp.App {
		return stamp.NewVacation(64, 200, 8, true)
	}, "Standard", "TTAS", 4, 19)
	km := runApp(t, func(th *tsx.Thread) stamp.App {
		return stamp.NewKMeans(512, 4, 3, 4)
	}, "Standard", "TTAS", 4, 19)
	vacPerOp := float64(vac.Runtime) / float64(vac.Ops.Ops)
	kmPerOp := float64(km.Runtime) / float64(km.Ops.Ops)
	if vacPerOp < 2*kmPerOp {
		t.Errorf("vacation per-op time %.0f not clearly longer than kmeans %.0f", vacPerOp, kmPerOp)
	}
}

func TestAppNames(t *testing.T) {
	names := make([]string, 0, 7)
	for _, a := range stamp.Apps() {
		names = append(names, a.Name)
	}
	want := "genome intruder kmeans_high kmeans_low ssca2 vacation_high vacation_low"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("app list %q, want %q", got, want)
	}
}

// TestValidationCatchesRaces: running an app with NO locking at all must
// (deterministically, at this seed) corrupt state and fail validation —
// evidence the validators have teeth.
func TestValidationCatchesRaces(t *testing.T) {
	cfg := machineCfg(8, 23)
	_, err := stamp.Run(cfg, harness.SchemeSpec{Scheme: "NoLock"},
		func(th *tsx.Thread) stamp.App { return stamp.NewVacation(16, 300, 8, true) }, 8)
	if err == nil {
		t.Fatal("vacation under NoLock validated cleanly; validator is too weak")
	}
}

func TestLabyrinthRoutes(t *testing.T) {
	// Validation (path disjointness, adjacency, grid-stamp consistency)
	// runs inside stamp.Run; exercise several schemes and shapes.
	for _, scheme := range []string{"Standard", "HLE", "HLE-SCM", "Opt-SLR"} {
		res := runApp(t, func(th *tsx.Thread) stamp.App {
			return stamp.NewLabyrinth(24, 24, 24)
		}, scheme, "TTAS", 4, 31)
		if res.Ops.Ops != 24 {
			t.Fatalf("%s: %d routing attempts, want 24", scheme, res.Ops.Ops)
		}
	}
}

func TestLabyrinthCapacityAborts(t *testing.T) {
	// On a grid whose BFS read set exceeds the configured L1, speculative
	// routing must hit capacity aborts and still complete via fallback.
	cfg := machineCfg(4, 33)
	cfg.L1ReadLines = 32
	cfg.ReadSetLines = 64
	res, err := stamp.Run(cfg, harness.SchemeSpec{Scheme: "Opt-SLR", Lock: "TTAS"},
		func(th *tsx.Thread) stamp.App { return stamp.NewLabyrinth(40, 40, 24) }, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TSX.Aborted[3] == 0 { // CauseCapacityRead
		t.Error("large-grid labyrinth produced no read-capacity aborts")
	}
	if res.Ops.Ops != 24 {
		t.Fatalf("routing attempts %d, want 24", res.Ops.Ops)
	}
}

func TestYadaRefinesAll(t *testing.T) {
	for _, scheme := range []string{"Standard", "HLE", "HLE-SCM", "Opt-SLR"} {
		res := runApp(t, func(th *tsx.Thread) stamp.App {
			return stamp.NewYada(90)
		}, scheme, "TTAS", 6, 41)
		if res.Ops.Ops == 0 {
			t.Fatalf("%s: yada did no refinements", scheme)
		}
	}
}

func TestYadaSingleThreadDeterministic(t *testing.T) {
	a := runApp(t, func(th *tsx.Thread) stamp.App { return stamp.NewYada(60) }, "Standard", "TTAS", 1, 43)
	b := runApp(t, func(th *tsx.Thread) stamp.App { return stamp.NewYada(60) }, "Standard", "TTAS", 1, 43)
	if a.Runtime != b.Runtime || a.Ops != b.Ops {
		t.Fatal("yada single-thread runs diverge")
	}
}

func TestBayesAcyclic(t *testing.T) {
	for _, scheme := range []string{"Standard", "HLE", "HLE-SCM", "Opt-SLR"} {
		res := runApp(t, func(th *tsx.Thread) stamp.App {
			return stamp.NewBayes(48, 96)
		}, scheme, "MCS", 6, 45)
		if res.Ops.Ops != 96 {
			t.Fatalf("%s: %d edge decisions, want 96", scheme, res.Ops.Ops)
		}
	}
}

func TestBayesLongTransactions(t *testing.T) {
	// Bayes's acyclicity walks must make its critical sections clearly
	// longer than intruder's queue pops.
	bayes := runApp(t, func(th *tsx.Thread) stamp.App { return stamp.NewBayes(48, 96) }, "Standard", "TTAS", 4, 47)
	intr := runApp(t, func(th *tsx.Thread) stamp.App { return stamp.NewIntruder(96, 6) }, "Standard", "TTAS", 4, 47)
	bayesPerOp := float64(bayes.Runtime) / float64(bayes.Ops.Ops)
	intrPerOp := float64(intr.Runtime) / float64(intr.Ops.Ops)
	if bayesPerOp < 2*intrPerOp {
		t.Errorf("bayes per-op %.0f not clearly longer than intruder %.0f", bayesPerOp, intrPerOp)
	}
}

func TestExtendedAppNames(t *testing.T) {
	names := make([]string, 0, 3)
	for _, a := range stamp.ExtendedApps() {
		names = append(names, a.Name)
	}
	if got := strings.Join(names, " "); got != "labyrinth yada bayes" {
		t.Errorf("extended app list %q", got)
	}
}
