package stamp_test

import (
	"testing"

	"hle/internal/harness"
	"hle/internal/stamp"
	"hle/internal/tsx"
)

func machineCfg(n int, seed int64) tsx.Config {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.MemWords = 1 << 18
	return cfg
}

// TestAllAppsAllSchemesValidate is the suite's integration test: every
// application must produce correct output under every scheme.
func TestAllAppsAllSchemesValidate(t *testing.T) {
	specs := []harness.SchemeSpec{
		{Scheme: "Standard", Lock: "TTAS"},
		{Scheme: "Standard", Lock: "MCS"},
		{Scheme: "HLE", Lock: "TTAS"},
		{Scheme: "HLE", Lock: "MCS"},
		{Scheme: "HLE-SCM", Lock: "TTAS"},
		{Scheme: "HLE-SCM", Lock: "MCS"},
		{Scheme: "Pes-SLR", Lock: "TTAS"},
		{Scheme: "Opt-SLR", Lock: "MCS"},
		{Scheme: "Opt-SLR-SCM", Lock: "TTAS"},
	}
	for _, app := range stamp.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, spec := range specs {
				res, err := stamp.Run(machineCfg(4, 11), spec, app.Make, 4)
				if err != nil {
					t.Fatalf("%v: %v", spec, err)
				}
				if res.Runtime == 0 || res.Ops.Ops == 0 {
					t.Fatalf("%v: empty result %+v", spec, res)
				}
			}
		})
	}
}

// TestDeterministicRuntime: same config, same virtual runtime.
func TestDeterministicRuntime(t *testing.T) {
	app := stamp.Apps()[1] // intruder
	spec := harness.SchemeSpec{Scheme: "HLE-SCM", Lock: "MCS"}
	a, err := stamp.Run(machineCfg(4, 5), spec, app.Make, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stamp.Run(machineCfg(4, 5), spec, app.Make, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || a.Ops != b.Ops {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestContentionProfiles: the apps' relative contention levels must match
// the STAMP characterization — intruder and kmeans_high conflict much more
// than ssca2 under plain HLE.
func TestContentionProfiles(t *testing.T) {
	spec := harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"}
	apps := stamp.Apps()
	appByName := map[string]float64{}
	for _, app := range apps {
		res, err := stamp.Run(machineCfg(8, 7), spec, app.Make, 8)
		if err != nil {
			t.Fatal(err)
		}
		appByName[app.Name] = res.Ops.AttemptsPerOp()
	}
	if appByName["intruder"] <= appByName["ssca2"] {
		t.Errorf("intruder attempts/op %.2f should exceed ssca2 %.2f",
			appByName["intruder"], appByName["ssca2"])
	}
	if appByName["kmeans_high"] < appByName["kmeans_low"] {
		t.Errorf("kmeans_high attempts/op %.2f should be >= kmeans_low %.2f",
			appByName["kmeans_high"], appByName["kmeans_low"])
	}
}

// TestMoreThreadsFasterGenome: the fixed workload should finish sooner in
// virtual time with more threads under an elision scheme.
func TestMoreThreadsFasterGenome(t *testing.T) {
	app := stamp.Apps()[0]
	spec := harness.SchemeSpec{Scheme: "HLE-SCM", Lock: "MCS"}
	one, err := stamp.Run(machineCfg(1, 3), spec, app.Make, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := stamp.Run(machineCfg(8, 3), spec, app.Make, 8)
	if err != nil {
		t.Fatal(err)
	}
	if eight.Runtime >= one.Runtime {
		t.Fatalf("8-thread runtime %d not faster than 1-thread %d", eight.Runtime, one.Runtime)
	}
}

// TestBarrier exercises the sense-reversing barrier directly.
func TestBarrier(t *testing.T) {
	m := tsx.NewMachine(machineCfg(6, 1))
	var b *stamp.Barrier
	m.RunOne(func(th *tsx.Thread) { b = stamp.NewBarrier(th, 6) })
	phase := make([]int, 6)
	m.Run(6, func(th *tsx.Thread) {
		for round := 0; round < 5; round++ {
			th.Work(uint64(th.Rand().Intn(500)))
			phase[th.ID] = round
			b.Wait(th)
			// After the barrier, every thread must be in the same
			// round.
			for id, p := range phase {
				if p != round {
					t.Errorf("round %d: thread %d at %d", round, id, p)
				}
			}
			b.Wait(th)
		}
	})
}
