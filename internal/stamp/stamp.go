// Package stamp re-implements the STAMP benchmark applications the paper
// evaluates (§5.3): genome, intruder, kmeans (high and low contention),
// ssca2, and vacation (high and low contention). As in the paper, the
// original transactions are replaced by critical sections that all use the
// same global lock, exercised through an elision scheme.
//
// Each application is simplified relative to the full C original but
// preserves what matters to lock elision: its transaction-length profile,
// read/write-set sizes, and contention level, following the published
// STAMP characterization:
//
//	genome    — short/moderate txs, moderate sets, low contention
//	intruder  — short txs on hot shared queues, high contention
//	kmeans    — very short txs on centroid accumulators; contention set
//	            by the number of clusters (high = few clusters)
//	ssca2     — tiny txs, large data, very low contention
//	vacation  — long txs over tree-based tables; contention set by the
//	            query spread (high = narrow spread, more clashes)
//
// Every application validates its output after the run, so the suite
// doubles as an integration test of the entire stack.
package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// App is one STAMP application instance living in simulated memory.
type App interface {
	// Name is the benchmark name as the paper's Figure 5.4 labels it.
	Name() string
	// Setup builds the input data; called once, single-threaded.
	Setup(t *tsx.Thread)
	// Worker runs thread t's share of the fixed workload. Critical
	// sections must go through scheme.Run.
	Worker(t *tsx.Thread, scheme core.Scheme, threads int)
	// Validate checks the computation's output, returning a descriptive
	// error on corruption. Called once, single-threaded, after all
	// workers finish.
	Validate(t *tsx.Thread) error
}

// Result is the outcome of one STAMP run.
type Result struct {
	// Runtime is the virtual time at which the last worker finished —
	// the quantity Figure 5.4(a,b) normalizes.
	Runtime uint64
	// Ops aggregates critical-section statistics (Figure 5.4(c,d)).
	Ops core.OpStats
	// TSX aggregates transaction statistics.
	TSX tsx.Stats
}

// Run executes one application under one scheme with the given thread
// count and validates the output.
func Run(mcfg tsx.Config, spec harness.SchemeSpec, mk func(t *tsx.Thread) App, threads int) (Result, error) {
	m := tsx.NewMachine(mcfg)
	var app App
	var scheme core.Scheme
	m.RunOne(func(t *tsx.Thread) {
		app = mk(t)
		app.Setup(t)
		scheme = spec.Build(t)
	})
	ths := m.Run(threads, func(t *tsx.Thread) {
		scheme.Setup(t)
		app.Worker(t, scheme, threads)
	})
	var res Result
	for _, t := range ths {
		res.TSX.Add(t.Stats)
		if t.Clock() > res.Runtime {
			res.Runtime = t.Clock()
		}
	}
	res.Ops = scheme.TotalStats()
	var err error
	m.RunOne(func(t *tsx.Thread) {
		if verr := app.Validate(t); verr != nil {
			err = fmt.Errorf("%s: %w", app.Name(), verr)
		}
	})
	return res, err
}

// Barrier is a sense-reversing barrier in simulated memory, used by the
// phased applications (kmeans). It synchronizes workers without the global
// lock, like STAMP's thread_barrier.
type Barrier struct {
	count mem.Addr // arrivals in the current phase
	sense mem.Addr // generation counter
	n     int
}

// NewBarrier allocates a barrier for n threads.
func NewBarrier(t *tsx.Thread, n int) *Barrier {
	return &Barrier{count: t.AllocLines(1), sense: t.AllocLines(1), n: n}
}

// Wait blocks (in virtual time) until all n threads arrive.
func (b *Barrier) Wait(t *tsx.Thread) {
	gen := t.Load(b.sense)
	if t.FetchAdd(b.count, 1) == uint64(b.n-1) {
		// Last arrival: reset and release the others.
		t.Store(b.count, 0)
		t.Store(b.sense, gen+1)
		return
	}
	for t.Load(b.sense) == gen {
		t.Pause()
	}
}

// Apps enumerates constructors for the seven paper workloads in Figure 5.4
// order. Sizes are scaled to simulator throughput while preserving each
// application's tx profile.
func Apps() []struct {
	Name string
	Make func(t *tsx.Thread) App
} {
	return []struct {
		Name string
		Make func(t *tsx.Thread) App
	}{
		{"genome", func(t *tsx.Thread) App { return NewGenome(128, 8, 4) }},
		{"intruder", func(t *tsx.Thread) App { return NewIntruder(96, 6) }},
		{"kmeans_high", func(t *tsx.Thread) App { return NewKMeans(512, 4, 3, 6) }},
		{"kmeans_low", func(t *tsx.Thread) App { return NewKMeans(512, 32, 3, 6) }},
		{"ssca2", func(t *tsx.Thread) App { return NewSSCA2(256, 4) }},
		{"vacation_high", func(t *tsx.Thread) App { return NewVacation(64, 300, 8, true) }},
		{"vacation_low", func(t *tsx.Thread) App { return NewVacation(256, 300, 4, false) }},
	}
}

// ExtendedApps returns additional STAMP workloads beyond the seven the
// paper's Figure 5.4 evaluates.
func ExtendedApps() []struct {
	Name string
	Make func(t *tsx.Thread) App
} {
	return []struct {
		Name string
		Make func(t *tsx.Thread) App
	}{
		// Labyrinth copies the grid inside its transactions, so large
		// grids overflow write-set capacity and always fall back.
		{"labyrinth", func(t *tsx.Thread) App { return NewLabyrinth(40, 40, 16) }},
		// Yada: moderate-length refinement transactions over a shared
		// work stack.
		{"yada", func(t *tsx.Thread) App { return NewYada(90) }},
		// Bayes: long read-mostly acyclicity walks with high contention
		// on the evolving network structure.
		{"bayes", func(t *tsx.Thread) App { return NewBayes(48, 96) }},
	}
}
