package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Yada models STAMP's Delaunay mesh refinement (an extension workload; the
// paper's Figure 5.4 omits it): workers pop "bad" elements from a shared
// work queue and refine them — reading the element's neighbourhood,
// retiring it, and inserting replacement elements, occasionally spoiling a
// neighbour so it needs refinement too. Transactions are moderately long
// with a contended work queue, between vacation and intruder in profile.
//
// Element record layout (elemWords words, one per cache line):
//
//	[0] state: 0 unused, 1 good, 2 bad, 3 retired
//	[1..3] neighbour element ids (0 = none)
type Yada struct {
	nInitial int
	maxElems int

	elems    mem.Addr // element records, elemWords each
	nextElem mem.Addr // element allocation cursor (id+1 of next free slot)
	stack    mem.Addr // work stack of bad element ids
	stackTop mem.Addr // stack height
	retired  mem.Addr // retired-element counter
}

const (
	elemWords = 4

	elemUnused  = 0
	elemGood    = 1
	elemBad     = 2
	elemRetired = 3
)

// NewYada creates a refinement instance with nInitial elements, a fraction
// of which start bad.
func NewYada(nInitial int) *Yada {
	return &Yada{nInitial: nInitial, maxElems: nInitial * 8}
}

// Name implements App.
func (y *Yada) Name() string { return "yada" }

func (y *Yada) elem(id uint64) mem.Addr {
	return y.elems + mem.Addr((id-1)*elemWords)
}

// Setup implements App.
func (y *Yada) Setup(t *tsx.Thread) {
	y.elems = t.Alloc(y.maxElems * elemWords)
	y.nextElem = t.AllocLines(1)
	y.stack = t.Alloc(y.maxElems)
	y.stackTop = t.AllocLines(1)
	y.retired = t.AllocLines(1)

	// A ring of elements, each neighbouring its predecessor and
	// successor; every third element starts bad.
	for i := 0; i < y.nInitial; i++ {
		id := uint64(i + 1)
		e := y.elem(id)
		state := uint64(elemGood)
		if i%3 == 0 {
			state = elemBad
		}
		t.Store(e, state)
		prev := uint64((i+y.nInitial-1)%y.nInitial) + 1
		next := uint64((i+1)%y.nInitial) + 1
		t.Store(e+1, prev)
		t.Store(e+2, next)
		if state == elemBad {
			top := t.Load(y.stackTop)
			t.Store(y.stack+mem.Addr(top), id)
			t.Store(y.stackTop, top+1)
		}
	}
	t.Store(y.nextElem, uint64(y.nInitial+1))
}

// refine is the transactional body: pop a bad element, read its cavity,
// retire it, insert two replacements, and possibly spoil a neighbour.
// Returns false when the queue is empty.
func (y *Yada) refine(t *tsx.Thread) bool {
	top := t.Load(y.stackTop)
	if top == 0 {
		return false
	}
	id := t.Load(y.stack + mem.Addr(top-1))
	t.Store(y.stackTop, top-1)

	e := y.elem(id)
	if t.Load(e) != elemBad {
		// Already handled via a neighbour's cavity; nothing to do.
		return true
	}

	// Read the cavity: the element and its neighbourhood out to two hops.
	var cavity []uint64
	for slot := 1; slot <= 3; slot++ {
		n := t.Load(e + mem.Addr(slot))
		if n == 0 {
			continue
		}
		cavity = append(cavity, n)
		for s2 := 1; s2 <= 3; s2++ {
			if n2 := t.Load(y.elem(n) + mem.Addr(s2)); n2 != 0 && n2 != id {
				cavity = append(cavity, n2)
			}
		}
	}
	t.Work(uint64(20 * (len(cavity) + 1))) // geometry computation

	// Retire the bad element and insert two replacements linked to the
	// old neighbours.
	t.Store(e, elemRetired)
	t.Store(y.retired, t.Load(y.retired)+1)
	next := t.Load(y.nextElem)
	if next+1 >= uint64(y.maxElems) {
		return true // mesh budget exhausted; count the retirement only
	}
	t.Store(y.nextElem, next+2)
	a, b := next, next+1
	t.Store(y.elem(a), elemGood)
	t.Store(y.elem(a)+1, t.Load(e+1))
	t.Store(y.elem(a)+2, b)
	t.Store(y.elem(b), elemGood)
	t.Store(y.elem(b)+1, a)
	t.Store(y.elem(b)+2, t.Load(e+2))

	// Occasionally a cavity neighbour becomes bad (deterministic rule:
	// its id divisible by 7 and still good).
	for _, n := range cavity {
		if n%7 == 0 && t.Load(y.elem(n)) == elemGood {
			t.Store(y.elem(n), elemBad)
			top := t.Load(y.stackTop)
			t.Store(y.stack+mem.Addr(top), n)
			t.Store(y.stackTop, top+1)
			break
		}
	}
	return true
}

// Worker implements App.
func (y *Yada) Worker(t *tsx.Thread, scheme core.Scheme, threads int) {
	for {
		more := true
		scheme.Run(t, func() {
			more = y.refine(t)
		})
		if !more {
			return
		}
	}
}

// Validate implements App: no bad elements remain, the work stack is
// empty, and element accounting balances (every retirement corresponds to
// a formerly-bad element; live elements are all good).
func (y *Yada) Validate(t *tsx.Thread) error {
	if top := t.Load(y.stackTop); top != 0 {
		return fmt.Errorf("work stack still has %d entries", top)
	}
	lastID := t.Load(y.nextElem) - 1
	var good, retired uint64
	for id := uint64(1); id <= lastID; id++ {
		switch t.Load(y.elem(id)) {
		case elemGood:
			good++
		case elemRetired:
			retired++
		case elemBad:
			return fmt.Errorf("element %d still bad with an empty work stack", id)
		default:
			return fmt.Errorf("element %d in unused state but below the allocation cursor", id)
		}
	}
	if got := t.Load(y.retired); got != retired {
		return fmt.Errorf("retired counter %d, but %d retired elements found", got, retired)
	}
	// Each retirement inserted two replacements (unless the budget was
	// hit, which these sizes never do): live = initial - retired + 2*inserted.
	wantLive := uint64(y.nInitial) + retired // -retired + 2*retired
	if good != wantLive {
		return fmt.Errorf("live elements %d, want %d (initial %d + net growth %d)",
			good, wantLive, y.nInitial, retired)
	}
	return nil
}
