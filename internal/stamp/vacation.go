package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/rbtree"
	"hle/internal/tsx"
)

// Vacation models STAMP's travel-reservation system: an in-memory database
// of three resource tables (cars, flights, rooms) and a customer table, all
// red-black trees, queried by client sessions whose transactions touch many
// tree nodes — the suite's long-transaction member. Contention is set by
// the relation count and the queries per session: vacation-high uses few
// relations and more queries per transaction.
type Vacation struct {
	nRelations int
	nSessions  int
	perSession int
	high       bool

	capacity uint64
	tables   [3]*rbtree.Tree // free-count per resource id
	reserved [3]mem.Addr     // per-resource reserved counters
	customer *rbtree.Tree    // customer id -> reservation count
	nextSess mem.Addr        // shared session dispenser
}

// Resource table indices.
const (
	resCar = iota
	resFlight
	resRoom
)

// NewVacation creates an instance with nRelations resources per table and
// a fixed number of client sessions of perSession queries each.
func NewVacation(nRelations, nSessions, perSession int, high bool) *Vacation {
	return &Vacation{
		nRelations: nRelations,
		nSessions:  nSessions,
		perSession: perSession,
		high:       high,
		capacity:   100,
	}
}

// Name implements App.
func (v *Vacation) Name() string {
	if v.high {
		return "vacation_high"
	}
	return "vacation_low"
}

// Setup implements App.
func (v *Vacation) Setup(t *tsx.Thread) {
	for i := range v.tables {
		v.tables[i] = rbtree.New(t)
		v.reserved[i] = t.Alloc(v.nRelations)
		for r := 0; r < v.nRelations; r++ {
			v.tables[i].Insert(t, uint64(r+1), v.capacity)
		}
	}
	v.customer = rbtree.New(t)
	for c := 0; c < v.nRelations; c++ {
		v.customer.Insert(t, uint64(c+1), 0)
	}
	v.nextSess = t.AllocLines(1)
}

// Worker implements App: threads grab sessions from a shared dispenser and
// run each session as one long critical section of perSession queries.
func (v *Vacation) Worker(t *tsx.Thread, scheme core.Scheme, threads int) {
	for {
		sess := t.FetchAdd(v.nextSess, 1)
		if sess >= uint64(v.nSessions) {
			return
		}
		// Draw the session's action and query set outside the
		// critical section (re-execution must be idempotent).
		kind := t.Rand().Intn(100)
		custID := uint64(t.Rand().Intn(v.nRelations) + 1)
		type query struct {
			table int
			id    uint64
		}
		queries := make([]query, v.perSession)
		for i := range queries {
			queries[i] = query{
				table: t.Rand().Intn(3),
				id:    uint64(t.Rand().Intn(v.nRelations) + 1),
			}
		}
		scheme.Run(t, func() {
			switch {
			case kind < 80:
				// Reservation: scan the priced offers, then book
				// the last available one for the customer.
				booked := -1
				for i, q := range queries {
					if free, ok := v.tables[q.table].Lookup(t, q.id); ok && free > 0 {
						booked = i
					}
				}
				if booked >= 0 {
					q := queries[booked]
					free, _ := v.tables[q.table].Lookup(t, q.id)
					v.tables[q.table].Insert(t, q.id, free-1)
					res := v.reserved[q.table] + mem.Addr(q.id-1)
					t.Store(res, t.Load(res)+1)
					cnt, _ := v.customer.Lookup(t, custID)
					v.customer.Insert(t, custID, cnt+1)
				}
			case kind < 90:
				// Cancellation: release one of the customer's
				// reservations (aggregate bookkeeping).
				cnt, _ := v.customer.Lookup(t, custID)
				if cnt == 0 {
					return
				}
				for _, q := range queries {
					res := v.reserved[q.table] + mem.Addr(q.id-1)
					if r := t.Load(res); r > 0 {
						t.Store(res, r-1)
						free, _ := v.tables[q.table].Lookup(t, q.id)
						v.tables[q.table].Insert(t, q.id, free+1)
						v.customer.Insert(t, custID, cnt-1)
						return
					}
				}
			default:
				// Table update: the manager adjusts capacities
				// (add one unit to each queried resource).
				for _, q := range queries {
					free, ok := v.tables[q.table].Lookup(t, q.id)
					if ok {
						v.tables[q.table].Insert(t, q.id, free+1)
					}
				}
			}
		})
	}
}

// Validate implements App: conservation — for every resource, free plus
// reserved equals the capacity history (initial plus manager additions),
// and customer reservation counts equal total reservations.
func (v *Vacation) Validate(t *tsx.Thread) error {
	var totalReserved uint64
	for i := range v.tables {
		for r := 0; r < v.nRelations; r++ {
			free, ok := v.tables[i].Lookup(t, uint64(r+1))
			if !ok {
				return fmt.Errorf("table %d lost resource %d", i, r+1)
			}
			reserved := t.Load(v.reserved[i] + mem.Addr(r))
			totalReserved += reserved
			// free+reserved >= initial capacity: manager updates
			// only add units, reservations conserve the sum.
			if free+reserved < v.capacity {
				return fmt.Errorf("table %d resource %d: free %d + reserved %d < capacity %d",
					i, r+1, free, reserved, v.capacity)
			}
		}
	}
	var totalCustomer uint64
	for c := 0; c < v.nRelations; c++ {
		cnt, ok := v.customer.Lookup(t, uint64(c+1))
		if !ok {
			return fmt.Errorf("lost customer %d", c+1)
		}
		totalCustomer += cnt
	}
	if totalCustomer != totalReserved {
		return fmt.Errorf("customer reservations %d != resource reservations %d (atomicity broken)",
			totalCustomer, totalReserved)
	}
	return nil
}
