package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Labyrinth models STAMP's path-routing benchmark, the suite's
// capacity-abort-heavy member (the paper's Figure 5.4 omits it, so this is
// an extension workload): each transaction breadth-first-searches a shared
// grid for a free path between two endpoints and claims the path's cells.
// The BFS pulls a large fraction of the grid into the read set, so on
// grids near the L1 read-set capacity transactions abort on capacity and
// fall back — exactly the published HTM behaviour for labyrinth.
type Labyrinth struct {
	w, h      int
	nRequests int

	grid mem.Addr // w*h cells: 0 = free, else 1+request index
	reqs mem.Addr // packed (src<<32 | dst)
	next mem.Addr // shared request dispenser

	// scratch is each thread's private grid copy, written inside the
	// routing transaction exactly as the original labyrinth copies the
	// maze before routing — the source of its write-set overflows.
	scratch [64]mem.Addr

	// routed[i] is the path claimed for request i (Go-side record of
	// the completing execution), nil if unroutable.
	routed [][]int
}

// NewLabyrinth creates a w×h grid with nRequests random routing requests.
func NewLabyrinth(w, h, nRequests int) *Labyrinth {
	return &Labyrinth{w: w, h: h, nRequests: nRequests, routed: make([][]int, nRequests)}
}

// Name implements App.
func (l *Labyrinth) Name() string { return "labyrinth" }

// Setup implements App.
func (l *Labyrinth) Setup(t *tsx.Thread) {
	l.grid = t.Alloc(l.w * l.h)
	l.reqs = t.Alloc(l.nRequests)
	l.next = t.AllocLines(1)
	for i := 0; i < l.nRequests; i++ {
		src := t.Rand().Intn(l.w * l.h)
		dst := t.Rand().Intn(l.w * l.h)
		for dst == src {
			dst = t.Rand().Intn(l.w * l.h)
		}
		t.Store(l.reqs+mem.Addr(i), uint64(src)<<32|uint64(dst))
	}
}

// neighbors appends cell c's grid neighbours to buf.
func (l *Labyrinth) neighbors(c int, buf []int) []int {
	x, y := c%l.w, c/l.w
	if x > 0 {
		buf = append(buf, c-1)
	}
	if x < l.w-1 {
		buf = append(buf, c+1)
	}
	if y > 0 {
		buf = append(buf, c-l.w)
	}
	if y < l.h-1 {
		buf = append(buf, c+l.w)
	}
	return buf
}

// route is the transactional body: copy the grid into the thread's private
// scratch (transactional writes — the original labyrinth does the same,
// which is why its write sets overflow HTM capacity on large mazes), BFS
// over the copy, then claim the path on the shared grid.
func (l *Labyrinth) route(t *tsx.Thread, id int, src, dst int) []int {
	scratch := l.scratch[t.ID]
	for c := 0; c < l.w*l.h; c++ {
		t.Store(scratch+mem.Addr(c), t.Load(l.grid+mem.Addr(c)))
	}
	free := func(c int) bool {
		return t.Load(scratch+mem.Addr(c)) == 0
	}
	if !free(src) || !free(dst) {
		return nil
	}
	parent := make(map[int]int, 64)
	parent[src] = src
	queue := []int{src}
	var nbuf [4]int
	found := false
	for len(queue) > 0 && !found {
		c := queue[0]
		queue = queue[1:]
		for _, n := range l.neighbors(c, nbuf[:0]) {
			if _, seen := parent[n]; seen {
				continue
			}
			if !free(n) {
				continue
			}
			parent[n] = c
			if n == dst {
				found = true
				break
			}
			queue = append(queue, n)
		}
	}
	if !found {
		return nil
	}
	var path []int
	for c := dst; ; c = parent[c] {
		path = append(path, c)
		if c == src {
			break
		}
	}
	for _, c := range path {
		t.Store(l.grid+mem.Addr(c), uint64(id+1))
	}
	return path
}

// Worker implements App.
func (l *Labyrinth) Worker(t *tsx.Thread, scheme core.Scheme, threads int) {
	l.scratch[t.ID] = t.Alloc(l.w * l.h)
	for {
		i := t.FetchAdd(l.next, 1)
		if i >= uint64(l.nRequests) {
			return
		}
		req := t.Load(l.reqs + mem.Addr(i))
		src, dst := int(req>>32), int(req&0xffffffff)
		var path []int
		scheme.Run(t, func() {
			path = l.route(t, int(i), src, dst)
		})
		l.routed[i] = path
	}
}

// Validate implements App: every routed path is contiguous, connects its
// endpoints, and owns its grid cells exclusively; every claimed cell
// belongs to exactly the path that claims it.
func (l *Labyrinth) Validate(t *tsx.Thread) error {
	claimed := map[int]int{} // cell -> request index
	for i, path := range l.routed {
		if path == nil {
			continue
		}
		req := t.Load(l.reqs + mem.Addr(i))
		src, dst := int(req>>32), int(req&0xffffffff)
		if path[len(path)-1] != src || path[0] != dst {
			return fmt.Errorf("request %d: path endpoints %d..%d, want %d..%d",
				i, path[len(path)-1], path[0], src, dst)
		}
		for j := 1; j < len(path); j++ {
			a, b := path[j-1], path[j]
			ax, ay := a%l.w, a/l.w
			bx, by := b%l.w, b/l.w
			manhattan := abs(ax-bx) + abs(ay-by)
			if manhattan != 1 {
				return fmt.Errorf("request %d: cells %d and %d not adjacent", i, a, b)
			}
		}
		for _, c := range path {
			if prev, dup := claimed[c]; dup {
				return fmt.Errorf("cell %d claimed by requests %d and %d (paths overlap)", c, prev, i)
			}
			claimed[c] = i
			if got := t.Load(l.grid + mem.Addr(c)); got != uint64(i+1) {
				return fmt.Errorf("cell %d stamped %d, want %d", c, got, i+1)
			}
		}
	}
	// Every stamped grid cell must belong to a recorded path.
	for c := 0; c < l.w*l.h; c++ {
		id := t.Load(l.grid + mem.Addr(c))
		if id == 0 {
			continue
		}
		owner, ok := claimed[c]
		if !ok || uint64(owner+1) != id {
			return fmt.Errorf("grid cell %d stamped %d but not part of that path", c, id)
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
