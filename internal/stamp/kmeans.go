package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// KMeans models STAMP's clustering benchmark: iterations alternate a
// parallel assignment phase (reading points and centroids, no lock) with
// very short critical sections that fold each point into its cluster's
// accumulator. Contention is set by the cluster count: kmeans-high uses few
// clusters (hot accumulators), kmeans-low many.
type KMeans struct {
	nPoints   int
	nClusters int
	dims      int
	iters     int

	points    mem.Addr // nPoints * dims coordinates
	centroids mem.Addr // nClusters * dims current centroids
	sums      mem.Addr // nClusters * dims accumulator sums
	counts    mem.Addr // nClusters membership counts
	barrier   *Barrier

	inertia []uint64 // per-iteration inertia, recorded by thread 0
}

// NewKMeans creates an instance. High contention: small nClusters.
func NewKMeans(nPoints, nClusters, dims, iters int) *KMeans {
	return &KMeans{nPoints: nPoints, nClusters: nClusters, dims: dims, iters: iters}
}

// Name implements App.
func (k *KMeans) Name() string {
	return fmt.Sprintf("kmeans(k=%d)", k.nClusters)
}

// Setup implements App.
func (k *KMeans) Setup(t *tsx.Thread) {
	k.points = t.Alloc(k.nPoints * k.dims)
	k.centroids = t.Alloc(k.nClusters * k.dims)
	k.sums = t.Alloc(k.nClusters * k.dims)
	// One extra word after the counts serves as the global inertia
	// accumulator (sumsScratch).
	k.counts = t.Alloc(k.nClusters + 1)
	k.barrier = NewBarrier(t, 1)

	// Points scatter around nClusters true centers, so the clustering
	// converges quickly and inertia decreases measurably.
	for p := 0; p < k.nPoints; p++ {
		c := p % k.nClusters
		for d := 0; d < k.dims; d++ {
			base := uint64(c*1000 + d*37)
			noise := uint64(t.Rand().Intn(200))
			t.Store(k.points+mem.Addr(p*k.dims+d), base+noise)
		}
	}
	// Initial centroids: the first point of each cluster stripe.
	for c := 0; c < k.nClusters; c++ {
		for d := 0; d < k.dims; d++ {
			v := t.Load(k.points + mem.Addr(c*k.dims+d))
			t.Store(k.centroids+mem.Addr(c*k.dims+d), v)
		}
	}
}

func (k *KMeans) nearest(t *tsx.Thread, p int) (int, uint64) {
	best, bestDist := 0, ^uint64(0)
	for c := 0; c < k.nClusters; c++ {
		var dist uint64
		for d := 0; d < k.dims; d++ {
			pv := t.Load(k.points + mem.Addr(p*k.dims+d))
			cv := t.Load(k.centroids + mem.Addr(c*k.dims+d))
			diff := int64(pv) - int64(cv)
			dist += uint64(diff * diff)
		}
		if dist < bestDist {
			best, bestDist = c, dist
		}
	}
	return best, bestDist
}

// Worker implements App.
func (k *KMeans) Worker(t *tsx.Thread, scheme core.Scheme, threads int) {
	if t.ID == 0 {
		k.barrier.n = threads
	}
	for iter := 0; iter < k.iters; iter++ {
		var localInertia uint64
		// Assignment phase: no lock, reads only.
		for p := t.ID; p < k.nPoints; p += threads {
			c, dist := k.nearest(t, p)
			localInertia += dist
			// Update phase: one short critical section per point,
			// as in STAMP.
			scheme.Run(t, func() {
				for d := 0; d < k.dims; d++ {
					a := k.sums + mem.Addr(c*k.dims+d)
					t.Store(a, t.Load(a)+t.Load(k.points+mem.Addr(p*k.dims+d)))
				}
				cnt := k.counts + mem.Addr(c)
				t.Store(cnt, t.Load(cnt)+1)
			})
		}
		// Fold local inertia through a short critical section too
		// (STAMP accumulates global deltas transactionally).
		scheme.Run(t, func() {
			t.Store(k.sumsScratch(), t.Load(k.sumsScratch())+localInertia)
		})

		k.barrier.Wait(t)
		if t.ID == 0 {
			k.inertia = append(k.inertia, t.Load(k.sumsScratch()))
			t.Store(k.sumsScratch(), 0)
			k.recenter(t)
		}
		k.barrier.Wait(t)
	}
}

// sumsScratch is the global inertia accumulator; it lives on the counts
// line's successor (allocated once in Setup via an extra word trick).
func (k *KMeans) sumsScratch() mem.Addr { return k.counts + mem.Addr(k.nClusters) }

// recenter recomputes centroids from the accumulators and clears them.
func (k *KMeans) recenter(t *tsx.Thread) {
	for c := 0; c < k.nClusters; c++ {
		cnt := t.Load(k.counts + mem.Addr(c))
		if cnt > 0 {
			for d := 0; d < k.dims; d++ {
				sum := t.Load(k.sums + mem.Addr(c*k.dims+d))
				t.Store(k.centroids+mem.Addr(c*k.dims+d), sum/cnt)
			}
		}
		for d := 0; d < k.dims; d++ {
			t.Store(k.sums+mem.Addr(c*k.dims+d), 0)
		}
		t.Store(k.counts+mem.Addr(c), 0)
	}
}

// Validate implements App: inertia must be recorded for every iteration and
// must not increase (k-means monotonicity), and a final serial pass must
// account for every point.
func (k *KMeans) Validate(t *tsx.Thread) error {
	if len(k.inertia) != k.iters {
		return fmt.Errorf("recorded %d inertia values, want %d", len(k.inertia), k.iters)
	}
	for i := 1; i < len(k.inertia); i++ {
		// Integer centroid rounding can nudge inertia by a hair; lost
		// accumulator updates inflate it by far more than 1%.
		if k.inertia[i] > k.inertia[i-1]+k.inertia[i-1]/100 {
			return fmt.Errorf("inertia increased at iteration %d: %d -> %d (lost centroid updates)",
				i, k.inertia[i-1], k.inertia[i])
		}
	}
	total := 0
	counts := make([]int, k.nClusters)
	for p := 0; p < k.nPoints; p++ {
		c, _ := k.nearest(t, p)
		counts[c]++
		total++
	}
	if total != k.nPoints {
		return fmt.Errorf("accounted %d points, want %d", total, k.nPoints)
	}
	return nil
}
