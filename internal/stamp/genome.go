package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/hashtable"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Genome models STAMP's gene-sequencing benchmark: phase 1 deduplicates a
// stream of segments into a shared hash table; phase 2 links each segment
// to its overlap successor, reconstructing the original sequence. Its
// critical sections are short-to-moderate hash and link operations with low
// conflict rates.
type Genome struct {
	nSegs  int // unique segments in the gene
	segLen int // models the string-compare cost per operation
	dup    int // duplication factor of the input stream

	gene    mem.Addr // gene[p] = segment id at position p
	input   mem.Addr // shuffled stream of packed (pos<<32 | id), nSegs*dup long
	next    mem.Addr // next[id-1] = successor segment id (the output)
	table   *hashtable.Table
	barrier *Barrier
}

// NewGenome creates a genome instance with nSegs unique segments of
// simulated length segLen, each duplicated dup times in the input stream.
func NewGenome(nSegs, segLen, dup int) *Genome {
	return &Genome{nSegs: nSegs, segLen: segLen, dup: dup}
}

// Name implements App.
func (g *Genome) Name() string { return "genome" }

// Setup implements App.
func (g *Genome) Setup(t *tsx.Thread) {
	g.gene = t.Alloc(g.nSegs)
	g.next = t.Alloc(g.nSegs)
	total := g.nSegs * g.dup
	g.input = t.Alloc(total)
	g.table = hashtable.New(t, g.nSegs*2)
	g.barrier = NewBarrier(t, 64) // resized per run in Worker via n

	// The gene is a random permutation of segment ids 1..nSegs.
	perm := t.Rand().Perm(g.nSegs)
	for p, idx := range perm {
		t.Store(g.gene+mem.Addr(p), uint64(idx+1))
	}
	// The input stream holds every (position, id) pair dup times,
	// shuffled.
	entries := make([]uint64, 0, total)
	for d := 0; d < g.dup; d++ {
		for p := 0; p < g.nSegs; p++ {
			entries = append(entries, uint64(p)<<32|uint64(perm[p]+1))
		}
	}
	t.Rand().Shuffle(len(entries), func(i, j int) {
		entries[i], entries[j] = entries[j], entries[i]
	})
	for i, e := range entries {
		t.Store(g.input+mem.Addr(i), e)
	}
}

// Worker implements App.
func (g *Genome) Worker(t *tsx.Thread, scheme core.Scheme, threads int) {
	if t.ID == 0 {
		g.barrier.n = threads
	}
	total := g.nSegs * g.dup

	// Phase 1: deduplicate the input stream into the segment table.
	for i := t.ID; i < total; i += threads {
		entry := t.Load(g.input + mem.Addr(i))
		pos, id := entry>>32, entry&0xffffffff
		t.Work(uint64(g.segLen)) // hash the segment contents
		scheme.Run(t, func() {
			g.table.Insert(t, id, pos+1)
		})
	}

	g.barrier.Wait(t)

	// Phase 2: link each segment to its successor by table lookup.
	for p := t.ID; p < g.nSegs-1; p += threads {
		id := t.Load(g.gene + mem.Addr(p))
		succ := t.Load(g.gene + mem.Addr(p+1))
		t.Work(uint64(g.segLen)) // compare the overlap
		scheme.Run(t, func() {
			// Confirm the successor was registered in phase 1,
			// then link; the table lookup is part of the critical
			// section as in STAMP's matching transactions.
			if _, ok := g.table.Lookup(t, succ); ok {
				t.Store(g.next+mem.Addr(id-1), succ)
			}
		})
	}
}

// Validate implements App: walking the links from the first segment must
// reproduce the gene.
func (g *Genome) Validate(t *tsx.Thread) error {
	if got := g.table.Size(t); got != g.nSegs {
		return fmt.Errorf("table has %d segments, want %d", got, g.nSegs)
	}
	id := t.Load(g.gene)
	for p := 0; p < g.nSegs-1; p++ {
		want := t.Load(g.gene + mem.Addr(p+1))
		got := t.Load(g.next + mem.Addr(id-1))
		if got != want {
			return fmt.Errorf("position %d: next[%d] = %d, want %d", p, id, got, want)
		}
		id = got
	}
	return nil
}
