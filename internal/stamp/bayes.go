package stamp

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Bayes models STAMP's Bayesian-network structure learner (an extension
// workload; the paper's Figure 5.4 omits it): workers draw candidate edges
// from a shared task list and transactionally insert those that keep the
// network acyclic and improve a (deterministic pseudo-)score. The
// acyclicity check walks the current graph inside the transaction, so
// transactions are long, read-mostly, and highly sensitive to concurrent
// structure changes — STAMP characterizes bayes as long transactions with
// high contention.
//
// Adjacency is a bitmap: adj[u*stride + v/64] bit (v%64).
type Bayes struct {
	nVars  int
	nTasks int
	stride int // words per adjacency row

	adj      mem.Addr // nVars * stride bitmap words
	tasks    mem.Addr // packed (u<<32 | v)
	nextTask mem.Addr // shared task dispenser
	accepted mem.Addr // accepted-edge counter

	// acceptedEdges records the completing execution's decision per
	// task (Go-side, token-safe).
	acceptedEdges []bool
}

// NewBayes creates a structure-learning instance over nVars variables with
// nTasks candidate edges.
func NewBayes(nVars, nTasks int) *Bayes {
	return &Bayes{
		nVars:         nVars,
		nTasks:        nTasks,
		stride:        (nVars + 63) / 64,
		acceptedEdges: make([]bool, nTasks),
	}
}

// Name implements App.
func (b *Bayes) Name() string { return "bayes" }

// Setup implements App.
func (b *Bayes) Setup(t *tsx.Thread) {
	b.adj = t.Alloc(b.nVars * b.stride)
	b.tasks = t.Alloc(b.nTasks)
	b.nextTask = t.AllocLines(1)
	b.accepted = t.AllocLines(1)
	for i := 0; i < b.nTasks; i++ {
		u := t.Rand().Intn(b.nVars)
		v := t.Rand().Intn(b.nVars)
		for v == u {
			v = t.Rand().Intn(b.nVars)
		}
		t.Store(b.tasks+mem.Addr(i), uint64(u)<<32|uint64(v))
	}
}

func (b *Bayes) hasEdge(t *tsx.Thread, u, v int) bool {
	w := t.Load(b.adj + mem.Addr(u*b.stride+v/64))
	return w>>(uint(v)%64)&1 == 1
}

func (b *Bayes) setEdge(t *tsx.Thread, u, v int) {
	a := b.adj + mem.Addr(u*b.stride+v/64)
	t.Store(a, t.Load(a)|1<<(uint(v)%64))
}

// reaches reports whether dst is reachable from src in the current graph
// (the transactional acyclicity walk).
func (b *Bayes) reaches(t *tsx.Thread, src, dst int) bool {
	seen := make([]bool, b.nVars)
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == dst {
			return true
		}
		for w := 0; w < b.stride; w++ {
			bits := t.Load(b.adj + mem.Addr(u*b.stride+w))
			for bits != 0 {
				v := w*64 + trailingZeros(bits)
				bits &= bits - 1
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return false
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Worker implements App.
func (b *Bayes) Worker(t *tsx.Thread, scheme core.Scheme, threads int) {
	for {
		i := t.FetchAdd(b.nextTask, 1)
		if i >= uint64(b.nTasks) {
			return
		}
		task := t.Load(b.tasks + mem.Addr(i))
		u, v := int(task>>32), int(task&0xffffffff)
		took := false
		scheme.Run(t, func() {
			took = false
			if b.hasEdge(t, u, v) {
				return
			}
			// Deterministic pseudo-score: accept unless it would
			// create a cycle. The reachability walk is the long,
			// read-heavy part of the transaction.
			if b.reaches(t, v, u) {
				return
			}
			t.Work(uint64(10 * b.nVars)) // score computation
			b.setEdge(t, u, v)
			t.Store(b.accepted, t.Load(b.accepted)+1)
			took = true
		})
		b.acceptedEdges[i] = took
	}
}

// Validate implements App: the final graph is acyclic, contains exactly
// the accepted edges, and the accepted counter matches.
func (b *Bayes) Validate(t *tsx.Thread) error {
	// Count edges and check each accepted task's edge is present.
	var edges uint64
	for u := 0; u < b.nVars; u++ {
		for w := 0; w < b.stride; w++ {
			bits := t.Load(b.adj + mem.Addr(u*b.stride+w))
			for bits != 0 {
				bits &= bits - 1
				edges++
			}
		}
	}
	var want uint64
	for i, took := range b.acceptedEdges {
		if !took {
			continue
		}
		want++
		task := t.Load(b.tasks + mem.Addr(i))
		u, v := int(task>>32), int(task&0xffffffff)
		if !b.hasEdge(t, u, v) {
			return fmt.Errorf("accepted edge %d->%d missing from the graph", u, v)
		}
	}
	if edges != want {
		return fmt.Errorf("graph has %d edges, %d were accepted", edges, want)
	}
	if got := t.Load(b.accepted); got != want {
		return fmt.Errorf("accepted counter %d, want %d", got, want)
	}
	// Acyclicity: Kahn-style peeling over a Go-side copy.
	indeg := make([]int, b.nVars)
	succ := make([][]int, b.nVars)
	for u := 0; u < b.nVars; u++ {
		for w := 0; w < b.stride; w++ {
			bits := t.Load(b.adj + mem.Addr(u*b.stride+w))
			for bits != 0 {
				v := w*64 + trailingZeros(bits)
				bits &= bits - 1
				succ[u] = append(succ[u], v)
				indeg[v]++
			}
		}
	}
	var queue []int
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	removed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, v := range succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if removed != b.nVars {
		return fmt.Errorf("graph contains a cycle (%d of %d vars peeled)", removed, b.nVars)
	}
	return nil
}
