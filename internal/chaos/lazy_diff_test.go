package chaos

import (
	"fmt"
	"reflect"
	"testing"

	"hle/internal/harness"
)

// lazyPairs are the eager/fixed-lazy scheme pairs the differential soak
// compares. The lazy member of each pair is the FIXED pipeline (commit-time
// lock check before the drain, commit-window abort) — the naive variants are
// unsafe by construction and live only inside internal/explore.
var lazyPairs = [][2]string{
	{"HLE", "HLE-lazy"},
	{"RTM-LE", "RTM-LE-lazy"},
}

// fingerprint renders a soak result to a stable string. Two runs with the
// same fingerprint executed the same logical outcome: op count, fault
// schedule, delivered-fault counters, watchdog verdict, and serializability
// verdict all match.
func fingerprint(r SoakResult) string {
	return fmt.Sprintf("%+v", r)
}

// TestLazyDifferentialSoak is the eager-vs-fixed-lazy differential: for each
// scheme pair, fork the SAME filled tree image (lazy subscription needs no
// machine flags, so the images are shareable) and soak both subscription
// modes under the identical fault schedule. Both must reach the identical
// verdict — survived, serializable, every operation completed — proving the
// fixed lazy pipeline is observationally as safe as eager subscription under
// chaos, not just under the model checker's 2-thread exhaustion. Each mode's
// run must also be individually deterministic: replaying the spec reproduces
// the result (including injection counters) byte for byte, so a future
// regression in the lazy commit pipeline shows up as a fingerprint diff, not
// a flake.
func TestLazyDifferentialSoak(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	var cache ImageCache
	for _, pair := range lazyPairs {
		for _, lk := range soakLocks {
			for s := 1; s <= seeds; s++ {
				eagerSpec := SoakSpec{
					Scheme: harness.SchemeSpec{Scheme: pair[0], Lock: lk},
					Seed:   int64(s),
				}
				lazySpec := SoakSpec{
					Scheme: harness.SchemeSpec{Scheme: pair[1], Lock: lk},
					Seed:   int64(s),
				}
				img := cache.For(eagerSpec)
				eager := RunSoakFrom(img, eagerSpec)
				lazy := RunSoakFrom(img, lazySpec)

				name := fmt.Sprintf("%s vs %s / %s seed %d", pair[0], pair[1], lk, s)
				for _, m := range []struct {
					mode string
					res  SoakResult
				}{{pair[0], eager}, {pair[1], lazy}} {
					if m.res.Failure != nil {
						t.Errorf("%s: %s watchdog trip: %v\n%s",
							name, m.mode, m.res.Failure, m.res.Failure.Dump())
					}
					if m.res.CheckErr != nil {
						t.Errorf("%s: %s not serializable: %v", name, m.mode, m.res.CheckErr)
					}
				}
				if eager.Ops != lazy.Ops {
					t.Errorf("%s: verdicts differ: eager completed %d ops, lazy %d",
						name, eager.Ops, lazy.Ops)
				}
				// Same seed, same drawn schedule: the modes faced identical
				// adversity, so the comparison is a true differential.
				if !reflect.DeepEqual(eager.Schedule, lazy.Schedule) {
					t.Errorf("%s: fault schedules diverged:\neager: %v\nlazy:  %v",
						name, eager.Schedule, lazy.Schedule)
				}

				// Fingerprints: each mode replays to an identical result.
				if fp, fp2 := fingerprint(eager), fingerprint(RunSoakFrom(img, eagerSpec)); fp != fp2 {
					t.Errorf("%s: eager fingerprint unstable:\n%s\n%s", name, fp, fp2)
				}
				if fp, fp2 := fingerprint(lazy), fingerprint(RunSoakFrom(img, lazySpec)); fp != fp2 {
					t.Errorf("%s: lazy fingerprint unstable:\n%s\n%s", name, fp, fp2)
				}
			}
		}
	}
}
