package chaos

import (
	"reflect"
	"strings"
	"testing"

	"hle/internal/harness"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// TestEngineReset covers the engine's re-run protocol: one-shot faults
// that fired stay dead until Reset, Reset rearms them and zeroes the
// counters, and an identical machine then reproduces the injection count
// for count. Schedule must return a defensive copy.
func TestEngineReset(t *testing.T) {
	schedule := []Fault{
		{Kind: Preempt, At: 500, Proc: -1, Line: -1, Arg: 3000},
		{Kind: Preempt, At: 2000, Proc: -1, Line: -1, Arg: 3000},
	}
	e := New(schedule...)

	run := func() Counters {
		cfg := tsx.DefaultConfig(2)
		cfg.Seed = 5
		cfg.SpuriousPerAccess = 0
		m := tsx.NewMachine(cfg)
		var cells []mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			cells = []mem.Addr{th.AllocLines(1), th.AllocLines(1)}
		})
		m.SetInjector(e)
		m.Run(2, func(th *tsx.Thread) {
			for i := 0; i < 60; i++ {
				th.RTM(func() {
					v := th.Load(cells[th.ID])
					th.Work(20)
					th.Store(cells[th.ID], v+1)
				})
			}
		})
		return e.Counters()
	}

	first := run()
	if first.Stalls != len(schedule) {
		t.Fatalf("first run delivered %d stalls, want %d", first.Stalls, len(schedule))
	}
	if first.StallCyc == 0 {
		t.Fatal("stalls delivered but no stalled cycles recorded")
	}

	// Without Reset the one-shots are spent: a second run adds nothing.
	if again := run(); !reflect.DeepEqual(again, first) {
		t.Fatalf("spent one-shot faults fired again without Reset: %+v -> %+v", first, again)
	}

	e.Reset()
	if z := e.Counters(); !reflect.DeepEqual(z, Counters{}) {
		t.Fatalf("Reset left counters %+v", z)
	}
	if second := run(); !reflect.DeepEqual(second, first) {
		t.Fatalf("rearmed schedule did not reproduce: %+v vs %+v", second, first)
	}

	got := e.Schedule()
	if !reflect.DeepEqual(got, schedule) {
		t.Fatalf("Schedule() = %+v, want %+v", got, schedule)
	}
	got[0].At = 999999
	if e.Schedule()[0].At != 500 {
		t.Fatal("Schedule() exposed the engine's internal fault list")
	}
	if s := e.String(); !strings.Contains(s, "preempt@500") {
		t.Fatalf("String() = %q, want it to name the schedule", s)
	}
}

// TestSoakFaultFree covers the no-faults soak path end to end: an empty
// (non-nil) schedule suppresses random generation, nothing is injected,
// and the result reports a clean, serializable run through Ok.
func TestSoakFaultFree(t *testing.T) {
	r := RunSoak(SoakSpec{
		Scheme:   harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
		Seed:     3,
		Threads:  4,
		Schedule: []Fault{},
	})
	if !r.Ok() {
		t.Fatalf("fault-free soak failed: failure=%v checkErr=%v", r.Failure, r.CheckErr)
	}
	if !reflect.DeepEqual(r.Injected, Counters{}) {
		t.Fatalf("fault-free soak injected %+v", r.Injected)
	}
	if len(r.Schedule) != 0 {
		t.Fatalf("fault-free soak reports schedule %+v", r.Schedule)
	}
	if r.Ops != 4*60 {
		t.Fatalf("completed %d ops, want %d", r.Ops, 4*60)
	}
}
