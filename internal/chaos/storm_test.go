package chaos

import (
	"reflect"
	"testing"

	"hle/internal/adapt"
	"hle/internal/harness"
)

// Storm-recovery soak geometry: the storm covers [40k, 140k) — 20
// controller windows at the default 5k cycles — and the count-based run
// is sized to keep threads issuing operations well past the worst-case
// re-promotion bound. The workload is deliberately lighter than the
// default soak's: storm-recovery is only observable against a baseline
// where speculation is healthy, so natural conflicts must stay below the
// promotion band before and after the storm. The default 64-key tree at
// 8 threads is avalanche-grade with no storm at all, and even a big tree
// avalanches on lock-line conflicts past a few threads (TTAS elision is
// ~5%-abort healthy at 2 threads, ~43% at 4).
const (
	stormStart   = 40_000
	stormEnd     = 140_000
	stormOps     = 2_600
	stormKeys    = 2048
	stormThreads = 2
)

// stormRest is the level the controller is expected to settle at when the
// workload is healthy — the best static choice per lock. Elision over
// TTAS is healthy at storm-soak scale; over MCS it is structurally broken
// (any acquisition rewrites the queue word every speculator subscribed
// to, the avalanche of Chapter 3), so the adaptive resting point is SCM.
func stormRest(lock string) adapt.Level {
	if lock == "MCS" {
		return adapt.SCM
	}
	return adapt.Elide
}

// stormSoakSpec is the adaptive soak spec for one scenario point.
func stormSoakSpec(sc RecoveryScenario, lock string, seed int64) SoakSpec {
	return SoakSpec{
		Scheme:       harness.SchemeSpec{Scheme: "Adaptive", Lock: lock},
		Seed:         seed,
		Threads:      stormThreads,
		OpsPerThread: stormOps,
		Keys:         stormKeys,
		Schedule:     sc.Faults,
		Adapt:        &adapt.Config{},
	}
}

// checkStormRecovery asserts the tentpole's four robustness properties on
// one adaptive storm-recovery soak:
//
//	(a) the controller degrades to the Serial floor within the
//	    config-derived window bound of the storm starting — and not
//	    before it, since the pre-storm workload is healthy;
//	(b) it re-promotes after the storm passes, within the
//	    probation-aware bound, back to the lock's healthy resting level
//	    (Elide for TTAS; SCM for MCS, whose elision is structurally
//	    avalanche-bound), and ends the run off the Serial floor;
//	(c) it never trips a liveness watchdog and never exceeds the flap
//	    bound on total transitions;
//	(d) the run stays serializable.
func checkStormRecovery(t *testing.T, name string, sc RecoveryScenario, lock string, r SoakResult) {
	t.Helper()
	cfg := (adapt.Config{}).WithDefaults()
	wcyc := cfg.WindowCycles
	rest := stormRest(lock)

	// (c) liveness and (d) serializability first: a tripped or
	// non-serializable run makes the transition log meaningless.
	if r.Failure != nil {
		t.Errorf("%s: watchdog trip: %v\n%s", name, r.Failure, r.Failure.Dump())
		return
	}
	if r.CheckErr != nil {
		t.Errorf("%s: not serializable: %v", name, r.CheckErr)
	}

	// (a) bounded demotion to the serializing floor during the storm.
	demoteBy := sc.StormStart + uint64(cfg.DemoteBoundWindows())*wcyc
	var toSerial *adapt.Transition
	for i := range r.Transitions {
		if r.Transitions[i].To == adapt.Serial {
			toSerial = &r.Transitions[i]
			break
		}
	}
	if toSerial == nil {
		t.Errorf("%s: controller never reached the Serial floor; transitions: %v",
			name, r.Transitions)
	} else if toSerial.Clock < sc.StormStart || toSerial.Clock > demoteBy {
		t.Errorf("%s: Serial demotion at clock %d, want within storm [%d, %d]; transitions: %v",
			name, toSerial.Clock, sc.StormStart, demoteBy, r.Transitions)
	}

	// (b) bounded re-promotion after the storm, back to the lock's
	// resting level. Up to three demotions can precede recovery (a
	// natural rung for locks resting at SCM plus the storm's), so the
	// bound uses that probation level.
	promoteBy := sc.StormEnd + uint64(cfg.PromoteBoundWindows(3))*wcyc
	var recovered *adapt.Transition
	for i := range r.Transitions {
		tr := &r.Transitions[i]
		if tr.To == rest && tr.Clock >= sc.StormEnd {
			recovered = tr
			break
		}
	}
	if recovered == nil {
		t.Errorf("%s: controller never re-promoted to %s after the storm (final level %s); transitions: %v",
			name, rest, r.FinalLevel, r.Transitions)
	} else if recovered.Clock > promoteBy {
		t.Errorf("%s: re-promotion at clock %d, want by %d; transitions: %v",
			name, recovered.Clock, promoteBy, r.Transitions)
	}
	// The run must end off the Serial floor. It may end above the resting
	// level: a controller at rest keeps probing the next level up at
	// probation-spaced intervals (that is the designed optimism), so an
	// MCS run can legitimately finish mid-probe at Elide.
	if r.FinalLevel > rest {
		t.Errorf("%s: run ended at level %s, want %s or better; transitions: %v",
			name, r.FinalLevel, rest, r.Transitions)
	}

	// (c) flap bound: a full storm-recovery cycle needs at most two
	// demotions and two promotions; locks resting at SCM add a natural
	// pre-storm demotion and probation-spaced probes of the level above
	// in the post-storm tail. More transitions than probation-backoff
	// probing can explain is flapping.
	const flapBound = 12
	if len(r.Transitions) > flapBound {
		t.Errorf("%s: %d transitions exceeds flap bound %d: %v",
			name, len(r.Transitions), flapBound, r.Transitions)
	}

	// Every drained swap must stamp coherent clocks.
	for _, tr := range r.Transitions {
		if tr.SwapClock != 0 && tr.DrainClock < tr.SwapClock {
			t.Errorf("%s: transition %v drained before it swapped", name, tr)
		}
	}
}

// TestStormRecoveryMatrix is the tentpole soak matrix: every
// storm-recovery scenario × {TTAS, MCS} × seeds, run host-parallel, each
// point asserting bounded demotion, bounded re-promotion, no flapping, no
// watchdog trips, and serializability.
func TestStormRecoveryMatrix(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	scenarios := StormRecoveryScenarios(stormStart, stormEnd)
	type point struct {
		sc   RecoveryScenario
		lock string
		seed int64
	}
	var pts []point
	for _, sc := range scenarios {
		for _, lk := range soakLocks {
			for s := 1; s <= seeds; s++ {
				pts = append(pts, point{sc, lk, int64(s)})
			}
		}
	}
	var cache ImageCache
	results := make([]SoakResult, len(pts))
	harness.ParallelFor(0, len(pts), func(i int) {
		spec := stormSoakSpec(pts[i].sc, pts[i].lock, pts[i].seed)
		results[i] = RunSoakFrom(cache.For(spec), spec)
	})
	for i, r := range results {
		p := pts[i]
		name := p.sc.Name + "/" + p.lock + "/seed" + string(rune('0'+p.seed))
		checkStormRecovery(t, name, p.sc, p.lock, r)
	}
}

// TestStormRecoveryDeterministic: storm-recovery soaks are byte-identical
// between host-parallel and serial execution — one point per scenario is
// re-run alone and compared field by field (including the transition log)
// against its matrix-run counterpart.
func TestStormRecoveryDeterministic(t *testing.T) {
	scenarios := StormRecoveryScenarios(stormStart, stormEnd)
	specs := make([]SoakSpec, len(scenarios))
	for i, sc := range scenarios {
		specs[i] = stormSoakSpec(sc, soakLocks[i%len(soakLocks)], 1)
	}
	var cache ImageCache
	par := make([]SoakResult, len(specs))
	harness.ParallelFor(0, len(specs), func(i int) {
		par[i] = RunSoakFrom(cache.For(specs[i]), specs[i])
	})
	for i, spec := range specs {
		seq := RunSoak(spec)
		if !reflect.DeepEqual(par[i], seq) {
			t.Errorf("%s: parallel result differs from serial rerun:\npar: %+v\nseq: %+v",
				scenarios[i].Name, par[i], seq)
		}
	}
}
