// Package chaos is a deterministic, seed-driven fault-injection engine for
// the elision stack. It schedules faults at virtual-cycle deadlines and
// fires them through the injection hooks of internal/tsx and internal/sim:
// spurious-abort storms (optionally targeted at one cache line), transient
// write-set capacity squeezes, lock-holder preemption, scheduler-grant
// skew, and holder stalls. Every decision is a pure function of the
// simulated state presented to the hooks plus the engine's own one-shot
// bookkeeping, so a (seed, schedule) pair replays byte-identically —
// adversarial interleavings found once can be reproduced forever.
//
// The paper's robustness claims (Chapter 4: SCM is livelock- and
// starvation-free under adversarial conflict patterns) are exactly the
// properties these faults attack; the soak harness (RunSoak) pairs the
// engine with the liveness watchdogs of internal/harness and the
// serializability checker of internal/check.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
)

// Kind enumerates fault types.
type Kind uint8

const (
	// SpuriousStorm aborts every matching transactional access in the
	// fault window — a burst of the spurious aborts §2.2 observes, aimed
	// at a thread and/or line. Arg is unused.
	SpuriousStorm Kind = iota
	// CapacitySqueeze clamps the effective write-set capacity to Arg
	// lines inside the window, modeling a sibling hyperthread evicting
	// L1 ways mid-transaction.
	CapacitySqueeze
	// Preempt stalls the target thread for Arg cycles at its first
	// transactional access at or after At — the OS preempting a thread
	// mid-critical-section. One-shot.
	Preempt
	// GrantSkew multiplies scheduler grant slices by Arg percent inside
	// the window, starving (Arg < 100) or favoring (Arg > 100) the
	// target thread's share of fine-grained interleavings.
	GrantSkew
	// HolderStall stalls the target thread for Arg cycles at its first
	// non-transactional write at or after At. Non-transactional writes
	// during measurement are lock-word operations (real acquisitions and
	// releases), so this models a main- or aux-lock holder losing its
	// processor while every speculative thread subscribes to that lock.
	// One-shot.
	HolderStall
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SpuriousStorm:
		return "spurious-storm"
	case CapacitySqueeze:
		return "capacity-squeeze"
	case Preempt:
		return "preempt"
	case GrantSkew:
		return "grant-skew"
	case HolderStall:
		return "holder-stall"
	}
	return "unknown"
}

// Fault is one scheduled fault.
type Fault struct {
	Kind Kind
	// At is the virtual cycle at which the fault arms.
	At uint64
	// Until ends the window for windowed kinds (SpuriousStorm,
	// CapacitySqueeze, GrantSkew); 0 means the window never closes.
	// One-shot kinds (Preempt, HolderStall) ignore it.
	Until uint64
	// Proc targets one thread; -1 matches any.
	Proc int
	// Line targets one cache line (SpuriousStorm only); -1 matches any.
	Line int
	// Arg is the kind-specific magnitude (cycles, lines, or percent).
	Arg uint64
}

func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d", f.Kind, f.At)
	if f.Until != 0 {
		fmt.Fprintf(&b, "-%d", f.Until)
	}
	if f.Proc >= 0 {
		fmt.Fprintf(&b, " proc=%d", f.Proc)
	}
	if f.Line >= 0 {
		fmt.Fprintf(&b, " line=%d", f.Line)
	}
	if f.Arg != 0 {
		fmt.Fprintf(&b, " arg=%d", f.Arg)
	}
	return b.String()
}

// inWindow reports whether clock falls in the fault's window.
func (f *Fault) inWindow(clock uint64) bool {
	return clock >= f.At && (f.Until == 0 || clock < f.Until)
}

// matchesProc reports whether the fault targets thread id.
func (f *Fault) matchesProc(id int) bool { return f.Proc < 0 || f.Proc == id }

// Counters tallies what the engine actually injected during a run.
type Counters struct {
	Aborts   int    // injected spurious aborts
	Stalls   int    // injected stalls (preempt + holder)
	StallCyc uint64 // total stalled cycles
	Squeezes int    // accesses that saw a squeezed write cap
	Skews    int    // grants that saw a skewed slice
}

// Engine executes a fault schedule. It implements tsx.Injector; install it
// with tsx.Machine.SetInjector. An Engine belongs to one machine: its
// one-shot state advances with that machine's token-serialized execution.
type Engine struct {
	faults []Fault
	fired  []bool // one-shot kinds: fault already delivered
	n      Counters
}

// New builds an engine for the given schedule. An empty schedule is legal
// and injects nothing (useful for zero-cost-when-armed checks).
func New(faults ...Fault) *Engine {
	return &Engine{faults: faults, fired: make([]bool, len(faults))}
}

// Reset clears one-shot state and counters so the engine can drive another
// run of the same schedule.
func (e *Engine) Reset() {
	clear(e.fired)
	e.n = Counters{}
}

// Counters returns what was injected since the last Reset.
func (e *Engine) Counters() Counters { return e.n }

// Schedule returns the engine's fault list.
func (e *Engine) Schedule() []Fault { return append([]Fault(nil), e.faults...) }

// String renders the schedule compactly (for watchdog dump contexts).
func (e *Engine) String() string {
	if len(e.faults) == 0 {
		return "no faults"
	}
	parts := make([]string, len(e.faults))
	for i, f := range e.faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}

// Access implements tsx.Injector.
func (e *Engine) Access(id int, clock uint64, line int, write, inTx bool) (stall uint64, abort bool) {
	for i := range e.faults {
		f := &e.faults[i]
		switch f.Kind {
		case SpuriousStorm:
			if inTx && !abort && f.inWindow(clock) && f.matchesProc(id) &&
				(f.Line < 0 || f.Line == line) {
				abort = true
				e.n.Aborts++
			}
		case Preempt:
			if inTx && !e.fired[i] && clock >= f.At && f.matchesProc(id) {
				e.fired[i] = true
				stall += f.Arg
				e.n.Stalls++
				e.n.StallCyc += f.Arg
			}
		case HolderStall:
			if !inTx && write && !e.fired[i] && clock >= f.At && f.matchesProc(id) {
				e.fired[i] = true
				stall += f.Arg
				e.n.Stalls++
				e.n.StallCyc += f.Arg
			}
		}
	}
	return stall, abort
}

// WriteCap implements tsx.Injector.
func (e *Engine) WriteCap(id int, clock uint64, limit int) int {
	for i := range e.faults {
		f := &e.faults[i]
		if f.Kind != CapacitySqueeze || !f.inWindow(clock) || !f.matchesProc(id) {
			continue
		}
		if squeezed := int(f.Arg); squeezed >= 1 && squeezed < limit {
			limit = squeezed
			e.n.Squeezes++
		}
	}
	return limit
}

// Grant implements tsx.Injector.
func (e *Engine) Grant(id int, clock, slice uint64) uint64 {
	for i := range e.faults {
		f := &e.faults[i]
		if f.Kind != GrantSkew || !f.inWindow(clock) || !f.matchesProc(id) {
			continue
		}
		slice = slice * f.Arg / 100
		if slice == 0 {
			slice = 1
		}
		e.n.Skews++
	}
	return slice
}

// RandomSchedule draws n faults over a run of the given horizon (virtual
// cycles) and thread count, deterministically from seed. Windows and stall
// lengths are bounded (windows at horizon/4, stalls at horizon/8) so that
// any scheme with a non-speculative fallback can always make progress
// after the schedule drains — random schedules probe robustness, they
// never manufacture a fault that no correct scheme could survive.
//
// Degenerate inputs are defined, not undefined: n <= 0 returns an empty
// schedule, a horizon below 8 cycles is clamped to 8 (so window and stall
// draws stay positive), and procs <= 0 panics — there is no thread to
// target, so the caller's configuration is broken.
func RandomSchedule(seed int64, procs int, horizon uint64, n int) []Fault {
	if procs <= 0 {
		panic(fmt.Sprintf("chaos: RandomSchedule procs=%d, need at least one thread", procs))
	}
	if n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	if horizon < 8 {
		horizon = 8
	}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		at := uint64(rng.Int63n(int64(horizon)))
		window := 1 + uint64(rng.Int63n(int64(horizon/4)))
		f := Fault{At: at, Until: at + window, Proc: -1, Line: -1}
		if rng.Intn(2) == 0 {
			f.Proc = rng.Intn(procs)
		}
		switch Kind(rng.Intn(5)) {
		case SpuriousStorm:
			f.Kind = SpuriousStorm
			// Unbounded storms against every thread would be a
			// livelock by construction; keep the window.
		case CapacitySqueeze:
			f.Kind = CapacitySqueeze
			f.Arg = 1 + uint64(rng.Intn(8))
		case Preempt:
			f.Kind = Preempt
			f.Until = 0
			f.Arg = 1 + uint64(rng.Int63n(int64(horizon/8)))
		case GrantSkew:
			f.Kind = GrantSkew
			skews := []uint64{10, 25, 50, 200, 400}
			f.Arg = skews[rng.Intn(len(skews))]
		case HolderStall:
			f.Kind = HolderStall
			f.Until = 0
			f.Arg = 1 + uint64(rng.Int63n(int64(horizon/8)))
		}
		faults = append(faults, f)
	}
	return faults
}
