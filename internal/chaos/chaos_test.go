package chaos

import (
	"reflect"
	"strings"
	"testing"

	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/mem"
	"hle/internal/rbtree"
	"hle/internal/tsx"
)

// allSchemes is every elision scheme the harness can build. NoLock is
// excluded: it is a single-threaded baseline with no locks to attack.
var allSchemes = []string{
	"Standard", "HLE", "HLE-HWExt", "RTM-LE", "HLE-SCM",
	"HLE-SCM-ideal", "HLE-SCM-multi", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM",
}

var soakLocks = []string{"TTAS", "MCS"}

// TestSoakMatrix is the chaos soak: every scheme × {TTAS, MCS} under 20
// randomized fault schedules must stay serializable with no watchdog trip.
// Points fan out across host workers; each is fully deterministic in its
// (scheme, lock, seed) coordinates.
func TestSoakMatrix(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	type point struct {
		scheme, lock string
		seed         int64
	}
	var pts []point
	for _, sch := range allSchemes {
		for _, lk := range soakLocks {
			for s := 1; s <= seeds; s++ {
				pts = append(pts, point{sch, lk, int64(s)})
			}
		}
	}
	// All points at one seed share a filled image (per machine-flag
	// class), so the fill phase runs once per image instead of once per
	// point; forked runs are identical to scratch runs by
	// TestSoakForkMatchesScratch.
	var cache ImageCache
	results := make([]SoakResult, len(pts))
	harness.ParallelFor(0, len(pts), func(i int) {
		spec := SoakSpec{
			Scheme: harness.SchemeSpec{Scheme: pts[i].scheme, Lock: pts[i].lock},
			Seed:   pts[i].seed,
		}
		results[i] = RunSoakFrom(cache.For(spec), spec)
	})
	injected := 0
	for i, r := range results {
		p := pts[i]
		if r.Failure != nil {
			t.Errorf("%s/%s seed %d: watchdog trip: %v\n%s",
				p.scheme, p.lock, p.seed, r.Failure, r.Failure.Dump())
			continue
		}
		if r.CheckErr != nil {
			t.Errorf("%s/%s seed %d: not serializable: %v", p.scheme, p.lock, p.seed, r.CheckErr)
		}
		n := r.Injected
		injected += n.Aborts + n.Stalls + n.Squeezes + n.Skews
	}
	if injected == 0 {
		t.Error("soak injected no faults at all — schedules never landed")
	}
}

// TestSoakForkMatchesScratch: a soak run forked from a prebuilt image is
// identical to the scratch run of the same spec — for each machine-flag
// class an image can carry — and reusing an image for a second fork
// changes nothing (forks never write back into the image).
func TestSoakForkMatchesScratch(t *testing.T) {
	for _, sch := range []string{"HLE-SCM", "HLE-HWExt", "HLE-SCM-ideal", "Standard"} {
		spec := SoakSpec{Scheme: harness.SchemeSpec{Scheme: sch, Lock: "MCS"}, Seed: 5}
		cold := RunSoak(spec)
		img := BuildSoakImage(spec)
		for rep := 0; rep < 2; rep++ {
			warm := RunSoakFrom(img, spec)
			if !reflect.DeepEqual(cold, warm) {
				t.Errorf("%s fork %d differs from scratch:\ncold: %+v\nwarm: %+v",
					sch, rep, cold, warm)
			}
		}
	}
}

// TestSoakImageMismatchPanics: forking an image for a spec with different
// fill coordinates must refuse loudly rather than run on the wrong state.
func TestSoakImageMismatchPanics(t *testing.T) {
	spec := SoakSpec{Scheme: harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"}, Seed: 5}
	img := BuildSoakImage(spec)
	defer func() {
		if recover() == nil {
			t.Error("mismatched image accepted")
		}
	}()
	spec.Seed = 6
	RunSoakFrom(img, spec)
}

// TestSoakDeterministic: one soak point replayed gives byte-identical
// results, including the drawn schedule and injection counters.
func TestSoakDeterministic(t *testing.T) {
	spec := SoakSpec{Scheme: harness.SchemeSpec{Scheme: "HLE-SCM", Lock: "MCS"}, Seed: 7}
	r1, r2 := RunSoak(spec), RunSoak(spec)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("replay differs:\n%+v\n%+v", r1, r2)
	}
}

// TestRandomScheduleDeterministic: schedules are a pure function of the
// seed.
func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(11, 8, 150_000, 6)
	b := RandomSchedule(11, 8, 150_000, 6)
	c := RandomSchedule(12, 8, 150_000, 6)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if reflect.DeepEqual(a, c) {
		t.Errorf("different seeds drew the same schedule: %v", a)
	}
}

// TestRandomScheduleDegenerateInputs pins the documented contract for
// nonsense arguments: empty request -> empty schedule, tiny horizons are
// clamped rather than crashing the divisor draws, and a threadless
// configuration is caller error.
func TestRandomScheduleDegenerateInputs(t *testing.T) {
	cases := []struct {
		name    string
		procs   int
		horizon uint64
		n       int
		wantNil bool
		panics  bool
	}{
		{name: "zero faults", procs: 4, horizon: 100_000, n: 0, wantNil: true},
		{name: "negative faults", procs: 4, horizon: 100_000, n: -3, wantNil: true},
		{name: "zero horizon clamps", procs: 4, horizon: 0, n: 5},
		{name: "tiny horizon clamps", procs: 4, horizon: 7, n: 5},
		{name: "one thread", procs: 1, horizon: 100_000, n: 5},
		{name: "zero procs panics", procs: 0, horizon: 100_000, n: 5, panics: true},
		{name: "negative procs panics", procs: -2, horizon: 100_000, n: 5, panics: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.panics {
				defer func() {
					if recover() == nil {
						t.Error("no panic for a threadless configuration")
					}
				}()
			}
			faults := RandomSchedule(3, tc.procs, tc.horizon, tc.n)
			if tc.panics {
				t.Fatal("unreachable: panic expected")
			}
			if tc.wantNil {
				if faults != nil {
					t.Fatalf("want no faults, got %v", faults)
				}
				return
			}
			if len(faults) != tc.n {
				t.Fatalf("drew %d faults, want %d", len(faults), tc.n)
			}
			for _, f := range faults {
				if f.Until != 0 && f.Until <= f.At {
					t.Errorf("fault %+v has an empty window", f)
				}
				if f.Proc >= tc.procs {
					t.Errorf("fault %+v targets a thread beyond procs=%d", f, tc.procs)
				}
			}
		})
	}
}

// TestEmptyEngineIsInvisible: installing an engine with no faults (hooks
// armed, nothing firing) must leave a measurement run byte-identical to an
// injector-free run — the injection layer is zero-cost when off.
func TestEmptyEngineIsInvisible(t *testing.T) {
	run := func(inject bool) harness.Result {
		mcfg := tsx.DefaultConfig(4)
		mcfg.Seed = 23
		m := tsx.NewMachine(mcfg)
		var scheme core.Scheme
		var w harness.Workload
		m.RunOne(func(th *tsx.Thread) {
			w = harness.NewRBTree(th, 64, harness.MixExtensive)
			w.Populate(th)
			scheme = harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"}.Build(th)
		})
		if inject {
			m.SetInjector(New())
			defer m.SetInjector(nil)
		}
		return harness.Run(m, scheme, w, harness.Config{Threads: 4, CycleBudget: 120_000})
	}
	plain, armed := run(false), run(true)
	if !reflect.DeepEqual(plain, armed) {
		t.Errorf("empty engine changed the run:\nplain: %+v\narmed: %+v", plain, armed)
	}
}

// retryForever is the pathological scheme of the paper's Chapter 4 livelock
// argument: retry speculation unconditionally, never take the lock. Under a
// persistent abort source it makes no progress forever.
type retryForever struct{}

func (retryForever) Name() string             { return "Retry-Forever" }
func (retryForever) Setup(t *tsx.Thread)      {}
func (retryForever) Stats(int) core.OpStats   { return core.OpStats{} }
func (retryForever) TotalStats() core.OpStats { return core.OpStats{} }

func (retryForever) Run(t *tsx.Thread, cs func()) core.Result {
	var attempts uint64
	for {
		attempts++
		if ok, _ := t.RTM(cs); ok {
			return core.Result{Attempts: attempts, Spec: true}
		}
		t.Pause()
	}
}

// stormSchedule is the Chapter 4 adversary: an unbounded spurious-abort
// storm against every thread and every line. A retry-forever scheme
// livelocks under it; HLE-SCM survives it serializably because its
// serializing-conflict management falls back to real lock acquisition.
var stormSchedule = []Fault{{Kind: SpuriousStorm, At: 0, Until: 0, Proc: -1, Line: -1}}

func stormSpec(seed int64) SoakSpec {
	return SoakSpec{
		Scheme:         harness.SchemeSpec{Scheme: "HLE-SCM", Lock: "MCS"},
		Seed:           seed,
		Threads:        4,
		OpsPerThread:   8,
		Schedule:       stormSchedule,
		LivelockWindow: 200_000,
	}
}

// TestLivelockTripUnderStorm: retry-forever under the storm trips the
// livelock watchdog, completes zero operations, and returns a structured
// failure whose bounded dump replays byte-identically.
func TestLivelockTripUnderStorm(t *testing.T) {
	spec := stormSpec(1)
	spec.MkScheme = func(*tsx.Thread) core.Scheme { return retryForever{} }
	r := RunSoak(spec)
	if r.Failure == nil {
		t.Fatalf("retry-forever survived the storm: %+v", r)
	}
	if r.Failure.Reason != harness.ReasonLivelock {
		t.Fatalf("reason = %q, want livelock", r.Failure.Reason)
	}
	if r.Ops != 0 {
		t.Errorf("completed %d ops under a total storm", r.Ops)
	}
	if r.Injected.Aborts == 0 {
		t.Error("storm delivered no aborts")
	}
	dump := r.Failure.Dump()
	if !strings.Contains(dump, "inj-abort") {
		t.Errorf("dump shows no injected aborts:\n%s", dump)
	}
	if !strings.Contains(dump, "spurious-storm@0") {
		t.Errorf("dump missing fault-schedule context:\n%s", dump)
	}
	r2 := RunSoak(spec)
	if r2.Failure == nil || r2.Failure.Dump() != dump {
		t.Error("forced trip is not deterministic: dumps differ across replays")
	}
}

// TestSCMSurvivesStorm: HLE-SCM under the identical storm schedule stays
// live and serializable — the paper's claim that SCM cannot livelock even
// when speculation never succeeds.
func TestSCMSurvivesStorm(t *testing.T) {
	spec := stormSpec(1)
	r := RunSoak(spec)
	if r.Failure != nil {
		t.Fatalf("HLE-SCM tripped under storm:\n%s", r.Failure.Dump())
	}
	if r.CheckErr != nil {
		t.Fatalf("HLE-SCM not serializable under storm: %v", r.CheckErr)
	}
	if want := spec.Threads * spec.OpsPerThread; r.Ops != want {
		t.Errorf("ops = %d, want %d", r.Ops, want)
	}
	if r.Injected.Aborts == 0 {
		t.Error("storm delivered no aborts")
	}
}

// TestStarvationTrip: preempting one thread for effectively forever while
// the others keep completing operations trips the starvation detector and
// names the victim.
func TestStarvationTrip(t *testing.T) {
	spec := SoakSpec{
		Scheme:       harness.SchemeSpec{Scheme: "HLE", Lock: "TTAS"},
		Seed:         3,
		Threads:      4,
		OpsPerThread: 400,
		Schedule: []Fault{
			{Kind: Preempt, At: 0, Proc: 0, Arg: 1 << 40},
		},
		LivelockWindow:   1 << 40,
		StarvationWindow: 50_000,
	}
	r := RunSoak(spec)
	if r.Failure == nil {
		t.Fatalf("no starvation trip: %+v", r)
	}
	if r.Failure.Reason != harness.ReasonStarvation {
		t.Fatalf("reason = %q, want starvation\n%s", r.Failure.Reason, r.Failure.Dump())
	}
	if r.Failure.Thread != 0 {
		t.Errorf("victim = %d, want 0", r.Failure.Thread)
	}
	if r.Injected.Stalls != 1 {
		t.Errorf("stalls injected = %d, want 1", r.Injected.Stalls)
	}
}

// TestSnapshotRestoreUnderChaos: simulated memory survives a fault-riddled
// run and restores exactly, with mem.DebugChecks auditing every access. The
// round trip proves injected aborts and capacity squeezes never leak
// partial transactional state into memory.
func TestSnapshotRestoreUnderChaos(t *testing.T) {
	old := mem.DebugChecks
	mem.DebugChecks = true
	defer func() { mem.DebugChecks = old }()

	mcfg := tsx.DefaultConfig(4)
	mcfg.Seed = 9
	mcfg.TraceRing = 64
	m := tsx.NewMachine(mcfg)
	var tree *rbtree.Tree
	var scheme core.Scheme
	m.RunOne(func(th *tsx.Thread) {
		scheme = harness.SchemeSpec{Scheme: "HLE-SCM", Lock: "MCS"}.Build(th)
		tree = rbtree.New(th)
		for k := uint64(0); k < 64; k += 2 {
			tree.Insert(th, k, k*10)
		}
	})
	snap := m.Mem.Snapshot()

	eng := New(
		Fault{Kind: SpuriousStorm, At: 0, Until: 40_000, Proc: -1, Line: -1},
		Fault{Kind: CapacitySqueeze, At: 0, Until: 0, Proc: -1, Line: -1, Arg: 2},
	)
	m.SetInjector(eng)
	m.Run(4, func(th *tsx.Thread) {
		scheme.Setup(th)
		for i := 0; i < 40; i++ {
			key := uint64(th.Rand().Intn(64))
			switch th.Rand().Intn(2) {
			case 0:
				scheme.Run(th, func() { tree.Insert(th, key, key+1) })
			default:
				scheme.Run(th, func() { tree.Delete(th, key) })
			}
		}
	})
	m.SetInjector(nil)
	if n := eng.Counters(); n.Aborts == 0 || n.Squeezes == 0 {
		t.Fatalf("faults never landed mid-transaction: %+v", n)
	}
	if reflect.DeepEqual(m.Mem.Snapshot().Words(), snap.Words()) {
		t.Fatal("chaotic run mutated nothing — test is vacuous")
	}

	m.Mem.Restore(snap)
	if !reflect.DeepEqual(m.Mem.Snapshot().Words(), snap.Words()) {
		t.Error("restore did not round-trip the word array")
	}
	// An independent memory from the same snapshot agrees word-for-word.
	if !reflect.DeepEqual(mem.FromSnapshot(snap).Snapshot().Words(), snap.Words()) {
		t.Error("FromSnapshot disagrees with source snapshot")
	}
	// The restored tree reads back exactly the populated contents.
	m.RunOne(func(th *tsx.Thread) {
		for k := uint64(0); k < 64; k++ {
			v, ok := tree.Lookup(th, k)
			if wantOk := k%2 == 0; ok != wantOk || (ok && v != k*10) {
				t.Errorf("after restore: key %d = (%d,%v), want (%d,%v)", k, v, ok, k*10, wantOk)
			}
		}
	})
}
