package chaos

import (
	"sync"

	"hle/internal/adapt"
	"hle/internal/check"
	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/locks"
	"hle/internal/rbtree"
	"hle/internal/tsx"
)

// SoakSpec declares one soak point: a scheme × lock combination driven
// through a serializability-checked red-black-tree history while a fault
// schedule fires, with liveness watchdogs armed. Every field of the
// declaration determines the run; equal specs give equal results.
type SoakSpec struct {
	// Scheme selects the scheme/lock by name (see harness.SchemeSpec).
	Scheme harness.SchemeSpec
	// MkScheme, when non-nil, overrides Scheme's construction — used by
	// tests that soak pathological schemes (unbounded retry loops).
	MkScheme func(t *tsx.Thread) core.Scheme
	// Seed drives the machine and the fault schedule.
	Seed int64
	// Threads is the worker count (default 8).
	Threads int
	// OpsPerThread is the operation count each thread completes
	// (default 60). The loop is count-based, not budget-based, so every
	// surviving run executes the same logical history.
	OpsPerThread int
	// Keys is the key-domain size (default 64; small keeps conflicts hot).
	Keys int
	// Faults sizes the random schedule (default 6); ignored when
	// Schedule is set.
	Faults int
	// Horizon spreads the random schedule over this many virtual cycles
	// (default 150000 — comparable to the run's natural length).
	Horizon uint64
	// Schedule overrides the random schedule entirely.
	Schedule []Fault
	// LivelockWindow and StarvationWindow arm the watchdog (defaults
	// 2e6 and 8e6 cycles — far beyond any legitimate operation gap at
	// soak scale, far below a hung test timeout).
	LivelockWindow   uint64
	StarvationWindow uint64
	// Observer, when non-nil, is installed on the soak machine
	// (tsx.Config.Observer) so a profiling collector can attribute the
	// aborts the fault schedule provokes. Observation is passive: the
	// soak runs byte-identically with or without it.
	Observer tsx.Observer
	// Adapt tunes the controller when Scheme.Scheme is "Adaptive"
	// (nil selects the adapt defaults). Ignored otherwise.
	Adapt *adapt.Config
}

// SoakResult is the outcome of one soak point.
type SoakResult struct {
	// Ops is the number of recorded (completed) operations.
	Ops int
	// Failure is the watchdog diagnostic if the run was stopped.
	Failure *harness.Failure
	// CheckErr is the serializability verdict (nil = serializable).
	// Stopped runs skip verification: interrupted threads leave ticket
	// gaps by construction.
	CheckErr error
	// Injected tallies the faults actually delivered.
	Injected Counters
	// Schedule is the fault schedule that ran (useful when it was drawn
	// randomly).
	Schedule []Fault

	// Adaptive-scheme extras, populated only when the soaked scheme was
	// "Adaptive": the controller's transition log, the level in force
	// when the run ended, and how many observed windows were spent at
	// each level.
	Transitions  []adapt.Transition
	FinalLevel   adapt.Level
	LevelWindows [adapt.NumLevels]int
}

// Ok reports whether the run survived: no watchdog trip, serializable.
func (r SoakResult) Ok() bool { return r.Failure == nil && r.CheckErr == nil }

func (s *SoakSpec) defaults() {
	if s.Threads == 0 {
		s.Threads = 8
	}
	if s.OpsPerThread == 0 {
		s.OpsPerThread = 60
	}
	if s.Keys == 0 {
		s.Keys = 64
	}
	if s.Faults == 0 {
		s.Faults = 6
	}
	if s.Horizon == 0 {
		s.Horizon = 150_000
	}
	if s.LivelockWindow == 0 {
		s.LivelockWindow = 2_000_000
		if s.Scheme.Scheme == "HLE-HWExt" {
			// A liveness window must exceed the scheme's longest
			// legitimate progress gap. The Chapter 7 extension
			// suspends a speculative thread for up to maxWaitIters
			// wait steps (~2^20 × Costs.Wait ≈ 2·10^7 cycles) before
			// its spurious-abort escape hatch fires — a fault landing
			// mid-suspension makes gaps of that order, from which the
			// scheme provably recovers (soak seeds 6 and 16 exercise
			// exactly this).
			s.LivelockWindow = 30_000_000
		}
	}
	if s.StarvationWindow == 0 {
		s.StarvationWindow = 4 * s.LivelockWindow
	}
}

// SoakImage is the scheme-free half of a soak machine: the red-black tree
// and recorder cell allocated and the tree populated fault-free, captured
// as a checkpoint. Many soak points share one image — the fill depends
// only on the image coordinates (seed, threads, keys, and the machine
// flags some schemes require), not on which scheme or fault schedule the
// point runs — so a battery builds each distinct image once and forks it
// per point instead of re-filling.
type SoakImage struct {
	cp        *tsx.Checkpoint
	tree      *rbtree.Tree
	rec       *check.Recorder
	populated map[uint64]uint64
	seed      int64
	threads   int
	keys      int
	hwExt     bool
	nestHLE   bool
}

// soakFlags maps a scheme name to the machine flags it needs; images are
// only shareable between specs with equal flags.
func soakFlags(scheme string) (hwExt, nestHLE bool) {
	switch scheme {
	case "HLE-HWExt":
		return true, false
	case "HLE-SCM-ideal":
		return false, true
	}
	return false, false
}

// BuildSoakImage fills a soak machine for the spec's coordinates and
// checkpoints it. The scheme is NOT constructed here — it allocates per
// point in RunSoakFrom, after the shared image — so the image serves every
// scheme/lock/schedule combination with matching coordinates.
func BuildSoakImage(spec SoakSpec) *SoakImage {
	spec.defaults()
	cfg := tsx.DefaultConfig(spec.Threads)
	cfg.Seed = spec.Seed
	cfg.MemWords = 1 << 18
	cfg.TraceRing = 256
	cfg.HWExt, cfg.NestHLEInRTM = soakFlags(spec.Scheme.Scheme)

	img := &SoakImage{
		populated: map[uint64]uint64{},
		seed:      spec.Seed,
		threads:   spec.Threads,
		keys:      spec.Keys,
		hwExt:     cfg.HWExt,
		nestHLE:   cfg.NestHLEInRTM,
	}
	m := tsx.NewMachine(cfg)
	m.RunOne(func(th *tsx.Thread) {
		img.tree = rbtree.New(th)
		img.rec = check.NewRecorder(th)
		for i := 0; i < spec.Keys/2; i++ {
			k := uint64(th.Rand().Intn(spec.Keys))
			if img.tree.Insert(th, k, k+1) {
				img.populated[k] = k + 1
			}
		}
	})
	img.cp = m.Checkpoint()
	return img
}

// ImageCache shares soak images across points keyed by their fill
// coordinates. A battery sweeping many scheme × lock × schedule points
// over the same seeds builds each distinct image once; concurrent
// requests for the same key serialize on its build, different keys build
// in parallel. The zero value is ready to use.
type ImageCache struct {
	mu sync.Mutex
	m  map[imageKey]*imageSlot
}

type imageKey struct {
	seed           int64
	threads, keys  int
	hwExt, nestHLE bool
}

type imageSlot struct {
	once sync.Once
	img  *SoakImage
}

// For returns the image matching spec's fill coordinates, building it on
// first request.
func (c *ImageCache) For(spec SoakSpec) *SoakImage {
	spec.defaults()
	hwExt, nestHLE := soakFlags(spec.Scheme.Scheme)
	k := imageKey{spec.Seed, spec.Threads, spec.Keys, hwExt, nestHLE}
	c.mu.Lock()
	if c.m == nil {
		c.m = map[imageKey]*imageSlot{}
	}
	s := c.m[k]
	if s == nil {
		s = &imageSlot{}
		c.m[k] = s
	}
	c.mu.Unlock()
	s.once.Do(func() { s.img = BuildSoakImage(spec) })
	return s.img
}

// RunSoak executes one soak point from scratch: build and fill the
// machine, then run the measured phase. Deterministic: equal specs produce
// equal results, including dump bytes on failure. Batteries that share
// coordinates across points should BuildSoakImage once and call
// RunSoakFrom instead.
func RunSoak(spec SoakSpec) SoakResult {
	spec.defaults()
	return RunSoakFrom(BuildSoakImage(spec), spec)
}

// RunSoakFrom executes one soak point on a fork of a prebuilt image: the
// machine state is copied from the checkpoint (skipping the fill phase),
// the scheme is constructed on the fork, and the measured run proceeds
// exactly as a scratch run would — a fork and a scratch run of the same
// spec return identical results. Panics if the image's coordinates do not
// match the spec's.
func RunSoakFrom(img *SoakImage, spec SoakSpec) SoakResult {
	spec.defaults()
	hwExt, nestHLE := soakFlags(spec.Scheme.Scheme)
	if img.seed != spec.Seed || img.threads != spec.Threads || img.keys != spec.Keys ||
		img.hwExt != hwExt || img.nestHLE != nestHLE {
		panic("chaos: soak image coordinates do not match spec")
	}
	m := tsx.FromCheckpoint(img.cp)
	m.SetObserver(spec.Observer)

	mo := locks.NewMonitor()
	sspec := spec.Scheme
	sspec.Monitor = mo
	sspec.Adapt = spec.Adapt

	var scheme core.Scheme
	m.RunOne(func(th *tsx.Thread) {
		if spec.MkScheme != nil {
			scheme = spec.MkScheme(th)
		} else {
			scheme = sspec.Build(th)
		}
	})
	tree := img.tree
	rec := img.rec.Fresh()
	populated := img.populated

	schedule := spec.Schedule
	if schedule == nil {
		schedule = RandomSchedule(spec.Seed, spec.Threads, spec.Horizon, spec.Faults)
	}
	engine := New(schedule...)
	m.SetInjector(engine)
	label := sspec.String()
	if spec.MkScheme != nil {
		label = scheme.Name()
	}
	wd := harness.NewWatchdog(harness.WatchdogConfig{
		LivelockWindow:   spec.LivelockWindow,
		StarvationWindow: spec.StarvationWindow,
		Monitor:          mo,
		Context:          label + "; " + engine.String(),
	}, spec.Threads)
	m.SetWatchdog(wd.Check)

	threads := m.Run(spec.Threads, func(th *tsx.Thread) {
		scheme.Setup(th)
		for i := 0; i < spec.OpsPerThread; i++ {
			key := uint64(th.Rand().Intn(spec.Keys))
			switch th.Rand().Intn(3) {
			case 0:
				rec.RunChecked(th, scheme, "insert", key, func() uint64 {
					return b01(tree.Insert(th, key, key+1))
				})
			case 1:
				rec.RunChecked(th, scheme, "delete", key, func() uint64 {
					return b01(tree.Delete(th, key))
				})
			default:
				rec.RunChecked(th, scheme, "lookup", key, func() uint64 {
					v, ok := tree.Lookup(th, key)
					return v<<1 | b01(ok)
				})
			}
			wd.NoteOp(th.ID, th.Clock())
		}
		wd.NoteDone(th.ID)
	})
	m.SetWatchdog(nil)
	m.SetInjector(nil)

	res := SoakResult{Ops: rec.Len(), Injected: engine.Counters(), Schedule: schedule}
	if ad, ok := scheme.(*core.Adaptive); ok {
		res.Transitions = append([]adapt.Transition(nil), ad.Transitions()...)
		res.FinalLevel = ad.Level()
		res.LevelWindows = ad.Controller().LevelWindows()
	}
	if m.Stopped() {
		res.Failure = wd.Failure(m, threads)
		return res
	}
	// The sequential witness starts from the populated state.
	model := make(map[uint64]uint64, len(populated))
	for k, v := range populated {
		model[k] = v
	}
	res.CheckErr = rec.Verify(func(kind string, key uint64) uint64 {
		switch kind {
		case "insert":
			_, had := model[key]
			if !had {
				model[key] = key + 1
			}
			return b01(!had)
		case "delete":
			_, had := model[key]
			delete(model, key)
			return b01(had)
		default:
			v, ok := model[key]
			return v<<1 | b01(ok)
		}
	})
	return res
}

func b01(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
