package chaos

// RecoveryScenario is a storm-recovery fault pattern for soaking the
// adaptive controller: an abort storm begins mid-run, ends, and the run
// continues long enough afterwards to observe recovery. StormStart and
// StormEnd delimit the outermost storm window so assertions can bound
// when the controller must have degraded (within the storm) and
// re-promoted (after it).
type RecoveryScenario struct {
	Name   string
	Faults []Fault
	// StormStart and StormEnd are the first and last virtual cycles of
	// fault pressure.
	StormStart uint64
	StormEnd   uint64
	// Capacity marks scenarios whose storm is capacity-dominated — the
	// controller is expected to demote straight to the serial floor
	// rather than through SCM, even though only the structural share of
	// the operation mix aborts (a moderate but permanent tax).
	Capacity bool
}

// StormRecoveryScenarios returns the storm-recovery soak patterns over
// the window [start, end):
//
//   - spurious-storm: every transactional access of every thread aborts
//     for the whole window — the elision-hostile worst case; the
//     controller must ride the ladder down to the serial floor and climb
//     back after the window closes.
//   - capacity-storm: the write capacity is squeezed to one line, so any
//     structural update dies with a capacity abort; capacity-dominated
//     mixes must demote directly to Serial (SCM cannot shrink a working
//     set).
//   - double-storm: two spurious bursts separated by a lull shorter than
//     the controller's probation, probing that the lull does not bait a
//     premature re-promotion flap.
//   - storm-load-shift: a spurious storm followed by a post-storm grant
//     skew that starves one thread's scheduling — the load shape after
//     the storm differs from before it, and the controller must still
//     re-promote.
//
// Every scenario targets all threads and lines, so its pressure is
// independent of scheduling details and the patterns stay meaningful at
// any thread count.
func StormRecoveryScenarios(start, end uint64) []RecoveryScenario {
	if end <= start {
		panic("chaos: StormRecoveryScenarios needs start < end")
	}
	span := end - start
	return []RecoveryScenario{
		{
			Name: "spurious-storm",
			Faults: []Fault{
				{Kind: SpuriousStorm, At: start, Until: end, Proc: -1, Line: -1},
			},
			StormStart: start,
			StormEnd:   end,
		},
		{
			Name: "capacity-storm",
			Faults: []Fault{
				{Kind: CapacitySqueeze, At: start, Until: end, Proc: -1, Line: -1, Arg: 1},
			},
			StormStart: start,
			StormEnd:   end,
			Capacity:   true,
		},
		{
			Name: "double-storm",
			Faults: []Fault{
				{Kind: SpuriousStorm, At: start, Until: start + span*3/8, Proc: -1, Line: -1},
				{Kind: SpuriousStorm, At: start + span*5/8, Until: end, Proc: -1, Line: -1},
			},
			StormStart: start,
			StormEnd:   end,
		},
		{
			Name: "storm-load-shift",
			Faults: []Fault{
				{Kind: SpuriousStorm, At: start, Until: end, Proc: -1, Line: -1},
				{Kind: GrantSkew, At: end, Until: end + span, Proc: 0, Line: -1, Arg: 25},
			},
			StormStart: start,
			StormEnd:   end,
		},
	}
}
