package shard_test

import (
	"fmt"
	"testing"

	"hle/internal/check"
	"hle/internal/harness"
	"hle/internal/shard"
	"hle/internal/traffic"
	"hle/internal/tsx"
)

// soakCell is one sharded-soak configuration.
type soakCell struct {
	backend shard.Backend
	scheme  string
	spec    traffic.Spec
}

func (c soakCell) String() string {
	return fmt.Sprintf("%s/%s/%s", c.backend, c.scheme, c.spec)
}

// TestShardSoakMatrix storms the sharded store and checks the strongest
// properties we can state about it: every shard's history is serializable
// (per-shard ticket order replays exactly against a sequential model),
// the cross-shard invariant holds (striped size counters == structure
// walk == model, per shard and in total), and no liveness watchdog trips
// while hot-key storms concentrate the traffic. Under -short only a
// reduced matrix runs.
func TestShardSoakMatrix(t *testing.T) {
	storm := &traffic.Storm{EpochCycles: 30_000, HotKeys: 4, HotPct: 60}
	tenantB := harness.MixExtensive
	cells := []soakCell{
		{shard.RBTree, "HLE", traffic.Spec{Keys: 128, Mix: harness.MixModerate, ZipfS: 1.1, Storm: storm, ScanPct: 1}},
		{shard.HashTable, "HLE-SCM", traffic.Spec{Keys: 128, Mix: harness.MixExtensive, Storm: storm, TenantMix: &tenantB}},
		{shard.RBTree, "Adaptive", traffic.Spec{Keys: 128, Mix: harness.MixExtensive, ZipfS: 1.3, Storm: storm}},
	}
	if !testing.Short() {
		ramp := &traffic.Ramp{PeriodCycles: 60_000, TroughThink: 300}
		cells = append(cells,
			soakCell{shard.RBTree, "Standard", traffic.Spec{Keys: 128, Mix: harness.MixExtensive, ZipfS: 1.3, Storm: storm, ScanPct: 1}},
			soakCell{shard.HashTable, "HLE", traffic.Spec{Keys: 256, Mix: harness.MixModerate, Ramp: ramp, ScanPct: 2}},
			soakCell{shard.RBTree, "HLE-SCM", traffic.Spec{Keys: 128, Mix: harness.MixExtensive, ZipfS: 1.5, Storm: &traffic.Storm{EpochCycles: 15_000, HotKeys: 2, HotPct: 80}}},
			soakCell{shard.HashTable, "Adaptive", traffic.Spec{Keys: 256, Mix: harness.MixModerate, Storm: storm, TenantMix: &tenantB, ScanPct: 1}},
		)
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.String(), func(t *testing.T) { runShardSoak(t, cell) })
	}
}

func runShardSoak(t *testing.T, cell soakCell) {
	const (
		threads = 8
		shards  = 8
		budget  = 120_000
	)
	cfg := tsx.DefaultConfig(threads)
	cfg.Seed = 7
	cfg.MemWords = cell.spec.Keys*64 + 1<<16
	m := tsx.NewMachine(cfg)

	var (
		w    *traffic.Workload
		st   *shard.Store
		recs []*check.Recorder
	)
	m.RunOne(func(th *tsx.Thread) {
		w = traffic.New(th, shard.DataConfig{Shards: shards, Backend: cell.backend}, cell.spec)
		w.Populate(th)
		st = shard.Bind(th, w.Data(), shard.StoreConfig{MkScheme: shard.SchemeMakerByName(cell.scheme)})
		for si := 0; si < shards; si++ {
			recs = append(recs, check.NewRecorder(th))
		}
	})
	d := w.Data()

	// Per-shard sequential witnesses start from the populated state.
	models := make([]map[uint64]uint64, shards)
	m.RunOne(func(th *tsx.Thread) {
		for si := range models {
			models[si] = make(map[uint64]uint64)
		}
		for k := uint64(0); k < uint64(w.Domain()); k++ {
			if v, ok := d.Lookup(th, k); ok {
				models[d.ShardOf(k)][k] = v
			}
		}
	})

	wd := harness.NewWatchdog(harness.WatchdogConfig{
		LivelockWindow:   2_000_000,
		StarvationWindow: 1_000_000,
		Context:          cell.String(),
	}, threads)
	m.SetWatchdog(wd.Check)

	b01 := func(ok bool) uint64 {
		if ok {
			return 1
		}
		return 0
	}
	// scanTotals records every cross-shard snapshot: counter sum and
	// structure walk taken inside the same all-lock section must agree.
	scans := 0
	threadsOut := m.Run(threads, func(th *tsx.Thread) {
		st.Setup(th)
		for th.Clock() < budget {
			op := w.NextOp(th)
			if op.Kind == harness.OpScan {
				var tracked, walked uint64
				st.RunGlobal(th, func() {
					for si := 0; si < shards; si++ {
						tracked += d.ShardSize(th, si)
						walked += uint64(d.ShardItems(th, si))
					}
				})
				if tracked != walked {
					t.Errorf("scan: counters %d != structures %d", tracked, walked)
				}
				scans++
				wd.NoteOp(th.ID, th.Clock())
				continue
			}
			si := d.ShardOf(op.Key)
			var seq, result uint64
			kind := "lookup"
			st.RunShard(th, si, func() {
				switch op.Kind {
				case harness.OpInsert:
					kind = "insert"
					result = b01(d.Insert(th, op.Key, op.Key+1))
				case harness.OpDelete:
					kind = "delete"
					result = b01(d.Delete(th, op.Key))
				default:
					v, ok := d.Lookup(th, op.Key)
					result = v<<1 | b01(ok)
				}
				seq = recs[si].Ticket(th)
			})
			recs[si].Record(check.Op{Seq: seq, Thread: th.ID, Kind: kind, Key: op.Key, Result: result})
			wd.NoteOp(th.ID, th.Clock())
		}
		wd.NoteDone(th.ID)
	})
	m.SetWatchdog(nil)

	if m.Stopped() {
		t.Fatalf("watchdog tripped: %v", wd.Failure(m, threadsOut))
	}

	totalOps := scans
	for si := 0; si < shards; si++ {
		si := si
		totalOps += recs[si].Len()
		model := models[si]
		if err := recs[si].Verify(func(kind string, key uint64) uint64 {
			switch kind {
			case "insert":
				// Insert updates an existing key's value too (and still
				// returns false) — the witness must mirror that exactly.
				_, had := model[key]
				model[key] = key + 1
				return b01(!had)
			case "delete":
				_, had := model[key]
				delete(model, key)
				return b01(had)
			default:
				v, ok := model[key]
				return v<<1 | b01(ok)
			}
		}); err != nil {
			t.Errorf("shard %d not serializable: %v", si, err)
		}
	}
	if totalOps == 0 {
		t.Fatal("soak completed no operations")
	}

	// Cross-shard invariant at quiescence: size counters == structure
	// walk == the per-shard model each serializable history ended in.
	m.RunOne(func(th *tsx.Thread) {
		var total uint64
		for si := 0; si < shards; si++ {
			tracked := d.ShardSize(th, si)
			walked := uint64(d.ShardItems(th, si))
			if tracked != walked {
				t.Errorf("shard %d: size counter %d != structure %d", si, tracked, walked)
			}
			if want := uint64(len(models[si])); tracked != want {
				t.Errorf("shard %d: size %d != model %d", si, tracked, want)
			}
			total += tracked
		}
		if got := d.TotalSize(th); got != total {
			t.Errorf("TotalSize %d != shard sum %d", got, total)
		}
	})
}
