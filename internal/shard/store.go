package shard

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/tsx"
)

// SchemeMaker builds shard si's scheme instance over its main lock. The
// maker is called once per shard at Bind time, so every shard gets its
// own scheme state — its own SCM auxiliary lock, its own adaptive
// controller and feed — and shards never share synchronization state.
type SchemeMaker func(t *tsx.Thread, main locks.Lock, si int) core.Scheme

// SchemeMakerByName returns a maker for the harness scheme names the
// sharded experiments sweep (Standard, HLE, RTM-LE, HLE-SCM, Adaptive),
// or nil for an unknown name. SCM variants and the adaptive scheme use an
// MCS auxiliary lock, as the paper requires.
func SchemeMakerByName(name string) SchemeMaker {
	switch name {
	case "Standard":
		return func(t *tsx.Thread, main locks.Lock, si int) core.Scheme {
			return core.NewStandard(main)
		}
	case "HLE":
		return func(t *tsx.Thread, main locks.Lock, si int) core.Scheme {
			return core.NewHLE(main)
		}
	case "RTM-LE":
		return func(t *tsx.Thread, main locks.Lock, si int) core.Scheme {
			return core.NewRTMLE(main)
		}
	case "HLE-SCM":
		return func(t *tsx.Thread, main locks.Lock, si int) core.Scheme {
			return core.NewHLESCM(main, locks.NewMCS(t), core.SCMConfig{})
		}
	case "Adaptive":
		return func(t *tsx.Thread, main locks.Lock, si int) core.Scheme {
			return core.NewAdaptive(main, locks.NewMCS(t), core.AdaptiveConfig{})
		}
	}
	return nil
}

// StoreConfig configures the synchronization half of a sharded store.
type StoreConfig struct {
	// MkLock builds each shard's main lock (default MCS, the paper's
	// representative HLE-compatible fair lock).
	MkLock locks.Maker
	// MkScheme builds each shard's scheme over its main lock (default
	// plain HLE).
	MkScheme SchemeMaker
}

// Store is the synchronization half of a sharded store: one lock and one
// scheme instance per shard of a Data, plus the cross-shard operation
// that takes every shard lock. A Store is built per experiment point
// (after a checkpoint fork), binding fresh scheme state to the shared
// warm Data image.
//
// Store implements core.Scheme — Run executes the cross-shard (global)
// section — and harness-style routing via RunKeyed, so the harness can
// dispatch each drawn operation to the shard its key hashes to.
type Store struct {
	data    *Data
	locks   []locks.Lock
	schemes []core.Scheme
	// global accumulates cross-shard (all-lock) operation stats; shard
	// schemes record their own.
	global core.SchemeStats
	name   string
}

// Bind builds per-shard locks and schemes over d. Lock and scheme lines
// are labeled with the owning shard's "sNN/" prefix, so abort heatmaps
// attribute lock-line conflicts to shards.
func Bind(t *tsx.Thread, d *Data, cfg StoreConfig) *Store {
	if cfg.MkLock == nil {
		cfg.MkLock = locks.MakerByName("MCS")
	}
	if cfg.MkScheme == nil {
		cfg.MkScheme = SchemeMakerByName("HLE")
	}
	s := &Store{data: d}
	m := t.Machine()
	for si := 0; si < d.Shards(); si++ {
		prev := m.SetLabelPrefix(ShardLabel(si) + "/")
		l := cfg.MkLock(t)
		s.locks = append(s.locks, l)
		s.schemes = append(s.schemes, cfg.MkScheme(t, l, si))
		m.SetLabelPrefix(prev)
	}
	s.name = fmt.Sprintf("Sharded%d[%s/%s]", d.Shards(), s.schemes[0].Name(), s.locks[0].Name())
	return s
}

// Data returns the structure half the store is bound to.
func (s *Store) Data() *Data { return s.data }

// Scheme returns shard si's scheme instance (tests and stats readers).
func (s *Store) Scheme(si int) core.Scheme { return s.schemes[si] }

// Name implements core.Scheme: "Sharded16[HLE/MCS]".
func (s *Store) Name() string { return s.name }

// Setup implements core.Scheme: it prepares every shard's lock and scheme
// for thread t. Per-thread lock state (queue nodes) allocated here is
// labeled with the shard's prefix too.
func (s *Store) Setup(t *tsx.Thread) {
	m := t.Machine()
	for si, sch := range s.schemes {
		prev := m.SetLabelPrefix(ShardLabel(si) + "/")
		sch.Setup(t)
		m.SetLabelPrefix(prev)
	}
}

// RunKeyed executes cs as a critical section of key's shard, under that
// shard's scheme. This is the hot path: operations on different shards
// synchronize on different locks and proceed fully in parallel — no
// speculation needed — while operations within one shard contend under
// whatever scheme the shard hosts.
func (s *Store) RunKeyed(t *tsx.Thread, key uint64, cs func()) core.Result {
	return s.schemes[s.data.ShardOf(key)].Run(t, cs)
}

// RunShard executes cs as a critical section of shard si directly.
func (s *Store) RunShard(t *tsx.Thread, si int, cs func()) core.Result {
	return s.schemes[si].Run(t, cs)
}

// RunGlobal executes cs while really holding every shard lock — the
// cross-shard operation (consistent Size, snapshots). Locks are acquired
// in ascending shard order, so concurrent globals never deadlock, and a
// keyed operation holds at most its own shard's lock, so no cycle can
// involve it. The acquisitions are non-speculative: taking shard si's
// lock for real aborts every speculation subscribed to it, which is
// exactly the mutual exclusion a consistent snapshot needs.
func (s *Store) RunGlobal(t *tsx.Thread, cs func()) core.Result {
	for _, l := range s.locks {
		l.Acquire(t)
	}
	t.MarkSerial(true)
	cs()
	t.MarkSerial(false)
	for i := len(s.locks) - 1; i >= 0; i-- {
		s.locks[i].Release(t)
	}
	r := core.Result{Attempts: 1, Spec: false}
	s.global.Record(t.ID, r)
	return r
}

// Run implements core.Scheme by executing the cross-shard section;
// harness workloads route keyed operations through RunKeyed (see
// harness.OpRouter).
func (s *Store) Run(t *tsx.Thread, cs func()) core.Result {
	return s.RunGlobal(t, cs)
}

// Size returns a consistent total element count, taking every shard lock.
func (s *Store) Size(t *tsx.Thread) uint64 {
	var n uint64
	s.RunGlobal(t, func() { n = s.data.TotalSize(t) })
	return n
}

// Stats implements core.Scheme: thread t's operations across all shards
// plus its cross-shard operations.
func (s *Store) Stats(threadID int) core.OpStats {
	total := s.global.Stats(threadID)
	for _, sch := range s.schemes {
		total.Add(sch.Stats(threadID))
	}
	return total
}

// TotalStats implements core.Scheme.
func (s *Store) TotalStats() core.OpStats {
	total := s.global.TotalStats()
	for _, sch := range s.schemes {
		total.Add(sch.TotalStats())
	}
	return total
}
