package shard_test

import (
	"testing"

	"hle/internal/harness"
	"hle/internal/locks"
	"hle/internal/shard"
	"hle/internal/traffic"
	"hle/internal/tsx"
)

func testMachine(procs, elems int) *tsx.Machine {
	cfg := tsx.DefaultConfig(procs)
	cfg.Seed = 1
	cfg.MemWords = elems*32 + 1<<16
	return tsx.NewMachine(cfg)
}

// TestRoutingSpreadsKeys checks that the default hash routes a uniform
// key range across all shards without starving any of them, and that
// routing is a pure function of the key.
func TestRoutingSpreadsKeys(t *testing.T) {
	m := testMachine(1, 64)
	m.RunOne(func(th *tsx.Thread) {
		d := shard.NewData(th, shard.DataConfig{Shards: 8, Backend: shard.HashTable})
		counts := make([]int, d.Shards())
		for k := uint64(0); k < 4096; k++ {
			si := d.ShardOf(k)
			if si != d.ShardOf(k) {
				t.Fatalf("routing of key %d not stable", k)
			}
			counts[si]++
		}
		for si, n := range counts {
			// Uniform would be 512 per shard; a badly mixing hash would
			// leave some shard nearly empty.
			if n < 256 || n > 768 {
				t.Errorf("shard %d got %d of 4096 keys, want ~512", si, n)
			}
		}
	})
}

// TestSizeCountersTrackStructure drives raw inserts and deletes and
// checks the striped size counters against a walk of each shard's
// structure, for both backends.
func TestSizeCountersTrackStructure(t *testing.T) {
	for _, backend := range []shard.Backend{shard.RBTree, shard.HashTable} {
		m := testMachine(1, 2048)
		m.RunOne(func(th *tsx.Thread) {
			d := shard.NewData(th, shard.DataConfig{Shards: 4, Backend: backend})
			d.Populate(th, 512, 1024)
			for i := 0; i < 2000; i++ {
				key := uint64(th.Rand().Intn(1024))
				if th.Rand().Intn(2) == 0 {
					d.Insert(th, key, key)
				} else {
					d.Delete(th, key)
				}
			}
			var tracked, walked uint64
			for si := 0; si < d.Shards(); si++ {
				ss, it := d.ShardSize(th, si), uint64(d.ShardItems(th, si))
				if ss != it {
					t.Errorf("%s shard %d: size counter %d, structure walk %d", backend, si, ss, it)
				}
				tracked += ss
				walked += it
			}
			if got := d.TotalSize(th); got != walked {
				t.Errorf("%s: TotalSize %d, walked %d", backend, got, walked)
			}
			_ = tracked
		})
	}
}

// TestExactShardCounts checks non-power-of-two shard counts route within
// range and that a custom hash is honored.
func TestExactShardCounts(t *testing.T) {
	m := testMachine(1, 64)
	m.RunOne(func(th *tsx.Thread) {
		d := shard.NewData(th, shard.DataConfig{
			Shards:  5,
			Backend: shard.HashTable,
			Hash:    func(k uint64) uint64 { return k },
		})
		for k := uint64(0); k < 100; k++ {
			if got, want := d.ShardOf(k), int(k%5); got != want {
				t.Fatalf("identity hash: key %d routed to %d, want %d", k, got, want)
			}
		}
	})
}

// TestStoreStatsAggregate runs keyed and global sections and checks the
// store's core.Scheme stats surface counts both.
func TestStoreStatsAggregate(t *testing.T) {
	m := testMachine(1, 256)
	m.RunOne(func(th *tsx.Thread) {
		d := shard.NewData(th, shard.DataConfig{Shards: 4})
		st := shard.Bind(th, d, shard.StoreConfig{})
		st.Setup(th)
		for k := uint64(0); k < 20; k++ {
			st.RunKeyed(th, k, func() { d.Insert(th, k, 1) })
		}
		if n := st.Size(th); n != 20 {
			t.Fatalf("Size = %d, want 20", n)
		}
		total := st.TotalStats()
		// 20 keyed ops + 1 global (the Size).
		if total.Ops != 21 {
			t.Errorf("TotalStats.Ops = %d, want 21", total.Ops)
		}
		if got := st.Stats(th.ID); got.Ops != 21 {
			t.Errorf("Stats(%d).Ops = %d, want 21", th.ID, got.Ops)
		}
		if st.Name() != "Sharded4[HLE/MCS]" {
			t.Errorf("Name = %q", st.Name())
		}
	})
}

// TestGlobalSnapshotsAreConsistent runs writer threads doing keyed
// inserts (never deletes) while a reader thread takes cross-shard Size
// snapshots: every snapshot must be monotonically non-decreasing (a torn
// snapshot that misses an in-flight shard would go backwards relative to
// a later complete one is caught by the final exact check too).
func TestGlobalSnapshotsAreConsistent(t *testing.T) {
	m := testMachine(4, 4096)
	var d *shard.Data
	var st *shard.Store
	m.RunOne(func(th *tsx.Thread) {
		d = shard.NewData(th, shard.DataConfig{Shards: 8})
		st = shard.Bind(th, d, shard.StoreConfig{MkScheme: shard.SchemeMakerByName("HLE")})
	})
	var snaps []uint64
	inserted := make([]int, 4)
	m.Run(4, func(th *tsx.Thread) {
		st.Setup(th)
		if th.ID == 3 {
			for i := 0; i < 40; i++ {
				snaps = append(snaps, st.Size(th))
				th.Work(500)
			}
			return
		}
		for i := 0; i < 200; i++ {
			key := uint64(th.ID*1000 + i)
			var ok bool
			st.RunKeyed(th, key, func() { ok = d.Insert(th, key, 1) })
			if ok {
				inserted[th.ID]++
			}
		}
	})
	for i := 1; i < len(snaps); i++ {
		if snaps[i] < snaps[i-1] {
			t.Fatalf("snapshot went backwards: %d then %d (all: %v)", snaps[i-1], snaps[i], snaps)
		}
	}
	want := uint64(inserted[0] + inserted[1] + inserted[2])
	m.RunOne(func(th *tsx.Thread) {
		if got := d.TotalSize(th); got != want {
			t.Errorf("final TotalSize %d, want %d inserted", got, want)
		}
	})
}

// TestSchemeMakerByName checks the name registry and that per-shard
// instances are distinct.
func TestSchemeMakerByName(t *testing.T) {
	for _, name := range []string{"Standard", "HLE", "RTM-LE", "HLE-SCM", "Adaptive"} {
		if shard.SchemeMakerByName(name) == nil {
			t.Errorf("SchemeMakerByName(%q) = nil", name)
		}
	}
	if shard.SchemeMakerByName("nope") != nil {
		t.Error("unknown scheme name should return nil")
	}
	m := testMachine(1, 256)
	m.RunOne(func(th *tsx.Thread) {
		d := shard.NewData(th, shard.DataConfig{Shards: 2})
		st := shard.Bind(th, d, shard.StoreConfig{MkScheme: shard.SchemeMakerByName("Adaptive")})
		if st.Scheme(0) == st.Scheme(1) {
			t.Error("shards share one scheme instance")
		}
	})
}

// TestHarnessRoutesOps runs a traffic workload under the harness with a
// RoutedStore and checks ops flowed to per-shard schemes (not the global
// path) and the structure stayed consistent.
func TestHarnessRoutesOps(t *testing.T) {
	tmpl := &harness.WarmTemplate{
		Machine: func() tsx.Config {
			cfg := tsx.DefaultConfig(4)
			cfg.Seed = 1
			cfg.MemWords = 512*32 + 1<<16
			return cfg
		}(),
		MkWorkload: func(th *tsx.Thread) harness.Workload {
			return traffic.New(th, shard.DataConfig{Shards: 4}, traffic.Spec{Keys: 256, Mix: harness.MixModerate, ScanPct: 2})
		},
	}
	m, w := tmpl.Fork()
	tw := w.(*traffic.Workload)
	var rs traffic.RoutedStore
	m.RunOne(func(th *tsx.Thread) {
		rs = traffic.Route(shard.Bind(th, tw.Data(), shard.StoreConfig{
			MkLock:   locks.MakerByName("MCS"),
			MkScheme: shard.SchemeMakerByName("HLE"),
		}))
	})
	res := harness.Run(m, rs, w, harness.Config{Threads: 4, CycleBudget: 60_000})
	if res.Ops.Ops == 0 {
		t.Fatal("no operations completed")
	}
	perShard := uint64(0)
	for si := 0; si < 4; si++ {
		perShard += rs.Scheme(si).TotalStats().Ops
	}
	if perShard == 0 {
		t.Fatal("no ops reached per-shard schemes: routing broken")
	}
	if rs.TotalStats().Ops != res.Ops.Ops {
		t.Errorf("store counted %d ops, harness %d", rs.TotalStats().Ops, res.Ops.Ops)
	}
	m.RunOne(func(th *tsx.Thread) {
		for si := 0; si < 4; si++ {
			if ss, it := tw.Data().ShardSize(th, si), uint64(tw.Data().ShardItems(th, si)); ss != it {
				t.Errorf("shard %d: size counter %d != structure %d", si, ss, it)
			}
		}
	})
}
