// Package shard implements an N-shard key-value store over the existing
// data structures: each shard is its own red-black tree or hash table in
// simulated memory, guarded by its own lock and its own elision-scheme
// instance. The package stages the contest ROADMAP item 1 names — static
// partitioning (sharding) against the paper's single coarse elided lock.
// Under uniform load, sharding's partitioning is unbeatable: disjoint
// shards never conflict, speculatively or otherwise. Under Zipfian skew,
// the hot keys concentrate in one shard and re-create the single-lock
// bottleneck, which is exactly where per-shard elision, SCM, or the
// adaptive controller earn their keep.
//
// The package splits along the checkpoint-fork boundary the harness uses:
//
//   - Data is the structure half — shards, per-shard size counters, the
//     routing hash. It lives entirely in simulated memory, so it is
//     captured by machine checkpoints and shared by every fork of a warm
//     template.
//   - Store (store.go) is the synchronization half — per-shard locks and
//     scheme instances. It is built per experiment point, after the fork,
//     so sibling points can measure different schemes over one image.
package shard

import (
	"fmt"

	"hle/internal/hashtable"
	"hle/internal/mem"
	"hle/internal/rbtree"
	"hle/internal/tsx"
)

// Backend selects the per-shard data structure.
type Backend uint8

// The shard backends.
const (
	// RBTree shards are red-black trees: long critical sections whose
	// conflict locality depends on tree size (Chapters 3 and 5).
	RBTree Backend = iota
	// HashTable shards are chained hash tables: uniformly short critical
	// sections (§5.2).
	HashTable
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case RBTree:
		return "rbtree"
	case HashTable:
		return "hashtable"
	}
	return fmt.Sprintf("Backend(%d)", b)
}

// DataConfig configures the structure half of a sharded store.
type DataConfig struct {
	// Shards is the shard count (default 8). Any positive count works;
	// routing is hash(key) mod Shards.
	Shards int
	// Backend selects the per-shard structure (default RBTree).
	Backend Backend
	// Buckets is the per-shard bucket count for HashTable shards
	// (default 64; hashtable.New rounds it up to a power of two).
	Buckets int
	// SizeStripes is the number of per-shard size-counter stripes
	// (default 8). Each stripe occupies its own cache line and threads
	// update stripe ID mod SizeStripes, so size maintenance does not put
	// a shared hot line inside every update's speculation — the
	// shared-cursor anti-pattern the ROADMAP's WAL remark describes.
	SizeStripes int
	// Hash routes keys to shards (shard = Hash(key) mod Shards). It must
	// be a pure function. The default is a splitmix64 finalizer, so keys
	// spread evenly whatever their structure.
	Hash func(uint64) uint64
}

func (cfg DataConfig) withDefaults() DataConfig {
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.Shards < 0 {
		panic(fmt.Sprintf("shard: bad shard count %d", cfg.Shards))
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 64
	}
	if cfg.SizeStripes == 0 {
		cfg.SizeStripes = 8
	}
	if cfg.Hash == nil {
		cfg.Hash = mixHash
	}
	return cfg
}

// mixHash is the default routing hash: the splitmix64 finalizer, the same
// mixer the hash table and seed derivation use.
func mixHash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// Data is the structure half of a sharded store: the shards themselves
// plus striped per-shard size counters, all in simulated memory. One Data
// value serves every fork of a populated machine (its Go-side state is
// immutable after construction, like a harness Workload after Populate).
//
// The raw operations (Lookup/Insert/Delete) perform no synchronization:
// callers run them inside a per-shard critical section (Store.RunKeyed)
// or during single-threaded population.
type Data struct {
	cfg    DataConfig
	trees  []*rbtree.Tree
	tables []*hashtable.Table
	// stripes[si*SizeStripes+j] is shard si's j-th size-counter line.
	stripes []mem.Addr
}

// NewData allocates the shards. Each shard's lines are labeled with an
// "sNN/" prefix so profile heatmaps attribute conflicts to shards.
func NewData(t *tsx.Thread, cfg DataConfig) *Data {
	cfg = cfg.withDefaults()
	d := &Data{cfg: cfg}
	m := t.Machine()
	for si := 0; si < cfg.Shards; si++ {
		prev := m.SetLabelPrefix(ShardLabel(si) + "/")
		switch cfg.Backend {
		case RBTree:
			d.trees = append(d.trees, rbtree.New(t))
		case HashTable:
			d.tables = append(d.tables, hashtable.New(t, cfg.Buckets))
		default:
			m.SetLabelPrefix(prev)
			panic("shard: unknown backend " + cfg.Backend.String())
		}
		for j := 0; j < cfg.SizeStripes; j++ {
			a := t.AllocLines(1)
			t.LabelLines(a, 1, "size")
			d.stripes = append(d.stripes, a)
		}
		m.SetLabelPrefix(prev)
	}
	return d
}

// ShardLabel is the canonical shard name used in line labels and
// heatmaps: "s00", "s01", ...
func ShardLabel(si int) string { return fmt.Sprintf("s%02d", si) }

// Config returns the configuration (with defaults applied).
func (d *Data) Config() DataConfig { return d.cfg }

// Shards returns the shard count.
func (d *Data) Shards() int { return d.cfg.Shards }

// ShardOf routes a key to its shard.
func (d *Data) ShardOf(key uint64) int {
	return int(d.cfg.Hash(key) % uint64(d.cfg.Shards))
}

// stripe returns the size-counter cell thread t updates in shard si.
func (d *Data) stripe(t *tsx.Thread, si int) mem.Addr {
	return d.stripes[si*d.cfg.SizeStripes+t.ID%d.cfg.SizeStripes]
}

// Lookup returns the value stored under key. Unsynchronized: run it
// inside key's shard critical section.
func (d *Data) Lookup(t *tsx.Thread, key uint64) (uint64, bool) {
	si := d.ShardOf(key)
	if d.cfg.Backend == RBTree {
		return d.trees[si].Lookup(t, key)
	}
	return d.tables[si].Lookup(t, key)
}

// Contains reports whether key is present. Unsynchronized.
func (d *Data) Contains(t *tsx.Thread, key uint64) bool {
	_, ok := d.Lookup(t, key)
	return ok
}

// Insert adds key→val, reporting whether the key was new, and maintains
// the shard's size counter. Unsynchronized: run it inside key's shard
// critical section (the counter update then commits or rolls back with
// the structural change).
func (d *Data) Insert(t *tsx.Thread, key, val uint64) bool {
	si := d.ShardOf(key)
	var ok bool
	if d.cfg.Backend == RBTree {
		ok = d.trees[si].Insert(t, key, val)
	} else {
		ok = d.tables[si].Insert(t, key, val)
	}
	if ok {
		c := d.stripe(t, si)
		t.Store(c, t.Load(c)+1)
	}
	return ok
}

// Delete removes key, reporting whether it was present, and maintains the
// shard's size counter. Unsynchronized.
func (d *Data) Delete(t *tsx.Thread, key uint64) bool {
	si := d.ShardOf(key)
	var ok bool
	if d.cfg.Backend == RBTree {
		ok = d.trees[si].Delete(t, key)
	} else {
		ok = d.tables[si].Delete(t, key)
	}
	if ok {
		c := d.stripe(t, si)
		t.Store(c, t.Load(c)-1)
	}
	return ok
}

// ShardSize sums shard si's size stripes. Unsynchronized: for a stable
// answer, run it inside a critical section covering the shard (or all
// shards, via Store.RunGlobal).
func (d *Data) ShardSize(t *tsx.Thread, si int) uint64 {
	var n uint64
	for j := 0; j < d.cfg.SizeStripes; j++ {
		n += t.Load(d.stripes[si*d.cfg.SizeStripes+j])
	}
	return n
}

// TotalSize sums every shard's size counters. Unsynchronized: a
// consistent snapshot needs all shard locks (Store.RunGlobal).
func (d *Data) TotalSize(t *tsx.Thread) uint64 {
	var n uint64
	for si := 0; si < d.cfg.Shards; si++ {
		n += d.ShardSize(t, si)
	}
	return n
}

// ShardItems walks shard si's structure and counts its elements — the
// ground truth the size counters must agree with. O(shard size);
// tests and invariant checks use it, not hot paths.
func (d *Data) ShardItems(t *tsx.Thread, si int) int {
	if d.cfg.Backend == RBTree {
		return d.trees[si].Size(t)
	}
	return d.tables[si].Size(t)
}

// Populate fills the store with count distinct random keys drawn from
// [0, domain), single-threaded (no locking). It panics if domain < count.
func (d *Data) Populate(t *tsx.Thread, count, domain int) {
	if domain < count {
		panic(fmt.Sprintf("shard: domain %d < count %d", domain, count))
	}
	filled := 0
	for filled < count {
		if d.Insert(t, uint64(t.Rand().Intn(domain)), 1) {
			filled++
		}
	}
}
