// Package rbtree implements the red-black tree data-structure benchmark of
// Chapters 3 and 5: a set/map over simulated memory, protected by a single
// global lock in the benchmarks, whose operation mix and size control the
// conflict level and critical-section length.
//
// The tree is a classic bottom-up red-black tree (CLRS-style, with parent
// pointers and no shared NIL sentinel). All node accesses go through the
// TSX engine, so lookups populate transactional read sets along the search
// path while mutations write only the spliced and recolored nodes — O(1)
// amortized, concentrated near the update point. That locality is essential
// to the paper's benchmark: conflicts between random operations become rare
// as the tree grows. (A top-down-rebalancing tree would write the root on
// every delete and serialize everything.)
package rbtree

import (
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Node field offsets (words). A node occupies nodeWords words; the
// allocator never splits it across cache lines.
const (
	offKey    = 0
	offVal    = 1
	offLeft   = 2
	offRight  = 3
	offParent = 4
	offColor  = 5 // 1 = red, 0 = black

	nodeWords = 6
)

// Tree is a red-black tree rooted at a pointer cell in simulated memory.
type Tree struct {
	rootCell mem.Addr
}

// New allocates an empty tree. The root pointer gets its own cache line:
// it is the hottest word in the structure.
func New(t *tsx.Thread) *Tree {
	return &Tree{rootCell: t.AllocLines(1)}
}

func isRed(t *tsx.Thread, n mem.Addr) bool {
	return n != mem.Nil && t.Load(n+offColor) == 1
}

// setColor stores the color only if it changes, keeping untouched nodes out
// of the write set.
func setColor(t *tsx.Thread, n mem.Addr, red uint64) {
	if t.Load(n+offColor) != red {
		t.Store(n+offColor, red)
	}
}

func (tr *Tree) root(t *tsx.Thread) mem.Addr {
	return mem.Addr(t.Load(tr.rootCell))
}

// Lookup returns the value stored under key.
func (tr *Tree) Lookup(t *tsx.Thread, key uint64) (uint64, bool) {
	n := tr.root(t)
	for n != mem.Nil {
		k := t.Load(n + offKey)
		switch {
		case key < k:
			n = mem.Addr(t.Load(n + offLeft))
		case key > k:
			n = mem.Addr(t.Load(n + offRight))
		default:
			return t.Load(n + offVal), true
		}
	}
	return 0, false
}

// Contains reports whether key is present.
func (tr *Tree) Contains(t *tsx.Thread, key uint64) bool {
	_, ok := tr.Lookup(t, key)
	return ok
}

// rotateLeft rotates around x, updating parent pointers and the root cell.
func (tr *Tree) rotateLeft(t *tsx.Thread, x mem.Addr) {
	y := mem.Addr(t.Load(x + offRight))
	yl := mem.Addr(t.Load(y + offLeft))
	t.Store(x+offRight, uint64(yl))
	if yl != mem.Nil {
		t.Store(yl+offParent, uint64(x))
	}
	xp := mem.Addr(t.Load(x + offParent))
	t.Store(y+offParent, uint64(xp))
	if xp == mem.Nil {
		t.Store(tr.rootCell, uint64(y))
	} else if mem.Addr(t.Load(xp+offLeft)) == x {
		t.Store(xp+offLeft, uint64(y))
	} else {
		t.Store(xp+offRight, uint64(y))
	}
	t.Store(y+offLeft, uint64(x))
	t.Store(x+offParent, uint64(y))
}

// rotateRight is the mirror of rotateLeft.
func (tr *Tree) rotateRight(t *tsx.Thread, x mem.Addr) {
	y := mem.Addr(t.Load(x + offLeft))
	yr := mem.Addr(t.Load(y + offRight))
	t.Store(x+offLeft, uint64(yr))
	if yr != mem.Nil {
		t.Store(yr+offParent, uint64(x))
	}
	xp := mem.Addr(t.Load(x + offParent))
	t.Store(y+offParent, uint64(xp))
	if xp == mem.Nil {
		t.Store(tr.rootCell, uint64(y))
	} else if mem.Addr(t.Load(xp+offRight)) == x {
		t.Store(xp+offRight, uint64(y))
	} else {
		t.Store(xp+offLeft, uint64(y))
	}
	t.Store(y+offRight, uint64(x))
	t.Store(x+offParent, uint64(y))
}

// Insert adds key→val, returning true if the key was absent. An existing
// key's value is updated and false returned.
func (tr *Tree) Insert(t *tsx.Thread, key, val uint64) bool {
	var parent mem.Addr
	n := tr.root(t)
	for n != mem.Nil {
		k := t.Load(n + offKey)
		switch {
		case key < k:
			parent = n
			n = mem.Addr(t.Load(n + offLeft))
		case key > k:
			parent = n
			n = mem.Addr(t.Load(n + offRight))
		default:
			if t.Load(n+offVal) != val {
				t.Store(n+offVal, val)
			}
			return false
		}
	}
	z := t.Alloc(nodeWords)
	t.Store(z+offKey, key)
	if val != 0 {
		t.Store(z+offVal, val)
	}
	t.Store(z+offColor, 1)
	if parent == mem.Nil {
		t.Store(tr.rootCell, uint64(z))
	} else {
		t.Store(z+offParent, uint64(parent))
		if key < t.Load(parent+offKey) {
			t.Store(parent+offLeft, uint64(z))
		} else {
			t.Store(parent+offRight, uint64(z))
		}
	}
	tr.insertFixup(t, z)
	return true
}

func (tr *Tree) insertFixup(t *tsx.Thread, z mem.Addr) {
	for {
		p := mem.Addr(t.Load(z + offParent))
		if p == mem.Nil || !isRed(t, p) {
			break
		}
		g := mem.Addr(t.Load(p + offParent)) // grandparent exists: p is red, root is black
		if p == mem.Addr(t.Load(g+offLeft)) {
			u := mem.Addr(t.Load(g + offRight)) // uncle
			if isRed(t, u) {
				setColor(t, p, 0)
				setColor(t, u, 0)
				setColor(t, g, 1)
				z = g
				continue
			}
			if z == mem.Addr(t.Load(p+offRight)) {
				z = p
				tr.rotateLeft(t, z)
				p = mem.Addr(t.Load(z + offParent))
			}
			setColor(t, p, 0)
			setColor(t, g, 1)
			tr.rotateRight(t, g)
		} else {
			u := mem.Addr(t.Load(g + offLeft))
			if isRed(t, u) {
				setColor(t, p, 0)
				setColor(t, u, 0)
				setColor(t, g, 1)
				z = g
				continue
			}
			if z == mem.Addr(t.Load(p+offLeft)) {
				z = p
				tr.rotateRight(t, z)
				p = mem.Addr(t.Load(z + offParent))
			}
			setColor(t, p, 0)
			setColor(t, g, 1)
			tr.rotateLeft(t, g)
		}
	}
	setColor(t, tr.root(t), 0)
}

// transplant replaces subtree u with subtree v (v may be nil); vParent is
// needed because v can be nil and we track parents explicitly.
func (tr *Tree) transplant(t *tsx.Thread, u, v mem.Addr) {
	up := mem.Addr(t.Load(u + offParent))
	if up == mem.Nil {
		t.Store(tr.rootCell, uint64(v))
	} else if u == mem.Addr(t.Load(up+offLeft)) {
		t.Store(up+offLeft, uint64(v))
	} else {
		t.Store(up+offRight, uint64(v))
	}
	if v != mem.Nil {
		t.Store(v+offParent, uint64(up))
	}
}

// Delete removes key, returning true if it was present.
func (tr *Tree) Delete(t *tsx.Thread, key uint64) bool {
	z := tr.root(t)
	for z != mem.Nil {
		k := t.Load(z + offKey)
		switch {
		case key < k:
			z = mem.Addr(t.Load(z + offLeft))
		case key > k:
			z = mem.Addr(t.Load(z + offRight))
		default:
			tr.deleteNode(t, z)
			return true
		}
	}
	return false
}

func (tr *Tree) deleteNode(t *tsx.Thread, z mem.Addr) {
	y := z
	yWasRed := isRed(t, y)
	var x, xParent mem.Addr

	zl := mem.Addr(t.Load(z + offLeft))
	zr := mem.Addr(t.Load(z + offRight))
	switch {
	case zl == mem.Nil:
		x = zr
		xParent = mem.Addr(t.Load(z + offParent))
		tr.transplant(t, z, zr)
	case zr == mem.Nil:
		x = zl
		xParent = mem.Addr(t.Load(z + offParent))
		tr.transplant(t, z, zl)
	default:
		// y = successor of z = min of right subtree.
		y = zr
		for l := mem.Addr(t.Load(y + offLeft)); l != mem.Nil; l = mem.Addr(t.Load(y + offLeft)) {
			y = l
		}
		yWasRed = isRed(t, y)
		x = mem.Addr(t.Load(y + offRight))
		if y == zr {
			xParent = y
		} else {
			xParent = mem.Addr(t.Load(y + offParent))
			tr.transplant(t, y, x)
			t.Store(y+offRight, uint64(zr))
			t.Store(zr+offParent, uint64(y))
		}
		tr.transplant(t, z, y)
		t.Store(y+offLeft, uint64(zl))
		t.Store(zl+offParent, uint64(y))
		setColor(t, y, t.Load(z+offColor))
	}
	t.Free(z, nodeWords)
	if !yWasRed {
		tr.deleteFixup(t, x, xParent)
	}
}

// deleteFixup restores red-black balance after removing a black node; x is
// the doubly-black node (possibly nil, which is why xParent is tracked
// explicitly instead of through a shared sentinel).
func (tr *Tree) deleteFixup(t *tsx.Thread, x, xParent mem.Addr) {
	for x != tr.root(t) && !isRed(t, x) {
		if xParent == mem.Nil {
			break
		}
		if x == mem.Addr(t.Load(xParent+offLeft)) {
			w := mem.Addr(t.Load(xParent + offRight))
			if isRed(t, w) {
				setColor(t, w, 0)
				setColor(t, xParent, 1)
				tr.rotateLeft(t, xParent)
				w = mem.Addr(t.Load(xParent + offRight))
			}
			wl := mem.Addr(t.Load(w + offLeft))
			wr := mem.Addr(t.Load(w + offRight))
			if !isRed(t, wl) && !isRed(t, wr) {
				setColor(t, w, 1)
				x = xParent
				xParent = mem.Addr(t.Load(x + offParent))
				continue
			}
			if !isRed(t, wr) {
				setColor(t, wl, 0)
				setColor(t, w, 1)
				tr.rotateRight(t, w)
				w = mem.Addr(t.Load(xParent + offRight))
				wr = mem.Addr(t.Load(w + offRight))
			}
			setColor(t, w, t.Load(xParent+offColor))
			setColor(t, xParent, 0)
			setColor(t, wr, 0)
			tr.rotateLeft(t, xParent)
			return
		}
		w := mem.Addr(t.Load(xParent + offLeft))
		if isRed(t, w) {
			setColor(t, w, 0)
			setColor(t, xParent, 1)
			tr.rotateRight(t, xParent)
			w = mem.Addr(t.Load(xParent + offLeft))
		}
		wl := mem.Addr(t.Load(w + offLeft))
		wr := mem.Addr(t.Load(w + offRight))
		if !isRed(t, wl) && !isRed(t, wr) {
			setColor(t, w, 1)
			x = xParent
			xParent = mem.Addr(t.Load(x + offParent))
			continue
		}
		if !isRed(t, wl) {
			setColor(t, wr, 0)
			setColor(t, w, 1)
			tr.rotateLeft(t, w)
			w = mem.Addr(t.Load(xParent + offLeft))
			wl = mem.Addr(t.Load(w + offLeft))
		}
		setColor(t, w, t.Load(xParent+offColor))
		setColor(t, xParent, 0)
		setColor(t, wl, 0)
		tr.rotateRight(t, xParent)
		return
	}
	if x != mem.Nil {
		setColor(t, x, 0)
	}
}

// Size returns the number of keys (a full traversal; test/setup use only).
func (tr *Tree) Size(t *tsx.Thread) int {
	var walk func(n mem.Addr) int
	walk = func(n mem.Addr) int {
		if n == mem.Nil {
			return 0
		}
		return 1 + walk(mem.Addr(t.Load(n+offLeft))) + walk(mem.Addr(t.Load(n+offRight)))
	}
	return walk(tr.root(t))
}

// Keys returns all keys in order (test use only).
func (tr *Tree) Keys(t *tsx.Thread) []uint64 {
	var out []uint64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == mem.Nil {
			return
		}
		walk(mem.Addr(t.Load(n + offLeft)))
		out = append(out, t.Load(n+offKey))
		walk(mem.Addr(t.Load(n + offRight)))
	}
	walk(tr.root(t))
	return out
}

// Validate checks the red-black, BST and parent-pointer invariants,
// returning the black height or panicking with the violation.
func (tr *Tree) Validate(t *tsx.Thread) int {
	root := tr.root(t)
	if isRed(t, root) {
		panic("rbtree: red root")
	}
	if root != mem.Nil && mem.Addr(t.Load(root+offParent)) != mem.Nil {
		panic("rbtree: root has a parent")
	}
	var check func(n, parent mem.Addr, min, max uint64, hasMin, hasMax bool) int
	check = func(n, parent mem.Addr, min, max uint64, hasMin, hasMax bool) int {
		if n == mem.Nil {
			return 1
		}
		if mem.Addr(t.Load(n+offParent)) != parent {
			panic("rbtree: bad parent pointer")
		}
		k := t.Load(n + offKey)
		if hasMin && k <= min {
			panic("rbtree: BST order violated (left)")
		}
		if hasMax && k >= max {
			panic("rbtree: BST order violated (right)")
		}
		l := mem.Addr(t.Load(n + offLeft))
		r := mem.Addr(t.Load(n + offRight))
		if isRed(t, n) && (isRed(t, l) || isRed(t, r)) {
			panic("rbtree: red-red violation")
		}
		hl := check(l, n, min, k, hasMin, true)
		hr := check(r, n, k, max, true, hasMax)
		if hl != hr {
			panic("rbtree: unequal black heights")
		}
		if !isRed(t, n) {
			hl++
		}
		return hl
	}
	return check(root, mem.Nil, 0, 0, false, false)
}
