package rbtree_test

import (
	"testing"

	"hle/internal/rbtree"
	"hle/internal/tsx"
)

// FuzzTreeOps drives random operation sequences against the map model,
// validating red-black invariants along the way. `go test` exercises the
// seed corpus; `go test -fuzz=FuzzTreeOps ./internal/rbtree` explores.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{255, 254, 1, 1, 1, 128, 7})
	f.Add([]byte{42})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		m := newMachine(1, 1)
		m.RunOne(func(th *tsx.Thread) {
			tr := rbtree.New(th)
			model := map[uint64]uint64{}
			for i, b := range ops {
				key := uint64(b % 32)
				switch (b >> 5) % 3 {
				case 0:
					_, had := model[key]
					if got := tr.Insert(th, key, uint64(i)+1); got == had {
						t.Fatalf("op %d: Insert(%d)=%v, model had=%v", i, key, got, had)
					}
					model[key] = uint64(i) + 1
				case 1:
					_, had := model[key]
					if got := tr.Delete(th, key); got != had {
						t.Fatalf("op %d: Delete(%d)=%v, had=%v", i, key, got, had)
					}
					delete(model, key)
				default:
					want, had := model[key]
					got, ok := tr.Lookup(th, key)
					if ok != had || (had && got != want) {
						t.Fatalf("op %d: Lookup(%d)=%d,%v want %d,%v", i, key, got, ok, want, had)
					}
				}
				if i%32 == 31 {
					tr.Validate(th)
				}
			}
			tr.Validate(th)
			if tr.Size(th) != len(model) {
				t.Fatalf("size %d, model %d", tr.Size(th), len(model))
			}
		})
	})
}
