package rbtree_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/rbtree"
	"hle/internal/tsx"
)

func newMachine(n int, seed int64) *tsx.Machine {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0
	cfg.MemWords = 1 << 20
	return tsx.NewMachine(cfg)
}

func TestInsertLookupDelete(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		tr := rbtree.New(th)
		if tr.Contains(th, 5) {
			t.Fatal("empty tree contains 5")
		}
		if !tr.Insert(th, 5, 50) {
			t.Fatal("insert of new key returned false")
		}
		if tr.Insert(th, 5, 51) {
			t.Fatal("re-insert returned true")
		}
		if v, ok := tr.Lookup(th, 5); !ok || v != 51 {
			t.Fatalf("lookup = %d,%v want 51,true", v, ok)
		}
		if !tr.Delete(th, 5) {
			t.Fatal("delete of present key returned false")
		}
		if tr.Delete(th, 5) {
			t.Fatal("delete of absent key returned true")
		}
		if tr.Size(th) != 0 {
			t.Fatal("tree not empty")
		}
	})
}

// TestModelEquivalence runs a long random op sequence against a Go map
// model, validating invariants as it goes.
func TestModelEquivalence(t *testing.T) {
	m := newMachine(1, 2)
	m.RunOne(func(th *tsx.Thread) {
		tr := rbtree.New(th)
		model := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 6000; i++ {
			key := uint64(rng.Intn(300))
			switch rng.Intn(3) {
			case 0:
				val := uint64(rng.Intn(1000)) + 1
				_, had := model[key]
				if got := tr.Insert(th, key, val); got == had {
					t.Fatalf("op %d: Insert(%d) = %v, model had=%v", i, key, got, had)
				}
				model[key] = val
			case 1:
				_, had := model[key]
				if got := tr.Delete(th, key); got != had {
					t.Fatalf("op %d: Delete(%d) = %v, model had=%v", i, key, got, had)
				}
				delete(model, key)
			default:
				want, had := model[key]
				got, ok := tr.Lookup(th, key)
				if ok != had || (had && got != want) {
					t.Fatalf("op %d: Lookup(%d) = %d,%v want %d,%v", i, key, got, ok, want, had)
				}
			}
			if i%500 == 0 {
				tr.Validate(th)
				if tr.Size(th) != len(model) {
					t.Fatalf("op %d: size %d, model %d", i, tr.Size(th), len(model))
				}
			}
		}
		tr.Validate(th)
		keys := tr.Keys(th)
		if len(keys) != len(model) {
			t.Fatalf("final size %d, model %d", len(keys), len(model))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatal("keys not strictly sorted")
			}
		}
		for _, k := range keys {
			if _, ok := model[k]; !ok {
				t.Fatalf("tree has key %d not in model", k)
			}
		}
	})
}

// TestInvariantsProperty: random insert/delete batches preserve red-black
// invariants (property-based).
func TestInvariantsProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		m := newMachine(1, seed)
		good := true
		m.RunOne(func(th *tsx.Thread) {
			tr := rbtree.New(th)
			for _, op := range ops {
				key := uint64(op % 64)
				if op&0x8000 != 0 {
					tr.Delete(th, key)
				} else {
					tr.Insert(th, key, uint64(op))
				}
			}
			defer func() {
				if recover() != nil {
					good = false
				}
			}()
			tr.Validate(th)
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBlackHeightLogarithmic: a large tree's black height stays
// logarithmic, evidence the rebalancing works.
func TestBlackHeightLogarithmic(t *testing.T) {
	m := newMachine(1, 3)
	m.RunOne(func(th *tsx.Thread) {
		tr := rbtree.New(th)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 4000; i++ {
			tr.Insert(th, uint64(rng.Int63n(1<<40)), 1)
		}
		bh := tr.Validate(th)
		// 4000 nodes: black height must be at most ~log2(n)+1.
		if bh > 13 {
			t.Fatalf("black height %d too large for 4000 nodes", bh)
		}
	})
}

// TestConcurrentUnderSchemes: concurrent tree operations under each elision
// scheme preserve invariants and size accounting.
func TestConcurrentUnderSchemes(t *testing.T) {
	type mk struct {
		name  string
		build func(th *tsx.Thread) core.Scheme
	}
	for _, smk := range []mk{
		{"Standard-TTAS", func(th *tsx.Thread) core.Scheme { return core.NewStandard(locks.NewTTAS(th)) }},
		{"HLE-TTAS", func(th *tsx.Thread) core.Scheme { return core.NewHLE(locks.NewTTAS(th)) }},
		{"HLE-MCS", func(th *tsx.Thread) core.Scheme { return core.NewHLE(locks.NewMCS(th)) }},
		{"HLESCM-MCS", func(th *tsx.Thread) core.Scheme {
			return core.NewHLESCM(locks.NewMCS(th), locks.NewMCS(th), core.SCMConfig{})
		}},
		{"OptSLR-TTAS", func(th *tsx.Thread) core.Scheme { return core.NewSLR(locks.NewTTAS(th), 0) }},
	} {
		smk := smk
		t.Run(smk.name, func(t *testing.T) {
			m := newMachine(8, 17)
			var s core.Scheme
			var tr *rbtree.Tree
			initial := 0
			m.RunOne(func(th *tsx.Thread) {
				s = smk.build(th)
				tr = rbtree.New(th)
				rng := rand.New(rand.NewSource(5))
				for i := 0; i < 64; i++ {
					if tr.Insert(th, uint64(rng.Intn(128)), 1) {
						initial++
					}
				}
			})
			inserted := make([]int, 8)
			deleted := make([]int, 8)
			m.Run(8, func(th *tsx.Thread) {
				s.Setup(th)
				for i := 0; i < 120; i++ {
					key := uint64(th.Rand().Intn(128))
					switch th.Rand().Intn(10) {
					case 0, 1:
						var ok bool
						s.Run(th, func() { ok = tr.Insert(th, key, 1) })
						if ok {
							inserted[th.ID]++
						}
					case 2, 3:
						var ok bool
						s.Run(th, func() { ok = tr.Delete(th, key) })
						if ok {
							deleted[th.ID]++
						}
					default:
						s.Run(th, func() { tr.Contains(th, key) })
					}
				}
			})
			m.RunOne(func(th *tsx.Thread) {
				tr.Validate(th)
				want := initial
				for id := 0; id < 8; id++ {
					want += inserted[id] - deleted[id]
				}
				if got := tr.Size(th); got != want {
					t.Fatalf("size %d, want %d (initial %d)", got, want, initial)
				}
			})
		})
	}
}
