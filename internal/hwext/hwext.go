// Package hwext packages the paper's Chapter 7 proposal: extending
// Haswell's HLE implementation to distinguish conflicts on the elided lock
// cache line from conflicts on data lines, entirely in hardware and with no
// cache-coherence protocol changes.
//
// The mechanism itself lives in the TSX engine (internal/tsx), enabled by
// tsx.Config.HWExt, because it modifies conflict detection:
//
//   - Under HWExt, the elided lock line is not placed in the read set
//     (unless accessed as data), so a non-speculative lock acquisition does
//     not abort speculative threads.
//   - A speculative thread keeps running as long as it accesses lines
//     already in its read/write sets ("data already in its caches").
//   - On a miss (a new line, read or write) while the lock is held, the
//     thread suspends until the lock is released, then resumes. Data
//     conflicts abort it as usual, which is what makes the scheme safe
//     against the Lemma 1 inconsistency.
//
// This package provides the scheme wrapper used in reports and the
// machine-configuration helper; its tests demonstrate the chapter's claims,
// including the Lemma 1 counterexample being prevented.
package hwext

import (
	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/tsx"
)

// EnableOn returns cfg with the Chapter 7 extension switched on.
func EnableOn(cfg tsx.Config) tsx.Config {
	cfg.HWExt = true
	return cfg
}

// Scheme is plain HLE running on a machine with the hardware extension
// enabled; it exists so reports can distinguish "HLE" from "HLE+HWExt".
// Using it on a machine without tsx.Config.HWExt is plain HLE.
type Scheme struct {
	*core.HLE
}

// New wraps lock in the HLE scheme intended for HWExt machines.
func New(lock locks.Lock) *Scheme {
	return &Scheme{HLE: core.NewHLE(lock)}
}

// Name implements core.Scheme.
func (s *Scheme) Name() string { return "HLE-HWExt" }
