package hwext

import "hle/internal/tsx"

// This file packages the simulator variants for the two lazy-subscription
// papers referenced from PAPERS.md alongside the Chapter 7 extension:
// Dice et al.'s "Hardware extensions to make lazy subscription safe"
// (the fixed and deliberately-naive commit pipelines) and the FORTH
// limited read/write-set HTM design (asymmetric set capacities). As with
// HWExt itself, the mechanisms live in internal/tsx; these helpers select
// them on a machine configuration.

// EnableLazyFixed returns cfg with lazy lock subscription in its FIXED
// form: commit-time lock check ordered before the write-set drain, and
// abort on a doom arriving during the commit window. This is the variant
// the model checker proves clean and the only one experiments should use.
func EnableLazyFixed(cfg tsx.Config) tsx.Config {
	cfg.Subscription = tsx.SubLazy
	cfg.LazyNoCheckFirst = false
	cfg.LazyNoWindowAbort = false
	cfg.LazyNoCommitCheck = false
	return cfg
}

// EnableLazyNaive returns cfg with NAIVE lazy subscription: the lock
// check runs after the drain and dooms arriving during the commit window
// are ignored — both Dice et al. fixes off. Unsafe by construction; it
// exists so internal/explore can reproduce the hazard counterexamples.
// Never use it in experiments.
func EnableLazyNaive(cfg tsx.Config) tsx.Config {
	cfg.Subscription = tsx.SubLazy
	cfg.LazyNoCheckFirst = true
	cfg.LazyNoWindowAbort = true
	cfg.LazyNoCommitCheck = false
	return cfg
}

// LimitSets returns cfg with FORTH-style asymmetric transactional set
// capacities: readLines of precisely-tracked read set (no imprecise
// overflow tier — reads past the limit abort) and writeLines of write
// set. The design point trades the big imprecise read tracker for a
// small exact one, which moves capacity aborts from writes to reads and
// changes which hazards lazy subscription's savings hide behind.
func LimitSets(cfg tsx.Config, readLines, writeLines int) tsx.Config {
	cfg.L1ReadLines = readLines
	cfg.ReadSetLines = readLines
	cfg.WriteSetLines = writeLines
	return cfg
}
