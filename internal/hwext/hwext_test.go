package hwext_test

import (
	"testing"

	"hle/internal/core"
	"hle/internal/hwext"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

func newMachine(n int, seed int64, ext bool) *tsx.Machine {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0
	if ext {
		cfg = hwext.EnableOn(cfg)
	}
	return tsx.NewMachine(cfg)
}

// TestSerializableUnderExtension: correctness is preserved — concurrent
// increments through HLE on an HWExt machine lose no updates.
func TestSerializableUnderExtension(t *testing.T) {
	m := newMachine(6, 3, true)
	var s core.Scheme
	var ctr mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = hwext.New(locks.NewTTAS(th))
		ctr = th.AllocLines(1)
	})
	const perThread = 150
	m.Run(6, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < perThread; i++ {
			s.Run(th, func() {
				v := th.Load(ctr)
				th.Work(3)
				th.Store(ctr, v+1)
			})
		}
	})
	var got uint64
	m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
	if got != 6*perThread {
		t.Fatalf("counter = %d, want %d", got, 6*perThread)
	}
}

// TestSurvivesLockAcquisition is the chapter's headline behaviour: a
// speculative thread whose data does not conflict with a non-speculative
// lock holder completes speculatively, instead of being aborted by the
// lock-line conflict.
func TestSurvivesLockAcquisition(t *testing.T) {
	run := func(ext bool) core.OpStats {
		m := newMachine(8, 3, ext)
		var s core.Scheme
		var l locks.Lock
		var hot mem.Addr
		var private [8]mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			l = locks.NewTTAS(th)
			if ext {
				s = hwext.New(l)
			} else {
				s = core.NewHLE(l)
			}
			hot = th.AllocLines(1)
			for i := range private {
				private[i] = th.AllocLines(1)
			}
		})
		m.Run(8, func(th *tsx.Thread) {
			s.Setup(th)
			for i := 0; i < 150; i++ {
				if th.ID < 2 {
					s.Run(th, func() { // conflicting pair
						v := th.Load(hot)
						th.Work(10)
						th.Store(hot, v+1)
					})
				} else {
					s.Run(th, func() { // independent threads
						v := th.Load(private[th.ID])
						th.Work(10)
						th.Store(private[th.ID], v+1)
					})
				}
			}
		})
		var agg core.OpStats
		for id := 2; id < 8; id++ {
			agg.Add(s.Stats(id))
		}
		return agg
	}
	base := run(false)
	ext := run(true)
	// A small residue of non-speculative completions remains even under
	// the extension (threads arriving while the lock is held still abort
	// out of their doomed spin, as §3 describes), but it must be well
	// below the plain-HLE avalanche level.
	if ext.NonSpecFraction() > 0.1 {
		t.Errorf("HWExt: independent threads completed non-speculatively %.2f of the time; extension should shield them",
			ext.NonSpecFraction())
	}
	if ext.NonSpecFraction() >= base.NonSpecFraction() {
		t.Errorf("HWExt non-spec fraction %.2f should beat plain HLE %.2f",
			ext.NonSpecFraction(), base.NonSpecFraction())
	}
	if ext.AttemptsPerOp() >= base.AttemptsPerOp() {
		t.Errorf("HWExt attempts/op %.2f should beat plain HLE %.2f",
			ext.AttemptsPerOp(), base.AttemptsPerOp())
	}
}

// TestLemma1Prevented encodes the chapter's Lemma 1 example: T1
// transactionally runs {load X; load Y}, T2 non-speculatively runs
// {store Y; store X} under the same lock. A naive lock-ignoring design lets
// T1 commit having seen X=old, Y=new; the extension's suspend-on-miss rule
// must prevent any committed inconsistent snapshot.
func TestLemma1Prevented(t *testing.T) {
	m := newMachine(2, 5, true)
	var s core.Scheme
	var l locks.Lock
	var x, y mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		l = locks.NewTTAS(th)
		s = hwext.New(l)
		x = th.AllocLines(1)
		y = th.AllocLines(1)
	})
	violations := 0
	m.Run(2, func(th *tsx.Thread) {
		s.Setup(th)
		if th.ID == 0 {
			for i := 0; i < 200; i++ {
				bad := false
				s.Run(th, func() {
					bad = false
					vx := th.Load(x)
					th.Work(11)
					vy := th.Load(y)
					if vx != vy {
						bad = true
					}
				})
				if bad {
					violations++
				}
			}
			return
		}
		for i := 0; i < 200; i++ {
			// The writer takes the lock non-speculatively (the
			// Lemma 1 scenario): standard acquire, two stores with
			// a window between them.
			l.Acquire(th)
			v := th.Load(y)
			th.Store(y, v+1)
			th.Work(11)
			th.Store(x, v+1)
			l.Release(th)
			th.Work(7)
		}
	})
	if violations > 0 {
		t.Fatalf("%d committed inconsistent snapshots under HWExt", violations)
	}
}

// TestSuspensionResumes: a speculative thread that misses while the lock is
// held must resume and complete after the release rather than abort.
func TestSuspensionResumes(t *testing.T) {
	m := newMachine(2, 7, true)
	var s core.Scheme
	var l locks.Lock
	var spread mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		l = locks.NewTTAS(th)
		s = hwext.New(l)
		spread = th.AllocLines(0 + 64)
	})
	m.Run(2, func(th *tsx.Thread) {
		s.Setup(th)
		if th.ID == 1 {
			// Hold the lock non-speculatively across a long window.
			l.Acquire(th)
			th.Work(5000)
			l.Release(th)
			return
		}
		th.Work(100) // let the holder take the lock first
		r := s.Run(th, func() {
			// Touch many fresh lines: each is a miss; with the
			// lock held each miss suspends until release.
			for i := 0; i < 8; i++ {
				v := th.Load(spread + mem.Addr(i*mem.LineWords))
				th.Store(spread+mem.Addr(i*mem.LineWords), v+1)
			}
		})
		if !r.Spec {
			t.Error("speculative run did not survive the held lock")
		}
		if th.Clock() < 5000 {
			t.Errorf("speculative run finished at %d, before the lock release; suspension did not happen", th.Clock())
		}
	})
}

// TestName pins the report name.
func TestName(t *testing.T) {
	m := newMachine(1, 1, true)
	m.RunOne(func(th *tsx.Thread) {
		if got := hwext.New(locks.NewTTAS(th)).Name(); got != "HLE-HWExt" {
			t.Errorf("Name = %q", got)
		}
	})
}
