package explore

import (
	"strings"
	"testing"
)

// naiveLazyConfigs are the hazard-reproduction configurations: the naive
// lazy-subscription variants (no commit-time lock check ordered before
// the drain, no commit-window abort — both Dice et al. fixes off) on the
// unmodified test-and-test-and-set lock.
func naiveLazyConfigs() []Config {
	return []Config{
		{Scheme: "RTM-LE-lazy-naive", Lock: "TTAS", Threads: 2, Ops: 1},
		{Scheme: "HLE-lazy-naive", Lock: "TTAS", Threads: 2, Ops: 1},
	}
}

// TestNaiveLazyHazards reproduces the two hazard classes of naive lazy
// subscription (Dice, Harris, Kogan, Lev, Marathe: "Hardware extensions
// to make lazy subscription safe") as minimized counterexample schedules:
//
//	(a) consistency — a transaction keeps running while a pessimistic
//	    lock holder is mid-critical-section, observes the holder's
//	    partial writes (x updated, y not yet), and still commits.
//	(b) serializability — a transaction already past its commit point
//	    drains its write set over a concurrent update it never saw,
//	    losing an operation.
//
// The serializability hazard has the shallower counterexample (a pure
// commit-window race: the victim is doomed while parked at the commit
// step and drains anyway — no pessimistic fallback needed), so the
// unfiltered breadth-first search always reports it; OnlyKind pins the
// deeper consistency hazard as a distinct second class. Both must be
// found for both naive schemes — that is the ">= 2 distinct hazard
// counterexamples" acceptance gate.
func TestNaiveLazyHazards(t *testing.T) {
	for _, base := range naiveLazyConfigs() {
		kinds := map[string]bool{}
		for _, only := range []string{"", "consistency"} {
			cfg := base
			cfg.OnlyKind = only
			r := Run(cfg)
			if r.Violation == nil {
				t.Errorf("%s (OnlyKind=%q): naive lazy subscription produced no violation",
					cfg.Label(), only)
				continue
			}
			v := r.Violation
			t.Logf("%s (OnlyKind=%q): %s", cfg.Label(), only, v.Error())
			kinds[v.Kind] = true
			if len(v.Schedule) == 0 || len(v.Schedule) > 48 {
				t.Errorf("%s: counterexample schedule has %d decisions, want a minimal one",
					cfg.Label(), len(v.Schedule))
			}
			if v.Failure == nil || v.Failure.Dump() == "" {
				t.Errorf("%s: violation carries no diagnostic dump", cfg.Label())
			}
		}
		if len(kinds) < 2 {
			t.Errorf("%s: found %d distinct hazard classes %v, want 2 (serializability + consistency)",
				base.Label(), len(kinds), kinds)
		}
		if !kinds["serializability"] {
			t.Errorf("%s: hazard (b) — commit drain racing a concurrent update — not reproduced", base.Label())
		}
		if !kinds["consistency"] {
			t.Errorf("%s: hazard (a) — inconsistent observation under a held lock — not reproduced", base.Label())
		}
	}
}

// TestLazyHazardGoldenSchedules pins the exact minimal counterexample for
// each hazard class on the canonical configuration (RTM-LE-lazy-naive on
// TTAS, 2x1). The breadth-first search is deterministic, so these are
// goldens: a change means the reproduction — the heart of this checker —
// changed, and the new schedule must be re-derived by hand before
// updating. FormatSchedule prints the per-decision chosen thread.
func TestLazyHazardGoldenSchedules(t *testing.T) {
	golden := []struct {
		name     string
		onlyKind string
		schedule string
	}{
		// Hazard (b): thread 0 runs its transaction up to the commit
		// window; thread 1 runs its whole operation (its ticket fetch
		// dooms thread 0's parked commit) and publishes; thread 0
		// resumes and — without the commit-window abort — drains its
		// stale write set over thread 1's update.
		{"hazard-b-serializability", "serializability",
			"0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.1.1.1.1"},
		// Hazard (a): thread 0 aborts, falls back to the pessimistic
		// lock, and stops mid-critical-section between its two counter
		// stores; thread 1's retry reads x new but y old (an impossible
		// snapshot under eager subscription, which would have aborted at
		// the lock acquisition) and — without the commit-time lock
		// check — commits having observed it.
		{"hazard-a-consistency", "consistency",
			"0.0.1.1.1.1.1.1.1.1.0.0.0.1.0.0.0.0.0"},
	}
	for i, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			cfg := Config{Scheme: "RTM-LE-lazy-naive", Lock: "TTAS", Threads: 2, Ops: 1,
				OnlyKind: g.onlyKind}
			r := Run(cfg)
			if r.Violation == nil {
				t.Fatalf("hazard not reproduced")
			}
			if r.Violation.Kind != g.onlyKind {
				t.Fatalf("violation kind %q, want %q (detail: %s)",
					r.Violation.Kind, g.onlyKind, r.Violation.Detail)
			}
			got := FormatSchedule(r.Violation.Schedule)
			if got != golden[i].schedule {
				t.Errorf("counterexample schedule changed:\n  got:  %s\n  want: %s\ndetail: %s",
					got, golden[i].schedule, r.Violation.Detail)
			}
			// Log the full counterexample (schedule, classification, and
			// the replay dump) so a -v run leaves a complete diagnostic
			// record — CI archives this output as the hazard artifact.
			t.Logf("%s: schedule %s\n%s\n%s", g.name, got, r.Violation.Error(),
				r.Violation.Failure.Dump())
		})
	}
}

// TestFixedLazyBatteryClean proves both hardware fixes: the fixed lazy
// variants (commit-time check ordered before the drain + commit-window
// abort) run the identical configurations that break their naive
// counterparts — the full sweep-lock battery — with zero violations of
// any kind. The naive variants must NOT appear in AllSchemes: the
// battery is a zero-violation sweep and the naive schemes exist to fail.
func TestFixedLazyBatteryClean(t *testing.T) {
	for _, s := range AllSchemes {
		if strings.Contains(s, "naive") {
			t.Fatalf("battery contains deliberately unsafe scheme %q", s)
		}
	}
	for _, scheme := range []string{"HLE-lazy", "RTM-LE-lazy"} {
		for _, lock := range SweepLocks {
			cfg := Config{Scheme: scheme, Lock: lock, Threads: 2, Ops: 1}
			r := Run(cfg)
			t.Log(r.Line())
			if r.Violation != nil {
				t.Errorf("%s: fixed lazy variant violated: %s\n%s",
					cfg.Label(), r.Violation.Error(), r.Violation.Failure.Dump())
			}
			if r.Schedules == 0 {
				t.Errorf("%s: no complete schedule explored", cfg.Label())
			}
		}
	}
}
