// Package explore is a bounded stateless model checker for the simulated
// machine: it enumerates thread interleavings of small configurations
// (2-3 threads executing 2-3 critical sections each) by replaying schedule
// prefixes through the scheduler's strategy hook (sim.Strategy) and
// branching at every grant, and checks every execution for the properties
// the paper proves — serializability, mutual exclusion, post-release
// lock-word restoration (Theorems 1-2), snapshot consistency (Lemma 1) —
// plus scheme progress bounds.
//
// The search is breadth-first over schedule prefixes, so the first
// violation found is a minimal-length counterexample, and it is replayed
// deterministically: a reported schedule reproduces the violation exactly.
// Three prunings keep the state space tractable:
//
//   - A state-fingerprint cache (the machine-fingerprint idiom of the
//     engine's golden tests: memory words, line metadata, per-thread
//     clocks, statistics and in-flight transaction state) collapses
//     commuting "diamond" interleavings, which dominate the raw schedule
//     count. Per-thread clocks are pure functions of each thread's local
//     history, so genuinely equivalent interleavings really do collide.
//   - Sleep sets (Godefroid) skip re-exploring a step that an explored
//     sibling already covers, unless an intervening dependent step could
//     distinguish the orders. Dependency is judged conservatively from
//     per-grant access footprints plus transactional read/write sets, with
//     transaction-boundary grants treated as dependent with everything.
//     Combined with the fingerprint cache the standard soundness fix
//     applies: the cache stores the set of procs expanded from each state,
//     and a revisit with new allowed procs re-expands just those.
//   - A stutter bound caps each thread's write-free grants between
//     state-changing (write or transaction-boundary) grants by anyone:
//     unbounded spin loops (a waiter polling a held lock) otherwise make
//     the schedule tree infinite. Re-polling unchanged shared state is
//     idempotent and straight-line code never runs that many write-free
//     steps between writes, so the bound only cuts polling loops — and
//     when every unfinished thread is capped at once, nothing can ever
//     change again, which the explorer reports as deadlock/livelock.
//
// Exploration is bounded — by depth, by a solo-execution grant budget, and
// by a replay budget — so its guarantee is exhaustiveness up to those
// bounds, reported alongside the counts. Every frontier wave fans out
// across host workers (harness.ParallelFor); dedup and enqueueing happen
// sequentially in declaration order afterwards, so the explorer's output
// is byte-identical at any parallelism.
package explore

import (
	"fmt"
	"strings"

	"hle/internal/harness"
)

// Config describes one exploration: a scheme/lock pair, a thread and
// per-thread operation count, and the search bounds. Zero bound fields
// select defaults.
type Config struct {
	// Scheme is a harness scheme name (see harness.SchemeSpec); NoLock is
	// not explorable (it has no mutual-exclusion obligation to check).
	Scheme string
	// Lock is a locks.MakerByName name.
	Lock string
	// Threads and Ops set the configuration size: Threads threads each
	// run Ops critical sections.
	Threads int
	Ops     int

	// Mutant, when non-empty, replaces part of the configuration with a
	// deliberately broken variant (see Mutants): the mutation tests that
	// prove the checker's teeth.
	Mutant string

	// MaxDepth bounds the number of scheduling decisions per schedule
	// (default 600); deeper frontiers are counted as truncated.
	MaxDepth int
	// SoloBound bounds the large scheduler slices (2^20 cycles each)
	// granted to a sole remaining thread to finish (default 24); exceeding
	// it is reported as a progress violation, since with every other
	// thread finished a correct scheme always terminates. The default
	// clears the engine's longest legitimate solo gap: the Chapter 7
	// suspend-on-miss loop waits up to 2^20 steps of Costs.Wait (20
	// cycles, so ~2.1e7 cycles total) before its spurious-abort escape
	// hatch fires, which an elided thread needs when its recorded lock
	// word can never recur (e.g. a queue-lock tail captured while a real
	// holder was enqueued).
	SoloBound int
	// MaxReplays bounds the total replays (default 200000); exhausting it
	// marks the result truncated.
	MaxReplays int
	// StutterBound caps the write-free grants a thread may take between
	// state-changing (write or transaction-boundary) grants by anyone
	// (default 4). Re-polling unchanged shared state is idempotent, so
	// the cap only cuts spin loops — and when every unfinished thread is
	// capped at once, nothing can ever change again: that is reported as
	// a progress violation (deadlock/livelock).
	StutterBound int
	// AttemptsBound flags any single operation taking more than this many
	// execution attempts as a progress violation (default 32; the paper's
	// schemes bound retries at 10 before falling back to the lock).
	AttemptsBound uint64

	// ChainDepth is how many frontiers past its own node one replay may
	// keep executing, banking each extra frontier's outcome for the wave
	// that will need it (default 2, the empirical sweet spot — deeper
	// chains speculate past where the wave's sleep-set pruning actually
	// lands, wasting banked work; negative disables chaining, forcing
	// every node to replay from scratch — the differential baseline).
	// Chained outcomes are bit-identical to the scratch replays they
	// replace (strategy-driven runs are pure functions of their decision
	// sequence), so this changes wall clock, never results.
	ChainDepth int
	// CacheMB caps the banked-outcome cache's memory (default 64;
	// negative: unlimited). Outcomes that do not fit are dropped — the
	// node replays from scratch instead — and counted in the result.
	CacheMB int
	// ValidateForks makes every fork also replay from scratch and
	// cross-check the banked outcome bit-for-bit, counting mismatches in
	// Result.ForkMismatches and preferring the scratch outcome. It exists
	// for the differential tests and for auditing; it is slower than not
	// forking at all.
	ValidateForks bool

	// OnlyKind, when non-empty, makes the search ignore violations of
	// every other kind: the breadth-first order then yields the minimal
	// counterexample OF THAT CLASS. Naive lazy subscription violates both
	// serializability and consistency, but the serializability
	// counterexample (a commit-window race, no pessimistic fallback
	// needed) is strictly shallower, so an unfiltered search always
	// reports it; OnlyKind="consistency" pins the deeper
	// inconsistent-observation-under-a-held-lock hazard as its own
	// class. Hazard-reproduction tests only — a clean configuration is
	// clean for every value of OnlyKind.
	OnlyKind string

	// NoSleepSets disables sleep-set pruning; the cross-check tests use
	// it to verify pruning does not lose states.
	NoSleepSets bool
	// TrackStates records every distinct state fingerprint in the result
	// (for the pruning cross-check tests).
	TrackStates bool

	// Parallel is the host worker count each frontier wave fans out
	// across (<= 0 means GOMAXPROCS). The result is identical for any
	// value.
	Parallel int
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.Threads == 0 {
		d.Threads = 2
	}
	if d.Ops == 0 {
		d.Ops = 2
	}
	if d.MaxDepth == 0 {
		d.MaxDepth = 600
	}
	if d.SoloBound == 0 {
		d.SoloBound = 24
	}
	if d.MaxReplays == 0 {
		d.MaxReplays = 200000
	}
	if d.StutterBound == 0 {
		d.StutterBound = 4
	}
	if d.AttemptsBound == 0 {
		d.AttemptsBound = 32
	}
	if d.ChainDepth == 0 {
		d.ChainDepth = 2
	}
	if d.CacheMB == 0 {
		d.CacheMB = 64
	}
	return d
}

// Label renders the configuration for reports and failure dumps.
func (c *Config) Label() string {
	s := fmt.Sprintf("%s/%s %dx%d", c.Scheme, c.Lock, c.Threads, c.Ops)
	if c.Mutant != "" {
		s += " mutant=" + c.Mutant
	}
	return s
}

// Violation is one property failure, with its reproducing schedule and a
// bounded deterministic diagnostic dump.
type Violation struct {
	// Kind is the property violated: serializability, mutex, consistency,
	// lock-restore, or progress.
	Kind string
	// Detail is a one-line description.
	Detail string
	// Schedule is the branching decisions (proc IDs) reproducing the
	// violation; forced decisions (a sole runnable proc) are not listed.
	Schedule []uint8
	// Failure is the diagnostic dump (harness failure-dump machinery).
	Failure *harness.Failure
}

// Error renders the violation as a single line.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s: %s (schedule %s)", v.Kind, v.Detail, FormatSchedule(v.Schedule))
}

// FormatSchedule renders a decision sequence as dot-separated proc IDs.
func FormatSchedule(s []uint8) string {
	if len(s) == 0 {
		return "(empty)"
	}
	var b strings.Builder
	for i, p := range s {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	return b.String()
}

// Result is the outcome of exploring one configuration.
type Result struct {
	Config Config

	// States counts distinct state fingerprints visited.
	States uint64
	// Schedules counts maximal schedules: terminal executions reached.
	Schedules uint64
	// Truncated counts schedules cut by a bound rather than finished.
	Truncated uint64
	// Replays counts prefix replays executed.
	Replays uint64
	// Decisions counts branching scheduling decisions across all replays.
	Decisions uint64

	// FpPruned counts frontier nodes collapsed into an already-visited
	// state; SleepPruned and StutterPruned count child branches skipped
	// by the sleep-set and stutter prunings.
	FpPruned      uint64
	SleepPruned   uint64
	StutterPruned uint64

	// MaxFrontier is the deepest branching decision reached.
	MaxFrontier int

	// Forks counts nodes satisfied from a banked chained-replay outcome
	// (no machine was built or run for them); ScratchReplays counts nodes
	// that actually replayed. Forks + ScratchReplays == Replays.
	Forks          uint64
	ScratchReplays uint64
	// SpecWasted counts banked outcomes that were never consumed (the
	// merge pruned or reordered away the predicted child); CacheDropped
	// counts outcomes rejected by the cache's byte budget.
	SpecWasted   uint64
	CacheDropped uint64
	// CachePeakBytes is the banked-outcome cache's high-water mark.
	CachePeakBytes uint64
	// ForkMismatches counts banked outcomes that disagreed with a scratch
	// replay (only under Config.ValidateForks; always 0 unless the bank
	// is corrupted — the stale-checkpoint mutation tests prove that).
	ForkMismatches uint64
	// SuffixHist is the replayed-work histogram: bucket 0 counts forked
	// nodes (suffix length 0 — nothing re-executed), the others count
	// scratch replays by prefix length (see SuffixHistLabels).
	SuffixHist [8]uint64

	// Violation is the first (minimal) property failure, or nil.
	Violation *Violation

	// StateFps holds every distinct state fingerprint in first-visit
	// order (only when Config.TrackStates).
	StateFps []uint64
}

// Line renders the result as one aligned report line.
func (r *Result) Line() string {
	status := "ok"
	if r.Violation != nil {
		status = "VIOLATION " + r.Violation.Kind
	}
	return fmt.Sprintf("%-28s states=%-7d schedules=%-7d truncated=%-5d replays=%-7d fp-pruned=%-6d sleep-pruned=%-6d stutter-pruned=%-6d %s",
		r.Config.Label(), r.States, r.Schedules, r.Truncated, r.Replays,
		r.FpPruned, r.SleepPruned, r.StutterPruned, status)
}

// node is one frontier entry: a schedule prefix plus the bookkeeping the
// prunings need when it is processed.
type node struct {
	prefix []uint8
	// inherit is the parent's final sleep set, to be filtered against
	// this node's own incoming edge.
	inherit []sleepEntry
	// firstSib is the wave index of the first enqueued child of the same
	// parent; earlier siblings occupy [firstSib, own index).
	firstSib int
	// stutter counts each proc's write-free grants since the last
	// state-changing grant by anyone (parent's view; this node's own
	// incoming grant is folded in when it is processed).
	stutter [maxExploreProcs]uint8
}

// maxExploreProcs bounds the thread count the explorer's per-node arrays
// support; exploration targets 2-3 threads.
const maxExploreProcs = 8

// sleepEntry is one sleep-set member: a proc whose step from the current
// state an explored sibling already covers, with the step's footprint.
type sleepEntry struct {
	proc uint8
	e    edge
}

// Run explores one configuration exhaustively (up to its bounds) and
// returns the counts and the first violation, if any.
func Run(cfg Config) *Result {
	c := cfg.withDefaults()
	if c.Threads > maxExploreProcs {
		panic("explore: too many threads (exploration targets small configurations)")
	}
	res := &Result{Config: c}
	ex := newExplorer(&c, res)

	wave := []node{{prefix: nil, firstSib: 0}}
	outs := make([]runOutcome, 0, 64)
	visited := make(map[uint64]uint64) // fingerprint -> expanded-procs mask
	budget := c.MaxReplays
	chainDepth := c.ChainDepth
	if chainDepth < 0 {
		chainDepth = 0
	}
	cache := newSpecCache(int64(c.CacheMB) << 20)
	var miss []int
	var chains [][]chainOut

	for depth := 0; len(wave) > 0 && depth <= c.MaxDepth; depth++ {
		if len(wave) > budget {
			// Replay budget exhausted: everything still enqueued is
			// truncated, not explored.
			res.Truncated += uint64(len(wave))
			break
		}
		budget -= len(wave)
		outs = outs[:0]
		for range wave {
			outs = append(outs, runOutcome{})
		}
		// Fork nodes whose outcome a chained replay already banked; only
		// the misses replay. A banked outcome is bit-identical to the
		// scratch replay it replaces, so forking changes wall clock,
		// never results (ValidateForks cross-checks the claim per fork).
		miss = miss[:0]
		for i := range wave {
			o, ok := cache.take(wave[i].prefix)
			if !ok {
				miss = append(miss, i)
				continue
			}
			if c.ValidateForks {
				scratch := ex.replay(wave[i].prefix)
				if !outcomesEqual(&o, &scratch) {
					res.ForkMismatches++
					o = scratch
				}
			}
			outs[i] = o
			res.Forks++
			res.SuffixHist[0]++
		}
		mi := miss
		chains = chains[:0]
		for range mi {
			chains = append(chains, nil)
		}
		harness.ParallelFor(c.Parallel, len(mi), func(k int) {
			i := mi[k]
			outs[i], chains[k] = ex.replayNode(&wave[i], visited, chainDepth)
		})
		res.Replays += uint64(len(wave))
		res.ScratchReplays += uint64(len(mi))
		for _, i := range mi {
			res.SuffixHist[suffixBucket(len(wave[i].prefix))]++
		}
		// Bank this wave's chained outcomes in replay order — the
		// deterministic insert order keeps cache contents, and with them
		// every statistic, identical at any Parallel — then drop the
		// generation the search has outgrown: breadth-first search visits
		// each prefix length exactly once, so unconsumed entries at this
		// wave's length are unreachable forever.
		for k := range mi {
			for _, co := range chains[k] {
				cache.put(co.prefix, co.out)
			}
		}
		cache.purgeLen(depth, &res.SpecWasted)

		// Sequential merge in declaration order: deterministic at any
		// Parallel, and breadth-first, so the first violation is minimal.
		var next []node
		for i := range wave {
			nd := &wave[i]
			out := &outs[i]
			if out.violation != nil {
				if res.Violation == nil {
					// Replays run without the flight recorder; re-replay
					// the one violating schedule ring-enabled so the
					// reported dump carries trace events.
					res.Violation = ex.rediagnose(out.violation)
				}
				res.Truncated++
				continue
			}
			if out.terminal {
				res.Schedules++
				continue
			}
			if out.truncated {
				res.Truncated++
				continue
			}
			if depth > res.MaxFrontier {
				res.MaxFrontier = depth
			}
			res.Decisions++

			// Fold the node's own incoming grant into the stutter
			// counters: a write-free grant bumps its thread, a
			// state-changing one resets everyone (whatever a polling
			// thread re-reads may now differ).
			myProc := -1
			if len(nd.prefix) > 0 {
				myProc = int(nd.prefix[len(nd.prefix)-1])
			}
			stutter := nd.stutter
			if myProc >= 0 {
				if writeFree(&out.lastEdge) {
					stutter[myProc]++
				} else {
					stutter = [maxExploreProcs]uint8{}
				}
			}

			// Deadlock rule: if every unfinished thread has exhausted
			// its write-free budget, no thread can change shared state
			// again — re-polls are idempotent — so the configuration
			// can never finish from here.
			allCapped := true
			for _, p := range out.enabled {
				if stutter[p] < uint8(c.StutterBound) {
					allCapped = false
					break
				}
			}
			if allCapped {
				if res.Violation == nil {
					res.Violation = ex.diagnose(nd.prefix, "progress",
						"every unfinished thread is re-polling unchanged shared state (deadlock/livelock)")
				}
				res.Truncated++
				continue
			}

			// Final sleep set: parent's, plus explored earlier siblings,
			// minus everything dependent with the edge just taken.
			var sleep []sleepEntry
			if !c.NoSleepSets && myProc != -1 {
				for _, se := range nd.inherit {
					if !dependent(&se.e, &out.lastEdge) {
						sleep = append(sleep, se)
					}
				}
				for j := nd.firstSib; j < i; j++ {
					sib := &wave[j]
					sp := sib.prefix[len(sib.prefix)-1]
					se := sleepEntry{proc: sp, e: outs[j].lastEdge}
					if !dependent(&se.e, &out.lastEdge) {
						sleep = append(sleep, se)
					}
				}
			}

			// Candidate children, in ascending proc order.
			var newMask uint64
			var children []uint8
			for _, p := range out.enabled {
				if inSleep(sleep, p) {
					res.SleepPruned++
					continue
				}
				if stutter[p] >= uint8(c.StutterBound) {
					res.StutterPruned++
					continue
				}
				if visited[out.fp]&(1<<p) != 0 {
					continue
				}
				newMask |= 1 << p
				children = append(children, p)
			}
			if mask, seen := visited[out.fp]; seen {
				if newMask == 0 {
					res.FpPruned++
					continue
				}
				visited[out.fp] = mask | newMask
			} else {
				visited[out.fp] = newMask
				res.States++
				if c.TrackStates {
					res.StateFps = append(res.StateFps, out.fp)
				}
				if newMask == 0 {
					// Every enabled step is covered by a sibling: the
					// schedule closes here without being terminal.
					continue
				}
			}

			firstSib := len(next)
			for _, p := range children {
				pre := make([]uint8, len(nd.prefix)+1)
				copy(pre, nd.prefix)
				pre[len(nd.prefix)] = p
				next = append(next, node{
					prefix:   pre,
					inherit:  sleep,
					firstSib: firstSib,
					stutter:  stutter,
				})
			}
		}
		if res.Violation != nil {
			res.Truncated += uint64(len(next))
			break
		}
		if depth == c.MaxDepth {
			res.Truncated += uint64(len(next))
			break
		}
		wave = next
	}
	cache.drainAll(&res.SpecWasted)
	res.CacheDropped = cache.dropped
	res.CachePeakBytes = uint64(cache.peak)
	return res
}

func inSleep(sleep []sleepEntry, p uint8) bool {
	for _, se := range sleep {
		if se.proc == p {
			return true
		}
	}
	return false
}
