package explore

import (
	"fmt"
	"reflect"

	"hle/internal/check"
	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/hwext"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/sim"
	"hle/internal/tsx"
)

// access is one simulated memory access observed during a grant.
type access struct {
	line  int
	write bool
}

// edge is the footprint of one grant: the accesses it performed, the
// granted thread's pre-existing transactional footprint (a foreign access
// to any of those lines dooms the transaction, so it matters for
// commutativity), and whether the grant crossed a transaction boundary
// (begin/commit/abort touch line metadata wholesale and are treated as
// dependent with everything).
type edge struct {
	accesses []access
	txLines  []access
	boundary bool
}

// writeFree reports whether the grant performed no write and crossed no
// transaction boundary — the stutter bound only caps runs of such grants.
func writeFree(e *edge) bool {
	if e.boundary {
		return false
	}
	for _, a := range e.accesses {
		if a.write {
			return false
		}
	}
	return true
}

// dependent conservatively decides whether two grants from the same state
// may fail to commute. Boundary grants depend on everything; so do silent
// grants (no observed access: engine-internal waits — a spin's PAUSE leg,
// the HWExt suspend loop — poll shared state without going through the
// access path, so their order against writes is observable). Otherwise two
// grants depend iff they touch a common line with a write involved on
// either side, counting the threads' transactional footprints as touched
// (a foreign write dooms the transaction).
func dependent(a, b *edge) bool {
	if a.boundary || b.boundary {
		return true
	}
	if len(a.accesses) == 0 || len(b.accesses) == 0 {
		return true
	}
	for _, x := range a.accesses {
		if hits(b, x) {
			return true
		}
	}
	for _, y := range b.accesses {
		if hits(a, y) {
			return true
		}
	}
	return false
}

func hits(e *edge, x access) bool {
	for _, a := range e.accesses {
		if a.line == x.line && (a.write || x.write) {
			return true
		}
	}
	for _, a := range e.txLines {
		if a.line == x.line && (a.write || x.write) {
			return true
		}
	}
	return false
}

func addFootprint(s *[]access, line int, write bool) {
	for i := range *s {
		if (*s)[i].line == line {
			if write {
				(*s)[i].write = true
			}
			return
		}
	}
	*s = append(*s, access{line: line, write: write})
}

// runOutcome is what one prefix replay reports back to the search.
type runOutcome struct {
	// fp and enabled describe the frontier state (prefix consumed, next
	// decision pending); meaningful only when neither terminal nor
	// truncated.
	fp      uint64
	enabled []uint8
	// lastEdge is the footprint of the final prefix grant.
	lastEdge edge
	// terminal: every thread finished and the terminal checks ran.
	terminal bool
	// truncated: a replay bound stopped the run.
	truncated bool
	// violation is the first property failure observed, or nil.
	violation *Violation
}

// chainOut is one outcome banked by a chained replay beyond its own node:
// exactly what a scratch replay of prefix would report. A chained replay is
// the search's stand-in for forking a mid-run machine — goroutine state
// (open transactions, scheduler positions) cannot be checkpointed, but a
// live run CAN keep executing past its frontier, and because strategy-mode
// runs are pure functions of their decision sequence the banked outcome is
// bit-identical to the replay it saves.
type chainOut struct {
	prefix []uint8
	out    runOutcome
}

type explorer struct {
	cfg *Config
	// tmpl is the config's constructed-machine image, captured once and
	// forked by every flight-recorder-off replay. nil when the config's
	// lock isn't value-clonable (mutant locks): those construct per replay.
	tmpl *replayTemplate
}

func newExplorer(cfg *Config, _ *Result) *explorer {
	return &explorer{cfg: cfg, tmpl: buildTemplate(cfg)}
}

// replayTemplate is a config's post-construction machine image. The
// simulated-memory half — lock cells, scheme state, the recorder's ticket
// cell, the counter lines — lives in the checkpoint; the Go-side driver
// objects are value-cloned per fork (cloneLock, Recorder.Fresh,
// assembleScheme), so a fork costs a memory copy instead of re-executing
// every constructor through the engine.
type replayTemplate struct {
	cp        *tsx.Checkpoint
	main      locks.Lock
	aux       []locks.Lock
	rec       *check.Recorder
	x, y      mem.Addr
	lockWords []mem.Addr
	preLock   []uint64
}

// buildTemplate constructs a config's machine once and checkpoints it.
// It returns nil when the lock can't be value-cloned; the per-replay
// construction path remains as fallback (and stays the only path for
// flight-recorder-on diagnosis machines, whose config differs).
func buildTemplate(c *Config) *replayTemplate {
	tp := &replayTemplate{}
	m := tsx.NewMachine(machineConfig(c, false))
	m.RunOne(func(t *tsx.Thread) {
		tp.main = buildLock(c, t)
		tp.aux = buildAuxLocks(c, t)
		tp.rec = check.NewRecorder(t)
		tp.x = t.AllocLines(1)
		tp.y = t.AllocLines(1)
		tp.lockWords = adjustedLockWords(tp.main)
		for _, a := range tp.lockWords {
			tp.preLock = append(tp.preLock, m.Mem.Read(a))
		}
	})
	if cloneLock(tp.main) == nil {
		return nil
	}
	for _, a := range tp.aux {
		if cloneLock(a) == nil {
			return nil
		}
	}
	tp.cp = m.Checkpoint()
	return tp
}

// fpHash accumulates a state fingerprint one word at a time. Each mix is a
// splitmix64-style avalanche round over the running state xor the input
// word — order-dependent like the FNV chain it replaced, but one round of
// multiply-shift instead of eight byte steps, since fingerprinting every
// memory word of every explored state is the single hottest loop in a
// sweep. Values are never persisted or compared across binaries; only
// distinctness within one search matters.
type fpHash uint64

func newFpHash() fpHash { return 0x9E3779B97F4A7C15 }

func (h *fpHash) mix(v uint64) {
	x := uint64(*h) ^ v
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 29
	x *= 0x94D049BB133111EB
	*h = fpHash(x ^ x>>32)
}

// machineConfig builds the deterministic exploration machine: no cost
// jitter, no spurious aborts, no randomness consumed anywhere, so a state
// is exactly a function of the schedule that reached it. The flight
// recorder is normally off — it taxes every replay but only matters on the
// one violating schedule, which the search re-replays ring-enabled
// (rediagnose) to regenerate the dump with trace events.
func machineConfig(c *Config, ring bool) tsx.Config {
	mcfg := tsx.Config{
		Procs:         c.Threads,
		Seed:          1,
		MemWords:      1 << 9, // the workloads use a few dozen words; small memory keeps per-replay setup cheap
		WriteSetLines: 512,
		L1ReadLines:   512,
		ReadSetLines:  131072,
		EvictExponent: 8,
		PauseAborts:   true,
		MaxTxAccesses: 1 << 20,
		CostJitter:    -1, // negative: disabled (zero would select the default)
		Costs:         tsx.DefaultCosts(),
	}
	if ring {
		mcfg.TraceRing = 64
	}
	if c.Scheme == "HLE-HWExt" {
		mcfg = hwext.EnableOn(mcfg)
	}
	if c.Scheme == "HLE-SCM-ideal" {
		mcfg.NestHLEInRTM = true
	}
	switch c.Scheme {
	case "HLE-lazy", "RTM-LE-lazy":
		// Fixed lazy subscription: both Dice et al. fixes on. The scheme's
		// Setup also selects the mode per thread; setting it machine-wide
		// keeps the config self-describing.
		mcfg = hwext.EnableLazyFixed(mcfg)
	case "HLE-lazy-naive", "RTM-LE-lazy-naive":
		// Naive lazy subscription: both fixes off — the hazard-reproduction
		// configurations. Never part of the zero-violation battery.
		mcfg = hwext.EnableLazyNaive(mcfg)
	}
	switch c.Mutant {
	case MutantHWExtNoSuspend:
		mcfg = hwext.EnableOn(mcfg)
		mcfg.HWExtNoSuspend = true
	case MutantLazySkipCheck:
		mcfg = hwext.EnableLazyFixed(mcfg)
		mcfg.LazyNoCommitCheck = true
	case MutantLazyDrainFirst:
		mcfg = hwext.EnableLazyFixed(mcfg)
		mcfg.LazyNoCheckFirst = true
	case MutantLazyNoWindowAbort:
		mcfg = hwext.EnableLazyFixed(mcfg)
		mcfg.LazyNoWindowAbort = true
	}
	return mcfg
}

// replayer replays one schedule prefix on a fresh machine. It is the
// sim.Strategy driving the run, the owner of the edge capture fed by the
// monitor hooks, and the workload body with its inline property checks.
type replayer struct {
	cfg    *Config
	prefix []uint8
	pos    int
	out    runOutcome

	m       *tsx.Machine
	threads []*tsx.Thread
	lock    locks.Lock
	scheme  core.Scheme
	rec     *check.Recorder
	x, y    mem.Addr

	// lockWords/preLock hold the adjusted lock's word addresses and their
	// pre-run values for the Theorems 1-2 restoration check.
	lockWords []mem.Addr
	preLock   []uint64

	opsDone []int
	allSpec bool
	// nonSpecDepth counts threads currently inside the critical section
	// non-speculatively; 2 is a mutual-exclusion violation. Speculative
	// runs are excluded: elided critical sections may legitimately
	// overlap, and a speculative run that breaks isolation is caught by
	// the serializability and snapshot checks instead.
	nonSpecDepth int

	// Per-thread completing-attempt scratch (ticket, result, observed
	// x != y), rewritten by every attempt; the values of the completing
	// attempt survive.
	seqScratch []uint64
	resScratch []uint64
	incon      []bool

	// Edge capture: cur accumulates the open grant's footprint, txf the
	// per-thread live transactional footprints, lastEdge the closed
	// footprint of the most recent frontier-bound grant.
	cur       edge
	txf       [][]access
	finalNext bool
	finalOpen bool
	lastEdge  edge

	soloGrants int
	stopped    bool

	// vio is the first property failure observed anywhere in the run;
	// every outcome emitted from then on carries it.
	vio *Violation

	// Chain state (zero: plain scratch replay). chainLeft budgets how many
	// frontiers past its own node this replay may bank; sleep, stutter and
	// visited carry the node's search bookkeeping so the chain can mirror
	// the merge loop's child selection. visited is shared and read-only:
	// the merge only writes it after the wave's replays have joined.
	chainLeft int
	sleep     []sleepEntry
	stutter   [maxExploreProcs]uint8
	visited   map[uint64]uint64
	chain     []chainOut
	outSet    bool
}

// newReplayer builds a replayer and its machine with the configuration's
// lock, scheme, recorder and counter cells constructed in simulated memory.
func (e *explorer) newReplayer(prefix []uint8, ring bool) *replayer {
	c := e.cfg
	r := &replayer{
		cfg:        c,
		prefix:     prefix,
		threads:    make([]*tsx.Thread, c.Threads),
		opsDone:    make([]int, c.Threads),
		seqScratch: make([]uint64, c.Threads),
		resScratch: make([]uint64, c.Threads),
		incon:      make([]bool, c.Threads),
		txf:        make([][]access, c.Threads),
		allSpec:    true,
	}
	if tp := e.tmpl; tp != nil && !ring {
		r.m = tsx.FromCheckpoint(tp.cp)
		main := cloneLock(tp.main)
		var aux []locks.Lock
		if len(tp.aux) > 0 {
			aux = make([]locks.Lock, len(tp.aux))
			for i, a := range tp.aux {
				aux[i] = cloneLock(a)
			}
		}
		r.lock = main
		r.scheme = assembleScheme(c, main, aux)
		r.rec = tp.rec.Fresh()
		r.x, r.y = tp.x, tp.y
		r.lockWords, r.preLock = tp.lockWords, tp.preLock
		return r
	}
	m := tsx.NewMachine(machineConfig(c, ring))
	r.m = m
	m.RunOne(func(t *tsx.Thread) {
		r.lock = buildLock(c, t)
		aux := buildAuxLocks(c, t)
		r.scheme = assembleScheme(c, r.lock, aux)
		r.rec = check.NewRecorder(t)
		r.x = t.AllocLines(1)
		r.y = t.AllocLines(1)
		r.lockWords = adjustedLockWords(r.lock)
		for _, a := range r.lockWords {
			r.preLock = append(r.preLock, m.Mem.Read(a))
		}
	})
	return r
}

// run executes the replay to its stopping point and emits the outcome(s).
func (r *replayer) run() {
	m := r.m
	m.SetObserver((*monitor)(r))
	m.SetInjector((*monInj)(r))
	m.SetStrategy(r)
	m.Run(r.cfg.Threads, r.body)
	m.SetStrategy(nil)
	m.SetInjector(nil)
	m.SetObserver(nil)
	if !r.stopped {
		// Every thread finished during the last grant: the run is
		// terminal at the prefix consumed so far (which a chained replay
		// may have extended past its own node).
		r.terminalChecks()
		r.emit(runOutcome{terminal: true})
	}
}

// emit finishes an outcome — attaching the run's first violation and the
// closed final-grant footprint — and routes it: the first outcome belongs
// to the replay's own node, every later one is banked for the prefix the
// chain had reached.
func (r *replayer) emit(o runOutcome) {
	o.violation = r.vio
	o.lastEdge = r.lastEdge
	if !r.outSet {
		r.out = o
		r.outSet = true
		return
	}
	r.chain = append(r.chain, chainOut{
		prefix: append([]uint8(nil), r.prefix...),
		out:    o,
	})
}

func (e *explorer) replay(prefix []uint8) runOutcome {
	r := e.newReplayer(prefix, false)
	r.run()
	return r.out
}

// replayNode replays one frontier node and, chain budget permitting, keeps
// executing along the merge loop's predicted first-child line, banking one
// outcome per extra frontier.
func (e *explorer) replayNode(nd *node, visited map[uint64]uint64, chainDepth int) (runOutcome, []chainOut) {
	r := e.newReplayer(nd.prefix, false)
	r.chainLeft = chainDepth
	r.sleep = nd.inherit
	r.stutter = nd.stutter
	r.visited = visited
	r.run()
	return r.out, r.chain
}

// diagnose re-replays a prefix solely to attach a machine-state dump to a
// violation the search itself concluded (the deadlock rule, which is
// decided from edge footprints, not from inside a replay).
func (e *explorer) diagnose(prefix []uint8, kind, detail string) *Violation {
	r := e.newReplayer(prefix, true)
	r.run()
	r.setViolation(kind, detail)
	return r.vio
}

// rediagnose re-replays a violation's schedule with the flight recorder
// enabled and returns the regenerated violation, now carrying trace
// events. Replays run ring-off (the recorder taxes every grant of every
// replay for a dump only one schedule ever needs); determinism makes the
// re-run fail identically at the same point.
func (e *explorer) rediagnose(v *Violation) *Violation {
	r := e.newReplayer(v.Schedule, true)
	r.run()
	if r.vio == nil {
		return v
	}
	return r.vio
}

// buildLock and buildScheme construct the configuration's lock and scheme
// in simulated memory, substituting the seeded mutant variants when asked.
func buildLock(c *Config, t *tsx.Thread) locks.Lock {
	if c.Mutant == MutantCLHBlindRelease {
		return newBrokenCLH(t)
	}
	mk := locks.MakerByName(c.Lock)
	if mk == nil {
		panic("explore: unknown lock " + c.Lock)
	}
	return mk(t)
}

// buildAuxLocks allocates the auxiliary locks c's scheme needs, in the
// order assembleScheme consumes them. Splitting allocation from assembly
// keeps scheme construction replayable from a checkpoint: the allocations
// (simulated-memory effects) are captured once in the template image,
// while assembly is pure Go and runs per fork.
func buildAuxLocks(c *Config, t *tsx.Thread) []locks.Lock {
	if c.Mutant == MutantSCMLazy {
		return nil
	}
	switch c.Scheme {
	case "HLE-SCM", "HLE-SCM-ideal", "Opt-SLR-SCM":
		return []locks.Lock{locks.NewMCS(t)}
	case "HLE-SCM-multi":
		return []locks.Lock{locks.NewMCS(t), locks.NewMCS(t), locks.NewMCS(t), locks.NewMCS(t)}
	}
	return nil
}

// assembleScheme wraps already-constructed locks in c's scheme. It performs
// no simulated-memory accesses, so it is safe to call outside RunOne — in
// particular on locks cloned from a checkpointed template.
func assembleScheme(c *Config, main locks.Lock, aux []locks.Lock) core.Scheme {
	if c.Mutant == MutantSCMLazy {
		return newLazySCM(main)
	}
	switch c.Scheme {
	case "Standard":
		return core.NewStandard(main)
	case "HLE":
		return core.NewHLE(main)
	case "HLE-HWExt":
		return hwext.New(main)
	case "RTM-LE":
		return core.NewRTMLE(main)
	case "HLE-lazy", "HLE-lazy-naive":
		// The naive variant is the same scheme code on a machine whose
		// LazyNo* flags disable the commit-pipeline fixes (machineConfig).
		return core.NewHLELazy(main)
	case "RTM-LE-lazy", "RTM-LE-lazy-naive":
		return core.NewRTMLELazy(main)
	case "HLE-SCM":
		return core.NewHLESCM(main, aux[0], core.SCMConfig{})
	case "HLE-SCM-ideal":
		return core.NewHLESCM(main, aux[0], core.SCMConfig{Ideal: true})
	case "HLE-SCM-multi":
		return core.NewHLESCMMulti(main, aux, core.SCMConfig{})
	case "Pes-SLR":
		return core.NewPessimisticSLR(main)
	case "Opt-SLR":
		return core.NewSLR(main, 0)
	case "Opt-SLR-SCM":
		return core.NewSLRSCM(main, aux[0], core.SCMConfig{})
	}
	panic("explore: unknown scheme " + c.Scheme)
}

// cloneLock value-copies a constructed lock. Every stock lock is a plain
// value type — simulated-memory addresses plus fixed-size per-thread
// scratch arrays — so a struct copy yields an independent Go-side handle
// onto the same simulated-memory lock, exactly as the constructor left it.
// Unknown (mutant) lock types return nil and callers fall back to full
// per-replay construction.
func cloneLock(l locks.Lock) locks.Lock {
	switch l := l.(type) {
	case *locks.TTAS:
		c := *l
		return &c
	case *locks.MCS:
		c := *l
		return &c
	case *locks.Ticket:
		c := *l
		return &c
	case *locks.AdjustedTicket:
		c := *l
		return &c
	case *locks.CLH:
		c := *l
		return &c
	case *locks.AdjustedCLH:
		c := *l
		return &c
	}
	return nil
}

// adjustedLockWords returns the lock words the adjusted-lock invariant
// checks watch (empty for locks without an adjusted protocol).
func adjustedLockWords(l locks.Lock) []mem.Addr {
	switch l := l.(type) {
	case *locks.AdjustedTicket:
		return []mem.Addr{l.Addr(), l.Addr() + 1}
	case *locks.AdjustedCLH:
		return []mem.Addr{l.Addr()}
	}
	return nil
}

// Pick implements sim.Strategy: it forces the prefix, captures the frontier
// state when the prefix runs out, and plays forced endgame grants (a sole
// unfinished thread) to termination. Branching grants are single-step —
// target one past the chosen thread's clock, executing exactly one pending
// engine step, the finest interleaving granularity the machine exposes —
// while interior runs of same-proc prefix decisions are batched into one
// step-counted grant (sim.Decision.Steps), which is observably identical
// and saves a token handoff per batched decision. After capturing its own
// frontier a chain-budgeted replay keeps going: it predicts the merge
// loop's first child, plays it as one more single-step grant, and banks
// the next frontier too (see specNext).
func (r *replayer) Pick(choices []sim.Choice) sim.Decision {
	r.closeEdge()
	if len(choices) == 1 {
		// Endgame: with one unfinished thread there is nothing to
		// branch on; play it out in large slices, bounded. A correct
		// scheme finishes well inside the first slice (nothing is
		// contended any more); a thread that keeps yielding is spinning
		// on a condition no one is left to establish.
		r.soloGrants++
		if r.soloGrants > r.cfg.SoloBound {
			r.setViolation("progress", fmt.Sprintf(
				"thread %d cannot finish alone within %d large slices (every other thread is done: a correct scheme must terminate)",
				choices[0].ProcID, r.cfg.SoloBound))
			r.emit(runOutcome{truncated: true})
			r.stopped = true
			return sim.Decision{Stop: true}
		}
		r.openEdge(choices[0].ProcID)
		const soloSlice = 1 << 20 // cycles per endgame grant
		return sim.Decision{Index: 0, Target: choices[0].Clock + soloSlice}
	}
	if r.pos < len(r.prefix) {
		p := int(r.prefix[r.pos])
		last := len(r.prefix)
		n := 1
		for r.pos+n < last && r.prefix[r.pos+n] == uint8(p) {
			n++
		}
		if r.pos+n == last && n > 1 {
			// The final prefix grant stays single-step: its edge
			// footprint must be captured in isolation.
			n--
		}
		r.pos += n
		for i, c := range choices {
			if c.ProcID == p {
				if r.pos == last {
					r.finalNext = true
				}
				r.openEdge(p)
				if n == 1 {
					return sim.Decision{Index: i, Target: c.Clock + 1}
				}
				return sim.Decision{Index: i, Steps: n}
			}
		}
		panic(fmt.Sprintf("explore: replay diverged: proc %d not among %d choices", p, len(choices)))
	}
	// Frontier: capture the state for the prefix consumed so far.
	o := runOutcome{
		fp:      r.fingerprint(),
		enabled: make([]uint8, len(choices)),
	}
	for i, c := range choices {
		o.enabled[i] = uint8(c.ProcID)
	}
	r.emit(o)
	if i, ok := r.specNext(&o); ok {
		// Keep going along the predicted first child: extend the prefix
		// (the append never aliases the node's slice — node prefixes are
		// built at exact capacity, and the full-slice expression forces a
		// copy regardless) and play the child as one more single-step,
		// edge-captured grant.
		r.chainLeft--
		r.prefix = append(r.prefix[:len(r.prefix):len(r.prefix)], o.enabled[i])
		r.pos = len(r.prefix)
		r.finalNext = true
		r.openEdge(int(o.enabled[i]))
		return sim.Decision{Index: i, Target: choices[i].Clock + 1}
	}
	r.stopped = true
	return sim.Decision{Stop: true}
}

// specNext decides whether a chained replay keeps executing past the
// frontier it just banked, and along which child. It mirrors the merge
// loop's child selection — stutter fold, sleep-set filter, stutter cap,
// visited mask — using the bookkeeping the node carried into the replay.
// The mirror is conservative, not exact: sleep entries contributed by
// same-wave earlier siblings and visited-mask bits added by nodes merged
// later in this wave are unknown here, so a prediction can name a child
// the merge ends up pruning. That never corrupts the search — the bank is
// consulted by exact prefix, so a child the merge never enqueues is simply
// never looked up — it only wastes the banked suffix.
func (r *replayer) specNext(o *runOutcome) (int, bool) {
	if r.chainLeft <= 0 || r.vio != nil || len(r.prefix) >= r.cfg.MaxDepth {
		return 0, false
	}
	if len(r.prefix) > 0 {
		if writeFree(&r.lastEdge) {
			r.stutter[r.prefix[len(r.prefix)-1]]++
		} else {
			r.stutter = [maxExploreProcs]uint8{}
		}
		if !r.cfg.NoSleepSets {
			// Filter into a fresh slice: the inherited set is shared with
			// sibling nodes replaying concurrently.
			var kept []sleepEntry
			for _, se := range r.sleep {
				if !dependent(&se.e, &r.lastEdge) {
					kept = append(kept, se)
				}
			}
			r.sleep = kept
		}
	}
	for i, p := range o.enabled {
		if inSleep(r.sleep, p) {
			continue
		}
		if r.stutter[p] >= uint8(r.cfg.StutterBound) {
			continue
		}
		if r.visited[o.fp]&(1<<p) != 0 {
			continue
		}
		return i, true
	}
	return 0, false
}

func (r *replayer) openEdge(proc int) {
	r.cur.accesses = r.cur.accesses[:0]
	r.cur.txLines = append(r.cur.txLines[:0], r.txf[proc]...)
	r.cur.boundary = false
	r.finalOpen = r.finalNext
	r.finalNext = false
	if r.finalOpen {
		// A fresh frontier-bound grant invalidates the previous closed
		// edge: if the run terminates inside this grant the outcome's
		// footprint must read empty, exactly as a scratch replay's would.
		r.lastEdge = edge{}
	}
}

func (r *replayer) closeEdge() {
	if !r.finalOpen {
		return
	}
	r.lastEdge = edge{
		accesses: append([]access(nil), r.cur.accesses...),
		txLines:  append([]access(nil), r.cur.txLines...),
		boundary: r.cur.boundary,
	}
	r.finalOpen = false
}

// fingerprint hashes the machine-visible state: memory words, line
// conflict metadata, per-thread clocks, statistics, pending-reissue flags
// and in-flight transaction state, plus the checker's own per-thread
// progress. Thread-local register state is approximated by the clock
// (every engine step advances it deterministically with jitter disabled);
// the approximation is exact for schemes whose critical sections are
// properly isolated and is validated empirically by the mutation tests.
func (r *replayer) fingerprint() uint64 {
	h := newFpHash()
	mm := r.m.Mem
	words := mm.WordsInUse()
	h.mix(uint64(words))
	for i := 0; i < words; i++ {
		h.mix(mm.Read(mem.Addr(i)))
	}
	lines := (words + mem.LineWords - 1) / mem.LineWords
	for l := 0; l < lines; l++ {
		lm := mm.LineByIndex(l)
		h.mix(lm.Readers)
		h.mix(lm.Writers)
	}
	for i := 0; i < r.cfg.Threads; i++ {
		t := r.threads[i]
		if t == nil {
			h.mix(0)
			continue
		}
		h.mix(1)
		h.mix(t.Clock())
		st := t.Stats
		h.mix(st.Begun)
		h.mix(st.Committed)
		for _, a := range st.Aborted {
			h.mix(a)
		}
		h.mix(st.CommittedReadLines)
		h.mix(st.CommittedWriteLines)
		h.mix(st.CommittedAccesses)
		if t.ReissuePending() {
			h.mix(1)
		} else {
			h.mix(0)
		}
		t.MixTxState(h.mix)
		h.mix(uint64(r.opsDone[i]))
		h.mix(r.seqScratch[i])
		h.mix(r.resScratch[i])
		if r.incon[i] {
			h.mix(1)
		} else {
			h.mix(0)
		}
	}
	h.mix(uint64(r.rec.Len()))
	h.mix(uint64(r.nonSpecDepth))
	return uint64(h)
}

// body is the per-thread workload: Ops critical sections, each drawing a
// serialization ticket and incrementing the two-cell counter pair, with
// the per-operation checks applied as operations complete.
func (r *replayer) body(t *tsx.Thread) {
	id := t.ID
	r.threads[id] = t
	r.scheme.Setup(t)
	for op := 0; op < r.cfg.Ops; op++ {
		res := r.scheme.Run(t, func() { r.criticalSection(t) })
		r.rec.Record(check.Op{Seq: r.seqScratch[id], Thread: id, Kind: "inc", Result: r.resScratch[id]})
		r.opsDone[id]++
		if !res.Spec {
			r.allSpec = false
		}
		if res.Attempts > r.cfg.AttemptsBound {
			r.setViolation("progress", fmt.Sprintf(
				"thread %d op %d took %d execution attempts (bound %d)", id, op, res.Attempts, r.cfg.AttemptsBound))
		}
		if r.incon[id] {
			r.setViolation("consistency", fmt.Sprintf(
				"thread %d op %d completed an execution that observed x != y (Lemma 1: no consistent-snapshot guarantee)", id, op))
		}
	}
}

// criticalSection is the checked workload: draw a ticket, read both
// counter cells (they live on distinct lines and are incremented together,
// so any execution must observe them equal — the Lemma 1 snapshot
// property), and increment both. Each increment makes the counters equal
// the ticket sequence, so in a serializable history every operation's
// result equals its own ticket.
func (r *replayer) criticalSection(t *tsx.Thread) {
	id := t.ID
	entered := !t.InTx()
	if entered {
		r.nonSpecDepth++
		if r.nonSpecDepth > 1 {
			r.setViolation("mutex", fmt.Sprintf(
				"thread %d entered the critical section non-speculatively while another thread held it", id))
		}
	}
	r.seqScratch[id] = r.rec.Ticket(t)
	vx := t.Load(r.x)
	vy := t.Load(r.y)
	r.incon[id] = vx != vy
	t.Store(r.x, vx+1)
	t.Store(r.y, vy+1)
	r.resScratch[id] = vx
	if entered {
		r.nonSpecDepth--
	}
}

// terminalChecks runs after every thread finished: serializability against
// the sequential counter model, final counter values, lock released, and —
// when every operation completed speculatively — the Theorems 1-2 bit-exact
// lock-word restoration for the adjusted locks.
func (r *replayer) terminalChecks() {
	next := uint64(0)
	model := func(string, uint64) uint64 {
		v := next
		next++
		return v
	}
	total := uint64(r.cfg.Threads * r.cfg.Ops)
	if got := r.rec.Len(); uint64(got) != total {
		r.setViolation("serializability", fmt.Sprintf("%d operations recorded, %d ran", got, total))
	} else if err := r.rec.Verify(model); err != nil {
		r.setViolation("serializability", err.Error())
	}
	if fx, fy := r.m.Mem.Read(r.x), r.m.Mem.Read(r.y); fx != total || fy != total {
		r.setViolation("serializability", fmt.Sprintf(
			"final counters x=%d y=%d, want %d: updates were lost or duplicated", fx, fy, total))
	}
	held := false
	r.m.RunOne(func(t *tsx.Thread) { held = r.lock.Held(t) })
	if held {
		r.setViolation("lock-restore", "main lock still held after every thread finished")
	}
	if r.allSpec {
		for i, a := range r.lockWords {
			if got := r.m.Mem.Read(a); got != r.preLock[i] {
				r.setViolation("lock-restore", fmt.Sprintf(
					"every critical section elided, yet lock word @%d is %d, pre-acquire value was %d (Theorems 1-2)",
					a, got, r.preLock[i]))
			}
		}
	}
}

// setViolation records the first property failure with a bounded
// deterministic diagnostic dump of the machine at detection time. The
// schedule it records is the prefix at detection time — for a chained
// replay, the extended prefix the chain had reached — which is exactly
// what a scratch replay of that prefix would record.
func (r *replayer) setViolation(kind, detail string) {
	if r.vio != nil {
		return
	}
	if r.cfg.OnlyKind != "" && kind != r.cfg.OnlyKind {
		// Hazard-class filter: the search is hunting a specific violation
		// kind; suppressing the others lets BFS dig past a shallower
		// class to the minimal counterexample of the requested one.
		return
	}
	f := &harness.Failure{
		Reason:  "explore-" + kind,
		Thread:  -1,
		Context: r.cfg.Label() + " schedule=" + FormatSchedule(r.prefix) + ": " + detail,
		Events:  r.m.TraceEvents(),
	}
	for i := 0; i < r.cfg.Threads; i++ {
		ts := harness.ThreadState{ID: i}
		if t := r.threads[i]; t != nil {
			ts.Clock = t.Clock()
			ts.Done = r.opsDone[i] == r.cfg.Ops
			ts.InTx = t.InTx()
			ts.Stats = t.Stats
			if ts.Clock > f.Clock {
				f.Clock = ts.Clock
			}
		}
		f.Threads = append(f.Threads, ts)
	}
	r.vio = &Violation{
		Kind:     kind,
		Detail:   detail,
		Schedule: append([]uint8(nil), r.prefix...),
		Failure:  f,
	}
}

// outcomesEqual reports whether two outcomes for the same prefix are
// bit-identical; the fork-validation mode and the differential tests use
// it to check banked outcomes against scratch replays.
func outcomesEqual(a, b *runOutcome) bool {
	return reflect.DeepEqual(*a, *b)
}

// monitor is the replayer's tsx.Observer view: transaction boundaries mark
// the open edge and reset the thread's live transactional footprint.
type monitor replayer

func (mo *monitor) BindMachine(*tsx.Machine) {}

func (mo *monitor) TxBegin(thread int, _ uint64) {
	r := (*replayer)(mo)
	r.cur.boundary = true
	r.txf[thread] = r.txf[thread][:0]
}

func (mo *monitor) TxCommit(thread int, _, _ uint64, _ int) {
	r := (*replayer)(mo)
	r.cur.boundary = true
	r.txf[thread] = r.txf[thread][:0]
}

func (mo *monitor) TxAbort(thread int, _, _ uint64, _ tsx.Cause, _, _ int, _, _ bool) {
	r := (*replayer)(mo)
	r.cur.boundary = true
	r.txf[thread] = r.txf[thread][:0]
}

func (mo *monitor) Serial(int, uint64, bool) {}

func (mo *monitor) Grant(int, uint64) {}

// monInj is the replayer's tsx.Injector view: a pure tap that records
// every access into the open edge (and the thread's transactional
// footprint) without injecting anything.
type monInj replayer

func (mi *monInj) Access(thread int, _ uint64, line int, write, inTx bool) (uint64, bool) {
	r := (*replayer)(mi)
	r.cur.accesses = append(r.cur.accesses, access{line: line, write: write})
	if inTx {
		addFootprint(&r.txf[thread], line, write)
	}
	return 0, false
}

func (mi *monInj) WriteCap(_ int, _ uint64, limit int) int { return limit }

func (mi *monInj) Grant(_ int, _, slice uint64) uint64 { return slice }
