package explore

import (
	"fmt"

	"hle/internal/check"
	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/hwext"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/sim"
	"hle/internal/tsx"
)

// access is one simulated memory access observed during a grant.
type access struct {
	line  int
	write bool
}

// edge is the footprint of one grant: the accesses it performed, the
// granted thread's pre-existing transactional footprint (a foreign access
// to any of those lines dooms the transaction, so it matters for
// commutativity), and whether the grant crossed a transaction boundary
// (begin/commit/abort touch line metadata wholesale and are treated as
// dependent with everything).
type edge struct {
	accesses []access
	txLines  []access
	boundary bool
}

// writeFree reports whether the grant performed no write and crossed no
// transaction boundary — the stutter bound only caps runs of such grants.
func writeFree(e *edge) bool {
	if e.boundary {
		return false
	}
	for _, a := range e.accesses {
		if a.write {
			return false
		}
	}
	return true
}

// dependent conservatively decides whether two grants from the same state
// may fail to commute. Boundary grants depend on everything; so do silent
// grants (no observed access: engine-internal waits — a spin's PAUSE leg,
// the HWExt suspend loop — poll shared state without going through the
// access path, so their order against writes is observable). Otherwise two
// grants depend iff they touch a common line with a write involved on
// either side, counting the threads' transactional footprints as touched
// (a foreign write dooms the transaction).
func dependent(a, b *edge) bool {
	if a.boundary || b.boundary {
		return true
	}
	if len(a.accesses) == 0 || len(b.accesses) == 0 {
		return true
	}
	for _, x := range a.accesses {
		if hits(b, x) {
			return true
		}
	}
	for _, y := range b.accesses {
		if hits(a, y) {
			return true
		}
	}
	return false
}

func hits(e *edge, x access) bool {
	for _, a := range e.accesses {
		if a.line == x.line && (a.write || x.write) {
			return true
		}
	}
	for _, a := range e.txLines {
		if a.line == x.line && (a.write || x.write) {
			return true
		}
	}
	return false
}

func addFootprint(s *[]access, line int, write bool) {
	for i := range *s {
		if (*s)[i].line == line {
			if write {
				(*s)[i].write = true
			}
			return
		}
	}
	*s = append(*s, access{line: line, write: write})
}

// runOutcome is what one prefix replay reports back to the search.
type runOutcome struct {
	// fp and enabled describe the frontier state (prefix consumed, next
	// decision pending); meaningful only when neither terminal nor
	// truncated.
	fp      uint64
	enabled []uint8
	// lastEdge is the footprint of the final prefix grant.
	lastEdge edge
	// terminal: every thread finished and the terminal checks ran.
	terminal bool
	// truncated: a replay bound stopped the run.
	truncated bool
	// violation is the first property failure observed, or nil.
	violation *Violation
}

type explorer struct {
	cfg *Config
}

func newExplorer(cfg *Config, _ *Result) *explorer { return &explorer{cfg: cfg} }

// fpHash is the FNV-1a fingerprint mixer the engine's golden tests use.
type fpHash uint64

func newFpHash() fpHash { return 14695981039346656037 }

func (h *fpHash) mix(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= 1099511628211
		v >>= 8
	}
	*h = fpHash(x)
}

// machineConfig builds the deterministic exploration machine: no cost
// jitter, no spurious aborts, no randomness consumed anywhere, so a state
// is exactly a function of the schedule that reached it.
func machineConfig(c *Config) tsx.Config {
	mcfg := tsx.Config{
		Procs:         c.Threads,
		Seed:          1,
		MemWords:      1 << 9, // the workloads use a few dozen words; small memory keeps per-replay setup cheap
		WriteSetLines: 512,
		L1ReadLines:   512,
		ReadSetLines:  131072,
		EvictExponent: 8,
		PauseAborts:   true,
		MaxTxAccesses: 1 << 20,
		CostJitter:    -1, // negative: disabled (zero would select the default)
		TraceRing:     64,
		Costs:         tsx.DefaultCosts(),
	}
	if c.Scheme == "HLE-HWExt" {
		mcfg = hwext.EnableOn(mcfg)
	}
	if c.Scheme == "HLE-SCM-ideal" {
		mcfg.NestHLEInRTM = true
	}
	if c.Mutant == MutantHWExtNoSuspend {
		mcfg = hwext.EnableOn(mcfg)
		mcfg.HWExtNoSuspend = true
	}
	return mcfg
}

// replayer replays one schedule prefix on a fresh machine. It is the
// sim.Strategy driving the run, the owner of the edge capture fed by the
// monitor hooks, and the workload body with its inline property checks.
type replayer struct {
	cfg    *Config
	prefix []uint8
	pos    int
	out    runOutcome

	m       *tsx.Machine
	threads []*tsx.Thread
	lock    locks.Lock
	scheme  core.Scheme
	rec     *check.Recorder
	x, y    mem.Addr

	// lockWords/preLock hold the adjusted lock's word addresses and their
	// pre-run values for the Theorems 1-2 restoration check.
	lockWords []mem.Addr
	preLock   []uint64

	opsDone []int
	allSpec bool
	// nonSpecDepth counts threads currently inside the critical section
	// non-speculatively; 2 is a mutual-exclusion violation. Speculative
	// runs are excluded: elided critical sections may legitimately
	// overlap, and a speculative run that breaks isolation is caught by
	// the serializability and snapshot checks instead.
	nonSpecDepth int

	// Per-thread completing-attempt scratch (ticket, result, observed
	// x != y), rewritten by every attempt; the values of the completing
	// attempt survive.
	seqScratch []uint64
	resScratch []uint64
	incon      []bool

	// Edge capture: cur accumulates the open grant's footprint, txf the
	// per-thread live transactional footprints.
	cur       edge
	txf       [][]access
	finalNext bool
	finalOpen bool

	soloGrants int
	stopped    bool
}

func (e *explorer) replay(prefix []uint8) runOutcome {
	c := e.cfg
	r := &replayer{
		cfg:        c,
		prefix:     prefix,
		threads:    make([]*tsx.Thread, c.Threads),
		opsDone:    make([]int, c.Threads),
		seqScratch: make([]uint64, c.Threads),
		resScratch: make([]uint64, c.Threads),
		incon:      make([]bool, c.Threads),
		txf:        make([][]access, c.Threads),
		allSpec:    true,
	}
	m := tsx.NewMachine(machineConfig(c))
	r.m = m
	m.RunOne(func(t *tsx.Thread) {
		r.lock = buildLock(c, t)
		r.scheme = buildScheme(c, t, r.lock)
		r.rec = check.NewRecorder(t)
		r.x = t.AllocLines(1)
		r.y = t.AllocLines(1)
		switch l := r.lock.(type) {
		case *locks.AdjustedTicket:
			r.lockWords = []mem.Addr{l.Addr(), l.Addr() + 1}
		case *locks.AdjustedCLH:
			r.lockWords = []mem.Addr{l.Addr()}
		}
		for _, a := range r.lockWords {
			r.preLock = append(r.preLock, m.Mem.Read(a))
		}
	})
	m.SetObserver((*monitor)(r))
	m.SetInjector((*monInj)(r))
	m.SetStrategy(r)
	m.Run(c.Threads, r.body)
	m.SetStrategy(nil)
	m.SetInjector(nil)
	m.SetObserver(nil)
	if !r.stopped {
		r.out.terminal = true
		r.terminalChecks()
	}
	return r.out
}

// diagnose re-replays a prefix solely to attach a machine-state dump to a
// violation the search itself concluded (the deadlock rule, which is
// decided from edge footprints, not from inside a replay).
func (e *explorer) diagnose(prefix []uint8, kind, detail string) *Violation {
	c := e.cfg
	r := &replayer{
		cfg:        c,
		prefix:     prefix,
		threads:    make([]*tsx.Thread, c.Threads),
		opsDone:    make([]int, c.Threads),
		seqScratch: make([]uint64, c.Threads),
		resScratch: make([]uint64, c.Threads),
		incon:      make([]bool, c.Threads),
		txf:        make([][]access, c.Threads),
		allSpec:    true,
	}
	m := tsx.NewMachine(machineConfig(c))
	r.m = m
	m.RunOne(func(t *tsx.Thread) {
		r.lock = buildLock(c, t)
		r.scheme = buildScheme(c, t, r.lock)
		r.rec = check.NewRecorder(t)
		r.x = t.AllocLines(1)
		r.y = t.AllocLines(1)
	})
	m.SetObserver((*monitor)(r))
	m.SetInjector((*monInj)(r))
	m.SetStrategy(r)
	m.Run(c.Threads, r.body)
	m.SetStrategy(nil)
	m.SetInjector(nil)
	m.SetObserver(nil)
	r.setViolation(kind, detail)
	return r.out.violation
}

// buildLock and buildScheme construct the configuration's lock and scheme
// in simulated memory, substituting the seeded mutant variants when asked.
func buildLock(c *Config, t *tsx.Thread) locks.Lock {
	if c.Mutant == MutantCLHBlindRelease {
		return newBrokenCLH(t)
	}
	mk := locks.MakerByName(c.Lock)
	if mk == nil {
		panic("explore: unknown lock " + c.Lock)
	}
	return mk(t)
}

func buildScheme(c *Config, t *tsx.Thread, main locks.Lock) core.Scheme {
	if c.Mutant == MutantSCMLazy {
		return newLazySCM(main)
	}
	aux := func() locks.Lock { return locks.NewMCS(t) }
	switch c.Scheme {
	case "Standard":
		return core.NewStandard(main)
	case "HLE":
		return core.NewHLE(main)
	case "HLE-HWExt":
		return hwext.New(main)
	case "RTM-LE":
		return core.NewRTMLE(main)
	case "HLE-SCM":
		return core.NewHLESCM(main, aux(), core.SCMConfig{})
	case "HLE-SCM-ideal":
		return core.NewHLESCM(main, aux(), core.SCMConfig{Ideal: true})
	case "HLE-SCM-multi":
		return core.NewHLESCMMulti(main, []locks.Lock{aux(), aux(), aux(), aux()}, core.SCMConfig{})
	case "Pes-SLR":
		return core.NewPessimisticSLR(main)
	case "Opt-SLR":
		return core.NewSLR(main, 0)
	case "Opt-SLR-SCM":
		return core.NewSLRSCM(main, aux(), core.SCMConfig{})
	}
	panic("explore: unknown scheme " + c.Scheme)
}

// Pick implements sim.Strategy: it forces the prefix, stops at the
// frontier after fingerprinting the state, and plays forced endgame grants
// (a sole unfinished thread) to termination. Every grant's target is the
// chosen thread's clock plus one, so each grant executes exactly one
// pending engine step — the finest interleaving granularity the machine
// exposes.
func (r *replayer) Pick(choices []sim.Choice) sim.Decision {
	r.closeEdge()
	if len(choices) == 1 {
		// Endgame: with one unfinished thread there is nothing to
		// branch on; play it out in large slices, bounded. A correct
		// scheme finishes well inside the first slice (nothing is
		// contended any more); a thread that keeps yielding is spinning
		// on a condition no one is left to establish.
		r.soloGrants++
		if r.soloGrants > r.cfg.SoloBound {
			r.setViolation("progress", fmt.Sprintf(
				"thread %d cannot finish alone within %d large slices (every other thread is done: a correct scheme must terminate)",
				choices[0].ProcID, r.cfg.SoloBound))
			r.out.truncated = true
			r.stopped = true
			return sim.Decision{Stop: true}
		}
		r.openEdge(choices[0].ProcID)
		const soloSlice = 1 << 20 // cycles per endgame grant
		return sim.Decision{Index: 0, Target: choices[0].Clock + soloSlice}
	}
	if r.pos < len(r.prefix) {
		p := int(r.prefix[r.pos])
		r.pos++
		for i, c := range choices {
			if c.ProcID == p {
				if r.pos == len(r.prefix) {
					r.finalNext = true
				}
				r.openEdge(p)
				return sim.Decision{Index: i, Target: c.Clock + 1}
			}
		}
		panic(fmt.Sprintf("explore: replay diverged: proc %d not among %d choices", p, len(choices)))
	}
	// Frontier: capture the state and hand control back to the search.
	r.out.fp = r.fingerprint()
	r.out.enabled = make([]uint8, len(choices))
	for i, c := range choices {
		r.out.enabled[i] = uint8(c.ProcID)
	}
	r.stopped = true
	return sim.Decision{Stop: true}
}

func (r *replayer) openEdge(proc int) {
	r.cur.accesses = r.cur.accesses[:0]
	r.cur.txLines = append(r.cur.txLines[:0], r.txf[proc]...)
	r.cur.boundary = false
	r.finalOpen = r.finalNext
	r.finalNext = false
}

func (r *replayer) closeEdge() {
	if !r.finalOpen {
		return
	}
	r.out.lastEdge = edge{
		accesses: append([]access(nil), r.cur.accesses...),
		txLines:  append([]access(nil), r.cur.txLines...),
		boundary: r.cur.boundary,
	}
	r.finalOpen = false
}

// fingerprint hashes the machine-visible state: memory words, line
// conflict metadata, per-thread clocks, statistics, pending-reissue flags
// and in-flight transaction state, plus the checker's own per-thread
// progress. Thread-local register state is approximated by the clock
// (every engine step advances it deterministically with jitter disabled);
// the approximation is exact for schemes whose critical sections are
// properly isolated and is validated empirically by the mutation tests.
func (r *replayer) fingerprint() uint64 {
	h := newFpHash()
	mm := r.m.Mem
	words := mm.WordsInUse()
	h.mix(uint64(words))
	for i := 0; i < words; i++ {
		h.mix(mm.Read(mem.Addr(i)))
	}
	lines := (words + mem.LineWords - 1) / mem.LineWords
	for l := 0; l < lines; l++ {
		lm := mm.LineByIndex(l)
		h.mix(lm.Readers)
		h.mix(lm.Writers)
	}
	for i := 0; i < r.cfg.Threads; i++ {
		t := r.threads[i]
		if t == nil {
			h.mix(0)
			continue
		}
		h.mix(1)
		h.mix(t.Clock())
		st := t.Stats
		h.mix(st.Begun)
		h.mix(st.Committed)
		for _, a := range st.Aborted {
			h.mix(a)
		}
		h.mix(st.CommittedReadLines)
		h.mix(st.CommittedWriteLines)
		h.mix(st.CommittedAccesses)
		if t.ReissuePending() {
			h.mix(1)
		} else {
			h.mix(0)
		}
		t.MixTxState(h.mix)
		h.mix(uint64(r.opsDone[i]))
		h.mix(r.seqScratch[i])
		h.mix(r.resScratch[i])
		if r.incon[i] {
			h.mix(1)
		} else {
			h.mix(0)
		}
	}
	h.mix(uint64(r.rec.Len()))
	h.mix(uint64(r.nonSpecDepth))
	return uint64(h)
}

// body is the per-thread workload: Ops critical sections, each drawing a
// serialization ticket and incrementing the two-cell counter pair, with
// the per-operation checks applied as operations complete.
func (r *replayer) body(t *tsx.Thread) {
	id := t.ID
	r.threads[id] = t
	r.scheme.Setup(t)
	for op := 0; op < r.cfg.Ops; op++ {
		res := r.scheme.Run(t, func() { r.criticalSection(t) })
		r.rec.Record(check.Op{Seq: r.seqScratch[id], Thread: id, Kind: "inc", Result: r.resScratch[id]})
		r.opsDone[id]++
		if !res.Spec {
			r.allSpec = false
		}
		if res.Attempts > r.cfg.AttemptsBound {
			r.setViolation("progress", fmt.Sprintf(
				"thread %d op %d took %d execution attempts (bound %d)", id, op, res.Attempts, r.cfg.AttemptsBound))
		}
		if r.incon[id] {
			r.setViolation("consistency", fmt.Sprintf(
				"thread %d op %d completed an execution that observed x != y (Lemma 1: no consistent-snapshot guarantee)", id, op))
		}
	}
}

// criticalSection is the checked workload: draw a ticket, read both
// counter cells (they live on distinct lines and are incremented together,
// so any execution must observe them equal — the Lemma 1 snapshot
// property), and increment both. Each increment makes the counters equal
// the ticket sequence, so in a serializable history every operation's
// result equals its own ticket.
func (r *replayer) criticalSection(t *tsx.Thread) {
	id := t.ID
	entered := !t.InTx()
	if entered {
		r.nonSpecDepth++
		if r.nonSpecDepth > 1 {
			r.setViolation("mutex", fmt.Sprintf(
				"thread %d entered the critical section non-speculatively while another thread held it", id))
		}
	}
	r.seqScratch[id] = r.rec.Ticket(t)
	vx := t.Load(r.x)
	vy := t.Load(r.y)
	r.incon[id] = vx != vy
	t.Store(r.x, vx+1)
	t.Store(r.y, vy+1)
	r.resScratch[id] = vx
	if entered {
		r.nonSpecDepth--
	}
}

// terminalChecks runs after every thread finished: serializability against
// the sequential counter model, final counter values, lock released, and —
// when every operation completed speculatively — the Theorems 1-2 bit-exact
// lock-word restoration for the adjusted locks.
func (r *replayer) terminalChecks() {
	next := uint64(0)
	model := func(string, uint64) uint64 {
		v := next
		next++
		return v
	}
	total := uint64(r.cfg.Threads * r.cfg.Ops)
	if got := r.rec.Len(); uint64(got) != total {
		r.setViolation("serializability", fmt.Sprintf("%d operations recorded, %d ran", got, total))
	} else if err := r.rec.Verify(model); err != nil {
		r.setViolation("serializability", err.Error())
	}
	if fx, fy := r.m.Mem.Read(r.x), r.m.Mem.Read(r.y); fx != total || fy != total {
		r.setViolation("serializability", fmt.Sprintf(
			"final counters x=%d y=%d, want %d: updates were lost or duplicated", fx, fy, total))
	}
	held := false
	r.m.RunOne(func(t *tsx.Thread) { held = r.lock.Held(t) })
	if held {
		r.setViolation("lock-restore", "main lock still held after every thread finished")
	}
	if r.allSpec {
		for i, a := range r.lockWords {
			if got := r.m.Mem.Read(a); got != r.preLock[i] {
				r.setViolation("lock-restore", fmt.Sprintf(
					"every critical section elided, yet lock word @%d is %d, pre-acquire value was %d (Theorems 1-2)",
					a, got, r.preLock[i]))
			}
		}
	}
}

// setViolation records the first property failure with a bounded
// deterministic diagnostic dump of the machine at detection time.
func (r *replayer) setViolation(kind, detail string) {
	if r.out.violation != nil {
		return
	}
	f := &harness.Failure{
		Reason:  "explore-" + kind,
		Thread:  -1,
		Context: r.cfg.Label() + " schedule=" + FormatSchedule(r.prefix) + ": " + detail,
		Events:  r.m.TraceEvents(),
	}
	for i := 0; i < r.cfg.Threads; i++ {
		ts := harness.ThreadState{ID: i}
		if t := r.threads[i]; t != nil {
			ts.Clock = t.Clock()
			ts.Done = r.opsDone[i] == r.cfg.Ops
			ts.InTx = t.InTx()
			ts.Stats = t.Stats
			if ts.Clock > f.Clock {
				f.Clock = ts.Clock
			}
		}
		f.Threads = append(f.Threads, ts)
	}
	r.out.violation = &Violation{
		Kind:     kind,
		Detail:   detail,
		Schedule: append([]uint8(nil), r.prefix...),
		Failure:  f,
	}
}

// monitor is the replayer's tsx.Observer view: transaction boundaries mark
// the open edge and reset the thread's live transactional footprint.
type monitor replayer

func (mo *monitor) BindMachine(*tsx.Machine) {}

func (mo *monitor) TxBegin(thread int, _ uint64) {
	r := (*replayer)(mo)
	r.cur.boundary = true
	r.txf[thread] = r.txf[thread][:0]
}

func (mo *monitor) TxCommit(thread int, _, _ uint64, _ int) {
	r := (*replayer)(mo)
	r.cur.boundary = true
	r.txf[thread] = r.txf[thread][:0]
}

func (mo *monitor) TxAbort(thread int, _, _ uint64, _ tsx.Cause, _, _ int, _, _ bool) {
	r := (*replayer)(mo)
	r.cur.boundary = true
	r.txf[thread] = r.txf[thread][:0]
}

func (mo *monitor) Serial(int, uint64, bool) {}

func (mo *monitor) Grant(int, uint64) {}

// monInj is the replayer's tsx.Injector view: a pure tap that records
// every access into the open edge (and the thread's transactional
// footprint) without injecting anything.
type monInj replayer

func (mi *monInj) Access(thread int, _ uint64, line int, write, inTx bool) (uint64, bool) {
	r := (*replayer)(mi)
	r.cur.accesses = append(r.cur.accesses, access{line: line, write: write})
	if inTx {
		addFootprint(&r.txf[thread], line, write)
	}
	return 0, false
}

func (mi *monInj) WriteCap(_ int, _ uint64, limit int) int { return limit }

func (mi *monInj) Grant(_ int, _, slice uint64) uint64 { return slice }
