package explore

// specCache banks chained-replay outcomes until the wave that needs them.
// It is keyed by exact prefix, partitioned by prefix length so dead
// generations purge in O(1) map drops: breadth-first search visits each
// prefix length exactly once, so after the wave of length n has consumed
// its hits every remaining length-n entry is unreachable forever.
//
// The cache is NOT an LRU: all inserts and lookups happen sequentially in
// the merge loop's deterministic order, and eviction is by generation
// (purge) plus a hard byte budget at insert (reject, never evict — an
// evicted entry would change which nodes fork, and while that could never
// change the search's RESULTS, it would make fork/replay statistics depend
// on insert timing). Rejects and purges are counted so a too-small budget
// is visible in the timing report rather than silent.
type specCache struct {
	byLen   map[int]map[string]runOutcome
	bytes   int64
	peak    int64
	budget  int64 // <= 0: unlimited
	dropped uint64
}

// testCorruptBank, when non-nil, mutates every outcome as it is banked.
// The stale-checkpoint mutation tests install it to prove the
// fork-validation mode catches a bank that disagrees with scratch replay;
// production code must leave it nil.
var testCorruptBank func(prefix []uint8, o *runOutcome)

func newSpecCache(budget int64) *specCache {
	return &specCache{byLen: make(map[int]map[string]runOutcome), budget: budget}
}

// outcomeBytes estimates an entry's memory footprint: map overhead, the
// prefix key, and the outcome's slices.
func outcomeBytes(prefixLen int, o *runOutcome) int64 {
	return int64(96 + prefixLen + len(o.enabled) +
		16*(len(o.lastEdge.accesses)+len(o.lastEdge.txLines)))
}

func (sc *specCache) put(prefix []uint8, o runOutcome) {
	if testCorruptBank != nil {
		testCorruptBank(prefix, &o)
	}
	sz := outcomeBytes(len(prefix), &o)
	if sc.budget > 0 && sc.bytes+sz > sc.budget {
		sc.dropped++
		return
	}
	m := sc.byLen[len(prefix)]
	if m == nil {
		m = make(map[string]runOutcome)
		sc.byLen[len(prefix)] = m
	}
	m[string(prefix)] = o
	sc.bytes += sz
	if sc.bytes > sc.peak {
		sc.peak = sc.bytes
	}
}

func (sc *specCache) take(prefix []uint8) (runOutcome, bool) {
	m := sc.byLen[len(prefix)]
	if m == nil {
		return runOutcome{}, false
	}
	o, ok := m[string(prefix)]
	if !ok {
		return runOutcome{}, false
	}
	delete(m, string(prefix))
	sc.bytes -= outcomeBytes(len(prefix), &o)
	return o, true
}

// purgeLen drops every entry of one prefix length, counting them as wasted
// speculation.
func (sc *specCache) purgeLen(n int, wasted *uint64) {
	m := sc.byLen[n]
	if m == nil {
		return
	}
	for k, o := range m {
		*wasted++
		sc.bytes -= outcomeBytes(len(k), &o)
	}
	delete(sc.byLen, n)
}

// drainAll purges every remaining generation (search over: bound hit or
// violation found).
func (sc *specCache) drainAll(wasted *uint64) {
	for n := range sc.byLen {
		sc.purgeLen(n, wasted)
	}
}

// suffixBucket maps a scratch replay's prefix length to its histogram
// bucket; bucket 0 is reserved for forked nodes (nothing re-executed).
// See Result.SuffixHist.
func suffixBucket(n int) int {
	switch {
	case n <= 1:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	case n <= 32:
		return 5
	case n <= 64:
		return 6
	default:
		return 7
	}
}

// SuffixHistLabels names Result.SuffixHist's buckets for reports.
var SuffixHistLabels = [8]string{"fork", "≤1", "≤4", "≤8", "≤16", "≤32", "≤64", ">64"}
