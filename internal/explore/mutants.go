package explore

import (
	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// The seeded mutants: deliberately broken variants of the paper's
// components. Each is a bug class the literature documents, each is
// reachable only under specific interleavings, and each must be caught by
// the checker with a minimal counterexample schedule — the mutation tests
// that prove the checker has teeth.
const (
	// MutantCLHBlindRelease replaces the adjusted CLH unlock's
	// CAS-restore (Algorithm 7) with a blind store of the predecessor:
	// correct when no requester arrived, but a requester that enqueued
	// between the holder's read and store is unlinked from the queue and
	// spins on a flag nobody will ever clear.
	MutantCLHBlindRelease = "clh-blind-release"
	// MutantSCMLazy removes SCM's main-lock subscription and its
	// aux-lock serialization: the speculative path never reads the main
	// lock (lazy subscription), so a transaction can run — and commit —
	// in the middle of a non-speculative critical section.
	MutantSCMLazy = "scm-lazy-subscription"
	// MutantHWExtNoSuspend (tsx.Config.HWExtNoSuspend) removes the
	// Chapter 7 extension's suspend-on-miss: an elided reader expands
	// its footprint mid-critical-section of a real lock holder and can
	// commit an inconsistent snapshot — exactly the Lemma 1 property.
	MutantHWExtNoSuspend = "hwext-no-suspend"
	// MutantLazySkipCheck (tsx.Config.LazyNoCommitCheck) removes the
	// fixed lazy-subscription pipeline's commit-time lock check entirely:
	// the transaction never subscribes, so it can commit in the middle of
	// a pessimistic holder's critical section.
	MutantLazySkipCheck = "lazy-skip-commit-check"
	// MutantLazyDrainFirst (tsx.Config.LazyNoCheckFirst) breaks the
	// check's ordering against the write-set drain: validation runs after
	// publication, so a failed check fires its abort too late — the
	// published writes stand and the retry re-applies them.
	MutantLazyDrainFirst = "lazy-drain-before-check"
	// MutantLazyNoWindowAbort (tsx.Config.LazyNoWindowAbort) removes the
	// commit-window abort: a pessimistic acquirer taking the lock between
	// the (passed) check and the drain no longer aborts the commit.
	MutantLazyNoWindowAbort = "lazy-no-window-abort"
)

// Mutants returns the seeded-fault configurations, each expected to fail
// with a deterministic minimal counterexample. One operation per thread
// keeps the counterexamples short; the bugs all fire on the first
// operation.
func Mutants() []Config {
	return []Config{
		{Scheme: "Standard", Lock: "AdjCLH", Threads: 2, Ops: 1, Mutant: MutantCLHBlindRelease},
		{Scheme: "HLE-SCM", Lock: "TTAS", Threads: 2, Ops: 1, Mutant: MutantSCMLazy},
		{Scheme: "HLE-HWExt", Lock: "TTAS", Threads: 2, Ops: 1, Mutant: MutantHWExtNoSuspend},
		{Scheme: "RTM-LE-lazy", Lock: "TTAS", Threads: 2, Ops: 1, Mutant: MutantLazySkipCheck},
		{Scheme: "RTM-LE-lazy", Lock: "TTAS", Threads: 2, Ops: 1, Mutant: MutantLazyDrainFirst},
		{Scheme: "RTM-LE-lazy", Lock: "TTAS", Threads: 2, Ops: 1, Mutant: MutantLazyNoWindowAbort},
	}
}

// brokenCLH is the adjusted CLH lock of Algorithm 7 with the
// MutantCLHBlindRelease fault: Release stores the predecessor into tail
// unconditionally instead of CAS-ing it back only when the holder's node
// is still the tail.
type brokenCLH struct {
	tail   mem.Addr
	myNode [locks.MaxThreads]mem.Addr
	pred   [locks.MaxThreads]mem.Addr
}

func newBrokenCLH(t *tsx.Thread) *brokenCLH {
	l := &brokenCLH{tail: t.AllocLines(1)}
	dummy := t.AllocLines(1)
	t.LabelLockLines(l.tail, 1, "brokenclh-tail")
	t.LabelLockLines(dummy, 1, "brokenclh-node")
	t.Store(l.tail, uint64(dummy))
	return l
}

func (l *brokenCLH) Name() string { return "BrokenAdjCLH" }

func (l *brokenCLH) Fair() bool { return true }

func (l *brokenCLH) Prepare(t *tsx.Thread) {
	if l.myNode[t.ID] == mem.Nil {
		l.myNode[t.ID] = t.AllocLines(1)
		t.LabelLockLines(l.myNode[t.ID], 1, "brokenclh-node")
	}
}

func (l *brokenCLH) Acquire(t *tsx.Thread) {
	n := l.myNode[t.ID]
	t.Store(n, 1)
	pred := mem.Addr(t.Swap(l.tail, uint64(n)))
	l.pred[t.ID] = pred
	for t.Load(pred) == 1 {
		t.Pause()
	}
}

func (l *brokenCLH) TryAcquire(t *tsx.Thread) bool {
	l.Acquire(t)
	return true
}

// Release is the seeded fault: a blind store of pred into tail. When a
// requester has already swapped its node into tail, this erases it from
// the queue; its flag is never cleared and it waits forever.
func (l *brokenCLH) Release(t *tsx.Thread) {
	t.Store(l.tail, uint64(l.pred[t.ID]))
}

func (l *brokenCLH) SpecAcquire(t *tsx.Thread) {
	n := l.myNode[t.ID]
	t.Store(n, 1)
	pred := mem.Addr(t.XAcquireSwap(l.tail, uint64(n)))
	l.pred[t.ID] = pred
	for t.Load(pred) == 1 {
		t.Pause()
	}
}

func (l *brokenCLH) SpecRelease(t *tsx.Thread) {
	if t.XReleaseCAS(l.tail, uint64(l.myNode[t.ID]), uint64(l.pred[t.ID])) {
		return
	}
	t.Store(l.tail, uint64(l.pred[t.ID]))
}

func (l *brokenCLH) Held(t *tsx.Thread) bool {
	return t.Load(mem.Addr(t.Load(l.tail))) == 1
}

// lazySCM is HLE-SCM with the MutantSCMLazy fault: the transaction never
// subscribes to the main lock and aborted threads never serialize on the
// auxiliary lock — they retry immediately and fall back to the main lock
// after one failed attempt (the short fuse keeps counterexamples short).
type lazySCM struct {
	main locks.Lock
}

func newLazySCM(main locks.Lock) *lazySCM { return &lazySCM{main: main} }

func (s *lazySCM) Name() string { return "HLE-SCM-lazy" }

func (s *lazySCM) Setup(t *tsx.Thread) { s.main.Prepare(t) }

func (s *lazySCM) Run(t *tsx.Thread, cs func()) core.Result {
	var r core.Result
	committed, _ := t.RTM(func() {
		r.Attempts++
		// Fault: no s.main.Held subscription — the transaction cannot
		// see a concurrent non-speculative holder.
		cs()
	})
	if committed {
		r.Spec = true
	} else {
		// Fault: no aux-lock serialization, no held-wait; straight to
		// the main lock.
		r.Attempts++
		s.main.Acquire(t)
		cs()
		s.main.Release(t)
	}
	return r
}

func (s *lazySCM) Stats(int) core.OpStats { return core.OpStats{} }

func (s *lazySCM) TotalStats() core.OpStats { return core.OpStats{} }
