package explore

import (
	"reflect"
	"testing"
)

// differentialConfigs samples the scheme/lock space for chain-vs-scratch
// equivalence checks: a plain lock, both adjusted protocols (whose
// invariant checks read extra lock words), an SCM scheme (aux lock in the
// template image), and a three-thread configuration.
func differentialConfigs() []Config {
	return []Config{
		{Scheme: "Standard", Lock: "TTAS", Threads: 2, Ops: 1},
		{Scheme: "HLE", Lock: "AdjTicket", Threads: 2, Ops: 1},
		{Scheme: "Opt-SLR-SCM", Lock: "AdjCLH", Threads: 2, Ops: 1},
		{Scheme: "HLE-SCM", Lock: "MCS", Threads: 2, Ops: 1},
		{Scheme: "Standard", Lock: "TTAS", Threads: 3, Ops: 1, MaxReplays: 20000},
	}
}

// TestChainMatchesScratch is the top-level differential: a chained, forking
// search must report exactly what an all-scratch search reports — same
// summary line, same distinct-state fingerprint sequence, same violation —
// at every chain depth. Only the fork/replay accounting may differ.
func TestChainMatchesScratch(t *testing.T) {
	for _, base := range differentialConfigs() {
		scratch := base
		scratch.TrackStates = true
		scratch.ChainDepth = -1
		want := Run(scratch)
		for _, depth := range []int{1, 2, 8} {
			cfg := base
			cfg.TrackStates = true
			cfg.ChainDepth = depth
			got := Run(cfg)
			if got.Line() != want.Line() {
				t.Errorf("%s: chain depth %d changed the report:\n  scratch: %s\n  chained: %s",
					base.Label(), depth, want.Line(), got.Line())
			}
			if !reflect.DeepEqual(got.StateFps, want.StateFps) {
				t.Errorf("%s: chain depth %d changed the state fingerprint sequence", base.Label(), depth)
			}
			if depth == 2 && got.Forks == 0 {
				t.Errorf("%s: no forks at chain depth %d; differential is vacuous", base.Label(), depth)
			}
		}
	}
}

// TestChainMatchesScratchOnMutants runs the differential over the seeded
// faults: forking must find the same violation kind and the same minimal
// counterexample schedule as scratch replay.
func TestChainMatchesScratchOnMutants(t *testing.T) {
	for _, cfg := range Mutants() {
		scratchCfg := cfg
		scratchCfg.ChainDepth = -1
		want := Run(scratchCfg)
		got := Run(cfg)
		if want.Violation == nil || got.Violation == nil {
			t.Fatalf("%s: seeded fault not detected (scratch %v, chained %v)",
				cfg.Label(), want.Violation != nil, got.Violation != nil)
		}
		if got.Violation.Kind != want.Violation.Kind ||
			!reflect.DeepEqual(got.Violation.Schedule, want.Violation.Schedule) {
			t.Errorf("%s: counterexample differs:\n  scratch: %s %s\n  chained: %s %s",
				cfg.Label(), want.Violation.Kind, FormatSchedule(want.Violation.Schedule),
				got.Violation.Kind, FormatSchedule(got.Violation.Schedule))
		}
	}
}

// TestValidateForksClean re-runs every fork from scratch in-line and
// compares the complete outcome — fingerprint, enabled set, sleep-relevant
// footprint edge, violation, terminal flags. A healthy bank must produce
// zero mismatches; this is the per-node differential behind the aggregate
// checks above.
func TestValidateForksClean(t *testing.T) {
	for _, base := range []Config{
		{Scheme: "HLE", Lock: "TTAS", Threads: 2, Ops: 1},
		{Scheme: "Opt-SLR", Lock: "AdjCLH", Threads: 2, Ops: 1},
	} {
		cfg := base
		cfg.ValidateForks = true
		r := Run(cfg)
		if r.Forks == 0 {
			t.Fatalf("%s: validation ran but nothing forked", cfg.Label())
		}
		if r.ForkMismatches != 0 {
			t.Errorf("%s: %d of %d forks disagreed with scratch replay",
				cfg.Label(), r.ForkMismatches, r.Forks)
		}
		if r.Violation != nil {
			t.Errorf("%s: unexpected violation: %s", cfg.Label(), r.Violation.Error())
		}
	}
}

// TestStaleBankCaught is the mutation test for the validator: corrupt every
// banked outcome the way a stale checkpoint would (a field the resume path
// forgot to carry over), and require ValidateForks to notice. Without the
// corruption hook the same configuration must validate clean, proving the
// detector has no false positives.
func TestStaleBankCaught(t *testing.T) {
	cfg := Config{Scheme: "HLE", Lock: "TTAS", Threads: 2, Ops: 1, ValidateForks: true}

	corruptions := []struct {
		name string
		mut  func(prefix []uint8, o *runOutcome)
	}{
		// A resume that skipped part of the machine image: the state
		// fingerprint no longer matches what scratch execution reaches.
		{"skipped-state-field", func(_ []uint8, o *runOutcome) {
			if !o.terminal && !o.truncated {
				o.fp ^= 1
			}
		}},
		// A resume that lost an enabled thread at the frontier.
		{"dropped-enabled-thread", func(_ []uint8, o *runOutcome) {
			if len(o.enabled) > 1 {
				o.enabled = o.enabled[:len(o.enabled)-1]
			}
		}},
		// A resume that dropped the final grant's footprint, which feeds
		// the sleep sets and stutter folding of every child node.
		{"lost-edge-footprint", func(_ []uint8, o *runOutcome) {
			o.lastEdge = edge{}
		}},
	}
	for _, c := range corruptions {
		testCorruptBank = c.mut
		r := Run(cfg)
		testCorruptBank = nil
		if r.Forks == 0 {
			t.Fatalf("%s: corrupted run produced no forks to validate", c.name)
		}
		if r.ForkMismatches == 0 {
			t.Errorf("%s: stale bank went undetected across %d forks", c.name, r.Forks)
		}
	}

	// Control: with the hook removed the detector must be quiet.
	clean := Run(cfg)
	if clean.ForkMismatches != 0 {
		t.Errorf("clean run reported %d fork mismatches", clean.ForkMismatches)
	}
}
