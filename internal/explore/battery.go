package explore

// AllSchemes is every elision scheme the explorer can drive, in the
// harness's canonical order.
var AllSchemes = []string{
	"Standard",
	"HLE",
	"HLE-HWExt",
	"RTM-LE",
	"HLE-lazy",
	"RTM-LE-lazy",
	"HLE-SCM",
	"HLE-SCM-ideal",
	"HLE-SCM-multi",
	"Pes-SLR",
	"Opt-SLR",
	"Opt-SLR-SCM",
}

// The lazy schemes above are the FIXED lazy-subscription variants (both
// Dice et al. fixes on): the battery proves them clean over every sweep
// lock. Their naive counterparts ("HLE-lazy-naive", "RTM-LE-lazy-naive")
// are deliberately unsafe hazard-reproduction configurations and are
// never part of a zero-violation sweep.

// SweepLocks are the lock algorithms of the acceptance sweep: the two
// unmodifiable spin locks plus the paper's two adjusted (elision-safe,
// Theorems 1-2) queue locks.
var SweepLocks = []string{"TTAS", "MCS", "AdjTicket", "AdjCLH"}

// Battery returns the exploration sweep: every scheme crossed with every
// sweep lock, plus one three-thread configuration. The quick battery runs
// one operation per thread and is cheap enough for CI; the full battery
// is the acceptance sweep at two operations per thread (the bounded
// replay budget truncates the deepest transactional configurations, which
// is the "bounded" in bounded model checking).
func Battery(quick bool) []Config {
	ops, budget := 2, 0
	if quick {
		// One op per thread, and a smaller replay budget: the optimistic
		// SLR configurations mutate per-attempt statistics on every retry
		// (real state, so the fingerprint cache cannot collapse them) and
		// would otherwise dominate the tier's runtime.
		ops, budget = 1, 20000
	}
	var cfgs []Config
	for _, s := range AllSchemes {
		for _, l := range SweepLocks {
			cfgs = append(cfgs, Config{Scheme: s, Lock: l, Threads: 2, Ops: ops, MaxReplays: budget})
		}
	}
	cfgs = append(cfgs, Config{Scheme: "Standard", Lock: "TTAS", Threads: 3, Ops: 1, MaxReplays: budget})
	if !quick {
		// Deeper configurations, reachable since checkpoint-fork replay
		// chaining halved the per-replay cost: three threads at full depth
		// and a four-thread single-op sweep. The replay budget still
		// bounds the transactional ones.
		cfgs = append(cfgs,
			Config{Scheme: "Standard", Lock: "TTAS", Threads: 3, Ops: 2},
			Config{Scheme: "HLE", Lock: "TTAS", Threads: 3, Ops: 2},
			Config{Scheme: "Standard", Lock: "TTAS", Threads: 4, Ops: 1},
		)
	}
	return cfgs
}
