package explore

import (
	"reflect"
	"testing"
)

// TestQuickBattery is the CI tier of the acceptance sweep: every scheme
// crossed with every sweep lock at 2 threads x 1 op, plus a three-thread
// configuration, all with zero violations. The full 2x2 sweep is the
// hle-bench -explore run recorded in EXPERIMENTS.md.
func TestQuickBattery(t *testing.T) {
	for _, cfg := range Battery(true) {
		r := Run(cfg)
		t.Log(r.Line())
		if r.Violation != nil {
			t.Errorf("%s: %s\n%s", cfg.Label(), r.Violation.Error(), r.Violation.Failure.Dump())
		}
		if r.Schedules == 0 {
			t.Errorf("%s: no complete schedule explored", cfg.Label())
		}
	}
}

// TestDepthTwoOps explores two-operation configurations, where the
// serializability checker sees genuinely reordered histories (op 2 of one
// thread racing op 1 of the other).
func TestDepthTwoOps(t *testing.T) {
	cfgs := []Config{
		{Scheme: "Standard", Lock: "TTAS", Threads: 2, Ops: 2},
		{Scheme: "Standard", Lock: "AdjCLH", Threads: 2, Ops: 2},
	}
	if !testing.Short() {
		cfgs = append(cfgs, Config{Scheme: "HLE", Lock: "AdjTicket", Threads: 2, Ops: 2})
	}
	for _, cfg := range cfgs {
		r := Run(cfg)
		t.Log(r.Line())
		if r.Violation != nil {
			t.Errorf("%s: %s\n%s", cfg.Label(), r.Violation.Error(), r.Violation.Failure.Dump())
		}
	}
}

// TestMutantsCaught proves the checker's teeth: each seeded fault is
// detected, with a deterministic counterexample schedule and a non-empty
// diagnostic dump. The expected violation kinds are pinned: blind CLH
// release orphans a waiter (progress), and both lazy subscription and the
// missing suspend-on-miss let a transaction commit against a concurrent
// non-speculative critical section, losing an update (serializability).
// The three lazy-pipeline mutants each disable one ingredient of the
// fixed commit sequence and all lose an update the same way — committing
// (or having already published, for drain-before-check) over a
// pessimistic holder.
func TestMutantsCaught(t *testing.T) {
	wantKind := map[string]string{
		MutantCLHBlindRelease:   "progress",
		MutantSCMLazy:           "serializability",
		MutantHWExtNoSuspend:    "serializability",
		MutantLazySkipCheck:     "serializability",
		MutantLazyDrainFirst:    "serializability",
		MutantLazyNoWindowAbort: "serializability",
	}
	for _, cfg := range Mutants() {
		first := Run(cfg)
		if first.Violation == nil {
			t.Errorf("%s: seeded fault not detected", cfg.Label())
			continue
		}
		v := first.Violation
		t.Logf("%s: %s", cfg.Label(), v.Error())
		if want := wantKind[cfg.Mutant]; v.Kind != want {
			t.Errorf("%s: violation kind %q, want %q", cfg.Label(), v.Kind, want)
		}
		if len(v.Schedule) == 0 || len(v.Schedule) > 32 {
			t.Errorf("%s: counterexample schedule has %d decisions, want a short one (BFS finds minimal)",
				cfg.Label(), len(v.Schedule))
		}
		if v.Failure == nil || v.Failure.Dump() == "" {
			t.Errorf("%s: violation carries no diagnostic dump", cfg.Label())
		}
		// The counterexample must be deterministic: an independent rerun
		// finds the identical minimal schedule.
		second := Run(cfg)
		if second.Violation == nil {
			t.Errorf("%s: fault detected on first run but not second", cfg.Label())
		} else if !reflect.DeepEqual(v.Schedule, second.Violation.Schedule) || v.Kind != second.Violation.Kind {
			t.Errorf("%s: counterexample not deterministic:\n  first:  %s %s\n  second: %s %s",
				cfg.Label(), v.Kind, FormatSchedule(v.Schedule),
				second.Violation.Kind, FormatSchedule(second.Violation.Schedule))
		}
	}
}

// TestParallelDeterminism checks the acceptance requirement that explorer
// output is byte-identical across -parallel values: frontier waves fan out
// across workers, but the merge is sequential in declaration order.
func TestParallelDeterminism(t *testing.T) {
	base := Config{Scheme: "HLE", Lock: "TTAS", Threads: 2, Ops: 1, TrackStates: true}
	var results []*Result
	for _, par := range []int{1, 3, 7} {
		cfg := base
		cfg.Parallel = par
		results = append(results, Run(cfg))
	}
	for _, r := range results[1:] {
		if r.Line() != results[0].Line() {
			t.Errorf("report differs across parallelism:\n  parallel=1: %s\n  parallel=%d: %s",
				results[0].Line(), r.Config.Parallel, r.Line())
		}
		if !reflect.DeepEqual(r.StateFps, results[0].StateFps) {
			t.Errorf("state fingerprint sequence differs at parallel=%d", r.Config.Parallel)
		}
	}
}

// TestSleepSetsLoseNothing cross-checks the sleep-set pruning. The state
// sets with and without it are not comparable (the stutter bound is
// path-dependent, so whichever path reaches a fingerprint first decides
// how much spin-loop tail gets cut), but the guarantee that matters is:
// pruning saves work on correct configurations and loses no violations on
// broken ones.
func TestSleepSetsLoseNothing(t *testing.T) {
	for _, base := range []Config{
		{Scheme: "Standard", Lock: "TTAS", Threads: 2, Ops: 1},
		{Scheme: "HLE", Lock: "AdjTicket", Threads: 2, Ops: 1},
	} {
		off := base
		off.NoSleepSets = true
		ron, roff := Run(base), Run(off)
		if ron.Violation != nil || roff.Violation != nil {
			t.Fatalf("%s: unexpected violation during cross-check", base.Label())
		}
		if ron.Replays > roff.Replays {
			t.Errorf("%s: sleep sets increased replays: %d > %d", base.Label(), ron.Replays, roff.Replays)
		}
		if ron.SleepPruned == 0 {
			t.Errorf("%s: sleep sets pruned nothing; cross-check is vacuous", base.Label())
		}
	}
	for _, cfg := range Mutants() {
		with := Run(cfg)
		off := cfg
		off.NoSleepSets = true
		without := Run(off)
		if with.Violation == nil || without.Violation == nil {
			t.Fatalf("%s: seeded fault not detected during cross-check", cfg.Label())
		}
		if with.Violation.Kind != without.Violation.Kind {
			t.Errorf("%s: sleep sets changed the detected violation: %q with, %q without",
				cfg.Label(), with.Violation.Kind, without.Violation.Kind)
		}
	}
}

// TestBoundsReported checks that truncation by the replay budget is
// surfaced in the result rather than silently absorbed.
func TestBoundsReported(t *testing.T) {
	r := Run(Config{Scheme: "Standard", Lock: "TTAS", Threads: 2, Ops: 2, MaxReplays: 500})
	t.Log(r.Line())
	if r.Truncated == 0 {
		t.Errorf("tiny replay budget produced no truncation count")
	}
	if r.Violation != nil {
		t.Errorf("truncation misreported as a violation: %s", r.Violation.Error())
	}
}
