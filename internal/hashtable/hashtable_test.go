package hashtable_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hle/internal/core"
	"hle/internal/hashtable"
	"hle/internal/locks"
	"hle/internal/tsx"
)

func newMachine(n int, seed int64) *tsx.Machine {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0
	cfg.MemWords = 1 << 18
	return tsx.NewMachine(cfg)
}

func TestBasicOps(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		h := hashtable.New(th, 16)
		if h.Contains(th, 9) {
			t.Fatal("empty table contains 9")
		}
		if !h.Insert(th, 9, 90) {
			t.Fatal("insert returned false")
		}
		if h.Insert(th, 9, 91) {
			t.Fatal("re-insert returned true")
		}
		if v, ok := h.Lookup(th, 9); !ok || v != 91 {
			t.Fatalf("lookup = %d,%v", v, ok)
		}
		if !h.Delete(th, 9) || h.Delete(th, 9) {
			t.Fatal("delete semantics wrong")
		}
		if h.Size(th) != 0 {
			t.Fatal("table not empty")
		}
	})
}

// TestCollisionChains exercises chains: with 4 buckets and many keys,
// every bucket develops a chain and middle-of-chain deletion is hit.
func TestCollisionChains(t *testing.T) {
	m := newMachine(1, 2)
	m.RunOne(func(th *tsx.Thread) {
		h := hashtable.New(th, 4)
		for k := uint64(0); k < 64; k++ {
			if !h.Insert(th, k, k*10) {
				t.Fatalf("insert %d failed", k)
			}
		}
		if h.Size(th) != 64 {
			t.Fatalf("size %d", h.Size(th))
		}
		for k := uint64(0); k < 64; k += 3 {
			if !h.Delete(th, k) {
				t.Fatalf("delete %d failed", k)
			}
		}
		for k := uint64(0); k < 64; k++ {
			want := k%3 != 0
			if got := h.Contains(th, k); got != want {
				t.Fatalf("contains(%d) = %v want %v", k, got, want)
			}
		}
	})
}

func TestModelEquivalence(t *testing.T) {
	m := newMachine(1, 3)
	m.RunOne(func(th *tsx.Thread) {
		h := hashtable.New(th, 32)
		model := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(41))
		for i := 0; i < 5000; i++ {
			key := uint64(rng.Intn(200))
			switch rng.Intn(3) {
			case 0:
				val := uint64(rng.Intn(999)) + 1
				_, had := model[key]
				if got := h.Insert(th, key, val); got == had {
					t.Fatalf("op %d: Insert(%d)=%v had=%v", i, key, got, had)
				}
				model[key] = val
			case 1:
				_, had := model[key]
				if got := h.Delete(th, key); got != had {
					t.Fatalf("op %d: Delete(%d)=%v had=%v", i, key, got, had)
				}
				delete(model, key)
			default:
				want, had := model[key]
				got, ok := h.Lookup(th, key)
				if ok != had || (had && got != want) {
					t.Fatalf("op %d: Lookup(%d)=%d,%v want %d,%v", i, key, got, ok, want, had)
				}
			}
		}
		if h.Size(th) != len(model) {
			t.Fatalf("size %d model %d", h.Size(th), len(model))
		}
	})
}

// TestSetSemanticsProperty: inserting then deleting any key set leaves the
// table empty (property-based).
func TestSetSemanticsProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		ok := true
		m := newMachine(1, 5)
		m.RunOne(func(th *tsx.Thread) {
			h := hashtable.New(th, 8)
			uniq := map[uint64]bool{}
			for _, k := range keys {
				h.Insert(th, k, 1)
				uniq[k] = true
			}
			if h.Size(th) != len(uniq) {
				ok = false
				return
			}
			for k := range uniq {
				if !h.Delete(th, k) {
					ok = false
				}
			}
			if h.Size(th) != 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentUnderHLESCM: concurrent table ops under the SCM scheme keep
// size accounting exact.
func TestConcurrentUnderHLESCM(t *testing.T) {
	m := newMachine(8, 7)
	var s core.Scheme
	var h *hashtable.Table
	m.RunOne(func(th *tsx.Thread) {
		s = core.NewHLESCM(locks.NewMCS(th), locks.NewMCS(th), core.SCMConfig{})
		h = hashtable.New(th, 64)
	})
	inserted := make([]int, 8)
	deleted := make([]int, 8)
	m.Run(8, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < 150; i++ {
			key := uint64(th.Rand().Intn(256))
			switch th.Rand().Intn(4) {
			case 0:
				var ok bool
				s.Run(th, func() { ok = h.Insert(th, key, key) })
				if ok {
					inserted[th.ID]++
				}
			case 1:
				var ok bool
				s.Run(th, func() { ok = h.Delete(th, key) })
				if ok {
					deleted[th.ID]++
				}
			default:
				s.Run(th, func() { h.Contains(th, key) })
			}
		}
	})
	m.RunOne(func(th *tsx.Thread) {
		want := 0
		for id := 0; id < 8; id++ {
			want += inserted[id] - deleted[id]
		}
		if got := h.Size(th); got != want {
			t.Fatalf("size %d, want %d", got, want)
		}
	})
}
