// Package hashtable implements the second §5.2 data-structure benchmark: a
// chained hash table over simulated memory. Its critical sections are
// always short, so as the paper notes it "zooms in" on the short-transaction
// end of the red-black tree workload spectrum.
package hashtable

import (
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Node field offsets (words).
const (
	offKey  = 0
	offVal  = 1
	offNext = 2

	nodeWords = 3
)

// Table is a fixed-size chained hash table.
type Table struct {
	buckets mem.Addr
	nbkt    uint64
}

// New allocates a table with nbkt buckets (rounded up to a power of two).
func New(t *tsx.Thread, nbkt int) *Table {
	n := uint64(1)
	for n < uint64(nbkt) {
		n *= 2
	}
	return &Table{buckets: t.Alloc(int(n)), nbkt: n}
}

// hash mixes the key (64-bit finalizer from SplitMix64).
func (h *Table) hash(key uint64) mem.Addr {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return h.buckets + mem.Addr(key&(h.nbkt-1))
}

// Lookup returns the value stored under key.
func (h *Table) Lookup(t *tsx.Thread, key uint64) (uint64, bool) {
	n := mem.Addr(t.Load(h.hash(key)))
	for n != mem.Nil {
		if t.Load(n+offKey) == key {
			return t.Load(n + offVal), true
		}
		n = mem.Addr(t.Load(n + offNext))
	}
	return 0, false
}

// Contains reports whether key is present.
func (h *Table) Contains(t *tsx.Thread, key uint64) bool {
	_, ok := h.Lookup(t, key)
	return ok
}

// Insert adds key→val, returning true if the key was absent (an existing
// key's value is updated).
func (h *Table) Insert(t *tsx.Thread, key, val uint64) bool {
	bkt := h.hash(key)
	n := mem.Addr(t.Load(bkt))
	for ; n != mem.Nil; n = mem.Addr(t.Load(n + offNext)) {
		if t.Load(n+offKey) == key {
			if t.Load(n+offVal) != val {
				t.Store(n+offVal, val)
			}
			return false
		}
	}
	node := t.Alloc(nodeWords)
	t.Store(node+offKey, key)
	if val != 0 {
		t.Store(node+offVal, val)
	}
	if head := t.Load(bkt); head != 0 {
		t.Store(node+offNext, head)
	}
	t.Store(bkt, uint64(node))
	return true
}

// Delete removes key, returning true if it was present.
func (h *Table) Delete(t *tsx.Thread, key uint64) bool {
	bkt := h.hash(key)
	prev := bkt
	n := mem.Addr(t.Load(bkt))
	for n != mem.Nil {
		next := mem.Addr(t.Load(n + offNext))
		if t.Load(n+offKey) == key {
			t.Store(prev, uint64(next))
			t.Free(n, nodeWords)
			return true
		}
		prev = n + offNext
		n = next
	}
	return false
}

// Size counts all entries (setup/test use only).
func (h *Table) Size(t *tsx.Thread) int {
	total := 0
	for b := uint64(0); b < h.nbkt; b++ {
		for n := mem.Addr(t.Load(h.buckets + mem.Addr(b))); n != mem.Nil; n = mem.Addr(t.Load(n + offNext)) {
			total++
		}
	}
	return total
}
