package check_test

import (
	"testing"

	"hle/internal/check"
	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/hashtable"
	"hle/internal/rbtree"
	"hle/internal/tsx"
)

func machineCfg(n int, seed int64) tsx.Config {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.MemWords = 1 << 18
	return cfg
}

// boolTo01 encodes operation results uniformly.
func boolTo01(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TestRBTreeSerializableUnderAllSchemes runs a concurrent insert/delete/
// lookup history over the red-black tree under every scheme and verifies
// the full history against a sequential map witness, result by result.
func TestRBTreeSerializableUnderAllSchemes(t *testing.T) {
	for _, spec := range []harness.SchemeSpec{
		{Scheme: "Standard", Lock: "MCS"},
		{Scheme: "HLE", Lock: "TTAS"},
		{Scheme: "HLE", Lock: "MCS"},
		{Scheme: "HLE-SCM", Lock: "MCS"},
		{Scheme: "HLE-SCM-multi", Lock: "TTAS"},
		{Scheme: "RTM-LE", Lock: "TTAS"},
		{Scheme: "Pes-SLR", Lock: "TTAS"},
		{Scheme: "Opt-SLR", Lock: "MCS"},
		{Scheme: "Opt-SLR-SCM", Lock: "TTAS"},
	} {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			m := tsx.NewMachine(machineCfg(8, 21))
			var s core.Scheme
			var tr *rbtree.Tree
			var rec *check.Recorder
			m.RunOne(func(th *tsx.Thread) {
				s = spec.Build(th)
				tr = rbtree.New(th)
				rec = check.NewRecorder(th)
			})
			m.Run(8, func(th *tsx.Thread) {
				s.Setup(th)
				for i := 0; i < 80; i++ {
					key := uint64(th.Rand().Intn(64))
					switch th.Rand().Intn(3) {
					case 0:
						rec.RunChecked(th, s, "insert", key, func() uint64 {
							return boolTo01(tr.Insert(th, key, key+1))
						})
					case 1:
						rec.RunChecked(th, s, "delete", key, func() uint64 {
							return boolTo01(tr.Delete(th, key))
						})
					default:
						rec.RunChecked(th, s, "lookup", key, func() uint64 {
							v, ok := tr.Lookup(th, key)
							return v<<1 | boolTo01(ok)
						})
					}
				}
			})
			model := map[uint64]uint64{}
			err := rec.Verify(func(kind string, key uint64) uint64 {
				switch kind {
				case "insert":
					_, had := model[key]
					model[key] = key + 1
					return boolTo01(!had)
				case "delete":
					_, had := model[key]
					delete(model, key)
					return boolTo01(had)
				default:
					v, ok := model[key]
					return v<<1 | boolTo01(ok)
				}
			})
			if err != nil {
				t.Fatalf("history not serializable: %v", err)
			}
			if rec.Len() != 8*80 {
				t.Fatalf("recorded %d ops, want %d", rec.Len(), 8*80)
			}
		})
	}
}

// TestHashTableSerializable does the same for the hash table under the
// highest-risk scheme (optimistic SLR, which reads the lock only at commit).
func TestHashTableSerializable(t *testing.T) {
	m := tsx.NewMachine(machineCfg(8, 5))
	var s core.Scheme
	var h *hashtable.Table
	var rec *check.Recorder
	m.RunOne(func(th *tsx.Thread) {
		s = (harness.SchemeSpec{Scheme: "Opt-SLR", Lock: "TTAS"}).Build(th)
		h = hashtable.New(th, 32)
		rec = check.NewRecorder(th)
	})
	m.Run(8, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < 100; i++ {
			key := uint64(th.Rand().Intn(48))
			switch th.Rand().Intn(3) {
			case 0:
				val := uint64(i + 1)
				rec.RunChecked(th, s, "insert", key<<32|val, func() uint64 {
					return boolTo01(h.Insert(th, key, val))
				})
			case 1:
				rec.RunChecked(th, s, "delete", key, func() uint64 {
					return boolTo01(h.Delete(th, key))
				})
			default:
				rec.RunChecked(th, s, "lookup", key, func() uint64 {
					v, ok := h.Lookup(th, key)
					return v<<1 | boolTo01(ok)
				})
			}
		}
	})
	model := map[uint64]uint64{}
	err := rec.Verify(func(kind string, packed uint64) uint64 {
		switch kind {
		case "insert":
			key, val := packed>>32, packed&0xffffffff
			_, had := model[key]
			model[key] = val
			return boolTo01(!had)
		case "delete":
			_, had := model[packed]
			delete(model, packed)
			return boolTo01(had)
		default:
			v, ok := model[packed]
			return v<<1 | boolTo01(ok)
		}
	})
	if err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
}

// TestVerifyCatchesCorruption: the checker must reject a cooked log.
func TestVerifyCatchesCorruption(t *testing.T) {
	m := tsx.NewMachine(machineCfg(1, 1))
	var rec *check.Recorder
	m.RunOne(func(th *tsx.Thread) {
		rec = check.NewRecorder(th)
		rec.Record(check.Op{Seq: 0, Kind: "insert", Key: 1, Result: 1})
		rec.Record(check.Op{Seq: 1, Kind: "insert", Key: 1, Result: 1}) // lie: re-insert must return 0
	})
	model := map[uint64]bool{}
	err := rec.Verify(func(kind string, key uint64) uint64 {
		had := model[key]
		model[key] = true
		if had {
			return 0
		}
		return 1
	})
	if err == nil {
		t.Fatal("checker accepted a non-serializable log")
	}
}

// TestVerifyCatchesMissingTicket: gaps in the ticket sequence are reported.
func TestVerifyCatchesMissingTicket(t *testing.T) {
	m := tsx.NewMachine(machineCfg(1, 1))
	var rec *check.Recorder
	m.RunOne(func(th *tsx.Thread) {
		rec = check.NewRecorder(th)
		rec.Record(check.Op{Seq: 0, Kind: "noop"})
		rec.Record(check.Op{Seq: 2, Kind: "noop"}) // gap at 1
	})
	if err := rec.Verify(func(string, uint64) uint64 { return 0 }); err == nil {
		t.Fatal("checker accepted a gapped ticket sequence")
	}
}
