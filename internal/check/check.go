// Package check provides a serializability checker for critical-section
// schemes: concurrent operations draw a ticket from a transactional
// sequence cell inside their critical section, so the ticket order IS the
// serialization order (the cell is read and written under the same
// lock/transaction as the operation itself). After the run, the recorded
// operations are replayed in ticket order against a sequential model and
// every recorded result must match.
//
// This is a stronger correctness statement than invariant checks: it
// verifies that the interleaved execution is equivalent to some sequential
// one, operation by operation, result by result.
package check

import (
	"fmt"
	"sort"

	"hle/internal/core"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// Op is one recorded operation instance.
type Op struct {
	// Seq is the serialization ticket drawn inside the critical section.
	Seq uint64
	// Thread is the executing simulated thread.
	Thread int
	// Kind and Key describe the operation.
	Kind string
	Key  uint64
	// Result is the value the operation returned to its caller.
	Result uint64
}

// Recorder hands out serialization tickets and accumulates the log.
type Recorder struct {
	seqCell mem.Addr
	log     []Op
}

// NewRecorder allocates the ticket cell in simulated memory.
func NewRecorder(t *tsx.Thread) *Recorder {
	return &Recorder{seqCell: t.AllocLines(1)}
}

// Fresh returns a new Recorder sharing this one's ticket cell with an
// empty log. It exists for checkpoint forking: the cell's allocation and
// contents live in simulated memory (captured by a machine checkpoint),
// so a forked run needs only a fresh Go-side log bound to the same cell.
func (r *Recorder) Fresh() *Recorder {
	return &Recorder{seqCell: r.seqCell}
}

// Ticket draws the next serialization ticket; call it inside the critical
// section (it performs a transactional read-modify-write of the shared
// cell, so it orders exactly like the operation's own accesses).
func (r *Recorder) Ticket(t *tsx.Thread) uint64 {
	seq := t.Load(r.seqCell)
	t.Store(r.seqCell, seq+1)
	return seq
}

// Record appends a completed operation. Call it after scheme.Run returns,
// with the ticket drawn by the completing execution. (Aborted speculative
// executions drew tickets too, but their stores rolled back, so completed
// tickets are dense and unique.)
func (r *Recorder) Record(op Op) {
	// Token-serialized execution makes the plain append safe.
	r.log = append(r.log, op)
}

// Model is a sequential specification: Apply executes one operation and
// returns the expected result.
type Model func(kind string, key uint64) uint64

// Verify replays the log in ticket order against the model. It returns an
// error describing the first divergence, or nil if the history is
// serializable with respect to the model.
func (r *Recorder) Verify(model Model) error {
	log := make([]Op, len(r.log))
	copy(log, r.log)
	sort.Slice(log, func(i, j int) bool { return log[i].Seq < log[j].Seq })
	for i, op := range log {
		if uint64(i) != op.Seq {
			return fmt.Errorf("ticket %d missing or duplicated (position %d held by %+v)", i, i, op)
		}
		if want := model(op.Kind, op.Key); want != op.Result {
			return fmt.Errorf("op %d (%s key=%d by thread %d): result %d, sequential witness expects %d",
				op.Seq, op.Kind, op.Key, op.Thread, op.Result, want)
		}
	}
	return nil
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int { return len(r.log) }

// RunChecked is a convenience: it wraps a critical section that draws a
// ticket and produces a result, runs it under the scheme, and records the
// completing execution. The ticket is drawn AFTER the operation body,
// just before the section ends: it orders identically (the draw is inside
// the same transaction or lock hold, so ticket order is commit order),
// but the shared cell is exposed to conflicts for only the few cycles of
// its read-modify-write instead of the whole operation — a start-of-
// section draw would make every pair of overlapping speculations
// conflict, serializing checked workloads no matter how disjoint their
// data accesses are.
func (r *Recorder) RunChecked(t *tsx.Thread, s core.Scheme, kind string, key uint64,
	cs func() uint64) {
	var seq, result uint64
	s.Run(t, func() {
		result = cs()
		seq = r.Ticket(t)
	})
	r.Record(Op{Seq: seq, Thread: t.ID, Kind: kind, Key: key, Result: result})
}
