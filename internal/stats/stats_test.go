package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimelineRecording(t *testing.T) {
	tl := NewTimeline(100)
	tl.Record(50, true)   // slot 0
	tl.Record(150, false) // slot 1
	tl.Record(160, true)  // slot 1
	tl.Record(550, false) // slot 5
	if len(tl.Slots) != 6 {
		t.Fatalf("slots = %d, want 6", len(tl.Slots))
	}
	if tl.Slots[0].Ops != 1 || tl.Slots[0].NonSpec != 0 {
		t.Errorf("slot 0 = %+v", tl.Slots[0])
	}
	if tl.Slots[1].Ops != 2 || tl.Slots[1].NonSpec != 1 {
		t.Errorf("slot 1 = %+v", tl.Slots[1])
	}
	if tl.Slots[5].NonSpec != 1 {
		t.Errorf("slot 5 = %+v", tl.Slots[5])
	}
}

func TestTimelineZeroSlotIsNoop(t *testing.T) {
	tl := NewTimeline(0)
	tl.Record(50, true)
	if len(tl.Slots) != 0 {
		t.Fatal("zero-slot timeline recorded")
	}
	if tl.NormalizedOps() != nil {
		t.Fatal("empty timeline should normalize to nil")
	}
}

// TestNormalizedOpsMeanIsOne: normalization property — the mean of the
// normalized series is 1 for any non-empty recording.
func TestNormalizedOpsMeanIsOne(t *testing.T) {
	f := func(raw []uint8) bool {
		tl := NewTimeline(10)
		any := false
		for i, r := range raw {
			if i >= 20 {
				break
			}
			for j := 0; j < int(r%5); j++ {
				tl.Record(uint64(i*10+j), r%2 == 0)
				any = true
			}
		}
		if !any {
			return true
		}
		norm := tl.NormalizedOps()
		var sum float64
		for _, v := range norm {
			sum += v
		}
		mean := sum / float64(len(norm))
		return mean > 0.999 && mean < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNonSpecFractions(t *testing.T) {
	tl := NewTimeline(10)
	tl.Record(5, true)
	tl.Record(6, false)
	fr := tl.NonSpecFractions()
	if len(fr) != 1 || fr[0] != 0.5 {
		t.Fatalf("fractions = %v", fr)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1.00")
	tb.AddRow("b", "10.00")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	// Columns align: every row has the same rune width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Errorf("misaligned line %q (want width %d)", l, w)
		}
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		2:         "2",
		512:       "512",
		2048:      "2K",
		524288:    "512K",
		2 << 20:   "2M",
		8 << 20:   "8M",
		1000:      "1000", // not a multiple of 1024
		3 * 1024:  "3K",
		128 << 10: "128K",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 1)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	if Sparkline(nil, 0) != "" {
		t.Error("empty sparkline should be empty string")
	}
	// Out-of-range values clamp instead of panicking.
	_ = Sparkline([]float64{-1, 99}, 1)
}

func TestFormatters(t *testing.T) {
	if F2(1.005) == "" || F3(0.1234) != "0.123" || U(7) != "7" || I(-2) != "-2" {
		t.Error("formatter output wrong")
	}
	if E2(0.000123) != "1.23e-04" {
		t.Errorf("E2 = %q", E2(0.000123))
	}
}

func TestFprintCSV(t *testing.T) {
	tb := &Table{
		Title:  "csv demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("plain", "1.00")
	tb.AddRow(`with,comma`, `with"quote`)
	var sb strings.Builder
	tb.FprintCSV(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV rendered %d lines: %q", len(lines), out)
	}
	if lines[0] != "# csv demo" {
		t.Errorf("title line %q", lines[0])
	}
	if lines[1] != "name,value" {
		t.Errorf("header line %q", lines[1])
	}
	if lines[2] != "plain,1.00" {
		t.Errorf("row line %q", lines[2])
	}
	if lines[3] != `"with,comma","with""quote"` {
		t.Errorf("escaped row %q", lines[3])
	}
}
