// Package stats provides time-sliced series and text-table rendering for
// the benchmark harness and the figure generators.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Slice accumulates operations completing within one time slot.
type Slice struct {
	Ops     uint64
	NonSpec uint64
}

// Timeline is a per-slot completion series in virtual time, the basis of
// Figure 3.3's serialization-dynamics plots.
type Timeline struct {
	SlotCycles uint64
	Slots      []Slice
}

// NewTimeline creates a timeline with the given slot width in cycles.
func NewTimeline(slotCycles uint64) *Timeline {
	return &Timeline{SlotCycles: slotCycles}
}

// Record logs one completed operation at the given virtual time.
func (tl *Timeline) Record(clock uint64, spec bool) {
	if tl.SlotCycles == 0 {
		return
	}
	slot := int(clock / tl.SlotCycles)
	for len(tl.Slots) <= slot {
		tl.Slots = append(tl.Slots, Slice{})
	}
	tl.Slots[slot].Ops++
	if !spec {
		tl.Slots[slot].NonSpec++
	}
}

// NormalizedOps returns each slot's throughput normalized to the mean
// throughput over all slots (the top panes of Figure 3.3).
func (tl *Timeline) NormalizedOps() []float64 {
	if len(tl.Slots) == 0 {
		return nil
	}
	var total uint64
	for _, s := range tl.Slots {
		total += s.Ops
	}
	mean := float64(total) / float64(len(tl.Slots))
	out := make([]float64, len(tl.Slots))
	for i, s := range tl.Slots {
		if mean > 0 {
			out[i] = float64(s.Ops) / mean
		}
	}
	return out
}

// NonSpecFractions returns each slot's non-speculative completion fraction
// (the bottom panes of Figure 3.3).
func (tl *Timeline) NonSpecFractions() []float64 {
	out := make([]float64, len(tl.Slots))
	for i, s := range tl.Slots {
		if s.Ops > 0 {
			out[i] = float64(s.NonSpec) / float64(s.Ops)
		}
	}
	return out
}

// Table is a simple text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// FprintCSV renders the table as CSV (title as a comment line), for
// feeding the figure data into plotting tools.
func (t *Table) FprintCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	esc := func(cells []string) string {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		return strings.Join(out, ",")
	}
	fmt.Fprintln(w, esc(t.Header))
	for _, row := range t.Rows {
		fmt.Fprintln(w, esc(row))
	}
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// E2 formats a float in scientific notation.
func E2(v float64) string { return fmt.Sprintf("%.2e", v) }

// U formats an unsigned integer.
func U(v uint64) string { return fmt.Sprintf("%d", v) }

// I formats an integer.
func I(v int) string { return fmt.Sprintf("%d", v) }

// SizeLabel formats a byte/element count the way the paper's x axes do
// (2, 8, ..., 2K, 8K, ..., 512K, 2M).
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Sparkline renders values as a compact unicode strip chart, used by the
// time-series figures.
func Sparkline(vals []float64, max float64) string {
	if max <= 0 {
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range vals {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
