package adapt

import (
	"strings"
	"testing"

	"hle/internal/obs"
)

// testConfig is a small, readable tuning for driving the state machine by
// hand: short streaks, dwell, and probation. ProbationWindows is larger
// than PromoteWindows so the embargo is observable (it must outlast the
// streak a promotion needs).
func testConfig() Config {
	return Config{
		WindowCycles:     100,
		DemotePct:        50,
		SerialDemotePct:  80,
		PromotePct:       10,
		CapacityPct:      50,
		DemoteWindows:    2,
		PromoteWindows:   2,
		DwellWindows:     2,
		ProbationWindows: 4,
		ProbationMax:     8,
		ProbationReset:   16,
		MinOps:           1,
	}
}

// Window builders. Events are sized so the integer percentages are exact.
func goodWin(idx int) obs.WindowStats {
	return obs.WindowStats{Index: idx, Commits: 100}
}
func badWin(idx int) obs.WindowStats {
	return obs.WindowStats{Index: idx, Commits: 40, Aborts: 60, DataLine: 60}
}
func capacityWin(idx int) obs.WindowStats {
	// 20% aborts — under DemotePct — but capacity-dominated.
	return obs.WindowStats{Index: idx, Commits: 80, Aborts: 20, Capacity: 20}
}
func serialWin(idx int) obs.WindowStats {
	// Aborts moderate, speculation collapsed: 90% of ops non-speculative.
	return obs.WindowStats{Index: idx, Commits: 10, Serial: 90, Aborts: 20, LockLine: 20}
}
func quietWin(idx int) obs.WindowStats {
	return obs.WindowStats{Index: idx}
}

// feedN feeds n consecutive windows built by mk and acknowledges every
// decision immediately (nothing in flight), the way an executing scheme
// with idle threads would.
func feedN(c *Controller, n int, mk func(int) obs.WindowStats) {
	for i := 0; i < n; i++ {
		w := mk(c.Windows())
		c.Observe(w)
		if c.Draining() {
			c.NoteSwap(uint64(w.Index+1)*100, 0)
		}
	}
}

func TestControllerDemotionHysteresis(t *testing.T) {
	c := NewController(testConfig())
	if c.Level() != Elide {
		t.Fatalf("start level %v, want Elide", c.Level())
	}
	// One bad window is not enough (DemoteWindows=2).
	feedN(c, 1, badWin)
	if c.Level() != Elide {
		t.Fatalf("demoted after a single bad window")
	}
	// A good window resets the streak; another lone bad window must not
	// demote either.
	feedN(c, 1, goodWin)
	feedN(c, 1, badWin)
	if c.Level() != Elide {
		t.Fatalf("streak survived an intervening good window")
	}
	// Two consecutive bad windows demote one rung.
	feedN(c, 1, badWin)
	if c.Level() != SCM {
		t.Fatalf("level %v after demotion streak, want SCM", c.Level())
	}
	tr := c.Transitions()
	if len(tr) != 1 || tr[0].From != Elide || tr[0].To != SCM || tr[0].Reason != "abort-pressure" {
		t.Fatalf("transition log wrong: %v", tr)
	}
}

func TestControllerDwellBlocksBackToBackSwitches(t *testing.T) {
	c := NewController(testConfig())
	feedN(c, 2, badWin) // demote at the second bad window
	if c.Level() != SCM {
		t.Fatalf("setup: want SCM, got %v", c.Level())
	}
	// The window right after a switch cannot demote again: the dwell
	// minimum (2) has not elapsed, whatever the evidence.
	feedN(c, 1, badWin)
	if c.Level() != SCM {
		t.Fatalf("demoted during dwell")
	}
	feedN(c, 1, badWin)
	if c.Level() != Serial {
		t.Fatalf("dwell over and streak complete, want Serial, got %v", c.Level())
	}
}

func TestControllerSerialPressureDemotes(t *testing.T) {
	c := NewController(testConfig())
	feedN(c, 2, serialWin)
	if c.Level() != SCM {
		t.Fatalf("serial-pressure did not demote: %v", c.Level())
	}
	if tr := c.Transitions(); tr[0].Reason != "serial-pressure" {
		t.Fatalf("reason %q, want serial-pressure", tr[0].Reason)
	}
}

func TestControllerCapacitySkipsToSerial(t *testing.T) {
	c := NewController(testConfig())
	feedN(c, 2, capacityWin)
	if c.Level() != Serial {
		t.Fatalf("capacity-dominated mix did not skip to Serial: %v", c.Level())
	}
	tr := c.Transitions()
	if len(tr) != 1 || tr[0].Reason != "capacity" || tr[0].From != Elide {
		t.Fatalf("capacity transition wrong: %v", tr)
	}
}

func TestControllerPromotionAndProbation(t *testing.T) {
	c := NewController(testConfig())
	feedN(c, 2, badWin) // Elide -> SCM; 4-window promotion embargo starts
	if c.Level() != SCM {
		t.Fatalf("setup: want SCM")
	}
	// Two good windows build a full promotion streak, but the embargo
	// still has windows left: no promotion yet.
	feedN(c, 2, goodWin)
	if c.Level() != SCM {
		t.Fatalf("promoted during probation embargo")
	}
	// Once the embargo expires the (by now longer) streak promotes.
	feedN(c, 2, goodWin)
	if c.Level() != Elide {
		t.Fatalf("did not promote after probation: %v", c.Level())
	}
	if tr := c.Transitions(); tr[len(tr)-1].Reason != "recovered" {
		t.Fatalf("promotion reason wrong: %v", tr)
	}
}

func TestControllerProbationDoublesAndCaps(t *testing.T) {
	cfg := testConfig() // ProbationWindows 4, ProbationMax 8
	c := NewController(cfg)
	if c.probation != cfg.ProbationWindows {
		t.Fatalf("fresh probation %d, want %d", c.probation, cfg.ProbationWindows)
	}
	feedN(c, 2, badWin) // Elide -> SCM
	if c.probationTB != 4 || c.probation != 8 {
		t.Fatalf("after first demotion: embargo %d, next %d; want 4 and 8",
			c.probationTB, c.probation)
	}
	feedN(c, 2, badWin) // SCM -> Serial once dwell elapses
	if c.Level() != Serial {
		t.Fatalf("setup: want Serial, got %v", c.Level())
	}
	if c.probationTB != 8 || c.probation != 8 {
		t.Fatalf("after second demotion: embargo %d, next %d; want both capped at 8",
			c.probationTB, c.probation)
	}
}

func TestControllerProbationResets(t *testing.T) {
	cfg := testConfig()
	c := NewController(cfg)
	feedN(c, 10, badWin) // down to Serial; probation grew to the cap
	if c.probation == cfg.ProbationWindows {
		t.Fatalf("setup: probation did not grow")
	}
	// ProbationReset demotion-free windows forgive past instability (the
	// controller also climbs back to Elide along the way).
	feedN(c, 40, goodWin)
	if c.Level() != Elide {
		t.Fatalf("did not recover to Elide: %v", c.Level())
	}
	if c.probation != cfg.ProbationWindows {
		t.Fatalf("probation %d after reset stretch, want base %d",
			c.probation, cfg.ProbationWindows)
	}
}

func TestControllerQuietWindowsHoldStreaks(t *testing.T) {
	cfg := testConfig()
	cfg.MinOps = 4
	c := NewController(cfg)
	feedN(c, 1, badWin)
	// Quiet windows advance dwell/probation clocks but do not touch the
	// evidence streaks in either direction.
	feedN(c, 3, quietWin)
	feedN(c, 1, badWin)
	if c.Level() != SCM {
		t.Fatalf("quiet windows broke the demotion streak: %v", c.Level())
	}
}

func TestControllerFloorIgnoresSelfInflictedAborts(t *testing.T) {
	// At the Serial floor the full abort share stays high — every probe
	// that loses to the serial path dies explicitly at the entry check or
	// on the lock line — but the hard share is near zero. The controller
	// must read that as health and promote; counting the floor's
	// self-inflicted aborts would blind it forever.
	cfg := testConfig()
	cfg.Start = Serial
	c := NewController(cfg)
	floor := func(idx int) obs.WindowStats {
		return obs.WindowStats{
			Index: idx, Commits: 5, Serial: 45,
			Aborts: 50, LockLine: 30, Explicit: 20,
		}
	}
	feedN(c, 2, floor)
	if c.Level() != SCM {
		t.Fatalf("floor did not promote despite zero hard aborts: %v", c.Transitions())
	}
	if tr := c.Transitions(); tr[0].Reason != "recovered" {
		t.Fatalf("promotion reason wrong: %v", tr)
	}
}

func TestControllerNoDecisionWhileDraining(t *testing.T) {
	c := NewController(testConfig())
	c.Observe(badWin(0))
	c.Observe(badWin(1)) // decides Elide -> SCM
	if !c.Draining() {
		t.Fatalf("decided transition not marked draining")
	}
	// Swap observed with sections still in flight: decisions stay blocked
	// until NoteDrained, no matter the evidence.
	c.NoteSwap(250, 3)
	if !c.Draining() {
		t.Fatalf("NoteSwap with inflight sections cleared the drain")
	}
	for i := 2; i < 8; i++ {
		c.Observe(badWin(i))
	}
	if len(c.Transitions()) != 1 {
		t.Fatalf("decided while draining: %v", c.Transitions())
	}
	c.NoteDrained(900)
	tr := c.Transitions()[0]
	if tr.SwapClock != 250 || tr.DrainClock != 900 || tr.Inflight != 3 {
		t.Fatalf("drain stamps wrong: %+v", tr)
	}
	// With the drain resolved (and the bad streak built up during it),
	// the very next window may decide again.
	feedN(c, 1, badWin)
	if c.Level() != Serial {
		t.Fatalf("decisions still blocked after drain: %v", c.Level())
	}
}

func TestControllerNoteSwapIdleDrainsImmediately(t *testing.T) {
	c := NewController(testConfig())
	feedN(c, 2, badWin) // feedN acknowledges with inflight=0
	if c.Draining() {
		t.Fatalf("swap with nothing in flight left the controller draining")
	}
	tr := c.Transitions()[0]
	if tr.SwapClock == 0 || tr.DrainClock != tr.SwapClock {
		t.Fatalf("idle swap not stamped as instant drain: %+v", tr)
	}
}

func TestConfigValidatePanics(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"DemotePct over 100", func(c *Config) { c.DemotePct = 101 }},
		{"PromotePct above DemotePct", func(c *Config) { c.PromotePct = 60 }},
		{"SerialDemotePct negative", func(c *Config) { c.SerialDemotePct = -1 }},
		{"CapacityPct over 100", func(c *Config) { c.CapacityPct = 150 }},
		{"DemoteWindows negative", func(c *Config) { c.DemoteWindows = -1 }},
		{"ProbationMax below ProbationWindows", func(c *Config) {
			c.ProbationWindows = 6
			c.ProbationMax = 3
		}},
		{"Start out of range", func(c *Config) { c.Start = Level(NumLevels) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic", tc.name)
					return
				}
				if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "adapt: invalid Config") {
					t.Errorf("%s: unexpected panic %v", tc.name, r)
				}
			}()
			cfg := testConfig()
			tc.mut(&cfg)
			NewController(cfg)
		}()
	}
}

func TestBoundHelpers(t *testing.T) {
	cfg := (Config{}).WithDefaults()
	// The demote bound covers the worst case the hysteresis permits: per
	// rung, max(streak, dwell) windows plus the application window, plus
	// slack for a storm starting mid-window.
	per := cfg.DwellWindows
	if cfg.DemoteWindows > per {
		per = cfg.DemoteWindows
	}
	if got, want := cfg.DemoteBoundWindows(), (NumLevels-1)*(per+1)+2; got != want {
		t.Fatalf("DemoteBoundWindows %d, want %d", got, want)
	}
	// The promote bound grows with the demotion count (probation doubling)
	// and saturates at ProbationMax.
	if a, b := cfg.PromoteBoundWindows(1), cfg.PromoteBoundWindows(3); a >= b {
		t.Fatalf("promote bound not increasing with demotions: %d vs %d", a, b)
	}
	if cfg.PromoteBoundWindows(100) != cfg.PromoteBoundWindows(200) {
		t.Fatalf("promote bound not capped")
	}
	// Bound helpers default their receiver, so the zero Config works too.
	if (Config{}).DemoteBoundWindows() != cfg.DemoteBoundWindows() {
		t.Fatalf("zero-Config bound differs from defaulted bound")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		Elide: "elide", SCM: "scm", Serial: "serial", Level(9): "unknown",
	} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, got, want)
		}
	}
}

// FuzzControllerObserve drives the transition function with arbitrary
// window streams (degenerate counter mixes, quiet windows, interleaved
// drain acknowledgements) and checks the controller's structural
// invariants: the level stays in range, no decision fires while a swap is
// draining, and the transition log chains coherently — consecutive
// entries link From/To, promotions move exactly one rung, and the only
// multi-rung demotions are capacity escalations.
func FuzzControllerObserve(f *testing.F) {
	f.Add(uint64(100), uint64(2), uint64(1), uint64(1), uint64(0), uint64(0), uint16(7))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint16(0))
	f.Add(uint64(1<<40), uint64(1<<40), uint64(1<<40), uint64(1<<40),
		uint64(1<<40), uint64(1<<40), uint16(65535))
	f.Fuzz(func(t *testing.T, commits, serial, lockLine, dataLine, capacity, explicit uint64, pattern uint16) {
		c := NewController(Config{WindowCycles: 100})
		// 16 windows; each bit of pattern picks one of two counter mixes.
		// The mixes keep the feed's invariant (class breakdown sums to at
		// most Aborts) while ranging over wildly different shapes.
		for i := 0; i < 16; i++ {
			w := obs.WindowStats{Index: i}
			if pattern&(1<<i) != 0 {
				w.Commits = commits % (1 << 20)
				w.Aborts = (lockLine + dataLine) % (1 << 20)
				w.LockLine = w.Aborts / 2
				w.DataLine = w.Aborts - w.LockLine
			} else {
				w.Serial = serial % (1 << 20)
				w.Aborts = (capacity + explicit) % (1 << 20)
				w.Capacity = w.Aborts / 3
				w.Explicit = w.Aborts - w.Capacity
			}
			before := len(c.Transitions())
			draining := c.Draining()
			c.Observe(w)
			if int(c.Level()) >= NumLevels {
				t.Fatalf("level out of range: %v", c.Level())
			}
			if draining && len(c.Transitions()) != before {
				t.Fatalf("decision fired while draining")
			}
			// Acknowledge most decisions, but sometimes leave one pending
			// across windows to exercise the blocked path.
			if c.Draining() && i%3 != 2 {
				c.NoteSwap(uint64(i+1)*100, int(pattern%4))
				if pattern%4 != 0 {
					c.NoteDrained(uint64(i+1)*100 + 50)
				}
			}
		}
		trs := c.Transitions()
		lvl := Elide
		for i, tr := range trs {
			if tr.Seq != i {
				t.Fatalf("transition %d has Seq %d", i, tr.Seq)
			}
			if tr.From != lvl {
				t.Fatalf("transition %d From %v, want chain from %v", i, tr.From, lvl)
			}
			if tr.From == tr.To {
				t.Fatalf("self-transition: %+v", tr)
			}
			if tr.To > tr.From { // demotion
				if tr.To != tr.From+1 && tr.Reason != "capacity" {
					t.Fatalf("multi-rung non-capacity demotion: %+v", tr)
				}
			} else if tr.To != tr.From-1 {
				t.Fatalf("multi-rung promotion: %+v", tr)
			}
			lvl = tr.To
		}
		if lvl != c.Level() {
			t.Fatalf("log ends at %v but level is %v", lvl, c.Level())
		}
	})
}
