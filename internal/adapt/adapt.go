// Package adapt is the per-lock adaptive scheme controller: a
// deterministic state machine that consumes the windowed abort/commit
// counters of an obs.Feed and decides, per lock, which execution level a
// critical section should run at — full elision, elision with
// software-assisted conflict management, or the pessimistic serializing
// floor. It closes the loop the paper leaves open: every scheme in
// Chapters 3-5 is a static, hand-picked choice per workload point; the
// controller makes the choice at runtime from the abort profile alone.
//
// The decision rule follows the degradation taxonomy of the related work:
// sustained abort pressure or a collapsing speculative fraction demotes
// one rung (the Chapter 3 avalanche signature — SCM can still save it),
// while a capacity-dominated abort mix demotes straight to the serial
// floor — and does so even at moderate abort shares, because no amount of
// conflict management fixes a working set that does not fit the
// speculative buffer and the tax recurs on every affected operation
// (Dice et al.'s malloc-placement study motivates treating capacity as a
// distinct signal). Promotion is the mirror image with hysteresis: the
// hard abort share (data conflicts, capacity, spurious — not explicit
// lock-held aborts or lock-line conflicts, both of which the serial
// floor inflicts on itself while serializing) must stay below a lower
// threshold for several consecutive windows, a
// dwell minimum keeps every level occupied long enough to gather
// evidence, and a capped exponential probation backoff makes repeated
// failed re-promotions progressively rarer so the controller cannot flap.
//
// Everything is integer arithmetic over token-serialized window streams:
// equal seeds produce identical transition logs at any host parallelism.
package adapt

import (
	"fmt"

	"hle/internal/obs"
)

// Level is an execution level the controller can route critical sections
// to, ordered from most to least speculative.
type Level uint8

const (
	// Elide runs critical sections under plain lock elision (the RTM-LE
	// mechanism: speculate with the lock in the read set, one
	// non-speculative acquisition attempt after an abort).
	Elide Level = iota
	// SCM adds software-assisted conflict management (Algorithm 3):
	// aborted threads serialize on an auxiliary lock and rejoin
	// speculation, containing the avalanche.
	SCM
	// Serial is the pessimistic floor: one speculative probe with the
	// lock checked at entry, then non-speculative execution under the
	// main lock. The probe is what lets the controller see the storm
	// end — its hard-abort rate falls when speculation becomes viable
	// again.
	Serial

	// NumLevels is the number of execution levels.
	NumLevels = int(Serial) + 1
)

var levelNames = [NumLevels]string{"elide", "scm", "serial"}

// String returns the level's stable name (used in logs and JSON).
func (l Level) String() string {
	if int(l) < NumLevels {
		return levelNames[l]
	}
	return "unknown"
}

// Config tunes the controller. The zero value selects the defaults; every
// threshold is an integer percentage so decisions are exact and
// fuzz-friendly. Fields left zero take their Default counterpart;
// explicit negatives select "disabled" where documented.
type Config struct {
	// WindowCycles is the feed window size in virtual cycles. The
	// controller makes at most one decision per window.
	WindowCycles uint64

	// DemotePct is the abort share (percent of attempt outcomes in a
	// window) at or above which the window counts toward demotion.
	DemotePct int
	// SerialDemotePct is the non-speculative share (percent of completed
	// operations) at or above which the window counts toward demotion —
	// the avalanche signature, where aborts stay moderate but every
	// operation ends up under the real lock. It only applies above the
	// Serial floor, where the floor's own serialization would trivially
	// trigger it.
	SerialDemotePct int
	// PromotePct is the hard abort share (aborts excluding explicit
	// lock-held ones and lock-line conflicts, as a percent of attempt
	// outcomes) at or below which a window counts toward promotion.
	PromotePct int
	// CapacityPct is the capacity share (percent of the window's aborts)
	// at or above which the mix counts as capacity-dominated: such
	// windows count toward demotion whenever the abort share exceeds the
	// promotion band, and the demotion skips SCM and lands on Serial.
	CapacityPct int

	// DemoteWindows and PromoteWindows are the consecutive qualifying
	// windows required before a transition fires (the hysteresis bands).
	DemoteWindows  int
	PromoteWindows int
	// DwellWindows is the minimum number of windows between any two
	// transitions, so every level is measured before being judged.
	DwellWindows int

	// ProbationWindows is the initial promotion embargo after a
	// demotion; it doubles on every further demotion up to ProbationMax
	// and resets to the base after ProbationReset windows without a
	// demotion. Probation is what turns flapping into exponentially
	// rarer retries.
	ProbationWindows int
	ProbationMax     int
	ProbationReset   int

	// MinOps is the minimum number of attempt outcomes a window needs to
	// update the hysteresis streaks; quieter windows only advance dwell
	// and probation clocks (an idle lock is not evidence of health).
	MinOps int

	// Start is the initial level (default Elide: optimistic).
	Start Level
}

// Defaults for Config zero fields.
const (
	DefaultWindowCycles     = 5_000
	DefaultDemotePct        = 45
	DefaultSerialDemotePct  = 65
	DefaultPromotePct       = 10
	DefaultCapacityPct      = 50
	DefaultDemoteWindows    = 2
	DefaultPromoteWindows   = 3
	DefaultDwellWindows     = 3
	DefaultProbationWindows = 6
	DefaultProbationMax     = 48
	DefaultProbationReset   = 64
	DefaultMinOps           = 4
)

// WithDefaults returns c with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.WindowCycles == 0 {
		c.WindowCycles = DefaultWindowCycles
	}
	if c.DemotePct == 0 {
		c.DemotePct = DefaultDemotePct
	}
	if c.SerialDemotePct == 0 {
		c.SerialDemotePct = DefaultSerialDemotePct
	}
	if c.PromotePct == 0 {
		c.PromotePct = DefaultPromotePct
	}
	if c.CapacityPct == 0 {
		c.CapacityPct = DefaultCapacityPct
	}
	if c.DemoteWindows == 0 {
		c.DemoteWindows = DefaultDemoteWindows
	}
	if c.PromoteWindows == 0 {
		c.PromoteWindows = DefaultPromoteWindows
	}
	if c.DwellWindows == 0 {
		c.DwellWindows = DefaultDwellWindows
	}
	if c.ProbationWindows == 0 {
		c.ProbationWindows = DefaultProbationWindows
	}
	if c.ProbationMax == 0 {
		c.ProbationMax = DefaultProbationMax
	}
	if c.ProbationReset == 0 {
		c.ProbationReset = DefaultProbationReset
	}
	if c.MinOps == 0 {
		c.MinOps = DefaultMinOps
	}
	return c
}

// DemoteBoundWindows returns a worst-case bound, in windows, for the
// controller to reach the Serial floor from Elide once every window turns
// bad (a saturating storm): each rung waits out the dwell minimum, builds
// its demotion streak, and spends one window applying the swap, plus one
// window of slack for the storm starting mid-window. The storm-recovery
// soaks assert demotion within this bound.
func (c Config) DemoteBoundWindows() int {
	c = c.WithDefaults()
	per := c.DwellWindows
	if c.DemoteWindows > per {
		per = c.DemoteWindows
	}
	return (NumLevels-1)*(per+1) + 2
}

// PromoteBoundWindows returns a worst-case bound, in windows, for the
// controller to climb back to Elide once every window turns good, given
// that at most demotions demotions occurred: the residual probation
// embargo (doubled per demotion, capped) plus per-rung streak building
// and dwell, plus slack for the storm ending mid-window.
func (c Config) PromoteBoundWindows(demotions int) int {
	c = c.WithDefaults()
	prob := c.ProbationWindows
	for i := 1; i < demotions; i++ {
		prob *= 2
		if prob >= c.ProbationMax {
			prob = c.ProbationMax
			break
		}
	}
	per := c.DwellWindows
	if c.PromoteWindows > per {
		per = c.PromoteWindows
	}
	return prob + (NumLevels-1)*(per+1) + 2
}

// validate panics on nonsensical tunings; the facade surfaces these as
// constructor misuse.
func (c Config) validate() {
	check := func(ok bool, what string) {
		if !ok {
			panic("adapt: invalid Config: " + what)
		}
	}
	check(c.DemotePct > 0 && c.DemotePct <= 100, "DemotePct outside (0,100]")
	check(c.SerialDemotePct > 0 && c.SerialDemotePct <= 100, "SerialDemotePct outside (0,100]")
	check(c.PromotePct >= 0 && c.PromotePct < c.DemotePct, "PromotePct must be below DemotePct")
	check(c.CapacityPct > 0 && c.CapacityPct <= 100, "CapacityPct outside (0,100]")
	check(c.DemoteWindows > 0, "DemoteWindows < 1")
	check(c.PromoteWindows > 0, "PromoteWindows < 1")
	check(c.DwellWindows >= 0, "DwellWindows < 0")
	check(c.ProbationWindows > 0, "ProbationWindows < 1")
	check(c.ProbationMax >= c.ProbationWindows, "ProbationMax below ProbationWindows")
	check(c.ProbationReset > 0, "ProbationReset < 1")
	check(c.MinOps >= 0, "MinOps < 0")
	check(int(c.Start) < NumLevels, "Start level out of range")
}

// Transition is one controller decision, with the hot-swap bookkeeping
// the executing scheme stamps in as the switch takes effect.
type Transition struct {
	// Seq orders transitions; Window is the feed window whose stats
	// triggered the decision, Clock that window's closing virtual cycle.
	Seq    int
	Window int
	Clock  uint64
	From   Level
	To     Level
	// Reason names the rule that fired: "abort-pressure" (abort share
	// over DemotePct), "serial-pressure" (speculation collapsed),
	// "capacity" (capacity-dominated mix, straight to Serial), or
	// "recovered" (promotion).
	Reason string
	// SwapClock is when the scheme began routing new critical sections
	// to To; DrainClock is when the last in-flight section still running
	// under From finished; Inflight counts the sections that drained.
	SwapClock  uint64
	DrainClock uint64
	Inflight   int
}

func (tr Transition) String() string {
	return fmt.Sprintf("#%d w%d@%d %s->%s (%s, drained %d @%d)",
		tr.Seq, tr.Window, tr.Clock, tr.From, tr.To, tr.Reason,
		tr.Inflight, tr.DrainClock)
}

// Controller is the per-lock decision state machine. Feed it completed
// windows via Observe (typically as the sink of an obs.Feed); the
// executing scheme reads Level after each window and calls
// NoteSwap/NoteDrained as it applies the change. The controller is not
// host-safe: like everything per-machine it runs on token-serialized
// simulated threads.
type Controller struct {
	cfg Config

	level       Level
	badStreak   int
	goodStreak  int
	sinceSwitch int // windows since the last transition
	sinceDemote int // windows since the last demotion
	probation   int // current probation length (doubles per demotion)
	probationTB int // windows of promotion embargo remaining

	windows      int
	levelWindows [NumLevels]int
	transitions  []Transition
	pendingSwap  bool // a decided transition the scheme has not drained yet
}

// NewController builds a controller from cfg (zero fields defaulted).
// Invalid tunings panic.
func NewController(cfg Config) *Controller {
	cfg = cfg.WithDefaults()
	cfg.validate()
	return &Controller{cfg: cfg, level: cfg.Start, probation: cfg.ProbationWindows}
}

// Config returns the controller's effective (defaulted) tuning.
func (c *Controller) Config() Config { return c.cfg }

// Level returns the level new critical sections should run at.
func (c *Controller) Level() Level { return c.level }

// Windows returns the number of windows observed.
func (c *Controller) Windows() int { return c.windows }

// LevelWindows returns how many observed windows were spent at each level.
func (c *Controller) LevelWindows() [NumLevels]int { return c.levelWindows }

// Transitions returns the decision log. The slice is live; callers must
// not mutate it.
func (c *Controller) Transitions() []Transition { return c.transitions }

// Observe consumes one completed feed window and possibly changes Level.
// It is the controller's entire transition function — pure integer
// arithmetic over the window's counters and the hysteresis state — which
// is what the fuzz target drives directly.
func (c *Controller) Observe(w obs.WindowStats) {
	c.windows++
	c.levelWindows[c.level]++
	c.sinceSwitch++
	c.sinceDemote++
	if c.probationTB > 0 {
		c.probationTB--
	}
	if c.sinceDemote >= c.cfg.ProbationReset {
		// A long demotion-free stretch forgives past instability.
		c.probation = c.cfg.ProbationWindows
	}

	events := w.Events()
	if events < uint64(c.cfg.MinOps) {
		// Too quiet to judge: dwell and probation advanced above, but
		// the evidence streaks hold.
		return
	}

	abortPct := int(100 * w.Aborts / events)
	serialPct := 0
	if ops := w.Ops(); ops > 0 {
		serialPct = int(100 * w.Serial / ops)
	}
	// Promotion is judged on hard aborts only — data conflicts, capacity,
	// spurious — excluding explicit aborts and lock-line conflicts. Both of
	// those measure serialization overlap rather than speculation health:
	// explicit aborts are the schemes' own lock-held checks, and lock-line
	// conflicts are acquisitions by the serial path landing on the lock
	// word in a speculator's read set. At the Serial floor nearly every
	// probe loses to the floor's own non-speculative executions in exactly
	// these two ways; counting them would let the floor blind itself and
	// never observe a storm ending. (Demotion still counts them: whatever
	// the mechanism, an execution mix that keeps aborting speculation is a
	// bad home for it.)
	hardPct := int(100 * (w.Aborts - w.Explicit - w.LockLine) / events)
	// A capacity-dominated abort mix is evidence against speculation even
	// at moderate abort shares: those aborts recur on every affected
	// operation for as long as the working set stays oversized, so any
	// nontrivial capacity tax (above the promotion band) reads as bad.
	capacityHeavy := w.Aborts > 0 &&
		int(100*w.Capacity/w.Aborts) >= c.cfg.CapacityPct &&
		abortPct > c.cfg.PromotePct

	// Badness is only meaningful where demotion is possible: the Serial
	// floor's own serialization keeps its full abort share permanently
	// high (every probe that loses to the non-speculative path aborts),
	// and letting that count as bad would starve the promotion streak
	// forever. A window that counts toward demotion never simultaneously
	// counts toward promotion.
	bad := c.level < Serial &&
		(abortPct >= c.cfg.DemotePct ||
			serialPct >= c.cfg.SerialDemotePct ||
			capacityHeavy)
	good := hardPct <= c.cfg.PromotePct && !bad
	switch {
	case bad:
		c.badStreak++
		c.goodStreak = 0
	case good:
		c.goodStreak++
		c.badStreak = 0
	default:
		c.badStreak = 0
		c.goodStreak = 0
	}

	// One decision per window, never while a prior swap is still
	// draining, never before the dwell minimum.
	if c.pendingSwap || c.sinceSwitch < c.cfg.DwellWindows {
		return
	}

	if c.badStreak >= c.cfg.DemoteWindows && c.level < Serial {
		target := c.level + 1
		reason := "abort-pressure"
		if abortPct < c.cfg.DemotePct {
			reason = "serial-pressure"
		}
		if capacityHeavy {
			// Capacity-dominated mixes skip SCM: serializing aborters
			// cannot shrink a working set.
			target = Serial
			reason = "capacity"
		}
		c.transitionTo(target, w, reason)
		// Each demotion doubles the re-promotion embargo, capped.
		c.probationTB = c.probation
		c.probation *= 2
		if c.probation > c.cfg.ProbationMax {
			c.probation = c.cfg.ProbationMax
		}
		c.sinceDemote = 0
		return
	}

	if c.goodStreak >= c.cfg.PromoteWindows && c.probationTB == 0 && c.level > Elide {
		c.transitionTo(c.level-1, w, "recovered")
	}
}

// transitionTo records the decision and moves Level; the scheme observes
// the new level at its next critical-section entry and stamps the swap.
func (c *Controller) transitionTo(to Level, w obs.WindowStats, reason string) {
	c.transitions = append(c.transitions, Transition{
		Seq:    len(c.transitions),
		Window: w.Index,
		Clock:  uint64(w.Index+1) * c.cfg.WindowCycles,
		From:   c.level,
		To:     to,
		Reason: reason,
	})
	c.level = to
	c.badStreak = 0
	c.goodStreak = 0
	c.sinceSwitch = 0
	c.pendingSwap = true
}

// NoteSwap stamps the moment the executing scheme started routing new
// critical sections to the decided level, with the number of in-flight
// sections still running under the old level. When nothing was in flight
// the swap drains immediately.
func (c *Controller) NoteSwap(clock uint64, inflight int) {
	if n := len(c.transitions); n > 0 {
		tr := &c.transitions[n-1]
		tr.SwapClock = clock
		tr.Inflight = inflight
		if inflight == 0 {
			tr.DrainClock = clock
			c.pendingSwap = false
		}
	}
}

// NoteDrained stamps the moment the last old-level in-flight section
// finished, unblocking further decisions.
func (c *Controller) NoteDrained(clock uint64) {
	if n := len(c.transitions); n > 0 {
		c.transitions[n-1].DrainClock = clock
	}
	c.pendingSwap = false
}

// Draining reports whether a decided transition is still waiting for
// old-level in-flight sections to finish.
func (c *Controller) Draining() bool { return c.pendingSwap }
