package traffic_test

import (
	"fmt"
	"math"
	"testing"

	"hle/internal/harness"
	"hle/internal/shard"
	"hle/internal/traffic"
	"hle/internal/tsx"
)

func testMachine(procs, keys int) *tsx.Machine {
	cfg := tsx.DefaultConfig(procs)
	cfg.Seed = 1
	cfg.MemWords = keys*64 + 1<<16
	return tsx.NewMachine(cfg)
}

// TestZipfRankFrequency draws a large sample and checks the observed
// rank-frequency curve against the configured exponent: the r-th most
// popular key should be drawn with probability ∝ 1/(r+1)^s.
func TestZipfRankFrequency(t *testing.T) {
	const (
		keys  = 128
		s     = 1.2
		draws = 100_000
	)
	m := testMachine(1, keys)
	m.RunOne(func(th *tsx.Thread) {
		w := traffic.New(th, shard.DataConfig{Shards: 4}, traffic.Spec{
			Keys: keys, Mix: harness.MixLookupOnly, ZipfS: s,
		})
		domain := w.Domain()
		counts := make(map[uint64]int)
		for i := 0; i < draws; i++ {
			op := w.NextOp(th)
			if op.Kind != harness.OpLookup {
				t.Fatalf("lookup-only mix drew %v", op.Kind)
			}
			if op.Key >= uint64(domain) {
				t.Fatalf("key %d outside domain %d", op.Key, domain)
			}
			counts[op.Key]++
		}
		// Sort observed counts descending: the rank-frequency curve does
		// not depend on which keys the hidden permutation made popular.
		sorted := make([]int, 0, len(counts))
		for _, n := range counts {
			sorted = append(sorted, n)
		}
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		// Expected P(rank r) = (r+1)^-s / H(domain, s).
		h := 0.0
		for r := 0; r < domain; r++ {
			h += math.Pow(float64(r+1), -s)
		}
		for _, rank := range []int{0, 1, 3, 7} {
			want := math.Pow(float64(rank+1), -s) / h * draws
			got := float64(sorted[rank])
			if math.Abs(got-want) > 0.12*want {
				t.Errorf("rank %d drawn %d times, want ~%.0f (s=%.1f)", rank, sorted[rank], want, s)
			}
		}
	})
}

// TestUniformWhenNoExponent checks ZipfS=0 spreads draws evenly.
func TestUniformWhenNoExponent(t *testing.T) {
	const keys, draws = 64, 50_000
	m := testMachine(1, keys)
	m.RunOne(func(th *tsx.Thread) {
		w := traffic.New(th, shard.DataConfig{Shards: 4}, traffic.Spec{Keys: keys, Mix: harness.MixLookupOnly})
		counts := make(map[uint64]int)
		for i := 0; i < draws; i++ {
			counts[w.NextOp(th).Key]++
		}
		want := float64(draws) / float64(w.Domain())
		for key, n := range counts {
			if math.Abs(float64(n)-want) > 0.35*want {
				t.Errorf("key %d drawn %d times, want ~%.0f (uniform)", key, n, want)
			}
		}
	})
}

// TestSeedDeterminism checks the op stream is a pure function of the
// traffic seed and the machine seed, and that changing the traffic seed
// changes the hidden permutation.
func TestSeedDeterminism(t *testing.T) {
	const keys = 64
	stream := func(trafficSeed int64) string {
		m := testMachine(1, keys)
		var s string
		m.RunOne(func(th *tsx.Thread) {
			w := traffic.New(th, shard.DataConfig{Shards: 4}, traffic.Spec{
				Keys: keys, Mix: harness.MixExtensive, ZipfS: 0.8, Seed: trafficSeed,
				Storm: &traffic.Storm{EpochCycles: 10_000},
			})
			for i := 0; i < 500; i++ {
				op := w.NextOp(th)
				s += fmt.Sprintf("%d:%d,", op.Kind, op.Key)
			}
		})
		return s
	}
	a, b := stream(3), stream(3)
	if a != b {
		t.Fatal("identical seeds produced different op streams")
	}
	if c := stream(4); c == a {
		t.Fatal("different traffic seeds produced identical op streams")
	}
}

// TestTenantPartition checks two-tenant mode: even threads draw only from
// the lower half of the domain with the primary mix, odd threads only from
// the upper half with the tenant mix, at the configured write ratios.
func TestTenantPartition(t *testing.T) {
	const keys, draws = 128, 20_000
	tenantB := harness.MixExtensive // 50% insert / 50% delete
	m := testMachine(2, keys)
	var w *traffic.Workload
	m.RunOne(func(th *tsx.Thread) {
		w = traffic.New(th, shard.DataConfig{Shards: 4}, traffic.Spec{
			Keys: keys, Mix: harness.MixLookupOnly, TenantMix: &tenantB,
		})
	})
	inserts := make([]int, 2)
	m.Run(2, func(th *tsx.Thread) {
		half := uint64(w.Domain() / 2)
		for i := 0; i < draws; i++ {
			op := w.NextOp(th)
			if th.ID%2 == 0 && op.Key >= half {
				t.Errorf("tenant A (thread %d) drew upper-half key %d", th.ID, op.Key)
				return
			}
			if th.ID%2 == 1 && op.Key < half {
				t.Errorf("tenant B (thread %d) drew lower-half key %d", th.ID, op.Key)
				return
			}
			if op.Kind == harness.OpInsert {
				inserts[th.ID]++
			}
		}
	})
	if inserts[0] != 0 {
		t.Errorf("lookup-only tenant A drew %d inserts", inserts[0])
	}
	frac := float64(inserts[1]) / draws
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("tenant B insert fraction %.3f, want ~0.50", frac)
	}
}

// TestStormRotation checks that with HotPct=100 every draw inside one
// epoch lands on the small hot set, and the set rotates across epochs.
func TestStormRotation(t *testing.T) {
	const keys = 256
	m := testMachine(1, keys)
	m.RunOne(func(th *tsx.Thread) {
		w := traffic.New(th, shard.DataConfig{Shards: 4}, traffic.Spec{
			Keys: keys, Mix: harness.MixLookupOnly,
			Storm: &traffic.Storm{EpochCycles: 50_000, HotKeys: 2, HotPct: 100},
		})
		hotSet := func() map[uint64]bool {
			set := make(map[uint64]bool)
			for i := 0; i < 100; i++ {
				set[w.NextOp(th).Key] = true
			}
			return set
		}
		first := hotSet()
		if len(first) > 2 {
			t.Fatalf("epoch 0 hot set has %d keys, want <= 2", len(first))
		}
		th.Work(50_000) // advance the virtual clock into the next epoch
		second := hotSet()
		if len(second) > 2 {
			t.Fatalf("epoch 1 hot set has %d keys, want <= 2", len(second))
		}
		same := true
		for k := range second {
			if !first[k] {
				same = false
			}
		}
		if same {
			t.Error("hot set did not rotate between epochs")
		}
	})
}

// TestRampAddsThinkTime checks the diurnal ramp slows the offered load
// near the trough: drawing the same op count takes more virtual time with
// the ramp than without it.
func TestRampAddsThinkTime(t *testing.T) {
	const keys = 64
	elapsed := func(ramp *traffic.Ramp) uint64 {
		m := testMachine(1, keys)
		var cycles uint64
		m.RunOne(func(th *tsx.Thread) {
			w := traffic.New(th, shard.DataConfig{Shards: 4}, traffic.Spec{Keys: keys, Mix: harness.MixLookupOnly, Ramp: ramp})
			start := th.Clock()
			for i := 0; i < 500; i++ {
				w.NextOp(th)
			}
			cycles = th.Clock() - start
		})
		return cycles
	}
	with := elapsed(&traffic.Ramp{PeriodCycles: 100_000, TroughThink: 400})
	without := elapsed(nil)
	if with <= without {
		t.Errorf("ramp added no think time: %d cycles with, %d without", with, without)
	}
}

// TestWorkloadUnderHarness runs the traffic workload end to end under the
// harness with a routed store, checking ops complete, scans appear, and
// the structures stay consistent with their striped counters.
func TestWorkloadUnderHarness(t *testing.T) {
	tenantB := harness.MixExtensive
	tmpl := &harness.WarmTemplate{
		Machine: func() tsx.Config {
			cfg := tsx.DefaultConfig(4)
			cfg.Seed = 2
			cfg.MemWords = 256*64 + 1<<16
			return cfg
		}(),
		MkWorkload: func(th *tsx.Thread) harness.Workload {
			return traffic.New(th, shard.DataConfig{Shards: 4}, traffic.Spec{
				Keys: 128, Mix: harness.MixModerate, ZipfS: 1.1, ScanPct: 2,
				Storm:     &traffic.Storm{EpochCycles: 20_000},
				TenantMix: &tenantB,
			})
		},
	}
	m, w := tmpl.Fork()
	tw := w.(*traffic.Workload)
	var rs traffic.RoutedStore
	m.RunOne(func(th *tsx.Thread) {
		rs = traffic.Route(shard.Bind(th, tw.Data(), shard.StoreConfig{}))
	})
	res := harness.Run(m, rs, w, harness.Config{Threads: 4, CycleBudget: 80_000})
	if res.Ops.Ops == 0 {
		t.Fatal("no operations completed")
	}
	m.RunOne(func(th *tsx.Thread) {
		d := tw.Data()
		for si := 0; si < d.Shards(); si++ {
			if ss, it := d.ShardSize(th, si), uint64(d.ShardItems(th, si)); ss != it {
				t.Errorf("shard %d: size counter %d != structure %d", si, ss, it)
			}
		}
	})
}
