package traffic

import (
	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/shard"
	"hle/internal/tsx"
)

// RoutedStore adapts a shard.Store to the harness: it is the store's
// core.Scheme surface (Name/Setup/Run/Stats) plus the harness.OpRouter
// dispatch that sends each keyed operation to its shard's critical
// section and each scan to the all-shard section. Measuring a traffic
// Workload under a RoutedStore is what makes the sweep apples-to-apples
// with the paper's global-lock points: same harness loop, same stats,
// different synchronization topology.
type RoutedStore struct {
	*shard.Store
}

// Route wraps a bound store for the harness.
func Route(s *shard.Store) RoutedStore { return RoutedStore{Store: s} }

// RunOp implements harness.OpRouter.
func (r RoutedStore) RunOp(t *tsx.Thread, op harness.Op, cs func()) core.Result {
	if op.Kind == harness.OpScan {
		return r.RunGlobal(t, cs)
	}
	return r.RunKeyed(t, op.Key, cs)
}
