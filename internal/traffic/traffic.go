// Package traffic generates seed-deterministic "internet-shaped" workloads
// for the sharded store: Zipfian key popularity (a tunable exponent s),
// scheduled hot-key storms (a rotating hot set, chaos-style), read/write
// mix sweeps, diurnal load ramps, and multi-tenant interference (two
// tenant key-spaces with different mixes sharing the same shards).
//
// A traffic Workload is an ordinary harness Op-based workload: its Go-side
// state is immutable after Populate, every random draw comes from the
// simulated thread's own RNG, and scheduled behavior (storm epochs, ramp
// phases) is a pure function of the thread's virtual clock — so it
// composes with the allocation-free measurement loop, WarmTemplate
// checkpoint forks, byte-identical -parallel execution, and obs profiling
// exactly like the paper's uniform workloads do.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"hle/internal/harness"
	"hle/internal/shard"
	"hle/internal/tsx"
)

// Storm schedules hot-key storms: every EpochCycles of virtual time the
// hot set rotates to a different group of keys, and each drawn operation
// targets the current hot set with probability HotPct%. This models flash
// crowds — a celebrity post, a viral item — where a handful of keys
// suddenly absorb most of the traffic, then the spotlight moves on.
type Storm struct {
	// EpochCycles is the rotation period (default 100_000).
	EpochCycles uint64
	// HotKeys is the hot-set size (default 4). Smaller is meaner: the
	// whole storm lands on fewer shards.
	HotKeys int
	// HotPct is the percentage of operations directed at the hot set
	// (default 50).
	HotPct int
}

func (s Storm) withDefaults() Storm {
	if s.EpochCycles == 0 {
		s.EpochCycles = 100_000
	}
	if s.HotKeys == 0 {
		s.HotKeys = 4
	}
	if s.HotPct == 0 {
		s.HotPct = 50
	}
	return s
}

// Ramp models the diurnal load cycle: offered load falls from peak to
// trough and back over PeriodCycles, implemented as per-operation think
// time (outside any critical section) that grows toward the trough. Peak
// is at phase 0 — think time 0, the harness's full offered load.
type Ramp struct {
	// PeriodCycles is the full cycle period (default 200_000).
	PeriodCycles uint64
	// TroughThink is the per-op think time in cycles at the trough
	// (default 400, several times a short critical section).
	TroughThink uint64
}

func (r Ramp) withDefaults() Ramp {
	if r.PeriodCycles == 0 {
		r.PeriodCycles = 200_000
	}
	if r.TroughThink == 0 {
		r.TroughThink = 400
	}
	return r
}

// Spec describes one traffic pattern.
type Spec struct {
	// Keys is the initial live-key count (default 1024); keys are drawn
	// from a domain of 2*Keys, matching the paper's methodology.
	Keys int
	// Mix is the operation mix (default the paper's moderate 10/10/80).
	Mix harness.Mix
	// ZipfS is the Zipf popularity exponent: operation keys are drawn
	// with P(rank r) ∝ 1/(r+1)^ZipfS over a seed-fixed rank→key
	// permutation. 0 means uniform.
	ZipfS float64
	// ScanPct is the percentage of operations that are cross-shard scans
	// (consistent TotalSize under every shard lock). Default 0.
	ScanPct int
	// Storm, when non-nil, schedules rotating hot-key storms.
	Storm *Storm
	// Ramp, when non-nil, applies the diurnal load ramp.
	Ramp *Ramp
	// TenantMix, when non-nil, enables two-tenant interference: threads
	// with even IDs are tenant A (Mix, lower half of the key domain),
	// odd IDs are tenant B (TenantMix, upper half). Both tenants' keys
	// hash into the same shards, so a write-heavy tenant degrades its
	// neighbor exactly as shared infrastructure does.
	TenantMix *harness.Mix
	// Seed fixes the rank→key permutations and the storm schedule
	// (default 1). It is deliberately separate from the machine seed:
	// the pattern is part of the workload's identity, while the machine
	// seed varies per experiment point.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.Keys == 0 {
		s.Keys = 1024
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Storm != nil {
		st := s.Storm.withDefaults()
		s.Storm = &st
	}
	if s.Ramp != nil {
		rp := s.Ramp.withDefaults()
		s.Ramp = &rp
	}
	return s
}

// String names the pattern compactly for reports.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "keys=%d,mix=%s", s.Keys, s.Mix)
	if s.ZipfS > 0 {
		fmt.Fprintf(&b, ",zipf=%.2f", s.ZipfS)
	}
	if s.ScanPct > 0 {
		fmt.Fprintf(&b, ",scan=%d%%", s.ScanPct)
	}
	if s.Storm != nil {
		fmt.Fprintf(&b, ",storm=%d@%d", s.Storm.HotKeys, s.Storm.EpochCycles)
	}
	if s.Ramp != nil {
		fmt.Fprintf(&b, ",ramp=%d", s.Ramp.PeriodCycles)
	}
	if s.TenantMix != nil {
		fmt.Fprintf(&b, ",tenantB=%s", *s.TenantMix)
	}
	return b.String()
}

// Workload drives a shard.Data with the traffic pattern. It implements
// harness.Workload; run it under a routing scheme (RoutedStore) so each
// operation synchronizes on its key's shard.
type Workload struct {
	spec   Spec
	data   *shard.Data
	domain int
	// perm is the rank→key permutation; tenants use their half-domain
	// slices permA (keys < domain/2) and permB (keys >= domain/2).
	perm, permA, permB []uint64
	// cum and cumHalf are cumulative Zipf weights over the full and
	// half domain (nil when ZipfS == 0).
	cum, cumHalf []float64
}

// New builds the workload and its backing shard.Data on t's machine.
// Populate must still be called (once, single-threaded) before
// measurement, as with every harness workload.
func New(t *tsx.Thread, dcfg shard.DataConfig, spec Spec) *Workload {
	return Over(shard.NewData(t, dcfg), spec)
}

// Over builds the workload over an existing shard.Data.
func Over(d *shard.Data, spec Spec) *Workload {
	spec = spec.withDefaults()
	w := &Workload{spec: spec, data: d, domain: 2 * spec.Keys}
	rng := rand.New(rand.NewSource(spec.Seed))
	w.perm = randPerm(rng, 0, w.domain)
	if spec.TenantMix != nil {
		w.permA = randPerm(rng, 0, w.domain/2)
		w.permB = randPerm(rng, w.domain/2, w.domain)
	}
	if spec.ZipfS > 0 {
		w.cum = zipfCum(w.domain, spec.ZipfS)
		if spec.TenantMix != nil {
			w.cumHalf = zipfCum(w.domain/2, spec.ZipfS)
		}
	}
	return w
}

// randPerm returns a shuffled permutation of [lo, hi).
func randPerm(rng *rand.Rand, lo, hi int) []uint64 {
	p := make([]uint64, hi-lo)
	for i := range p {
		p[i] = uint64(lo + i)
	}
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// zipfCum precomputes cumulative weights for P(rank r) ∝ 1/(r+1)^s.
func zipfCum(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cum[r] = total
	}
	return cum
}

// Spec returns the pattern (with defaults applied).
func (w *Workload) Spec() Spec { return w.spec }

// Data returns the backing sharded structure.
func (w *Workload) Data() *shard.Data { return w.data }

// Domain returns the key-domain size (2*Keys).
func (w *Workload) Domain() int { return w.domain }

// Name implements harness.Workload.
func (w *Workload) Name() string {
	return fmt.Sprintf("traffic(%s,%s%d)", w.spec, w.data.Config().Backend, w.data.Shards())
}

// Populate implements harness.Workload: it fills the store to Keys live
// keys, uniform over the domain.
func (w *Workload) Populate(t *tsx.Thread) {
	w.data.Populate(t, w.spec.Keys, w.domain)
}

// tenant returns the thread's rank→key permutation, Zipf table, and mix.
func (w *Workload) tenant(t *tsx.Thread) (perm []uint64, cum []float64, mix harness.Mix) {
	if w.spec.TenantMix == nil || t.ID%2 == 0 {
		if w.spec.TenantMix != nil {
			return w.permA, w.cumHalf, w.spec.Mix
		}
		return w.perm, w.cum, w.spec.Mix
	}
	return w.permB, w.cumHalf, *w.spec.TenantMix
}

// drawRank samples a popularity rank: Zipf-weighted when the spec has an
// exponent, uniform otherwise.
func drawRank(t *tsx.Thread, n int, cum []float64) int {
	if cum == nil {
		return t.Rand().Intn(n)
	}
	u := t.Rand().Float64() * cum[n-1]
	return sort.SearchFloat64s(cum[:n], u)
}

// hotKey returns the i-th key of the clock's storm hot set within perm.
// The set is a pseudorandom window of the permutation re-derived every
// epoch, so consecutive epochs light up unrelated keys (and so,
// typically, different shards).
func (w *Workload) hotKey(perm []uint64, epoch uint64, i int) uint64 {
	z := epoch*0x9e3779b97f4a7c15 + uint64(w.spec.Seed)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return perm[(z+uint64(i))%uint64(len(perm))]
}

// NextOp implements harness.Workload. Every draw comes from the thread's
// deterministic RNG; storms and ramps are functions of the thread's
// virtual clock.
func (w *Workload) NextOp(t *tsx.Thread) harness.Op {
	if rp := w.spec.Ramp; rp != nil {
		// Triangle wave: full load at phase 0, TroughThink of idle time
		// per op half a period later.
		phase := t.Clock() % rp.PeriodCycles
		frac := 1 - math.Abs(2*float64(phase)/float64(rp.PeriodCycles)-1)
		if think := uint64(frac * float64(rp.TroughThink)); think > 0 {
			t.Work(think)
		}
	}
	r := t.Rand()
	if w.spec.ScanPct > 0 && r.Intn(100) < w.spec.ScanPct {
		return harness.Op{Kind: harness.OpScan}
	}
	perm, cum, mix := w.tenant(t)
	var key uint64
	if st := w.spec.Storm; st != nil && r.Intn(100) < st.HotPct {
		key = w.hotKey(perm, t.Clock()/st.EpochCycles, r.Intn(st.HotKeys))
	} else {
		key = perm[drawRank(t, len(perm), cum)]
	}
	p := r.Intn(100)
	switch {
	case p < mix.InsertPct:
		return harness.Op{Kind: harness.OpInsert, Key: key}
	case p < mix.InsertPct+mix.DeletePct:
		return harness.Op{Kind: harness.OpDelete, Key: key}
	default:
		return harness.Op{Kind: harness.OpLookup, Key: key}
	}
}

// Exec implements harness.Workload: the raw (unsynchronized) operation
// body. The surrounding scheme provides the shard critical section.
func (w *Workload) Exec(t *tsx.Thread, op harness.Op) {
	switch op.Kind {
	case harness.OpInsert:
		w.data.Insert(t, op.Key, 1)
	case harness.OpDelete:
		w.data.Delete(t, op.Key)
	case harness.OpScan:
		w.data.TotalSize(t)
	default:
		w.data.Contains(t, op.Key)
	}
}
