// Package obs is the profiling subsystem: it turns the engine's enriched
// event stream (tsx.Observer) into attribution a person can act on —
// which cache line, which abort cause, which thread killed this
// transaction.
//
// A Collector attaches to one machine and consumes transaction-boundary
// events, serial-section marks, and scheduler grants. Its Profile reports:
//
//   - an abort-cause breakdown per thread, with conflicts split into
//     conflict-on-lock-line vs conflict-on-data-line (the distinction the
//     Chapter 7 hardware extension exploits) and the aggressing thread
//     identified under requestor wins;
//   - a per-cache-line conflict heatmap, resolved through the symbolic
//     labels lock constructors register at allocation time;
//   - a virtual-cycle time series of speculating/serialized occupancy and
//     abort/commit/grant counts per window — the avalanche as a
//     waterfall, not just a throughput dip;
//   - latency histograms for critical-section attempts split by outcome
//     (speculative commit, abort, serialized section).
//
// Everything is deterministic: collectors are fed token-serialized events
// whose order is a pure function of the seed, and every exported slice is
// explicitly ordered (never ranged from a map), so equal seeds produce
// byte-identical profile output — including under host-parallel
// experiment pools, where each point owns a private collector.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Class is an enriched abort classification. It refines the engine's
// tsx.Cause: conflicts are split by whether the conflicting line is lock
// infrastructure, and injector-forced aborts (which the program observes
// as spurious) are attributed separately.
type Class uint8

const (
	// ClassConflictLockLine is a data conflict on a line registered as
	// lock infrastructure (LabelLockLines) — the aborts that seed the
	// paper's avalanche.
	ClassConflictLockLine Class = iota
	// ClassConflictDataLine is a data conflict on any other line.
	ClassConflictDataLine
	// ClassCapacityWrite is a write-set overflow.
	ClassCapacityWrite
	// ClassCapacityRead is a read-set overflow or eviction.
	ClassCapacityRead
	// ClassSpurious is an unexplained abort (tsx.CauseSpurious) not
	// forced by a fault injector.
	ClassSpurious
	// ClassInjected is a spurious abort forced by a fault injector.
	ClassInjected
	// ClassPause is a PAUSE executed transactionally.
	ClassPause
	// ClassExplicit is a software XABORT.
	ClassExplicit
	// ClassHLERestore is a failed XRELEASE restore.
	ClassHLERestore
	// ClassNested is an unsupported nesting combination.
	ClassNested
	// ClassSubscription is a commit-time lock-subscription failure under
	// lazy subscription (tsx.CauseSubscription): the deferred lock check
	// found the lock held. The lazy-subscription trade visible in
	// profiles is conflict-lock-line aborts turning into (fewer of)
	// these.
	ClassSubscription

	// NumClasses is the number of abort classes.
	NumClasses = int(ClassSubscription) + 1
)

var classNames = [NumClasses]string{
	"conflict-lock-line",
	"conflict-data-line",
	"capacity-write",
	"capacity-read",
	"spurious",
	"injected",
	"pause",
	"explicit",
	"hle-restore",
	"nested",
	"subscription",
}

// String returns the class's stable name (used in JSON output).
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "unknown"
}

// CauseCount is one abort class with its count.
type CauseCount struct {
	Class string `json:"class"`
	Count uint64 `json:"count"`
}

// AggressorCount counts conflict aborts of a victim doomed by one
// aggressing thread's coherence request. Thread -1 is a request from
// outside the simulation.
type AggressorCount struct {
	Thread int    `json:"thread"`
	Count  uint64 `json:"count"`
}

// ThreadProfile is the per-thread abort breakdown.
type ThreadProfile struct {
	Thread     int              `json:"thread"`
	Begun      uint64           `json:"begun"`
	Commits    uint64           `json:"commits"`
	Aborts     uint64           `json:"aborts"`
	Causes     []CauseCount     `json:"causes,omitempty"`
	Aggressors []AggressorCount `json:"aggressors,omitempty"`
}

// LineHeat is one entry of the conflict heatmap: conflict aborts whose
// conflicting line this was.
type LineHeat struct {
	Line     int    `json:"line"`
	Label    string `json:"label,omitempty"`
	LockLine bool   `json:"lock_line,omitempty"`
	Count    uint64 `json:"count"`
}

// Window is one time-series sample: activity in virtual cycles
// [Start, Start+WindowCycles).
type Window struct {
	Start uint64 `json:"start"`
	// SpecCycles and SerialCycles sum, over all threads, the virtual
	// cycles spent speculating (inside a transaction) and serialized
	// (inside a MarkSerial region, not speculating) within the window.
	SpecCycles   uint64 `json:"spec_cycles"`
	SerialCycles uint64 `json:"serial_cycles"`
	Commits      uint64 `json:"commits"`
	Aborts       uint64 `json:"aborts"`
	Grants       uint64 `json:"grants"`
}

// HistBucket is one power-of-two latency bucket: Count attempts took
// [Lo, Hi) virtual cycles.
type HistBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Histogram is the latency distribution of critical-section attempts with
// one outcome: "commit" (speculative success), "abort" (speculation
// wasted), or "serial" (executed under a really-held lock).
type Histogram struct {
	Outcome string       `json:"outcome"`
	Count   uint64       `json:"count"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// ControllerEvent is one adaptive-controller scheme transition, stamped
// into a Profile by the harness when the profiled scheme is adaptive. The
// fields mirror adapt.Transition; they live here (as plain strings and
// clocks) so the profile pipeline carries transition logs without obs
// depending on the controller package.
type ControllerEvent struct {
	// Seq orders the transitions; Window is the feed window whose stats
	// triggered the decision, Clock its closing virtual cycle.
	Seq    int    `json:"seq"`
	Window int    `json:"window"`
	Clock  uint64 `json:"clock"`
	// From and To are level names ("elide", "scm", "serial").
	From string `json:"from"`
	To   string `json:"to"`
	// Reason is the decision rule that fired ("abort-pressure",
	// "serial-pressure", "capacity", "recovered").
	Reason string `json:"reason"`
	// SwapClock is when the scheme began routing new critical sections
	// to the new level; DrainClock is when the last in-flight section
	// still running under the old level finished (equal to SwapClock
	// when nothing was in flight). Inflight counts the drained sections.
	SwapClock  uint64 `json:"swap_clock"`
	DrainClock uint64 `json:"drain_clock"`
	Inflight   int    `json:"inflight"`
}

// Profile is a collector's exported result. All slices are explicitly
// ordered, so marshaling a Profile is deterministic.
type Profile struct {
	// Label names what was profiled (the harness stamps the scheme name).
	Label string `json:"label,omitempty"`
	// Procs is the highest simulated thread count observed.
	Procs int `json:"procs"`
	// WindowCycles is the time-series sampling window.
	WindowCycles uint64 `json:"window_cycles"`

	TotalBegun   uint64 `json:"total_begun"`
	TotalCommits uint64 `json:"total_commits"`
	TotalAborts  uint64 `json:"total_aborts"`
	// EngineAborts is the abort total reported by the engine's own
	// tsx.Stats counters for the profiled run, stamped by the harness.
	// The attribution invariant — every abort classified exactly once —
	// is checked as sum(Causes) == TotalAborts == EngineAborts.
	EngineAborts uint64 `json:"engine_aborts,omitempty"`

	Causes     []CauseCount     `json:"causes,omitempty"`
	Aggressors []AggressorCount `json:"aggressors,omitempty"`
	Threads    []ThreadProfile  `json:"threads,omitempty"`
	Lines      []LineHeat       `json:"lines,omitempty"`
	Timeline   []Window         `json:"timeline,omitempty"`
	Latency    []Histogram      `json:"latency,omitempty"`
	// Controller is the adaptive scheme-transition log, present only when
	// the profiled scheme is hle.Adaptive.
	Controller []ControllerEvent `json:"controller,omitempty"`
}

// JSON renders the profile as indented JSON. Equal seeds yield
// byte-identical output.
func (p *Profile) JSON() []byte {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		panic("obs: marshal profile: " + err.Error())
	}
	return append(out, '\n')
}

// causeCount returns the count for a class name, or 0.
func causeCount(cs []CauseCount, class string) uint64 {
	for _, c := range cs {
		if c.Class == class {
			return c.Count
		}
	}
	return 0
}

// Cause returns the profile's abort count for one class (0 when the class
// never fired).
func (p *Profile) Cause(class Class) uint64 {
	return causeCount(p.Causes, class.String())
}

// CauseSum sums the per-cause counts; the attribution invariant requires
// it to equal TotalAborts.
func (p *Profile) CauseSum() uint64 {
	var n uint64
	for _, c := range p.Causes {
		n += c.Count
	}
	return n
}

// Merge accumulates other into p: repetitions of one experiment point
// merge into a single profile. Both profiles must use the same
// WindowCycles.
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	if p.WindowCycles != other.WindowCycles {
		panic("obs: merging profiles with different window sizes")
	}
	if p.Label == "" {
		p.Label = other.Label
	}
	if other.Procs > p.Procs {
		p.Procs = other.Procs
	}
	p.TotalBegun += other.TotalBegun
	p.TotalCommits += other.TotalCommits
	p.TotalAborts += other.TotalAborts
	p.EngineAborts += other.EngineAborts
	p.Causes = mergeCauses(p.Causes, other.Causes)
	p.Aggressors = mergeAggressors(p.Aggressors, other.Aggressors)
	p.Threads = mergeThreads(p.Threads, other.Threads)
	p.Lines = mergeLines(p.Lines, other.Lines)
	p.Timeline = mergeTimeline(p.Timeline, other.Timeline)
	p.Latency = mergeLatency(p.Latency, other.Latency)
	// Transition logs concatenate in run order; Seq is renumbered so the
	// merged log stays totally ordered.
	p.Controller = append(p.Controller, other.Controller...)
	for i := range p.Controller {
		p.Controller[i].Seq = i
	}
}

// mergeCauses merges two cause lists, preserving canonical class order.
func mergeCauses(a, b []CauseCount) []CauseCount {
	var counts [NumClasses]uint64
	for _, cs := range [][]CauseCount{a, b} {
		for _, c := range cs {
			for i := 0; i < NumClasses; i++ {
				if classNames[i] == c.Class {
					counts[i] += c.Count
					break
				}
			}
		}
	}
	return causesFromCounts(&counts)
}

func causesFromCounts(counts *[NumClasses]uint64) []CauseCount {
	var out []CauseCount
	for i, n := range counts {
		if n > 0 {
			out = append(out, CauseCount{Class: classNames[i], Count: n})
		}
	}
	return out
}

func mergeAggressors(a, b []AggressorCount) []AggressorCount {
	m := make(map[int]uint64)
	for _, as := range [][]AggressorCount{a, b} {
		for _, ag := range as {
			m[ag.Thread] += ag.Count
		}
	}
	return aggressorsFromMap(m)
}

// aggressorsFromMap orders by count descending, ties by thread ascending.
func aggressorsFromMap(m map[int]uint64) []AggressorCount {
	out := make([]AggressorCount, 0, len(m))
	for th, n := range m {
		out = append(out, AggressorCount{Thread: th, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Thread < out[j].Thread
	})
	return out
}

func mergeThreads(a, b []ThreadProfile) []ThreadProfile {
	byID := make(map[int]*ThreadProfile)
	var order []int
	for _, ts := range [][]ThreadProfile{a, b} {
		for i := range ts {
			t := &ts[i]
			dst, ok := byID[t.Thread]
			if !ok {
				cp := *t
				byID[t.Thread] = &cp
				order = append(order, t.Thread)
				continue
			}
			dst.Begun += t.Begun
			dst.Commits += t.Commits
			dst.Aborts += t.Aborts
			dst.Causes = mergeCauses(dst.Causes, t.Causes)
			dst.Aggressors = mergeAggressors(dst.Aggressors, t.Aggressors)
		}
	}
	sort.Ints(order)
	out := make([]ThreadProfile, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

func mergeLines(a, b []LineHeat) []LineHeat {
	byLine := make(map[int]*LineHeat)
	for _, ls := range [][]LineHeat{a, b} {
		for i := range ls {
			l := &ls[i]
			dst, ok := byLine[l.Line]
			if !ok {
				cp := *l
				byLine[l.Line] = &cp
				continue
			}
			dst.Count += l.Count
			if dst.Label == "" {
				dst.Label = l.Label
			}
			dst.LockLine = dst.LockLine || l.LockLine
		}
	}
	out := make([]LineHeat, 0, len(byLine))
	for _, l := range byLine {
		out = append(out, *l)
	}
	sortLines(out)
	return out
}

// sortLines orders hottest first, ties by line index.
func sortLines(ls []LineHeat) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Count != ls[j].Count {
			return ls[i].Count > ls[j].Count
		}
		return ls[i].Line < ls[j].Line
	})
}

func mergeTimeline(a, b []Window) []Window {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]Window, n)
	for _, ws := range [][]Window{a, b} {
		for i, w := range ws {
			out[i].SpecCycles += w.SpecCycles
			out[i].SerialCycles += w.SerialCycles
			out[i].Commits += w.Commits
			out[i].Aborts += w.Aborts
			out[i].Grants += w.Grants
			out[i].Start = w.Start
		}
	}
	return out
}

func mergeLatency(a, b []Histogram) []Histogram {
	byOutcome := make(map[string]map[uint64]HistBucket)
	counts := make(map[string]uint64)
	var order []string
	for _, hs := range [][]Histogram{a, b} {
		for _, h := range hs {
			if _, ok := byOutcome[h.Outcome]; !ok {
				byOutcome[h.Outcome] = make(map[uint64]HistBucket)
				order = append(order, h.Outcome)
			}
			counts[h.Outcome] += h.Count
			for _, bk := range h.Buckets {
				cur := byOutcome[h.Outcome][bk.Lo]
				cur.Lo, cur.Hi = bk.Lo, bk.Hi
				cur.Count += bk.Count
				byOutcome[h.Outcome][bk.Lo] = cur
			}
		}
	}
	// Preserve first-seen outcome order (canonical: commit, abort, serial).
	seen := make(map[string]bool)
	var uniq []string
	for _, o := range order {
		if !seen[o] {
			seen[o] = true
			uniq = append(uniq, o)
		}
	}
	out := make([]Histogram, 0, len(uniq))
	for _, o := range uniq {
		bks := make([]HistBucket, 0, len(byOutcome[o]))
		for _, bk := range byOutcome[o] {
			bks = append(bks, bk)
		}
		sort.Slice(bks, func(i, j int) bool { return bks[i].Lo < bks[j].Lo })
		out = append(out, Histogram{Outcome: o, Count: counts[o], Buckets: bks})
	}
	return out
}

// bar renders n/max as a fixed-width ASCII bar.
func bar(n, max uint64, width int) string {
	if max == 0 {
		return strings.Repeat(".", width)
	}
	fill := int(n * uint64(width) / max)
	if fill > width {
		fill = width
	}
	if fill == 0 && n > 0 {
		fill = 1
	}
	return strings.Repeat("#", fill) + strings.Repeat(".", width-fill)
}

// Text renders the full profile as aligned text: summary, cause
// breakdown, per-thread table, heatmap, waterfall, and latency
// histograms.
func (p *Profile) Text() string {
	var b strings.Builder
	label := p.Label
	if label == "" {
		label = "(unlabeled)"
	}
	fmt.Fprintf(&b, "profile %s: procs=%d begun=%d committed=%d aborted=%d\n",
		label, p.Procs, p.TotalBegun, p.TotalCommits, p.TotalAborts)

	if len(p.Causes) > 0 {
		b.WriteString("\nabort causes:\n")
		for _, c := range p.Causes {
			pct := 100 * float64(c.Count) / float64(p.TotalAborts)
			fmt.Fprintf(&b, "  %-20s %10d  %5.1f%%\n", c.Class, c.Count, pct)
		}
	}
	if len(p.Aggressors) > 0 {
		b.WriteString("\nconflict aggressors (requestor wins — who doomed the victim):\n")
		for _, ag := range p.Aggressors {
			who := fmt.Sprintf("thread %d", ag.Thread)
			if ag.Thread < 0 {
				who = "external"
			}
			fmt.Fprintf(&b, "  %-10s %10d\n", who, ag.Count)
		}
	}
	if len(p.Threads) > 0 {
		b.WriteString("\nper-thread:\n")
		fmt.Fprintf(&b, "  %6s %10s %10s %10s  %s\n",
			"thread", "begun", "commits", "aborts", "top cause")
		for _, t := range p.Threads {
			top := ""
			var topN uint64
			for _, c := range t.Causes {
				if c.Count > topN {
					topN = c.Count
					top = c.Class
				}
			}
			fmt.Fprintf(&b, "  %6d %10d %10d %10d  %s\n",
				t.Thread, t.Begun, t.Commits, t.Aborts, top)
		}
	}
	if len(p.Controller) > 0 {
		b.WriteString("\nadaptive controller transitions:\n")
		fmt.Fprintf(&b, "  %4s %8s %12s  %-6s %2s %-6s  %-16s %10s %8s\n",
			"seq", "window", "clock", "from", "", "to", "reason", "drain@", "inflight")
		for _, ev := range p.Controller {
			fmt.Fprintf(&b, "  %4d %8d %12d  %-6s -> %-6s  %-16s %10d %8d\n",
				ev.Seq, ev.Window, ev.Clock, ev.From, ev.To, ev.Reason,
				ev.DrainClock, ev.Inflight)
		}
	}
	b.WriteString(p.HeatmapText())
	b.WriteString(p.Waterfall())
	if len(p.Latency) > 0 {
		b.WriteString("\nattempt latency (virtual cycles, log2 buckets):\n")
		for _, h := range p.Latency {
			fmt.Fprintf(&b, "  %s (%d):\n", h.Outcome, h.Count)
			var max uint64
			for _, bk := range h.Buckets {
				if bk.Count > max {
					max = bk.Count
				}
			}
			for _, bk := range h.Buckets {
				fmt.Fprintf(&b, "    [%8d, %8d) %-24s %d\n",
					bk.Lo, bk.Hi, bar(bk.Count, max, 24), bk.Count)
			}
		}
	}
	return b.String()
}

// PrefixHeat aggregates conflict aborts by label prefix — the text
// before the first '/' in a line's label. Construction code that labels
// each instance of a structure with a distinct prefix (the sharded
// store's "s03/mcs-tail", "s03/size") gets its conflicts attributed per
// instance here, the per-shard abort attribution behind hot-shard
// heatmaps.
type PrefixHeat struct {
	// Prefix is the label group: the text before the first '/', the
	// whole label when it has no '/', or "?" for unlabeled data lines —
	// unlabeled heat is bucketed, never dropped, so a layout pass
	// consuming the grouping cannot silently miss hot anonymous lines.
	Prefix string `json:"prefix"`
	// Count is the group's conflict aborts; LockCount is the subset on
	// lines registered as lock infrastructure.
	Count     uint64 `json:"count"`
	LockCount uint64 `json:"lock_count,omitempty"`
}

// HeatByPrefix groups the conflict heatmap by label prefix, ordered by
// count descending then prefix ascending (deterministic for equal
// seeds, like every profile slice).
func (p *Profile) HeatByPrefix() []PrefixHeat {
	byPrefix := make(map[string]*PrefixHeat)
	var order []string
	for _, l := range p.Lines {
		prefix := l.Label
		if i := strings.IndexByte(prefix, '/'); i >= 0 {
			prefix = prefix[:i]
		}
		if prefix == "" {
			prefix = "?"
		}
		g, ok := byPrefix[prefix]
		if !ok {
			g = &PrefixHeat{Prefix: prefix}
			byPrefix[prefix] = g
			order = append(order, prefix)
		}
		g.Count += l.Count
		if l.LockLine {
			g.LockCount += l.Count
		}
	}
	out := make([]PrefixHeat, 0, len(order))
	for _, prefix := range order {
		out = append(out, *byPrefix[prefix])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Prefix < out[j].Prefix
	})
	return out
}

// HeatmapText renders the conflict heatmap section.
func (p *Profile) HeatmapText() string {
	if len(p.Lines) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\nhot lines (conflict aborts per cache line):\n")
	max := p.Lines[0].Count
	for _, l := range p.Lines {
		name := l.Label
		if name == "" {
			name = "(data)"
		}
		if l.LockLine {
			name += " [lock]"
		}
		fmt.Fprintf(&b, "  line %6d %-28s %-24s %d\n",
			l.Line, name, bar(l.Count, max, 24), l.Count)
	}
	return b.String()
}

// Waterfall renders the occupancy time series: per window, how much of
// the machine was speculating vs serialized, and the abort/commit counts.
// This is the avalanche made visible — under a fair lock the spec column
// collapses and the serial column saturates.
func (p *Profile) Waterfall() string {
	if len(p.Timeline) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\nwaterfall (occupancy per window; # = share of thread-cycles):\n")
	fmt.Fprintf(&b, "  %12s  %-16s %-16s %8s %8s %8s\n",
		"cycles", "speculating", "serialized", "commits", "aborts", "grants")
	denom := p.WindowCycles * uint64(p.Procs)
	for _, w := range p.Timeline {
		fmt.Fprintf(&b, "  %12d  %-16s %-16s %8d %8d %8d\n",
			w.Start, bar(w.SpecCycles, denom, 16), bar(w.SerialCycles, denom, 16),
			w.Commits, w.Aborts, w.Grants)
	}
	return b.String()
}
