package obs

import (
	"math/bits"

	"hle/internal/tsx"
)

// Options configures a Collector.
type Options struct {
	// WindowCycles is the time-series sampling window in virtual cycles.
	// Zero selects DefaultWindowCycles.
	WindowCycles uint64
	// TopLines bounds the conflict heatmap to the N hottest lines.
	// Zero selects DefaultTopLines; negative keeps every line.
	TopLines int
	// MaxWindows bounds the time series; activity past the last window
	// accumulates into it. Zero selects DefaultMaxWindows.
	MaxWindows int
}

// Defaults for Options zero fields.
const (
	DefaultWindowCycles = 50_000
	DefaultTopLines     = 16
	DefaultMaxWindows   = 4096
)

func (o Options) withDefaults() Options {
	if o.WindowCycles == 0 {
		o.WindowCycles = DefaultWindowCycles
	}
	if o.TopLines == 0 {
		o.TopLines = DefaultTopLines
	}
	if o.MaxWindows == 0 {
		o.MaxWindows = DefaultMaxWindows
	}
	return o
}

// Thread occupancy modes for the time series.
const (
	modeOther  = iota // not speculating, not serialized
	modeSpec          // inside a transaction
	modeSerial        // inside a MarkSerial region, not speculating
)

// Latency histogram outcomes.
const (
	histCommit = iota
	histAbort
	histSerial
	numHists
)

var histNames = [numHists]string{"commit", "abort", "serial"}

// maxBuckets caps the log2 latency buckets (2^40 cycles ≫ any run).
const maxBuckets = 40

// threadState is the collector's per-thread accumulator. Fixed-size
// arrays keep the callbacks allocation-free.
type threadState struct {
	seen    bool
	begun   uint64
	commits uint64
	aborts  uint64
	classes [NumClasses]uint64
	// aggr[i] counts conflict aborts doomed by thread i; the last slot
	// counts external/unknown aggressors.
	aggr [tsx.MaxProcs + 1]uint64

	hist [numHists][maxBuckets]uint64

	// Occupancy tracking.
	mode        int
	modeSince   uint64
	serialFlag  bool
	serialSince uint64
	lastClock   uint64
}

// Collector implements tsx.Observer, accumulating a Profile for one
// machine. Attach one collector per machine; the host-parallel pool gives
// every point its own machine and its own collector, so collection is
// race-free without locks.
type Collector struct {
	opt Options
	m   *tsx.Machine

	label   string
	procs   int
	threads [tsx.MaxProcs]threadState

	windows  []Window
	lineHeat map[int]uint64
}

// New returns a collector with opt's defaults applied. Install it with
// tsx.Machine.SetObserver or tsx.Config.Observer.
func New(opt Options) *Collector {
	return &Collector{opt: opt.withDefaults(), lineHeat: make(map[int]uint64)}
}

// Attach builds a collector and installs it on m.
func Attach(m *tsx.Machine, opt Options) *Collector {
	c := New(opt)
	m.SetObserver(c)
	return c
}

// Detach removes the collector from its machine; the accumulated state
// remains readable via Profile.
func (c *Collector) Detach() {
	if c.m != nil && c.m.Observer() == c {
		c.m.SetObserver(nil)
	}
}

// SetLabel names the profile (the harness stamps the scheme name).
func (c *Collector) SetLabel(label string) { c.label = label }

// BindMachine implements tsx.Observer. A collector serves one machine.
func (c *Collector) BindMachine(m *tsx.Machine) {
	if c.m != nil && c.m != m {
		panic("obs: collector attached to a second machine")
	}
	c.m = m
}

func (c *Collector) state(thread int) *threadState {
	ts := &c.threads[thread]
	if !ts.seen {
		ts.seen = true
		if thread+1 > c.procs {
			c.procs = thread + 1
		}
	}
	return ts
}

// window returns the time-series slot covering clock, growing the series
// on demand and clamping to MaxWindows.
func (c *Collector) window(clock uint64) *Window {
	i := int(clock / c.opt.WindowCycles)
	if i >= c.opt.MaxWindows {
		i = c.opt.MaxWindows - 1
	}
	for len(c.windows) <= i {
		c.windows = append(c.windows, Window{
			Start: uint64(len(c.windows)) * c.opt.WindowCycles,
		})
	}
	return &c.windows[i]
}

// addSpan credits [from, to) thread-cycles in mode to the time series.
func (c *Collector) addSpan(mode int, from, to uint64) {
	if mode == modeOther || to <= from {
		return
	}
	w := c.opt.WindowCycles
	for from < to {
		win := c.window(from)
		// The window's nominal end; the clamped last window is open-ended.
		end := win.Start + w
		if int(from/w) >= c.opt.MaxWindows {
			end = to
		}
		if end > to {
			end = to
		}
		if end <= from {
			end = to // defensive: never loop without progress
		}
		switch mode {
		case modeSpec:
			win.SpecCycles += end - from
		case modeSerial:
			win.SerialCycles += end - from
		}
		from = end
	}
}

// setMode transitions a thread's occupancy mode at clock, flushing the
// span spent in the previous mode.
func (c *Collector) setMode(ts *threadState, clock uint64, mode int) {
	if clock > ts.lastClock {
		ts.lastClock = clock
	}
	if mode == ts.mode {
		return
	}
	c.addSpan(ts.mode, ts.modeSince, clock)
	ts.mode = mode
	ts.modeSince = clock
}

// histAdd records one latency observation in the outcome's log2 buckets.
func (ts *threadState) histAdd(outcome int, cycles uint64) {
	b := bits.Len64(cycles) // bucket b covers [2^(b-1), 2^b)
	if b >= maxBuckets {
		b = maxBuckets - 1
	}
	ts.hist[outcome][b]++
}

// TxBegin implements tsx.Observer.
func (c *Collector) TxBegin(thread int, clock uint64) {
	ts := c.state(thread)
	ts.begun++
	c.setMode(ts, clock, modeSpec)
}

// TxCommit implements tsx.Observer.
func (c *Collector) TxCommit(thread int, clock, begin uint64, accesses int) {
	ts := c.state(thread)
	ts.commits++
	ts.histAdd(histCommit, clock-begin)
	c.window(clock).Commits++
	c.leaveTx(ts, clock)
}

// TxAbort implements tsx.Observer. Every abort increments exactly one
// class counter; the attribution-invariant test rests on that.
func (c *Collector) TxAbort(thread int, clock, begin uint64, cause tsx.Cause,
	line, aggressor int, injected, elided bool) {
	ts := c.state(thread)
	ts.aborts++
	ts.classes[c.classify(cause, line, injected)]++
	if cause == tsx.CauseConflict {
		idx := tsx.MaxProcs // external/unknown
		if aggressor >= 0 && aggressor < tsx.MaxProcs {
			idx = aggressor
		}
		ts.aggr[idx]++
		c.lineHeat[line]++
	}
	ts.histAdd(histAbort, clock-begin)
	c.window(clock).Aborts++
	c.leaveTx(ts, clock)
}

// leaveTx restores the thread's occupancy mode after a transaction ends.
func (c *Collector) leaveTx(ts *threadState, clock uint64) {
	mode := modeOther
	if ts.serialFlag {
		mode = modeSerial
	}
	c.setMode(ts, clock, mode)
}

// classify maps an engine abort to its enriched class by resolving the
// conflicting line against the machine's lock-line registry and deferring
// to the shared ClassOf rule.
func (c *Collector) classify(cause tsx.Cause, line int, injected bool) Class {
	lockLine := cause == tsx.CauseConflict && c.m != nil && c.m.IsLockLine(line)
	return ClassOf(cause, lockLine, injected)
}

// Serial implements tsx.Observer.
func (c *Collector) Serial(thread int, clock uint64, on bool) {
	ts := c.state(thread)
	ts.serialFlag = on
	if on {
		ts.serialSince = clock
	} else {
		ts.histAdd(histSerial, clock-ts.serialSince)
	}
	if ts.mode != modeSpec { // speculation outranks serialization
		mode := modeOther
		if on {
			mode = modeSerial
		}
		c.setMode(ts, clock, mode)
	} else if clock > ts.lastClock {
		ts.lastClock = clock
	}
}

// Grant implements tsx.Observer.
func (c *Collector) Grant(proc int, clock uint64) {
	c.window(clock).Grants++
}

// Profile exports the collector's accumulated state. It is
// non-destructive — the collector may keep collecting — and deterministic:
// every slice is explicitly ordered.
func (c *Collector) Profile() *Profile {
	p := &Profile{
		Label:        c.label,
		Procs:        c.procs,
		WindowCycles: c.opt.WindowCycles,
	}

	var causes [NumClasses]uint64
	aggr := make(map[int]uint64)
	var hists [numHists][maxBuckets]uint64

	// Snapshot the timeline, extended to cover every thread's last
	// observed clock so open occupancy spans flush into real windows.
	var maxLast uint64
	for id := 0; id < c.procs; id++ {
		if ts := &c.threads[id]; ts.seen && ts.lastClock > maxLast {
			maxLast = ts.lastClock
		}
	}
	need := len(c.windows)
	if maxLast > 0 {
		if n := int(maxLast/c.opt.WindowCycles) + 1; n > need {
			need = n
		}
		if need > c.opt.MaxWindows {
			need = c.opt.MaxWindows
		}
	}
	timeline := make([]Window, need)
	copy(timeline, c.windows)
	for i := len(c.windows); i < need; i++ {
		timeline[i].Start = uint64(i) * c.opt.WindowCycles
	}

	for id := 0; id < c.procs; id++ {
		ts := &c.threads[id]
		if !ts.seen {
			continue
		}
		// Flush the open occupancy span into the snapshot (the live
		// collector state is untouched).
		flushSpan(timeline, c.opt, ts.mode, ts.modeSince, ts.lastClock)

		p.TotalBegun += ts.begun
		p.TotalCommits += ts.commits
		p.TotalAborts += ts.aborts

		tp := ThreadProfile{
			Thread:  id,
			Begun:   ts.begun,
			Commits: ts.commits,
			Aborts:  ts.aborts,
		}
		var tc [NumClasses]uint64
		for cl, n := range ts.classes {
			tc[cl] = n
			causes[cl] += n
		}
		tp.Causes = causesFromCounts(&tc)
		ta := make(map[int]uint64)
		for i, n := range ts.aggr {
			if n == 0 {
				continue
			}
			who := i
			if i == tsx.MaxProcs {
				who = -1
			}
			ta[who] += n
			aggr[who] += n
		}
		tp.Aggressors = aggressorsFromMap(ta)
		p.Threads = append(p.Threads, tp)

		for h := 0; h < numHists; h++ {
			for b, n := range ts.hist[h] {
				hists[h][b] += n
			}
		}
	}
	p.Causes = causesFromCounts(&causes)
	p.Aggressors = aggressorsFromMap(aggr)

	// Heatmap: hottest first, bounded to TopLines, labels resolved
	// through the machine's registry.
	lines := make([]LineHeat, 0, len(c.lineHeat))
	for line, n := range c.lineHeat {
		lh := LineHeat{Line: line, Count: n}
		if c.m != nil {
			lh.Label = c.m.LineLabel(line)
			lh.LockLine = c.m.IsLockLine(line)
		}
		lines = append(lines, lh)
	}
	sortLines(lines)
	if c.opt.TopLines > 0 && len(lines) > c.opt.TopLines {
		lines = lines[:c.opt.TopLines]
	}
	p.Lines = lines

	// Trim trailing all-zero windows.
	for len(timeline) > 0 {
		last := timeline[len(timeline)-1]
		if last.SpecCycles|last.SerialCycles|last.Commits|last.Aborts|last.Grants != 0 {
			break
		}
		timeline = timeline[:len(timeline)-1]
	}
	p.Timeline = timeline

	for h := 0; h < numHists; h++ {
		hist := Histogram{Outcome: histNames[h]}
		for b, n := range hists[h] {
			if n == 0 {
				continue
			}
			var lo uint64
			if b > 0 {
				lo = 1 << uint(b-1)
			}
			hist.Buckets = append(hist.Buckets,
				HistBucket{Lo: lo, Hi: 1 << uint(b), Count: n})
			hist.Count += n
		}
		if hist.Count > 0 {
			p.Latency = append(p.Latency, hist)
		}
	}
	return p
}

// flushSpan credits an open [from, to) span in mode to a timeline
// snapshot (same logic as Collector.addSpan, but against a copy).
func flushSpan(timeline []Window, opt Options, mode int, from, to uint64) {
	if mode == modeOther || to <= from || len(timeline) == 0 {
		return
	}
	w := opt.WindowCycles
	for from < to {
		i := int(from / w)
		if i >= len(timeline) {
			i = len(timeline) - 1
		}
		end := timeline[i].Start + w
		if i == len(timeline)-1 {
			// Open-ended last snapshot window: take the rest.
			if e := to; e > end {
				end = e
			}
		}
		if end > to {
			end = to
		}
		if end <= from {
			end = to
		}
		switch mode {
		case modeSpec:
			timeline[i].SpecCycles += end - from
		case modeSerial:
			timeline[i].SerialCycles += end - from
		}
		from = end
	}
}
