package obs_test

import (
	"reflect"
	"testing"

	"hle/internal/obs"
)

// TestHeatByPrefix checks grouping of the conflict heatmap by label
// prefix: lines labeled "s03/lock" and "s03/size" merge into group "s03",
// labels without a '/' group under the full label, unlabeled lines group
// under "", and ordering is by count descending then prefix ascending.
func TestHeatByPrefix(t *testing.T) {
	p := &obs.Profile{Lines: []obs.LineHeat{
		{Line: 1, Label: "s03/lock", LockLine: true, Count: 10},
		{Line: 2, Label: "s03/size", Count: 5},
		{Line: 3, Label: "s01/lock", LockLine: true, Count: 7},
		{Line: 4, Label: "seq", Count: 7},
		{Line: 5, Count: 2},
	}}
	got := p.HeatByPrefix()
	want := []obs.PrefixHeat{
		{Prefix: "s03", Count: 15, LockCount: 10},
		{Prefix: "s01", Count: 7, LockCount: 7},
		{Prefix: "seq", Count: 7},
		{Prefix: "", Count: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HeatByPrefix = %+v, want %+v", got, want)
	}
	if len((&obs.Profile{}).HeatByPrefix()) != 0 {
		t.Error("empty profile should produce no groups")
	}
}
