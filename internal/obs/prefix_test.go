package obs_test

import (
	"reflect"
	"testing"

	"hle/internal/obs"
)

// TestHeatByPrefix checks grouping of the conflict heatmap by label
// prefix: lines labeled "s03/lock" and "s03/size" merge into group "s03",
// labels without a '/' group under the full label, unlabeled lines are
// bucketed under "?" (never dropped — the auto-pad pass keys off this
// grouping and must see hot anonymous lines), and ordering is by count
// descending then prefix ascending.
func TestHeatByPrefix(t *testing.T) {
	cases := []struct {
		name  string
		lines []obs.LineHeat
		want  []obs.PrefixHeat
	}{
		{
			name: "mixed labels",
			lines: []obs.LineHeat{
				{Line: 1, Label: "s03/lock", LockLine: true, Count: 10},
				{Line: 2, Label: "s03/size", Count: 5},
				{Line: 3, Label: "s01/lock", LockLine: true, Count: 7},
				{Line: 4, Label: "seq", Count: 7},
				{Line: 5, Count: 2},
			},
			want: []obs.PrefixHeat{
				{Prefix: "s03", Count: 15, LockCount: 10},
				{Prefix: "s01", Count: 7, LockCount: 7},
				{Prefix: "seq", Count: 7},
				{Prefix: "?", Count: 2},
			},
		},
		{
			name: "unlabeled lines merge into one ? bucket",
			lines: []obs.LineHeat{
				{Line: 9, Count: 4},
				{Line: 2, Label: "a/x", Count: 3},
				{Line: 7, Count: 4, LockLine: true},
			},
			want: []obs.PrefixHeat{
				{Prefix: "?", Count: 8, LockCount: 4},
				{Prefix: "a", Count: 3},
			},
		},
		{
			name: "unlabeled can dominate",
			lines: []obs.LineHeat{
				{Line: 1, Label: "hot", Count: 1},
				{Line: 2, Count: 100},
			},
			want: []obs.PrefixHeat{
				{Prefix: "?", Count: 100},
				{Prefix: "hot", Count: 1},
			},
		},
	}
	for _, c := range cases {
		p := &obs.Profile{Lines: c.lines}
		if got := p.HeatByPrefix(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: HeatByPrefix = %+v, want %+v", c.name, got, c.want)
		}
	}
	if len((&obs.Profile{}).HeatByPrefix()) != 0 {
		t.Error("empty profile should produce no groups")
	}
}
