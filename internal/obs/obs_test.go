package obs_test

import (
	"bytes"
	"testing"

	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/tsx"
)

func machineCfg(n int, seed int64) tsx.Config {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.MemWords = 1 << 18
	return cfg
}

// profiledPoint runs one contended experiment point with profiling on.
func profiledPoint(scheme, lock string, seed int64) harness.Result {
	return harness.Point(machineCfg(4, seed),
		harness.SchemeSpec{Scheme: scheme, Lock: lock},
		func(th *tsx.Thread) harness.Workload {
			return harness.NewRBTree(th, 64, harness.MixExtensive)
		},
		harness.Config{
			Threads:     4,
			CycleBudget: 300_000,
			Profile:     &obs.Options{WindowCycles: 30_000},
		})
}

// checkInvariants asserts the attribution invariant and internal
// consistency of a profile.
func checkInvariants(t *testing.T, p *obs.Profile) {
	t.Helper()
	if p == nil {
		t.Fatal("no profile collected")
	}
	if sum := p.CauseSum(); sum != p.TotalAborts {
		t.Fatalf("cause sum %d != total aborts %d", sum, p.TotalAborts)
	}
	if p.EngineAborts != 0 && p.EngineAborts != p.TotalAborts {
		t.Fatalf("engine aborts %d != observed aborts %d", p.EngineAborts, p.TotalAborts)
	}
	var thBegun, thCommits, thAborts uint64
	for _, th := range p.Threads {
		thBegun += th.Begun
		thCommits += th.Commits
		thAborts += th.Aborts
		var causes uint64
		for _, c := range th.Causes {
			causes += c.Count
		}
		if causes != th.Aborts {
			t.Fatalf("thread %d cause sum %d != aborts %d", th.Thread, causes, th.Aborts)
		}
	}
	if thBegun != p.TotalBegun || thCommits != p.TotalCommits || thAborts != p.TotalAborts {
		t.Fatalf("per-thread totals (%d,%d,%d) != profile totals (%d,%d,%d)",
			thBegun, thCommits, thAborts, p.TotalBegun, p.TotalCommits, p.TotalAborts)
	}
}

func TestProfileAttribution(t *testing.T) {
	res := profiledPoint("HLE", "TTAS", 7)
	p := res.Profile
	checkInvariants(t, p)
	if p.TotalAborts == 0 {
		t.Fatal("contended HLE run recorded no aborts; workload too tame to test attribution")
	}
	if p.EngineAborts != res.TSX.TotalAborts() {
		t.Fatalf("engine aborts %d != harness TSX aborts %d", p.EngineAborts, res.TSX.TotalAborts())
	}
	if p.Label != "HLE" {
		t.Fatalf("label = %q, want HLE", p.Label)
	}
	// Under plain HLE over TTAS the avalanche is conflict-on-lock-line;
	// the heatmap must name the TTAS word.
	found := false
	for _, l := range p.Lines {
		if l.Label == "ttas-lock" && l.LockLine && l.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heatmap does not name the ttas-lock line: %+v", p.Lines)
	}
	// Conflict aborts must identify an aggressing thread.
	var aggr uint64
	for _, a := range p.Aggressors {
		if a.Thread < -1 || a.Thread >= 4 {
			t.Fatalf("impossible aggressor %d", a.Thread)
		}
		aggr += a.Count
	}
	conflicts := causeTotal(p, "conflict-lock-line") + causeTotal(p, "conflict-data-line")
	if aggr != conflicts {
		t.Fatalf("aggressor total %d != conflict aborts %d", aggr, conflicts)
	}
	// Latency histograms: one observation per commit and per abort.
	for _, h := range p.Latency {
		var n uint64
		for _, b := range h.Buckets {
			n += b.Count
		}
		if n != h.Count {
			t.Fatalf("%s histogram bucket sum %d != count %d", h.Outcome, n, h.Count)
		}
		switch h.Outcome {
		case "commit":
			if h.Count != p.TotalCommits {
				t.Fatalf("commit histogram %d != commits %d", h.Count, p.TotalCommits)
			}
		case "abort":
			if h.Count != p.TotalAborts {
				t.Fatalf("abort histogram %d != aborts %d", h.Count, p.TotalAborts)
			}
		}
	}
	if len(p.Timeline) == 0 {
		t.Fatal("no timeline windows")
	}
	var spec, grants uint64
	for _, w := range p.Timeline {
		spec += w.SpecCycles
		grants += w.Grants
	}
	if spec == 0 {
		t.Fatal("no speculative occupancy recorded")
	}
	if grants == 0 {
		t.Fatal("no scheduler grants sampled")
	}
}

func causeTotal(p *obs.Profile, class string) uint64 {
	for _, c := range p.Causes {
		if c.Class == class {
			return c.Count
		}
	}
	return 0
}

// TestSerialOccupancy checks that a Standard (never-speculating) run
// charts as serialized time, and an SCM run records both modes.
func TestSerialOccupancy(t *testing.T) {
	p := profiledPoint("Standard", "MCS", 5).Profile
	checkInvariants(t, p)
	var spec, serial uint64
	for _, w := range p.Timeline {
		spec += w.SpecCycles
		serial += w.SerialCycles
	}
	if spec != 0 {
		t.Fatalf("Standard run recorded %d speculative cycles", spec)
	}
	if serial == 0 {
		t.Fatal("Standard run recorded no serialized cycles")
	}

	p = profiledPoint("HLE-SCM", "MCS", 5).Profile
	checkInvariants(t, p)
	spec, serial = 0, 0
	for _, w := range p.Timeline {
		spec += w.SpecCycles
		serial += w.SerialCycles
	}
	if spec == 0 {
		t.Fatal("SCM run recorded no speculative cycles")
	}
}

// TestProfileDeterminism: equal seeds give byte-identical JSON and text.
func TestProfileDeterminism(t *testing.T) {
	a := profiledPoint("HLE-SCM", "MCS", 11).Profile
	b := profiledPoint("HLE-SCM", "MCS", 11).Profile
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatal("equal seeds produced different profile JSON")
	}
	if a.Text() != b.Text() {
		t.Fatal("equal seeds produced different profile text")
	}
	c := profiledPoint("HLE-SCM", "MCS", 12).Profile
	if bytes.Equal(a.JSON(), c.JSON()) {
		t.Fatal("different seeds produced identical profiles (suspicious)")
	}
}

// TestProfileMerge checks count additivity across Merge.
func TestProfileMerge(t *testing.T) {
	a := profiledPoint("HLE", "TTAS", 3).Profile
	b := profiledPoint("HLE", "TTAS", 4).Profile
	wantAborts := a.TotalAborts + b.TotalAborts
	wantCommits := a.TotalCommits + b.TotalCommits
	a.Merge(b)
	checkInvariants(t, a)
	if a.TotalAborts != wantAborts || a.TotalCommits != wantCommits {
		t.Fatalf("merge lost counts: got (%d,%d), want (%d,%d)",
			a.TotalAborts, a.TotalCommits, wantAborts, wantCommits)
	}
}

// stormInjector aborts every in-transaction access to any line once its
// countdown elapses, then rearms.
type stormInjector struct{ every, n int }

func (s *stormInjector) Access(threadID int, clock uint64, line int, write, inTx bool) (uint64, bool) {
	if !inTx {
		return 0, false
	}
	s.n++
	if s.n >= s.every {
		s.n = 0
		return 0, true
	}
	return 0, false
}
func (s *stormInjector) WriteCap(threadID int, clock uint64, limit int) int { return limit }
func (s *stormInjector) Grant(procID int, clock, slice uint64) uint64       { return slice }

// TestInjectedAttribution: injector-forced aborts are classed "injected",
// distinct from organic spurious aborts, while the engine still reports
// them as spurious (golden fingerprints unchanged).
func TestInjectedAttribution(t *testing.T) {
	cfg := machineCfg(2, 9)
	cfg.SpuriousPerAccess = 0
	cfg.Injector = &stormInjector{every: 50}
	m := tsx.NewMachine(cfg)
	col := obs.Attach(m, obs.Options{})
	m.Run(2, func(th *tsx.Thread) {
		ctr := th.AllocLines(1)
		for i := 0; i < 200; i++ {
			th.RTM(func() {
				th.Store(ctr, th.Load(ctr)+1)
			})
		}
	})
	p := col.Profile()
	checkInvariants(t, p)
	if n := causeTotal(p, "injected"); n == 0 {
		t.Fatal("no injected aborts attributed")
	}
	if n := causeTotal(p, "spurious"); n != 0 {
		t.Fatalf("%d spurious aborts attributed with SpuriousPerAccess=0", n)
	}
}

// TestRenderersCoverProfile smoke-tests the text renderers.
func TestRenderersCoverProfile(t *testing.T) {
	p := profiledPoint("HLE", "MCS", 2).Profile
	text := p.Text()
	for _, want := range []string{"abort causes", "waterfall", "hot lines", "attempt latency"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("Text() missing %q section:\n%s", want, text)
		}
	}
	if p.Waterfall() == "" || p.HeatmapText() == "" {
		t.Fatal("empty waterfall/heatmap render")
	}
}
