package obs

import "hle/internal/tsx"

// WindowStats is one completed window of the incremental per-lock counter
// feed: how many critical-section attempts committed speculatively,
// completed non-speculatively, or aborted within the window, with aborts
// broken down into the classes an adaptive policy keys on. It is a plain
// value — no maps, no slices — so producing and consuming windows never
// allocates.
type WindowStats struct {
	// Index is the window's ordinal: the window covers virtual cycles
	// [Index*WindowCycles, (Index+1)*WindowCycles).
	Index int

	// Commits counts speculative commits; Serial counts operations that
	// completed non-speculatively (under a really-held lock); Aborts
	// counts aborted speculative attempts.
	Commits uint64
	Serial  uint64
	Aborts  uint64

	// Abort breakdown; LockLine+DataLine+Capacity+Explicit+Other == Aborts.
	// Explicit aborts are the software XABORTs the schemes issue on
	// observing the main lock held — lock pressure, like LockLine.
	LockLine uint64
	DataLine uint64
	Capacity uint64
	Explicit uint64
	Other    uint64
}

// Events returns the total attempt outcomes recorded in the window.
func (w WindowStats) Events() uint64 { return w.Commits + w.Serial + w.Aborts }

// Ops returns the completed operations recorded in the window.
func (w WindowStats) Ops() uint64 { return w.Commits + w.Serial }

// Feed turns a stream of per-attempt outcome events into consecutive
// WindowStats deliveries. It is the incremental counterpart of the
// Collector's batch timeline: a scheme feeds it directly from the
// execution path (no tsx.Observer slot consumed, so it composes with
// profiling), and the sink sees every window — including empty ones —
// exactly once, in order, as soon as an event lands past the window's end.
//
// The feed is allocation-free after construction and deterministic: the
// event stream is token-serialized by the simulator, so equal seeds
// produce identical window sequences at any host parallelism. An event
// whose clock precedes the current window (per-thread virtual clocks can
// trail the global maximum) folds into the current window rather than
// reopening a delivered one.
type Feed struct {
	window  uint64
	sink    func(WindowStats)
	cur     WindowStats
	started bool
}

// NewFeed builds a feed delivering windowCycles-sized windows to sink.
// A zero windowCycles selects DefaultWindowCycles; a nil sink discards
// windows (the zero-cost-when-off configuration).
func NewFeed(windowCycles uint64, sink func(WindowStats)) *Feed {
	if windowCycles == 0 {
		windowCycles = DefaultWindowCycles
	}
	return &Feed{window: windowCycles, sink: sink}
}

// WindowCycles returns the feed's window size in virtual cycles.
func (f *Feed) WindowCycles() uint64 { return f.window }

// roll delivers every window that ends at or before clock and returns the
// accumulator for the window covering clock. The first event anchors the
// sequence: windows before it are never delivered.
func (f *Feed) roll(clock uint64) *WindowStats {
	idx := int(clock / f.window)
	if !f.started {
		f.started = true
		f.cur.Index = idx
		return &f.cur
	}
	for f.cur.Index < idx {
		done := f.cur
		f.cur = WindowStats{Index: done.Index + 1}
		if f.sink != nil {
			f.sink(done)
		}
	}
	return &f.cur
}

// Commit records a speculative commit at clock.
func (f *Feed) Commit(clock uint64) { f.roll(clock).Commits++ }

// SerialOp records a non-speculative completion at clock.
func (f *Feed) SerialOp(clock uint64) { f.roll(clock).Serial++ }

// Abort records an aborted speculative attempt of the given class at clock.
func (f *Feed) Abort(clock uint64, class Class) {
	w := f.roll(clock)
	w.Aborts++
	switch class {
	case ClassConflictLockLine, ClassSubscription:
		// A commit-time subscription failure is the lazy-subscription
		// shape of a lock-line conflict: same root cause (a pessimistic
		// holder), detected at commit instead of in-flight. Feed it to
		// the adaptive controller through the same bucket.
		w.LockLine++
	case ClassConflictDataLine:
		w.DataLine++
	case ClassCapacityWrite, ClassCapacityRead:
		w.Capacity++
	case ClassExplicit:
		w.Explicit++
	default:
		w.Other++
	}
}

// Tick advances the feed's clock without recording an event, delivering
// any windows that ended before clock. Call it from a steady point (e.g.
// each critical-section entry) so quiet periods still produce the empty
// windows dwell and probation counting depend on.
func (f *Feed) Tick(clock uint64) {
	if f.started {
		f.roll(clock)
	}
}

// Flush delivers the current partial window (if any event was recorded
// since the last delivery) and resets the feed. Call at end of run when
// the tail matters; steady-state consumers never need it.
func (f *Feed) Flush() {
	if !f.started {
		return
	}
	if f.sink != nil && f.cur.Events() > 0 {
		f.sink(f.cur)
	}
	f.cur = WindowStats{}
	f.started = false
}

// ClassOf maps an engine abort cause to its enriched class: conflicts are
// split by whether the conflicting line is lock infrastructure, and
// injector-forced aborts (observed as spurious) are attributed separately.
// It is the single classification rule shared by the batch Collector and
// the incremental Feed's producers.
func ClassOf(cause tsx.Cause, lockLine, injected bool) Class {
	switch cause {
	case tsx.CauseConflict:
		if lockLine {
			return ClassConflictLockLine
		}
		return ClassConflictDataLine
	case tsx.CauseCapacityWrite:
		return ClassCapacityWrite
	case tsx.CauseCapacityRead:
		return ClassCapacityRead
	case tsx.CauseSpurious:
		if injected {
			return ClassInjected
		}
		return ClassSpurious
	case tsx.CausePause:
		return ClassPause
	case tsx.CauseExplicit:
		return ClassExplicit
	case tsx.CauseHLERestore:
		return ClassHLERestore
	case tsx.CauseNested:
		return ClassNested
	case tsx.CauseSubscription:
		return ClassSubscription
	}
	return ClassSpurious // unreachable: finished aborts always have a cause
}
