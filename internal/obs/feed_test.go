package obs

import (
	"testing"

	"hle/internal/tsx"
)

// TestFeedWindowSequencing drives a feed through anchored, consecutive,
// skipped, and late-clock events and checks the delivered window stream:
// every window from the anchoring one onward arrives exactly once, in
// order, empty windows included.
func TestFeedWindowSequencing(t *testing.T) {
	var got []WindowStats
	f := NewFeed(100, func(w WindowStats) { got = append(got, w) })

	// The first event anchors window 3; nothing is delivered yet.
	f.Commit(350)
	if len(got) != 0 {
		t.Fatalf("delivery before the anchoring window closed: %+v", got)
	}

	// Same window: accumulate.
	f.Abort(399, ClassConflictDataLine)
	f.SerialOp(399)

	// Next window: window 3 is delivered.
	f.Commit(401)
	if len(got) != 1 {
		t.Fatalf("want 1 delivered window, got %d", len(got))
	}
	w := got[0]
	if w.Index != 3 || w.Commits != 1 || w.Aborts != 1 || w.DataLine != 1 || w.Serial != 1 {
		t.Fatalf("window 3 miscounted: %+v", w)
	}

	// A clock regression (an earlier per-thread virtual clock) folds into
	// the current window instead of reopening a delivered one.
	f.Commit(360)
	// Jumping three windows ahead delivers 4 (with both commits), then
	// empty 5 and 6.
	f.Abort(705, ClassExplicit)
	if len(got) != 4 {
		t.Fatalf("want 4 delivered windows after skip, got %d: %+v", len(got), got)
	}
	if got[1].Index != 4 || got[1].Commits != 2 {
		t.Fatalf("regressed event not folded into window 4: %+v", got[1])
	}
	for i, idx := range []int{5, 6} {
		e := got[2+i]
		if e.Index != idx || e.Events() != 0 {
			t.Fatalf("intermediate window %d not delivered empty: %+v", idx, e)
		}
	}

	// Tick delivers closed windows without recording anything.
	f.Tick(1000)
	if len(got) != 7 || got[6].Index != 9 {
		t.Fatalf("tick did not deliver through window 9: %d windows, last %+v",
			len(got), got[len(got)-1])
	}
	if got[4].Events() != 1 || got[4].Explicit != 1 {
		t.Fatalf("window 7 lost its explicit abort: %+v", got[4])
	}

	// Flush delivers the open partial window only if it has events.
	f.Flush() // window 10 is untouched: nothing delivered
	if len(got) != 7 {
		t.Fatalf("flush of an empty window delivered: %+v", got[len(got)-1])
	}
	f.Commit(1010)
	f.Flush()
	if len(got) != 8 || got[7].Index != 10 || got[7].Commits != 1 {
		t.Fatalf("flush did not deliver the partial window: %+v", got[len(got)-1])
	}
}

// TestFeedAbortClasses checks the class-to-counter mapping, including the
// breakdown invariant.
func TestFeedAbortClasses(t *testing.T) {
	var got []WindowStats
	f := NewFeed(100, func(w WindowStats) { got = append(got, w) })
	classes := []Class{
		ClassConflictLockLine, ClassConflictDataLine,
		ClassCapacityWrite, ClassCapacityRead,
		ClassExplicit, ClassSpurious, ClassInjected,
	}
	for _, c := range classes {
		f.Abort(10, c)
	}
	f.Tick(250)
	if len(got) != 2 {
		t.Fatalf("want 2 windows, got %d", len(got))
	}
	w := got[0]
	if w.Aborts != uint64(len(classes)) {
		t.Fatalf("aborts %d, want %d", w.Aborts, len(classes))
	}
	if w.LockLine != 1 || w.DataLine != 1 || w.Capacity != 2 || w.Explicit != 1 || w.Other != 2 {
		t.Fatalf("class breakdown wrong: %+v", w)
	}
	if w.LockLine+w.DataLine+w.Capacity+w.Explicit+w.Other != w.Aborts {
		t.Fatalf("breakdown does not sum to aborts: %+v", w)
	}
}

// TestFeedNilSink: a feed without a sink (the zero-cost-when-off
// configuration) accepts events and never panics.
func TestFeedNilSink(t *testing.T) {
	f := NewFeed(0, nil)
	if f.WindowCycles() != DefaultWindowCycles {
		t.Fatalf("zero windowCycles not defaulted: %d", f.WindowCycles())
	}
	f.Commit(1)
	f.Abort(DefaultWindowCycles+1, ClassSpurious)
	f.SerialOp(3 * DefaultWindowCycles)
	f.Tick(10 * DefaultWindowCycles)
	f.Flush()
}

// TestFeedSteadyStateAllocs: feeding events and rolling windows is
// allocation-free — the controller runs on the simulator's hot path.
func TestFeedSteadyStateAllocs(t *testing.T) {
	sunk := 0
	f := NewFeed(100, func(WindowStats) { sunk++ })
	clock := uint64(0)
	if avg := testing.AllocsPerRun(1000, func() {
		clock += 37
		f.Commit(clock)
		f.Abort(clock, ClassConflictLockLine)
		f.SerialOp(clock)
		f.Tick(clock + 50)
	}); avg != 0 {
		t.Fatalf("feed allocates in steady state: %v allocs/op", avg)
	}
	if sunk == 0 {
		t.Fatal("sink never saw a window — the loop did not exercise delivery")
	}
}

// BenchmarkFeed measures the per-event cost of the incremental feed; the
// zero-allocation claim is enforced by ReportAllocs.
func BenchmarkFeed(b *testing.B) {
	b.ReportAllocs()
	f := NewFeed(DefaultWindowCycles, func(WindowStats) {})
	clock := uint64(0)
	for i := 0; i < b.N; i++ {
		clock += 97
		f.Commit(clock)
		f.Abort(clock, ClassConflictDataLine)
	}
}

// TestClassOf pins the shared classification rule both the batch
// collector and the feed producers rely on.
func TestClassOf(t *testing.T) {
	cases := []struct {
		cause              tsx.Cause
		lockLine, injected bool
		want               Class
	}{
		{tsx.CauseConflict, true, false, ClassConflictLockLine},
		{tsx.CauseConflict, false, false, ClassConflictDataLine},
		{tsx.CauseCapacityWrite, false, false, ClassCapacityWrite},
		{tsx.CauseCapacityRead, false, false, ClassCapacityRead},
		{tsx.CauseSpurious, false, false, ClassSpurious},
		{tsx.CauseSpurious, false, true, ClassInjected},
		{tsx.CauseExplicit, false, false, ClassExplicit},
	}
	for _, c := range cases {
		if got := ClassOf(c.cause, c.lockLine, c.injected); got != c.want {
			t.Errorf("ClassOf(%v, lock=%v, injected=%v) = %v, want %v",
				c.cause, c.lockLine, c.injected, got, c.want)
		}
	}
}
