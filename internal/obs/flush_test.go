package obs_test

import (
	"reflect"
	"testing"

	"hle/internal/obs"
)

// TestProfileFlushesOpenSpans exercises the mid-run snapshot path: when
// Profile is taken while threads are still inside transactions, their open
// occupancy spans must be credited to the timeline copy — split across
// windows, clamped into the open-ended last window past MaxWindows — and
// the live collector state must stay untouched (a later Profile sees the
// same spans plus whatever happened since). The event stream is fed
// directly: the Observer contract is the package's input surface, and
// hand-built clocks pin the window arithmetic exactly.
func TestProfileFlushesOpenSpans(t *testing.T) {
	c := obs.New(obs.Options{WindowCycles: 100, MaxWindows: 3})

	// Thread 0: transaction opens at 50; a serial mark at 950 advances its
	// last observed clock while speculation stays the occupancy mode.
	c.TxBegin(0, 50)
	c.Serial(0, 950, true)
	// Thread 1: transaction opens at 500 — already past the clamped
	// window range, so its whole span lands in the last window.
	c.TxBegin(1, 500)
	c.Serial(1, 980, true)

	p := c.Profile()
	if p.TotalBegun != 2 || p.TotalCommits != 0 {
		t.Fatalf("begun=%d commits=%d, want 2/0", p.TotalBegun, p.TotalCommits)
	}
	if len(p.Timeline) != 3 {
		t.Fatalf("timeline has %d windows, want 3 (MaxWindows clamp)", len(p.Timeline))
	}
	// Thread 0 contributes [50,950): 50 to window 0, 100 to window 1, 750
	// to the open-ended window 2. Thread 1 contributes [500,980): 480,
	// clamped entirely into window 2.
	want := []uint64{50, 100, 750 + 480}
	for i, w := range p.Timeline {
		if w.SpecCycles != want[i] {
			t.Errorf("window %d: spec cycles %d, want %d", i, w.SpecCycles, want[i])
		}
		if w.SerialCycles != 0 {
			t.Errorf("window %d: serial cycles %d, want 0 (speculation outranks serialization)",
				i, w.SerialCycles)
		}
	}

	// Profile is non-destructive: an identical second snapshot.
	if p2 := c.Profile(); !reflect.DeepEqual(p, p2) {
		t.Fatal("second Profile differs from the first with no events in between")
	}

	// After the transactions close, the spans are owned by the live
	// timeline and the snapshot flush must not double-count them.
	c.TxCommit(0, 990, 50, 3)
	c.TxCommit(1, 1000, 500, 2)
	p3 := c.Profile()
	var spec uint64
	for _, w := range p3.Timeline {
		spec += w.SpecCycles
	}
	if wantSpec := uint64((990 - 50) + (1000 - 500)); spec != wantSpec {
		t.Fatalf("spec cycles after commits = %d, want %d", spec, wantSpec)
	}
	if p3.TotalCommits != 2 {
		t.Fatalf("commits = %d, want 2", p3.TotalCommits)
	}
}
