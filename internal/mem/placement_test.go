package mem

import (
	"testing"
)

func TestPlacementNames(t *testing.T) {
	for _, p := range Placements() {
		if !p.Valid() {
			t.Fatalf("%v not valid", p)
		}
		got, ok := PlacementByName(p.String())
		if !ok || got != p {
			t.Fatalf("PlacementByName(%q) = %v,%v", p.String(), got, ok)
		}
	}
	if _, ok := PlacementByName("bogus"); ok {
		t.Fatal("PlacementByName accepted bogus name")
	}
	if Placement(200).Valid() {
		t.Fatal("out-of-range placement reported valid")
	}
	if Placement(200).String() != "placement(200)" {
		t.Fatalf("unexpected String: %q", Placement(200).String())
	}
}

func TestNewWithLayoutUnknownPanics(t *testing.T) {
	mustPanic(t, "unknown placement", func() {
		NewWithLayout(64, Layout{Placement: Placement(9)})
	})
	mustPanic(t, "unknown placement", func() {
		New(64).SetPlacement(Placement(9))
	})
}

// TestGoldenLayout pins the exact address every policy assigns to a fixed
// allocation sequence. Any change here is a layout change: it silently
// shifts every figure that allocates, so it must be deliberate.
func TestGoldenLayout(t *testing.T) {
	// (owner, words) pairs chosen to exercise the no-straddle rule, a
	// full-line block, and two interleaved owners.
	seq := []struct{ owner, n int }{
		{0, 3}, {1, 3}, {0, 6}, {1, 2}, {0, 8}, {1, 1},
	}
	golden := map[Placement][]Addr{
		Packed:  {8, 11, 16, 22, 24, 32},
		Padded:  {8, 16, 24, 32, 40, 48},
		Colored: {8, 264, 520, 776, 1032, 1288},
		Arena:   {8, 264, 16, 267, 24, 269},
	}
	goldenLines := map[Placement]Addr{
		Packed: 40, Padded: 56, Colored: 1544, Arena: 520,
	}
	for _, p := range Placements() {
		m := NewWithLayout(64, Layout{Placement: p})
		for i, s := range seq {
			a := m.AllocOwned(s.owner, s.n)
			if a != golden[p][i] {
				t.Errorf("%v alloc %d: got %d, want %d", p, i, a, golden[p][i])
			}
		}
		if a := m.AllocLines(4); a != goldenLines[p] {
			t.Errorf("%v AllocLines: got %d, want %d", p, a, goldenLines[p])
		}
	}
}

// TestPackedLayoutMatchesNew: the zero Layout is byte-identical to the
// historical allocator — NewWithLayout(packed) and New make the same
// decisions, so every pre-placement figure is unchanged.
func TestPackedLayoutMatchesNew(t *testing.T) {
	a, b := New(64), NewWithLayout(64, Layout{})
	for i := 0; i < 100; i++ {
		n := i%11 + 1
		x, y := a.AllocOwned(i%4, n), b.AllocOwned(i%4, n)
		if x != y {
			t.Fatalf("alloc %d: packed layout %d diverges from New %d", i, y, x)
		}
	}
}

func TestPaddedExclusiveLines(t *testing.T) {
	m := NewWithLayout(64, Layout{Placement: Padded})
	lineOwner := map[int]int{}
	for i := 0; i < 40; i++ {
		n := i%10 + 1
		a := m.AllocOwned(i%4, n)
		if int(a)%LineWords != 0 {
			t.Fatalf("padded block %d not line aligned: %d", i, a)
		}
		for l := LineOf(a); l <= LineOf(a + Addr(n-1)); l++ {
			if prev, ok := lineOwner[l]; ok {
				t.Fatalf("blocks %d and %d share line %d under padded", prev, i, l)
			}
			lineOwner[l] = i
		}
	}
}

func TestArenaOwnersNeverShareLines(t *testing.T) {
	m := NewWithLayout(64, Layout{Placement: Arena, ChunkLines: 4})
	lineOwner := map[int]int{}
	for i := 0; i < 200; i++ {
		owner := i % 3
		n := i%7 + 1
		a := m.AllocOwned(owner, n)
		for l := LineOf(a); l <= LineOf(a + Addr(n-1)); l++ {
			if prev, ok := lineOwner[l]; ok && prev != owner {
				t.Fatalf("owners %d and %d share line %d under arena", prev, owner, l)
			}
			lineOwner[l] = owner
		}
	}
}

func TestColoredRoundRobinChunks(t *testing.T) {
	m := NewWithLayout(64, Layout{Placement: Colored, Colors: 2, ChunkLines: 4})
	a0 := m.AllocOwned(0, 2) // color 0, first chunk
	a1 := m.AllocOwned(0, 2) // color 1, second chunk
	a2 := m.AllocOwned(0, 2) // color 0 again: packs after a0
	if LineOf(a0) == LineOf(a1) {
		t.Fatal("distinct colors landed on one line")
	}
	if a2 != a0+2 {
		t.Fatalf("same color did not pack: got %d, want %d", a2, a0+2)
	}
	// A block bigger than the chunk still fits: the chunk grows to hold it.
	big := m.AllocOwned(0, 6*LineWords)
	if int(big)%LineWords != 0 {
		t.Fatalf("oversized colored block unaligned: %d", big)
	}
}

// TestAutoPadDiversion: a PadLines plan diverts exactly the fresh
// allocations whose packed-baseline address lands on a planned line, gives
// them exclusive lines, and leaves every other allocation under packed
// rules tracked by the shadow cursor.
func TestAutoPadDiversion(t *testing.T) {
	sizes := []int{3, 3, 2, 5, 4, 4, 1, 7, 2}

	// Baseline run: record each block's packed address.
	base := New(64)
	baseAddr := make([]Addr, len(sizes))
	for i, n := range sizes {
		baseAddr[i] = base.Alloc(n)
	}

	// Plan: pad the line holding baseline blocks 1 and 2.
	planned := LineOf(baseAddr[1])
	if LineOf(baseAddr[2]) != planned {
		t.Fatalf("test setup: blocks 1,2 expected to share line, got %d,%d",
			LineOf(baseAddr[1]), LineOf(baseAddr[2]))
	}
	m := NewWithLayout(64, Layout{PadLines: map[int]bool{planned: true}})

	lineUse := map[int][]int{}
	for i, n := range sizes {
		a := m.Alloc(n)
		diverted := LineOf(baseAddr[i]) == planned
		if diverted && int(a)%LineWords != 0 {
			t.Fatalf("block %d should be diverted to a fresh line, got %d", i, a)
		}
		for l := LineOf(a); l <= LineOf(a + Addr(n-1)); l++ {
			lineUse[l] = append(lineUse[l], i)
		}
	}
	// Diverted blocks (1 and 2) sit alone on their lines.
	for l, blocks := range lineUse {
		shared := len(blocks) > 1
		for _, b := range blocks {
			if (b == 1 || b == 2) && shared {
				t.Fatalf("diverted block %d shares line %d with %v", b, l, blocks)
			}
		}
	}
	// Non-planned lines keep their packed co-residency: blocks 4 and 5
	// share a line in the baseline and must still share one here.
	if LineOf(baseAddr[4]) != LineOf(baseAddr[5]) {
		t.Fatalf("test setup: blocks 4,5 expected to share a baseline line")
	}
}

// TestSnapshotRestorePerPolicy proves fork ≡ continuation for every
// placement policy: a restored memory and a FromSnapshot rebuild make the
// same allocator decisions as each other when the post-snapshot history is
// replayed, including cursor and color-sequence state.
func TestSnapshotRestorePerPolicy(t *testing.T) {
	for _, p := range Placements() {
		l := Layout{Placement: p, Colors: 3, ChunkLines: 4,
			PadLines: map[int]bool{2: true}}
		m := NewWithLayout(64, l)

		var freed []Addr
		for i := 0; i < 30; i++ {
			a := m.AllocOwned(i%3, i%6+1)
			m.Write(a, uint64(i))
			if i%5 == 0 {
				freed = append(freed, a)
				m.Free(a, i%6+1)
			}
		}
		snap := m.Snapshot()

		replay := func(mm *Memory) []Addr {
			var got []Addr
			for i := 0; i < 30; i++ {
				a := mm.AllocOwned(i%2, i%7+1)
				mm.Write(a, uint64(i)*3)
				got = append(got, a)
			}
			got = append(got, mm.AllocLines(3))
			return got
		}

		cont := replay(m) // continuation on the original
		m.Restore(snap)
		rest := replay(m)                  // after in-place restore
		fork := replay(FromSnapshot(snap)) // on a forked image
		for i := range cont {
			if cont[i] != rest[i] || cont[i] != fork[i] {
				t.Fatalf("%v: replay addr %d diverges: cont %d, restored %d, fork %d",
					p, i, cont[i], rest[i], fork[i])
			}
		}
		_ = freed
	}
}

func TestSetPlacementBracket(t *testing.T) {
	m := NewWithLayout(64, Layout{Placement: Packed})
	prev := m.SetPlacement(Padded)
	if prev != Packed {
		t.Fatalf("SetPlacement returned %v, want packed", prev)
	}
	a := m.AllocOwned(0, 3)
	if int(a)%LineWords != 0 {
		t.Fatalf("bracketed alloc not padded: %d", a)
	}
	m.SetPlacement(prev)
	if m.Layout().Placement != Packed {
		t.Fatal("bracket did not restore packed")
	}
	b := m.AllocOwned(0, 3)
	c := m.AllocOwned(0, 3)
	if LineOf(b) != LineOf(c) {
		t.Fatal("post-bracket allocs no longer pack")
	}
}
