// Package mem provides the simulated word-addressable memory that all
// benchmark data structures and locks live in.
//
// Memory is an array of 64-bit words grouped into 64-byte cache lines
// (8 words). Each line carries transactional metadata: bitmasks of the
// simulated hardware threads that currently hold the line in a speculative
// read or write set. The TSX engine (internal/tsx) maintains these masks;
// because all simulated execution is serialized through the scheduler token
// (internal/sim), the masks are exact — they never contain stale bits.
package mem

import (
	"fmt"
	"maps"
	"slices"
)

// LineWords is the number of 64-bit words per cache line (64-byte lines).
const LineWords = 8

// LineShift is log2(LineWords), for computing line indices from addresses.
const LineShift = 3

// Addr is a simulated memory address, expressed as a word index.
// Address 0 is never allocated and serves as the nil pointer.
type Addr uint32

// Nil is the null simulated address.
const Nil Addr = 0

// LineMeta is the transactional coherence metadata of one cache line.
type LineMeta struct {
	// Readers is a bitmask of proc IDs holding this line in a
	// speculative read set.
	Readers uint64
	// Writers is a bitmask of proc IDs holding this line in a
	// speculative write set.
	Writers uint64
}

// smallClasses bounds the dense size-class tables of a FreeTable: blocks of
// up to smallClasses-1 words (or lines) index a slice directly, the hot
// path for data-structure nodes; rarer large blocks fall back to a map.
const smallClasses = 128

// FreeTable holds per-size free lists of recycled allocations, split into
// word-granularity classes (Alloc/Free) and line-granularity classes
// (AllocLines/FreeLines). The two kinds never mix: a block keeps the
// alignment and padding of its original allocation for its whole life.
//
// The zero FreeTable is ready to use. It is shared by the global allocator
// in Memory and by the per-thread allocation caches in internal/tsx, both
// of which recycle blocks on every simulated node allocation — the reason
// the classes are dense slices rather than a map.
type FreeTable struct {
	word    [smallClasses][]Addr // word[n]: free blocks of exactly n words
	line    [smallClasses][]Addr // line[k]: free padded blocks of k lines
	bigWord map[int][]Addr       // n >= smallClasses (rare)
	bigLine map[int][]Addr       // k >= smallClasses (rare)
}

// lineClass converts a requested word count of a line-granular allocation
// into its class key: the padded size in whole lines.
func lineClass(n int) int { return (n + LineWords - 1) >> LineShift }

// Push records a free block of n words. lines tells which allocation kind
// (and therefore which class family) the block belongs to.
func (f *FreeTable) Push(n int, lines bool, a Addr) {
	if lines {
		k := lineClass(n)
		if k < smallClasses {
			f.line[k] = append(f.line[k], a)
			return
		}
		if f.bigLine == nil {
			f.bigLine = make(map[int][]Addr)
		}
		f.bigLine[k] = append(f.bigLine[k], a)
		return
	}
	if n < smallClasses {
		f.word[n] = append(f.word[n], a)
		return
	}
	if f.bigWord == nil {
		f.bigWord = make(map[int][]Addr)
	}
	f.bigWord[n] = append(f.bigWord[n], a)
}

// Pop takes a free block of the given size and kind, or returns Nil.
func (f *FreeTable) Pop(n int, lines bool) Addr {
	var fl []Addr
	if lines {
		k := lineClass(n)
		if k < smallClasses {
			fl = f.line[k]
			if len(fl) == 0 {
				return Nil
			}
			f.line[k] = fl[:len(fl)-1]
			return fl[len(fl)-1]
		}
		fl = f.bigLine[k]
		if len(fl) == 0 {
			return Nil
		}
		f.bigLine[k] = fl[:len(fl)-1]
		return fl[len(fl)-1]
	}
	if n < smallClasses {
		fl = f.word[n]
		if len(fl) == 0 {
			return Nil
		}
		f.word[n] = fl[:len(fl)-1]
		return fl[len(fl)-1]
	}
	fl = f.bigWord[n]
	if len(fl) == 0 {
		return Nil
	}
	f.bigWord[n] = fl[:len(fl)-1]
	return fl[len(fl)-1]
}

// Drain empties the table, invoking fn once per block with the size (in
// words) and kind it was pushed under.
func (f *FreeTable) Drain(fn func(n int, lines bool, a Addr)) {
	for n := range f.word {
		for _, a := range f.word[n] {
			fn(n, false, a)
		}
		f.word[n] = nil
	}
	for k := range f.line {
		for _, a := range f.line[k] {
			fn(k*LineWords, true, a)
		}
		f.line[k] = nil
	}
	for n, fl := range f.bigWord {
		for _, a := range fl {
			fn(n, false, a)
		}
	}
	f.bigWord = nil
	for k, fl := range f.bigLine {
		for _, a := range fl {
			fn(k*LineWords, true, a)
		}
	}
	f.bigLine = nil
}

// clone deep-copies the table so that the copy and the original can be
// pushed/popped independently (they must not share slice backing arrays).
func (f *FreeTable) clone() FreeTable {
	var c FreeTable
	for n := range f.word {
		c.word[n] = slices.Clone(f.word[n])
	}
	for k := range f.line {
		c.line[k] = slices.Clone(f.line[k])
	}
	if f.bigWord != nil {
		c.bigWord = make(map[int][]Addr, len(f.bigWord))
		for n, fl := range f.bigWord {
			c.bigWord[n] = slices.Clone(fl)
		}
	}
	if f.bigLine != nil {
		c.bigLine = make(map[int][]Addr, len(f.bigLine))
		for k, fl := range f.bigLine {
			c.bigLine[k] = slices.Clone(fl)
		}
	}
	return c
}

// DebugChecks arms allocator sanity tracking for Memories created while it
// is set: every block remembers whether it came from Alloc or AllocLines
// and at what size, and a Free/FreeLines of the wrong kind or size — or of
// a block that is already free — panics instead of silently corrupting the
// free lists. Off by default: the tracking map would otherwise sit on the
// per-node allocation hot path.
var DebugChecks bool

// allocKind records how a block was allocated, for DebugChecks mode.
type allocKind struct {
	n     int
	lines bool
	free  bool
}

// Memory is a simulated physical memory. It grows on demand up to maxWords.
type Memory struct {
	words    []uint64
	lines    []LineMeta
	next     Addr
	maxWords int
	free     FreeTable
	owner    map[Addr]allocKind // nil unless DebugChecks was set at New

	// Placement state (see placement.go). All of it is captured by
	// Snapshot, so a checkpoint-forked memory continues the exact layout
	// of its image: same policy, same chunk cursors, same color rotation,
	// same shadow position.
	layout   Layout
	cursors  map[int]cursor // per-color / per-arena-owner chunk cursors
	colorSeq int            // Colored's round-robin color assignment
	shadow   Addr           // packed-shadow bump cursor (PadLines plans)
}

// DefaultMaxWords bounds memory growth: 1<<26 words = 512 MB simulated.
const DefaultMaxWords = 1 << 26

// New creates a memory with an initial capacity of initWords words,
// growable up to DefaultMaxWords.
func New(initWords int) *Memory {
	if initWords < 4*LineWords {
		initWords = 4 * LineWords
	}
	initWords = roundUpLine(initWords)
	m := &Memory{
		words:    make([]uint64, initWords),
		lines:    make([]LineMeta, initWords/LineWords),
		next:     LineWords, // keep line 0 (and Addr 0 == Nil) unallocated
		maxWords: DefaultMaxWords,
		shadow:   LineWords,
	}
	if DebugChecks {
		m.owner = make(map[Addr]allocKind)
	}
	return m
}

func roundUpLine(n int) int {
	return (n + LineWords - 1) &^ (LineWords - 1)
}

// LineOf returns the cache-line index containing address a.
func LineOf(a Addr) int { return int(a >> LineShift) }

// LineAddr returns the first address of line index l.
func LineAddr(l int) Addr { return Addr(l << LineShift) }

// Line returns the metadata of the line containing address a.
func (m *Memory) Line(a Addr) *LineMeta { return &m.lines[a>>LineShift] }

// LineByIndex returns the metadata of line index l.
func (m *Memory) LineByIndex(l int) *LineMeta { return &m.lines[l] }

// NumLines returns the current number of lines backed by this memory.
func (m *Memory) NumLines() int { return len(m.lines) }

// Read returns the committed value of the word at address a. The TSX engine
// is responsible for consulting speculative write buffers first.
func (m *Memory) Read(a Addr) uint64 { return m.words[a] }

// Write sets the committed value of the word at address a.
func (m *Memory) Write(a Addr, v uint64) { m.words[a] = v }

// NoteAlloc marks a block live in DebugChecks mode. The TSX engine's
// thread-local allocation caches call it when they recycle a block without
// going through Alloc/AllocLines; without DebugChecks it is a no-op.
func (m *Memory) NoteAlloc(a Addr, n int, lines bool) {
	if m.owner == nil {
		return
	}
	m.owner[a] = allocKind{n: n, lines: lines}
}

// CheckFree validates a free against the block's allocation record in
// DebugChecks mode: kind and size must match, and the block must be live.
// The TSX engine calls it from its thread-cache free path; Free/FreeLines
// call it internally. Without DebugChecks it is a no-op.
func (m *Memory) CheckFree(a Addr, n int, lines bool) {
	if m.owner == nil {
		return
	}
	k, ok := m.owner[a]
	if !ok {
		panic(fmt.Sprintf("mem: free of never-allocated address %d (n=%d, lines=%v)", a, n, lines))
	}
	if k.free {
		panic(fmt.Sprintf("mem: double free of address %d (n=%d, lines=%v)", a, n, lines))
	}
	if k.lines != lines {
		panic(fmt.Sprintf("mem: free kind mismatch at address %d: allocated lines=%v, freed lines=%v", a, k.lines, lines))
	}
	sameSize := k.n == n
	if lines {
		sameSize = lineClass(k.n) == lineClass(n)
	}
	if !sameSize {
		panic(fmt.Sprintf("mem: free size mismatch at address %d: allocated %d words, freed %d", a, k.n, n))
	}
	k.free = true
	m.owner[a] = k
}

// Alloc allocates n contiguous words and returns the address of the first.
// Fresh blocks are positioned by the configured placement policy (the zero
// Layout packs them: word aligned, never spanning more lines than
// necessary); use AllocLines when a structure must own whole cache lines
// under every policy.
//
// Reused memory is NOT zeroed here: clearing must go through the TSX
// engine's store path (tsx.Thread.Alloc does this) so that a recycled line
// still held in another transaction's read set triggers a proper conflict.
func (m *Memory) Alloc(n int) Addr { return m.AllocOwned(0, n) }

// AllocOwned is Alloc with the allocating owner identified — the TSX
// engine passes the simulated thread ID. Only the Arena placement reads
// it, to pick the owner's private chunk; every other policy ignores it.
func (m *Memory) AllocOwned(owner, n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d)", n))
	}
	if a := m.free.Pop(n, false); a != Nil {
		m.NoteAlloc(a, n, false)
		return a
	}
	a := m.place(owner, n)
	m.NoteAlloc(a, n, false)
	return a
}

// AllocLines allocates n words starting on a cache-line boundary and pads
// the allocation to whole lines, so the object shares its lines with
// nothing else. Locks and other contended words use this to avoid
// simulated false sharing; placement policies leave it unchanged (the
// object already owns its lines under any of them).
func (m *Memory) AllocLines(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: AllocLines(%d)", n))
	}
	if a := m.free.Pop(n, true); a != Nil {
		m.NoteAlloc(a, n, true)
		return a
	}
	if m.layout.PadLines != nil {
		m.shadowPlaceLines(n)
	}
	a := m.bumpLines(n)
	m.NoteAlloc(a, n, true)
	return a
}

// Free returns an allocation obtained from Alloc(n) to the allocator.
// In DebugChecks mode, freeing an AllocLines block here (or vice versa)
// panics — the two kinds have different padding and must never mix.
func (m *Memory) Free(a Addr, n int) {
	m.CheckFree(a, n, false)
	m.free.Push(n, false, a)
}

// FreeLines returns an allocation obtained from AllocLines(n).
func (m *Memory) FreeLines(a Addr, n int) {
	m.CheckFree(a, n, true)
	m.free.Push(n, true, a)
}

// Recycle returns a block to the global free lists without the DebugChecks
// live-to-free transition: the TSX engine's thread-cache flush uses it for
// blocks whose Free already ran the check.
func (m *Memory) Recycle(a Addr, n int, lines bool) {
	m.free.Push(n, lines, a)
}

// WordsInUse reports the high-water mark of allocated words.
func (m *Memory) WordsInUse() int { return int(m.next) }

func (m *Memory) grow(need int) {
	if need <= len(m.words) {
		return
	}
	if need > m.maxWords {
		panic(fmt.Sprintf("mem: out of simulated memory (need %d words, max %d)", need, m.maxWords))
	}
	newLen := len(m.words)
	for newLen < need {
		newLen *= 2
	}
	if newLen > m.maxWords {
		newLen = m.maxWords
	}
	words := make([]uint64, newLen)
	copy(words, m.words)
	m.words = words
	lines := make([]LineMeta, newLen/LineWords)
	copy(lines, m.lines)
	m.lines = lines
}

// Snapshot is an immutable deep copy of a Memory's complete state — word
// array, line metadata, bump pointer, and free lists. The experiment pool
// snapshots a populated workload once and builds an independent Memory per
// concurrent point from it (via Restore or FromSnapshot) instead of
// repopulating, which dominates point cost for large structures.
type Snapshot struct {
	words    []uint64
	lines    []LineMeta
	next     Addr
	maxWords int
	free     FreeTable
	owner    map[Addr]allocKind

	layout   Layout
	cursors  map[int]cursor
	colorSeq int
	shadow   Addr
}

// Words exposes the snapshot's word-array copy (tests compare snapshots to
// detect unwanted mutation).
func (s *Snapshot) Words() []uint64 { return s.words }

// Snapshot captures the memory's current state. The caller must ensure no
// simulated threads are running (line metadata must be quiescent).
func (m *Memory) Snapshot() *Snapshot {
	return &Snapshot{
		words:    slices.Clone(m.words),
		lines:    slices.Clone(m.lines),
		next:     m.next,
		maxWords: m.maxWords,
		free:     m.free.clone(),
		owner:    maps.Clone(m.owner),
		layout:   m.layout.clone(),
		cursors:  cloneCursors(m.cursors),
		colorSeq: m.colorSeq,
		shadow:   m.shadow,
	}
}

// Restore resets m to a previously captured snapshot. The snapshot is not
// consumed: it can seed any number of memories.
func (m *Memory) Restore(s *Snapshot) {
	m.words = slices.Clone(s.words)
	m.lines = slices.Clone(s.lines)
	m.next = s.next
	m.maxWords = s.maxWords
	m.free = s.free.clone()
	m.owner = maps.Clone(s.owner)
	m.layout = s.layout.clone()
	m.cursors = cloneCursors(s.cursors)
	m.colorSeq = s.colorSeq
	m.shadow = s.shadow
}

// FromSnapshot builds a new independent Memory from a snapshot.
func FromSnapshot(s *Snapshot) *Memory {
	m := &Memory{}
	m.Restore(s)
	return m
}
