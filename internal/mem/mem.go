// Package mem provides the simulated word-addressable memory that all
// benchmark data structures and locks live in.
//
// Memory is an array of 64-bit words grouped into 64-byte cache lines
// (8 words). Each line carries transactional metadata: bitmasks of the
// simulated hardware threads that currently hold the line in a speculative
// read or write set. The TSX engine (internal/tsx) maintains these masks;
// because all simulated execution is serialized through the scheduler token
// (internal/sim), the masks are exact — they never contain stale bits.
package mem

import "fmt"

// LineWords is the number of 64-bit words per cache line (64-byte lines).
const LineWords = 8

// LineShift is log2(LineWords), for computing line indices from addresses.
const LineShift = 3

// Addr is a simulated memory address, expressed as a word index.
// Address 0 is never allocated and serves as the nil pointer.
type Addr uint32

// Nil is the null simulated address.
const Nil Addr = 0

// LineMeta is the transactional coherence metadata of one cache line.
type LineMeta struct {
	// Readers is a bitmask of proc IDs holding this line in a
	// speculative read set.
	Readers uint64
	// Writers is a bitmask of proc IDs holding this line in a
	// speculative write set.
	Writers uint64
}

// Memory is a simulated physical memory. It grows on demand up to maxWords.
type Memory struct {
	words    []uint64
	lines    []LineMeta
	next     Addr
	maxWords int
	frees    map[int][]Addr // free lists by exact allocation size
}

// DefaultMaxWords bounds memory growth: 1<<26 words = 512 MB simulated.
const DefaultMaxWords = 1 << 26

// New creates a memory with an initial capacity of initWords words,
// growable up to DefaultMaxWords.
func New(initWords int) *Memory {
	if initWords < 4*LineWords {
		initWords = 4 * LineWords
	}
	initWords = roundUpLine(initWords)
	return &Memory{
		words:    make([]uint64, initWords),
		lines:    make([]LineMeta, initWords/LineWords),
		next:     LineWords, // keep line 0 (and Addr 0 == Nil) unallocated
		maxWords: DefaultMaxWords,
		frees:    make(map[int][]Addr),
	}
}

func roundUpLine(n int) int {
	return (n + LineWords - 1) &^ (LineWords - 1)
}

// LineOf returns the cache-line index containing address a.
func LineOf(a Addr) int { return int(a >> LineShift) }

// LineAddr returns the first address of line index l.
func LineAddr(l int) Addr { return Addr(l << LineShift) }

// Line returns the metadata of the line containing address a.
func (m *Memory) Line(a Addr) *LineMeta { return &m.lines[a>>LineShift] }

// LineByIndex returns the metadata of line index l.
func (m *Memory) LineByIndex(l int) *LineMeta { return &m.lines[l] }

// NumLines returns the current number of lines backed by this memory.
func (m *Memory) NumLines() int { return len(m.lines) }

// Read returns the committed value of the word at address a. The TSX engine
// is responsible for consulting speculative write buffers first.
func (m *Memory) Read(a Addr) uint64 { return m.words[a] }

// Write sets the committed value of the word at address a.
func (m *Memory) Write(a Addr, v uint64) { m.words[a] = v }

// Alloc allocates n contiguous words and returns the address of the first.
// Allocations never span more lines than necessary but are only word
// aligned; use AllocLines when a structure must own whole cache lines.
//
// Reused memory is NOT zeroed here: clearing must go through the TSX
// engine's store path (tsx.Thread.Alloc does this) so that a recycled line
// still held in another transaction's read set triggers a proper conflict.
func (m *Memory) Alloc(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d)", n))
	}
	if fl := m.frees[n]; len(fl) > 0 {
		a := fl[len(fl)-1]
		m.frees[n] = fl[:len(fl)-1]
		return a
	}
	// Avoid straddling a line boundary for small objects: a sub-line
	// object that would cross a boundary is pushed to the next line.
	if n <= LineWords {
		off := int(m.next) % LineWords
		if off+n > LineWords {
			m.next += Addr(LineWords - off)
		}
	}
	a := m.next
	m.grow(int(a) + n)
	m.next = a + Addr(n)
	return a
}

// AllocLines allocates n words starting on a cache-line boundary and pads
// the allocation to whole lines, so the object shares its lines with
// nothing else. Locks and other contended words use this to avoid
// simulated false sharing.
func (m *Memory) AllocLines(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: AllocLines(%d)", n))
	}
	padded := roundUpLine(n)
	if fl := m.frees[-padded]; len(fl) > 0 {
		a := fl[len(fl)-1]
		m.frees[-padded] = fl[:len(fl)-1]
		return a
	}
	m.next = Addr(roundUpLine(int(m.next)))
	a := m.next
	m.grow(int(a) + padded)
	m.next = a + Addr(padded)
	return a
}

// Free returns an allocation obtained from Alloc(n) to the allocator.
func (m *Memory) Free(a Addr, n int) {
	m.frees[n] = append(m.frees[n], a)
}

// FreeLines returns an allocation obtained from AllocLines(n).
func (m *Memory) FreeLines(a Addr, n int) {
	m.frees[-roundUpLine(n)] = append(m.frees[-roundUpLine(n)], a)
}

// WordsInUse reports the high-water mark of allocated words.
func (m *Memory) WordsInUse() int { return int(m.next) }

func (m *Memory) grow(need int) {
	if need <= len(m.words) {
		return
	}
	if need > m.maxWords {
		panic(fmt.Sprintf("mem: out of simulated memory (need %d words, max %d)", need, m.maxWords))
	}
	newLen := len(m.words)
	for newLen < need {
		newLen *= 2
	}
	if newLen > m.maxWords {
		newLen = m.maxWords
	}
	words := make([]uint64, newLen)
	copy(words, m.words)
	m.words = words
	lines := make([]LineMeta, newLen/LineWords)
	copy(lines, m.lines)
	m.lines = lines
}
