package mem

import (
	"fmt"
	"maps"
)

// Placement selects where the allocator puts FRESH word-granular
// allocations (Alloc/AllocOwned) relative to cache lines. Placement is an
// experimental axis: on real TSX hardware, allocator decisions — same-line
// co-location of independently-touched objects, cache-index conflicts
// under imprecise read-set tracking — dominate abort rates as much as the
// workload itself (Dice et al., "The Influence of Malloc Placement on TSX
// Hardware Transactional Memory").
//
// Only fresh bump allocations move; recycled blocks keep the address (and
// therefore the shape) of their original allocation for their whole life,
// exactly like the word/line split of FreeTable. Because every fresh block
// of one size under one policy has the same shape, free-list reuse stays
// shape-consistent. AllocLines is unaffected: contended objects already
// own whole lines under every policy.
type Placement uint8

const (
	// Packed is the baseline: blocks are word-aligned and tightly bumped,
	// never straddling a line boundary when they fit in one line — so
	// sub-line objects routinely share lines, the false-sharing source the
	// other policies attack.
	Packed Placement = iota
	// Padded places every fresh block on its own cache line(s), padded to
	// whole lines: no two objects share a line, trading memory for zero
	// placement-induced false sharing.
	Padded
	// Colored assigns each fresh block a color in round-robin order and
	// packs same-colored blocks into per-color chunks, spreading
	// consecutively-allocated hot objects across distinct line-index
	// strides (cache-set coloring). Objects still share lines within a
	// color, so on this simulator — whose conflict tracking is exact
	// per-line, with no set-associativity limit — Colored behaves like
	// Packed for conflicts; the policy exists to measure exactly that
	// contrast with real index-limited hardware.
	Colored
	// Arena gives each owner (the TSX engine passes the allocating thread
	// ID) private chunks carved from the global bump: blocks are packed
	// within an owner's arena, so concurrent allocating threads never
	// interleave fresh objects onto a shared line.
	Arena

	numPlacements
)

var placementNames = [numPlacements]string{"packed", "padded", "colored", "arena"}

// String returns the policy's stable lower-case name.
func (p Placement) String() string {
	if p < numPlacements {
		return placementNames[p]
	}
	return fmt.Sprintf("placement(%d)", uint8(p))
}

// Valid reports whether p names a known policy.
func (p Placement) Valid() bool { return p < numPlacements }

// PlacementByName resolves a policy by its String name.
func PlacementByName(name string) (Placement, bool) {
	for i, n := range placementNames {
		if n == name {
			return Placement(i), true
		}
	}
	return Packed, false
}

// Placements enumerates every policy in declaration order.
func Placements() []Placement {
	return []Placement{Packed, Padded, Colored, Arena}
}

// Layout defaults.
const (
	// DefaultColors is the Colored policy's color-class count: 8 colors ×
	// 64-byte lines = one 512-byte stride, a typical L1-set period.
	DefaultColors = 8
	// DefaultChunkLines sizes the chunks Colored/Arena carve from the
	// global bump (32 lines = 2 KB simulated).
	DefaultChunkLines = 32
)

// Layout is the allocator's placement configuration. The zero value is the
// packed baseline, byte-identical to the pre-placement allocator. It is
// part of the machine configuration (tsx.Config.Layout) and of every
// memory snapshot, so checkpoint-forked images preserve the policy and the
// positions of its cursors.
type Layout struct {
	// Placement selects the fresh-allocation policy.
	Placement Placement
	// Colors is Colored's color-class count (0 selects DefaultColors).
	Colors int
	// ChunkLines is the chunk size, in lines, that Colored and Arena carve
	// from the global bump (0 selects DefaultChunkLines).
	ChunkLines int
	// PadLines is the auto-pad plan, consulted by Packed only: a fresh
	// allocation whose would-have-been packed address (tracked by a shadow
	// cursor advancing under pure packed rules) lands on a planned line is
	// diverted to padded placement instead. Built from a profiling burst's
	// conflict heatmap (harness.AutoPad); nil means no plan. The map is
	// read-only once the Layout is in use.
	PadLines map[int]bool
}

func (l Layout) colors() int {
	if l.Colors > 0 {
		return l.Colors
	}
	return DefaultColors
}

func (l Layout) chunkLines() int {
	if l.ChunkLines > 0 {
		return l.ChunkLines
	}
	return DefaultChunkLines
}

// clone deep-copies the layout (the plan map must not be shared between a
// snapshot and a live allocator).
func (l Layout) clone() Layout {
	l.PadLines = maps.Clone(l.PadLines)
	return l
}

// WithPadLines returns a copy of the layout carrying the given auto-pad
// plan (the map is cloned; nil clears the plan).
func (l Layout) WithPadLines(plan map[int]bool) Layout {
	l.PadLines = maps.Clone(plan)
	return l
}

// cursor is one chunked bump region (a color's or an arena owner's).
type cursor struct{ next, end Addr }

// NewWithLayout creates a memory with an initial capacity of initWords
// words and the given placement layout. New(initWords) is the packed
// shorthand.
func NewWithLayout(initWords int, l Layout) *Memory {
	if !l.Placement.Valid() {
		panic(fmt.Sprintf("mem: unknown placement %d", uint8(l.Placement)))
	}
	m := New(initWords)
	m.layout = l.clone()
	m.shadow = m.next
	return m
}

// Layout returns the memory's placement layout. The PadLines map is shared
// and must be treated as read-only.
func (m *Memory) Layout() Layout { return m.layout }

// SetPlacement switches the placement policy applied to subsequent fresh
// allocations, returning the previous policy. It exists for
// construction-time bracketing — building one structure (a sharded store)
// under a different policy than the machine-wide one — and is part of the
// allocator state a snapshot captures.
func (m *Memory) SetPlacement(p Placement) (prev Placement) {
	if !p.Valid() {
		panic(fmt.Sprintf("mem: unknown placement %d", uint8(p)))
	}
	prev = m.layout.Placement
	m.layout.Placement = p
	return prev
}

// place positions one fresh word-granular block of n words under the
// current policy. Free-list pops never reach here.
func (m *Memory) place(owner, n int) Addr {
	switch m.layout.Placement {
	case Padded:
		return m.bumpLines(n)
	case Colored:
		color := m.colorSeq % m.layout.colors()
		m.colorSeq++
		return m.chunkAlloc(colorKey(color), n)
	case Arena:
		return m.chunkAlloc(owner, n)
	default: // Packed, possibly with an auto-pad plan.
		if m.layout.PadLines != nil && m.layout.PadLines[LineOf(m.shadowPlace(n))] {
			return m.bumpLines(n)
		}
		return m.bumpPacked(n)
	}
}

// colorKey maps a color index into the cursor key space without colliding
// with arena owners (thread IDs, which are non-negative).
func colorKey(color int) int { return -1 - color }

// bumpPacked advances the global bump under the packed rules: word
// aligned, but a sub-line object that would straddle a line boundary is
// pushed to the next line.
func (m *Memory) bumpPacked(n int) Addr {
	if n <= LineWords {
		if off := int(m.next) % LineWords; off+n > LineWords {
			m.next += Addr(LineWords - off)
		}
	}
	a := m.next
	m.grow(int(a) + n)
	m.next = a + Addr(n)
	return a
}

// bumpLines advances the global bump by a line-aligned block padded to
// whole lines.
func (m *Memory) bumpLines(n int) Addr {
	padded := roundUpLine(n)
	m.next = Addr(roundUpLine(int(m.next)))
	a := m.next
	m.grow(int(a) + padded)
	m.next = a + Addr(padded)
	return a
}

// chunkAlloc packs a fresh block into the keyed chunk (carving a new chunk
// from the global bump when the current one cannot fit it), applying the
// same no-straddle rule as the packed bump.
func (m *Memory) chunkAlloc(key, n int) Addr {
	if m.cursors == nil {
		m.cursors = make(map[int]cursor)
	}
	c := m.cursors[key]
	if n <= LineWords {
		if off := int(c.next) % LineWords; off+n > LineWords {
			c.next += Addr(LineWords - off)
		}
	}
	if c.end == 0 || c.next+Addr(n) > c.end {
		lines := m.layout.chunkLines()
		if k := lineClass(n); k > lines {
			lines = k
		}
		words := lines * LineWords
		start := Addr(roundUpLine(int(m.next)))
		m.grow(int(start) + words)
		m.next = start + Addr(words)
		c = cursor{next: start, end: start + Addr(words)}
	}
	a := c.next
	c.next = a + Addr(n)
	m.cursors[key] = c
	return a
}

// shadowPlace advances the packed-shadow cursor by one fresh allocation
// under pure packed rules and returns the address the block would have had
// with no plan in force. As long as the allocation/free sequence matches
// the profiled packed run — auto-pad replays the same deterministic
// populate — shadow addresses equal that run's real addresses, because
// diversion changes neither block sizes nor free-list class membership.
func (m *Memory) shadowPlace(n int) Addr {
	if n <= LineWords {
		if off := int(m.shadow) % LineWords; off+n > LineWords {
			m.shadow += Addr(LineWords - off)
		}
	}
	a := m.shadow
	m.shadow += Addr(n)
	return a
}

// shadowPlaceLines mirrors a fresh AllocLines on the shadow cursor.
func (m *Memory) shadowPlaceLines(n int) {
	m.shadow = Addr(roundUpLine(int(m.shadow)) + roundUpLine(n))
}

// clone deep-copies the cursor table.
func cloneCursors(c map[int]cursor) map[int]cursor {
	return maps.Clone(c)
}
