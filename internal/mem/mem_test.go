package mem

import (
	"testing"
	"testing/quick"
)

func TestLineMath(t *testing.T) {
	if LineOf(0) != 0 || LineOf(7) != 0 || LineOf(8) != 1 {
		t.Fatal("LineOf wrong")
	}
	if LineAddr(3) != 24 {
		t.Fatalf("LineAddr(3) = %d, want 24", LineAddr(3))
	}
}

func TestAllocDisjoint(t *testing.T) {
	m := New(64)
	seen := map[Addr]bool{}
	sizes := []int{1, 2, 3, 8, 5, 16, 1, 7}
	for _, n := range sizes {
		a := m.Alloc(n)
		if a == Nil {
			t.Fatal("allocated nil address")
		}
		for i := 0; i < n; i++ {
			w := a + Addr(i)
			if seen[w] {
				t.Fatalf("word %d allocated twice", w)
			}
			seen[w] = true
		}
	}
}

func TestSmallAllocDoesNotStraddleLines(t *testing.T) {
	m := New(64)
	for i := 0; i < 50; i++ {
		n := i%LineWords + 1
		a := m.Alloc(n)
		if LineOf(a) != LineOf(a+Addr(n-1)) {
			t.Fatalf("alloc of %d words at %d straddles a line boundary", n, a)
		}
	}
}

func TestAllocLinesAlignedAndExclusive(t *testing.T) {
	m := New(64)
	m.Alloc(3) // perturb alignment
	a := m.AllocLines(2)
	if int(a)%LineWords != 0 {
		t.Fatalf("AllocLines returned unaligned address %d", a)
	}
	b := m.Alloc(1)
	if LineOf(b) == LineOf(a) {
		t.Fatalf("subsequent Alloc landed on AllocLines line")
	}
}

func TestFreeReuse(t *testing.T) {
	m := New(64)
	a := m.Alloc(4)
	m.Free(a, 4)
	b := m.Alloc(4)
	if a != b {
		t.Fatalf("free-list reuse failed: got %d want %d", b, a)
	}
	la := m.AllocLines(1)
	m.FreeLines(la, 1)
	lb := m.AllocLines(1)
	if la != lb {
		t.Fatalf("line free-list reuse failed: got %d want %d", lb, la)
	}
}

func TestGrowth(t *testing.T) {
	m := New(64)
	a := m.Alloc(10000)
	m.Write(a+9999, 42)
	if m.Read(a+9999) != 42 {
		t.Fatal("write after growth lost")
	}
	if m.NumLines()*LineWords < 10000 {
		t.Fatal("line metadata did not grow with words")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(256)
	f := func(off uint16, v uint64) bool {
		a := Addr(off%200) + LineWords
		m.Write(a, v)
		return m.Read(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAllocDisjointProperty: random interleavings of alloc/free never hand
// out overlapping live blocks.
func TestAllocDisjointProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(64)
		type block struct {
			a Addr
			n int
		}
		var live []block
		owner := map[Addr]int{} // word -> block index
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				b := live[i]
				for w := 0; w < b.n; w++ {
					delete(owner, b.a+Addr(w))
				}
				m.Free(b.a, b.n)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			n := int(op)%9 + 1
			a := m.Alloc(n)
			for w := 0; w < n; w++ {
				if _, clash := owner[a+Addr(w)]; clash {
					return false
				}
				owner[a+Addr(w)] = len(live)
			}
			live = append(live, block{a, n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfMemoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-memory panic")
		}
	}()
	m := New(64)
	m.maxWords = 1024
	m.Alloc(2048)
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Alloc(0)")
		}
	}()
	New(64).Alloc(0)
}

func TestAccessors(t *testing.T) {
	m := New(64)
	a := m.Alloc(2)
	if m.Line(a) != m.LineByIndex(LineOf(a)) {
		t.Fatal("Line accessors disagree")
	}
	if m.WordsInUse() <= int(a) {
		t.Fatal("WordsInUse below allocated address")
	}
	// New clamps tiny initial sizes.
	small := New(1)
	if small.NumLines() < 4 {
		t.Fatal("New did not clamp initial size")
	}
}
