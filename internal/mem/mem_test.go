package mem

import (
	"testing"
	"testing/quick"
)

func TestLineMath(t *testing.T) {
	if LineOf(0) != 0 || LineOf(7) != 0 || LineOf(8) != 1 {
		t.Fatal("LineOf wrong")
	}
	if LineAddr(3) != 24 {
		t.Fatalf("LineAddr(3) = %d, want 24", LineAddr(3))
	}
}

func TestAllocDisjoint(t *testing.T) {
	m := New(64)
	seen := map[Addr]bool{}
	sizes := []int{1, 2, 3, 8, 5, 16, 1, 7}
	for _, n := range sizes {
		a := m.Alloc(n)
		if a == Nil {
			t.Fatal("allocated nil address")
		}
		for i := 0; i < n; i++ {
			w := a + Addr(i)
			if seen[w] {
				t.Fatalf("word %d allocated twice", w)
			}
			seen[w] = true
		}
	}
}

func TestSmallAllocDoesNotStraddleLines(t *testing.T) {
	m := New(64)
	for i := 0; i < 50; i++ {
		n := i%LineWords + 1
		a := m.Alloc(n)
		if LineOf(a) != LineOf(a+Addr(n-1)) {
			t.Fatalf("alloc of %d words at %d straddles a line boundary", n, a)
		}
	}
}

func TestAllocLinesAlignedAndExclusive(t *testing.T) {
	m := New(64)
	m.Alloc(3) // perturb alignment
	a := m.AllocLines(2)
	if int(a)%LineWords != 0 {
		t.Fatalf("AllocLines returned unaligned address %d", a)
	}
	b := m.Alloc(1)
	if LineOf(b) == LineOf(a) {
		t.Fatalf("subsequent Alloc landed on AllocLines line")
	}
}

func TestFreeReuse(t *testing.T) {
	m := New(64)
	a := m.Alloc(4)
	m.Free(a, 4)
	b := m.Alloc(4)
	if a != b {
		t.Fatalf("free-list reuse failed: got %d want %d", b, a)
	}
	la := m.AllocLines(1)
	m.FreeLines(la, 1)
	lb := m.AllocLines(1)
	if la != lb {
		t.Fatalf("line free-list reuse failed: got %d want %d", lb, la)
	}
}

func TestGrowth(t *testing.T) {
	m := New(64)
	a := m.Alloc(10000)
	m.Write(a+9999, 42)
	if m.Read(a+9999) != 42 {
		t.Fatal("write after growth lost")
	}
	if m.NumLines()*LineWords < 10000 {
		t.Fatal("line metadata did not grow with words")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(256)
	f := func(off uint16, v uint64) bool {
		a := Addr(off%200) + LineWords
		m.Write(a, v)
		return m.Read(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAllocDisjointProperty: random interleavings of alloc/free never hand
// out overlapping live blocks.
func TestAllocDisjointProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(64)
		type block struct {
			a Addr
			n int
		}
		var live []block
		owner := map[Addr]int{} // word -> block index
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				b := live[i]
				for w := 0; w < b.n; w++ {
					delete(owner, b.a+Addr(w))
				}
				m.Free(b.a, b.n)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			n := int(op)%9 + 1
			a := m.Alloc(n)
			for w := 0; w < n; w++ {
				if _, clash := owner[a+Addr(w)]; clash {
					return false
				}
				owner[a+Addr(w)] = len(live)
			}
			live = append(live, block{a, n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfMemoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-memory panic")
		}
	}()
	m := New(64)
	m.maxWords = 1024
	m.Alloc(2048)
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Alloc(0)")
		}
	}()
	New(64).Alloc(0)
}

func TestAccessors(t *testing.T) {
	m := New(64)
	a := m.Alloc(2)
	if m.Line(a) != m.LineByIndex(LineOf(a)) {
		t.Fatal("Line accessors disagree")
	}
	if m.WordsInUse() <= int(a) {
		t.Fatal("WordsInUse below allocated address")
	}
	// New clamps tiny initial sizes.
	small := New(1)
	if small.NumLines() < 4 {
		t.Fatal("New did not clamp initial size")
	}
}

func TestBigSizeClassReuse(t *testing.T) {
	m := New(64)
	a := m.Alloc(smallClasses * 3) // beyond the dense classes
	m.Free(a, smallClasses*3)
	if b := m.Alloc(smallClasses * 3); b != a {
		t.Fatalf("big word class reuse failed: got %d want %d", b, a)
	}
	la := m.AllocLines(smallClasses * LineWords * 2)
	m.FreeLines(la, smallClasses*LineWords*2)
	if lb := m.AllocLines(smallClasses * LineWords * 2); lb != la {
		t.Fatalf("big line class reuse failed: got %d want %d", lb, la)
	}
}

func TestFreeLinesPaddedSizeEquivalence(t *testing.T) {
	// FreeLines keys by padded whole-line size: freeing with any word count
	// that rounds to the same line count reuses the block.
	m := New(64)
	a := m.AllocLines(9) // pads to 2 lines
	m.FreeLines(a, 10)   // also 2 lines
	if b := m.AllocLines(16); b != a {
		t.Fatalf("padded-size free-list reuse failed: got %d want %d", b, a)
	}
}

func TestFreeTableDrain(t *testing.T) {
	var f FreeTable
	f.Push(4, false, 100)
	f.Push(smallClasses+1, false, 200)
	f.Push(8, true, 300)
	f.Push((smallClasses+1)*LineWords, true, 400)
	got := map[Addr][2]int{}
	f.Drain(func(n int, lines bool, a Addr) {
		k := 0
		if lines {
			k = 1
		}
		got[a] = [2]int{n, k}
	})
	want := map[Addr][2]int{
		100: {4, 0}, 200: {smallClasses + 1, 0},
		300: {8, 1}, 400: {(smallClasses + 1) * LineWords, 1},
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d blocks, want %d", len(got), len(want))
	}
	for a, w := range want {
		if got[a] != w {
			t.Errorf("block %d drained as %v, want %v", a, got[a], w)
		}
	}
	// A drained table is empty.
	f.Drain(func(n int, lines bool, a Addr) { t.Errorf("second drain yielded %d", a) })
	if f.Pop(4, false) != Nil || f.Pop(8, true) != Nil {
		t.Fatal("drained table still pops blocks")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := New(64)
	a := m.Alloc(4)
	m.Write(a, 7)
	b := m.AllocLines(2)
	m.Write(b, 9)
	m.Free(a, 4) // leave a block on the free lists
	snap := m.Snapshot()

	// Mutate the original past the snapshot.
	c := m.Alloc(4) // pops the freed block
	if c != a {
		t.Fatalf("expected free-list reuse, got %d want %d", c, a)
	}
	m.Write(b, 1000)

	r := FromSnapshot(snap)
	if r.Read(a) != 7 || r.Read(b) != 9 {
		t.Fatal("snapshot did not preserve word contents")
	}
	if r.WordsInUse() != int(snap.next) {
		t.Fatal("snapshot bump pointer mismatch")
	}
	// The restored memory sees the freed block, independently of the
	// original having popped it.
	if d := r.Alloc(4); d != a {
		t.Fatalf("restored free lists lost block: got %d want %d", d, a)
	}
	// Restored memory is fully independent.
	r.Write(b, 5)
	if m.Read(b) != 1000 {
		t.Fatal("restored memory aliases the original")
	}

	// Restore-in-place resets state too.
	m.Restore(snap)
	if m.Read(b) != 9 {
		t.Fatal("Restore did not reset word contents")
	}
	if d := m.Alloc(4); d != a {
		t.Fatal("Restore did not reset free lists")
	}
}

func TestSnapshotIndependentFreeLists(t *testing.T) {
	m := New(64)
	blocks := make([]Addr, 4)
	for i := range blocks {
		blocks[i] = m.Alloc(6)
	}
	for _, b := range blocks {
		m.Free(b, 6)
	}
	snap := m.Snapshot()
	r1, r2 := FromSnapshot(snap), FromSnapshot(snap)
	// Both copies must hand out the same sequence from their own lists.
	for i := 0; i < 4; i++ {
		x, y := r1.Alloc(6), r2.Alloc(6)
		if x != y {
			t.Fatalf("clone free lists diverged at %d: %d vs %d", i, x, y)
		}
	}
}

func withDebugChecks(t *testing.T) *Memory {
	t.Helper()
	DebugChecks = true
	t.Cleanup(func() { DebugChecks = false })
	return New(64)
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", want)
		}
	}()
	fn()
}

func TestDebugChecksKindConfusion(t *testing.T) {
	m := withDebugChecks(t)
	a := m.Alloc(8)
	mustPanic(t, "word block freed as lines", func() { m.FreeLines(a, 8) })

	m2 := withDebugChecks(t)
	b := m2.AllocLines(8)
	mustPanic(t, "line block freed as words", func() { m2.Free(b, 8) })
}

func TestDebugChecksDoubleFreeAndSize(t *testing.T) {
	m := withDebugChecks(t)
	a := m.Alloc(4)
	m.Free(a, 4)
	mustPanic(t, "double free", func() { m.Free(a, 4) })

	m2 := withDebugChecks(t)
	b := m2.Alloc(4)
	mustPanic(t, "size mismatch", func() { m2.Free(b, 5) })

	m3 := withDebugChecks(t)
	mustPanic(t, "unknown address", func() { m3.Free(500, 4) })
}

func TestDebugChecksHappyPath(t *testing.T) {
	m := withDebugChecks(t)
	a := m.Alloc(4)
	m.Free(a, 4)
	if b := m.Alloc(4); b != a {
		t.Fatal("reuse failed under debug checks")
	}
	m.Free(a, 4) // legal again: block is live after realloc
	la := m.AllocLines(3)
	m.FreeLines(la, 5) // same padded size: legal
}
