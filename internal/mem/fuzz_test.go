package mem_test

import (
	"slices"
	"testing"

	"hle/internal/mem"
)

// FuzzSnapshotRestore drives a random allocate/write/free history against
// a Memory under a fuzz-chosen placement policy, snapshots it mid-stream,
// keeps mutating, and then checks the round trip: Restore must erase every
// post-snapshot effect, and a Memory rebuilt with FromSnapshot must be
// behaviorally identical to the restored one — same words, same bump
// pointer, and same allocator decisions (including chunk cursors, color
// sequence, and the auto-pad shadow) when the rest of the history is
// replayed against both. `go test` runs the seed corpus;
// `go test -fuzz=FuzzSnapshotRestore ./internal/mem` explores.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add([]byte{0, 4, 0x10, 0x53, 0x22, 0xb1, 0x07, 0xe0, 0x41, 0x9c})
	f.Add([]byte{1, 1, 0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{2, 0, 0xff})
	f.Add([]byte{3, 3, 0x40, 0x81, 0x12, 0x07})
	f.Add([]byte{4, 2, 0x10, 0x53, 0x22, 0xb1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) < 2 {
			return
		}
		if len(ops) > 1024 {
			ops = ops[:1024]
		}
		// The first byte picks the placement policy (one value past the
		// real policies selects packed with an auto-pad plan, so the
		// shadow-cursor path is fuzzed too).
		layout := mem.Layout{
			Placement:  mem.Placement(ops[0] % 5 % 4),
			Colors:     3,
			ChunkLines: 4,
		}
		if ops[0]%5 == 4 {
			layout.PadLines = map[int]bool{2: true, 5: true}
		}
		split := int(ops[1])
		ops = ops[2:]
		if split > len(ops) {
			split = len(ops)
		}

		type block struct {
			a     mem.Addr
			n     int
			lines bool
		}
		apply := func(m *mem.Memory, live []block, b byte, i int) []block {
			switch b % 4 {
			case 0:
				n := 1 + int(b>>4)
				a := m.AllocOwned(int(b>>2)%3, n)
				m.Write(a, uint64(i)+1)
				return append(live, block{a, n, false})
			case 1:
				n := 1 + int(b>>4)
				a := m.AllocLines(n)
				m.Write(a, uint64(i)+1)
				return append(live, block{a, n, true})
			case 2:
				if len(live) == 0 {
					return live
				}
				j := int(b>>2) % len(live)
				bl := live[j]
				if bl.lines {
					m.FreeLines(bl.a, bl.n)
				} else {
					m.Free(bl.a, bl.n)
				}
				return slices.Delete(live, j, j+1)
			default:
				if n := m.WordsInUse(); n > 0 {
					m.Write(mem.Addr(int(b>>2)*7%n), uint64(i)*0x9e3779b9)
				}
				return live
			}
		}

		m := mem.NewWithLayout(64, layout)
		var live []block
		for i, b := range ops[:split] {
			live = apply(m, live, b, i)
		}
		snap := m.Snapshot()
		liveAtSnap := slices.Clone(live)

		for i, b := range ops[split:] {
			live = apply(m, live, b, split+i)
		}

		m.Restore(snap)
		m2 := mem.FromSnapshot(snap)
		if !slices.Equal(m.Snapshot().Words(), snap.Words()) {
			t.Fatal("Restore did not reproduce the snapshot's words")
		}
		if !slices.Equal(m2.Snapshot().Words(), snap.Words()) {
			t.Fatal("FromSnapshot did not reproduce the snapshot's words")
		}
		if m.WordsInUse() != m2.WordsInUse() {
			t.Fatalf("bump pointers diverge after round trip: restored %d, rebuilt %d",
				m.WordsInUse(), m2.WordsInUse())
		}

		// Replaying the post-snapshot suffix against both memories must
		// make identical allocator decisions: that pins the free lists and
		// allocation records, which word comparison alone cannot see.
		liveA, liveB := slices.Clone(liveAtSnap), slices.Clone(liveAtSnap)
		for i, b := range ops[split:] {
			liveA = apply(m, liveA, b, split+i)
			liveB = apply(m2, liveB, b, split+i)
			if !slices.Equal(liveA, liveB) {
				t.Fatalf("replay op %d: allocator decisions diverge between restored and rebuilt memories", split+i)
			}
		}
		if !slices.Equal(m.Snapshot().Words(), m2.Snapshot().Words()) {
			t.Fatal("replayed histories diverge between restored and rebuilt memories")
		}
	})
}
