package core_test

import (
	"testing"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// TestLazySchemesSerializable runs the lazy-subscription schemes (fixed
// pipeline) over a contended counter on every lock and checks no update
// is lost — the cheap end-to-end check; internal/explore proves the
// exhaustive version.
func TestLazySchemesSerializable(t *testing.T) {
	for _, ln := range []string{"TTAS", "MCS", "Ticket", "AdjTicket", "CLH", "AdjCLH"} {
		mk := locks.MakerByName(ln)
		if mk == nil {
			t.Fatalf("unknown lock %s", ln)
		}
		for _, sn := range []string{"HLE-lazy", "RTM-LE-lazy"} {
			t.Run(sn+"/"+ln, func(t *testing.T) {
				cfg := tsx.DefaultConfig(4)
				cfg.Seed = 7
				m := tsx.NewMachine(cfg)
				var sch core.Scheme
				var ctr mem.Addr
				m.RunOne(func(th *tsx.Thread) {
					lk := mk(th)
					ctr = th.AllocLines(1)
					if sn == "HLE-lazy" {
						sch = core.NewHLELazy(lk)
					} else {
						sch = core.NewRTMLELazy(lk)
					}
				})
				m.Run(4, func(th *tsx.Thread) {
					sch.Setup(th)
					for i := 0; i < 300; i++ {
						sch.Run(th, func() {
							v := th.Load(ctr)
							th.Work(5)
							th.Store(ctr, v+1)
						})
					}
				})
				var got uint64
				m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
				if got != 1200 {
					t.Fatalf("counter = %d, want 1200 (lost updates)", got)
				}
				st := sch.TotalStats()
				if st.Ops != 1200 {
					t.Fatalf("ops = %d, want 1200", st.Ops)
				}
				// Plain Ticket/CLH cannot satisfy HLE's restore rule
				// (Chapter 6), so they complete serially; every other
				// lock must show real speculation.
				if st.Spec == 0 && ln != "Ticket" && ln != "CLH" {
					t.Errorf("no speculative completions — lazy scheme never elided")
				}
			})
		}
	}
}

// TestLazyAbortCauseShift checks the mode's observable signature: under
// contention the eager scheme's lock-line conflicts become commit-time
// CauseSubscription aborts under lazy, and eager never produces any.
func TestLazyAbortCauseShift(t *testing.T) {
	run := func(lazy bool) (sub uint64) {
		cfg := tsx.DefaultConfig(4)
		cfg.Seed = 11
		m := tsx.NewMachine(cfg)
		var sch core.Scheme
		var ctr mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			lk := locks.NewTTAS(th)
			ctr = th.AllocLines(1)
			if lazy {
				sch = core.NewRTMLELazy(lk)
			} else {
				sch = core.NewRTMLE(lk)
			}
		})
		threads := m.Run(4, func(th *tsx.Thread) {
			sch.Setup(th)
			for i := 0; i < 400; i++ {
				sch.Run(th, func() {
					v := th.Load(ctr)
					th.Work(20)
					th.Store(ctr, v+1)
				})
			}
		})
		for _, th := range threads {
			sub += th.Stats.Aborted[tsx.CauseSubscription]
		}
		var got uint64
		m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
		if got != 1600 {
			t.Fatalf("lazy=%v: counter = %d, want 1600", lazy, got)
		}
		return sub
	}
	if sub := run(false); sub != 0 {
		t.Errorf("eager RTM-LE produced %d subscription aborts, want 0", sub)
	}
	if sub := run(true); sub == 0 {
		t.Errorf("lazy RTM-LE-lazy under contention produced no subscription aborts")
	}
}
