package core

import (
	"hle/internal/adapt"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/tsx"
)

// scmHeldWaitBound caps how many pause iterations the adaptive SCM rung
// waits for the main lock to free after a lock-held abort. The static
// HLESCM waits unboundedly — safe there because only giving-up aux
// holders ever take the main lock — but the adaptive scheme's Serial
// level can keep the main lock near-saturated while SCM sections drain.
const scmHeldWaitBound = 64

// AdaptiveConfig tunes the adaptive scheme: the controller's decision
// thresholds plus the SCM retry budget its middle rung uses.
type AdaptiveConfig struct {
	// Controller tunes the adapt.Controller (zero fields defaulted).
	Controller adapt.Config
	// SCM tunes the software-assisted conflict management rung. Only
	// MaxRetries is honoured; the Ideal nesting variant needs machine
	// configuration the adaptive scheme does not assume.
	SCM SCMConfig
}

// Adaptive executes critical sections at the level an adapt.Controller
// chooses per window: Elide (RTM-based lock elision, the RTMLE mechanism),
// SCM (Algorithm 3's software-assisted conflict management), or Serial
// (the pessimistic SLR floor — one speculative probe, then the real lock).
// Each level's loop is implemented inline rather than delegating to the
// static schemes so every abort Status is visible for classification into
// the obs.Feed the controller consumes; the mechanics deliberately mirror
// RTMLE.Run, HLESCM.Run, and SLR.Run.
//
// Level changes hot-swap: critical sections entered after a decision run
// at the new level immediately, while sections already in flight finish
// under the level they started with, and the controller is told when the
// last of them drains (no decision fires mid-drain). Mixing levels during
// the drain window is safe because every level keeps the paper's
// correctness contract with the same main lock: speculative runs at every
// level check the lock at entry, keeping it in their read set, and abort
// the moment a non-speculative holder appears.
//
// All scheme state is touched only by token-serialized simulated threads,
// so the controller, feed, and drain bookkeeping need no host
// synchronization and stay byte-deterministic at any -parallel.
type Adaptive struct {
	statsBase
	main locks.Lock
	aux  locks.Lock
	cfg  AdaptiveConfig

	ctl  *adapt.Controller
	feed *obs.Feed

	cur      adapt.Level            // level new critical sections adopt
	prev     adapt.Level            // level being drained, meaningful while draining > 0
	draining int                    // in-flight sections still running at prev
	inflight [locks.MaxThreads]int8 // per-thread active level, -1 when idle

	tap func(obs.WindowStats) // optional window observer, after the controller
}

// NewAdaptive builds an adaptive scheme over main. aux serializes the SCM
// rung's aborters; the paper requires it starvation-free (an MCS lock).
func NewAdaptive(main, aux locks.Lock, cfg AdaptiveConfig) *Adaptive {
	if main == nil || aux == nil {
		panic("core: Adaptive requires a main and an auxiliary lock")
	}
	ctl := adapt.NewController(cfg.Controller)
	s := &Adaptive{main: main, aux: aux, cfg: cfg, ctl: ctl, cur: ctl.Level()}
	s.feed = obs.NewFeed(ctl.Config().WindowCycles, func(w obs.WindowStats) {
		ctl.Observe(w)
		if s.tap != nil {
			s.tap(w)
		}
	})
	for i := range s.inflight {
		s.inflight[i] = -1
	}
	return s
}

// Name implements Scheme.
func (s *Adaptive) Name() string { return "Adaptive" }

// Setup implements Scheme.
func (s *Adaptive) Setup(t *tsx.Thread) {
	s.main.Prepare(t)
	s.aux.Prepare(t)
}

// Controller exposes the decision state machine (transition log, level
// occupancy) for reporting and tests.
func (s *Adaptive) Controller() *adapt.Controller { return s.ctl }

// Level returns the level new critical sections currently adopt.
func (s *Adaptive) Level() adapt.Level { return s.cur }

// Transitions returns the controller's decision log.
func (s *Adaptive) Transitions() []adapt.Transition { return s.ctl.Transitions() }

// SetWindowTap installs an observer called with every closed feed window
// after the controller has consumed it — for tests and reporting.
// Observation is passive; install before the first Run.
func (s *Adaptive) SetWindowTap(tap func(obs.WindowStats)) { s.tap = tap }

// Run implements Scheme.
func (s *Adaptive) Run(t *tsx.Thread, cs func()) Result {
	// Deliver any windows that closed while the lock was quiet, so
	// dwell/probation clocks advance even with sparse traffic.
	s.feed.Tick(t.Clock())

	// Apply a pending controller decision at the first entry after it,
	// once any previous swap has fully drained.
	if want := s.ctl.Level(); want != s.cur && s.draining == 0 {
		n := 0
		for _, lv := range s.inflight {
			if lv == int8(s.cur) {
				n++
			}
		}
		s.prev, s.cur = s.cur, want
		s.draining = n
		s.ctl.NoteSwap(t.Clock(), n)
	}

	lvl := s.cur
	s.inflight[t.ID] = int8(lvl)
	var r Result
	switch lvl {
	case adapt.Elide:
		r = s.runElide(t, cs)
	case adapt.SCM:
		r = s.runSCM(t, cs)
	default:
		r = s.runSerial(t, cs)
	}
	s.inflight[t.ID] = -1
	if s.draining > 0 && lvl == s.prev {
		s.draining--
		if s.draining == 0 {
			s.ctl.NoteDrained(t.Clock())
		}
	}
	s.record(t.ID, r)
	return r
}

// feedAbort classifies one aborted attempt into the controller's feed.
// Injected aborts present as spurious (Status does not expose injection),
// so chaos storms are indistinguishable from real spurious pressure —
// exactly what a production controller would see.
func (s *Adaptive) feedAbort(t *tsx.Thread, st tsx.Status) {
	lockLine := false
	if st.Cause == tsx.CauseConflict {
		lockLine = t.Machine().IsLockLine(mem.LineOf(st.ConflictAddr))
	}
	s.feed.Abort(t.Clock(), obs.ClassOf(st.Cause, lockLine, false))
}

// runElide mirrors RTMLE.Run: HLE's policy via RTM, with the abort status
// visible. One non-speculative acquisition attempt follows each abort.
func (s *Adaptive) runElide(t *tsx.Thread, cs func()) Result {
	var r Result
	for {
		if !s.main.Fair() {
			for s.main.Held(t) {
				t.Pause()
			}
		}
		committed, st := t.RTM(func() {
			r.Attempts++
			if s.main.Held(t) {
				t.Abort(abortCodeLockHeld)
			}
			cs()
		})
		if committed {
			r.Spec = true
			s.feed.Commit(t.Clock())
			break
		}
		s.feedAbort(t, st)
		if s.main.TryAcquire(t) {
			r.Attempts++
			t.MarkSerial(true)
			cs()
			t.MarkSerial(false)
			s.main.Release(t)
			r.Spec = false
			s.feed.SerialOp(t.Clock())
			break
		}
	}
	return r
}

// runSCM mirrors HLESCM.Run (the implementation-remark form of
// Algorithm 3): aborters serialize on the aux lock and rejoin
// speculation; after the retry budget — or immediately on an abort the
// hardware marks non-retryable, like capacity — the aux holder takes the
// main lock.
func (s *Adaptive) runSCM(t *tsx.Thread, cs func()) Result {
	var r Result
	retries := 0
	auxOwner := false
	for {
		committed, st := t.RTM(func() {
			r.Attempts++
			if s.main.Held(t) {
				t.Abort(abortCodeLockHeld)
			}
			cs()
		})
		if committed {
			r.Spec = true
			s.feed.Commit(t.Clock())
			break
		}
		s.feedAbort(t, st)
		if auxOwner {
			retries++
		} else {
			s.aux.Acquire(t)
			auxOwner = true
			t.MarkSerial(true)
		}
		if retries >= s.cfg.SCM.maxRetries() || !st.MayRetry {
			r.Attempts++
			s.main.Acquire(t)
			cs()
			s.main.Release(t)
			r.Spec = false
			s.feed.SerialOp(t.Clock())
			break
		}
		if st.Cause == tsx.CauseExplicit && st.Code == abortCodeLockHeld {
			// Wait for the main lock to free before re-speculating —
			// but bounded, unlike the static HLESCM. During a hot swap
			// the Serial level keeps the main lock near-saturated, and
			// an unbounded wait would park a draining SCM section for
			// hundreds of thousands of cycles; after the bound, burn a
			// retry (the next attempt re-aborts if still held) so the
			// section converges to the fair main-lock acquisition.
			for i := 0; i < scmHeldWaitBound && s.main.Held(t); i++ {
				t.Pause()
			}
		}
	}
	if auxOwner {
		t.MarkSerial(false)
		s.aux.Release(t)
	}
	return r
}

// runSerial is the pessimistic floor: one speculative probe, then the
// real lock. The probe keeps feeding the controller the signal it needs
// to notice a storm has passed, so unlike SLR's commit-time test it
// subscribes to the lock at ENTRY: a probe that starts while the floor's
// serial path holds the lock dies immediately with an explicit abort, and
// one overtaken mid-flight dies on the lock-line conflict — both classes
// the controller's promotion rule discounts. A commit-time test would
// instead let probes run full critical sections concurrently with a
// holder and abort on the holder's data writes, polluting the recovery
// signal with hard aborts the floor itself caused.
func (s *Adaptive) runSerial(t *tsx.Thread, cs func()) Result {
	var r Result
	committed, st := t.RTM(func() {
		r.Attempts++
		if s.main.Held(t) {
			t.Abort(abortCodeLockHeld)
		}
		cs()
	})
	if committed {
		r.Spec = true
		s.feed.Commit(t.Clock())
		return r
	}
	s.feedAbort(t, st)
	r.Attempts++
	s.main.Acquire(t)
	t.MarkSerial(true)
	cs()
	t.MarkSerial(false)
	s.main.Release(t)
	r.Spec = false
	s.feed.SerialOp(t.Clock())
	return r
}
