package core_test

import (
	"testing"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// capacityMachine returns a machine whose tiny write-set capacity dooms
// any multi-line transaction — the !MayRetry give-up paths.
func capacityMachine(n int, seed int64) *tsx.Machine {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0
	cfg.WriteSetLines = 2
	cfg.MemWords = 1 << 14
	return tsx.NewMachine(cfg)
}

// bigCS returns a critical section writing more lines than the capacity.
func bigCS(th *tsx.Thread, arr mem.Addr, ctr mem.Addr) func() {
	return func() {
		for l := 0; l < 4; l++ {
			th.Store(arr+mem.Addr(l*mem.LineWords), 1)
		}
		th.Store(ctr, th.Load(ctr)+1)
	}
}

// TestSLRGivesUpOnCapacity: the §5.1 tuning — capacity aborts clear
// MayRetry, so optimistic SLR must fall back after ONE attempt rather than
// burning its retry budget.
func TestSLRGivesUpOnCapacity(t *testing.T) {
	m := capacityMachine(1, 3)
	m.RunOne(func(th *tsx.Thread) {
		s := core.NewSLR(locks.NewTTAS(th), 10)
		s.Setup(th)
		arr := th.AllocLines(4 * mem.LineWords)
		ctr := th.AllocLines(1)
		r := s.Run(th, bigCS(th, arr, ctr))
		if r.Spec {
			t.Fatal("capacity-doomed CS completed speculatively?")
		}
		if r.Attempts != 2 {
			t.Fatalf("attempts = %d, want 2 (one doomed try + fallback); MayRetry tuning broken", r.Attempts)
		}
		if th.Load(ctr) != 1 {
			t.Fatal("CS effect lost")
		}
	})
}

// TestSLRSCMGivesUpOnCapacity: the same early-exit applies under SLR-SCM.
func TestSLRSCMGivesUpOnCapacity(t *testing.T) {
	m := capacityMachine(1, 3)
	m.RunOne(func(th *tsx.Thread) {
		s := core.NewSLRSCM(locks.NewTTAS(th), locks.NewMCS(th), core.SCMConfig{})
		s.Setup(th)
		arr := th.AllocLines(4 * mem.LineWords)
		ctr := th.AllocLines(1)
		r := s.Run(th, bigCS(th, arr, ctr))
		if r.Spec || r.Attempts > 3 {
			t.Fatalf("SLR-SCM burned %d attempts on a capacity-doomed CS (spec=%v)", r.Attempts, r.Spec)
		}
		if th.Load(ctr) != 1 {
			t.Fatal("CS effect lost")
		}
	})
}

// TestSCMGiveUpPath: Algorithm 3's line 15 — after MaxRetries the aux
// holder takes the main lock non-speculatively (and, per the paper, retries
// blindly: capacity aborts do NOT shorten the path; that contrast with SLR
// is the ext-stamp labyrinth finding).
func TestSCMGiveUpPath(t *testing.T) {
	m := capacityMachine(1, 3)
	m.RunOne(func(th *tsx.Thread) {
		s := core.NewHLESCM(locks.NewTTAS(th), locks.NewMCS(th), core.SCMConfig{MaxRetries: 3})
		s.Setup(th)
		arr := th.AllocLines(4 * mem.LineWords)
		ctr := th.AllocLines(1)
		r := s.Run(th, bigCS(th, arr, ctr))
		if r.Spec {
			t.Fatal("capacity-doomed CS completed speculatively?")
		}
		// 1 initial try + 3 aux-held retries + 1 non-speculative run.
		if r.Attempts != 5 {
			t.Fatalf("attempts = %d, want 5 (Algorithm 3 retries blindly)", r.Attempts)
		}
		if th.Load(ctr) != 1 {
			t.Fatal("CS effect lost")
		}
	})
}

// TestSCMMultiGiveUpPath: the striped variant's give-up path.
func TestSCMMultiGiveUpPath(t *testing.T) {
	m := capacityMachine(2, 3)
	var s core.Scheme
	var arr, ctr mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = core.NewHLESCMMulti(locks.NewTTAS(th),
			[]locks.Lock{locks.NewMCS(th), locks.NewMCS(th)}, core.SCMConfig{MaxRetries: 2})
		arr = th.AllocLines(4 * mem.LineWords)
		ctr = th.AllocLines(1)
	})
	m.Run(2, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < 10; i++ {
			s.Run(th, bigCS(th, arr, ctr))
		}
	})
	var got uint64
	m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
	if got != 20 {
		t.Fatalf("counter = %d, want 20", got)
	}
	if s.TotalStats().Spec != 0 {
		t.Fatal("capacity-doomed CS reported speculative completions")
	}
}

// TestNewHLESCMMultiRequiresAux pins the constructor contract.
func TestNewHLESCMMultiRequiresAux(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("empty aux list did not panic")
			}
		}()
		core.NewHLESCMMulti(locks.NewTTAS(th), nil, core.SCMConfig{})
	})
}

// TestSchemeMiscNames covers remaining name/setup paths.
func TestSchemeMiscNames(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		r := core.NewRTMLE(locks.NewTTAS(th))
		if r.Name() != "RTM-LE" {
			t.Errorf("RTMLE name %q", r.Name())
		}
		n := core.NewNoLock()
		n.Setup(th) // no-op, for completeness
		if got := core.DefaultMaxRetries; got != 10 {
			t.Errorf("DefaultMaxRetries = %d", got)
		}
	})
}
