package core

import (
	"hle/internal/locks"
	"hle/internal/tsx"
)

// abortCodeLockHeld is the XABORT immediate used when a speculative run
// observes the main lock held ("XABORT('non-speculative run')" in the
// paper's implementation remark).
const abortCodeLockHeld = 0xA1

// DefaultMaxRetries is the paper's §5.1 tuning: the auxiliary-lock holder
// retries speculatively 10 times before giving up and taking the main lock.
const DefaultMaxRetries = 10

// SCMConfig tunes software-assisted conflict management.
type SCMConfig struct {
	// MaxRetries is how many times the aux-lock holder rejoins the
	// speculative run before acquiring the main lock non-speculatively.
	// Zero selects DefaultMaxRetries.
	MaxRetries int
	// Ideal selects Algorithm 3 verbatim, nesting an HLE elision inside
	// the RTM transaction so the critical section keeps the
	// lock-is-held illusion. It requires tsx.Config.NestHLEInRTM, which
	// real Haswell lacks; the default (false) uses the paper's
	// implementation remark — read the main lock inside the RTM
	// transaction and XABORT if it is held.
	Ideal bool
}

func (c *SCMConfig) maxRetries() int {
	if c.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return c.MaxRetries
}

// HLESCM is Algorithm 3: lock elision with software-assisted conflict
// management. Conflicting threads serialize on the auxiliary lock — without
// acquiring the main lock — and rejoin the speculative run, so
// non-conflicting threads keep speculating and the avalanche never forms.
type HLESCM struct {
	statsBase
	main locks.Lock
	aux  locks.Lock
	cfg  SCMConfig
}

// NewHLESCM builds the SCM scheme over main with the given auxiliary lock.
// The paper requires a starvation-free aux lock (an MCS lock) for the
// scheme to inherit fairness.
func NewHLESCM(main, aux locks.Lock, cfg SCMConfig) *HLESCM {
	return &HLESCM{main: main, aux: aux, cfg: cfg}
}

// Name implements Scheme.
func (s *HLESCM) Name() string {
	if s.cfg.Ideal {
		return "HLE-SCM-ideal"
	}
	return "HLE-SCM"
}

// Setup implements Scheme.
func (s *HLESCM) Setup(t *tsx.Thread) {
	s.main.Prepare(t)
	s.aux.Prepare(t)
}

// Run implements Scheme; it is Algorithm 3's Lock(), critical section, and
// Unlock() in one flow.
func (s *HLESCM) Run(t *tsx.Thread, cs func()) Result {
	var r Result
	retries := 0
	auxOwner := false
	for {
		// Primary path: XBEGIN, elide the main lock, run the
		// critical section, XEND.
		committed, st := t.RTM(func() {
			r.Attempts++
			if s.cfg.Ideal {
				s.main.SpecAcquire(t)
			} else if s.main.Held(t) {
				// Implementation remark: put the main lock in
				// the read set and check that it is free.
				t.Abort(abortCodeLockHeld)
			}
			cs()
			if s.cfg.Ideal {
				s.main.SpecRelease(t)
			}
		})
		if committed {
			r.Spec = true
			break
		}

		// Serializing path (Algorithm 3, lines 5-16).
		if auxOwner {
			retries++
		} else {
			s.aux.Acquire(t)
			auxOwner = true
			// Conflicting threads are serialized from here until the
			// aux release; speculation resumed under the aux lock
			// still profiles as speculation (it outranks the mark).
			t.MarkSerial(true)
		}
		if retries >= s.cfg.maxRetries() {
			// Give up: non-speculative execution under the main
			// lock. Only the aux holder ever reaches here, so the
			// acquisition is uncontended among SCM threads.
			r.Attempts++
			s.main.Acquire(t)
			cs()
			s.main.Release(t)
			r.Spec = false
			break
		}
		if st.Cause == tsx.CauseExplicit && st.Code == abortCodeLockHeld {
			// The main lock is held by a thread that gave up;
			// eliding is futile until it releases (Intel's
			// recommended elision retry discipline).
			for s.main.Held(t) {
				t.Pause()
			}
		}
	}
	if auxOwner {
		t.MarkSerial(false)
		s.aux.Release(t)
	}
	s.record(t.ID, r)
	return r
}

// HLESCMMulti is the refinement the paper leaves as future work (Chapter 4
// remark): instead of one auxiliary lock grouping all conflicting threads,
// conflicting threads are divided into groups keyed by the conflicting
// cache line (exposed in the abort status — the "abort information provided
// by the hardware" of the future-work section), so threads that conflict on
// unrelated data do not serialize with each other.
type HLESCMMulti struct {
	statsBase
	main locks.Lock
	aux  []locks.Lock
	cfg  SCMConfig
}

// NewHLESCMMulti builds the striped-aux-lock SCM variant. aux must contain
// at least one starvation-free lock.
func NewHLESCMMulti(main locks.Lock, aux []locks.Lock, cfg SCMConfig) *HLESCMMulti {
	if len(aux) == 0 {
		panic("core: HLESCMMulti requires at least one aux lock")
	}
	return &HLESCMMulti{main: main, aux: aux, cfg: cfg}
}

// Name implements Scheme.
func (s *HLESCMMulti) Name() string { return "HLE-SCM-multi" }

// Setup implements Scheme.
func (s *HLESCMMulti) Setup(t *tsx.Thread) {
	s.main.Prepare(t)
	for _, a := range s.aux {
		a.Prepare(t)
	}
}

// Run implements Scheme.
func (s *HLESCMMulti) Run(t *tsx.Thread, cs func()) Result {
	var r Result
	retries := 0
	held := -1 // index of the aux lock this thread holds, or -1
	for {
		committed, st := t.RTM(func() {
			r.Attempts++
			if s.main.Held(t) {
				t.Abort(abortCodeLockHeld)
			}
			cs()
		})
		if committed {
			r.Spec = true
			break
		}
		if held >= 0 {
			retries++
		} else {
			// Group by conflicting line so only threads fighting
			// over the same data serialize together.
			idx := 0
			if st.Cause == tsx.CauseConflict {
				idx = int(uint64(st.ConflictAddr) % uint64(len(s.aux)))
			}
			s.aux[idx].Acquire(t)
			held = idx
			t.MarkSerial(true)
		}
		if retries >= s.cfg.maxRetries() {
			r.Attempts++
			s.main.Acquire(t)
			cs()
			s.main.Release(t)
			r.Spec = false
			break
		}
		if st.Cause == tsx.CauseExplicit && st.Code == abortCodeLockHeld {
			for s.main.Held(t) {
				t.Pause()
			}
		}
	}
	if held >= 0 {
		t.MarkSerial(false)
		s.aux[held].Release(t)
	}
	s.record(t.ID, r)
	return r
}
