package core_test

import (
	"reflect"
	"testing"

	"hle/internal/core"
	"hle/internal/hwext"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// FuzzLazySubscription drives the subscription modes over arbitrary
// coordinates: the scheduler seed, the subscription mode (eager, fixed
// lazy, and the deliberately unsound naive lazy), FORTH-style asymmetric
// read/write-set capacity limits, and the critical section's footprint.
// Whatever the fuzzer draws, the run must be total (no usage panic, no
// livelock — every operation completes, by speculation or by falling back
// to the real lock), the SAFE modes must lose no update, and the whole
// machine must replay deterministically — the property the explore/chaos
// layers build on. The naive mode's counter is NOT constrained: it can
// lose updates (a commit drained over a pessimistic holder's stores) and
// it can duplicate them (the after-drain check aborts a commit whose
// writes already published, and the retry re-applies them — corpus entry
// 39d010aec5a2a4aa, found by this fuzzer, pins a duplicating run).
func FuzzLazySubscription(f *testing.F) {
	// Starter corpus: one entry per mode at the figure sweep's default
	// shape, plus capacity-starved and capacity-rich extremes where the
	// lock line's read-set residency (the eager/lazy difference) decides
	// whether speculation fits at all.
	f.Add(int64(1), uint8(0), uint8(8), uint8(4), uint8(3))
	f.Add(int64(2), uint8(1), uint8(8), uint8(4), uint8(3))
	f.Add(int64(3), uint8(2), uint8(8), uint8(4), uint8(3))
	f.Add(int64(4), uint8(1), uint8(0), uint8(0), uint8(7))
	f.Add(int64(5), uint8(0), uint8(63), uint8(31), uint8(0))
	f.Add(int64(6), uint8(2), uint8(1), uint8(0), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, mode, rcap, wcap, footprint uint8) {
		const threads, ops = 3, 6
		scan := int(footprint % 8)        // shared lines read per CS
		burst := int(footprint / 8 % 4)   // private lines written per CS
		readCap := 1 + int(rcap)%64       // precise read-set lines
		writeCap := 1 + int(wcap)%32      // write-set lines
		modeName := []string{"eager", "lazy-fixed", "lazy-naive"}[mode%3]

		run := func() (got uint64, st core.OpStats, aborted uint64) {
			cfg := tsx.DefaultConfig(threads)
			cfg.Seed = seed
			cfg.MemWords = 1 << 12
			cfg = hwext.LimitSets(cfg, readCap, writeCap)
			switch modeName {
			case "lazy-fixed":
				cfg = hwext.EnableLazyFixed(cfg)
			case "lazy-naive":
				cfg = hwext.EnableLazyNaive(cfg)
			}
			m := tsx.NewMachine(cfg)
			var scheme core.Scheme
			var shared, counter mem.Addr
			var priv [threads]mem.Addr
			m.RunOne(func(th *tsx.Thread) {
				lock := locks.NewTTAS(th)
				shared = th.AllocLines(8 * mem.LineWords)
				for id := 0; id < threads; id++ {
					priv[id] = th.AllocLines(4 * mem.LineWords)
				}
				counter = th.AllocLines(1)
				if modeName == "eager" {
					scheme = core.NewHLE(lock)
				} else {
					scheme = core.NewHLELazy(lock)
				}
			})
			ths := m.Run(threads, func(th *tsx.Thread) {
				scheme.Setup(th)
				mine := priv[th.ID]
				for op := 0; op < ops; op++ {
					scheme.Run(th, func() {
						var sum uint64
						for l := 0; l < scan; l++ {
							sum += th.Load(shared + mem.Addr(l*mem.LineWords))
						}
						for l := 0; l < burst; l++ {
							th.Store(mine+mem.Addr(l*mem.LineWords), sum+uint64(op))
						}
						th.Store(counter, th.Load(counter)+1)
					})
				}
			})
			for _, th := range ths {
				for _, n := range th.Stats.Aborted {
					aborted += n
				}
			}
			m.RunOne(func(th *tsx.Thread) { got = th.Load(counter) })
			return got, scheme.TotalStats(), aborted
		}

		got, st, aborted := run()
		const expected = threads * ops
		if st.Ops != expected {
			t.Fatalf("%s r%d w%d: %d of %d operations completed — scheme lost liveness",
				modeName, readCap, writeCap, st.Ops, expected)
		}
		if modeName != "lazy-naive" && got != expected {
			t.Fatalf("%s r%d w%d scan=%d burst=%d: lost %d updates under a safe mode",
				modeName, readCap, writeCap, scan, burst, int64(expected)-int64(got))
		}
		got2, st2, aborted2 := run()
		if got2 != got || !reflect.DeepEqual(st2, st) || aborted2 != aborted {
			t.Fatalf("%s replay diverged: counter %d/%d, stats %+v/%+v, aborts %d/%d",
				modeName, got, got2, st, st2, aborted, aborted2)
		}
	})
}
