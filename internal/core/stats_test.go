package core_test

import (
	"testing"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// TestPerThreadStats: statsBase attributes operations to the right thread.
func TestPerThreadStats(t *testing.T) {
	m := newMachine(4, 3)
	var s core.Scheme
	var ctr mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = core.NewStandard(locks.NewTTAS(th))
		ctr = th.AllocLines(1)
	})
	perThread := []int{5, 10, 15, 20}
	m.Run(4, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < perThread[th.ID]; i++ {
			s.Run(th, func() { th.Store(ctr, th.Load(ctr)+1) })
		}
	})
	for id, want := range perThread {
		if got := s.Stats(id).Ops; got != uint64(want) {
			t.Errorf("thread %d ops = %d, want %d", id, got, want)
		}
	}
	if got := s.TotalStats().Ops; got != 50 {
		t.Errorf("total ops = %d, want 50", got)
	}
}

// TestResultAttemptsUnderForcedAborts: a CS that conflicts on its first
// executions must report >1 attempts and a truthful Spec flag.
func TestResultAttemptsUnderForcedAborts(t *testing.T) {
	cfg := tsx.DefaultConfig(2)
	cfg.Seed = 5
	cfg.SpuriousPerAccess = 0
	m := tsx.NewMachine(cfg)
	var s core.Scheme
	var hot mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = core.NewHLE(locks.NewTTAS(th))
		hot = th.AllocLines(1)
	})
	sawRetry := false
	sawNonSpec := false
	m.Run(2, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < 200; i++ {
			r := s.Run(th, func() {
				v := th.Load(hot)
				th.Work(25)
				th.Store(hot, v+1)
			})
			if r.Attempts > 1 {
				sawRetry = true
			}
			if !r.Spec {
				sawNonSpec = true
			}
			if r.Attempts == 0 {
				t.Fatal("zero attempts reported")
			}
		}
	})
	if !sawRetry || !sawNonSpec {
		t.Errorf("contended HLE never reported retries (%v) or non-speculative completions (%v)",
			sawRetry, sawNonSpec)
	}
	var got uint64
	m.RunOne(func(th *tsx.Thread) { got = th.Load(hot) })
	if got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
}

// TestOpStatsArithmetic covers the derived-metric helpers.
func TestOpStatsArithmetic(t *testing.T) {
	s := core.OpStats{Ops: 10, Spec: 7, NonSpec: 3, Attempts: 25}
	if s.AttemptsPerOp() != 2.5 {
		t.Errorf("AttemptsPerOp = %v", s.AttemptsPerOp())
	}
	if s.NonSpecFraction() != 0.3 {
		t.Errorf("NonSpecFraction = %v", s.NonSpecFraction())
	}
	var zero core.OpStats
	if zero.AttemptsPerOp() != 0 || zero.NonSpecFraction() != 0 {
		t.Error("zero stats should derive zero metrics")
	}
	a := core.OpStats{Ops: 1, Spec: 1, Attempts: 2}
	a.Add(core.OpStats{Ops: 2, NonSpec: 2, Attempts: 3})
	if a.Ops != 3 || a.Spec != 1 || a.NonSpec != 2 || a.Attempts != 5 {
		t.Errorf("Add result %+v", a)
	}
}

// TestSCMAuxIsReleasedAcrossOps: a thread that used the serializing path
// must release the aux lock before its next operation (regression guard
// for aux-lock leakage).
func TestSCMAuxIsReleasedAcrossOps(t *testing.T) {
	m := newMachine(2, 7)
	var s core.Scheme
	var aux locks.Lock
	var hot mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		aux = locks.NewMCS(th)
		s = core.NewHLESCM(locks.NewTTAS(th), aux, core.SCMConfig{})
		hot = th.AllocLines(1)
	})
	m.Run(2, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < 150; i++ {
			s.Run(th, func() {
				v := th.Load(hot)
				th.Work(20)
				th.Store(hot, v+1)
			})
			if aux.Held(th) && i%10 == 0 {
				// The aux lock may be held by the *other* thread
				// mid-operation, but after both finish it must be
				// free (checked below); here just exercise reads.
				_ = aux.Held(th)
			}
		}
	})
	m.RunOne(func(th *tsx.Thread) {
		if aux.Held(th) {
			t.Fatal("aux lock leaked: still held after all operations finished")
		}
		if got := th.Load(hot); got != 300 {
			t.Fatalf("counter = %d, want 300", got)
		}
	})
}
