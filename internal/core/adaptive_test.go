package core_test

import (
	"testing"

	"hle/internal/adapt"
	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/tsx"
)

// pinnedConfig returns a controller tuning that never transitions, so each
// execution level's loop can be exercised in isolation via Start.
func pinnedConfig(start adapt.Level) adapt.Config {
	return adapt.Config{
		DemoteWindows:  1 << 30,
		PromoteWindows: 1 << 30,
		Start:          start,
	}
}

func newAdaptive(th *tsx.Thread, lockName string, cfg core.AdaptiveConfig) *core.Adaptive {
	mk := locks.MakerByName(lockName)
	return core.NewAdaptive(mk(th), locks.NewMCS(th), cfg)
}

// TestAdaptiveLevelsSerializable: with the controller pinned at each level,
// concurrent counter increments are exact and the stats accounting is
// consistent — the three inline level loops all keep the paper's
// correctness contract.
func TestAdaptiveLevelsSerializable(t *testing.T) {
	for _, lockName := range []string{"TTAS", "MCS"} {
		for lvl := adapt.Elide; int(lvl) < adapt.NumLevels; lvl++ {
			t.Run(lockName+"/"+lvl.String(), func(t *testing.T) {
				m := newMachine(4, 21)
				var s *core.Adaptive
				var ctr mem.Addr
				m.RunOne(func(th *tsx.Thread) {
					s = newAdaptive(th, lockName, core.AdaptiveConfig{Controller: pinnedConfig(lvl)})
					ctr = th.AllocLines(1)
				})
				const perThread = 80
				m.Run(4, func(th *tsx.Thread) {
					s.Setup(th)
					for i := 0; i < perThread; i++ {
						s.Run(th, func() {
							v := th.Load(ctr)
							th.Work(3)
							th.Store(ctr, v+1)
						})
					}
				})
				var after uint64
				m.RunOne(func(th *tsx.Thread) { after = th.Load(ctr) })
				if after != 4*perThread {
					t.Fatalf("counter = %d, want %d", after, 4*perThread)
				}
				if s.Level() != lvl || len(s.Transitions()) != 0 {
					t.Fatalf("pinned controller moved: level %v, transitions %v",
						s.Level(), s.Transitions())
				}
				total := s.TotalStats()
				if total.Ops != 4*perThread {
					t.Errorf("ops = %d, want %d", total.Ops, 4*perThread)
				}
				if total.Spec+total.NonSpec != total.Ops {
					t.Errorf("spec %d + nonspec %d != ops %d", total.Spec, total.NonSpec, total.Ops)
				}
				if total.Attempts < total.Ops {
					t.Errorf("attempts %d < ops %d", total.Attempts, total.Ops)
				}
			})
		}
	}
}

// TestAdaptiveDemotesAndStampsDrains: a conflict-saturated workload (every
// operation rewrites one hot line at 6 threads) must drive the controller
// off full elision, results must stay exact through the hot swaps, and
// every applied transition must stamp coherent swap/drain clocks. The
// thresholds are tightened a notch below the defaults: this workload's
// steady state sits at ~43% aborts with ~58% of operations serialized,
// just under the stock 45/65 bands (which are tuned for storm detection,
// not borderline contention).
func TestAdaptiveDemotesAndStampsDrains(t *testing.T) {
	m := newMachine(6, 33)
	var s *core.Adaptive
	var hot mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = newAdaptive(th, "TTAS", core.AdaptiveConfig{
			Controller: adapt.Config{DemotePct: 40, SerialDemotePct: 55},
		})
		hot = th.AllocLines(1)
	})
	const perThread = 400
	m.Run(6, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < perThread; i++ {
			s.Run(th, func() {
				v := th.Load(hot)
				th.Work(10)
				th.Store(hot, v+1)
			})
		}
	})
	var got uint64
	m.RunOne(func(th *tsx.Thread) { got = th.Load(hot) })
	if got != 6*perThread {
		t.Fatalf("counter = %d through hot swaps, want %d", got, 6*perThread)
	}
	trs := s.Transitions()
	if len(trs) == 0 {
		t.Fatalf("saturated conflicts never demoted; level %v", s.Level())
	}
	if trs[0].From != adapt.Elide || trs[0].To <= adapt.Elide {
		t.Errorf("first transition is not a demotion from Elide: %v", trs[0])
	}
	for _, tr := range trs {
		if tr.SwapClock == 0 {
			// The run can end with the last decision not yet applied.
			continue
		}
		if tr.SwapClock < tr.Clock {
			t.Errorf("transition %v swapped before its window closed", tr)
		}
		if tr.DrainClock < tr.SwapClock {
			t.Errorf("transition %v drained before it swapped", tr)
		}
	}
}

// TestAdaptiveWindowTap: the tap observes every window the controller
// consumes, in order, after the controller (the transition count it can
// see only grows).
func TestAdaptiveWindowTap(t *testing.T) {
	m := newMachine(4, 5)
	var s *core.Adaptive
	var hot mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = newAdaptive(th, "TTAS", core.AdaptiveConfig{})
		hot = th.AllocLines(1)
	})
	var windows []obs.WindowStats
	transitionsSeen := 0
	s.SetWindowTap(func(w obs.WindowStats) {
		windows = append(windows, w)
		if n := len(s.Transitions()); n < transitionsSeen {
			t.Errorf("tap saw transition log shrink: %d then %d", transitionsSeen, n)
		} else {
			transitionsSeen = n
		}
	})
	m.Run(4, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < 200; i++ {
			s.Run(th, func() {
				v := th.Load(hot)
				th.Work(10)
				th.Store(hot, v+1)
			})
		}
	})
	if len(windows) == 0 {
		t.Fatal("tap never saw a window")
	}
	for i := 1; i < len(windows); i++ {
		if windows[i].Index <= windows[i-1].Index {
			t.Fatalf("tap windows out of order: %d then %d",
				windows[i-1].Index, windows[i].Index)
		}
	}
	if s.Controller().Windows() != len(windows) {
		t.Fatalf("controller observed %d windows, tap saw %d",
			s.Controller().Windows(), len(windows))
	}
}

// TestAdaptiveConstructorPanics: missing locks are constructor misuse.
func TestAdaptiveConstructorPanics(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("NewAdaptive(nil, aux) did not panic")
			}
		}()
		core.NewAdaptive(nil, locks.NewMCS(th), core.AdaptiveConfig{})
	})
}

// TestAdaptiveName pins the report name the harness and figures rely on.
func TestAdaptiveName(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		if got := newAdaptive(th, "TTAS", core.AdaptiveConfig{}).Name(); got != "Adaptive" {
			t.Errorf("name %q, want Adaptive", got)
		}
	})
}
