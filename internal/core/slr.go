package core

import (
	"hle/internal/locks"
	"hle/internal/tsx"
)

// SLR is software-assisted lock removal: the critical section executes
// transactionally without accessing the lock at all; just before
// committing, the transaction reads the lock and commits only if it is
// free, aborting and retrying otherwise. Unlike Rajwar and Goodman's
// transactional lock removal, no hardware conflict-management changes are
// needed — livelock is avoided in software by bounding retries and falling
// back to the lock.
//
// The pessimistic variant acquires the lock non-speculatively after a
// single failure; the optimistic variant retries speculatively
// (10 times in the paper's evaluation) first.
type SLR struct {
	statsBase
	main        locks.Lock
	maxAttempts int
	pessimistic bool
}

// DefaultSLRAttempts is the optimistic variant's retry budget (§5.1).
const DefaultSLRAttempts = 10

// NewSLR builds an optimistic SLR scheme with the given speculative
// attempt budget (0 selects DefaultSLRAttempts).
func NewSLR(main locks.Lock, maxAttempts int) *SLR {
	if maxAttempts <= 0 {
		maxAttempts = DefaultSLRAttempts
	}
	return &SLR{main: main, maxAttempts: maxAttempts, pessimistic: maxAttempts == 1}
}

// NewPessimisticSLR builds the pessimistic variant: one speculative try.
func NewPessimisticSLR(main locks.Lock) *SLR {
	return &SLR{main: main, maxAttempts: 1, pessimistic: true}
}

// Name implements Scheme.
func (s *SLR) Name() string {
	if s.pessimistic {
		return "Pes-SLR"
	}
	return "Opt-SLR"
}

// Setup implements Scheme.
func (s *SLR) Setup(t *tsx.Thread) { s.main.Prepare(t) }

// Run implements Scheme.
func (s *SLR) Run(t *tsx.Thread, cs func()) Result {
	var r Result
	for attempt := 0; attempt < s.maxAttempts; attempt++ {
		committed, st := t.RTM(func() {
			r.Attempts++
			cs()
			// Read the lock only now, when ready to commit.
			if s.main.Held(t) {
				t.Abort(abortCodeLockHeld)
			}
		})
		if committed {
			r.Spec = true
			s.record(t.ID, r)
			return r
		}
		// §5.1 tuning: SLR switches to non-speculative execution when
		// the abort status says the transaction is unlikely to ever
		// succeed (capacity overflows clear the retry bit).
		if !st.MayRetry {
			break
		}
	}
	r.Attempts++
	s.main.Acquire(t)
	t.MarkSerial(true)
	cs()
	t.MarkSerial(false)
	s.main.Release(t)
	r.Spec = false
	s.record(t.ID, r)
	return r
}

// SLRSCM applies software-assisted conflict management to lock removal:
// the primary path is the SLR transaction; aborted threads serialize on
// the auxiliary lock and rejoin speculation, further reducing the progress
// problems caused when SLR threads give up and take the lock (Chapter 4).
type SLRSCM struct {
	statsBase
	main locks.Lock
	aux  locks.Lock
	cfg  SCMConfig
}

// NewSLRSCM builds the SLR-SCM scheme over main with the given
// starvation-free auxiliary lock.
func NewSLRSCM(main, aux locks.Lock, cfg SCMConfig) *SLRSCM {
	return &SLRSCM{main: main, aux: aux, cfg: cfg}
}

// Name implements Scheme.
func (s *SLRSCM) Name() string { return "Opt-SLR-SCM" }

// Setup implements Scheme.
func (s *SLRSCM) Setup(t *tsx.Thread) {
	s.main.Prepare(t)
	s.aux.Prepare(t)
}

// Run implements Scheme: Algorithm 3 with the boxed HLE calls replaced by
// SLR's commit-time lock check.
func (s *SLRSCM) Run(t *tsx.Thread, cs func()) Result {
	var r Result
	retries := 0
	auxOwner := false
	for {
		committed, st := t.RTM(func() {
			r.Attempts++
			cs()
			if s.main.Held(t) {
				t.Abort(abortCodeLockHeld)
			}
		})
		if committed {
			r.Spec = true
			break
		}
		if auxOwner {
			retries++
		} else {
			s.aux.Acquire(t)
			auxOwner = true
			t.MarkSerial(true)
		}
		if retries >= s.cfg.maxRetries() || !st.MayRetry {
			r.Attempts++
			s.main.Acquire(t)
			cs()
			s.main.Release(t)
			r.Spec = false
			break
		}
	}
	if auxOwner {
		t.MarkSerial(false)
		s.aux.Release(t)
	}
	s.record(t.ID, r)
	return r
}
