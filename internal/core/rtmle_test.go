package core_test

import (
	"testing"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// TestRTMLESerializable: RTM-based elision preserves counter exactness
// for both lock families.
func TestRTMLESerializable(t *testing.T) {
	for _, lockName := range []string{"TTAS", "MCS"} {
		t.Run(lockName, func(t *testing.T) {
			m := newMachine(6, 3)
			var s core.Scheme
			var ctr mem.Addr
			m.RunOne(func(th *tsx.Thread) {
				s = core.NewRTMLE(locks.MakerByName(lockName)(th))
				ctr = th.AllocLines(1)
			})
			const perThread = 100
			m.Run(6, func(th *tsx.Thread) {
				s.Setup(th)
				for i := 0; i < perThread; i++ {
					s.Run(th, func() {
						v := th.Load(ctr)
						th.Work(3)
						th.Store(ctr, v+1)
					})
				}
			})
			var got uint64
			m.RunOne(func(th *tsx.Thread) { got = th.Load(ctr) })
			if got != 6*perThread {
				t.Fatalf("counter = %d, want %d", got, 6*perThread)
			}
		})
	}
}

// TestRTMLEComparableToHLE verifies the Figure 3.5 claim that justified the
// paper's measurement methodology: HLE-prefix elision and RTM-based elision
// produce comparable speculative success on a low-conflict workload.
func TestRTMLEComparableToHLE(t *testing.T) {
	run := func(mk func(th *tsx.Thread) core.Scheme) core.OpStats {
		m := newMachine(8, 5)
		var s core.Scheme
		var cells [8]mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			s = mk(th)
			for i := range cells {
				cells[i] = th.AllocLines(1)
			}
		})
		m.Run(8, func(th *tsx.Thread) {
			s.Setup(th)
			for i := 0; i < 200; i++ {
				s.Run(th, func() {
					v := th.Load(cells[th.ID])
					th.Work(5)
					th.Store(cells[th.ID], v+1)
				})
			}
		})
		return s.TotalStats()
	}
	hleStats := run(func(th *tsx.Thread) core.Scheme { return core.NewHLE(locks.NewTTAS(th)) })
	rtmStats := run(func(th *tsx.Thread) core.Scheme { return core.NewRTMLE(locks.NewTTAS(th)) })
	hleSpec := float64(hleStats.Spec) / float64(hleStats.Ops)
	rtmSpec := float64(rtmStats.Spec) / float64(rtmStats.Ops)
	if hleSpec < 0.9 || rtmSpec < 0.9 {
		t.Fatalf("disjoint workload should be almost fully speculative: HLE %.2f, RTM %.2f", hleSpec, rtmSpec)
	}
	if diff := hleSpec - rtmSpec; diff > 0.1 || diff < -0.1 {
		t.Errorf("mechanisms diverge: HLE spec %.2f vs RTM spec %.2f", hleSpec, rtmSpec)
	}
}

// TestSCMIdealMatchesHaswellMode: Algorithm 3 verbatim (nested elision) and
// the paper's Haswell workaround must both eliminate the avalanche; their
// statistics should be in the same regime.
func TestSCMIdealMatchesHaswellMode(t *testing.T) {
	run := func(ideal bool) core.OpStats {
		cfg := tsx.DefaultConfig(8)
		cfg.Seed = 9
		cfg.SpuriousPerAccess = 0
		cfg.NestHLEInRTM = ideal
		m := tsx.NewMachine(cfg)
		var s core.Scheme
		var hot mem.Addr
		var private [8]mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			s = core.NewHLESCM(locks.NewMCS(th), locks.NewMCS(th), core.SCMConfig{Ideal: ideal})
			hot = th.AllocLines(1)
			for i := range private {
				private[i] = th.AllocLines(1)
			}
		})
		m.Run(8, func(th *tsx.Thread) {
			s.Setup(th)
			for i := 0; i < 150; i++ {
				cell := private[th.ID]
				if th.ID < 2 {
					cell = hot
				}
				s.Run(th, func() {
					v := th.Load(cell)
					th.Work(10)
					th.Store(cell, v+1)
				})
			}
		})
		return s.TotalStats()
	}
	haswell := run(false)
	ideal := run(true)
	if haswell.NonSpecFraction() > 0.05 {
		t.Errorf("Haswell-mode SCM non-spec fraction %.3f", haswell.NonSpecFraction())
	}
	if ideal.NonSpecFraction() > 0.05 {
		t.Errorf("ideal-mode SCM non-spec fraction %.3f", ideal.NonSpecFraction())
	}
}

// TestSLRSCMLivelockResistance: the Chapter 4 combination survives a
// workload engineered to make plain optimistic SLR burn all its retries.
func TestSLRSCMLivelockResistance(t *testing.T) {
	m := newMachine(8, 13)
	var s core.Scheme
	var hot mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = core.NewSLRSCM(locks.NewTTAS(th), locks.NewMCS(th), core.SCMConfig{})
		hot = th.AllocLines(1)
	})
	const perThread = 150
	m.Run(8, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < perThread; i++ {
			s.Run(th, func() {
				v := th.Load(hot)
				th.Work(25)
				th.Store(hot, v+1)
			})
		}
	})
	var got uint64
	m.RunOne(func(th *tsx.Thread) { got = th.Load(hot) })
	if got != 8*perThread {
		t.Fatalf("counter = %d, want %d", got, 8*perThread)
	}
	if app := s.TotalStats().AttemptsPerOp(); app > 8 {
		t.Errorf("attempts/op = %.1f; SCM serialization should bound retry storms", app)
	}
}
