package core

import (
	"hle/internal/locks"
	"hle/internal/tsx"
)

// RTMLE is lock elision implemented with the RTM instructions instead of
// the HLE prefixes, mimicking HLE's policy exactly: speculate with the lock
// in the read set, and on the first abort re-issue the acquisition
// non-transactionally. The paper uses this mechanism for its measurements
// because HLE's re-issued XACQUIRE is opaque to software, making aborts
// uncountable (Chapter 3, Remark), after verifying the two perform
// comparably (Figure 3.5).
type RTMLE struct {
	statsBase
	lock locks.Lock
}

// NewRTMLE wraps lock in RTM-based lock elision.
func NewRTMLE(lock locks.Lock) *RTMLE { return &RTMLE{lock: lock} }

// Name implements Scheme.
func (s *RTMLE) Name() string { return "RTM-LE" }

// Setup implements Scheme.
func (s *RTMLE) Setup(t *tsx.Thread) { s.lock.Prepare(t) }

// Run implements Scheme. The mechanism mirrors the lock's own HLE-path
// arrival behaviour: a TTAS tests the lock before its XACQUIRE, so the
// RTM equivalent waits for the lock to appear free before speculating; a
// queue lock's XACQUIRE swap runs unconditionally, and a thread arriving at
// a held lock speculates, aborts, and enqueues — which is why RTM-based
// elision inherits the MCS avalanche exactly as the HLE prefix does
// (Figure 3.5b).
func (s *RTMLE) Run(t *tsx.Thread, cs func()) Result {
	var r Result
	for {
		if !s.lock.Fair() {
			// TTAS-style pre-test outside the transaction.
			for s.lock.Held(t) {
				t.Pause()
			}
		}
		committed, _ := t.RTM(func() {
			r.Attempts++
			// Read the lock (into the read set) and bail if taken,
			// the RTM equivalent of the elided acquire.
			if s.lock.Held(t) {
				t.Abort(abortCodeLockHeld)
			}
			cs()
		})
		if committed {
			r.Spec = true
			break
		}
		// HLE re-issues the acquiring write non-transactionally after
		// an abort; mirror that with one non-speculative acquisition
		// attempt (which, for a queue lock, enqueues and waits).
		if s.lock.TryAcquire(t) {
			r.Attempts++
			t.MarkSerial(true)
			cs()
			t.MarkSerial(false)
			s.lock.Release(t)
			r.Spec = false
			break
		}
	}
	s.record(t.ID, r)
	return r
}
