// Package core implements the paper's lock-elision schemes — its primary
// contribution. Each scheme executes a critical section over a main lock:
//
//   - Standard: plain non-speculative locking (the paper's baseline).
//   - HLE: Haswell's hardware lock elision as-is (Figure 1.1 / Algorithm 2
//     behaviour), which suffers the Chapter 3 avalanche effect.
//   - HLESCM: software-assisted conflict management (Algorithm 3). Aborted
//     threads serialize on an auxiliary non-speculative lock and rejoin the
//     speculative run; only after MaxRetries failures does the aux-lock
//     holder take the main lock non-speculatively.
//   - SLR: software-assisted lock removal — the critical section runs
//     transactionally without touching the lock until just before commit.
//     Pessimistic gives up after one failure; optimistic retries.
//   - SLRSCM: SCM applied to SLR.
//   - HLESCMMulti: the paper's future-work refinement — conflicting threads
//     are grouped by conflict address onto striped auxiliary locks, so that
//     threads conflicting on different data do not serialize together.
//
// A scheme's Run returns per-operation accounting (attempts, speculative or
// not) that reproduces the paper's "average execution attempts per critical
// section" and "fraction of non-speculative execution" plots.
package core

import (
	"hle/internal/locks"
	"hle/internal/tsx"
)

// Result describes how one critical-section execution completed.
type Result struct {
	// Attempts is the number of times the critical section started
	// executing (aborted speculative tries plus the completing run) —
	// the paper's (A+N+S)/(N+S) numerator contribution.
	Attempts uint64
	// Spec reports whether the completing run was speculative.
	Spec bool
}

// OpStats aggregates Results.
type OpStats struct {
	Ops      uint64 // completed operations (N+S)
	Spec     uint64 // operations completing speculatively (S)
	NonSpec  uint64 // operations completing non-speculatively (N)
	Attempts uint64 // total execution attempts (A+N+S)
}

// Add accumulates other into s.
func (s *OpStats) Add(other OpStats) {
	s.Ops += other.Ops
	s.Spec += other.Spec
	s.NonSpec += other.NonSpec
	s.Attempts += other.Attempts
}

// AttemptsPerOp returns the paper's "average execution attempts per
// critical section".
func (s OpStats) AttemptsPerOp() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.Attempts) / float64(s.Ops)
}

// NonSpecFraction returns the fraction of operations completing
// non-speculatively.
func (s OpStats) NonSpecFraction() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.NonSpec) / float64(s.Ops)
}

func (s *OpStats) record(r Result) {
	s.Ops++
	s.Attempts += r.Attempts
	if r.Spec {
		s.Spec++
	} else {
		s.NonSpec++
	}
}

// Scheme executes critical sections over a main lock.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Setup prepares per-thread state (lock queue nodes); call once per
	// thread, outside any transaction, before the first Run.
	Setup(t *tsx.Thread)
	// Run executes cs as a critical section and returns how it
	// completed. cs may be re-executed after speculative aborts, so it
	// must be a pure function of simulated memory (true of all the
	// benchmarks: rollback restores their state exactly).
	Run(t *tsx.Thread, cs func()) Result
	// Stats returns the per-thread accumulated operation statistics.
	Stats(threadID int) OpStats
	// TotalStats sums statistics across threads.
	TotalStats() OpStats
}

// SchemeStats provides the per-thread stats plumbing shared by all
// schemes. It is exported so composite schemes built outside this package
// (the sharded store) can account operations the same way.
type SchemeStats struct {
	perThread [locks.MaxThreads]OpStats
}

// statsBase is the embedded name this package's schemes use.
type statsBase = SchemeStats

func (b *SchemeStats) record(id int, r Result) { b.perThread[id].record(r) }

// Record accumulates one completed critical-section result for a thread.
func (b *SchemeStats) Record(id int, r Result) { b.record(id, r) }

// Stats implements Scheme.
func (b *SchemeStats) Stats(threadID int) OpStats { return b.perThread[threadID] }

// TotalStats implements Scheme.
func (b *SchemeStats) TotalStats() OpStats {
	var total OpStats
	for i := range b.perThread {
		total.Add(b.perThread[i])
	}
	return total
}

// Standard is plain non-speculative locking.
type Standard struct {
	statsBase
	lock locks.Lock
}

// NewStandard wraps lock in a non-speculative scheme.
func NewStandard(lock locks.Lock) *Standard { return &Standard{lock: lock} }

// Name implements Scheme.
func (s *Standard) Name() string { return "Standard" }

// Setup implements Scheme.
func (s *Standard) Setup(t *tsx.Thread) { s.lock.Prepare(t) }

// Run implements Scheme.
func (s *Standard) Run(t *tsx.Thread, cs func()) Result {
	s.lock.Acquire(t)
	t.MarkSerial(true)
	cs()
	t.MarkSerial(false)
	s.lock.Release(t)
	r := Result{Attempts: 1, Spec: false}
	s.record(t.ID, r)
	return r
}

// NoLock executes the critical section with no synchronization at all. It
// is only meaningful single-threaded and provides the normalization
// baseline of Figure 5.1 ("throughput of a single thread with no locking").
type NoLock struct {
	statsBase
}

// NewNoLock returns the unsynchronized baseline scheme.
func NewNoLock() *NoLock { return &NoLock{} }

// Name implements Scheme.
func (s *NoLock) Name() string { return "NoLock" }

// Setup implements Scheme.
func (s *NoLock) Setup(t *tsx.Thread) {}

// Run implements Scheme.
func (s *NoLock) Run(t *tsx.Thread, cs func()) Result {
	cs()
	r := Result{Attempts: 1, Spec: false}
	s.record(t.ID, r)
	return r
}

// HLE runs critical sections under Haswell's hardware lock elision exactly
// as Figure 1.1 applies it: the lock's speculative path issues XACQUIRE /
// XRELEASE, and an abort re-executes the acquiring store non-transactionally
// — acquiring the lock for real and aborting every concurrent elision.
type HLE struct {
	statsBase
	lock locks.Lock
}

// NewHLE wraps lock in plain hardware lock elision.
func NewHLE(lock locks.Lock) *HLE { return &HLE{lock: lock} }

// Name implements Scheme.
func (s *HLE) Name() string { return "HLE" }

// Setup implements Scheme.
func (s *HLE) Setup(t *tsx.Thread) { s.lock.Prepare(t) }

// Run implements Scheme.
func (s *HLE) Run(t *tsx.Thread, cs func()) Result {
	var r Result
	t.HLERegion(func() {
		r.Attempts++
		s.lock.SpecAcquire(t)
		r.Spec = t.InElision()
		if !r.Spec {
			// The re-issued acquire took the lock for real: this run
			// is serialized, not speculative (profiling annotation).
			t.MarkSerial(true)
		}
		cs()
		if !r.Spec {
			t.MarkSerial(false)
		}
		s.lock.SpecRelease(t)
	})
	s.record(t.ID, r)
	return r
}
