package core

import (
	"hle/internal/locks"
	"hle/internal/tsx"
)

// HLELazy is hardware lock elision with lazy lock subscription: the
// XACQUIRE does not put the lock line in the read set; the engine's
// commit pipeline subscribes and validates it instead (with the Dice et
// al. fixes on — see internal/tsx/lazy.go). A speculating thread is
// therefore invisible to pessimistic acquirers for its whole body, which
// removes the lock-line conflict aborts that seed the Chapter 3
// avalanche.
type HLELazy struct {
	HLE
}

// NewHLELazy wraps lock in lazily-subscribing hardware lock elision.
func NewHLELazy(lock locks.Lock) *HLELazy {
	return &HLELazy{HLE{lock: lock}}
}

// Name implements Scheme.
func (s *HLELazy) Name() string { return "HLE-lazy" }

// Setup implements Scheme.
func (s *HLELazy) Setup(t *tsx.Thread) {
	t.SetSubscription(tsx.SubLazy)
	s.lock.Prepare(t)
}

// RTMLELazy is RTM-based lock elision with lazy lock subscription. Where
// RTMLE reads the lock at begin (subscribing it) and aborts if held,
// RTMLELazy starts the transaction unconditionally and registers the
// lock-free predicate via LazySubscribe; the engine evaluates it at
// commit, where its loads subscribe the lock's lines. The fallback after
// an abort mirrors RTMLE: one non-speculative acquisition attempt.
type RTMLELazy struct {
	statsBase
	lock locks.Lock
	// subCheck holds the per-thread subscription predicate, pre-bound in
	// Setup so the transactional hot path allocates nothing.
	subCheck [locks.MaxThreads]func() bool
}

// NewRTMLELazy wraps lock in lazily-subscribing RTM lock elision.
func NewRTMLELazy(lock locks.Lock) *RTMLELazy { return &RTMLELazy{lock: lock} }

// Name implements Scheme.
func (s *RTMLELazy) Name() string { return "RTM-LE-lazy" }

// Setup implements Scheme.
func (s *RTMLELazy) Setup(t *tsx.Thread) {
	t.SetSubscription(tsx.SubLazy)
	s.lock.Prepare(t)
	th := t
	s.subCheck[t.ID] = func() bool { return !s.lock.Held(th) }
}

// Run implements Scheme. There is no pre-test and no begin-time lock
// read: a thread arriving at a held lock speculates anyway and only
// discovers the holder at commit — fewer aborts when critical sections
// do not overlap in time, a guaranteed CauseSubscription abort when they
// do.
func (s *RTMLELazy) Run(t *tsx.Thread, cs func()) Result {
	var r Result
	check := s.subCheck[t.ID]
	for {
		committed, _ := t.RTM(func() {
			r.Attempts++
			t.LazySubscribe(check)
			cs()
		})
		if committed {
			r.Spec = true
			break
		}
		// Mirror RTMLE's fallback: one non-speculative acquisition
		// attempt after each abort.
		if s.lock.TryAcquire(t) {
			r.Attempts++
			t.MarkSerial(true)
			cs()
			t.MarkSerial(false)
			s.lock.Release(t)
			r.Spec = false
			break
		}
	}
	s.record(t.ID, r)
	return r
}
