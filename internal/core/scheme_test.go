package core_test

import (
	"testing"

	"hle/internal/core"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

func newMachine(n int, seed int64) *tsx.Machine {
	cfg := tsx.DefaultConfig(n)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0
	return tsx.NewMachine(cfg)
}

// buildScheme constructs every scheme under test for the given lock name.
func buildSchemes(th *tsx.Thread, lockName string) []core.Scheme {
	mk := locks.MakerByName(lockName)
	newAux := func() locks.Lock { return locks.NewMCS(th) }
	return []core.Scheme{
		core.NewStandard(mk(th)),
		core.NewHLE(mk(th)),
		core.NewHLESCM(mk(th), newAux(), core.SCMConfig{}),
		core.NewHLESCM(mk(th), newAux(), core.SCMConfig{Ideal: true}),
		core.NewPessimisticSLR(mk(th)),
		core.NewSLR(mk(th), 0),
		core.NewSLRSCM(mk(th), newAux(), core.SCMConfig{}),
		core.NewHLESCMMulti(mk(th), []locks.Lock{newAux(), newAux(), newAux()}, core.SCMConfig{}),
	}
}

// TestSchemesSerializable: under every scheme × every lock, concurrent
// counter increments are exact and attempts/ops accounting is consistent.
func TestSchemesSerializable(t *testing.T) {
	for _, lockName := range []string{"TTAS", "MCS", "AdjTicket", "AdjCLH"} {
		t.Run(lockName, func(t *testing.T) {
			cfg := tsx.DefaultConfig(6)
			cfg.Seed = 5
			cfg.SpuriousPerAccess = 0
			cfg.NestHLEInRTM = true // exercise the ideal SCM variant too
			m := tsx.NewMachine(cfg)
			var schemes []core.Scheme
			var ctr mem.Addr
			m.RunOne(func(th *tsx.Thread) {
				schemes = buildSchemes(th, lockName)
				ctr = th.AllocLines(1)
			})
			for _, s := range schemes {
				s := s
				t.Run(s.Name(), func(t *testing.T) {
					var before uint64
					m.RunOne(func(th *tsx.Thread) { before = th.Load(ctr) })
					const perThread = 60
					m.Run(6, func(th *tsx.Thread) {
						s.Setup(th)
						for i := 0; i < perThread; i++ {
							s.Run(th, func() {
								v := th.Load(ctr)
								th.Work(3)
								th.Store(ctr, v+1)
							})
						}
					})
					var after uint64
					m.RunOne(func(th *tsx.Thread) { after = th.Load(ctr) })
					if after-before != 6*perThread {
						t.Fatalf("counter grew %d, want %d", after-before, 6*perThread)
					}
					total := s.TotalStats()
					if total.Ops < 6*perThread {
						t.Errorf("ops = %d, want >= %d", total.Ops, 6*perThread)
					}
					if total.Spec+total.NonSpec != total.Ops {
						t.Errorf("spec %d + nonspec %d != ops %d", total.Spec, total.NonSpec, total.Ops)
					}
					if total.Attempts < total.Ops {
						t.Errorf("attempts %d < ops %d", total.Attempts, total.Ops)
					}
				})
			}
		})
	}
}

// TestConsistentSnapshots: writers keep the invariant x == y inside the
// critical section; readers must never observe x != y, under every scheme.
// This is the Lemma 1 scenario — it fails if speculative threads can
// observe a non-speculative lock holder's partial writes.
func TestConsistentSnapshots(t *testing.T) {
	for _, lockName := range []string{"TTAS", "MCS"} {
		t.Run(lockName, func(t *testing.T) {
			m := newMachine(4, 9)
			var schemes []core.Scheme
			var x, y mem.Addr
			m.RunOne(func(th *tsx.Thread) {
				schemes = buildSchemes(th, lockName)
				x = th.AllocLines(1)
				y = th.AllocLines(1)
			})
			for _, s := range schemes {
				if s.Name() == "HLE-SCM-ideal" {
					continue // requires NestHLEInRTM
				}
				s := s
				t.Run(s.Name(), func(t *testing.T) {
					violations := 0
					m.Run(4, func(th *tsx.Thread) {
						s.Setup(th)
						for i := 0; i < 80; i++ {
							if th.ID%2 == 0 {
								s.Run(th, func() {
									v := th.Load(x)
									th.Store(y, v+1)
									th.Work(7)
									th.Store(x, v+1)
								})
							} else {
								// A speculative run that observes an
								// inconsistency may be a zombie that
								// aborts (real TSX behaves the same);
								// only the completing execution's
								// observation counts.
								bad := false
								s.Run(th, func() {
									bad = false
									vy := th.Load(y)
									th.Work(7)
									vx := th.Load(x)
									if vx != vy {
										bad = true
									}
								})
								if bad {
									violations++
								}
							}
						}
					})
					if violations > 0 {
						t.Fatalf("%d inconsistent snapshots observed", violations)
					}
				})
			}
		})
	}
}

// TestAvalancheAndSCMRescue reproduces the paper's core claim: under plain
// HLE an MCS lock serializes almost everything after an abort (the
// avalanche), while HLE-SCM keeps non-conflicting threads speculative.
func TestAvalancheAndSCMRescue(t *testing.T) {
	run := func(mkScheme func(th *tsx.Thread) core.Scheme) core.OpStats {
		m := newMachine(8, 3)
		var s core.Scheme
		var hot mem.Addr
		var private [8]mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			s = mkScheme(th)
			hot = th.AllocLines(1)
			for i := range private {
				private[i] = th.AllocLines(1)
			}
		})
		m.Run(8, func(th *tsx.Thread) {
			s.Setup(th)
			for i := 0; i < 150; i++ {
				if th.ID < 2 {
					// Conflicting pair: fight over the hot line.
					s.Run(th, func() {
						v := th.Load(hot)
						th.Work(10)
						th.Store(hot, v+1)
					})
				} else {
					// Non-conflicting majority.
					s.Run(th, func() {
						v := th.Load(private[th.ID])
						th.Work(10)
						th.Store(private[th.ID], v+1)
					})
				}
			}
		})
		// Aggregate the six non-conflicting threads only.
		var agg core.OpStats
		for id := 2; id < 8; id++ {
			agg.Add(s.Stats(id))
		}
		return agg
	}

	hle := run(func(th *tsx.Thread) core.Scheme {
		return core.NewHLE(locks.NewMCS(th))
	})
	scm := run(func(th *tsx.Thread) core.Scheme {
		return core.NewHLESCM(locks.NewMCS(th), locks.NewMCS(th), core.SCMConfig{})
	})

	if hle.NonSpecFraction() < 0.2 {
		t.Errorf("plain HLE MCS: non-speculative fraction %.2f for innocent threads; expected avalanche serialization",
			hle.NonSpecFraction())
	}
	if scm.NonSpecFraction() > 0.05 {
		t.Errorf("HLE-SCM: non-speculative fraction %.2f for innocent threads; SCM should keep them speculative",
			scm.NonSpecFraction())
	}
	if scm.NonSpecFraction() >= hle.NonSpecFraction() {
		t.Errorf("SCM (%.2f) should serialize less than plain HLE (%.2f)",
			scm.NonSpecFraction(), hle.NonSpecFraction())
	}
}

// TestSCMLivelockFreedom: two threads that always conflict must still make
// progress (Chapter 4's livelock argument).
func TestSCMLivelockFreedom(t *testing.T) {
	m := newMachine(2, 7)
	var s core.Scheme
	var hot mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = core.NewHLESCM(locks.NewTTAS(th), locks.NewMCS(th), core.SCMConfig{})
		hot = th.AllocLines(1)
	})
	const perThread = 300
	m.Run(2, func(th *tsx.Thread) {
		s.Setup(th)
		for i := 0; i < perThread; i++ {
			s.Run(th, func() {
				v := th.Load(hot)
				th.Work(20)
				th.Store(hot, v+1)
			})
		}
	})
	var got uint64
	m.RunOne(func(th *tsx.Thread) { got = th.Load(hot) })
	if got != 2*perThread {
		t.Fatalf("counter = %d, want %d", got, 2*perThread)
	}
	// Bounded work per operation: SCM serializes conflicting threads, so
	// attempts per op should stay modest rather than exploding.
	if app := s.TotalStats().AttemptsPerOp(); app > 5 {
		t.Errorf("attempts per op = %.1f under SCM; conflict serialization should bound this", app)
	}
}

// TestSCMStarvationFreedom: with a fair aux lock, no thread starves even
// under constant conflict and unequal thread counts.
func TestSCMStarvationFreedom(t *testing.T) {
	m := newMachine(8, 15)
	var s core.Scheme
	var hot mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		s = core.NewHLESCM(locks.NewMCS(th), locks.NewMCS(th), core.SCMConfig{})
		hot = th.AllocLines(1)
	})
	counts := make([]int, 8)
	const budget = 3_000_000
	m.Run(8, func(th *tsx.Thread) {
		s.Setup(th)
		for th.Clock() < budget {
			s.Run(th, func() {
				v := th.Load(hot)
				th.Work(10)
				th.Store(hot, v+1)
			})
			counts[th.ID]++
		}
	})
	for id, c := range counts {
		if c == 0 {
			t.Fatalf("thread %d starved: %v", id, counts)
		}
	}
}

// TestNoLockBaseline sanity-checks the normalization scheme.
func TestNoLockBaseline(t *testing.T) {
	m := newMachine(1, 1)
	var ctr mem.Addr
	s := core.NewNoLock()
	m.RunOne(func(th *tsx.Thread) {
		ctr = th.AllocLines(1)
		s.Setup(th)
		for i := 0; i < 10; i++ {
			s.Run(th, func() { th.Store(ctr, th.Load(ctr)+1) })
		}
		if th.Load(ctr) != 10 {
			t.Error("NoLock lost updates single-threaded")
		}
	})
	if s.TotalStats().Ops != 10 {
		t.Error("NoLock stats wrong")
	}
}

// TestSLRPartialSpeculation: SLR transactions keep speculating while the
// main lock is held non-speculatively — the property that distinguishes it
// from HLE (§4, §5.2).
func TestSLRPartialSpeculation(t *testing.T) {
	m := newMachine(4, 11)
	var s core.Scheme
	var l locks.Lock
	var cells [4]mem.Addr
	m.RunOne(func(th *tsx.Thread) {
		l = locks.NewTTAS(th)
		s = core.NewSLR(l, 0)
		for i := range cells {
			cells[i] = th.AllocLines(1)
		}
	})
	m.Run(4, func(th *tsx.Thread) {
		s.Setup(th)
		if th.ID == 0 {
			// Repeatedly hold the main lock non-speculatively.
			for i := 0; i < 20; i++ {
				l.Acquire(th)
				th.Work(500)
				l.Release(th)
				th.Work(100)
			}
			return
		}
		for i := 0; i < 100; i++ {
			s.Run(th, func() {
				v := th.Load(cells[th.ID])
				th.Work(5)
				th.Store(cells[th.ID], v+1)
			})
		}
	})
	var agg core.OpStats
	for id := 1; id < 4; id++ {
		agg.Add(s.Stats(id))
	}
	// The lock is held roughly 5/6 of the time, yet most disjoint SLR
	// operations should still commit speculatively (they only read the
	// lock at commit time and retry on failure).
	if f := agg.NonSpecFraction(); f > 0.5 {
		t.Errorf("SLR non-speculative fraction %.2f; expected speculation despite held lock", f)
	}
}

// TestSchemeNames pins the report names the figures rely on.
func TestSchemeNames(t *testing.T) {
	m := newMachine(1, 1)
	m.RunOne(func(th *tsx.Thread) {
		l := locks.NewTTAS(th)
		aux := locks.NewMCS(th)
		for _, want := range []struct {
			s    core.Scheme
			name string
		}{
			{core.NewStandard(l), "Standard"},
			{core.NewNoLock(), "NoLock"},
			{core.NewHLE(l), "HLE"},
			{core.NewHLESCM(l, aux, core.SCMConfig{}), "HLE-SCM"},
			{core.NewHLESCM(l, aux, core.SCMConfig{Ideal: true}), "HLE-SCM-ideal"},
			{core.NewPessimisticSLR(l), "Pes-SLR"},
			{core.NewSLR(l, 0), "Opt-SLR"},
			{core.NewSLRSCM(l, aux, core.SCMConfig{}), "Opt-SLR-SCM"},
			{core.NewHLESCMMulti(l, []locks.Lock{aux}, core.SCMConfig{}), "HLE-SCM-multi"},
		} {
			if want.s.Name() != want.name {
				t.Errorf("scheme name %q, want %q", want.s.Name(), want.name)
			}
		}
	})
}
