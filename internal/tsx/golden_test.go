package tsx_test

import (
	"flag"
	"testing"

	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/tsx"
)

// printFingerprints makes TestGoldenMachineFingerprint print the values it
// computes instead of asserting, for regenerating the constants after an
// intentional engine-behavior change:
//
//	go test ./internal/tsx -run TestGoldenMachineFingerprint -tsx.printfingerprints -v
var printFingerprints = flag.Bool("tsx.printfingerprints", false, "print machine fingerprints instead of asserting")

// fpHash accumulates an FNV-1a fingerprint.
type fpHash uint64

func newFpHash() fpHash { return 14695981039346656037 }

func (h *fpHash) mix(v uint64) {
	const prime64 = 1099511628211
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= prime64
		v >>= 8
	}
	*h = fpHash(x)
}

// mixThreads folds every observable per-thread outcome into the hash:
// final virtual clocks (a fingerprint of the schedule), transaction
// counts by outcome and cause, and committed footprints.
func (h *fpHash) mixThreads(threads []*tsx.Thread) {
	for _, t := range threads {
		h.mix(t.Clock())
		h.mix(t.Stats.Begun)
		h.mix(t.Stats.Committed)
		for _, a := range t.Stats.Aborted {
			h.mix(a)
		}
		h.mix(t.Stats.CommittedReadLines)
		h.mix(t.Stats.CommittedWriteLines)
		h.mix(t.Stats.CommittedAccesses)
	}
}

// goldenMachines are engine-level workloads whose complete observable
// outcome — schedules, abort mixes, committed footprints, final memory —
// was recorded before the direct-handoff scheduler and open-addressing
// write buffer rewrites. They must stay byte-identical: these fingerprints
// back the claim that every figure in EXPERIMENTS.md is unchanged.
var goldenMachines = []struct {
	name string
	want uint64
	run  func(t *testing.T) uint64
}{
	{
		// The paper's bread-and-butter workload: 8 threads eliding a TTAS
		// lock around a contended critical section, with conflict aborts,
		// HLE re-issues, and per-begin spurious-abort draws.
		name: "hle-ttas-counters",
		want: 0x04c2e2b231ec2834,
		run: func(tt *testing.T) uint64 {
			cfg := tsx.DefaultConfig(8)
			cfg.Seed = 42
			m := tsx.NewMachine(cfg)
			var lk locks.Lock
			var counters mem.Addr
			m.RunOne(func(t *tsx.Thread) {
				lk = locks.NewTTAS(t)
				counters = t.AllocLines(4)
			})
			threads := m.Run(8, func(t *tsx.Thread) {
				lk.Prepare(t)
				for i := 0; i < 100; i++ {
					t.HLERegion(func() {
						lk.SpecAcquire(t)
						slot := counters + mem.Addr(t.Rand().Intn(4))
						v := t.Load(slot)
						t.Work(15)
						t.Store(slot, v+1)
						lk.SpecRelease(t)
					})
				}
			})
			h := newFpHash()
			h.mixThreads(threads)
			var sum uint64
			m.RunOne(func(t *tsx.Thread) {
				for i := 0; i < 4; i++ {
					v := t.Load(counters + mem.Addr(i))
					sum += v
					h.mix(v)
				}
			})
			if sum != 800 {
				tt.Errorf("hle-ttas-counters: lost updates: sum = %d, want 800", sum)
			}
			return uint64(h)
		},
	},
	{
		// Raw RTM with a retry loop over one hot line: requestor-wins
		// conflict dooming, abort costs, and the write buffer under
		// repeated reset/reuse.
		name: "rtm-hot-line",
		want: 0xa6a31e361fc8782f,
		run: func(tt *testing.T) uint64 {
			cfg := tsx.DefaultConfig(8)
			cfg.Seed = 7
			m := tsx.NewMachine(cfg)
			var shared mem.Addr
			m.RunOne(func(t *tsx.Thread) {
				shared = t.AllocLines(8)
			})
			threads := m.Run(8, func(t *tsx.Thread) {
				for i := 0; i < 60; i++ {
					for {
						committed, _ := t.RTM(func() {
							a := shared + mem.Addr(t.Rand().Intn(8))
							v := t.Load(a)
							t.Work(10)
							t.Store(a, v+1)
						})
						if committed {
							break
						}
						t.Work(50)
					}
				}
			})
			h := newFpHash()
			h.mixThreads(threads)
			var sum uint64
			m.RunOne(func(t *tsx.Thread) {
				for i := 0; i < 8; i++ {
					v := t.Load(shared + mem.Addr(i))
					sum += v
					h.mix(v)
				}
			})
			if sum != 480 {
				tt.Errorf("rtm-hot-line: lost updates: sum = %d, want 480", sum)
			}
			return uint64(h)
		},
	},
	{
		// The Chapter 7 hardware extension: elided MCS critical sections
		// that suspend on misses while the lock is held, exercising the
		// hwext wait loop's clock advance.
		name: "hwext-mcs",
		want: 0x366aa1122f049e91,
		run: func(tt *testing.T) uint64 {
			cfg := tsx.DefaultConfig(4)
			cfg.Seed = 11
			cfg.HWExt = true
			m := tsx.NewMachine(cfg)
			var lk locks.Lock
			var counters mem.Addr
			m.RunOne(func(t *tsx.Thread) {
				lk = locks.NewMCS(t)
				counters = t.AllocLines(2)
			})
			threads := m.Run(4, func(t *tsx.Thread) {
				lk.Prepare(t)
				for i := 0; i < 80; i++ {
					t.HLERegion(func() {
						lk.SpecAcquire(t)
						slot := counters + mem.Addr(i&1)
						v := t.Load(slot)
						t.Work(8)
						t.Store(slot, v+1)
						lk.SpecRelease(t)
					})
				}
			})
			h := newFpHash()
			h.mixThreads(threads)
			var sum uint64
			m.RunOne(func(t *tsx.Thread) {
				for i := 0; i < 2; i++ {
					v := t.Load(counters + mem.Addr(i))
					sum += v
					h.mix(v)
				}
			})
			if sum != 320 {
				tt.Errorf("hwext-mcs: lost updates: sum = %d, want 320", sum)
			}
			return uint64(h)
		},
	},
}

// TestGoldenMachineFingerprint asserts engine-level outcome fingerprints
// recorded before the scheduler and write-buffer rewrites. Together with
// internal/sim's TestGoldenScheduleHash this pins "byte-identical figures"
// from both ends: the scheduler's grant sequence and the engine's
// observable results.
func TestGoldenMachineFingerprint(t *testing.T) {
	for _, g := range goldenMachines {
		got := g.run(t)
		if *printFingerprints {
			t.Logf("%-20s 0x%016x", g.name, got)
			continue
		}
		if got != g.want {
			t.Errorf("%s: machine fingerprint = 0x%016x, want 0x%016x (engine behavior changed!)", g.name, got, g.want)
		}
	}
}
