package tsx

import (
	"testing"

	"hle/internal/mem"
)

// checkNoLeakedBits asserts that every cache line's transactional metadata
// is clear — the global invariant that commit/abort cleanup must maintain.
func checkNoLeakedBits(t *testing.T, m *Machine) {
	t.Helper()
	for l := 0; l < m.Mem.NumLines(); l++ {
		lm := m.Mem.LineByIndex(l)
		if lm.Readers != 0 || lm.Writers != 0 {
			t.Fatalf("line %d leaked metadata: readers=%b writers=%b", l, lm.Readers, lm.Writers)
		}
	}
}

// TestNoLeakedLineBitsAfterChaos runs a high-conflict mixed workload —
// transactions, elisions, explicit aborts, allocation churn — and then
// verifies every line's read/write masks are clear.
func TestNoLeakedLineBitsAfterChaos(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Seed = 31
	cfg.SpuriousPerAccess = 1e-3 // plenty of mid-flight aborts
	m := NewMachine(cfg)
	var shared [4]mem.Addr
	var lock mem.Addr
	m.RunOne(func(th *Thread) {
		for i := range shared {
			shared[i] = th.AllocLines(1)
		}
		lock = th.AllocLines(1)
	})
	m.Run(8, func(th *Thread) {
		for i := 0; i < 200; i++ {
			switch th.Rand().Intn(4) {
			case 0: // RTM with conflicts and churn
				th.RTM(func() {
					c := shared[th.Rand().Intn(4)]
					th.Store(c, th.Load(c)+1)
					tmp := th.Alloc(3)
					th.Store(tmp, 1)
					th.Free(tmp, 3)
					if th.Rand().Intn(5) == 0 {
						th.Abort(7)
					}
				})
			case 1: // HLE region over the shared lock
				th.HLERegion(func() {
					if th.XAcquireSwap(lock, 1) == 0 {
						c := shared[th.Rand().Intn(4)]
						th.Store(c, th.Load(c)+1)
						th.XReleaseStore(lock, 0)
						return
					}
					th.Pause()
				})
			case 2: // plain conflicting access
				th.Store(shared[th.Rand().Intn(4)], uint64(i))
			default: // allocation churn outside transactions
				a := th.Alloc(5)
				th.Store(a, uint64(i))
				th.Free(a, 5)
			}
		}
	})
	checkNoLeakedBits(t, m)
}

// TestNoLeakedBitsAfterCapacityAborts: capacity-triggered rollbacks clear
// every touched line, including the hundreds of read lines.
func TestNoLeakedBitsAfterCapacityAborts(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Seed = 7
	cfg.SpuriousPerAccess = 0
	cfg.L1ReadLines = 16
	cfg.ReadSetLines = 64
	cfg.WriteSetLines = 16
	cfg.MemWords = 1 << 14
	m := NewMachine(cfg)
	m.Run(2, func(th *Thread) {
		arr := th.AllocLines(128 * mem.LineWords)
		for i := 0; i < 20; i++ {
			th.RTM(func() {
				for l := 0; l < 128; l++ {
					_ = th.Load(arr + mem.Addr(l*mem.LineWords))
				}
			})
			th.RTM(func() {
				for l := 0; l < 32; l++ {
					th.Store(arr+mem.Addr(l*mem.LineWords), 1)
				}
			})
		}
	})
	checkNoLeakedBits(t, m)
}

// TestHWExtNoLeakedBits: the Chapter 7 suspension path also cleans up.
func TestHWExtNoLeakedBits(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Seed = 13
	cfg.SpuriousPerAccess = 0
	cfg.HWExt = true
	m := NewMachine(cfg)
	var lock mem.Addr
	var cells [4]mem.Addr
	m.RunOne(func(th *Thread) {
		lock = th.AllocLines(1)
		for i := range cells {
			cells[i] = th.AllocLines(1)
		}
	})
	m.Run(4, func(th *Thread) {
		for i := 0; i < 100; i++ {
			if th.ID == 0 && i%5 == 0 {
				// Non-speculative lock holder.
				for th.Swap(lock, 1) == 1 {
					th.Pause()
				}
				th.Store(cells[0], uint64(i))
				th.Work(50)
				th.Store(lock, 0)
				continue
			}
			th.HLERegion(func() {
				if th.XAcquireSwap(lock, 1) != 0 {
					th.Pause()
					return
				}
				c := cells[1+th.Rand().Intn(3)]
				th.Store(c, th.Load(c)+1)
				th.XReleaseStore(lock, 0)
			})
		}
	})
	checkNoLeakedBits(t, m)
}
