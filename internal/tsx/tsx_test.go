package tsx

import (
	"testing"

	"hle/internal/mem"
)

func newTestMachine(n int, seed int64) *Machine {
	cfg := DefaultConfig(n)
	cfg.Seed = seed
	cfg.SpuriousPerAccess = 0 // deterministic tests unless opted in
	return NewMachine(cfg)
}

func TestRTMCommitPublishes(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(2)
		ok, st := th.RTM(func() {
			th.Store(a, 11)
			th.Store(a+1, 22)
		})
		if !ok {
			t.Errorf("transaction aborted: %+v", st)
		}
		if th.Load(a) != 11 || th.Load(a+1) != 22 {
			t.Error("committed values not visible")
		}
	})
}

func TestRTMAbortRollsBack(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		th.Store(a, 5)
		ok, st := th.RTM(func() {
			th.Store(a, 99)
			th.Abort(0x42)
		})
		if ok {
			t.Fatal("transaction committed despite XABORT")
		}
		if st.Cause != CauseExplicit || st.Code != 0x42 {
			t.Errorf("status = %+v, want explicit code 0x42", st)
		}
		if !st.MayRetry {
			t.Error("explicit abort should set MayRetry")
		}
		if th.Load(a) != 5 {
			t.Errorf("value = %d after abort, want 5 (rollback)", th.Load(a))
		}
	})
}

func TestRTMBufferedReadsOwnWrites(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		th.Store(a, 1)
		ok, _ := th.RTM(func() {
			th.Store(a, 7)
			if th.Load(a) != 7 {
				t.Error("transaction does not see its own write")
			}
			if got := th.FetchAdd(a, 3); got != 7 {
				t.Errorf("FetchAdd saw %d, want 7", got)
			}
			if th.Load(a) != 10 {
				t.Error("FetchAdd result not visible in tx")
			}
		})
		if !ok {
			t.Fatal("unexpected abort")
		}
		if th.Load(a) != 10 {
			t.Error("final value wrong")
		}
	})
}

func TestFlatNesting(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		ok, _ := th.RTM(func() {
			th.Store(a, 1)
			inner, _ := th.RTM(func() {
				th.Store(a, 2)
			})
			if !inner {
				t.Error("nested region reported abort")
			}
			if th.Load(a) != 2 {
				t.Error("nested write invisible")
			}
		})
		if !ok {
			t.Fatal("outer aborted")
		}
		if th.Load(a) != 2 {
			t.Error("commit lost nested write")
		}
	})
}

func TestFlatNestingAbortUnwindsAll(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		ok, st := th.RTM(func() {
			th.Store(a, 1)
			th.RTM(func() {
				th.Abort(9)
			})
			t.Error("code after aborted nested region ran")
		})
		if ok || st.Code != 9 {
			t.Errorf("outer should abort with code 9, got ok=%v st=%+v", ok, st)
		}
		if th.Load(a) != 0 {
			t.Error("outer write survived abort")
		}
	})
}

// TestRequestorWins verifies the conflict policy: a non-transactional write
// dooms a transaction holding the line in its read set; the doomed
// transaction aborts at its next access.
func TestRequestorWins(t *testing.T) {
	m := newTestMachine(2, 3)
	var a, b mem.Addr
	m.RunOne(func(th *Thread) {
		a = th.AllocLines(1)
		b = th.AllocLines(1)
	})
	aborted := false
	m.Run(2, func(th *Thread) {
		if th.ID == 0 {
			ok, st := th.RTM(func() {
				_ = th.Load(a) // line a into read set
				// Spin long enough for thread 1 to write a.
				for i := 0; i < 100; i++ {
					_ = th.Load(b)
				}
			})
			if !ok && st.Cause == CauseConflict {
				aborted = true
				if mem.LineOf(st.ConflictAddr) != mem.LineOf(a) {
					t.Errorf("conflict addr %d, want line of %d", st.ConflictAddr, a)
				}
			}
		} else {
			th.Work(100) // let thread 0 enter its transaction
			th.Store(a, 1)
		}
	})
	if !aborted {
		t.Fatal("transaction was not doomed by the conflicting write")
	}
}

// TestRequestorWinsReadDoomsWriter: an incoming read dooms a transactional
// writer of the line, and the reader observes the committed (old) value.
func TestRequestorWinsReadDoomsWriter(t *testing.T) {
	m := newTestMachine(2, 3)
	var a, b mem.Addr
	m.RunOne(func(th *Thread) {
		a = th.AllocLines(1)
		b = th.AllocLines(1)
		th.Store(a, 7)
	})
	var sawValue uint64
	writerAborted := false
	m.Run(2, func(th *Thread) {
		if th.ID == 0 {
			ok, st := th.RTM(func() {
				th.Store(a, 99)
				for i := 0; i < 100; i++ {
					_ = th.Load(b)
				}
			})
			if !ok && st.Cause == CauseConflict {
				writerAborted = true
			}
		} else {
			th.Work(100)
			sawValue = th.Load(a)
		}
	})
	if !writerAborted {
		t.Fatal("writer transaction was not doomed by the read")
	}
	if sawValue != 7 {
		t.Errorf("reader saw %d, want committed value 7", sawValue)
	}
}

// TestNoLostUpdates: concurrent transactional increments with a retry loop
// must be serializable.
func TestNoLostUpdates(t *testing.T) {
	m := newTestMachine(8, 11)
	var ctr mem.Addr
	m.RunOne(func(th *Thread) { ctr = th.AllocLines(1) })
	const perThread = 200
	m.Run(8, func(th *Thread) {
		for i := 0; i < perThread; i++ {
			for {
				ok, _ := th.RTM(func() {
					v := th.Load(ctr)
					th.Work(5)
					th.Store(ctr, v+1)
				})
				if ok {
					break
				}
			}
		}
	})
	var got uint64
	m.RunOne(func(th *Thread) { got = th.Load(ctr) })
	if got != 8*perThread {
		t.Fatalf("counter = %d, want %d (lost updates)", got, 8*perThread)
	}
}

func TestWriteCapacityAbort(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.WriteSetLines = 16
	cfg.MemWords = 1 << 12
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		big := th.Alloc(17 * mem.LineWords)
		ok, st := th.RTM(func() {
			for i := 0; i < 17; i++ {
				th.Store(big+mem.Addr(i*mem.LineWords), 1)
			}
		})
		if ok {
			t.Fatal("expected capacity abort")
		}
		if st.Cause != CauseCapacityWrite {
			t.Errorf("cause = %v, want capacity-write", st.Cause)
		}
		if st.MayRetry {
			t.Error("capacity abort must clear MayRetry")
		}
		// Under the capacity limit the same transaction commits.
		ok, _ = th.RTM(func() {
			for i := 0; i < 15; i++ {
				th.Store(big+mem.Addr(i*mem.LineWords), 1)
			}
		})
		if !ok {
			t.Error("within-capacity transaction aborted")
		}
	})
}

func TestReadCapacityLargerThanWrite(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.WriteSetLines = 16
	cfg.L1ReadLines = 16
	cfg.ReadSetLines = 4096
	cfg.MemWords = 1 << 16
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		big := th.Alloc(200 * mem.LineWords)
		// 200 read lines: beyond L1 but within the secondary tracker;
		// should (almost always at this size) succeed.
		ok, st := th.RTM(func() {
			for i := 0; i < 200; i++ {
				_ = th.Load(big + mem.Addr(i*mem.LineWords))
			}
		})
		if !ok {
			t.Fatalf("read-heavy transaction aborted: %+v", st)
		}
	})
}

func TestReadHardCapAborts(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.L1ReadLines = 8
	cfg.ReadSetLines = 32
	cfg.MemWords = 1 << 12
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		big := th.Alloc(64 * mem.LineWords)
		ok, st := th.RTM(func() {
			for i := 0; i < 64; i++ {
				_ = th.Load(big + mem.Addr(i*mem.LineWords))
			}
		})
		if ok {
			t.Fatal("expected read-capacity abort")
		}
		if st.Cause != CauseCapacityRead {
			t.Errorf("cause = %v, want capacity-read", st.Cause)
		}
	})
}

func TestSpuriousAborts(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0.01
	cfg.Seed = 5
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		aborts := 0
		for i := 0; i < 500; i++ {
			ok, st := th.RTM(func() {
				for j := 0; j < 50; j++ {
					th.Work(1)
					_ = th.Load(mem.Addr(mem.LineWords))
				}
			})
			if !ok {
				if st.Cause != CauseSpurious {
					t.Fatalf("unexpected cause %v", st.Cause)
				}
				aborts++
			}
		}
		// P(abort) ≈ 1-(1-0.01)^50 ≈ 0.39; 500 trials should see many.
		if aborts < 50 {
			t.Errorf("only %d spurious aborts in 500 conflict-free txs", aborts)
		}
	})
}

func TestPauseAbortsTransaction(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		ok, st := th.RTM(func() {
			th.Pause()
		})
		if ok || st.Cause != CausePause {
			t.Errorf("ok=%v cause=%v, want pause abort", ok, st.Cause)
		}
		// Outside a transaction PAUSE is harmless.
		th.Pause()
	})
}

func TestAllocRollback(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		before := th.Memory().WordsInUse()
		var inTx mem.Addr
		th.RTM(func() {
			inTx = th.Alloc(4)
			th.Store(inTx, 42)
			th.Abort(1)
		})
		// The aborted allocation must be reusable.
		again := th.Alloc(4)
		if again != inTx {
			t.Errorf("aborted allocation not recycled: got %d want %d", again, inTx)
		}
		if th.Load(again) == 42 {
			t.Error("aborted transactional store leaked into recycled block")
		}
		_ = before
	})
}

func TestFreeDeferredToCommit(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.Alloc(4)
		// Abort: the free must not happen.
		th.RTM(func() {
			th.Free(a, 4)
			th.Abort(1)
		})
		b := th.Alloc(4)
		if b == a {
			t.Fatal("free applied despite abort")
		}
		// Commit: the free must happen.
		ok, _ := th.RTM(func() { th.Free(a, 4) })
		if !ok {
			t.Fatal("unexpected abort")
		}
		c := th.Alloc(4)
		if c != a {
			t.Fatalf("committed free not applied: got %d want %d", c, a)
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	m := newTestMachine(1, 1)
	ths := m.Run(1, func(th *Thread) {
		th.RTM(func() {})              // commit
		th.RTM(func() { th.Abort(1) }) // abort
		th.RTM(func() {})              // commit
	})
	s := ths[0].Stats
	if s.Begun != 3 || s.Committed != 2 || s.Aborted[CauseExplicit] != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalAborts() != 1 {
		t.Errorf("TotalAborts = %d", s.TotalAborts())
	}
}

func TestThreadFinishingInTxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unterminated transaction")
		}
	}()
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		th.beginTx()
	})
}
