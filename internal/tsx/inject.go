package tsx

import "hle/internal/mem"

// Injector is the fault-injection interface consulted by the engine's hot
// paths when one is installed (Config.Injector / Machine.SetInjector). The
// chaos engine in internal/chaos implements it; tests may supply their own.
//
// Implementations MUST be deterministic: every decision must be a pure
// function of the arguments plus the injector's own explicit state. They
// must not consult host time or host randomness, and they must not touch
// simulated memory — simulated execution is token-serialized, so calls
// arrive one at a time, but a decision that depended on anything outside
// the virtual machine would break seed-reproducibility.
type Injector interface {
	// Access is consulted once per simulated memory access, before the
	// access touches any shared line state. line is the cache-line index,
	// write reports whether the access issues an RFO, and inTx whether
	// the thread is executing transactionally. A non-zero stall advances
	// the thread's clock by exactly that many cycles (lock-holder
	// preemption, NIC interrupts, ...); abort=true additionally aborts
	// the current transaction as a spurious abort (ignored outside a
	// transaction).
	Access(threadID int, clock uint64, line int, write, inTx bool) (stall uint64, abort bool)

	// WriteCap may lower the effective write-set capacity for the access
	// about to be checked (a transient L1 squeeze, e.g. from a sibling
	// hyperthread). It receives the configured limit and returns the
	// limit to enforce; returning limit unchanged injects nothing.
	WriteCap(threadID int, clock uint64, limit int) int

	// Grant may skew the scheduler's randomized grant slice (see
	// sim.Config.Grant). Returning slice unchanged injects nothing.
	Grant(procID int, clock, slice uint64) uint64
}

// SetInjector installs (or with nil removes) a fault injector for subsequent
// Run calls. With no injector installed the engine's behavior and output are
// byte-identical to a build without injection hooks.
func (m *Machine) SetInjector(inj Injector) {
	if m.threads != nil {
		panic("tsx: SetInjector while the machine is running")
	}
	m.cfg.Injector = inj
}

// SetWatchdog installs (or with nil removes) a liveness watchdog consulted
// by the scheduler before every grant with the minimum virtual clock in the
// machine (see sim.Config.Watchdog). When the watchdog returns true the run
// stops: every unfinished thread unwinds, Run returns normally, and
// Machine.Stopped reports true. A stopped machine's simulated state is torn
// (open transactions, un-flushed allocator caches) and is only good for
// diagnostics — discard it after reading the trace ring and thread state.
func (m *Machine) SetWatchdog(wd func(minClock uint64) bool) {
	if m.threads != nil {
		panic("tsx: SetWatchdog while the machine is running")
	}
	m.watchdog = wd
}

// Stopped reports whether the previous Run was stopped by the watchdog.
func (m *Machine) Stopped() bool { return m.stopped }

// inject consults the installed injector for an access to line. It runs
// before the access touches shared line state, so an injected stall (which
// may yield the scheduler token) is equivalent to the access simply issuing
// later, and an injected abort unwinds before the access registers anywhere.
func (t *Thread) inject(line int, write bool) {
	inj := t.m.cfg.Injector
	if inj == nil {
		return
	}
	stall, abort := inj.Access(t.ID, t.Clock(), line, write, t.tx != nil)
	if stall > 0 {
		t.ringAdd(EvInjStall, mem.LineAddr(line), stall)
		// Raw Proc.Step, not Thread.Step: injected delays are exact,
		// not subject to cost jitter.
		t.Proc.Step(stall)
	}
	if abort && t.tx != nil {
		t.ringAdd(EvInjAbort, mem.LineAddr(line), 0)
		// The program observes an injected abort as spurious (same Cause,
		// same Status); the flag lets profiles attribute it separately.
		t.tx.injected = true
		t.abortNow(CauseSpurious, 0)
	}
}
