package tsx

import "hle/internal/mem"

// writeBuf is the transactional store buffer: an open-addressing hash table
// from word address to buffered value, replacing the Go map the engine
// started with. Under profiling the map probe on every transactional
// Load/Store was the engine's hottest instruction sequence; the observed
// common case is fewer than 32 distinct words written per transaction, so a
// fixed 64-slot table at ≤50% load answers almost every probe in one
// comparison, growing (rarely) for larger write sets.
//
// Slots are invalidated in O(1) at transaction reset by bumping a table
// epoch instead of clearing: a slot belongs to the current transaction only
// if its epoch matches. The table never shrinks — like the map it replaces,
// it stays at the high-water mark of its pooled txState.
type writeBuf struct {
	keys   []mem.Addr
	vals   []uint64
	epochs []uint32
	epoch  uint32
	// shift positions the multiplicative hash's high bits for the current
	// table size: index = (a * phi64) >> shift, with shift = 64 - log2(cap).
	shift uint8
	n     int
}

// writeBufInitCap is the initial table capacity; must be a power of two
// at least twice the common-case write-set size.
const writeBufInitCap = 64

// phi64 is 2^64 / the golden ratio, the standard Fibonacci-hashing
// multiplier: consecutive addresses (the norm for word-granular writes to
// adjacent fields) scatter to well-separated slots.
const phi64 = 0x9e3779b97f4a7c15

func (w *writeBuf) init() {
	w.keys = make([]mem.Addr, writeBufInitCap)
	w.vals = make([]uint64, writeBufInitCap)
	w.epochs = make([]uint32, writeBufInitCap)
	w.epoch = 1
	w.shift = 64 - 6 // log2(writeBufInitCap) == 6
}

// reset invalidates every buffered entry in O(1).
func (w *writeBuf) reset() {
	w.n = 0
	w.epoch++
	if w.epoch == 0 { // epoch wrapped: stale slots could alias; clear for real
		clear(w.epochs)
		w.epoch = 1
	}
}

// get returns the buffered value for a, if any.
func (w *writeBuf) get(a mem.Addr) (uint64, bool) {
	if w.n == 0 {
		return 0, false
	}
	mask := uint32(len(w.keys) - 1)
	i := uint32(uint64(a) * phi64 >> w.shift)
	for {
		if w.epochs[i] != w.epoch {
			return 0, false
		}
		if w.keys[i] == a {
			return w.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// put buffers v for a, reporting whether a is new to this transaction's
// write set (the caller appends new addresses to its publication order).
func (w *writeBuf) put(a mem.Addr, v uint64) bool {
	mask := uint32(len(w.keys) - 1)
	i := uint32(uint64(a) * phi64 >> w.shift)
	for w.epochs[i] == w.epoch {
		if w.keys[i] == a {
			w.vals[i] = v
			return false
		}
		i = (i + 1) & mask
	}
	w.keys[i] = a
	w.vals[i] = v
	w.epochs[i] = w.epoch
	w.n++
	if w.n*2 >= len(w.keys) {
		w.grow()
	}
	return true
}

// grow doubles the table, rehashing the current transaction's entries.
func (w *writeBuf) grow() {
	oldKeys, oldVals, oldEpochs, oldEpoch := w.keys, w.vals, w.epochs, w.epoch
	size := len(oldKeys) * 2
	w.keys = make([]mem.Addr, size)
	w.vals = make([]uint64, size)
	w.epochs = make([]uint32, size)
	w.epoch = 1
	w.shift--
	mask := uint32(size - 1)
	for j, e := range oldEpochs {
		if e != oldEpoch {
			continue
		}
		a := oldKeys[j]
		i := uint32(uint64(a) * phi64 >> w.shift)
		for w.epochs[i] == w.epoch {
			i = (i + 1) & mask
		}
		w.keys[i] = a
		w.vals[i] = oldVals[j]
		w.epochs[i] = w.epoch
	}
}
