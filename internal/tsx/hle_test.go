package tsx

import (
	"testing"
	"testing/quick"

	"hle/internal/mem"
)

// TestHLEElisionBasics: an elided acquire/release pair commits without ever
// writing the lock, while giving the transaction the illusion it did.
func TestHLEElisionBasics(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		data := th.AllocLines(1)
		th.HLERegion(func() {
			if got := th.XAcquireSwap(lock, 1); got != 0 {
				t.Fatalf("elided swap observed %d, want 0", got)
			}
			if !th.InElision() {
				t.Fatal("not in elision after XAcquireSwap")
			}
			if th.Load(lock) != 1 {
				t.Error("illusion broken: lock reads free inside elision")
			}
			th.Store(data, 42)
			th.XReleaseStore(lock, 0)
			if th.InTx() {
				t.Error("transaction still open after XRelease")
			}
		})
		if th.Load(lock) != 0 {
			t.Error("lock was actually written")
		}
		if th.Load(data) != 42 {
			t.Error("elided critical section's data write lost")
		}
	})
}

// TestHLERestoreRule: an XRELEASE that does not restore the lock value
// aborts the elision (CauseHLERestore), and the subsequent re-issue runs
// non-transactionally.
func TestHLERestoreRule(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		attempts := 0
		th.HLERegion(func() {
			attempts++
			th.XAcquireStore(lock, 1)
			if th.InElision() {
				// Break the restore rule on purpose.
				th.XReleaseStore(lock, 7)
				t.Error("restore-rule violation did not abort")
				return
			}
			// Re-issued path: the store really happened.
			if th.Load(lock) != 1 {
				t.Error("re-issued XAcquireStore did not store")
			}
			th.XReleaseStore(lock, 0)
		})
		if attempts != 2 {
			t.Fatalf("attempts = %d, want 2 (one elided+aborted, one real)", attempts)
		}
		if th.Stats.Aborted[CauseHLERestore] != 1 {
			t.Fatalf("restore aborts = %d", th.Stats.Aborted[CauseHLERestore])
		}
	})
}

// TestReissueSemantics: after an abort the very next XAcquire executes
// non-transactionally, but later XAcquires elide again — Chapter 3's TTAS
// recovery depends on exactly this.
func TestReissueSemantics(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		phase := 0
		th.HLERegion(func() {
			switch phase {
			case 0:
				phase = 1
				th.XAcquireStore(lock, 1)
				th.Abort(1) // force an abort mid-elision
			case 1:
				phase = 2
				if !th.ReissuePending() {
					t.Error("re-issue not pending after abort")
				}
				th.XAcquireStore(lock, 1) // executes for real
				if th.InTx() {
					t.Error("re-issued store started a transaction")
				}
				if th.Load(lock) != 1 {
					t.Error("re-issued store did not write")
				}
				th.XReleaseStore(lock, 0) // plain store
			}
		})
		if th.Load(lock) != 0 {
			t.Error("lock not released")
		}
		// A later region elides again (suppression was consumed).
		th.HLERegion(func() {
			th.XAcquireStore(lock, 1)
			if !th.InElision() {
				t.Error("subsequent region did not elide")
			}
			th.XReleaseStore(lock, 0)
		})
	})
}

// TestXAcquireCASFailureDoesNotElide: a failing XAcquireCAS performs no
// store, so no transaction starts.
func TestXAcquireCASFailureDoesNotElide(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		th.Store(lock, 9)
		if th.XAcquireCAS(lock, 0, 1) {
			t.Fatal("CAS against wrong value succeeded")
		}
		if th.InTx() {
			t.Fatal("failing XAcquireCAS started a transaction")
		}
		if !th.XAcquireCAS(lock, 9, 1) {
			t.Fatal("matching XAcquireCAS failed")
		}
		if !th.InElision() {
			t.Fatal("successful XAcquireCAS did not elide")
		}
		th.XReleaseStore(lock, 9)
	})
}

// TestNestHLEInRTM: with nesting enabled (Algorithm 3 verbatim), an
// XACQUIRE inside an RTM region begins an elision whose XRELEASE ends the
// elision but defers the commit to the outer XEND.
func TestNestHLEInRTM(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.NestHLEInRTM = true
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		data := th.AllocLines(1)
		ok, st := th.RTM(func() {
			old := th.XAcquireSwap(lock, 1)
			if old != 0 {
				t.Errorf("nested elision observed lock=%d", old)
			}
			if th.Load(lock) != 1 {
				t.Error("nested elision illusion broken")
			}
			th.Store(data, 5)
			if !th.XReleaseCAS(lock, 1, 0) {
				t.Error("nested XReleaseCAS failed")
			}
			if !th.InTx() {
				t.Error("outer RTM region ended at nested XRelease")
			}
			if th.Load(lock) != 0 {
				t.Error("lock still reads held after elision ended")
			}
		})
		if !ok {
			t.Fatalf("outer region aborted: %+v", st)
		}
		if th.Load(lock) != 0 || th.Load(data) != 5 {
			t.Error("final state wrong")
		}
	})
}

// TestHaswellIgnoresNestedXAcquire: without nesting support the prefix is
// ignored and the store executes transactionally, really writing the lock
// at commit — the behaviour that forced the paper's implementation remark.
func TestHaswellIgnoresNestedXAcquire(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		ok, _ := th.RTM(func() {
			th.XAcquireStore(lock, 1) // plain transactional store
			if th.InElision() {
				t.Error("elision started inside RTM on a non-nesting machine")
			}
		})
		if !ok {
			t.Fatal("transaction aborted")
		}
		if th.Load(lock) != 1 {
			t.Error("ignored-prefix store was not published")
		}
	})
}

// TestElidedLockWrittenAsData: a critical section that also stores to the
// elided lock word keeps transactional semantics (the corner case the
// engine handles by moving the lock line into the write set).
func TestElidedLockWrittenAsData(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		th.HLERegion(func() {
			th.XAcquireStore(lock, 1)
			th.Store(lock, 5) // data write to the lock word
			if th.Load(lock) != 5 {
				t.Error("data write to lock not visible in tx")
			}
			th.XReleaseStore(lock, 0) // restores the original value
		})
		if th.Load(lock) != 0 {
			t.Errorf("lock = %d after elided region, want 0", th.Load(lock))
		}
	})
}

// TestFreeCacheThreadLocal: a block freed by one thread is not immediately
// handed to another thread (jemalloc-style tcache behaviour), but is
// available globally after the run.
func TestFreeCacheThreadLocal(t *testing.T) {
	m := newTestMachine(2, 1)
	var freed mem.Addr
	m.RunOne(func(th *Thread) {
		freed = th.Alloc(4)
	})
	var otherGot mem.Addr
	m.Run(2, func(th *Thread) {
		if th.ID == 0 {
			th.Free(freed, 4)
			th.Work(1000)
		} else {
			th.Work(100) // run after the free
			otherGot = th.Alloc(4)
		}
	})
	if otherGot == freed {
		t.Error("cross-thread immediate reuse (tcache should prevent this)")
	}
	// After the run, caches were flushed to the global allocator.
	var later mem.Addr
	m.RunOne(func(th *Thread) { later = th.Alloc(4) })
	if later != freed {
		t.Errorf("flushed block not reused: got %d want %d", later, freed)
	}
}

// TestSerializabilityProperty: random transactional histories over a small
// array remain serializable — the per-cell sums written transactionally
// always equal a global transactional counter.
func TestSerializabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := newTestMachine(4, seed)
		var cells [4]mem.Addr
		var total mem.Addr
		m.RunOne(func(th *Thread) {
			for i := range cells {
				cells[i] = th.AllocLines(1)
			}
			total = th.AllocLines(1)
		})
		m.Run(4, func(th *Thread) {
			for i := 0; i < 50; i++ {
				c := cells[th.Rand().Intn(len(cells))]
				for {
					ok, _ := th.RTM(func() {
						th.Store(c, th.Load(c)+1)
						th.Work(uint64(th.Rand().Intn(8)))
						th.Store(total, th.Load(total)+1)
					})
					if ok {
						break
					}
				}
			}
		})
		good := true
		m.RunOne(func(th *Thread) {
			var sum uint64
			for _, c := range cells {
				sum += th.Load(c)
			}
			good = sum == th.Load(total) && sum == 200
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCostJitterZeroExactClocks: disabling jitter gives exact, analyzable
// clock arithmetic.
func TestCostJitterZeroExactClocks(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.CostJitter = -1 // disable
	m := NewMachine(cfg)
	ths := m.Run(1, func(th *Thread) {
		start := th.Clock()
		th.Work(100)
		if th.Clock()-start != 100 {
			t.Errorf("jitter-free Work(100) advanced %d", th.Clock()-start)
		}
	})
	_ = ths
}

// TestEvictionCalibration: read-only transactions around the calibrated
// knee show a rising failure probability; far below they almost always
// succeed and far above they almost always fail.
func TestEvictionCalibration(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.L1ReadLines = 64
	cfg.ReadSetLines = 1024
	cfg.MemWords = 1 << 16
	m := NewMachine(cfg)
	failureRate := func(lines, reps int) float64 {
		fails := 0
		m.RunOne(func(th *Thread) {
			arr := th.AllocLines(lines * mem.LineWords)
			for i := 0; i < reps; i++ {
				ok, _ := th.RTM(func() {
					for l := 0; l < lines; l++ {
						_ = th.Load(arr + mem.Addr(l*mem.LineWords))
					}
				})
				if !ok {
					fails++
				}
			}
		})
		return float64(fails) / float64(reps)
	}
	if r := failureRate(32, 100); r > 0.05 {
		t.Errorf("within-L1 reads fail at rate %.2f", r)
	}
	if r := failureRate(1024, 50); r < 0.95 {
		t.Errorf("at-capacity reads only fail at rate %.2f", r)
	}
}

// TestTraceHook: the debug trace hook observes loads and stores.
func TestTraceHook(t *testing.T) {
	m := newTestMachine(1, 1)
	var events []string
	Trace = func(id int, ev string, a mem.Addr, v uint64) {
		events = append(events, ev)
	}
	defer func() { Trace = nil }()
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		th.Store(a, 1)
		_ = th.Load(a)
	})
	if len(events) == 0 {
		t.Fatal("trace hook saw nothing")
	}
}
