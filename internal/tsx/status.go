package tsx

import "hle/internal/mem"

// Cause classifies why a transaction aborted, mirroring the abort-status
// information the RTM interface writes to EAX (plus simulator-internal
// causes).
type Cause uint8

// Abort causes.
const (
	// CauseNone means the transaction did not abort.
	CauseNone Cause = iota
	// CauseConflict is a data conflict detected through the (simulated)
	// cache-coherence protocol; requestor wins, the detecting
	// transaction aborts.
	CauseConflict
	// CauseCapacityWrite is a write-set overflow (more than
	// Config.WriteSetLines distinct lines written).
	CauseCapacityWrite
	// CauseCapacityRead is a read-set overflow or an eviction from the
	// imprecise read-set tracker.
	CauseCapacityRead
	// CauseExplicit is a software XABORT.
	CauseExplicit
	// CauseSpurious is an abort not explained by conflicts or capacity,
	// which §2.2 observes on real Haswell even in conflict-free runs.
	CauseSpurious
	// CausePause is a PAUSE instruction executed transactionally.
	CausePause
	// CauseHLERestore is an XRELEASE store that failed to restore the
	// elided lock to its pre-XACQUIRE value.
	CauseHLERestore
	// CauseNested is an unsupported nesting combination.
	CauseNested
	// CauseSubscription is a commit-time lock-subscription failure under
	// lazy subscription: the deferred lock check found the elided lock
	// held (or the registered subscription predicate false), so the
	// transaction must be discarded instead of published.
	CauseSubscription

	numCauses = int(CauseSubscription) + 1
)

// String returns a short human-readable name for the cause.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseConflict:
		return "conflict"
	case CauseCapacityWrite:
		return "capacity-write"
	case CauseCapacityRead:
		return "capacity-read"
	case CauseExplicit:
		return "explicit"
	case CauseSpurious:
		return "spurious"
	case CausePause:
		return "pause"
	case CauseHLERestore:
		return "hle-restore"
	case CauseNested:
		return "nested"
	case CauseSubscription:
		return "subscription"
	}
	return "unknown"
}

// Status is the abort status delivered to RTM fallback code. It corresponds
// to the EAX abort-status register, extended with the conflict address — the
// "abort information provided by the hardware" that the paper's future-work
// section proposes exploiting.
type Status struct {
	// Cause is the primary abort cause.
	Cause Cause
	// Code is the XABORT immediate operand, valid when Cause is
	// CauseExplicit.
	Code uint8
	// MayRetry indicates the abort is transient (conflicts, spurious and
	// pause aborts), analogous to the EAX retry bit. Capacity aborts
	// clear it.
	MayRetry bool
	// ConflictAddr is the first word of the conflicting cache line,
	// valid when Cause is CauseConflict.
	ConflictAddr mem.Addr
}

// statusFor derives the fallback-visible Status from a finished txState.
func statusFor(tx *txState) Status {
	st := Status{Cause: tx.abortCause, Code: tx.abortCode}
	switch tx.abortCause {
	case CauseConflict, CauseSpurious, CausePause, CauseExplicit, CauseSubscription:
		// A subscription failure is transient like a conflict: the lock
		// holder will release, so retrying speculatively is sensible.
		st.MayRetry = true
	}
	if tx.abortCause == CauseConflict {
		st.ConflictAddr = mem.LineAddr(tx.conflictLine)
	}
	return st
}

// txAbortSignal is the panic value used to unwind a simulated rollback.
// The abort details live in the thread's txState.
type txAbortSignal struct{}
