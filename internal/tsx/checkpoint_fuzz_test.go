package tsx

import (
	"testing"

	"hle/internal/mem"
)

// fuzzProgram interprets fuzz bytes as a straight-line program of
// transactional and plain operations over a small set of lines, two bytes
// per step. Every opcode is total — no input can drive the machine into a
// usage panic — so the fuzzer explores abort, rollback, elision and
// fallback paths rather than API misuse.
func fuzzProgram(t *Thread, base mem.Addr, prog []byte) {
	const lines = 4
	addr := func(b byte) mem.Addr {
		return base + mem.Addr(b%lines)*mem.LineWords
	}
	for i := 0; i+1 < len(prog); i += 2 {
		op, arg := prog[i], prog[i+1]
		switch op % 8 {
		case 0:
			t.Load(addr(arg))
		case 1:
			t.Store(addr(arg), uint64(arg))
		case 2:
			t.FetchAdd(addr(arg), uint64(arg%5))
		case 3:
			t.CAS(addr(arg), uint64(arg), uint64(op))
		case 4:
			// An elided critical section over one of the lines, with a
			// couple of accesses inside; spurious aborts (seeded from the
			// fuzz input) exercise the re-issue path.
			l := addr(arg)
			t.HLERegion(func() {
				t.XAcquireCAS(l, 0, 1)
				t.Store(l+1, uint64(arg))
				t.Load(l + 2)
				t.XReleaseStore(l, 0)
			})
		case 5:
			// An RTM region with an explicit abort on some inputs.
			t.RTM(func() {
				t.Store(addr(arg), uint64(op))
				if arg%3 == 0 {
					t.Abort(arg)
				}
				t.Load(addr(arg + 1))
			})
		case 6:
			// A fetch-add-acquired elided region; the release restores
			// the observed pre-acquire value, so it commits when
			// speculation survives and stays total when it does not.
			l := addr(arg)
			t.HLERegion(func() {
				old := t.XAcquireFetchAdd(l, 1)
				t.Load(l + 1)
				t.XReleaseStore(l, old)
			})
		case 7:
			t.Load(addr(arg ^ op))
		}
	}
}

// FuzzCheckpointFork drives the checkpoint/fork contract with arbitrary
// operation mixes and injected (spurious-abort) faults: running a prefix,
// checkpointing, and forking a child that runs the suffix must leave the
// child's simulated memory bit-identical to a single machine that ran
// prefix and suffix back to back — and must leave the checkpointed parent
// untouched.
func FuzzCheckpointFork(f *testing.F) {
	f.Add(int64(1), uint8(0), []byte{0, 0, 1, 1}, []byte{2, 3})
	f.Add(int64(7), uint8(40), []byte{4, 0, 4, 1, 5, 3}, []byte{4, 2, 6, 0})
	f.Add(int64(42), uint8(200), []byte{5, 0, 5, 3, 5, 6, 1, 9}, []byte{5, 1, 4, 4, 0, 7})
	f.Fuzz(func(t *testing.T, seed int64, spurious uint8, prefix, suffix []byte) {
		if len(prefix) > 256 || len(suffix) > 256 {
			t.Skip("program longer than the paths worth exploring")
		}
		cfg := DefaultConfig(1)
		cfg.Seed = seed
		cfg.SpuriousPerAccess = float64(spurious) / 1024
		build := func() (*Machine, mem.Addr) {
			m := NewMachine(cfg)
			var base mem.Addr
			m.RunOne(func(th *Thread) {
				base = th.AllocLines(8)
				th.Store(base, 1)
			})
			return m, base
		}

		// Forked life: prefix on the parent, checkpoint, suffix on a child.
		parent, base := build()
		parent.RunOne(func(th *Thread) { fuzzProgram(th, base, prefix) })
		cp := parent.Checkpoint()
		parentFp := templateFingerprint(parent)
		child := FromCheckpoint(cp)
		child.RunOne(func(th *Thread) { fuzzProgram(th, base, suffix) })

		// Single life: the same two runs on one machine, no checkpoint.
		scratch, base2 := build()
		if base != base2 {
			t.Fatalf("allocator nondeterminism: base %d vs %d", base, base2)
		}
		scratch.RunOne(func(th *Thread) { fuzzProgram(th, base, prefix) })
		scratch.RunOne(func(th *Thread) { fuzzProgram(th, base, suffix) })

		if got, want := templateFingerprint(child), templateFingerprint(scratch); got != want {
			t.Errorf("forked child diverged from scratch execution: %#x vs %#x", got, want)
		}
		if after := templateFingerprint(parent); after != parentFp {
			t.Errorf("running the child mutated the checkpointed parent: %#x vs %#x", after, parentFp)
		}

		// A second fork from the same checkpoint must repeat the first
		// bit for bit: checkpoints are immutable and multi-fork.
		again := FromCheckpoint(cp)
		again.RunOne(func(th *Thread) { fuzzProgram(th, base, suffix) })
		if got, want := templateFingerprint(again), templateFingerprint(child); got != want {
			t.Errorf("second fork of the same checkpoint diverged: %#x vs %#x", got, want)
		}
	})
}
