package tsx

import (
	"reflect"
	"sync"
	"testing"

	"hle/internal/mem"
)

// testInjector is a scriptable Injector for unit tests.
type testInjector struct {
	access   func(id int, clock uint64, line int, write, inTx bool) (uint64, bool)
	writeCap func(id int, clock uint64, limit int) int
	grant    func(id int, clock, slice uint64) uint64

	accesses int
}

func (i *testInjector) Access(id int, clock uint64, line int, write, inTx bool) (uint64, bool) {
	i.accesses++
	if i.access == nil {
		return 0, false
	}
	return i.access(id, clock, line, write, inTx)
}

func (i *testInjector) WriteCap(id int, clock uint64, limit int) int {
	if i.writeCap == nil {
		return limit
	}
	return i.writeCap(id, clock, limit)
}

func (i *testInjector) Grant(id int, clock, slice uint64) uint64 {
	if i.grant == nil {
		return slice
	}
	return i.grant(id, clock, slice)
}

// contendedRun exercises a small shared counter from n threads under RTM
// with a CAS fallback, returning the final counter value and thread stats.
func contendedRun(m *Machine, n, incs int) (uint64, []Stats) {
	var ctr mem.Addr
	m.RunOne(func(th *Thread) { ctr = th.AllocLines(1) })
	threads := m.Run(n, func(th *Thread) {
		for i := 0; i < incs; i++ {
			ok, _ := th.RTM(func() {
				th.Store(ctr, th.Load(ctr)+1)
			})
			if !ok {
				for {
					old := th.Load(ctr)
					if th.CAS(ctr, old, old+1) {
						break
					}
					th.Pause()
				}
			}
		}
	})
	stats := make([]Stats, n)
	var v uint64
	m.RunOne(func(th *Thread) { v = th.Load(ctr) })
	for i, th := range threads {
		stats[i] = th.Stats
	}
	return v, stats
}

// TestNoopInjectorIsInvisible: installing an injector that injects nothing
// must leave the run byte-identical to a run with no injector at all.
func TestNoopInjectorIsInvisible(t *testing.T) {
	run := func(inj Injector) (uint64, []Stats) {
		m := newTestMachine(4, 7)
		m.SetInjector(inj)
		return contendedRun(m, 4, 50)
	}
	vPlain, sPlain := run(nil)
	vNoop, sNoop := run(&testInjector{})
	if vPlain != vNoop {
		t.Errorf("final value differs: %d vs %d", vPlain, vNoop)
	}
	if !reflect.DeepEqual(sPlain, sNoop) {
		t.Errorf("stats differ:\nplain: %+v\nnoop:  %+v", sPlain, sNoop)
	}
	if vPlain != 200 {
		t.Errorf("final counter = %d, want 200", vPlain)
	}
}

// TestInjectedAbortIsSpurious: an injected abort surfaces as CauseSpurious
// and rolls the transaction back completely.
func TestInjectedAbortIsSpurious(t *testing.T) {
	m := newTestMachine(1, 1)
	fired := false
	m.SetInjector(&testInjector{access: func(id int, clock uint64, line int, write, inTx bool) (uint64, bool) {
		if inTx && write && !fired {
			fired = true
			return 0, true
		}
		return 0, false
	}})
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		fired = false // Alloc's zeroing stores run non-transactionally here
		ok, st := th.RTM(func() {
			th.Store(a, 99)
		})
		if ok {
			t.Fatal("transaction committed despite injected abort")
		}
		if st.Cause != CauseSpurious {
			t.Errorf("cause = %v, want spurious", st.Cause)
		}
		if th.Load(a) != 0 {
			t.Error("injected abort did not roll back")
		}
	})
}

// TestInjectedStallAdvancesClock: a stall advances the thread's virtual
// clock by exactly the injected amount (no jitter).
func TestInjectedStallAdvancesClock(t *testing.T) {
	run := func(stall uint64) uint64 {
		cfg := DefaultConfig(1)
		cfg.SpuriousPerAccess = 0
		cfg.CostJitter = -1
		m := NewMachine(cfg)
		armed := false
		m.SetInjector(&testInjector{access: func(id int, clock uint64, line int, write, inTx bool) (uint64, bool) {
			if armed {
				armed = false
				return stall, false
			}
			return 0, false
		}})
		var clock uint64
		m.RunOne(func(th *Thread) {
			a := th.AllocLines(1)
			armed = true
			th.Load(a)
			clock = th.Clock()
		})
		return clock
	}
	base := run(0)
	stalled := run(1000)
	if stalled != base+1000 {
		t.Errorf("stalled clock = %d, want %d + 1000", stalled, base)
	}
}

// TestWriteCapSqueeze: a squeezed write-set limit converts a small
// transaction into a capacity-write abort.
func TestWriteCapSqueeze(t *testing.T) {
	m := newTestMachine(1, 1)
	squeeze := false
	m.SetInjector(&testInjector{writeCap: func(id int, clock uint64, limit int) int {
		if squeeze {
			return 2
		}
		return limit
	}})
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		b := th.AllocLines(1)
		c := th.AllocLines(1)
		squeeze = true
		ok, st := th.RTM(func() {
			th.Store(a, 1)
			th.Store(b, 2)
			th.Store(c, 3) // third distinct line: over the squeezed limit
		})
		squeeze = false
		if ok {
			t.Fatal("transaction committed despite capacity squeeze")
		}
		if st.Cause != CauseCapacityWrite {
			t.Errorf("cause = %v, want capacity-write", st.Cause)
		}
		if st.MayRetry {
			t.Error("capacity abort should clear MayRetry")
		}
	})
}

// TestTraceRingRecordsLifecycle: the ring captures begin/commit/abort with
// clocks, oldest-first, and TraceEvents returns nil when disabled.
func TestTraceRingRecordsLifecycle(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Seed = 1
	cfg.SpuriousPerAccess = 0
	cfg.TraceRing = 128
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		th.RTM(func() { th.Store(a, 1) })
		th.RTM(func() { th.Abort(1) })
	})
	evs := m.TraceEvents()
	if len(evs) == 0 {
		t.Fatal("empty trace ring")
	}
	var seq []string
	for _, ev := range evs {
		switch ev.Kind.String() {
		case "begin", "commit", "abort":
			seq = append(seq, ev.Kind.String())
		}
	}
	want := []string{"begin", "commit", "begin", "abort"}
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("lifecycle sequence = %v, want %v", seq, want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Clock < evs[i-1].Clock {
			t.Fatalf("ring not oldest-first at %d: %d after %d", i, evs[i].Clock, evs[i-1].Clock)
		}
	}

	if m2 := newTestMachine(1, 1); m2.TraceEvents() != nil {
		t.Error("TraceEvents non-nil with ring disabled")
	}
}

// TestTraceRingBoundedAndDeterministic: the ring never exceeds its
// configured size, and equal seeds give byte-identical event sequences.
func TestTraceRingBoundedAndDeterministic(t *testing.T) {
	run := func() []TraceEvent {
		cfg := DefaultConfig(4)
		cfg.Seed = 42
		cfg.TraceRing = 64
		m := NewMachine(cfg)
		contendedRun(m, 4, 50)
		return m.TraceEvents()
	}
	a, b := run(), run()
	if len(a) != 64 {
		t.Errorf("ring length = %d, want 64 (wrapped)", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("equal seeds produced different trace rings")
	}
}

// TestCloneGetsFreshRingAndNoInjector: a clone must not share its parent's
// ring, must start with an empty one, and must drop the injector.
func TestCloneGetsFreshRingAndNoInjector(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Seed = 3
	cfg.SpuriousPerAccess = 0
	cfg.TraceRing = 32
	m := NewMachine(cfg)
	m.SetInjector(&testInjector{})
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		th.RTM(func() { th.Store(a, 1) })
	})
	c := m.Clone()
	if got := c.TraceEvents(); len(got) != 0 {
		t.Errorf("clone ring has %d events, want 0", len(got))
	}
	if c.Config().Injector != nil {
		t.Error("clone kept the parent's injector")
	}
	if len(m.TraceEvents()) == 0 {
		t.Error("parent ring lost its events")
	}
	c.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		th.RTM(func() { th.Store(a, 1) })
	})
	if len(c.TraceEvents()) == 0 {
		t.Error("clone ring not recording")
	}
}

// TestWatchdogStopsMachine: a watchdog trip unwinds spinning threads,
// Machine.Stopped reports true, and the ring remains readable.
func TestWatchdogStopsMachine(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Seed = 5
	cfg.SpuriousPerAccess = 0
	cfg.TraceRing = 32
	m := NewMachine(cfg)
	var lock mem.Addr
	m.RunOne(func(th *Thread) { lock = th.AllocLines(1) })
	if m.Stopped() {
		t.Fatal("Stopped true before any watchdog run")
	}
	m.SetWatchdog(func(minClock uint64) bool { return minClock > 50_000 })
	threads := m.Run(2, func(th *Thread) {
		for { // both threads spin on a "lock" that is never released
			if th.CAS(lock, 0, uint64(th.ID)+1) {
				// Neither thread ever stores 0 back, so thread 2 spins
				// forever and thread 1 spins on the loop below.
				for {
					th.Pause()
				}
			}
			th.Pause()
		}
	})
	if !m.Stopped() {
		t.Fatal("machine not marked stopped")
	}
	for _, th := range threads {
		if !th.Stopped() {
			t.Errorf("thread %d not stopped", th.ID)
		}
	}
	if len(m.TraceEvents()) == 0 {
		t.Error("no trace events recorded before the stop")
	}

	// A later fault-free run on a fresh machine must clear nothing it
	// shouldn't: Stopped is per-Run state.
	m.SetWatchdog(nil)
	m2 := newTestMachine(1, 1)
	m2.RunOne(func(th *Thread) { th.Work(1) })
	if m2.Stopped() {
		t.Error("fresh machine reports stopped")
	}
}

// TestTraceRingsIndependentAcrossMachines: machines running concurrently on
// host goroutines (the harness pool pattern) each record to their own ring.
// Run under -race this also proves the dump path is data-race free.
func TestTraceRingsIndependentAcrossMachines(t *testing.T) {
	const workers = 4
	rings := make([][]TraceEvent, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := DefaultConfig(2)
			cfg.Seed = 9 // same seed: rings must come out identical
			cfg.TraceRing = 64
			m := NewMachine(cfg)
			contendedRun(m, 2, 40)
			rings[w] = m.TraceEvents()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(rings[0], rings[w]) {
			t.Fatalf("worker %d ring differs from worker 0", w)
		}
	}
}
