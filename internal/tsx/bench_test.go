package tsx

import (
	"testing"

	"hle/internal/mem"
)

// benchMachine builds a 1-thread machine with the noise sources disabled,
// so benchmarks measure engine mechanics rather than RNG draws.
func benchMachine() *Machine {
	cfg := DefaultConfig(1)
	cfg.CostJitter = -1
	cfg.SpuriousPerAccess = 0
	cfg.MaxTxAccesses = 1 << 40
	return NewMachine(cfg)
}

// BenchmarkTxLoadStore measures the transactional access hot path: a
// store+load pair to a small working set inside one long transaction —
// write-buffer insert, buffered-load hit, read/write-set membership checks.
func BenchmarkTxLoadStore(b *testing.B) {
	m := benchMachine()
	m.RunOne(func(t *Thread) {
		base := t.Alloc(256)
		b.ResetTimer()
		committed, st := t.RTM(func() {
			for i := 0; i < b.N; i++ {
				a := base + mem.Addr((i*7)&255)
				t.Store(a, uint64(i))
				if got := t.Load(a); got != uint64(i) {
					panic("bad buffered load")
				}
			}
		})
		if !committed {
			b.Fatalf("benchmark transaction aborted: %+v", st)
		}
	})
}

// BenchmarkTxLoadOnly measures the read-only transactional path: loads that
// miss the write buffer and hit the read set.
func BenchmarkTxLoadOnly(b *testing.B) {
	m := benchMachine()
	m.RunOne(func(t *Thread) {
		base := t.Alloc(256)
		b.ResetTimer()
		committed, st := t.RTM(func() {
			for i := 0; i < b.N; i++ {
				_ = t.Load(base + mem.Addr((i*7)&255))
			}
		})
		if !committed {
			b.Fatalf("benchmark transaction aborted: %+v", st)
		}
	})
}

// BenchmarkWriteBuf measures the write buffer in isolation: per iteration,
// one transaction-lifetime's worth of traffic at the observed common-case
// size — 24 distinct words written, each read back twice, then the buffer
// is reset for the next "transaction".
func BenchmarkWriteBuf(b *testing.B) {
	tx := newTxState()
	addrs := make([]mem.Addr, 24)
	for i := range addrs {
		// One word per line, like contended lock/node words.
		addrs[i] = mem.Addr((i + 1) * mem.LineWords)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, a := range addrs {
			tx.bufWrite(a, uint64(j))
		}
		for r := 0; r < 2; r++ {
			for j, a := range addrs {
				v, ok := tx.bufGet(a)
				if !ok || v != uint64(j) {
					b.Fatal("write buffer lookup failed")
				}
			}
		}
		tx.reset()
	}
}
