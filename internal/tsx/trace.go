package tsx

import "hle/internal/mem"

// TraceFunc receives engine events when tracing is enabled. Intended for
// debugging and tests; nil disables tracing.
type TraceFunc func(threadID int, event string, addr mem.Addr, val uint64)

// Trace is the machine-wide trace hook (set before Run; no synchronization
// needed because simulated execution is token-serialized).
var Trace TraceFunc

func (t *Thread) trace(event string, addr mem.Addr, val uint64) {
	if Trace != nil {
		Trace(t.ID, event, addr, val)
	}
}
