package tsx

import "hle/internal/mem"

// TraceFunc receives engine events when tracing is enabled. Intended for
// debugging and tests; nil disables tracing.
type TraceFunc func(threadID int, event string, addr mem.Addr, val uint64)

// Trace is the machine-wide trace hook (set before Run; no synchronization
// needed because simulated execution is token-serialized).
var Trace TraceFunc

// EventKind identifies an engine event compactly. The hot paths record
// kinds, not strings: a kind is one byte, and its name is materialized only
// when an event is formatted (diagnostic dumps, the global Trace hook).
type EventKind uint8

// Engine event kinds.
const (
	EvNone EventKind = iota
	EvLoad             // non-transactional load
	EvLoadBuf          // transactional load served from the write buffer
	EvLoadTx           // transactional load from memory
	EvStore            // non-transactional store
	EvStoreTx          // transactional (buffered) store
	EvSwap             // non-transactional atomic exchange
	EvPublish          // buffered store published at commit
	EvAddRead          // line added to the read set
	EvXacqElide        // XACQUIRE began elision
	EvXrelEnd          // XRELEASE ended elision
	EvReqLine          // coherence request issued for a line
	EvDoomed           // transaction doomed by a conflicting request
	EvBegin            // transaction begun
	EvCommit           // transaction committed
	EvAbort            // transaction aborted
	EvInjStall         // injected stall (fault injection)
	EvInjAbort         // injected spurious abort (fault injection)

	numEventKinds = int(EvInjAbort) + 1
)

// eventNames are the wire/dump names of the kinds. They predate the enum
// (the ring and the Trace hook recorded these exact strings), so dump
// formats and trace-matching tests are unchanged.
var eventNames = [numEventKinds]string{
	EvNone:      "none",
	EvLoad:      "load",
	EvLoadBuf:   "load-buf",
	EvLoadTx:    "load-tx",
	EvStore:     "store",
	EvStoreTx:   "store-tx",
	EvSwap:      "swap",
	EvPublish:   "publish",
	EvAddRead:   "addread",
	EvXacqElide: "xacq-elide",
	EvXrelEnd:   "xrel-end",
	EvReqLine:   "reqline",
	EvDoomed:    "doomed",
	EvBegin:     "begin",
	EvCommit:    "commit",
	EvAbort:     "abort",
	EvInjStall:  "inj-stall",
	EvInjAbort:  "inj-abort",
}

// String returns the event kind's dump name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// TraceEvent is one engine event captured by a machine's trace ring —
// the bounded flight recorder behind watchdog diagnostic dumps
// (Config.TraceRing). Unlike the global Trace hook it records the issuing
// thread's virtual clock, and it additionally captures transaction
// lifecycle events (EvBegin, EvCommit, EvAbort) and injected faults
// (EvInjStall, EvInjAbort).
type TraceEvent struct {
	Thread int
	Clock  uint64
	Kind   EventKind
	Addr   mem.Addr
	Val    uint64
}

// traceRing is a fixed-size flight recorder. It is written only from
// simulated execution (token-serialized) and read only between Run calls,
// so it needs no synchronization; each machine owns its own ring, so
// host-parallel experiment points never share one.
type traceRing struct {
	buf  []TraceEvent
	next int
	full bool
}

func (r *traceRing) add(ev TraceEvent) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// events returns the recorded events oldest-first, as a copy.
func (r *traceRing) events() []TraceEvent {
	if !r.full {
		return append([]TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// TraceEvents returns a copy of the machine's trace ring, oldest event
// first — the last Config.TraceRing engine events. It returns nil when the
// ring is disabled. Call it between Run calls (typically after a watchdog
// stop) — never while the machine is running.
func (m *Machine) TraceEvents() []TraceEvent {
	if m.ring == nil {
		return nil
	}
	return m.ring.events()
}

// trace reports an event to the global Trace hook and the machine's ring.
// The event name string is materialized only when the global hook is set.
func (t *Thread) trace(kind EventKind, addr mem.Addr, val uint64) {
	if Trace != nil {
		Trace(t.ID, kind.String(), addr, val)
	}
	if r := t.m.ring; r != nil {
		r.add(TraceEvent{Thread: t.ID, Clock: t.Clock(), Kind: kind, Addr: addr, Val: val})
	}
}

// ringAdd reports an event to the machine's ring only. Lifecycle and
// injection events use it so that enabling a ring does not change what
// existing global-Trace consumers (cmd/hle-trace, tests) observe.
func (t *Thread) ringAdd(kind EventKind, addr mem.Addr, val uint64) {
	if r := t.m.ring; r != nil {
		r.add(TraceEvent{Thread: t.ID, Clock: t.Clock(), Kind: kind, Addr: addr, Val: val})
	}
}
