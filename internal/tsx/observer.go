package tsx

import "hle/internal/mem"

// Observer receives enriched engine events for profiling (internal/obs).
// Unlike the flight-recorder ring — bounded, byte-compact, meant for crash
// dumps — an observer sees every transaction outcome with full attribution:
// the abort cause, the conflicting cache line, and the aggressing thread
// whose coherence request doomed the victim under requestor wins.
//
// Implementations MUST be deterministic and passive: calls arrive
// token-serialized (one simulated thread runs at a time), must not touch
// simulated memory, and must not consult host time or host randomness.
// With no observer installed the engine performs one nil check per
// transaction boundary and none per memory access, so disabled-profiling
// runs stay allocation-free and byte-identical to an unhooked build.
type Observer interface {
	// BindMachine is called once, when the observer is installed on a
	// machine (NewMachine with Config.Observer, or SetObserver). The
	// observer may keep the machine to resolve line labels at export time.
	BindMachine(m *Machine)

	// TxBegin reports a transaction starting on thread at clock.
	TxBegin(thread int, clock uint64)

	// TxCommit reports a successful commit. begin is the clock at the
	// matching TxBegin; accesses is the transaction's access count.
	TxCommit(thread int, clock, begin uint64, accesses int)

	// TxAbort reports an abort. line is the conflicting cache-line index
	// and aggressor the requesting thread's ID (-1 when external or
	// unknown); both are meaningful only when cause is CauseConflict.
	// injected marks aborts forced by a fault injector (delivered to the
	// program as spurious); elided marks HLE transactions.
	TxAbort(thread int, clock, begin uint64, cause Cause, line, aggressor int, injected, elided bool)

	// Serial reports thread entering (on=true) or leaving (on=false) a
	// serialized critical section — one executed under a really-acquired
	// lock rather than speculatively (see Thread.MarkSerial).
	Serial(thread int, clock uint64, on bool)

	// Grant reports a scheduler grant to proc at clock, the machine's
	// minimum virtual time (see sim.Config.OnGrant).
	Grant(proc int, clock uint64)
}

// SetObserver installs (or with nil removes) an event observer for
// subsequent Run calls. With no observer installed the engine's behavior
// and output are byte-identical to a hook-free build.
func (m *Machine) SetObserver(o Observer) {
	if m.threads != nil {
		panic("tsx: SetObserver while the machine is running")
	}
	m.obs = o
	m.cfg.Observer = o
	if o != nil {
		o.BindMachine(m)
	}
}

// Observer returns the installed observer, if any.
func (m *Machine) Observer() Observer { return m.obs }

// MarkSerial tags the thread as executing (or, with on=false, done
// executing) a serialized critical section: one run under a really-held
// lock instead of speculatively. Scheme implementations bracket their
// non-speculative paths with it so profiles can chart speculating vs
// serialized occupancy over virtual time — the avalanche as a waterfall.
// It is a pure annotation: no simulated cost, no effect without an
// observer.
func (t *Thread) MarkSerial(on bool) {
	if t.serial == on {
		return
	}
	t.serial = on
	if o := t.m.obs; o != nil {
		o.Serial(t.ID, t.Clock(), on)
	}
}

// InSerial reports whether the thread is inside a MarkSerial region.
func (t *Thread) InSerial() bool { return t.serial }

// LabelLines attaches a symbolic label to the cache lines covering words
// [a, a+n): profile heatmaps then print "mcs-tail" instead of a raw line
// index. Labels are registered at allocation time by lock constructors and
// data structures; they cost nothing simulated (no accesses, no cycles)
// and are copied by Clone.
func (t *Thread) LabelLines(a mem.Addr, n int, label string) {
	t.m.labelLines(a, n, label, false)
}

// LabelLockLines is LabelLines for lock words: the lines are additionally
// marked as lock infrastructure, so profiles can split conflict aborts
// into conflict-on-lock-line vs conflict-on-data-line — the distinction
// the Chapter 7 hardware extension exploits.
func (t *Thread) LabelLockLines(a mem.Addr, n int, label string) {
	t.m.labelLines(a, n, label, true)
}

// SetLabelPrefix sets a prefix prepended to every label subsequently
// registered through LabelLines/LabelLockLines, returning the previous
// prefix so callers can restore it. Construction code that instantiates
// one structure several times (the sharded store's per-shard locks and
// trees) brackets each instance's construction with a distinct prefix, so
// heatmaps attribute hot lines to the instance ("s03/mcs-tail") rather
// than only the algorithm. The prefix is construction-time state, not
// part of the machine image: checkpoints and clones copy the registered
// labels, which are already prefixed.
func (m *Machine) SetLabelPrefix(prefix string) (prev string) {
	prev = m.labelPrefix
	m.labelPrefix = prefix
	return prev
}

func (m *Machine) labelLines(a mem.Addr, n int, label string, lock bool) {
	if n < 1 {
		n = 1
	}
	if m.labelPrefix != "" {
		label = m.labelPrefix + label
	}
	first := mem.LineOf(a)
	last := mem.LineOf(a + mem.Addr(n-1))
	for line := first; line <= last; line++ {
		if m.lineLabels == nil {
			m.lineLabels = make(map[int]string)
		}
		m.lineLabels[line] = label
		if lock {
			if m.lockLines == nil {
				m.lockLines = make(map[int]struct{})
			}
			m.lockLines[line] = struct{}{}
		}
	}
}

// LineLabel returns the symbolic label registered for a cache line, or "".
func (m *Machine) LineLabel(line int) string { return m.lineLabels[line] }

// IsLockLine reports whether the line was registered as lock infrastructure
// (LabelLockLines).
func (m *Machine) IsLockLine(line int) bool {
	_, ok := m.lockLines[line]
	return ok
}
