package tsx

import (
	"math"
	"math/bits"

	"hle/internal/mem"
)

// txState is the hardware context of one in-flight transaction.
type txState struct {
	readLines  []int
	writeLines []int
	writeBuf   writeBuf
	writeOrder []mem.Addr

	doomed       bool
	abortCause   Cause
	abortCode    uint8
	conflictLine int
	// aggressor is the thread whose coherence request doomed this
	// transaction (requestor wins), or -1: profiling attribution only.
	aggressor int8
	// injected marks an abort forced by a fault injector; the program
	// sees it as spurious, profiles attribute it separately.
	injected bool
	// beginClock is the thread's virtual clock at begin, for profiling
	// latency attribution.
	beginClock uint64

	// HLE elision state.
	elided     bool
	hleOuter   bool // transaction was begun by the XAcquire itself
	elidedAddr mem.Addr
	elidedOld  uint64 // lock value before XACQUIRE; XRELEASE must restore it
	elidedVal  uint64 // the value the elided store "wrote" (the illusion)

	// lazyCheck is the deferred lock-subscription predicate registered by
	// LazySubscribe under SubLazy, evaluated by the commit pipeline
	// (commitLazy). Nil when no RTM subscription is pending.
	lazyCheck func() bool

	nest       int // flat nesting depth of RTM regions
	accesses   int
	spuriousAt int  // access index at which a spurious abort fires
	evictAt    int  // read-line count at which imprecise tracking evicts
	evictDrawn bool // evictAt has been sampled (drawn lazily at the L1 boundary)

	allocs []allocRec // allocations to roll back on abort
	frees  []allocRec // frees deferred to commit
}

type allocRec struct {
	addr  mem.Addr
	n     int
	lines bool
}

const allocCost = 12

// newTxState returns a fresh transaction context ready for reset/use.
func newTxState() *txState {
	tx := &txState{}
	tx.writeBuf.init()
	return tx
}

// bufGet returns the buffered value for a, if any.
func (tx *txState) bufGet(a mem.Addr) (uint64, bool) {
	return tx.writeBuf.get(a)
}

// reset prepares a pooled txState for reuse.
func (tx *txState) reset() {
	tx.readLines = tx.readLines[:0]
	tx.writeLines = tx.writeLines[:0]
	tx.writeBuf.reset()
	tx.writeOrder = tx.writeOrder[:0]
	tx.doomed = false
	tx.abortCause = CauseNone
	tx.abortCode = 0
	tx.conflictLine = 0
	tx.aggressor = -1
	tx.injected = false
	tx.elided = false
	tx.hleOuter = false
	tx.elidedAddr = mem.Nil
	tx.lazyCheck = nil
	tx.nest = 0
	tx.accesses = 0
	tx.evictDrawn = false
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
}

// InTx reports whether the thread is executing transactionally (XTEST).
func (t *Thread) InTx() bool { return t.tx != nil }

// beginTx starts a transaction on t. Exactly one of the RTM/HLE entry
// points calls it.
//
// beginTx deliberately performs no Step: callers charge the begin cost
// (and yield the scheduler token) BEFORE any snapshot/registration
// sequence, so that starting a transaction is atomic with respect to
// concurrent simulated threads — exactly as XBEGIN/XACQUIRE are single
// instructions on hardware.
func (t *Thread) beginTx() *txState {
	if t.tx != nil {
		panic("tsx: beginTx while already in a transaction")
	}
	tx := t.txPool
	if tx == nil {
		tx = newTxState()
		t.txPool = tx
	}
	tx.reset()
	tx.spuriousAt = t.drawSpuriousAt()
	// The eviction point is sampled lazily when the read set first
	// crosses the L1 boundary — most transactions never get there, and
	// the draw costs a Log and a Pow.
	tx.evictAt = t.m.cfg.L1ReadLines
	tx.beginClock = t.Clock()
	t.tx = tx
	t.Stats.Begun++
	t.ringAdd(EvBegin, mem.Nil, 0)
	if o := t.m.obs; o != nil {
		o.TxBegin(t.ID, tx.beginClock)
	}
	return tx
}

// drawEvictAt samples the read-line count at which the imprecise read-set
// tracker evicts a line. Derived from a per-line eviction probability of
// ((n-L1)/(cap-L1))^k, aggregated so that only one random draw per
// transaction is needed.
func (t *Thread) drawEvictAt() int {
	cfg := &t.m.cfg
	l1 := cfg.L1ReadLines
	capacity := cfg.ReadSetLines
	if capacity <= l1 {
		return capacity
	}
	u := t.Rand().Float64()
	if u <= 0 {
		u = 1e-300
	}
	k := cfg.EvictExponent
	// Survival through n lines: exp(-C*x^(k+1)) with x=(n-l1)/(cap-l1)
	// and C=(cap-l1)/(k+1). Invert at -ln(u).
	c := float64(capacity-l1) / (k + 1)
	x := math.Pow(-math.Log(u)/c, 1/(k+1))
	n := l1 + int(x*float64(capacity-l1))
	if n > capacity {
		n = capacity
	}
	return n
}

// abortNow rolls the current transaction back and unwinds to the begin
// point. cause is ignored when the transaction was already doomed by a
// conflict (the conflict information wins).
func (t *Thread) abortNow(cause Cause, code uint8) {
	tx := t.tx
	if tx == nil {
		panic("tsx: abortNow outside a transaction")
	}
	if !tx.doomed {
		tx.abortCause = cause
		tx.abortCode = code
	}
	panic(txAbortSignal{})
}

// finishAbort performs rollback bookkeeping after an abort unwound to the
// transaction's begin point, and returns the abort status.
func (t *Thread) finishAbort() Status {
	tx := t.tx
	for _, al := range tx.allocs {
		t.cachePut(al)
	}
	t.clearLineBits(tx)
	t.tx = nil
	t.Stats.Aborted[tx.abortCause]++
	t.ringAdd(EvAbort, mem.LineAddr(tx.conflictLine), uint64(tx.abortCause))
	if o := t.m.obs; o != nil {
		o.TxAbort(t.ID, t.Clock(), tx.beginClock, tx.abortCause,
			tx.conflictLine, int(tx.aggressor), tx.injected, tx.elided)
	}
	t.Step(t.m.cfg.Costs.Abort)
	return statusFor(tx)
}

// commit attempts to make the transaction's effects globally visible.
// A doomed transaction aborts instead (unwinding via panic).
//
// The eager path below is windowless: from the doom check to the return
// there are no scheduler yields before publication (the Commit cost is
// charged after the transaction is closed), so commit is atomic with
// respect to other simulated threads, as XEND is on hardware. A pending
// lazy subscription routes through commitLazy instead, which deliberately
// opens a commit window.
func (t *Thread) commit() {
	tx := t.tx
	if tx.doomed {
		t.abortNow(CauseConflict, 0)
	}
	if tx.lazyCheck != nil || (tx.elided && t.LazySubscription()) {
		t.commitLazy(tx)
		return
	}
	for _, a := range tx.writeOrder {
		v, _ := tx.writeBuf.get(a)
		t.trace(EvPublish, a, v)
		t.m.Mem.Write(a, v)
	}
	for _, f := range tx.frees {
		t.m.Mem.CheckFree(f.addr, f.n, f.lines)
		t.cachePut(f)
	}
	t.clearLineBits(tx)
	t.tx = nil
	t.ringAdd(EvCommit, mem.Nil, uint64(tx.accesses))
	if o := t.m.obs; o != nil {
		o.TxCommit(t.ID, t.Clock(), tx.beginClock, tx.accesses)
	}
	t.Stats.Committed++
	t.Stats.CommittedReadLines += uint64(len(tx.readLines))
	t.Stats.CommittedWriteLines += uint64(len(tx.writeLines))
	t.Stats.CommittedAccesses += uint64(tx.accesses)
	t.Step(t.m.cfg.Costs.Commit)
}

func (t *Thread) clearLineBits(tx *txState) {
	bit := ^t.bit
	for _, l := range tx.readLines {
		t.m.Mem.LineByIndex(l).Readers &= bit
	}
	for _, l := range tx.writeLines {
		t.m.Mem.LineByIndex(l).Writers &= bit
	}
}

// txPreAccess runs the per-access checks of an in-flight transaction:
// conflict dooming raised by other threads, spurious aborts, and the
// safety bound on transaction length.
func (t *Thread) txPreAccess(tx *txState) {
	if tx.doomed {
		t.abortNow(CauseConflict, 0)
	}
	tx.accesses++
	if tx.accesses >= tx.spuriousAt {
		t.abortNow(CauseSpurious, 0)
	}
	if tx.accesses > t.m.cfg.MaxTxAccesses {
		// Real hardware would eventually abort a runaway transaction
		// via a timer interrupt; model that as a spurious abort.
		t.abortNow(CauseSpurious, 0)
	}
}

// txLoadValue returns the transaction-local view of the word at a without
// touching read/write sets.
func (t *Thread) txLoadValue(tx *txState, a mem.Addr) uint64 {
	if v, ok := tx.writeBuf.get(a); ok {
		return v
	}
	if tx.elided && a == tx.elidedAddr {
		return tx.elidedVal
	}
	return t.m.Mem.Read(a)
}

func (tx *txState) bufWrite(a mem.Addr, v uint64) {
	if tx.writeBuf.put(a, v) {
		tx.writeOrder = append(tx.writeOrder, a)
	}
}

// txTouchRead adds line to the read set, enforcing capacity and the
// Chapter 7 miss-while-lock-held suspension.
func (t *Thread) txTouchRead(tx *txState, line int) {
	lm := t.m.Mem.LineByIndex(line)
	bit := t.bit
	if (lm.Readers|lm.Writers)&bit != 0 {
		return // cache hit: already tracked in either set
	}
	t.hwextMissCheck(tx)
	n := len(tx.readLines)
	if n >= tx.evictAt {
		if !tx.evictDrawn {
			tx.evictDrawn = true
			tx.evictAt = t.drawEvictAt()
		}
		if n >= tx.evictAt || n >= t.m.cfg.ReadSetLines {
			t.abortNow(CauseCapacityRead, 0)
		}
	}
	// The read is a coherence request: requestor wins, so it dooms any
	// other transaction holding the line in its write set.
	t.m.requestLine(line, t, false)
	t.trace(EvAddRead, mem.LineAddr(line), lm.Readers)
	lm.Readers |= bit
	tx.readLines = append(tx.readLines, line)
}

// txTouchWrite adds line to the write set (an RFO), dooming other
// transactional readers and writers of the line.
func (t *Thread) txTouchWrite(tx *txState, line int) {
	lm := t.m.Mem.LineByIndex(line)
	bit := t.bit
	if lm.Writers&bit != 0 {
		return
	}
	// Expanding the write set needs an RFO even when the line is already
	// in the read set, so under the Chapter 7 extension it counts as a
	// miss: it must wait for the lock to be free. (Skipping the check for
	// read-to-write upgrades would let a speculative writer commit around
	// a non-speculative critical section that read the same line — a lost
	// update.)
	t.hwextMissCheck(tx)
	limit := t.m.cfg.WriteSetLines
	if inj := t.m.cfg.Injector; inj != nil {
		// A transient capacity squeeze (e.g. a sibling hyperthread
		// evicting L1 ways) lowers the effective write-set limit.
		limit = inj.WriteCap(t.ID, t.Clock(), limit)
		if limit < 1 {
			limit = 1
		}
	}
	if len(tx.writeLines) >= limit {
		t.abortNow(CauseCapacityWrite, 0)
	}
	t.m.requestLine(line, t, true)
	lm.Writers |= bit
	tx.writeLines = append(tx.writeLines, line)
}

// hwextMissCheck implements the Chapter 7 extension: under HWExt, a
// speculative HLE thread that misses in its cache while the elided lock is
// held non-speculatively suspends until the lock is released (or the thread
// suffers a data conflict). Without HWExt this is a no-op; the avalanche
// dynamics then follow from the lock line sitting in the read set.
func (t *Thread) hwextMissCheck(tx *txState) {
	if !t.m.cfg.HWExt || !tx.elided {
		return
	}
	if t.m.cfg.HWExtNoSuspend {
		// Seeded Lemma 1 fault (mutation testing): expand the footprint
		// without waiting for the lock. Data conflicts still doom the
		// transaction at the next access, which is exactly why the bug is
		// a one-interleaving unsoundness rather than an obvious one.
		return
	}
	const maxWaitIters = 1 << 20
	for i := 0; ; i++ {
		if tx.doomed {
			t.abortNow(CauseConflict, 0)
		}
		if t.m.Mem.Read(tx.elidedAddr) == tx.elidedOld {
			return // lock is free: safe to expand the read/write set
		}
		if i >= maxWaitIters {
			t.abortNow(CauseSpurious, 0)
		}
		t.Step(t.m.cfg.Costs.Wait)
	}
}

// requestLine models a coherence request for a cache line arriving from
// thread req (or from outside the simulation when req is nil). Under the
// requestor-wins policy, a write request dooms every other transaction
// holding the line in either set; a read request dooms other transactional
// writers.
func (m *Machine) requestLine(line int, req *Thread, isWrite bool) {
	lm := m.Mem.LineByIndex(line)
	victims := lm.Writers
	if isWrite {
		victims |= lm.Readers
	}
	if req != nil {
		if Trace != nil {
			Trace(req.ID, EvReqLine.String(), mem.LineAddr(line), victims)
		}
		if m.ring != nil {
			m.ring.add(TraceEvent{Thread: req.ID, Clock: req.Clock(), Kind: EvReqLine, Addr: mem.LineAddr(line), Val: victims})
		}
	}
	if req != nil {
		victims &^= uint64(1) << uint(req.ID)
	}
	for victims != 0 {
		id := bits.TrailingZeros64(victims)
		victims &^= uint64(1) << uint(id)
		v := m.threads[id]
		if v == nil || v.tx == nil || v.tx.doomed {
			continue
		}
		v.tx.doomed = true
		v.tx.abortCause = CauseConflict
		v.tx.conflictLine = line
		if req != nil {
			v.tx.aggressor = int8(req.ID)
		} else {
			v.tx.aggressor = -1
		}
		if Trace != nil {
			Trace(v.ID, EvDoomed.String(), mem.LineAddr(line), 0)
		}
		if m.ring != nil {
			m.ring.add(TraceEvent{Thread: v.ID, Clock: v.Clock(), Kind: EvDoomed, Addr: mem.LineAddr(line), Val: 0})
		}
	}
}

// Load performs a simulated load of the word at address a. Inside a
// transaction the line joins the read set; outside, the access dooms
// conflicting transactional writers (requestor wins).
//
// The access paths below compute the line index exactly once per access and
// thread it through the charge/touch/request helpers: the index math and
// the repeated map probes this replaces were the simulator's hottest
// instructions under profiling.
func (t *Thread) Load(a mem.Addr) uint64 {
	t.Step(t.m.cfg.Costs.Load)
	line := int(a >> mem.LineShift)
	t.chargeLine(line)
	t.inject(line, false)
	tx := t.tx
	if tx == nil {
		t.m.requestLine(line, t, false)
		v := t.m.Mem.Read(a)
		t.trace(EvLoad, a, v)
		return v
	}
	t.txPreAccess(tx)
	if v, ok := tx.writeBuf.get(a); ok {
		t.trace(EvLoadBuf, a, v)
		return v
	}
	if tx.elided && a == tx.elidedAddr {
		// HLE's illusion: the transaction sees the value its elided
		// acquiring store "wrote". Under the Chapter 7 extension the
		// lock line is not placed in the read set unless accessed as
		// data, so this forwarding carries no conflict footprint; under
		// lazy subscription the forwarding comes from the store buffer
		// and the subscription stays deferred to commit.
		if !t.m.cfg.HWExt && !t.LazySubscription() {
			t.txTouchRead(tx, line)
		}
		return tx.elidedVal
	}
	t.txTouchRead(tx, line)
	v := t.m.Mem.Read(a)
	t.trace(EvLoadTx, a, v)
	return v
}

// Store performs a simulated store of v to address a. Transactional stores
// are buffered and published at commit.
func (t *Thread) Store(a mem.Addr, v uint64) {
	t.Step(t.m.cfg.Costs.Store)
	line := int(a >> mem.LineShift)
	t.chargeLine(line)
	t.inject(line, true)
	tx := t.tx
	if tx == nil {
		t.trace(EvStore, a, v)
		t.m.requestLine(line, t, true)
		t.m.Mem.Write(a, v)
		return
	}
	t.txPreAccess(tx)
	t.txTouchWrite(tx, line)
	t.trace(EvStoreTx, a, v)
	tx.bufWrite(a, v)
}

// CAS performs a compare-and-swap on the word at a, returning whether the
// swap happened. Like the x86 LOCK CMPXCHG, a failed CAS still issues a
// write request for the line.
func (t *Thread) CAS(a mem.Addr, old, new uint64) bool {
	t.Step(t.m.cfg.Costs.RMW)
	line := int(a >> mem.LineShift)
	t.chargeLine(line)
	t.inject(line, true)
	tx := t.tx
	if tx == nil {
		t.m.requestLine(line, t, true)
		if t.m.Mem.Read(a) != old {
			return false
		}
		t.m.Mem.Write(a, new)
		return true
	}
	t.txPreAccess(tx)
	cur := t.txLoadValue(tx, a)
	t.txTouchWrite(tx, line)
	if cur != old {
		return false
	}
	tx.bufWrite(a, new)
	return true
}

// Swap atomically exchanges the word at a with v, returning the old value.
func (t *Thread) Swap(a mem.Addr, v uint64) uint64 {
	t.Step(t.m.cfg.Costs.RMW)
	line := int(a >> mem.LineShift)
	t.chargeLine(line)
	t.inject(line, true)
	tx := t.tx
	if tx == nil {
		t.trace(EvSwap, a, v)
		t.m.requestLine(line, t, true)
		old := t.m.Mem.Read(a)
		t.m.Mem.Write(a, v)
		return old
	}
	t.txPreAccess(tx)
	old := t.txLoadValue(tx, a)
	t.txTouchWrite(tx, line)
	tx.bufWrite(a, v)
	return old
}

// FetchAdd atomically adds delta to the word at a, returning the previous
// value.
func (t *Thread) FetchAdd(a mem.Addr, delta uint64) uint64 {
	t.Step(t.m.cfg.Costs.RMW)
	line := int(a >> mem.LineShift)
	t.chargeLine(line)
	t.inject(line, true)
	tx := t.tx
	if tx == nil {
		t.m.requestLine(line, t, true)
		old := t.m.Mem.Read(a)
		t.m.Mem.Write(a, old+delta)
		return old
	}
	t.txPreAccess(tx)
	old := t.txLoadValue(tx, a)
	t.txTouchWrite(tx, line)
	tx.bufWrite(a, old+delta)
	return old
}

// Pause models the PAUSE instruction: a spin-loop hint outside a
// transaction, an abort inside one (as on Haswell).
func (t *Thread) Pause() {
	t.Step(t.m.cfg.Costs.Pause)
	if t.tx != nil && t.m.cfg.PauseAborts {
		t.abortNow(CausePause, 0)
	}
}

// cachePut returns a block to the thread-local allocator cache. The block
// was already checked live (by Thread.Free/FreeLines or by an aborted
// allocation's rollback), so the push is unconditional.
func (t *Thread) cachePut(r allocRec) {
	if t.freeCache == nil {
		t.freeCache = new(mem.FreeTable)
	}
	t.freeCache.Push(r.n, r.lines, r.addr)
}

// cacheGet takes a block from the thread-local cache, or mem.Nil.
func (t *Thread) cacheGet(n int, lines bool) mem.Addr {
	if t.freeCache == nil {
		return mem.Nil
	}
	a := t.freeCache.Pop(n, lines)
	if a != mem.Nil {
		t.m.Mem.NoteAlloc(a, n, lines)
	}
	return a
}

// flushFreeCache returns the thread cache to the global allocator; called
// when the thread's body finishes so blocks survive across runs. The
// blocks already passed their free-time debug checks, so they bypass them
// here (Recycle, not Free).
func (t *Thread) flushFreeCache() {
	if t.freeCache == nil {
		return
	}
	m := t.m.Mem
	t.freeCache.Drain(func(n int, lines bool, a mem.Addr) {
		m.Recycle(a, n, lines)
	})
}

// Alloc allocates n words of simulated memory and zeroes them through the
// transactional store path, so that recycling a block whose lines are still
// in some transaction's read set raises a proper conflict. Allocation is
// served from a thread-local cache first (jemalloc-style), so blocks freed
// by one thread are not immediately handed to another. Fresh blocks land
// where the machine's placement policy puts them; under the arena policy
// the thread ID selects the arena.
func (t *Thread) Alloc(n int) mem.Addr {
	t.Step(allocCost)
	a := t.cacheGet(n, false)
	if a == mem.Nil {
		a = t.m.Mem.AllocOwned(t.ID, n)
	}
	if t.tx != nil {
		t.tx.allocs = append(t.tx.allocs, allocRec{a, n, false})
	}
	for i := 0; i < n; i++ {
		t.Store(a+mem.Addr(i), 0)
	}
	return a
}

// AllocLines allocates n words on a private cache line (padded), zeroed
// transactionally. Contended words such as locks use this.
func (t *Thread) AllocLines(n int) mem.Addr {
	t.Step(allocCost)
	a := t.cacheGet(n, true)
	if a == mem.Nil {
		a = t.m.Mem.AllocLines(n)
	}
	if t.tx != nil {
		t.tx.allocs = append(t.tx.allocs, allocRec{a, n, true})
	}
	for i := 0; i < n; i++ {
		t.Store(a+mem.Addr(i), 0)
	}
	return a
}

// Free releases an Alloc-obtained block into the thread cache. Inside a
// transaction the free is deferred to commit and dropped on abort. In
// mem.DebugChecks mode, freeing an AllocLines block here panics (at commit
// time for transactional frees).
func (t *Thread) Free(a mem.Addr, n int) {
	t.Step(allocCost)
	if t.tx != nil {
		t.tx.frees = append(t.tx.frees, allocRec{a, n, false})
		return
	}
	t.m.Mem.CheckFree(a, n, false)
	t.cachePut(allocRec{a, n, false})
}

// FreeLines releases an AllocLines-obtained block into the thread cache.
func (t *Thread) FreeLines(a mem.Addr, n int) {
	t.Step(allocCost)
	if t.tx != nil {
		t.tx.frees = append(t.tx.frees, allocRec{a, n, true})
		return
	}
	t.m.Mem.CheckFree(a, n, true)
	t.cachePut(allocRec{a, n, true})
}
