package tsx

// lineCache approximates a thread's private cache for *cost* purposes (not
// correctness — conflict detection is exact and separate): a bounded FIFO
// set of recently-touched lines. An access outside the set pays
// Costs.Miss and enters it, evicting the oldest entry.
//
// The model is enabled by Config.CacheLines > 0 and default-off: the
// paper's shapes do not depend on it (path length already scales critical
// sections), but it sharpens the absolute throughput-vs-size slope; the
// abl-miss ablation quantifies the difference.
type lineCache struct {
	member map[int]struct{}
	fifo   []int
	head   int
}

func newLineCache(capacity int) *lineCache {
	return &lineCache{
		member: make(map[int]struct{}, capacity),
		fifo:   make([]int, 0, capacity),
	}
}

// touch reports whether line was cached, inserting it either way.
func (c *lineCache) touch(line int) bool {
	if _, ok := c.member[line]; ok {
		return true
	}
	if len(c.fifo) < cap(c.fifo) {
		c.fifo = append(c.fifo, line)
	} else {
		victim := c.fifo[c.head]
		delete(c.member, victim)
		c.fifo[c.head] = line
		c.head++
		if c.head == len(c.fifo) {
			c.head = 0
		}
	}
	c.member[line] = struct{}{}
	return false
}

// chargeLine applies the cache-miss surcharge for an access to the given
// line when cache cost modeling is enabled. The caller has already computed
// the line index for its own set tracking; taking it (rather than the
// address) keeps the index math out of the per-access hot path.
func (t *Thread) chargeLine(line int) {
	if t.cache == nil {
		return
	}
	if !t.cache.touch(line) {
		t.Step(t.m.cfg.Costs.Miss)
	}
}
