package tsx

import "hle/internal/mem"

// lineCache approximates a thread's private cache for *cost* purposes (not
// correctness — conflict detection is exact and separate): a bounded FIFO
// set of recently-touched lines. An access outside the set pays
// Costs.Miss and enters it, evicting the oldest entry.
//
// The model is enabled by Config.CacheLines > 0 and default-off: the
// paper's shapes do not depend on it (path length already scales critical
// sections), but it sharpens the absolute throughput-vs-size slope; the
// abl-miss ablation quantifies the difference.
type lineCache struct {
	member map[int]struct{}
	fifo   []int
	head   int
}

func newLineCache(capacity int) *lineCache {
	return &lineCache{
		member: make(map[int]struct{}, capacity),
		fifo:   make([]int, 0, capacity),
	}
}

// touch reports whether line was cached, inserting it either way.
func (c *lineCache) touch(line int) bool {
	if _, ok := c.member[line]; ok {
		return true
	}
	if len(c.fifo) < cap(c.fifo) {
		c.fifo = append(c.fifo, line)
	} else {
		victim := c.fifo[c.head]
		delete(c.member, victim)
		c.fifo[c.head] = line
		c.head++
		if c.head == len(c.fifo) {
			c.head = 0
		}
	}
	c.member[line] = struct{}{}
	return false
}

// chargeAccess applies the cache-miss surcharge for an access to addr when
// cache cost modeling is enabled.
func (t *Thread) chargeAccess(a mem.Addr) {
	if t.cache == nil {
		return
	}
	if !t.cache.touch(mem.LineOf(a)) {
		t.Step(t.m.cfg.Costs.Miss)
	}
}
