package tsx

import "hle/internal/mem"

// This file implements lazy lock subscription: deferring the elided lock
// word's read-set entry from transaction begin to commit time. Eager
// subscription (the paper's scheme, Haswell's HLE) puts the lock line in
// the read set at XACQUIRE, so every pessimistic acquisition aborts every
// running speculation — the conflict that seeds the Chapter 3 avalanche.
// Lazy subscription removes that footprint for the transaction's whole
// body and instead checks the lock once, at commit.
//
// Done naively, that is unsound. Dice et al. ("Hardware extensions to
// make lazy subscription safe") catalog the hazards, two of which this
// simulator can express and internal/explore can find:
//
//  (a) a transaction reads state mid-mutation by a pessimistic lock
//      holder and, with no lock line in its read set, commits the
//      inconsistent observation;
//  (b) a transaction's commit-time drain races the holder's critical
//      section — the published writes interleave with (and are partly
//      overwritten by) the holder's own stores.
//
// Their fixes, both modeled here and on by default under SubLazy:
//
//  1. the commit-time lock check is ordered BEFORE the write-set drain
//     (and the check itself subscribes the lock line), and
//  2. a write that dooms the transaction during the commit window —
//     including a pessimistic acquirer's lock store, now visible through
//     the fresh subscription — aborts the commit instead of being
//     ignored.
//
// The LazyNo* config flags disable the fixes individually; they exist
// only so the model checker can reproduce the hazards and prove the
// mutation tests sharp.

// SetSubscription overrides the machine's Config.Subscription for this
// thread's subsequent transactions. Scheme constructors call it from
// Setup: the scheme knows whether its lock elides, so the mode is a
// scheme property, not a machine property. It must not be called inside
// a transaction.
func (t *Thread) SetSubscription(s Subscription) {
	if t.tx != nil {
		panic("tsx: SetSubscription inside a transaction")
	}
	t.sub, t.subSet = s, true
}

// LazySubscription reports whether this thread's transactions defer lock
// subscription to commit (the thread override if set, else the machine
// mode).
func (t *Thread) LazySubscription() bool {
	if t.subSet {
		return t.sub == SubLazy
	}
	return t.m.cfg.Subscription == SubLazy
}

// LazySubscribe registers check as the current transaction's lock
// subscription predicate — the RTM analogue of HLE's elided lock word.
// An RTM-based elision scheme passes a closure testing that its lock is
// free (for example func() bool { return !lock.Held(t) }).
//
// Under eager subscription the predicate is evaluated immediately: its
// loads put the lock's lines in the read set and a false result aborts
// with CauseSubscription — begin-time subscription, exactly Algorithm 2's
// subscribe-then-check. Under lazy subscription the predicate is saved
// and evaluated by the commit pipeline instead (see commitLazy); its
// loads then subscribe the lock lines at commit time.
func (t *Thread) LazySubscribe(check func() bool) {
	tx := t.tx
	if tx == nil {
		panic("tsx: LazySubscribe outside a transaction")
	}
	if !t.LazySubscription() {
		if !check() {
			t.abortNow(CauseSubscription, 0)
		}
		return
	}
	tx.lazyCheck = check
}

// lazySubTouch subscribes line for commit-window conflict detection
// without consuming read-set capacity: the Dice et al. fix is dedicated
// commit hardware — a comparator watching the lock's cache line during
// the commit sequence — not an ordinary read-set entry, so it neither
// counts against ReadSetLines nor participates in the eviction model. It
// still issues the coherence request and sets the reader bit, so a
// pessimistic acquirer's lock store during the window dooms the
// transaction exactly as a read-set hit would.
func (t *Thread) lazySubTouch(tx *txState, line int) {
	lm := t.m.Mem.LineByIndex(line)
	bit := t.bit
	if (lm.Readers|lm.Writers)&bit != 0 {
		return // already tracked
	}
	t.m.requestLine(line, t, false)
	t.trace(EvAddRead, mem.LineAddr(line), lm.Readers)
	lm.Readers |= bit
	tx.readLines = append(tx.readLines, line)
}

// lazySubCheck performs the commit-time lock subscription: the elided
// lock line (HLE) joins the conflict-monitored set (via the dedicated
// commit comparator, lazySubTouch) and its current value must still be
// the pre-XACQUIRE value; a registered RTM predicate is evaluated (its
// loads subscribe normally). Failure aborts with CauseSubscription.
func (t *Thread) lazySubCheck(tx *txState) {
	if tx.elided {
		t.lazySubTouch(tx, mem.LineOf(tx.elidedAddr))
		if t.m.Mem.Read(tx.elidedAddr) != tx.elidedOld {
			t.abortNow(CauseSubscription, 0)
		}
	}
	if tx.lazyCheck != nil && !tx.lazyCheck() {
		t.abortNow(CauseSubscription, 0)
	}
}

// commitLazy is the commit pipeline for a transaction holding a lazy
// subscription obligation. Unlike the eager commit it is NOT atomic: the
// Commit cost is charged mid-pipeline, opening a scheduler window between
// the subscription check and the write-set drain — the window whose
// hazards the two Dice et al. fixes close. With no LazyNo* flag set this
// pipeline is the fixed (safe) design.
func (t *Thread) commitLazy(tx *txState) {
	cfg := &t.m.cfg
	if !cfg.LazyNoCheckFirst && !cfg.LazyNoCommitCheck {
		// Fix 1: subscription check ordered before the drain. The check
		// itself yields no scheduler grants for HLE (the touch and the
		// value test are one atomic step); an RTM predicate's loads may
		// yield, but every line they touch is subscribed as they go, so
		// the window-abort check below covers the gap.
		t.lazySubCheck(tx)
	}
	// The drain occupies the commit window: charge the commit cost
	// before publishing, yielding the scheduler mid-commit.
	t.Step(cfg.Costs.Commit)
	if tx.doomed && !cfg.LazyNoWindowAbort {
		// Fix 2: a write arriving during the window — a pessimistic
		// acquirer's lock store (visible through the fresh subscription)
		// or any data conflict — aborts the commit.
		t.abortNow(CauseConflict, 0)
	}
	for _, a := range tx.writeOrder {
		v, _ := tx.writeBuf.get(a)
		t.trace(EvPublish, a, v)
		t.m.Mem.Write(a, v)
	}
	if cfg.LazyNoCheckFirst && !cfg.LazyNoCommitCheck {
		// Naive ordering: the subscription is validated only as commit
		// completes, AFTER the drain. A failure here fires the abort too
		// late — the published writes stand, and the program's retry
		// re-applies them. This is the unsound order the fixes exist for.
		t.lazySubCheck(tx)
	}
	for _, f := range tx.frees {
		t.m.Mem.CheckFree(f.addr, f.n, f.lines)
		t.cachePut(f)
	}
	t.clearLineBits(tx)
	t.tx = nil
	t.ringAdd(EvCommit, mem.Nil, uint64(tx.accesses))
	if o := t.m.obs; o != nil {
		o.TxCommit(t.ID, t.Clock(), tx.beginClock, tx.accesses)
	}
	t.Stats.Committed++
	t.Stats.CommittedReadLines += uint64(len(tx.readLines))
	t.Stats.CommittedWriteLines += uint64(len(tx.writeLines))
	t.Stats.CommittedAccesses += uint64(tx.accesses)
}
