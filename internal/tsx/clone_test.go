package tsx

import (
	"testing"

	"hle/internal/mem"
)

// TestCloneIndependence: a cloned machine sees the template's populated
// memory but diverges independently afterwards.
func TestCloneIndependence(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Seed = 5
	tmpl := NewMachine(cfg)
	var cell mem.Addr
	tmpl.RunOne(func(th *Thread) {
		cell = th.AllocLines(1)
		th.Store(cell, 41)
	})

	c1, c2 := tmpl.Clone(), tmpl.Clone()
	if c1.Mem.Read(cell) != 41 || c2.Mem.Read(cell) != 41 {
		t.Fatal("clone did not copy populated memory")
	}

	c1.RunOne(func(th *Thread) { th.Store(cell, 100) })
	if c2.Mem.Read(cell) != 41 || tmpl.Mem.Read(cell) != 41 {
		t.Fatal("clone writes leaked into template or sibling")
	}

	// Allocator state is cloned too: both clones bump-allocate the same
	// next address, independently.
	var a1, a2 mem.Addr
	c1.RunOne(func(th *Thread) { a1 = th.Alloc(4) })
	c2.RunOne(func(th *Thread) { a2 = th.Alloc(4) })
	if a1 != a2 {
		t.Fatalf("clone allocator state diverged: %d vs %d", a1, a2)
	}
}

// TestCloneDeterminism: a clone re-running the template's workload with the
// same seed reproduces it exactly; a reseeded clone diverges.
func TestCloneDeterminism(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Seed = 9
	tmpl := NewMachine(cfg)
	var cells []mem.Addr
	tmpl.RunOne(func(th *Thread) {
		for i := 0; i < 4; i++ {
			cells = append(cells, th.AllocLines(1))
		}
	})

	body := func(th *Thread) {
		c := cells[th.ID]
		for i := 0; i < 200; i++ {
			th.RTM(func() {
				v := th.Load(c)
				th.Store(c, v+uint64(th.Rand().Intn(3)))
			})
		}
	}
	run := func(m *Machine) (vals [4]uint64, committed uint64) {
		ths := m.Run(4, body)
		for i, c := range cells {
			vals[i] = m.Mem.Read(c)
		}
		for _, th := range ths {
			committed += th.Stats.Committed
		}
		return
	}

	c1, c2, c3 := tmpl.Clone(), tmpl.Clone(), tmpl.Clone()
	v1, n1 := run(c1)
	v2, n2 := run(c2)
	if v1 != v2 || n1 != n2 {
		t.Fatalf("identical clones diverged: %v/%d vs %v/%d", v1, n1, v2, n2)
	}
	c3.Reseed(12345)
	v3, _ := run(c3)
	if v1 == v3 {
		t.Fatal("reseeded clone reproduced the original streams exactly (seed ignored?)")
	}
}
