package tsx

import (
	"testing"

	"hle/internal/mem"
)

// TestCloneIndependence: a cloned machine sees the template's populated
// memory but diverges independently afterwards.
func TestCloneIndependence(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Seed = 5
	tmpl := NewMachine(cfg)
	var cell mem.Addr
	tmpl.RunOne(func(th *Thread) {
		cell = th.AllocLines(1)
		th.Store(cell, 41)
	})

	c1, c2 := tmpl.Clone(), tmpl.Clone()
	if c1.Mem.Read(cell) != 41 || c2.Mem.Read(cell) != 41 {
		t.Fatal("clone did not copy populated memory")
	}

	c1.RunOne(func(th *Thread) { th.Store(cell, 100) })
	if c2.Mem.Read(cell) != 41 || tmpl.Mem.Read(cell) != 41 {
		t.Fatal("clone writes leaked into template or sibling")
	}

	// Allocator state is cloned too: both clones bump-allocate the same
	// next address, independently.
	var a1, a2 mem.Addr
	c1.RunOne(func(th *Thread) { a1 = th.Alloc(4) })
	c2.RunOne(func(th *Thread) { a2 = th.Alloc(4) })
	if a1 != a2 {
		t.Fatalf("clone allocator state diverged: %d vs %d", a1, a2)
	}
}

// templateFingerprint folds a machine's complete cloneable image into one
// FNV-1a value: every memory word, every line's sharer metadata, the bump
// pointer, and the symbolic line registry. Any byte a clone could corrupt
// in its template shows up here.
func templateFingerprint(m *Machine) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(m.Mem.WordsInUse()))
	for a := 0; a < m.Mem.WordsInUse(); a++ {
		mix(m.Mem.Read(mem.Addr(a)))
	}
	for l := 0; l < m.Mem.NumLines(); l++ {
		meta := m.Mem.LineByIndex(l)
		mix(meta.Readers)
		mix(meta.Writers)
	}
	for l := 0; l < m.Mem.NumLines(); l++ {
		if _, locked := m.lockLines[l]; locked {
			mix(uint64(l))
		}
		for _, c := range m.lineLabels[l] {
			mix(uint64(c))
		}
	}
	return h
}

// TestCloneMutationLeavesTemplateUntouched: however aggressively a clone is
// driven — transactional and plain writes, fresh allocations, new line
// labels, a reseed — the template's complete image stays byte-identical.
// This is the regression guard for the experiment pool, which builds one
// populated template and hands clones to concurrent points.
func TestCloneMutationLeavesTemplateUntouched(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Seed = 11
	tmpl := NewMachine(cfg)
	var cells []mem.Addr
	tmpl.RunOne(func(th *Thread) {
		for i := 0; i < 8; i++ {
			c := th.AllocLines(1)
			th.Store(c, uint64(i)*3)
			cells = append(cells, c)
		}
		th.LabelLockLines(cells[0], 1, "template-lock")
	})
	before := templateFingerprint(tmpl)

	c := tmpl.Clone()
	c.Reseed(999)
	c.Run(4, func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.RTM(func() {
				v := th.Load(cells[th.ID])
				th.Store(cells[th.ID], v+1)
			})
		}
		th.Store(cells[7], ^uint64(0))
		extra := th.AllocLines(2)
		th.Store(extra, 0xdead)
		th.LabelLockLines(extra, 1, "clone-only-label")
	})

	if after := templateFingerprint(tmpl); after != before {
		t.Fatalf("template fingerprint changed after clone mutation: %#016x -> %#016x", before, after)
	}
	if cloneFp := templateFingerprint(c); cloneFp == before {
		t.Fatal("clone fingerprint identical to template after mutation (fingerprint is blind)")
	}
}

// TestCloneDeterminism: a clone re-running the template's workload with the
// same seed reproduces it exactly; a reseeded clone diverges.
func TestCloneDeterminism(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Seed = 9
	tmpl := NewMachine(cfg)
	var cells []mem.Addr
	tmpl.RunOne(func(th *Thread) {
		for i := 0; i < 4; i++ {
			cells = append(cells, th.AllocLines(1))
		}
	})

	body := func(th *Thread) {
		c := cells[th.ID]
		for i := 0; i < 200; i++ {
			th.RTM(func() {
				v := th.Load(c)
				th.Store(c, v+uint64(th.Rand().Intn(3)))
			})
		}
	}
	run := func(m *Machine) (vals [4]uint64, committed uint64) {
		ths := m.Run(4, body)
		for i, c := range cells {
			vals[i] = m.Mem.Read(c)
		}
		for _, th := range ths {
			committed += th.Stats.Committed
		}
		return
	}

	c1, c2, c3 := tmpl.Clone(), tmpl.Clone(), tmpl.Clone()
	v1, n1 := run(c1)
	v2, n2 := run(c2)
	if v1 != v2 || n1 != n2 {
		t.Fatalf("identical clones diverged: %v/%d vs %v/%d", v1, n1, v2, n2)
	}
	c3.Reseed(12345)
	v3, _ := run(c3)
	if v1 == v3 {
		t.Fatal("reseeded clone reproduced the original streams exactly (seed ignored?)")
	}
}
