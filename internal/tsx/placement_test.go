package tsx

import (
	"testing"

	"hle/internal/mem"
)

// placementWorkload makes every thread allocate, publish, mutate, and free
// blocks through the transactional allocator — the path where placement
// decides which objects share lines. The lock serializes list surgery so
// the program itself is deterministic under the machine's token schedule.
func placementWorkload(list, lock mem.Addr, rounds int) func(*Thread) {
	return func(t *Thread) {
		for r := 0; r < rounds; r++ {
			a := t.Alloc(r%5 + 1)
			t.HLERegion(func() {
				t.XAcquireCAS(lock, 0, 1)
				t.Store(a, uint64(t.ID)<<8|uint64(r))
				prev := t.Load(list)
				t.Store(list, uint64(a))
				if prev != 0 && r%3 == 0 {
					t.Free(mem.Addr(prev), (r-1+3)%5+1)
				}
				t.XReleaseStore(lock, 0)
			})
		}
	}
}

// TestPlacementForkEqualsContinuation re-proves the checkpoint-fork
// invariant under every placement policy: prefix + checkpoint + forked
// suffix must be bit-identical to one machine running prefix and suffix
// back to back, and the checkpoint must carry the layout so the fork keeps
// allocating under the same policy.
func TestPlacementForkEqualsContinuation(t *testing.T) {
	for _, p := range mem.Placements() {
		cfg := DefaultConfig(3)
		cfg.Seed = 11
		cfg.Layout = mem.Layout{Placement: p, ChunkLines: 8}

		build := func() (*Machine, mem.Addr, mem.Addr) {
			m := NewMachine(cfg)
			var list, lock mem.Addr
			m.RunOne(func(th *Thread) {
				list = th.AllocLines(1)
				lock = th.AllocLines(1)
			})
			return m, list, lock
		}

		parent, list, lock := build()
		parent.Run(3, placementWorkload(list, lock, 6))
		cp := parent.Checkpoint()
		if got := FromCheckpoint(cp).Mem.Layout().Placement; got != p {
			t.Fatalf("checkpoint dropped placement: got %v, want %v", got, p)
		}
		parentFp := templateFingerprint(parent)
		child := FromCheckpoint(cp)
		child.Run(3, placementWorkload(list, lock, 5))

		scratch, list2, lock2 := build()
		if list != list2 || lock != lock2 {
			t.Fatalf("%v: allocator nondeterminism in build", p)
		}
		scratch.Run(3, placementWorkload(list, lock, 6))
		scratch.Run(3, placementWorkload(list, lock, 5))

		if got, want := templateFingerprint(child), templateFingerprint(scratch); got != want {
			t.Errorf("%v: forked child diverged from straight-line run: %#x vs %#x", p, got, want)
		}
		if after := templateFingerprint(parent); after != parentFp {
			t.Errorf("%v: running the child mutated the parent: %#x vs %#x", p, after, parentFp)
		}
	}
}

// TestPlacementPoliciesDiverge sanity-checks that the axis is live: padded
// placement must put the threads' fresh blocks on different lines than
// packed does.
func TestPlacementPoliciesDiverge(t *testing.T) {
	alloc := func(l mem.Layout) []mem.Addr {
		cfg := DefaultConfig(1)
		cfg.Layout = l
		m := NewMachine(cfg)
		var got []mem.Addr
		m.RunOne(func(th *Thread) {
			for i := 0; i < 4; i++ {
				got = append(got, th.Alloc(2))
			}
		})
		return got
	}
	packed := alloc(mem.Layout{})
	padded := alloc(mem.Layout{Placement: mem.Padded})
	same := true
	for i := range packed {
		if packed[i] != padded[i] {
			same = false
		}
	}
	if same {
		t.Fatal("padded placement produced the packed layout")
	}
}
