package tsx

import "hle/internal/mem"

// HLERegion executes body with hardware lock elision semantics. Within
// body, a lock implementation issues XAcquire* operations (which begin an
// elided transaction) and XRelease* operations (which commit it). If the
// transaction aborts, hardware rolls back to the XACQUIRE and re-executes
// the acquiring instruction once without elision; HLERegion models that by
// re-running body with the next XAcquire suppressed.
//
// Because the whole closure re-runs, code between the start of body and the
// XAcquire operation must be idempotent — true of all the lock algorithms
// in internal/locks (their pre-acquire code only initializes thread-local
// queue nodes).
func (t *Thread) HLERegion(body func()) {
	for {
		if t.tryHLE(body) {
			return
		}
		// The re-issued acquiring store executes non-transactionally.
		t.elisionSuppressed = true
	}
	// The suppression flag is consumed by the next XAcquire, so if the
	// non-speculative attempt loses a race and retries, later attempts
	// elide again — exactly the dynamics Chapter 3 describes for TTAS.
}

func (t *Thread) tryHLE(body func()) (done bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(txAbortSignal); !isAbort {
				panic(r)
			}
			t.finishAbort()
			done = false
		}
	}()
	body()
	if t.tx != nil {
		panic("tsx: HLERegion body left an elided transaction open (missing XRelease?)")
	}
	return true
}

// xacquireStart begins an elided transaction whose acquiring store to a
// "wrote" newVal. Per the HLE specification the store is treated as a load:
// the lock's cache line joins the read set (except under the Chapter 7
// extension, where the lock line is tracked separately), while the
// transaction sees newVal when it reads the lock. It returns the observed
// pre-acquire lock value and the new transaction.
//
// The caller must charge its instruction cost (Step) BEFORE calling: from
// here to return there are no scheduler yields, so the value snapshot and
// the read-set registration are atomic with respect to other simulated
// threads, as a single XACQUIRE-prefixed instruction is on hardware.
func (t *Thread) xacquireStart(a mem.Addr, newVal uint64) (uint64, *txState) {
	old := t.m.Mem.Read(a)
	t.trace(EvXacqElide, a, old)
	tx := t.beginTx()
	tx.elided = true
	tx.hleOuter = true
	tx.elidedAddr = a
	tx.elidedOld = old
	tx.elidedVal = newVal
	// Eager subscription: the lock line joins the read set here. Under
	// the Chapter 7 extension the lock line is tracked separately, and
	// under lazy subscription the entry is deferred to the commit
	// pipeline (commitLazy) — the entire point of the mode.
	if !t.m.cfg.HWExt && !t.LazySubscription() {
		t.txTouchRead(tx, mem.LineOf(a))
	}
	return old, tx
}

// xacquireNested begins elision inside an already-running RTM transaction
// (flat nesting), used by Algorithm 3 when the hardware supports nesting
// HLE within RTM.
func (t *Thread) xacquireNested(tx *txState, a mem.Addr, newVal uint64) uint64 {
	t.txPreAccess(tx)
	old := t.txLoadValue(tx, a)
	tx.elided = true
	tx.elidedAddr = a
	tx.elidedOld = old
	tx.elidedVal = newVal
	// Nested elision always subscribes eagerly: its elision state ends at
	// the XRELEASE (before the RTM commit), so there is no commit-time
	// obligation to defer to. Lazy subscription applies to outer HLE and
	// to RTM predicates registered via LazySubscribe.
	if !t.m.cfg.HWExt {
		t.txTouchRead(tx, mem.LineOf(a))
	}
	return old
}

// consumeSuppression reports whether the next XAcquire must execute without
// elision (the hardware re-issue after an HLE abort), clearing the flag.
func (t *Thread) consumeSuppression() bool {
	if t.elisionSuppressed && t.tx == nil {
		t.elisionSuppressed = false
		return true
	}
	return false
}

// ReissuePending reports whether the next XAcquire will be the
// non-transactional re-issue following an HLE abort. Lock code whose
// acquire path tests the lock before the XACQUIRE instruction (TTAS) must
// consult this and skip the pre-test on a re-issue: hardware rolls back to
// the XACQUIRE instruction itself, so the re-issued test-and-set executes
// immediately — typically failing because the first aborter holds the lock
// — after which the software retry loop elides again. Rolling all the way
// back to the pre-test would instead wait for the lock and then acquire it
// for real, serializing forever (see Chapter 3's TTAS recovery analysis).
func (t *Thread) ReissuePending() bool {
	return t.elisionSuppressed && t.tx == nil
}

// XAcquireStore is an XACQUIRE-prefixed store of v to a. With elision it
// begins a transaction; after an abort it re-executes as a plain store.
func (t *Thread) XAcquireStore(a mem.Addr, v uint64) {
	if t.consumeSuppression() {
		t.Store(a, v)
		return
	}
	if tx := t.tx; tx != nil {
		if t.m.cfg.NestHLEInRTM && !tx.elided {
			t.Step(t.m.cfg.Costs.Store)
			t.xacquireNested(tx, a, v)
			return
		}
		t.Store(a, v) // prefix ignored inside a transaction (Haswell)
		return
	}
	t.Step(t.m.cfg.Costs.Store + t.m.cfg.Costs.Begin)
	t.xacquireStart(a, v)
}

// XAcquireSwap is an XACQUIRE-prefixed atomic exchange (the TTAS
// test-and-set and the MCS tail swap). It returns the value the swap
// observed; under elision that is the in-memory value at XACQUIRE time.
func (t *Thread) XAcquireSwap(a mem.Addr, v uint64) uint64 {
	if t.consumeSuppression() {
		return t.Swap(a, v)
	}
	if tx := t.tx; tx != nil {
		if t.m.cfg.NestHLEInRTM && !tx.elided {
			t.Step(t.m.cfg.Costs.RMW)
			return t.xacquireNested(tx, a, v)
		}
		return t.Swap(a, v)
	}
	t.Step(t.m.cfg.Costs.RMW + t.m.cfg.Costs.Begin)
	old, _ := t.xacquireStart(a, v)
	return old
}

// XAcquireFetchAdd is an XACQUIRE-prefixed fetch-and-add (the ticket lock's
// next-counter increment).
func (t *Thread) XAcquireFetchAdd(a mem.Addr, delta uint64) uint64 {
	if t.consumeSuppression() {
		return t.FetchAdd(a, delta)
	}
	if tx := t.tx; tx != nil {
		if t.m.cfg.NestHLEInRTM && !tx.elided {
			t.Step(t.m.cfg.Costs.RMW)
			old := t.txLoadValue(tx, a)
			t.xacquireNested(tx, a, old+delta)
			return old
		}
		return t.FetchAdd(a, delta)
	}
	t.Step(t.m.cfg.Costs.RMW + t.m.cfg.Costs.Begin)
	old, tx := t.xacquireStart(a, 0)
	tx.elidedVal = old + delta
	return old
}

// XAcquireCAS is an XACQUIRE-prefixed compare-and-swap. Elision begins only
// if the CAS would succeed (a failing CMPXCHG performs no store, so there
// is nothing to elide); a failing XAcquireCAS behaves like a plain failing
// CAS.
func (t *Thread) XAcquireCAS(a mem.Addr, old, new uint64) bool {
	if t.consumeSuppression() {
		return t.CAS(a, old, new)
	}
	if tx := t.tx; tx != nil {
		if t.m.cfg.NestHLEInRTM && !tx.elided {
			t.Step(t.m.cfg.Costs.RMW)
			cur := t.txLoadValue(tx, a)
			if cur != old {
				t.txTouchWrite(tx, mem.LineOf(a))
				return false
			}
			t.xacquireNested(tx, a, new)
			return true
		}
		return t.CAS(a, old, new)
	}
	t.Step(t.m.cfg.Costs.RMW + t.m.cfg.Costs.Begin)
	if t.m.Mem.Read(a) != old {
		t.m.requestLine(mem.LineOf(a), t, true) // failed CAS still RFOs
		return false
	}
	t.xacquireStart(a, new)
	return true
}

// xreleaseEnd validates the HLE restore rule and ends the elision: if this
// transaction was begun by the XAcquire itself it commits here; if the
// elision was nested inside an RTM region (Algorithm 3 with nesting
// support), only the elision state ends and the RTM region commits later.
func (t *Thread) xreleaseEnd(tx *txState, v uint64) {
	t.trace(EvXrelEnd, tx.elidedAddr, v)
	if v != tx.elidedOld {
		t.abortNow(CauseHLERestore, 0)
	}
	if _, ok := tx.writeBuf.get(tx.elidedAddr); ok {
		// The lock word was also written as data inside the critical
		// section; keep the restored value for publication.
		tx.bufWrite(tx.elidedAddr, v)
	}
	if tx.hleOuter {
		t.commit()
		return
	}
	tx.elided = false
	tx.elidedAddr = mem.Nil
}

// XReleaseStore is an XRELEASE-prefixed store. Ending an elided region it
// validates the restore rule and commits; otherwise it is a plain store.
func (t *Thread) XReleaseStore(a mem.Addr, v uint64) {
	tx := t.tx
	if tx == nil || !tx.elided || a != tx.elidedAddr {
		t.Store(a, v)
		return
	}
	t.Step(t.m.cfg.Costs.Store)
	t.txPreAccess(tx)
	t.xreleaseEnd(tx, v)
}

// XReleaseCAS is an XRELEASE-prefixed compare-and-swap, used by the
// adjusted ticket and CLH locks (Algorithms 5 and 7): the release attempts
// to CAS the lock back to its pre-acquire state. Under elision the CAS sees
// the illusory lock value; if it succeeds and restores the original value,
// the transaction commits. A failing XReleaseCAS performs no store and the
// transaction continues.
func (t *Thread) XReleaseCAS(a mem.Addr, old, new uint64) bool {
	tx := t.tx
	if tx == nil || !tx.elided || a != tx.elidedAddr {
		return t.CAS(a, old, new)
	}
	t.Step(t.m.cfg.Costs.RMW)
	t.txPreAccess(tx)
	cur := t.txLoadValue(tx, a)
	if cur != old {
		return false
	}
	t.xreleaseEnd(tx, new)
	return true
}

// InElision reports whether the thread is inside an elided (HLE)
// transaction, i.e. the lock it "holds" was never actually written.
func (t *Thread) InElision() bool { return t.tx != nil && t.tx.elided }
