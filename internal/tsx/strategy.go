package tsx

import "hle/internal/sim"

// SetStrategy installs (or with nil removes) a scheduling strategy for
// subsequent Run calls (see sim.Strategy). A strategy replaces the
// scheduler's default randomized min-clock policy entirely: the model
// checker in internal/explore installs one to force exact interleavings
// and to branch at every grant. In strategy mode the machine's watchdog
// and the injector's Grant hook are not consulted — the strategy controls
// every grant and may stop the run itself. Like injectors and observers,
// a strategy is per-experiment state: Clone does not carry it over.
func (m *Machine) SetStrategy(st sim.Strategy) {
	if m.threads != nil {
		panic("tsx: SetStrategy while the machine is running")
	}
	m.strategy = st
}

// MixTxState folds the thread's in-flight transaction state — the machine
// state invisible in simulated memory and line metadata — into mix: the
// write buffer's pending values, the HLE elision illusion, doom and
// progress counters. State fingerprints (internal/explore) need it: two
// machine states that agree on memory but differ in a write buffer diverge
// later, when the buffer publishes at commit. Outside a transaction it
// mixes a single zero. The callback form keeps the write buffer's
// internals (and their iteration-order concerns) out of the public API:
// entries are mixed in the deterministic order the transaction first wrote
// them.
func (t *Thread) MixTxState(mix func(uint64)) {
	tx := t.tx
	if tx == nil {
		mix(0)
		return
	}
	mix(1)
	mix(uint64(tx.accesses))
	var flags uint64
	if tx.doomed {
		flags |= 1
	}
	if tx.elided {
		flags |= 2
	}
	if tx.hleOuter {
		flags |= 4
	}
	if tx.lazyCheck != nil {
		flags |= 8
	}
	mix(flags)
	mix(uint64(tx.abortCause))
	mix(uint64(tx.elidedAddr))
	mix(tx.elidedOld)
	mix(tx.elidedVal)
	mix(uint64(tx.nest))
	mix(uint64(len(tx.readLines)))
	mix(uint64(len(tx.writeLines)))
	mix(uint64(len(tx.allocs)))
	mix(uint64(len(tx.frees)))
	for _, a := range tx.writeOrder {
		v, _ := tx.writeBuf.get(a)
		mix(uint64(a))
		mix(v)
	}
}
