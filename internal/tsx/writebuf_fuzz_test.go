package tsx

import (
	"testing"

	"hle/internal/mem"
)

// FuzzWriteBuf differentially fuzzes the open-addressing transactional
// store buffer against the Go map it replaced: any divergence in get/put
// results, visibility across reset, or entry counts is a bug in the probe
// sequence, the epoch invalidation, or the grow rehash. `go test` runs the
// seed corpus; `go test -fuzz=FuzzWriteBuf ./internal/tsx` explores.
func FuzzWriteBuf(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x40, 0x01, 0x00, 0x00})
	f.Add([]byte{0xc1, 0xff, 0x00, 0x00, 0x01, 0x01, 0xbe, 0xef})
	f.Add([]byte{0x81, 0x01, 0x00, 0x07})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		var w writeBuf
		w.init()
		if len(ops) > 0 && ops[0]&1 == 1 {
			// Start one reset short of epoch wraparound so the fuzzer also
			// exercises the wrap path, which must clear stale slots for
			// real instead of relying on epoch mismatch.
			w.epoch = ^uint32(0)
		}
		ref := map[mem.Addr]uint64{}
		for i := 0; i+3 < len(ops); i += 4 {
			op := ops[i] >> 6
			// A 14-bit address space: wide enough that grow triggers, small
			// enough that probe chains collide and revisit slots.
			a := mem.Addr(ops[i]&0x3f)<<8 | mem.Addr(ops[i+1])
			v := uint64(ops[i+2])<<8 | uint64(ops[i+3])
			switch op {
			case 0, 1: // two opcodes: puts dominate, as in real write sets
				_, had := ref[a]
				if isNew := w.put(a, v); isNew == had {
					t.Fatalf("op %d: put(%d) reported new=%v, reference had=%v", i, a, isNew, had)
				}
				ref[a] = v
			case 2:
				got, ok := w.get(a)
				want, had := ref[a]
				if ok != had || (had && got != want) {
					t.Fatalf("op %d: get(%d) = %d,%v, reference %d,%v", i, a, got, ok, want, had)
				}
			case 3:
				w.reset()
				ref = map[mem.Addr]uint64{}
			}
		}
		if w.n != len(ref) {
			t.Fatalf("entry count %d, reference holds %d", w.n, len(ref))
		}
		for a, want := range ref {
			if got, ok := w.get(a); !ok || got != want {
				t.Fatalf("final sweep: get(%d) = %d,%v, reference %d,true", a, got, ok, want)
			}
		}
	})
}
