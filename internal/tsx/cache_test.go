package tsx

import (
	"testing"

	"hle/internal/mem"
)

func TestLineCacheFIFO(t *testing.T) {
	c := newLineCache(2)
	if c.touch(1) {
		t.Fatal("cold line reported hit")
	}
	if !c.touch(1) {
		t.Fatal("warm line reported miss")
	}
	c.touch(2)
	c.touch(3) // evicts 1 (FIFO)
	if c.touch(1) {
		t.Fatal("evicted line reported hit")
	}
	if !c.touch(3) {
		t.Fatal("resident line reported miss")
	}
}

// TestCacheCostModel: with the model enabled, a strided scan over many
// lines costs more virtual time than repeated access to one line.
func TestCacheCostModel(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.CostJitter = -1
	cfg.CacheLines = 16
	cfg.MemWords = 1 << 14
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		arr := th.AllocLines(64 * mem.LineWords)
		hotStart := th.Clock()
		for i := 0; i < 64; i++ {
			_ = th.Load(arr) // same line every time
		}
		hot := th.Clock() - hotStart

		coldStart := th.Clock()
		for i := 0; i < 64; i++ {
			_ = th.Load(arr + mem.Addr((i%64)*mem.LineWords)) // new line each time
		}
		cold := th.Clock() - coldStart
		if cold <= hot {
			t.Fatalf("strided scan (%d cycles) not slower than hot loop (%d)", cold, hot)
		}
		// 64 misses at Miss=60 against ~1 warm-up miss.
		if cold < hot+60*50 {
			t.Fatalf("miss surcharge too small: cold=%d hot=%d", cold, hot)
		}
	})
}

// TestCacheModelOffByDefault: the default config charges no miss costs.
func TestCacheModelOffByDefault(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.CostJitter = -1
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		arr := th.AllocLines(64 * mem.LineWords)
		start := th.Clock()
		for i := 0; i < 64; i++ {
			_ = th.Load(arr + mem.Addr(i*mem.LineWords))
		}
		if got := th.Clock() - start; got != 64*m.cfg.Costs.Load {
			t.Fatalf("64 loads cost %d, want %d (no miss charges)", got, 64*m.cfg.Costs.Load)
		}
	})
}
