package tsx

// RTM executes body as a restricted transactional memory region
// (XBEGIN ... XEND). It returns (true, zero Status) if the transaction
// committed, or (false, abort status) if it aborted — the Go analogue of
// XBEGIN's fallback path. TSX provides a flat nesting model: an RTM region
// inside a transaction merely extends it, and any abort unwinds to the
// outermost begin.
//
// RTM makes no progress guarantee; callers must be prepared to fall back to
// a non-transactional path after repeated aborts.
func (t *Thread) RTM(body func()) (committed bool, st Status) {
	if tx := t.tx; tx != nil {
		// Flat nesting: run inline; the outermost region commits.
		tx.nest++
		body()
		tx.nest--
		return true, Status{}
	}
	t.Step(t.m.cfg.Costs.Begin)
	t.beginTx()
	return t.runTxBody(body)
}

// runTxBody executes body inside the already-begun transaction, committing
// on return and converting an abort unwind into a Status.
func (t *Thread) runTxBody(body func()) (committed bool, st Status) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(txAbortSignal); !isAbort {
				panic(r)
			}
			st = t.finishAbort()
			committed = false
		}
	}()
	body()
	t.commit()
	return true, Status{}
}

// Abort is XABORT: it aborts the current transaction with the given
// 8-bit code, unwinding to the outermost begin. Outside a transaction it is
// a no-op, as on hardware.
func (t *Thread) Abort(code uint8) {
	if t.tx == nil {
		return
	}
	t.abortNow(CauseExplicit, code)
}
