package tsx

import (
	"testing"

	"hle/internal/mem"
)

// TestSetLabelPrefix checks that a construction-time label prefix is
// prepended to labels registered while it is active, that lock-line
// registration is unaffected, and that restoring the previous prefix
// returns to unprefixed labels.
func TestSetLabelPrefix(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		b := th.AllocLines(1)
		c := th.AllocLines(1)

		prev := m.SetLabelPrefix("s07/")
		if prev != "" {
			t.Fatalf("initial prefix = %q, want empty", prev)
		}
		th.LabelLockLines(a, 1, "lock")
		th.LabelLines(b, 1, "size")
		if got := m.SetLabelPrefix(prev); got != "s07/" {
			t.Fatalf("restore returned %q, want %q", got, "s07/")
		}
		th.LabelLines(c, 1, "plain")

		la, lb, lc := int(a)>>mem.LineShift, int(b)>>mem.LineShift, int(c)>>mem.LineShift
		if got := m.LineLabel(la); got != "s07/lock" {
			t.Errorf("lock label = %q, want %q", got, "s07/lock")
		}
		if !m.IsLockLine(la) {
			t.Error("prefixed lock line lost its lock-line marking")
		}
		if got := m.LineLabel(lb); got != "s07/size" {
			t.Errorf("data label = %q, want %q", got, "s07/size")
		}
		if m.IsLockLine(lb) {
			t.Error("data line marked as lock line")
		}
		if got := m.LineLabel(lc); got != "plain" {
			t.Errorf("post-restore label = %q, want %q", got, "plain")
		}
	})
}
