package tsx

import (
	"strings"
	"testing"

	"hle/internal/mem"
)

// TestXAcquireFetchAddPaths exercises all four execution paths of the
// ticket lock's acquire instruction: fresh elision, suppressed re-issue,
// prefix-ignored inside RTM, and nested-ideal elision.
func TestXAcquireFetchAddPaths(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		next := th.AllocLines(2)

		// Fresh elision: returns the current counter, illusion +1.
		th.HLERegion(func() {
			if got := th.XAcquireFetchAdd(next, 1); got != 0 {
				t.Fatalf("elided F&A observed %d", got)
			}
			if th.Load(next) != 1 {
				t.Error("illusion value wrong")
			}
			if !th.XReleaseCAS(next, 1, 0) {
				t.Error("restore CAS failed")
			}
		})
		if th.Load(next) != 0 {
			t.Error("counter disturbed by elided run")
		}

		// Suppressed re-issue: really adds.
		th.elisionSuppressed = true
		if got := th.XAcquireFetchAdd(next, 1); got != 0 {
			t.Fatalf("re-issued F&A observed %d", got)
		}
		if th.InTx() || th.Load(next) != 1 {
			t.Fatal("re-issued F&A did not execute for real")
		}
		th.Store(next, 0)

		// Inside RTM without nesting support: plain transactional F&A.
		ok, _ := th.RTM(func() {
			if got := th.XAcquireFetchAdd(next, 5); got != 0 {
				t.Errorf("tx F&A observed %d", got)
			}
			if th.InElision() {
				t.Error("elision started inside RTM without nesting support")
			}
		})
		if !ok || th.Load(next) != 5 {
			t.Fatalf("transactional F&A lost: %d", th.Load(next))
		}
	})

	// Nested-ideal elision.
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.NestHLEInRTM = true
	m2 := NewMachine(cfg)
	m2.RunOne(func(th *Thread) {
		next := th.AllocLines(2)
		ok, _ := th.RTM(func() {
			if got := th.XAcquireFetchAdd(next, 1); got != 0 {
				t.Errorf("nested F&A observed %d", got)
			}
			if !th.InElision() {
				t.Error("nested elision did not start")
			}
			if !th.XReleaseCAS(next, 1, 0) {
				t.Error("nested restore CAS failed")
			}
		})
		if !ok || th.Load(next) != 0 {
			t.Fatal("nested-ideal elision disturbed the counter")
		}
	})
}

// TestXAcquireCASPaths exercises suppressed and in-transaction XAcquireCAS.
func TestXAcquireCASPaths(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)

		th.elisionSuppressed = true
		if !th.XAcquireCAS(lock, 0, 1) {
			t.Fatal("suppressed CAS on free lock failed")
		}
		if th.InTx() || th.Load(lock) != 1 {
			t.Fatal("suppressed CAS did not execute for real")
		}
		th.Store(lock, 0)

		ok, _ := th.RTM(func() {
			if !th.XAcquireCAS(lock, 0, 3) {
				t.Error("transactional CAS failed")
			}
			if th.InElision() {
				t.Error("elision inside non-nesting RTM")
			}
		})
		if !ok || th.Load(lock) != 3 {
			t.Fatal("transactional CAS lost")
		}
	})

	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.NestHLEInRTM = true
	m2 := NewMachine(cfg)
	m2.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		th.Store(lock, 9)
		ok, _ := th.RTM(func() {
			if th.XAcquireCAS(lock, 0, 1) {
				t.Error("nested CAS against wrong value succeeded")
			}
			if th.InElision() {
				t.Error("failed nested CAS started an elision")
			}
			if !th.XAcquireCAS(lock, 9, 1) {
				t.Error("matching nested CAS failed")
			}
			if !th.InElision() {
				t.Error("nested elision did not start")
			}
			th.XReleaseStore(lock, 9)
		})
		if !ok || th.Load(lock) != 9 {
			t.Fatal("nested elided CAS region misbehaved")
		}
	})
}

// TestNonTxAtomics covers the plain (outside-transaction) RMW paths.
func TestNonTxAtomics(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(1)
		if th.CAS(a, 1, 2) {
			t.Fatal("CAS with wrong expectation succeeded")
		}
		if !th.CAS(a, 0, 7) || th.Load(a) != 7 {
			t.Fatal("CAS failed")
		}
		if th.Swap(a, 9) != 7 || th.Load(a) != 9 {
			t.Fatal("Swap wrong")
		}
		if th.FetchAdd(a, 3) != 9 || th.Load(a) != 12 {
			t.Fatal("FetchAdd wrong")
		}
	})
}

// TestFreeLinesRoundTrip covers padded-allocation recycling through the
// thread cache and the global list.
func TestFreeLinesRoundTrip(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		a := th.AllocLines(3)
		th.Store(a, 5)
		th.FreeLines(a, 3)
		b := th.AllocLines(3) // thread cache hit
		if b != a {
			t.Fatalf("padded block not recycled: %d vs %d", b, a)
		}
		if th.Load(b) != 0 {
			t.Fatal("recycled block not re-zeroed")
		}
		// Transactional FreeLines rolls back on abort.
		th.RTM(func() {
			th.FreeLines(b, 3)
			th.Abort(1)
		})
		c := th.AllocLines(3)
		if c == b {
			t.Fatal("aborted FreeLines was applied")
		}
	})
}

// TestCauseStrings pins every abort cause's name.
func TestCauseStrings(t *testing.T) {
	want := map[Cause]string{
		CauseNone:          "none",
		CauseConflict:      "conflict",
		CauseCapacityWrite: "capacity-write",
		CauseCapacityRead:  "capacity-read",
		CauseExplicit:      "explicit",
		CauseSpurious:      "spurious",
		CausePause:         "pause",
		CauseHLERestore:    "hle-restore",
		CauseNested:        "nested",
		Cause(200):         "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Cause(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

// TestStatsFootprintMeans covers the workload-characterization helpers.
func TestStatsFootprintMeans(t *testing.T) {
	m := newTestMachine(1, 1)
	ths := m.Run(1, func(th *Thread) {
		arr := th.AllocLines(4 * mem.LineWords)
		for i := 0; i < 10; i++ {
			th.RTM(func() {
				for l := 0; l < 3; l++ {
					_ = th.Load(arr + mem.Addr(l*mem.LineWords))
				}
				th.Store(arr, 1)
			})
		}
	})
	s := ths[0].Stats
	if s.MeanReadLines() != 3 {
		t.Errorf("MeanReadLines = %v, want 3", s.MeanReadLines())
	}
	if s.MeanWriteLines() != 1 {
		t.Errorf("MeanWriteLines = %v, want 1", s.MeanWriteLines())
	}
	if s.MeanAccesses() != 4 {
		t.Errorf("MeanAccesses = %v, want 4", s.MeanAccesses())
	}
	var zero Stats
	if zero.MeanReadLines() != 0 || zero.MeanWriteLines() != 0 || zero.MeanAccesses() != 0 {
		t.Error("zero stats should derive zero means")
	}
	var agg Stats
	agg.Add(s)
	agg.Add(s)
	if agg.CommittedAccesses != 2*s.CommittedAccesses {
		t.Error("Add did not accumulate footprints")
	}
}

// TestMachineAccessorsAndDefaults covers construction paths.
func TestMachineAccessorsAndDefaults(t *testing.T) {
	m := NewMachine(Config{}) // everything defaulted
	cfg := m.Config()
	if cfg.Procs != 8 || cfg.WriteSetLines != 512 || cfg.Costs.Load == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	m.RunOne(func(th *Thread) {
		if th.Machine() != m {
			t.Error("Machine accessor wrong")
		}
		if th.Memory() != m.Mem {
			t.Error("Memory accessor wrong")
		}
	})

	defer func() {
		if recover() == nil {
			t.Error("expected panic for >64 procs")
		}
	}()
	NewMachine(Config{Procs: 100})
}

// TestXAcquireStoreNestedIdeal covers the store-variant nested path.
func TestXAcquireStoreNestedIdeal(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SpuriousPerAccess = 0
	cfg.NestHLEInRTM = true
	m := NewMachine(cfg)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		ok, _ := th.RTM(func() {
			th.XAcquireStore(lock, 1)
			if !th.InElision() {
				t.Error("nested store elision did not start")
			}
			th.XReleaseStore(lock, 0)
		})
		if !ok || th.Load(lock) != 0 {
			t.Fatal("nested elided store region misbehaved")
		}
	})
}

// TestStatusString is a smoke test that abort causes render in messages.
func TestStatusRendering(t *testing.T) {
	var names []string
	for c := CauseNone; c <= CauseNested; c++ {
		names = append(names, c.String())
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "conflict") || !strings.Contains(joined, "hle-restore") {
		t.Fatalf("cause names incomplete: %s", joined)
	}
}

// TestRunThreadCountGuard: thread IDs index 64-bit line masks, so Run must
// reject counts outside 1..64.
func TestRunThreadCountGuard(t *testing.T) {
	m := newTestMachine(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Run(65) did not panic")
		}
	}()
	m.Run(65, func(th *Thread) {})
}
