// Package tsx simulates Intel's Transactional Synchronization Extensions
// (TSX) as implemented by the Haswell microarchitecture, following the rules
// the paper extracts from Intel's documentation (§2):
//
//   - Read and write sets are tracked at cache-line granularity. The write
//     set must fit in the 32 KB L1 (512 lines); the read set is tracked
//     precisely in the L1 and imprecisely beyond it, with an eviction-abort
//     probability that rises as the read set grows.
//   - Conflict management is requestor wins: an incoming write dooms every
//     other transaction holding the line in its read or write set; an
//     incoming read dooms other transactional writers. The thread that
//     detects the conflict aborts.
//   - Transactions are prone to spurious aborts even without conflicts.
//   - PAUSE inside a transaction aborts it.
//   - HLE: an XACQUIRE-prefixed store begins a transaction and elides the
//     store, placing the lock's cache line in the read set while giving the
//     transaction the illusion the store happened. The XRELEASE store must
//     restore the lock to its pre-XACQUIRE value or the transaction aborts.
//     After an abort, the acquiring store is re-executed once without
//     elision.
//
// Hardware rollback is modeled by panic/recover unwinding to the begin
// point, which is why critical sections execute as closures.
package tsx

import (
	"maps"
	"math"

	"hle/internal/mem"
	"hle/internal/sim"
)

// CostModel assigns virtual-cycle costs to simulated operations. The
// absolute values are loosely modeled on Haswell latencies; only ratios
// matter for the shapes the benchmarks reproduce.
type CostModel struct {
	Load   uint64 // cached load
	Store  uint64 // cached store
	RMW    uint64 // atomic read-modify-write (LOCK-prefixed)
	Begin  uint64 // transaction begin (XBEGIN / XACQUIRE)
	Commit uint64 // transaction commit
	Abort  uint64 // rollback penalty
	Pause  uint64 // PAUSE instruction
	Wait   uint64 // one iteration of a hardware suspension loop (Chapter 7)
	Miss   uint64 // cache-miss surcharge (used when Config.CacheLines > 0)
}

// DefaultCosts is a Haswell-flavored cost model.
func DefaultCosts() CostModel {
	return CostModel{
		Load:   4,
		Store:  4,
		RMW:    20,
		Begin:  40,
		Commit: 30,
		Abort:  150,
		Pause:  10,
		Wait:   20,
		Miss:   60,
	}
}

// Subscription selects when an elided transaction's lock word enters its
// read set (see Config.Subscription).
type Subscription uint8

const (
	// SubEager subscribes at transaction begin (XACQUIRE semantics).
	SubEager Subscription = iota
	// SubLazy defers the subscription to commit time.
	SubLazy
)

// String returns the mode's short name.
func (s Subscription) String() string {
	if s == SubLazy {
		return "lazy"
	}
	return "eager"
}

// Config describes the simulated machine and its TSX implementation.
type Config struct {
	// Procs is the number of simulated hardware threads (the paper's
	// machine exposes 8).
	Procs int
	// Seed drives every random decision; equal seeds give equal runs.
	Seed int64
	// Quantum is the scheduler quantum in cycles (see internal/sim).
	Quantum uint64
	// MemWords is the initial size of simulated memory in 64-bit words.
	MemWords int
	// Layout selects the allocator's placement policy (packed, padded,
	// colored, arena — see mem.Layout). The zero value is the packed
	// baseline, byte-identical to the pre-placement allocator. Layout is
	// part of the machine image: checkpoints carry it (inside the memory
	// snapshot), so forked machines continue the exact layout.
	Layout mem.Layout

	// WriteSetLines is the hard write-set capacity: 512 lines models the
	// 32 KB L1 the paper measures in Figure 2.1.
	WriteSetLines int
	// L1ReadLines is the precisely-tracked read-set capacity.
	L1ReadLines int
	// ReadSetLines is the total read-set capacity of the imprecise
	// secondary tracking structure (Figure 2.1 shows reads surviving to
	// multi-megabyte sizes; 131072 lines models 8 MB).
	ReadSetLines int
	// EvictExponent shapes the imprecise tracker's per-line eviction
	// probability, ((n-L1)/(cap-L1))^EvictExponent.
	EvictExponent float64
	// SpuriousPerAccess is the probability that any single transactional
	// access spuriously aborts the transaction.
	SpuriousPerAccess float64
	// PauseAborts controls whether PAUSE inside a transaction aborts it
	// (true on Haswell).
	PauseAborts bool
	// MaxTxAccesses is a safety bound on accesses per transaction.
	MaxTxAccesses int

	// HWExt enables the Chapter 7 hardware extension: conflicts on the
	// elided lock line do not abort; the transaction keeps running from
	// its cache and suspends on a miss while the lock is held.
	HWExt bool
	// HWExtNoSuspend removes the extension's suspend-on-miss wait while
	// keeping the rest of HWExt — the deliberately unsound variant whose
	// elided readers can observe the Lemma 1 inconsistent snapshot. It
	// exists solely as a seeded fault for the model checker's mutation
	// tests (internal/explore); never set it in experiments.
	HWExtNoSuspend bool

	// Subscription selects when elided transactions subscribe to the
	// lock word. SubEager (the zero value) is the paper's scheme and
	// Haswell's HLE: the lock line joins the read set at XACQUIRE/begin.
	// SubLazy defers the subscription to commit time, removing the lock
	// line from the conflict footprint for the transaction's whole body —
	// the lazy-subscription design whose safety Dice et al. analyze in
	// "Hardware extensions to make lazy subscription safe". With no
	// LazyNo* flag set, SubLazy models their FIXED hardware: the
	// commit-time lock check is ordered before the write-set drain, and a
	// lock-line write arriving during the commit window aborts the
	// transaction. Threads may override the machine-wide mode via
	// Thread.SetSubscription. See Thread.LazySubscribe for the RTM path.
	Subscription Subscription
	// LazyNoCheckFirst removes the first fix: the commit-time lock check
	// runs AFTER the write-set drain, modeling hardware that validates
	// the subscription as part of (rather than before) commit. The abort
	// then fires too late — the published writes stand. Unsafe by
	// construction; exists to reproduce the Dice et al. hazards in
	// internal/explore. Never set it in experiments.
	LazyNoCheckFirst bool
	// LazyNoWindowAbort removes the second fix: a conflicting write
	// (including a pessimistic acquirer taking the lock) that dooms the
	// transaction during the commit window is ignored and the drain
	// proceeds. Unsafe by construction; explore-only.
	LazyNoWindowAbort bool
	// LazyNoCommitCheck skips the commit-time lock subscription entirely
	// (the transaction never subscribes at all). The most broken lazy
	// variant; seeded-fault fodder for explore's mutation tests.
	LazyNoCommitCheck bool
	// CacheLines enables per-thread cache-locality cost modeling: each
	// thread's accesses to lines outside its most-recent CacheLines
	// lines pay Costs.Miss extra. Zero (the default) disables the model;
	// conflict detection is unaffected either way.
	CacheLines int

	// CostJitter randomizes each charged cost multiplicatively in
	// [1, 1+CostJitter), modeling microarchitectural noise. Without it,
	// identical loops phase-lock into conflict-free lockstep patterns
	// that real machines never sustain. Negative disables; zero selects
	// the default (0.5).
	CostJitter float64

	// TraceRing, when positive, sizes a per-machine flight recorder that
	// keeps the last TraceRing engine events (see Machine.TraceEvents).
	// Watchdog diagnostic dumps read it; zero disables it. Unlike the
	// global Trace hook, each machine owns its ring, so host-parallel
	// experiment points may record concurrently.
	TraceRing int

	// Injector, when non-nil, is consulted on the engine's hot paths for
	// deterministic fault injection (see Injector). Nil injects nothing
	// and leaves runs byte-identical to a hook-free build. Clone drops
	// the injector: a cloned machine starts fault-free.
	Injector Injector

	// Observer, when non-nil, receives enriched transaction-boundary and
	// scheduler-grant events for profiling (see Observer). Nil observes
	// nothing at zero cost. Clone drops the observer: profiling
	// collectors are per-experiment, and a shared collector would race
	// under the host-parallel pool.
	Observer Observer

	// NestHLEInRTM, when true, lets an XACQUIRE inside an RTM
	// transaction start lock elision (Algorithm 3 verbatim). Haswell
	// does not support this — the paper's experiments emulate elision
	// with RTM — so the default is false and the prefix is ignored
	// inside RTM, exactly as on the real hardware.
	NestHLEInRTM bool

	Costs CostModel
}

// DefaultConfig returns a configuration modeling the paper's Core i7-4770
// testbed with n hardware threads.
func DefaultConfig(n int) Config {
	return Config{
		Procs:             n,
		Seed:              1,
		MemWords:          1 << 16,
		WriteSetLines:     512,    // 32 KB / 64 B
		L1ReadLines:       512,    // 32 KB / 64 B
		ReadSetLines:      131072, // 8 MB / 64 B
		EvictExponent:     8,
		SpuriousPerAccess: 1e-6,
		CostJitter:        0.5,
		PauseAborts:       true,
		MaxTxAccesses:     1 << 21,
		Costs:             DefaultCosts(),
	}
}

// MaxProcs is the most simulated hardware threads a machine supports
// (line metadata is a 64-bit thread mask).
const MaxProcs = 64

// Machine is a simulated multicore with TSX. Create one per experiment;
// its simulated memory persists across Run calls, so a workload can be
// populated non-transactionally and then exercised by many threads.
type Machine struct {
	cfg     Config
	Mem     *mem.Memory
	threads []*Thread

	// ring is the flight recorder (nil unless Config.TraceRing > 0).
	ring *traceRing
	// obs is the profiling observer installed via Config.Observer or
	// SetObserver (nil when profiling is off).
	obs Observer
	// lineLabels and lockLines are the symbolic cache-line registry fed
	// by Thread.LabelLines/LabelLockLines; profiles resolve hot line
	// indices through them. Nil until the first label is registered.
	lineLabels map[int]string
	lockLines  map[int]struct{}
	// labelPrefix is prepended to labels registered while it is set
	// (SetLabelPrefix); construction-time state only, not part of the
	// machine image.
	labelPrefix string
	// watchdog is the liveness check installed via SetWatchdog.
	watchdog func(minClock uint64) bool
	// strategy is the scheduling strategy installed via SetStrategy.
	strategy sim.Strategy
	// stopped records whether the previous Run was watchdog-stopped.
	stopped bool

	// logOneMinusP caches log1p(-SpuriousPerAccess) for the per-begin
	// geometric draw.
	logOneMinusP float64
}

// NewMachine builds a machine from cfg, applying defaults for zero fields.
func NewMachine(cfg Config) *Machine {
	def := DefaultConfig(cfg.Procs)
	if cfg.Procs <= 0 {
		cfg.Procs = 8
	}
	if cfg.Procs > 64 {
		panic("tsx: at most 64 simulated hardware threads")
	}
	if cfg.MemWords == 0 {
		cfg.MemWords = def.MemWords
	}
	if cfg.WriteSetLines == 0 {
		cfg.WriteSetLines = def.WriteSetLines
	}
	if cfg.L1ReadLines == 0 {
		cfg.L1ReadLines = def.L1ReadLines
	}
	if cfg.ReadSetLines == 0 {
		cfg.ReadSetLines = def.ReadSetLines
	}
	if cfg.EvictExponent == 0 {
		cfg.EvictExponent = def.EvictExponent
	}
	if cfg.MaxTxAccesses == 0 {
		cfg.MaxTxAccesses = def.MaxTxAccesses
	}
	if cfg.CostJitter == 0 {
		cfg.CostJitter = def.CostJitter
	} else if cfg.CostJitter < 0 {
		cfg.CostJitter = 0
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	m := &Machine{
		cfg: cfg,
		Mem: mem.NewWithLayout(cfg.MemWords, cfg.Layout),
	}
	if cfg.TraceRing > 0 {
		m.ring = &traceRing{buf: make([]TraceEvent, cfg.TraceRing)}
	}
	if cfg.SpuriousPerAccess > 0 {
		m.logOneMinusP = math.Log1p(-cfg.SpuriousPerAccess)
	}
	if cfg.Observer != nil {
		m.obs = cfg.Observer
		m.obs.BindMachine(m)
	}
	return m
}

// Config returns the machine's effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// Checkpoint is a frozen machine image: configuration, a deep copy of the
// simulated memory (word contents, line metadata, allocator state), and
// the symbolic line registry. It is immutable once captured — one
// checkpoint can seed any number of independent machines, concurrently —
// which is what makes it a fork point: capture once after an expensive
// phase (workload population, a soak's fill run), then FromCheckpoint per
// experiment instead of re-executing the phase.
//
// A checkpoint can only be captured while the machine is quiescent
// (between Run calls). Mid-run machine state lives partly in goroutine
// stacks — open transactions, scheduler handoff positions — which no
// snapshot can capture; every Run drains thread-local caches back into the
// memory image as bodies finish, so a quiescent machine's entire state IS
// its memory image plus configuration. Callers that want mid-run forking
// (the schedule explorer in internal/explore) instead extend a live run
// past the fork point and bank the outcomes, which is equivalent because
// strategy-driven runs are pure functions of their decision sequence.
type Checkpoint struct {
	cfg          Config
	snap         *mem.Snapshot
	lineLabels   map[int]string
	lockLines    map[int]struct{}
	logOneMinusP float64
}

// Checkpoint captures the machine's state. It must not be called while the
// machine is running.
func (m *Machine) Checkpoint() *Checkpoint {
	if m.threads != nil {
		panic("tsx: Checkpoint while the machine is running")
	}
	cp := &Checkpoint{
		cfg:          m.cfg,
		snap:         m.Mem.Snapshot(),
		lineLabels:   maps.Clone(m.lineLabels),
		lockLines:    maps.Clone(m.lockLines),
		logOneMinusP: m.logOneMinusP,
	}
	// Machines forked from the checkpoint start fault-free with an empty
	// flight recorder of their own: injectors, observers and watchdogs are
	// per-experiment, not part of the machine image, and a shared ring or
	// collector would race under the host-parallel pool. Line labels ARE
	// part of the image: they describe memory the checkpoint copied.
	cp.cfg.Injector = nil
	cp.cfg.Observer = nil
	return cp
}

// FromCheckpoint builds an independent machine from a checkpoint. The
// checkpoint is not consumed.
func FromCheckpoint(cp *Checkpoint) *Machine {
	c := &Machine{
		cfg:          cp.cfg,
		Mem:          mem.FromSnapshot(cp.snap),
		logOneMinusP: cp.logOneMinusP,
	}
	if c.cfg.TraceRing > 0 {
		c.ring = &traceRing{buf: make([]TraceEvent, c.cfg.TraceRing)}
	}
	c.lineLabels = maps.Clone(cp.lineLabels)
	c.lockLines = maps.Clone(cp.lockLines)
	return c
}

// Clone returns an independent machine whose simulated memory is a deep
// copy of m's. It is Checkpoint followed by FromCheckpoint; callers that
// fork more than once from the same state should capture the checkpoint
// themselves and amortize the copy.
func (m *Machine) Clone() *Machine {
	return FromCheckpoint(m.Checkpoint())
}

// Reseed changes the seed that drives the scheduler and per-thread RNG
// streams of subsequent Run calls. The experiment pool derives an
// independent seed per point, so a point's results depend only on its own
// declaration — never on which host worker ran it or in what order.
func (m *Machine) Reseed(seed int64) {
	if m.threads != nil {
		panic("tsx: Reseed while the machine is running")
	}
	m.cfg.Seed = seed
}

// Run simulates n hardware threads, each executing body, and returns the
// threads (whose clocks and statistics the caller may inspect). Run may be
// called repeatedly; simulated memory contents persist between calls.
func (m *Machine) Run(n int, body func(t *Thread)) []*Thread {
	if n <= 0 || n > 64 {
		panic("tsx: Run requires 1..64 threads (line metadata is a 64-bit mask)")
	}
	m.threads = make([]*Thread, n)
	m.stopped = false
	simCfg := sim.Config{Procs: n, Seed: m.cfg.Seed, Quantum: m.cfg.Quantum}
	if inj := m.cfg.Injector; inj != nil {
		simCfg.Grant = inj.Grant
	}
	if m.obs != nil {
		simCfg.OnGrant = m.obs.Grant
	}
	simCfg.Watchdog = m.watchdog
	simCfg.Strategy = m.strategy
	sim.Run(simCfg, n, func(p *sim.Proc) {
		t := &Thread{Proc: p, m: m, bit: 1 << uint(p.ID), jitterState: uint64(m.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(p.ID+1)*0xbf58476d1ce4e5b9}
		if m.cfg.CacheLines > 0 {
			t.cache = newLineCache(m.cfg.CacheLines)
		}
		m.threads[p.ID] = t
		body(t)
		if t.tx != nil {
			panic("tsx: thread finished inside a transaction")
		}
		t.flushFreeCache()
	})
	threads := m.threads
	m.threads = nil
	for _, t := range threads {
		if t != nil && t.Stopped() {
			m.stopped = true
			break
		}
	}
	return threads
}

// RunOne simulates a single thread; a convenience for setup code that
// populates data structures non-transactionally.
func (m *Machine) RunOne(body func(t *Thread)) *Thread {
	return m.Run(1, body)[0]
}

// Thread is one simulated hardware thread with TSX state. It embeds the
// scheduler proc, so Clock, Rand and ID are available directly.
type Thread struct {
	*sim.Proc
	m      *Machine
	tx     *txState
	txPool *txState

	// bit is the thread's line-mask bit, 1<<ID, precomputed: the
	// read/write-set paths consult it on every transactional access.
	bit uint64

	// jitterState drives the per-step cost noise (seeded per thread).
	jitterState uint64

	// cache approximates the thread's private cache for cost accounting
	// (nil unless Config.CacheLines > 0).
	cache *lineCache

	// freeCache is the thread-local allocator cache (jemalloc-style
	// tcache, matching the paper's allocator). Without it, a global
	// LIFO free list hands a node freed by one thread straight to the
	// next allocating thread, whose zeroing stores then conflict with
	// every transaction that recently traversed that node — a hot-spot
	// real multi-threaded allocators avoid. Allocated on first free:
	// the table's size-class arrays are ~6 KB, which would dominate
	// Thread's footprint for workloads that never free.
	freeCache *mem.FreeTable

	// elisionSuppressed makes the next XACQUIRE execute without elision.
	// Hardware sets this state when an HLE transaction aborts: the
	// acquiring store is re-issued once, non-transactionally.
	elisionSuppressed bool

	// serial tracks whether the thread is inside a MarkSerial region (a
	// critical section run under a really-held lock). Pure annotation
	// for the profiling observer; the engine never reads it.
	serial bool

	// sub/subSet hold the thread's subscription-mode override
	// (SetSubscription). When unset the machine's Config.Subscription
	// applies. Per-thread so that scheme constructors — which know
	// whether their lock elides — can select the mode without a
	// machine-wide reconfiguration, letting eager and lazy schemes share
	// one machine image (checkpoint forks, chaos soaks).
	sub    Subscription
	subSet bool

	// Stats accumulates transaction outcomes for this thread.
	Stats Stats
}

// Stats counts transaction outcomes on one thread, plus the footprint of
// committed transactions (read/write set sizes and access counts) for
// workload characterization.
type Stats struct {
	Begun     uint64
	Committed uint64
	Aborted   [numCauses]uint64

	// Footprint sums over committed transactions.
	CommittedReadLines  uint64
	CommittedWriteLines uint64
	CommittedAccesses   uint64
}

// MeanReadLines returns the mean read-set size of committed transactions.
func (s *Stats) MeanReadLines() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.CommittedReadLines) / float64(s.Committed)
}

// MeanWriteLines returns the mean write-set size of committed transactions.
func (s *Stats) MeanWriteLines() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.CommittedWriteLines) / float64(s.Committed)
}

// MeanAccesses returns the mean access count of committed transactions.
func (s *Stats) MeanAccesses() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.CommittedAccesses) / float64(s.Committed)
}

// TotalAborts sums aborts across causes.
func (s *Stats) TotalAborts() uint64 {
	var n uint64
	for _, a := range s.Aborted {
		n += a
	}
	return n
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Begun += other.Begun
	s.Committed += other.Committed
	for i := range s.Aborted {
		s.Aborted[i] += other.Aborted[i]
	}
	s.CommittedReadLines += other.CommittedReadLines
	s.CommittedWriteLines += other.CommittedWriteLines
	s.CommittedAccesses += other.CommittedAccesses
}

// Machine returns the machine this thread runs on.
func (t *Thread) Machine() *Machine { return t.m }

// Memory returns the machine's simulated memory.
func (t *Thread) Memory() *mem.Memory { return t.m.Mem }

// Step advances the thread's virtual clock by cost cycles plus the
// machine's configured jitter. It shadows sim.Proc.Step so that every
// engine-charged cost carries microarchitectural noise; without noise,
// identical loops on different threads phase-lock into artificial
// conflict-free schedules.
func (t *Thread) Step(cost uint64) {
	if j := t.m.cfg.CostJitter; j > 0 && cost > 0 {
		span := uint64(float64(cost) * j)
		if span > 0 {
			// A cheap LCG suffices for noise; math/rand on every
			// access would dominate the simulator's own runtime.
			t.jitterState = t.jitterState*6364136223846793005 + 1442695040888963407
			cost += (t.jitterState >> 33) % (span + 1)
		}
	}
	t.Proc.Step(cost)
}

// Work advances the thread's clock by n cycles of pure computation.
func (t *Thread) Work(n uint64) { t.Step(n) }

// drawSpuriousAt samples the access index at which the transaction
// spuriously aborts: a geometric draw with the machine's configured
// per-access probability (whose log(1-p) term is cached), or effectively
// infinity when spurious aborts are disabled.
func (t *Thread) drawSpuriousAt() int {
	if t.m.cfg.SpuriousPerAccess <= 0 {
		return math.MaxInt64 / 2
	}
	if t.m.cfg.SpuriousPerAccess >= 1 {
		return 1
	}
	u := t.Rand().Float64()
	if u <= 0 {
		u = 1e-300
	}
	n := math.Log(u) / t.m.logOneMinusP
	if n >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(n) + 1
}
