package tsx

import (
	"testing"

	"hle/internal/mem"
)

// TestSecondElisionInsideElision: Haswell supports one elision at a time;
// an XACQUIRE executed inside an elided region has its prefix ignored and
// runs as a transactional store. The inner "lock" is therefore really
// written at commit — the documented pitfall of nesting elided locks.
func TestSecondElisionInsideElision(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		outer := th.AllocLines(1)
		inner := th.AllocLines(1)
		th.HLERegion(func() {
			th.XAcquireStore(outer, 1)
			if !th.InElision() {
				t.Fatal("outer elision did not start")
			}
			// Inner acquire: prefix ignored, transactional store.
			if got := th.XAcquireSwap(inner, 1); got != 0 {
				t.Fatalf("inner swap observed %d", got)
			}
			if th.tx.elidedAddr != outer {
				t.Fatal("inner XAcquire replaced the elided lock")
			}
			th.XReleaseStore(inner, 0) // plain transactional store
			if !th.InTx() {
				t.Fatal("inner XRelease ended the outer elision")
			}
			th.XReleaseStore(outer, 0)
		})
		if th.Load(outer) != 0 || th.Load(inner) != 0 {
			t.Fatal("locks left disturbed")
		}
	})
}

// TestAbortStatusOutsideTxIsNoop: XABORT outside any transaction is a
// no-op, as on hardware.
func TestAbortOutsideTxIsNoop(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		th.Abort(9) // must not panic
		if th.InTx() {
			t.Fatal("Abort started a transaction?")
		}
	})
}

// TestXReleaseOnDifferentAddress: an XRELEASE store to a non-elided
// address is a plain transactional store and does not end the elision —
// this is why the unadjusted ticket lock cannot commit (Chapter 6).
func TestXReleaseOnDifferentAddress(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		other := th.AllocLines(1)
		aborted := false
		th.HLERegion(func() {
			th.XAcquireStore(lock, 1)
			if !th.InElision() {
				// Re-issued second attempt: complete non-speculatively.
				th.XReleaseStore(lock, 0)
				return
			}
			th.XReleaseStore(other, 7) // plain tx store; elision continues
			if !th.InTx() {
				t.Error("mismatched XRelease committed the elision")
			}
			aborted = true
			th.Abort(3) // give up; the region retries non-speculatively
		})
		if !aborted {
			t.Fatal("test path not exercised")
		}
		if th.Load(other) != 0 {
			t.Error("aborted transactional store leaked")
		}
	})
}

// TestRMWOnElidedLockInsideTx: CAS and FetchAdd against the elided address
// observe the illusion value.
func TestRMWOnElidedLockInsideTx(t *testing.T) {
	m := newTestMachine(1, 1)
	m.RunOne(func(th *Thread) {
		lock := th.AllocLines(1)
		th.HLERegion(func() {
			th.XAcquireStore(lock, 7)
			if !th.InElision() {
				th.XReleaseStore(lock, 0)
				return
			}
			if got := th.FetchAdd(lock, 1); got != 7 {
				t.Errorf("FetchAdd on elided lock saw %d, want illusion 7", got)
			}
			// The data RMW moved the lock line to the write set; an
			// XRELEASE restoring the original value still commits.
			th.XReleaseStore(lock, 0)
		})
		if th.Load(lock) != 0 {
			t.Errorf("lock = %d after region", th.Load(lock))
		}
	})
}

// TestConflictAddressExtension: the future-work abort information — the
// conflicting cache line — is reported precisely.
func TestConflictAddressExtension(t *testing.T) {
	m := newTestMachine(2, 9)
	var a, b, c mem.Addr
	m.RunOne(func(th *Thread) {
		a = th.AllocLines(1)
		b = th.AllocLines(1)
		c = th.AllocLines(1)
	})
	var reported mem.Addr
	m.Run(2, func(th *Thread) {
		if th.ID == 0 {
			_, st := th.RTM(func() {
				_ = th.Load(a)
				_ = th.Load(b)
				for i := 0; i < 200; i++ {
					_ = th.Load(c)
				}
			})
			if st.Cause == CauseConflict {
				reported = st.ConflictAddr
			}
		} else {
			th.Work(300)
			th.Store(b, 1) // conflict specifically on b
		}
	})
	if mem.LineOf(reported) != mem.LineOf(b) {
		t.Fatalf("conflict reported at %d, want line of %d", reported, b)
	}
}

// TestRunOneIsolation: sequential RunOne calls see each other's memory but
// never inherit transaction state.
func TestRunOneIsolation(t *testing.T) {
	m := newTestMachine(1, 1)
	var a mem.Addr
	m.RunOne(func(th *Thread) {
		a = th.AllocLines(1)
		th.Store(a, 42)
	})
	m.RunOne(func(th *Thread) {
		if th.InTx() {
			t.Fatal("fresh thread starts inside a transaction")
		}
		if th.Load(a) != 42 {
			t.Fatal("memory did not persist across runs")
		}
	})
}

// TestSpuriousDrawBounds sanity-checks the spurious-abort sampling at
// several configured rates.
func TestSpuriousDrawBounds(t *testing.T) {
	mk := func(p float64) *Machine {
		cfg := DefaultConfig(1)
		cfg.Seed = 3
		cfg.SpuriousPerAccess = p
		return NewMachine(cfg)
	}
	m := mk(0)
	m.RunOne(func(th *Thread) {
		if d := th.drawSpuriousAt(); d < 1<<40 {
			t.Errorf("p=0 draw %d should be effectively infinite", d)
		}
	})
	m = mk(1)
	m.RunOne(func(th *Thread) {
		if d := th.drawSpuriousAt(); d != 1 {
			t.Errorf("p=1 draw %d, want 1", d)
		}
	})
	m = mk(0.1)
	m.RunOne(func(th *Thread) {
		sum := 0
		const n = 2000
		for i := 0; i < n; i++ {
			sum += th.drawSpuriousAt()
		}
		meanDraw := float64(sum) / n
		if meanDraw < 7 || meanDraw > 13 {
			t.Errorf("geometric(0.1) mean %.1f, want ≈10", meanDraw)
		}
	})
}
