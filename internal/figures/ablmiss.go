package figures

import (
	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// AblationMissModel quantifies the optional per-thread cache-locality cost
// model (Config.CacheLines): with miss surcharges enabled, absolute
// throughput falls faster with tree size — closer to the paper's measured
// curves — while the relative scheme ordering (the reproduction target) is
// unchanged. This justifies keeping the model off by default.
func AblationMissModel(o Options) []*stats.Table {
	o = o.withDefaults()
	sizes := []int{128, 2048, 32768}
	if o.Quick {
		sizes = []int{128, 8192}
	}
	tb := &stats.Table{
		Title:  "Ablation — cache-miss cost model (HLE vs HLE-SCM on MCS, 10/10/80)",
		Header: []string{"tree size", "flat HLE tput", "flat SCM/HLE", "miss HLE tput", "miss SCM/HLE"},
	}
	for _, size := range sizes {
		row := []string{stats.SizeLabel(size)}
		for _, cacheLines := range []int{0, 512} {
			cfg := machineCfg(o, size)
			cfg.CacheLines = cacheLines
			m := tsx.NewMachine(cfg)
			var w harness.Workload
			m.RunOne(func(t *tsx.Thread) {
				w = mkRBTree(t, size, harness.MixModerate)
				w.Populate(t)
			})
			run := func(spec harness.SchemeSpec) harness.Result {
				var s core.Scheme
				m.RunOne(func(t *tsx.Thread) { s = spec.Build(t) })
				return harness.Run(m, s, w, harness.Config{Threads: o.Threads, CycleBudget: o.Budget})
			}
			hle := run(harness.SchemeSpec{Scheme: "HLE", Lock: "MCS"})
			scm := run(harness.SchemeSpec{Scheme: "HLE-SCM", Lock: "MCS"})
			row = append(row, stats.F2(hle.Throughput), stats.F2(scm.Throughput/hle.Throughput))
		}
		tb.AddRow(row...)
	}
	return []*stats.Table{tb}
}
