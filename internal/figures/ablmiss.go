package figures

import (
	"hle/internal/harness"
	"hle/internal/stats"
)

// AblationMissModel quantifies the optional per-thread cache-locality cost
// model (Config.CacheLines): with miss surcharges enabled, absolute
// throughput falls faster with tree size — closer to the paper's measured
// curves — while the relative scheme ordering (the reproduction target) is
// unchanged. This justifies keeping the model off by default.
func AblationMissModel(o Options) []*stats.Table {
	o = o.withDefaults()
	sizes := []int{128, 2048, 32768}
	if o.Quick {
		sizes = []int{128, 8192}
	}
	tb := &stats.Table{
		Title:  "Ablation — cache-miss cost model (HLE vs HLE-SCM on MCS, 10/10/80)",
		Header: []string{"tree size", "flat HLE tput", "flat SCM/HLE", "miss HLE tput", "miss SCM/HLE"},
	}
	cacheVariants := []int{0, 512}
	var groups []dsGroup
	for _, size := range sizes {
		for _, cacheLines := range cacheVariants {
			cfg := machineCfg(o, size)
			cfg.CacheLines = cacheLines
			groups = append(groups, dsGroup{
				size: size, mix: harness.MixModerate, mk: mkRBTree, threads: o.Threads,
				specs: []harness.SchemeSpec{
					{Scheme: "HLE", Lock: "MCS"},
					{Scheme: "HLE-SCM", Lock: "MCS"},
				},
				mcfg: &cfg,
				rcfg: &harness.Config{Threads: o.Threads, CycleBudget: o.Budget},
				runs: 1,
			})
		}
	}
	byGroup := dsRunGroups(o, groups)
	gi := 0
	for _, size := range sizes {
		row := []string{stats.SizeLabel(size)}
		for range cacheVariants {
			res := byGroup[gi]
			gi++
			hle, scm := res["HLE MCS"], res["HLE-SCM MCS"]
			row = append(row, stats.F2(hle.Throughput), stats.F2(scm.Throughput/hle.Throughput))
		}
		tb.AddRow(row...)
	}
	return []*stats.Table{tb}
}
