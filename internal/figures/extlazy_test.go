package figures_test

import (
	"testing"

	"hle/internal/figures"
)

// TestExtLazyCapacityAsymmetry is the ext-lazy acceptance criterion at
// quick scale. The sweep must demonstrate the FORTH-style asymmetric
// capacity story: at the tightest read cap (one line above the critical
// section's data footprint) the eager mode's lock-line subscription
// overflows the read set and it stops speculating, while the fixed lazy
// mode — whose read set is one line smaller — keeps eliding; at a write
// cap below the write footprint everyone serializes (the elided lock
// word is never written, so lazy buys nothing on the write axis). Abort
// attribution must separate the modes: commit-time subscription aborts
// exist only under lazy, and safe modes lose no updates (LazySweep
// itself panics otherwise; the naive mode's losses are reported, not
// asserted — explore proves they are reachable).
func TestExtLazyCapacityAsymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep at quick scale")
	}
	o := figures.Options{Quick: true, Seed: 1, Threads: 4}
	bench, tables := figures.LazySweep(o)
	if len(tables) != 1 {
		t.Fatalf("want 1 table, got %d", len(tables))
	}
	if want := 3 * 2 * 2; len(bench.Points) != want { // modes x rcaps x wcaps (quick)
		t.Fatalf("bench records %d points, want %d", len(bench.Points), want)
	}

	at := func(mode string, rcap, wcap int) *figures.LazyPoint {
		for i := range bench.Points {
			p := &bench.Points[i]
			if p.Mode == mode && p.ReadCap == rcap && p.WriteCap == wcap {
				return p
			}
		}
		t.Fatalf("no point for %s r%d w%d", mode, rcap, wcap)
		return nil
	}
	const tightRead, wideRead, tightWrite, wideWrite = 21, 32, 4, 8

	// The asymmetry cell: read cap fits lazy's footprint exactly, eager's
	// lock-line entry overflows it.
	eagerTight := at("eager", tightRead, wideWrite)
	fixedTight := at("lazy-fixed", tightRead, wideWrite)
	if eagerTight.SpecFrac != 0 {
		t.Errorf("eager at read cap %d speculated (frac %.3f), want full serialization (footprint+lock exceeds cap)",
			tightRead, eagerTight.SpecFrac)
	}
	if eagerTight.CapRead == 0 {
		t.Errorf("eager at read cap %d shows no read-capacity aborts", tightRead)
	}
	if fixedTight.SpecFrac == 0 {
		t.Errorf("lazy-fixed at read cap %d did not speculate — the lock line should stay out of the read set",
			tightRead)
	}

	// The write axis is mode-blind: below the write footprint everyone
	// serializes with write-capacity aborts.
	for _, mode := range []string{"eager", "lazy-fixed"} {
		p := at(mode, wideRead, tightWrite)
		if p.SpecFrac != 0 {
			t.Errorf("%s at write cap %d speculated (frac %.3f), want full serialization",
				mode, tightWrite, p.SpecFrac)
		}
		if p.CapWrite == 0 {
			t.Errorf("%s at write cap %d shows no write-capacity aborts", mode, tightWrite)
		}
	}

	// The generous cell: every mode speculates, and attribution separates
	// them — subscription aborts are a lazy-commit phenomenon.
	for _, mode := range []string{"eager", "lazy-naive", "lazy-fixed"} {
		if p := at(mode, wideRead, wideWrite); p.SpecFrac == 0 {
			t.Errorf("%s at generous caps never speculated", mode)
		}
	}
	if p := at("eager", wideRead, wideWrite); p.Subscr != 0 {
		t.Errorf("eager mode recorded %d subscription aborts, want 0", p.Subscr)
	}
	if p := at("lazy-fixed", wideRead, wideWrite); p.Subscr == 0 {
		t.Errorf("lazy-fixed under contention recorded no commit-time subscription aborts")
	}

	// Safe modes lose nothing (the sweep panics otherwise; assert anyway
	// so the record is checked end to end).
	for _, p := range bench.Points {
		if p.Mode != "lazy-naive" && p.Lost != 0 {
			t.Errorf("%s r%d w%d lost %d updates", p.Mode, p.ReadCap, p.WriteCap, p.Lost)
		}
	}
}
