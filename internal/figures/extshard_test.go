package figures_test

import (
	"testing"
	"time"

	"hle/internal/figures"
)

// TestExtShardRegimes is the ext-shard acceptance criterion, at quick
// scale: the sweep must demonstrate both regimes — under uniform load the
// plain-lock sharded store beats the best single-lock elided store
// (partitioning removes contention), and under the highest swept Zipf
// skew an eliding scheme beats the plain-lock store at the same shard
// count (inside a hot shard, only elision keeps readers concurrent) —
// and the recorded crossover must be consistent with the points.
func TestExtShardRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep at quick scale")
	}
	o := figures.Options{Quick: true, Seed: 1}
	start := time.Now()
	bench, tables := figures.ShardSweep(o)
	secs := time.Since(start).Seconds()
	t.Logf("quick sweep: %d points in %.1fs", len(bench.Points), secs)

	r := bench.Regimes
	if r.ShardingGain <= 1 {
		t.Errorf("uniform regime failed: sharded plain %.0f <= global elided %.0f (gain %.2f)",
			r.UniformShardedPlain, r.UniformGlobalElision, r.ShardingGain)
	}
	if r.ElisionGain <= 1 || r.SkewBestScheme == "" {
		t.Errorf("skew regime failed: best elided %s %.0f vs sharded plain %.0f (gain %.2f)",
			r.SkewBestScheme, r.SkewBestElided, r.SkewShardedPlain, r.ElisionGain)
	}
	if r.CrossoverSkew < 0 {
		t.Error("no crossover skew recorded despite elision winning at max skew")
	}

	// The bench record covers the full cross product.
	if want := 2 * 4 * 2 * 2; len(bench.Points) != want { // shards x schemes x skews x mixes (quick)
		t.Errorf("bench records %d points, want %d", len(bench.Points), want)
	}
	for _, p := range bench.Points {
		if p.Throughput <= 0 {
			t.Errorf("point %+v measured no throughput", p)
		}
	}

	// Sweep, regimes, and hot-shard heatmap tables; the heatmap must carry
	// real attribution (elision at max skew produces conflict aborts).
	if len(tables) != 3 {
		t.Fatalf("want 3 tables (sweep, regimes, heatmap), got %d", len(tables))
	}
	heat := tables[2]
	if len(heat.Rows) == 0 {
		t.Fatal("heatmap has no shard rows")
	}
	nonZero := false
	for _, row := range heat.Rows {
		for _, cell := range row[1:] {
			if cell != "0(0)" {
				nonZero = true
			}
		}
	}
	if !nonZero {
		t.Error("heatmap attributes no conflict aborts to any shard")
	}
}
