package figures_test

import (
	"strconv"
	"testing"

	"hle/internal/figures"
)

// TestExtAdaptTracksBestStatic is the ext-adapt acceptance criterion: at
// quick scale the adaptive scheme's throughput stays within tolerance of
// the best static scheme at every sweep point, without knowing which rung
// is best — the best static flips between RTM-LE and HLE-SCM across the
// sweep. Per-point tolerance is generous (the controller pays real probe
// and hysteresis costs near rung crossovers); the mean must be tighter.
func TestExtAdaptTracksBestStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep at quick scale")
	}
	o := figures.Options{Quick: true, Seed: 1}
	tables := figures.ByID("ext-adapt").Run(o)
	if len(tables) != 1 {
		t.Fatalf("want one table, got %d", len(tables))
	}
	tb := tables[0]
	ratioCol, switchCol := -1, -1
	for i, h := range tb.Header {
		switch h {
		case "adapt/best":
			ratioCol = i
		case "switches":
			switchCol = i
		}
	}
	if ratioCol < 0 || switchCol < 0 {
		t.Fatalf("table header changed: %v", tb.Header)
	}
	sum := 0.0
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[ratioCol], 64)
		if err != nil {
			t.Fatalf("row %v: bad ratio: %v", row, err)
		}
		if ratio < 0.70 {
			t.Errorf("point %s/%s: adaptive at %.2f of best static", row[0], row[1], ratio)
		}
		sum += ratio
		// The switch count is probation-bounded probing, not flapping: a
		// runaway controller would rack up hundreds of transitions in a
		// 500k-cycle budget (100 windows).
		if n, _ := strconv.Atoi(row[switchCol]); n > 40 {
			t.Errorf("point %s/%s: %d controller switches", row[0], row[1], n)
		}
	}
	if mean := sum / float64(len(tb.Rows)); mean < 0.85 {
		t.Errorf("mean adaptive/best ratio %.3f, want >= 0.85", mean)
	}
}
