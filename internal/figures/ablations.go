package figures

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// AblationSCMRetries sweeps the SCM MaxRetries knob the paper tunes in
// §5.1 ("the thread holding the auxiliary lock retries to complete its
// operation speculatively 10 times before giving up"). Too few retries
// serialize needlessly; very many add little.
func AblationSCMRetries(o Options) []*stats.Table {
	o = o.withDefaults()
	const size = 128
	retriesSweep := []int{1, 2, 5, 10, 20, 50}
	if o.Quick {
		retriesSweep = []int{1, 10, 50}
	}
	tb := &stats.Table{
		Title:  "Ablation — HLE-SCM MaxRetries (MCS lock, 128-node tree, 50/50 mix)",
		Header: []string{"max retries", "throughput", "attempts/op", "non-spec frac"},
	}
	// Every sweep point measures the same populated tree, so they all fork
	// one warm template instead of re-filling per point.
	warm := &harness.WarmTemplate{
		Machine: machineCfg(o, size),
		MkWorkload: func(t *tsx.Thread) harness.Workload {
			return mkRBTree(t, size, harness.MixExtensive)
		},
	}
	var points []harness.PointSpec
	for _, r := range retriesSweep {
		points = append(points, harness.PointSpec{
			Warm: warm,
			// The retry knob has no SchemeSpec spelling, so build the
			// scheme directly.
			MkScheme: func(t *tsx.Thread) core.Scheme {
				return core.NewHLESCM(locks.NewMCS(t), locks.NewMCS(t), core.SCMConfig{MaxRetries: r})
			},
			Cfg: harness.Config{Threads: o.Threads, CycleBudget: o.Budget},
		})
	}
	results := o.runPoints(points, func(i int) string {
		return fmt.Sprintf("retries%d", retriesSweep[i])
	})
	for i, r := range retriesSweep {
		res := results[i]
		tb.AddRow(stats.I(r), stats.F2(res.Throughput),
			stats.F2(res.Ops.AttemptsPerOp()), stats.F3(res.Ops.NonSpecFraction()))
	}
	return []*stats.Table{tb}
}

// AblationSpurious sweeps the spurious-abort rate: §2.2 observes that
// spurious aborts alone can trigger the avalanche ("even in a read-only
// workload, the MCS lock experiences severe avalanche behavior due to
// spurious aborts", §5.2). Higher rates must hurt HLE MCS far more than
// HLE-SCM MCS.
func AblationSpurious(o Options) []*stats.Table {
	o = o.withDefaults()
	const size = 4096
	rates := []float64{0, 1e-6, 1e-5, 1e-4}
	if o.Quick {
		rates = []float64{0, 1e-4}
	}
	tb := &stats.Table{
		Title:  "Ablation — spurious aborts vs avalanche (lookup-only 4K tree, MCS lock)",
		Header: []string{"rate/access", "HLE non-spec", "HLE tput", "SCM non-spec", "SCM tput"},
	}
	schemes := []string{"HLE", "HLE-SCM"}
	var points []harness.PointSpec
	for _, rate := range rates {
		// The spurious rate lives in the machine config, so each rate gets
		// its own warm template; both schemes at that rate fork it.
		cfg := machineCfg(o, size)
		cfg.SpuriousPerAccess = rate
		warm := &harness.WarmTemplate{
			Machine: cfg,
			MkWorkload: func(t *tsx.Thread) harness.Workload {
				return mkRBTree(t, size, harness.MixLookupOnly)
			},
		}
		for _, scheme := range schemes {
			points = append(points, harness.PointSpec{
				Warm:   warm,
				Scheme: harness.SchemeSpec{Scheme: scheme, Lock: "MCS"},
				Cfg:    harness.Config{Threads: o.Threads, CycleBudget: o.Budget},
			})
		}
	}
	results := o.runPoints(points, func(i int) string {
		return fmt.Sprintf("rate%s/%s", stats.E2(rates[i/len(schemes)]), schemes[i%len(schemes)])
	})
	for ri, rate := range rates {
		row := []string{stats.E2(rate)}
		for si := range schemes {
			res := results[ri*len(schemes)+si]
			row = append(row, stats.F3(res.Ops.NonSpecFraction()), stats.F2(res.Throughput))
		}
		tb.AddRow(row...)
	}
	return []*stats.Table{tb}
}

// AblationMultiAux compares single-aux-lock SCM against the future-work
// multi-group variant on a workload with several independent hot spots —
// the case the Chapter 4 remark anticipates ("a single conflicting thread
// does not have to conflict with the entire group").
func AblationMultiAux(o Options) []*stats.Table {
	o = o.withDefaults()
	tb := &stats.Table{
		Title:  "Ablation — single-group vs multi-group SCM (independent hot counter pairs)",
		Header: []string{"scheme", "throughput", "attempts/op", "non-spec frac"},
	}
	variants := []string{"HLE-SCM", "HLE-SCM-multi"}
	type row struct {
		tput float64
		res  harness.Result
	}
	rows := make([]row, len(variants))
	cols := make([]*obs.Collector, len(variants))
	harness.ParallelFor(o.Parallel, len(variants), func(vi int) {
		cfg := machineCfg(o, 64)
		cols[vi] = o.attachProfile(&cfg, variants[vi])
		m := tsx.NewMachine(cfg)
		var s core.Scheme
		var cells []mem.Addr
		m.RunOne(func(t *tsx.Thread) {
			s = harness.SchemeSpec{Scheme: variants[vi], Lock: "TTAS"}.Build(t)
			// Independent hot counters, each fought over by a pair
			// of threads with long critical sections: conflicts
			// within a pair are frequent but pairs never conflict
			// with each other — exactly the case where one global
			// conflict group over-serializes.
			for i := 0; i < 4; i++ {
				cells = append(cells, t.AllocLines(1))
			}
		})
		var res harness.Result
		threads := m.Run(o.Threads, func(t *tsx.Thread) {
			s.Setup(t)
			cell := cells[t.ID%len(cells)]
			for t.Clock() < o.Budget {
				s.Run(t, func() {
					v := t.Load(cell)
					t.Work(120)
					t.Store(cell, v+1)
				})
				// Randomized think time keeps the pair phases
				// colliding instead of settling into polite
				// alternation.
				t.Work(uint64(t.Rand().Intn(200)))
			}
		})
		for _, t := range threads {
			res.TSX.Add(t.Stats)
			if t.Clock() > res.MaxClock {
				res.MaxClock = t.Clock()
			}
		}
		res.Ops = s.TotalStats()
		rows[vi] = row{float64(res.Ops.Ops) * 1e6 / float64(res.MaxClock), res}
		harness.NotePoint()
	})
	for vi, variant := range variants {
		tb.AddRow(variant, stats.F2(rows[vi].tput),
			stats.F2(rows[vi].res.Ops.AttemptsPerOp()), stats.F3(rows[vi].res.Ops.NonSpecFraction()))
		o.emitProfile("hotpairs/"+variant, cols[vi])
	}
	return []*stats.Table{tb}
}

// AblationBackoff compares Dice et al.'s lemming-effect mitigation —
// exponential backoff on the TTAS acquire path — against the paper's SCM,
// which prevents the avalanche rather than damping it (Chapter 8 draws
// exactly this contrast).
func AblationBackoff(o Options) []*stats.Table {
	o = o.withDefaults()
	sizes := []int{64, 512, 4096}
	if o.Quick {
		sizes = []int{128}
	}
	tb := &stats.Table{
		Title:  "Ablation — backoff damping vs SCM prevention (10/10/80, 8 threads)",
		Header: []string{"tree size", "HLE TTAS", "HLE Backoff-TTAS", "HLE-SCM TTAS"},
	}
	var groups []dsGroup
	for _, size := range sizes {
		groups = append(groups, dsGroup{
			size: size, mix: harness.MixModerate, mk: mkRBTree, threads: o.Threads,
			specs: []harness.SchemeSpec{
				{Scheme: "Standard", Lock: "TTAS"},
				{Scheme: "HLE", Lock: "TTAS"},
				{Scheme: "HLE", Lock: "BackoffTTAS"},
				{Scheme: "HLE-SCM", Lock: "TTAS"},
			},
		})
	}
	byGroup := dsRunGroups(o, groups)
	for gi, size := range sizes {
		res := byGroup[gi]
		base := res["Standard TTAS"].Throughput
		tb.AddRow(stats.SizeLabel(size),
			stats.F2(res["HLE TTAS"].Throughput/base),
			stats.F2(res["HLE BackoffTTAS"].Throughput/base),
			stats.F2(res["HLE-SCM TTAS"].Throughput/base))
	}
	return []*stats.Table{tb}
}
