package figures

import (
	"encoding/json"
	"fmt"

	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/shard"
	"hle/internal/stamp"
	"hle/internal/stats"
	"hle/internal/traffic"
	"hle/internal/tsx"
)

// placeRegimes are the placement regimes the sweep ablates: the four
// allocator policies plus the heatmap-driven auto-pad pass (packed layout
// re-laid-out from a profiling burst's conflict heatmap).
var placeRegimes = []string{"packed", "padded", "colored", "arena", "auto-pad"}

// placeSchemes are the schemes each (workload, regime) cell measures:
// the plain-lock baseline (placement should barely matter — no
// speculation, no conflict aborts) and elision (where placement-induced
// false sharing turns into data-line aborts).
var placeSchemes = []string{"Standard", "HLE"}

// PlacePoint is one measured point of the placement sweep. Service
// workloads report throughput; STAMP apps report fixed-work runtime.
type PlacePoint struct {
	Workload      string  `json:"workload"`
	Policy        string  `json:"policy"`
	Scheme        string  `json:"scheme"`
	Throughput    float64 `json:"ops_per_mcycle,omitempty"`
	Runtime       uint64  `json:"runtime_cycles,omitempty"`
	Aborts        uint64  `json:"aborts"`
	DataConflicts uint64  `json:"data_conflicts"`
}

// PlaceAutoPad records one workload's profile→layout trajectory: what the
// burst planned and how far the plan moved the measured run's data-line
// conflict aborts relative to packed.
type PlaceAutoPad struct {
	Workload     string  `json:"workload"`
	PlanLines    []int   `json:"plan_lines"`
	PackedData   uint64  `json:"packed_data_conflicts"`
	AutoPadData  uint64  `json:"autopad_data_conflicts"`
	ReductionPct float64 `json:"reduction_pct"`
}

// PlaceBench is the recorded result of one placement sweep, written to
// BENCH_place.json by hle-bench -place-bench and checked by -place-guard.
type PlaceBench struct {
	Threads int            `json:"threads"`
	Budget  uint64         `json:"budget"`
	Runs    int            `json:"runs"`
	Quick   bool           `json:"quick"`
	Seconds float64        `json:"seconds"`
	Points  []PlacePoint   `json:"points"`
	AutoPad []PlaceAutoPad `json:"autopad"`
}

// JSON renders the benchmark record.
func (b *PlaceBench) JSON() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic("figures: marshal place bench: " + err.Error())
	}
	return append(out, '\n')
}

// placeAxes returns the workloads at the requested scale. The store's
// shard structures label their lines; rbtree/hashtable nodes are
// unlabeled, so their heat lands in the "?" bucket — placement attribution
// must survive both.
func placeAxes(o Options) (workloads []string, stampApps []string) {
	workloads = []string{"rbtree", "hashtable", "store"}
	stampApps = []string{"intruder", "vacation_low"}
	if o.Quick {
		workloads = []string{"rbtree", "store"}
		stampApps = []string{"intruder"}
	}
	return workloads, stampApps
}

// placeLayout maps a regime index to the machine layout of its template
// (auto-pad's layout is derived at run time from the burst instead).
func placeLayout(pi int) mem.Layout {
	return mem.Layout{Placement: mem.Placement(pi)}
}

// checkAttribution enforces the abort-attribution invariant on a profiled
// point: every abort classified exactly once, under every placement
// policy. A violation is a simulator bug, not a measurement.
func checkAttribution(where string, p *obs.Profile) {
	if p == nil {
		return
	}
	if p.CauseSum() != p.TotalAborts || p.TotalAborts != p.EngineAborts {
		panic(fmt.Sprintf("figures: %s: abort attribution broken: causes %d, observed %d, engine %d",
			where, p.CauseSum(), p.TotalAborts, p.EngineAborts))
	}
}

// ExtPlace ablates memory placement: STAMP + service workloads × placement
// policy × scheme, with per-regime abort attribution and the auto-pad
// profile→layout trajectory.
func ExtPlace(o Options) []*stats.Table {
	_, tables := PlaceSweep(o)
	return tables
}

// PlaceSweep runs the placement sweep and returns both the benchmark
// record (for BENCH_place.json) and the rendered tables. The Seconds field
// is zero; the caller stamps wall-clock time (tables never include it, so
// figure output stays byte-identical across hosts and -parallel).
func PlaceSweep(o Options) (*PlaceBench, []*stats.Table) {
	o = o.withDefaults()
	workloads, stampApps := placeAxes(o)
	const (
		dsSize    = 128
		storeKeys = 256
		shards    = 8
		storeSkew = 1.2
	)

	// One warm template per (workload, regime). The store templates are
	// forked once up front to expose their Data handle — each regime's
	// store lives at different addresses, so each needs its own binding.
	// The auto-pad template is derived from the packed one by a serial
	// profiling burst, so the whole template matrix is deterministic
	// before any point fans out.
	type cell struct {
		tmpl *harness.WarmTemplate
		data *shard.Data
	}
	mkTemplate := func(w string, l mem.Layout) *harness.WarmTemplate {
		switch w {
		case "rbtree", "hashtable":
			cfg := machineCfg(o, dsSize)
			cfg.Layout = l
			mk := mkRBTree
			if w == "hashtable" {
				mk = mkHashTable
			}
			return &harness.WarmTemplate{
				Machine: cfg,
				MkWorkload: func(t *tsxThread) harness.Workload {
					return mk(t, dsSize, harness.MixExtensive)
				},
			}
		case "store":
			cfg := machineCfg(o, 4*storeKeys)
			cfg.MemWords = storeKeys*64 + 1<<17
			cfg.Layout = l
			return &harness.WarmTemplate{
				Machine: cfg,
				MkWorkload: func(t *tsxThread) harness.Workload {
					return traffic.New(t, shard.DataConfig{Shards: shards, Backend: shard.RBTree},
						traffic.Spec{Keys: storeKeys, Mix: harness.MixModerate, ZipfS: storeSkew})
				},
			}
		}
		panic("figures: unknown placement workload " + w)
	}
	storeScheme := func(data *shard.Data, scheme string) func(t *tsxThread) core.Scheme {
		maker := shard.SchemeMakerByName(scheme)
		return func(t *tsxThread) core.Scheme {
			return traffic.Route(shard.Bind(t, data, shard.StoreConfig{MkScheme: maker}))
		}
	}

	bench := &PlaceBench{Threads: o.Threads, Budget: o.Budget, Runs: o.Runs, Quick: o.Quick}
	cells := make(map[[2]int]cell)
	for wi, w := range workloads {
		for pi := range placeRegimes[:4] {
			c := cell{tmpl: mkTemplate(w, placeLayout(pi))}
			if w == "store" {
				_, wk := c.tmpl.Fork()
				c.data = wk.(*traffic.Workload).Data()
			}
			cells[[2]int{wi, pi}] = c
		}
		// Regime 4: the auto-pad pass, seeded from the packed template.
		packed := cells[[2]int{wi, 0}]
		apCfg := harness.AutoPadConfig{
			Scheme:  harness.SchemeSpec{Scheme: "HLE", Lock: "MCS"},
			Threads: o.Threads,
			Burst:   o.Budget / 2,
			Seed:    harness.DeriveSeed(o.Seed, wi, 101),
		}
		if w == "store" {
			apCfg.MkScheme = func(t *tsxThread) core.Scheme {
				return storeScheme(packed.data, "HLE")(t)
			}
		}
		padded, report := harness.AutoPad(packed.tmpl, apCfg)
		c := cell{tmpl: padded}
		if w == "store" {
			_, wk := padded.Fork()
			c.data = wk.(*traffic.Workload).Data()
		}
		cells[[2]int{wi, 4}] = c
		bench.AutoPad = append(bench.AutoPad, PlaceAutoPad{
			Workload:  w,
			PlanLines: report.PlanLines,
		})
	}

	// The measured grid: every point profiles (collection is passive, so
	// measurements and tables are byte-identical with -profile on or off)
	// because the attribution columns and heatmaps read the profiles.
	type coord struct{ wi, pi, ki int }
	var points []harness.PointSpec
	var coords []coord
	for wi, w := range workloads {
		for pi := range placeRegimes {
			c := cells[[2]int{wi, pi}]
			for ki, scheme := range placeSchemes {
				cfg := harness.Config{Threads: o.Threads, CycleBudget: o.Budget, Warmup: o.Budget}
				cfg.Profile = o.Profile
				if cfg.Profile == nil {
					cfg.Profile = &obs.Options{}
				}
				p := harness.PointSpec{
					Warm: c.tmpl,
					Seed: harness.DeriveSeed(o.Seed, wi, pi, ki),
					Runs: o.Runs,
					Cfg:  cfg,
				}
				if w == "store" {
					p.MkScheme = storeScheme(c.data, scheme)
				} else {
					p.Scheme = harness.SchemeSpec{Scheme: scheme, Lock: "MCS"}
				}
				points = append(points, p)
				coords = append(coords, coord{wi, pi, ki})
			}
		}
	}
	results := harness.RunPoints(o.Parallel, points)
	if o.Profile != nil && o.ProfileSink != nil {
		for pi, r := range results {
			if r.Profile != nil {
				c := coords[pi]
				o.ProfileSink(fmt.Sprintf("%s/%s/%s",
					workloads[c.wi], placeRegimes[c.pi], placeSchemes[c.ki]), r.Profile)
			}
		}
	}
	byPoint := make(map[coord]harness.Result, len(results))
	for pi, r := range results {
		c := coords[pi]
		byPoint[c] = r
		checkAttribution(fmt.Sprintf("%s/%s/%s",
			workloads[c.wi], placeRegimes[c.pi], placeSchemes[c.ki]), r.Profile)
	}

	// STAMP under placement: each app runs the fixed workload to
	// completion under HLE/MCS per regime. The packed run doubles as the
	// auto-pad burst: its full-heatmap profile plans the padding.
	stampSpec := harness.SchemeSpec{Scheme: "HLE", Lock: "MCS"}
	apps := stamp.Apps()
	appMaker := func(name string) func(t *tsxThread) stamp.App {
		for _, a := range apps {
			if a.Name == name {
				return a.Make
			}
		}
		panic("figures: unknown STAMP app " + name)
	}
	stampRun := func(name string, l mem.Layout, label string) (stamp.Result, *obs.Profile) {
		cfg := tsx.DefaultConfig(o.Threads)
		cfg.Seed = o.Seed
		cfg.MemWords = 1 << 19
		cfg.Layout = l
		col := obs.New(obs.Options{TopLines: -1})
		col.SetLabel(label)
		cfg.Observer = col
		res, err := stamp.Run(cfg, stampSpec, appMaker(name), o.Threads)
		if err != nil {
			panic(fmt.Sprintf("figures: ext-place %s: %v", label, err))
		}
		prof := col.Profile()
		prof.EngineAborts = res.TSX.TotalAborts()
		checkAttribution(label, prof)
		if o.Profile != nil && o.ProfileSink != nil {
			o.ProfileSink(label, prof)
		}
		return res, prof
	}

	type stampCell struct {
		res  stamp.Result
		prof *obs.Profile
		plan []int
	}
	grid := make([]stampCell, len(stampApps)*len(placeRegimes))
	at := func(si, pi int) *stampCell { return &grid[si*len(placeRegimes)+pi] }
	// Phase 1: packed runs, whose heatmaps seed the auto-pad plans.
	harness.ParallelFor(o.Parallel, len(stampApps), func(si int) {
		c := at(si, 0)
		c.res, c.prof = stampRun(stampApps[si], placeLayout(0),
			"stamp/"+stampApps[si]+"/packed")
		for _, l := range c.prof.Lines {
			if len(c.plan) >= harness.DefaultAutoPadTopK {
				break
			}
			if !l.LockLine && l.Count > 0 {
				c.plan = append(c.plan, l.Line)
			}
		}
		harness.NotePoint()
	})
	// Phase 2: the remaining regimes, fanned out over (app, regime).
	harness.ParallelFor(o.Parallel, len(stampApps)*(len(placeRegimes)-1), func(i int) {
		si, pi := i/(len(placeRegimes)-1), i%(len(placeRegimes)-1)+1
		l := placeLayout(pi)
		if placeRegimes[pi] == "auto-pad" {
			plan := make(map[int]bool)
			for _, line := range at(si, 0).plan {
				plan[line] = true
			}
			l = mem.Layout{}.WithPadLines(plan)
		}
		c := at(si, pi)
		c.res, c.prof = stampRun(stampApps[si], l,
			"stamp/"+stampApps[si]+"/"+placeRegimes[pi])
		harness.NotePoint()
	})

	// Assembly, all in declaration order.
	dataConf := func(p *obs.Profile) uint64 { return p.Cause(obs.ClassConflictDataLine) }

	sweep := &stats.Table{
		Title: fmt.Sprintf("Extension — service workloads × placement policy, %d threads (MCS lock)", o.Threads),
		Header: []string{"workload", "policy", "Standard ops/Mc", "HLE ops/Mc",
			"HLE aborts", "HLE data-conf"},
	}
	for wi, w := range workloads {
		for pi, policy := range placeRegimes {
			row := []string{w, policy}
			var hle harness.Result
			for ki, scheme := range placeSchemes {
				r := byPoint[coord{wi, pi, ki}]
				bench.Points = append(bench.Points, PlacePoint{
					Workload: w, Policy: policy, Scheme: scheme,
					Throughput:    r.Throughput,
					Aborts:        r.Profile.TotalAborts,
					DataConflicts: dataConf(r.Profile),
				})
				row = append(row, stats.F2(r.Throughput))
				if ki == 1 {
					hle = r
				}
			}
			sweep.AddRow(append(row,
				stats.I(int(hle.Profile.TotalAborts)), stats.I(int(dataConf(hle.Profile))))...)
		}
	}

	attr := &stats.Table{
		Title: "Placement abort attribution (HLE): where each policy's aborts land",
		Header: []string{"workload", "policy", "lock-line", "data-line",
			"capacity", "other", "hottest"},
	}
	for wi, w := range workloads {
		for pi, policy := range placeRegimes {
			p := byPoint[coord{wi, pi, 1}].Profile
			lock := p.Cause(obs.ClassConflictLockLine)
			data := dataConf(p)
			capac := p.Cause(obs.ClassCapacityWrite) + p.Cause(obs.ClassCapacityRead)
			other := p.TotalAborts - lock - data - capac
			hot := "-"
			if hp := p.HeatByPrefix(); len(hp) > 0 {
				hot = fmt.Sprintf("%s:%d", hp[0].Prefix, hp[0].Count)
			}
			attr.AddRow(w, policy, stats.I(int(lock)), stats.I(int(data)),
				stats.I(int(capac)), stats.I(int(other)), hot)
		}
	}

	st := &stats.Table{
		Title:  fmt.Sprintf("STAMP × placement (HLE MCS, %d threads): fixed-work runtime", o.Threads),
		Header: []string{"app", "policy", "runtime Mc", "aborts", "data-conf"},
	}
	for si, app := range stampApps {
		for pi, policy := range placeRegimes {
			c := at(si, pi)
			bench.Points = append(bench.Points, PlacePoint{
				Workload: "stamp/" + app, Policy: policy, Scheme: "HLE",
				Runtime:       c.res.Runtime,
				Aborts:        c.prof.TotalAborts,
				DataConflicts: dataConf(c.prof),
			})
			st.AddRow(app, policy, stats.F2(float64(c.res.Runtime)/1e6),
				stats.I(int(c.prof.TotalAborts)), stats.I(int(dataConf(c.prof))))
		}
	}

	// The trajectory: packed → auto-pad, per workload, on the measured
	// (not burst) runs.
	for i := range workloads {
		e := &bench.AutoPad[i]
		e.PackedData = dataConf(byPoint[coord{i, 0, 1}].Profile)
		e.AutoPadData = dataConf(byPoint[coord{i, 4, 1}].Profile)
	}
	for si, app := range stampApps {
		bench.AutoPad = append(bench.AutoPad, PlaceAutoPad{
			Workload:    "stamp/" + app,
			PlanLines:   at(si, 0).plan,
			PackedData:  dataConf(at(si, 0).prof),
			AutoPadData: dataConf(at(si, len(placeRegimes)-1).prof),
		})
	}
	traj := &stats.Table{
		Title:  "Auto-pad trajectory: data-line conflict aborts, packed vs heatmap-driven re-layout",
		Header: []string{"workload", "plan lines", "packed", "auto-pad", "reduction"},
	}
	for i := range bench.AutoPad {
		e := &bench.AutoPad[i]
		if e.PackedData > 0 {
			e.ReductionPct = 100 * (1 - float64(e.AutoPadData)/float64(e.PackedData))
		}
		traj.AddRow(e.Workload, stats.I(len(e.PlanLines)),
			stats.I(int(e.PackedData)), stats.I(int(e.AutoPadData)),
			fmt.Sprintf("%.1f%%", e.ReductionPct))
	}

	return bench, []*stats.Table{sweep, attr, st, traj}
}
