package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// tsxThread shortens signatures in this file.
type tsxThread = tsx.Thread

// ExtScaling extends Figure 5.1 beyond the paper's 8-thread Haswell: the
// simulator models up to 64 hardware threads, letting us ask whether SCM's
// advantage grows or saturates at higher core counts.
func ExtScaling(o Options) []*stats.Table {
	o = o.withDefaults()
	const size = 128
	counts := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		counts = []int{1, 8, 32}
	}
	// Group 0 is the one-thread no-locking baseline; each thread count then
	// gets its own group with a machine sized for that many procs.
	groups := []dsGroup{{
		size: size, mix: harness.MixModerate, mk: mkRBTree, threads: 1,
		specs: []harness.SchemeSpec{{Scheme: "NoLock"}},
	}}
	for _, n := range counts {
		oN := o
		oN.Threads = n
		cfg := machineCfg(oN, size)
		groups = append(groups, dsGroup{
			size: size, mix: harness.MixModerate, mk: mkRBTree, threads: n,
			specs: []harness.SchemeSpec{
				{Scheme: "Standard", Lock: "MCS"},
				{Scheme: "HLE", Lock: "MCS"},
				{Scheme: "HLE-SCM", Lock: "MCS"},
				{Scheme: "Opt-SLR-SCM", Lock: "MCS"},
			},
			mcfg: &cfg,
		})
	}
	byGroup := dsRunGroups(o, groups)
	base := byGroup[0]["NoLock"].Throughput

	tb := &stats.Table{
		Title:  "Extension — scaling beyond the paper's 8 threads (128-node tree, 10/10/80, MCS lock)",
		Header: []string{"threads", "Standard", "HLE", "HLE-SCM", "Opt-SLR-SCM"},
	}
	for ni, n := range counts {
		res := byGroup[ni+1]
		tb.AddRow(stats.I(n),
			stats.F2(res["Standard MCS"].Throughput/base),
			stats.F2(res["HLE MCS"].Throughput/base),
			stats.F2(res["HLE-SCM MCS"].Throughput/base),
			stats.F2(res["Opt-SLR-SCM MCS"].Throughput/base))
	}
	return []*stats.Table{tb}
}

// ExtCSLength probes sensitivity to critical-section length at a fixed
// conflict probability: the longer the transaction, the wider the window
// in which a single abort can avalanche, and the more SCM buys.
func ExtCSLength(o Options) []*stats.Table {
	o = o.withDefaults()
	lengths := []uint64{0, 50, 200, 800}
	if o.Quick {
		lengths = []uint64{0, 400}
	}
	tb := &stats.Table{
		Title:  "Extension — critical-section length sensitivity (128-node tree, 10/10/80, MCS lock)",
		Header: []string{"extra work/op", "HLE non-spec", "SCM non-spec", "SCM/HLE speedup"},
	}
	var groups []dsGroup
	for _, extra := range lengths {
		groups = append(groups, extraWorkGroup(o, extra))
	}
	byGroup := dsRunGroups(o, groups)
	for gi, extra := range lengths {
		res := byGroup[gi]
		tb.AddRow(stats.U(extra),
			stats.F3(res["HLE MCS"].Ops.NonSpecFraction()),
			stats.F3(res["HLE-SCM MCS"].Ops.NonSpecFraction()),
			stats.F2(res["HLE-SCM MCS"].Throughput/res["HLE MCS"].Throughput))
	}
	return []*stats.Table{tb}
}

// paddedWorkload stretches every critical section with extra computation
// without changing its data footprint.
type paddedWorkload struct {
	inner harness.Workload
	extra uint64
}

// Name implements harness.Workload.
func (w *paddedWorkload) Name() string {
	return fmt.Sprintf("%s+work(%d)", w.inner.Name(), w.extra)
}

// Populate implements harness.Workload.
func (w *paddedWorkload) Populate(t *tsxThread) { w.inner.Populate(t) }

// NextOp implements harness.Workload.
func (w *paddedWorkload) NextOp(t *tsxThread) harness.Op {
	return w.inner.NextOp(t)
}

// Exec implements harness.Workload: the inner op plus the padding work.
func (w *paddedWorkload) Exec(t *tsxThread, op harness.Op) {
	w.inner.Exec(t, op)
	if w.extra != 0 {
		t.Work(w.extra)
	}
}

// extraWorkGroup declares the HLE-vs-HLE-SCM comparison over the padded
// workload with the given per-op padding.
func extraWorkGroup(o Options, extra uint64) dsGroup {
	const size = 128
	return dsGroup{
		size: size, mix: harness.MixModerate, threads: o.Threads,
		mk: func(t *tsxThread, sz int, mix harness.Mix) harness.Workload {
			return &paddedWorkload{inner: harness.NewRBTree(t, sz, mix), extra: extra}
		},
		specs: []harness.SchemeSpec{
			{Scheme: "HLE", Lock: "MCS"},
			{Scheme: "HLE-SCM", Lock: "MCS"},
		},
	}
}
