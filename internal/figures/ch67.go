package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// FigCh6 demonstrates Chapter 6: the HLE-adjusted ticket and CLH locks are
// usable under elision and behave like the MCS lock — both the avalanche
// under plain HLE and the SCM rescue — whereas the unadjusted versions
// cannot elide at all (their speculative path is the standard path).
func FigCh6(o Options) []*stats.Table {
	o = o.withDefaults()
	locksUnderTest := []string{"MCS", "AdjTicket", "AdjCLH", "Ticket", "CLH"}
	var tables []*stats.Table
	for _, scheme := range []string{"HLE", "HLE-SCM"} {
		tb := &stats.Table{
			Title: fmt.Sprintf("Ch 6 — fair locks under %s: speedup over standard lock / non-spec fraction, 10/10/80, %d threads",
				scheme, o.Threads),
			Header: []string{"tree size", "MCS", "AdjTicket", "AdjCLH", "Ticket", "CLH"},
		}
		fr := &stats.Table{
			Title:  fmt.Sprintf("Ch 6 — non-speculative fraction under %s", scheme),
			Header: []string{"tree size", "MCS", "AdjTicket", "AdjCLH", "Ticket", "CLH"},
		}
		sizes := treeSizes(o)
		if !o.Quick {
			sizes = []int{8, 128, 2048, 32768}
		}
		for _, size := range sizes {
			var specs []harness.SchemeSpec
			for _, l := range locksUnderTest {
				specs = append(specs,
					harness.SchemeSpec{Scheme: "Standard", Lock: l},
					harness.SchemeSpec{Scheme: scheme, Lock: l})
			}
			res := dsRun(o, size, harness.MixModerate, mkRBTree, specs, o.Threads)
			speedRow := []string{stats.SizeLabel(size)}
			fracRow := []string{stats.SizeLabel(size)}
			for _, l := range locksUnderTest {
				speedRow = append(speedRow,
					stats.F2(res[scheme+" "+l].Throughput/res["Standard "+l].Throughput))
				fracRow = append(fracRow,
					stats.F3(res[scheme+" "+l].Ops.NonSpecFraction()))
			}
			tb.AddRow(speedRow...)
			fr.AddRow(fracRow...)
		}
		tables = append(tables, tb, fr)
	}
	return tables
}

// FigCh7 evaluates the Chapter 7 hardware extension: plain HLE, HLE with
// the extension, and HLE-SCM, compared across contention levels. The
// extension must close most of the avalanche gap in hardware alone.
func FigCh7(o Options) []*stats.Table {
	o = o.withDefaults()
	var tables []*stats.Table
	for _, lock := range []string{"TTAS", "MCS"} {
		tb := &stats.Table{
			Title: fmt.Sprintf("Ch 7 — HLE vs HLE+extension vs HLE-SCM, speedup over standard %s lock, 10/10/80, %d threads",
				lock, o.Threads),
			Header: []string{"tree size", "HLE", "HLE-HWExt", "HLE-SCM", "HWExt non-spec", "HLE non-spec"},
		}
		sizes := treeSizes(o)
		if !o.Quick {
			sizes = []int{8, 128, 2048, 32768}
		}
		for _, size := range sizes {
			// The extension needs its own machine configuration.
			base := dsRun(o, size, harness.MixModerate, mkRBTree, []harness.SchemeSpec{
				{Scheme: "Standard", Lock: lock},
				{Scheme: "HLE", Lock: lock},
				{Scheme: "HLE-SCM", Lock: lock},
			}, o.Threads)
			ext := dsRunHWExt(o, size, harness.MixModerate, lock)
			std := base["Standard "+lock].Throughput
			tb.AddRow(stats.SizeLabel(size),
				stats.F2(base["HLE "+lock].Throughput/std),
				stats.F2(ext.Throughput/std),
				stats.F2(base["HLE-SCM "+lock].Throughput/std),
				stats.F3(ext.Ops.NonSpecFraction()),
				stats.F3(base["HLE "+lock].Ops.NonSpecFraction()))
		}
		tables = append(tables, tb)
	}
	return tables
}

// dsRunHWExt runs the HLE scheme on a machine with the Chapter 7 extension
// enabled.
func dsRunHWExt(o Options, size int, mix harness.Mix, lock string) harness.Result {
	cfg := machineCfg(o, size)
	cfg.HWExt = true
	return harness.Point(cfg, harness.SchemeSpec{Scheme: "HLE-HWExt", Lock: lock},
		func(t *tsx.Thread) harness.Workload { return harness.NewRBTree(t, size, mix) },
		harness.Config{Threads: o.Threads, CycleBudget: o.Budget})
}
