package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/stats"
)

// FigCh6 demonstrates Chapter 6: the HLE-adjusted ticket and CLH locks are
// usable under elision and behave like the MCS lock — both the avalanche
// under plain HLE and the SCM rescue — whereas the unadjusted versions
// cannot elide at all (their speculative path is the standard path).
func FigCh6(o Options) []*stats.Table {
	o = o.withDefaults()
	locksUnderTest := []string{"MCS", "AdjTicket", "AdjCLH", "Ticket", "CLH"}
	sizes := treeSizes(o)
	if !o.Quick {
		sizes = []int{8, 128, 2048, 32768}
	}
	// One group per size carrying the full (lock × scheme) matrix: a single
	// populate per size serves both schemes' tables.
	var groups []dsGroup
	for _, size := range sizes {
		var specs []harness.SchemeSpec
		for _, l := range locksUnderTest {
			specs = append(specs,
				harness.SchemeSpec{Scheme: "Standard", Lock: l},
				harness.SchemeSpec{Scheme: "HLE", Lock: l},
				harness.SchemeSpec{Scheme: "HLE-SCM", Lock: l})
		}
		groups = append(groups, dsGroup{
			size: size, mix: harness.MixModerate, mk: mkRBTree, threads: o.Threads,
			specs: specs,
		})
	}
	byGroup := dsRunGroups(o, groups)

	var tables []*stats.Table
	for _, scheme := range []string{"HLE", "HLE-SCM"} {
		tb := &stats.Table{
			Title: fmt.Sprintf("Ch 6 — fair locks under %s: speedup over standard lock / non-spec fraction, 10/10/80, %d threads",
				scheme, o.Threads),
			Header: []string{"tree size", "MCS", "AdjTicket", "AdjCLH", "Ticket", "CLH"},
		}
		fr := &stats.Table{
			Title:  fmt.Sprintf("Ch 6 — non-speculative fraction under %s", scheme),
			Header: []string{"tree size", "MCS", "AdjTicket", "AdjCLH", "Ticket", "CLH"},
		}
		for gi, size := range sizes {
			res := byGroup[gi]
			speedRow := []string{stats.SizeLabel(size)}
			fracRow := []string{stats.SizeLabel(size)}
			for _, l := range locksUnderTest {
				speedRow = append(speedRow,
					stats.F2(res[scheme+" "+l].Throughput/res["Standard "+l].Throughput))
				fracRow = append(fracRow,
					stats.F3(res[scheme+" "+l].Ops.NonSpecFraction()))
			}
			tb.AddRow(speedRow...)
			fr.AddRow(fracRow...)
		}
		tables = append(tables, tb, fr)
	}
	return tables
}

// FigCh7 evaluates the Chapter 7 hardware extension: plain HLE, HLE with
// the extension, and HLE-SCM, compared across contention levels. The
// extension must close most of the avalanche gap in hardware alone.
func FigCh7(o Options) []*stats.Table {
	o = o.withDefaults()
	locks := []string{"TTAS", "MCS"}
	sizes := treeSizes(o)
	if !o.Quick {
		sizes = []int{8, 128, 2048, 32768}
	}
	// Two groups per (lock, size): the baseline schemes on a standard
	// machine, and HLE-HWExt on a machine with the extension enabled (the
	// extension is a hardware property, so it needs its own configuration;
	// as before it runs without warmup, once).
	var groups []dsGroup
	for _, lock := range locks {
		for _, size := range sizes {
			groups = append(groups, dsGroup{
				size: size, mix: harness.MixModerate, mk: mkRBTree, threads: o.Threads,
				specs: []harness.SchemeSpec{
					{Scheme: "Standard", Lock: lock},
					{Scheme: "HLE", Lock: lock},
					{Scheme: "HLE-SCM", Lock: lock},
				},
			})
			extCfg := machineCfg(o, size)
			extCfg.HWExt = true
			groups = append(groups, dsGroup{
				size: size, mix: harness.MixModerate, mk: mkRBTree, threads: o.Threads,
				specs: []harness.SchemeSpec{{Scheme: "HLE-HWExt", Lock: lock}},
				mcfg:  &extCfg,
				rcfg:  &harness.Config{Threads: o.Threads, CycleBudget: o.Budget},
				runs:  1,
			})
		}
	}
	byGroup := dsRunGroups(o, groups)

	var tables []*stats.Table
	gi := 0
	for _, lock := range locks {
		tb := &stats.Table{
			Title: fmt.Sprintf("Ch 7 — HLE vs HLE+extension vs HLE-SCM, speedup over standard %s lock, 10/10/80, %d threads",
				lock, o.Threads),
			Header: []string{"tree size", "HLE", "HLE-HWExt", "HLE-SCM", "HWExt non-spec", "HLE non-spec"},
		}
		for _, size := range sizes {
			base := byGroup[gi]
			ext := byGroup[gi+1]["HLE-HWExt "+lock]
			gi += 2
			std := base["Standard "+lock].Throughput
			tb.AddRow(stats.SizeLabel(size),
				stats.F2(base["HLE "+lock].Throughput/std),
				stats.F2(ext.Throughput/std),
				stats.F2(base["HLE-SCM "+lock].Throughput/std),
				stats.F3(ext.Ops.NonSpecFraction()),
				stats.F3(base["HLE "+lock].Ops.NonSpecFraction()))
		}
		tables = append(tables, tb)
	}
	return tables
}
