package figures

import (
	"fmt"

	"hle/internal/chaos"
	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/stats"
)

// ExtChaos is the chaos soak as a figure: every scheme × {TTAS, MCS} is
// driven through a serializability-checked tree workload under randomized
// fault schedules (spurious-abort storms, capacity squeezes, preemptions,
// grant skew, holder stalls) with liveness watchdogs armed. The paper's
// Chapter 4 argues SCM is livelock- and starvation-free by construction;
// this table shows every scheme with a non-speculative fallback surviving
// adversarial schedules — all points serializable, zero watchdog trips —
// while counting the faults actually absorbed. NoLock is excluded: it is a
// single-threaded baseline with no locks to attack.
func ExtChaos(o Options) []*stats.Table {
	o = o.withDefaults()
	schedules := 40
	spec := chaos.SoakSpec{}
	if o.Quick {
		schedules = 20
		// Smaller soaks keep the quick figure to a few seconds: fewer
		// threads and ops, with the fault horizon shrunk to match the
		// shorter run so schedules still land inside it.
		spec.Threads = 4
		spec.OpsPerThread = 30
		spec.Horizon = 60_000
	}
	schemes := []string{
		"Standard", "HLE", "HLE-HWExt", "RTM-LE", "HLE-SCM",
		"HLE-SCM-ideal", "HLE-SCM-multi", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM",
	}
	locks := []string{"TTAS", "MCS"}

	type point struct{ si, li, rep int }
	var pts []point
	for si := range schemes {
		for li := range locks {
			for rep := 0; rep < schedules; rep++ {
				pts = append(pts, point{si, li, rep})
			}
		}
	}
	results := make([]chaos.SoakResult, len(pts))
	cols := make([]*obs.Collector, len(pts))
	harness.ParallelFor(o.Parallel, len(pts), func(i int) {
		p := pts[i]
		s := spec
		s.Scheme = harness.SchemeSpec{Scheme: schemes[p.si], Lock: locks[p.li]}
		s.Seed = harness.DeriveSeed(o.Seed, p.si, p.li, p.rep)
		if o.Profile != nil {
			col := obs.New(*o.Profile)
			col.SetLabel(s.Scheme.String())
			cols[i] = col
			s.Observer = col
		}
		results[i] = chaos.RunSoak(s)
	})
	for i, p := range pts {
		o.emitProfile(fmt.Sprintf("%s/%s/rep%d", schemes[p.si], locks[p.li], p.rep), cols[i])
	}

	tb := &stats.Table{
		Title: fmt.Sprintf("Extension — chaos soak: %d randomized fault schedules per point, serializability-checked, watchdogs armed", schedules),
		Header: []string{"scheme", "lock", "schedules", "serializable", "trips",
			"inj aborts", "inj stalls", "squeezes", "skews"},
	}
	for si, sch := range schemes {
		for li, lk := range locks {
			var ok, trips int
			var n chaos.Counters
			for i, p := range pts {
				if p.si != si || p.li != li {
					continue
				}
				r := results[i]
				switch {
				case r.Failure != nil:
					trips++
				case r.CheckErr == nil:
					ok++
				}
				c := r.Injected
				n.Aborts += c.Aborts
				n.Stalls += c.Stalls
				n.Squeezes += c.Squeezes
				n.Skews += c.Skews
			}
			tb.AddRow(sch, lk, stats.I(schedules), stats.I(ok), stats.I(trips),
				stats.I(n.Aborts), stats.I(n.Stalls), stats.I(n.Squeezes), stats.I(n.Skews))
		}
	}
	return []*stats.Table{tb}
}
