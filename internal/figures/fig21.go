package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// Fig21 reproduces Figure 2.1: a single thread runs transactions that read
// (or write) every cache line of an array of a given size, and we report
// the fraction of transactions that fail. The write curve must hit a wall
// at the 32 KB L1; the read curve survives past the L2 into the megabytes
// before eviction failures take over; and both show a small spurious-abort
// floor even for tiny sets.
func Fig21(o Options) []*stats.Table {
	o = o.withDefaults()
	sizesBytes := []int{128, 512, 2 << 10, 8 << 10, 32 << 10, 128 << 10,
		512 << 10, 2 << 20, 4 << 20, 6 << 20, 8 << 20}
	reps := 3000
	if o.Quick {
		sizesBytes = []int{128, 8 << 10, 32 << 10, 64 << 10, 2 << 20, 8 << 20}
		reps = 400
	}

	table := &stats.Table{
		Title:  "Fig 2.1 — sporadic speculative failures, 1 thread, no contention",
		Header: []string{"set size", "read fail frac", "write fail frac"},
	}
	// Flatten to one point per (size, read|write) and fan out; each point
	// builds its own single-thread machine, so results are order-free.
	fails := make([]float64, 2*len(sizesBytes))
	cols := make([]*obs.Collector, len(fails))
	harness.ParallelFor(o.Parallel, len(fails), func(i int) {
		lines := sizesBytes[i/2] / 64
		if lines == 0 {
			lines = 1
		}
		// Small sets get extra repetitions to resolve the ~1e-4
		// spurious floor; large sets need fewer (their failure rates
		// are large and each transaction is long).
		r := reps
		if lines <= 512 && !o.Quick {
			r = reps * 10
		}
		if lines > 4096 {
			r = reps / 10
			if r < 30 {
				r = 30
			}
		}
		fails[i], cols[i] = setScan(o, lines, r, i%2 == 1)
		harness.NotePoint()
	})
	for si, bytes := range sizesBytes {
		table.AddRow(stats.SizeLabel(bytes), stats.E2(fails[2*si]), stats.E2(fails[2*si+1]))
	}
	for i, col := range cols {
		mode := "read"
		if i%2 == 1 {
			mode = "write"
		}
		o.emitProfile(fmt.Sprintf("%s-%s", stats.SizeLabel(sizesBytes[i/2]), mode), col)
	}
	return []*stats.Table{table}
}

// setScan runs reps transactions touching n distinct lines and returns the
// failure fraction (plus the point's collector when profiling is on).
func setScan(o Options, n, reps int, write bool) (float64, *obs.Collector) {
	cfg := tsx.DefaultConfig(1)
	cfg.Seed = o.Seed
	cfg.MemWords = (n + 8) * mem.LineWords
	mode := "read"
	if write {
		mode = "write"
	}
	col := o.attachProfile(&cfg, "RTM-scan-"+mode)
	m := tsx.NewMachine(cfg)
	failures := 0
	m.RunOne(func(t *tsx.Thread) {
		arr := t.AllocLines(n * mem.LineWords)
		for i := 0; i < reps; i++ {
			ok, _ := t.RTM(func() {
				for l := 0; l < n; l++ {
					a := arr + mem.Addr(l*mem.LineWords)
					if write {
						t.Store(a, uint64(i))
					} else {
						_ = t.Load(a)
					}
				}
			})
			if !ok {
				failures++
			}
		}
	})
	return float64(failures) / float64(reps), col
}
