package figures

import (
	"fmt"

	"hle/internal/core"
	"hle/internal/harness"
	"hle/internal/hwext"
	"hle/internal/locks"
	"hle/internal/mem"
	"hle/internal/obs"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// lazyModes are the subscription modes the sweep compares. Eager is real
// Haswell HLE (the lock line joins the read set at XACQUIRE). Lazy-naive
// defers the subscription and applies neither of the Dice et al. fixes —
// it is unsafe, and the "lost" column is allowed to show it. Lazy-fixed
// is the full pipeline: commit-time lock check ordered before the
// write-set drain, plus the commit-window abort.
var lazyModes = []string{"eager", "lazy-naive", "lazy-fixed"}

// lazyWorkload is the FORTH-style footprint of each critical section:
// a large shared read scan, a small private write burst, and one shared
// counter increment (the conflict hotspot and the lost-update probe).
// With eager subscription the lock line joins the read set on top of
// this; lazy keeps it out, so the two modes sit one line apart on the
// read-capacity axis — exactly the asymmetric read/write-set tradeoff
// the FORTH proposals target.
const (
	lazyReadLines  = 20
	lazyWriteLines = 5
)

// LazyPoint is one measured point of the subscription sweep.
type LazyPoint struct {
	Mode       string  `json:"mode"`
	ReadCap    int     `json:"read_cap"`
	WriteCap   int     `json:"write_cap"`
	Throughput float64 `json:"ops_per_mcycle"`
	SpecFrac   float64 `json:"spec_frac"`
	Aborts     uint64  `json:"aborts"`
	LockLine   uint64  `json:"lock_line"`
	Subscr     uint64  `json:"subscription"`
	CapRead    uint64  `json:"cap_read"`
	CapWrite   uint64  `json:"cap_write"`
	Lost       int64   `json:"lost"`
}

// LazyBench is the recorded result of one subscription sweep.
type LazyBench struct {
	Threads int         `json:"threads"`
	Quick   bool        `json:"quick"`
	Points  []LazyPoint `json:"points"`
}

// ExtLazy sweeps eager vs naive-lazy vs fixed-lazy subscription across a
// grid of asymmetric read/write-set capacity limits, with full abort
// attribution per point. The interesting cells: at a read cap of
// lazyReadLines+2 every mode fits; one line tighter the eager mode's
// lock-line subscription no longer fits and it serializes while lazy
// still speculates; a write cap below the write footprint serializes
// everyone (the lock word is elided, not written, so lazy buys nothing
// on the write axis).
func ExtLazy(o Options) []*stats.Table {
	_, tables := LazySweep(o)
	return tables
}

// LazySweep runs the subscription sweep and returns both the structured
// record and the rendered tables.
func LazySweep(o Options) (*LazyBench, []*stats.Table) {
	o = o.withDefaults()
	readCaps := []int{lazyReadLines + 1, lazyReadLines + 4, 32}
	writeCaps := []int{4, lazyWriteLines + 1, 8}
	ops := 300
	if o.Quick {
		readCaps = []int{lazyReadLines + 1, 32}
		writeCaps = []int{4, 8}
		ops = 100
	}

	type point struct {
		throughput float64
		spec       float64
		aborts     uint64
		lockLine   uint64
		subscr     uint64
		capRead    uint64
		capWrite   uint64
		lost       int64
		col        *obs.Collector
	}
	type coord struct{ mi, ri, wi int }
	var coords []coord
	for mi := range lazyModes {
		for ri := range readCaps {
			for wi := range writeCaps {
				coords = append(coords, coord{mi, ri, wi})
			}
		}
	}
	points := make([]point, len(coords))

	harness.ParallelFor(o.Parallel, len(coords), func(i int) {
		c := coords[i]
		mode := lazyModes[c.mi]
		cfg := tsx.DefaultConfig(o.Threads)
		cfg.Seed = harness.DeriveSeed(o.Seed, c.mi, c.ri, c.wi)
		cfg.MemWords = 1 << 16
		cfg = hwext.LimitSets(cfg, readCaps[c.ri], writeCaps[c.wi])
		switch mode {
		case "lazy-naive":
			cfg = hwext.EnableLazyNaive(cfg)
		case "lazy-fixed":
			cfg = hwext.EnableLazyFixed(cfg)
		}
		popts := obs.Options{}
		if o.Profile != nil {
			popts = *o.Profile
		}
		col := obs.New(popts)
		col.SetLabel(fmt.Sprintf("%s r%d w%d", mode, readCaps[c.ri], writeCaps[c.wi]))
		cfg.Observer = col
		m := tsx.NewMachine(cfg)

		var scheme core.Scheme
		var shared, counter mem.Addr
		var priv [8 * 16]mem.Addr
		m.RunOne(func(th *tsx.Thread) {
			lock := locks.NewTTAS(th)
			shared = th.AllocLines(lazyReadLines * mem.LineWords)
			for id := 0; id < o.Threads; id++ {
				priv[id] = th.AllocLines(lazyWriteLines * mem.LineWords)
			}
			counter = th.AllocLines(1)
			if mode == "eager" {
				scheme = core.NewHLE(lock)
			} else {
				scheme = core.NewHLELazy(lock)
			}
		})
		threads := m.Run(o.Threads, func(th *tsx.Thread) {
			scheme.Setup(th)
			mine := priv[th.ID]
			for op := 0; op < ops; op++ {
				scheme.Run(th, func() {
					var sum uint64
					for l := 0; l < lazyReadLines; l++ {
						sum += th.Load(shared + mem.Addr(l*mem.LineWords))
					}
					for l := 0; l < lazyWriteLines; l++ {
						th.Store(mine+mem.Addr(l*mem.LineWords), sum+uint64(op))
					}
					th.Store(counter, th.Load(counter)+1)
				})
			}
		})

		var engineAborts uint64
		var maxClock uint64
		for _, th := range threads {
			for _, n := range th.Stats.Aborted {
				engineAborts += n
			}
			if th.Clock() > maxClock {
				maxClock = th.Clock()
			}
		}
		var got uint64
		m.RunOne(func(th *tsx.Thread) { got = th.Load(counter) })
		expected := uint64(o.Threads * ops)
		lost := int64(expected) - int64(got)
		if lost != 0 && mode != "lazy-naive" {
			panic(fmt.Sprintf("figures: ext-lazy %s r%d w%d: %d lost updates under a safe mode",
				mode, readCaps[c.ri], writeCaps[c.wi], lost))
		}

		prof := col.Profile()
		prof.EngineAborts = engineAborts
		checkAttribution(fmt.Sprintf("ext-lazy %s r%d w%d", mode, readCaps[c.ri], writeCaps[c.wi]), prof)

		st := scheme.TotalStats()
		points[i] = point{
			throughput: float64(expected) / (float64(maxClock) / 1e6),
			spec:       float64(st.Spec) / float64(st.Ops),
			aborts:     prof.TotalAborts,
			lockLine:   prof.Cause(obs.ClassConflictLockLine),
			subscr:     prof.Cause(obs.ClassSubscription),
			capRead:    prof.Cause(obs.ClassCapacityRead),
			capWrite:   prof.Cause(obs.ClassCapacityWrite),
			lost:       lost,
			col:        col,
		}
		harness.NotePoint()
	})

	bench := &LazyBench{Threads: o.Threads, Quick: o.Quick}
	tb := &stats.Table{
		Title: fmt.Sprintf("Extension — lock subscription mode × read/write-set capacity (TTAS, %d threads, CS reads %d lines / writes %d)",
			o.Threads, lazyReadLines, lazyWriteLines),
		Header: []string{"mode", "rcap", "wcap", "ops/Mc", "spec frac",
			"aborts", "lock-line", "subscription", "cap-read", "cap-write", "lost"},
	}
	for i, c := range coords {
		p := points[i]
		bench.Points = append(bench.Points, LazyPoint{
			Mode: lazyModes[c.mi], ReadCap: readCaps[c.ri], WriteCap: writeCaps[c.wi],
			Throughput: p.throughput, SpecFrac: p.spec,
			Aborts: p.aborts, LockLine: p.lockLine, Subscr: p.subscr,
			CapRead: p.capRead, CapWrite: p.capWrite, Lost: p.lost,
		})
		tb.AddRow(lazyModes[c.mi],
			stats.I(readCaps[c.ri]), stats.I(writeCaps[c.wi]),
			stats.F2(p.throughput), stats.F3(p.spec),
			stats.I(int(p.aborts)), stats.I(int(p.lockLine)), stats.I(int(p.subscr)),
			stats.I(int(p.capRead)), stats.I(int(p.capWrite)),
			stats.I(int(p.lost)))
	}
	if o.Profile != nil {
		for i, c := range coords {
			o.emitProfile(fmt.Sprintf("%s/r%d/w%d",
				lazyModes[c.mi], readCaps[c.ri], writeCaps[c.wi]), points[i].col)
		}
	}
	return bench, []*stats.Table{tb}
}
