package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/stamp"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// stampSchemes is the §5.3 matrix for one lock, in Figure 5.4's order.
func stampSchemes(lock string) []harness.SchemeSpec {
	return []harness.SchemeSpec{
		{Scheme: "Standard", Lock: lock},
		{Scheme: "HLE", Lock: lock},
		{Scheme: "HLE-SCM", Lock: lock},
		{Scheme: "Pes-SLR", Lock: lock},
		{Scheme: "Opt-SLR", Lock: lock},
		{Scheme: "Opt-SLR-SCM", Lock: lock},
	}
}

// Fig54 reproduces Figure 5.4: for each STAMP application, the runtime of
// every scheme normalized to the plain non-speculative lock (panes a and
// b), plus execution attempts per critical section and the non-speculative
// fraction (panes c and d).
func Fig54(o Options) []*stats.Table {
	o = o.withDefaults()
	var tables []*stats.Table
	for _, lock := range []string{"TTAS", "MCS"} {
		timeTb := &stats.Table{
			Title: fmt.Sprintf("Fig 5.4(a/b) — STAMP runtime normalized to the standard %s lock, %d threads",
				lock, o.Threads),
			Header: []string{"test", "HLE", "HLE-SCM", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM"},
		}
		attTb := &stats.Table{
			Title:  fmt.Sprintf("Fig 5.4(c/d) — STAMP attempts per critical section, %s lock", lock),
			Header: []string{"test", "HLE", "HLE-SCM", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM"},
		}
		nsTb := &stats.Table{
			Title:  fmt.Sprintf("Fig 5.4(c/d) — STAMP non-speculative fraction, %s lock", lock),
			Header: []string{"test", "HLE", "HLE-SCM", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM"},
		}
		for _, app := range stamp.Apps() {
			results := map[string]stamp.Result{}
			for _, spec := range stampSchemes(lock) {
				cfg := tsx.DefaultConfig(o.Threads)
				cfg.Seed = o.Seed
				cfg.MemWords = 1 << 19
				res, err := stamp.Run(cfg, spec, app.Make, o.Threads)
				if err != nil {
					panic(fmt.Sprintf("figures: %s under %v failed validation: %v", app.Name, spec, err))
				}
				results[spec.Scheme] = res
			}
			base := float64(results["Standard"].Runtime)
			timeTb.AddRow(app.Name,
				stats.F2(float64(results["HLE"].Runtime)/base),
				stats.F2(float64(results["HLE-SCM"].Runtime)/base),
				stats.F2(float64(results["Pes-SLR"].Runtime)/base),
				stats.F2(float64(results["Opt-SLR"].Runtime)/base),
				stats.F2(float64(results["Opt-SLR-SCM"].Runtime)/base))
			attTb.AddRow(app.Name,
				stats.F2(results["HLE"].Ops.AttemptsPerOp()),
				stats.F2(results["HLE-SCM"].Ops.AttemptsPerOp()),
				stats.F2(results["Pes-SLR"].Ops.AttemptsPerOp()),
				stats.F2(results["Opt-SLR"].Ops.AttemptsPerOp()),
				stats.F2(results["Opt-SLR-SCM"].Ops.AttemptsPerOp()))
			nsTb.AddRow(app.Name,
				stats.F3(results["HLE"].Ops.NonSpecFraction()),
				stats.F3(results["HLE-SCM"].Ops.NonSpecFraction()),
				stats.F3(results["Pes-SLR"].Ops.NonSpecFraction()),
				stats.F3(results["Opt-SLR"].Ops.NonSpecFraction()),
				stats.F3(results["Opt-SLR-SCM"].Ops.NonSpecFraction()))
		}
		tables = append(tables, timeTb, attTb, nsTb)
	}
	return tables
}
