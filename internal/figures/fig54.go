package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/stamp"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// stampSchemes is the §5.3 matrix for one lock, in Figure 5.4's order.
func stampSchemes(lock string) []harness.SchemeSpec {
	return []harness.SchemeSpec{
		{Scheme: "Standard", Lock: lock},
		{Scheme: "HLE", Lock: lock},
		{Scheme: "HLE-SCM", Lock: lock},
		{Scheme: "Pes-SLR", Lock: lock},
		{Scheme: "Opt-SLR", Lock: lock},
		{Scheme: "Opt-SLR-SCM", Lock: lock},
	}
}

// Fig54 reproduces Figure 5.4: for each STAMP application, the runtime of
// every scheme normalized to the plain non-speculative lock (panes a and
// b), plus execution attempts per critical section and the non-speculative
// fraction (panes c and d).
func Fig54(o Options) []*stats.Table {
	o = o.withDefaults()
	locks := []string{"TTAS", "MCS"}
	apps := stamp.Apps()

	// Flatten (lock × app × scheme) into independent points: stamp.Run
	// builds a fresh machine per call, so each point is self-contained.
	type stampPoint struct {
		lock, app int
		spec      harness.SchemeSpec
	}
	var pts []stampPoint
	for li := range locks {
		for ai := range apps {
			for _, spec := range stampSchemes(locks[li]) {
				pts = append(pts, stampPoint{li, ai, spec})
			}
		}
	}
	results := make([]stamp.Result, len(pts))
	cols := make([]*obs.Collector, len(pts))
	harness.ParallelFor(o.Parallel, len(pts), func(i int) {
		p := pts[i]
		cfg := tsx.DefaultConfig(o.Threads)
		cfg.Seed = o.Seed
		cfg.MemWords = 1 << 19
		cols[i] = o.attachProfile(&cfg, p.spec.String())
		res, err := stamp.Run(cfg, p.spec, apps[p.app].Make, o.Threads)
		if err != nil {
			panic(fmt.Sprintf("figures: %s under %v failed validation: %v", apps[p.app].Name, p.spec, err))
		}
		results[i] = res
		harness.NotePoint()
	})
	for i, p := range pts {
		o.emitProfile(fmt.Sprintf("%s/%s/%s", locks[p.lock], apps[p.app].Name, p.spec.Scheme), cols[i])
	}
	byKey := map[[2]int]map[string]stamp.Result{}
	for i, p := range pts {
		key := [2]int{p.lock, p.app}
		if byKey[key] == nil {
			byKey[key] = map[string]stamp.Result{}
		}
		byKey[key][p.spec.Scheme] = results[i]
	}

	var tables []*stats.Table
	for li, lock := range locks {
		timeTb := &stats.Table{
			Title: fmt.Sprintf("Fig 5.4(a/b) — STAMP runtime normalized to the standard %s lock, %d threads",
				lock, o.Threads),
			Header: []string{"test", "HLE", "HLE-SCM", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM"},
		}
		attTb := &stats.Table{
			Title:  fmt.Sprintf("Fig 5.4(c/d) — STAMP attempts per critical section, %s lock", lock),
			Header: []string{"test", "HLE", "HLE-SCM", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM"},
		}
		nsTb := &stats.Table{
			Title:  fmt.Sprintf("Fig 5.4(c/d) — STAMP non-speculative fraction, %s lock", lock),
			Header: []string{"test", "HLE", "HLE-SCM", "Pes-SLR", "Opt-SLR", "Opt-SLR-SCM"},
		}
		for ai, app := range apps {
			results := byKey[[2]int{li, ai}]
			base := float64(results["Standard"].Runtime)
			timeTb.AddRow(app.Name,
				stats.F2(float64(results["HLE"].Runtime)/base),
				stats.F2(float64(results["HLE-SCM"].Runtime)/base),
				stats.F2(float64(results["Pes-SLR"].Runtime)/base),
				stats.F2(float64(results["Opt-SLR"].Runtime)/base),
				stats.F2(float64(results["Opt-SLR-SCM"].Runtime)/base))
			attTb.AddRow(app.Name,
				stats.F2(results["HLE"].Ops.AttemptsPerOp()),
				stats.F2(results["HLE-SCM"].Ops.AttemptsPerOp()),
				stats.F2(results["Pes-SLR"].Ops.AttemptsPerOp()),
				stats.F2(results["Opt-SLR"].Ops.AttemptsPerOp()),
				stats.F2(results["Opt-SLR-SCM"].Ops.AttemptsPerOp()))
			nsTb.AddRow(app.Name,
				stats.F3(results["HLE"].Ops.NonSpecFraction()),
				stats.F3(results["HLE-SCM"].Ops.NonSpecFraction()),
				stats.F3(results["Pes-SLR"].Ops.NonSpecFraction()),
				stats.F3(results["Opt-SLR"].Ops.NonSpecFraction()),
				stats.F3(results["Opt-SLR-SCM"].Ops.NonSpecFraction()))
		}
		tables = append(tables, timeTb, attTb, nsTb)
	}
	return tables
}
