package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/stats"
)

// adaptStatics are the static schemes the adaptive controller's three
// levels correspond to: RTM-LE is the Elide rung, HLE-SCM the SCM rung,
// and Pes-SLR the Serial floor (one speculative probe, then the lock).
var adaptStatics = []string{"RTM-LE", "HLE-SCM", "Pes-SLR"}

// ExtAdapt sweeps the adaptive scheme against its static rungs across tree
// sizes — the contention axis of Figure 3.1, where the best static choice
// flips: small trees avalanche (SCM or the serial floor win) while large
// trees reward full elision, and MCS elision is avalanche-bound at every
// size. A controller that picks its level from the abort profile alone
// should track the best static scheme at both ends without knowing the
// workload; the table reports each point's throughput, the best static,
// the adaptive-to-best ratio, and the controller's transition count (from
// its decision log, which -profile also surfaces per point).
func ExtAdapt(o Options) []*stats.Table {
	o = o.withDefaults()
	sizes := []int{8, 64, 512, 4096, 32768}
	if o.Quick {
		sizes = []int{8, 512, 32768}
	}
	locks := []string{"TTAS", "MCS"}

	// One warm template per size, shared by both locks' points.
	templates := make([]*harness.WarmTemplate, len(sizes))
	for si, size := range sizes {
		size := size
		templates[si] = &harness.WarmTemplate{
			Machine: machineCfg(o, size),
			MkWorkload: func(t *tsxThread) harness.Workload {
				return harness.NewRBTree(t, size, harness.MixModerate)
			},
		}
	}

	schemes := append(append([]string{}, adaptStatics...), "Adaptive")
	type coord struct{ si, li, ki int }
	var points []harness.PointSpec
	var coords []coord
	for si := range sizes {
		for li, lock := range locks {
			for ki, scheme := range schemes {
				cfg := harness.Config{Threads: o.Threads, CycleBudget: o.Budget, Warmup: o.Budget}
				cfg.Profile = o.Profile
				if scheme == "Adaptive" && cfg.Profile == nil {
					// The transition count comes from the profile's
					// controller log; attach a collector even when the
					// figure run is not profiling. Collection is passive,
					// so the measured numbers are unchanged.
					cfg.Profile = &obs.Options{}
				}
				points = append(points, harness.PointSpec{
					Warm:   templates[si],
					Scheme: harness.SchemeSpec{Scheme: scheme, Lock: lock},
					Seed:   harness.DeriveSeed(o.Seed, si, li, ki),
					Runs:   o.Runs,
					Cfg:    cfg,
				})
				coords = append(coords, coord{si, li, ki})
			}
		}
	}
	results := harness.RunPoints(o.Parallel, points)
	if o.Profile != nil && o.ProfileSink != nil {
		for pi, r := range results {
			if r.Profile != nil {
				c := coords[pi]
				o.ProfileSink(fmt.Sprintf("size%d/%s %s", sizes[c.si], schemes[c.ki], locks[c.li]), r.Profile)
			}
		}
	}

	byPoint := make(map[coord]harness.Result, len(results))
	for pi, r := range results {
		byPoint[coords[pi]] = r
	}

	tb := &stats.Table{
		Title: fmt.Sprintf("Extension — adaptive controller vs static rungs, ops/Mcycle across tree sizes, 10/10/80, %d threads",
			o.Threads),
		Header: []string{"tree size", "lock", "RTM-LE", "HLE-SCM", "Pes-SLR",
			"Adaptive", "best static", "adapt/best", "switches"},
	}
	for si, size := range sizes {
		for li, lock := range locks {
			best, bestName := 0.0, ""
			row := []string{stats.U(uint64(size)), lock}
			for ki, scheme := range schemes[:len(adaptStatics)] {
				tput := byPoint[coord{si, li, ki}].Throughput
				row = append(row, stats.F2(tput))
				if tput > best {
					best, bestName = tput, scheme
				}
			}
			ad := byPoint[coord{si, li, len(adaptStatics)}]
			row = append(row, stats.F2(ad.Throughput), bestName)
			ratio := 0.0
			if best > 0 {
				ratio = ad.Throughput / best
			}
			switches := 0
			if ad.Profile != nil {
				switches = len(ad.Profile.Controller)
			}
			row = append(row, stats.F2(ratio), stats.I(switches))
			tb.AddRow(row...)
		}
	}
	return []*stats.Table{tb}
}
