// Package figures regenerates every table and figure of the paper's
// evaluation. Each generator runs the same workloads the paper describes on
// the simulated machine and prints the same rows/series the paper reports.
// Absolute numbers differ (the substrate is a simulator, not the authors'
// Core i7-4770), but the shapes — who wins, by roughly what factor, where
// crossovers fall — are the reproduction targets; EXPERIMENTS.md records
// paper-vs-measured for each.
package figures

import (
	"fmt"
	"io"
	"runtime"

	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// Options controls experiment scale.
type Options struct {
	// Threads is the worker count for the multi-threaded figures
	// (default 8, the paper's machine).
	Threads int
	// Budget is the virtual-cycle budget per measurement (default 2M).
	Budget uint64
	// Runs averages each measurement over this many repetitions (the
	// paper averages 10 runs per point). Default 2, or 1 in quick mode.
	Runs int
	// Quick shrinks sweeps for fast smoke runs.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Parallel is the number of host workers experiment points fan out
	// across (default GOMAXPROCS). Results are independent of this value:
	// every point runs on its own (cloned or fresh) machine with a seed
	// derived from its declared coordinates, and output is assembled in
	// declaration order.
	Parallel int
	// Profile, when non-nil, attaches a profiling collector (internal/obs)
	// to every experiment point the figure runs. Each point owns a private
	// collector on its own machine, so profiling composes with Parallel
	// without races, and collection is passive — the simulated runs and
	// the figure's tables are byte-identical with profiling on or off.
	Profile *obs.Options
	// ProfileSink receives each point's profile, named by the point's
	// coordinates within the figure (e.g. "g0/HLE MCS"). Points are
	// delivered in declaration order regardless of Parallel, so sink
	// output is deterministic. Ignored when Profile is nil.
	ProfileSink func(name string, p *obs.Profile)
}

func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = 8
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Budget == 0 {
		o.Budget = 1_500_000
		if o.Quick {
			o.Budget = 500_000
		}
	}
	if o.Runs == 0 {
		o.Runs = 2
		if o.Quick {
			o.Runs = 1
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// attachProfile installs a fresh collector on cfg when profiling is on,
// for figures that build machines directly instead of going through the
// harness pool. Returns nil when profiling is off.
func (o Options) attachProfile(cfg *tsx.Config, label string) *obs.Collector {
	if o.Profile == nil {
		return nil
	}
	col := obs.New(*o.Profile)
	col.SetLabel(label)
	cfg.Observer = col
	return col
}

// emitProfile delivers one directly-collected profile to the sink.
func (o Options) emitProfile(name string, col *obs.Collector) {
	if col == nil || o.ProfileSink == nil {
		return
	}
	o.ProfileSink(name, col.Profile())
}

// runPoints is harness.RunPoints with the figure's profiling wired in:
// each point collects under o.Profile, and profiles reach the sink in
// declaration order (named by name(i)) regardless of Parallel.
func (o Options) runPoints(points []harness.PointSpec, name func(i int) string) []harness.Result {
	for i := range points {
		points[i].Cfg.Profile = o.Profile
	}
	results := harness.RunPoints(o.Parallel, points)
	if o.ProfileSink != nil {
		for i, r := range results {
			if r.Profile != nil {
				o.ProfileSink(name(i), r.Profile)
			}
		}
	}
	return results
}

// Figure is one reproducible experiment.
type Figure struct {
	// ID is the paper's figure/table number ("2.1", "3.1", ... "5.4"),
	// or a chapter tag ("ch6", "ch7") or ablation name.
	ID string
	// Title describes the experiment.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(o Options) []*stats.Table
}

// All returns every figure generator in paper order.
func All() []Figure {
	return []Figure{
		{"2.1", "Transactional failure fraction vs read/write-set size (1 thread, no contention)", Fig21},
		{"3.1", "Avalanche effect: speedup, attempts/op, non-speculative fraction vs tree size (TTAS vs MCS)", Fig31},
		{"3.3", "Serialization dynamics over time (normalized throughput per slot)", Fig33},
		{"3.4", "HLE speedup over the standard lock, three contention levels", Fig34},
		{"3.5", "HLE-based vs RTM-based lock elision", Fig35},
		{"5.1", "Scheme scaling with thread count (128-node tree, moderate contention)", Fig51},
		{"5.2", "Scheme speedups over the plain-HLE baseline across tree sizes", Fig52},
		{"5.3", "Attempts/op and non-speculative fraction under 50/50 updates", Fig53},
		{"5.2ht", "Hash-table variant of the data-structure benchmark (§5.2)", FigHashTable},
		{"5.4", "STAMP: normalized runtime, attempts/op, non-speculative fraction", Fig54},
		{"ch6", "HLE-adjusted ticket and CLH locks behave like MCS (Chapter 6)", FigCh6},
		{"ch7", "Hardware extension vs HLE and HLE-SCM (Chapter 7)", FigCh7},
		{"abl-scm", "Ablation: SCM max-retries tuning (§5.1)", AblationSCMRetries},
		{"abl-spur", "Ablation: spurious-abort rate sensitivity (§2.2)", AblationSpurious},
		{"abl-multi", "Ablation: multi-group SCM (future-work remark, §4)", AblationMultiAux},
		{"abl-miss", "Ablation: cache-miss cost model sensitivity", AblationMissModel},
		{"abl-backoff", "Ablation: backoff damping vs SCM prevention (Ch. 8 contrast)", AblationBackoff},
		{"profiles", "Workload transaction profiles (STAMP characterization evidence)", FigProfiles},
		{"ext-scale", "Extension: scaling beyond the paper's 8 threads", ExtScaling},
		{"ext-cslen", "Extension: critical-section length sensitivity", ExtCSLength},
		{"ext-stamp", "Extension: capacity-bound STAMP workload (labyrinth)", ExtStamp},
		{"ext-chaos", "Extension: chaos soak — fault injection under watchdogs, serializability-checked", ExtChaos},
		{"ext-adapt", "Extension: adaptive per-lock controller vs static schemes across contention", ExtAdapt},
		{"ext-shard", "Extension: sharded elided store under internet-shaped traffic (skew, storms, tenants)", ExtShard},
		{"ext-place", "Extension: allocator placement policy ablation with heatmap-driven auto-pad", ExtPlace},
		{"ext-lazy", "Extension: lazy lock subscription — eager vs naive vs fixed across capacity limits", ExtLazy},
	}
}

// ByID returns the figure with the given ID, or nil.
func ByID(id string) *Figure {
	for _, f := range All() {
		if f.ID == id {
			fig := f
			return &fig
		}
	}
	return nil
}

// RunAll executes every figure and writes the tables to w.
func RunAll(w io.Writer, o Options) {
	for _, f := range All() {
		fmt.Fprintf(w, "\n### Figure %s — %s\n\n", f.ID, f.Title)
		for _, tb := range f.Run(o) {
			tb.Fprint(w)
			fmt.Fprintln(w)
		}
	}
}

// treeSizes returns the paper's x axis (Figure 3.1 etc.).
func treeSizes(o Options) []int {
	if o.Quick {
		return []int{8, 128, 2048, 32768}
	}
	return []int{2, 8, 32, 128, 512, 2048, 8192, 32768, 131072, 524288}
}

// machineCfg builds the simulated-machine config for a data-structure
// experiment of the given element count.
func machineCfg(o Options, elems int) tsx.Config {
	cfg := tsx.DefaultConfig(o.Threads)
	cfg.Seed = o.Seed
	words := elems*16 + 1<<16
	cfg.MemWords = words
	return cfg
}

// dsGroup declares one populated data structure and the schemes to measure
// on it. A figure declares all its groups up front; dsRunGroups builds each
// group's machine once, then fans the (group × scheme) points out across
// host workers, every point on its own clone.
type dsGroup struct {
	size    int
	mix     harness.Mix
	mk      func(t *tsx.Thread, size int, mix harness.Mix) harness.Workload
	specs   []harness.SchemeSpec
	threads int
	// mcfg overrides the machine configuration (default machineCfg(o, size)).
	mcfg *tsx.Config
	// rcfg overrides the run configuration (default: threads, Budget
	// measured cycles after a Budget warmup — the paper's 3-second runs
	// measure the post-avalanche steady state, so the trigger transient is
	// skipped).
	rcfg *harness.Config
	// runs overrides Options.Runs for this group's points.
	runs int
}

// dsRunGroups measures every group's schemes and returns one result map per
// group, indexed as declared. Each group declares one warm template —
// population dominates cost for large sizes, so sibling points share it:
// the first point to need a group populates it and captures a checkpoint,
// every later point forks the checkpoint, and each point is reseeded from
// its coordinates. Within a point, repetitions reuse the fork: memory state
// persists, so they sample different phases of the (metastable) avalanche
// dynamics, as the paper's "average on 10 runs" does.
func dsRunGroups(o Options, groups []dsGroup) []map[string]harness.Result {
	templates := make([]*harness.WarmTemplate, len(groups))
	for gi, g := range groups {
		cfg := machineCfg(o, g.size)
		if g.mcfg != nil {
			cfg = *g.mcfg
		}
		g := g
		templates[gi] = &harness.WarmTemplate{
			Machine: cfg,
			MkWorkload: func(t *tsx.Thread) harness.Workload {
				return g.mk(t, g.size, g.mix)
			},
		}
	}

	var points []harness.PointSpec
	var coords [][2]int
	for gi, g := range groups {
		cfg := harness.Config{Threads: g.threads, CycleBudget: o.Budget, Warmup: o.Budget}
		if g.rcfg != nil {
			cfg = *g.rcfg
		}
		runs := g.runs
		if runs == 0 {
			runs = o.Runs
		}
		for si := range g.specs {
			points = append(points, harness.PointSpec{
				Warm:   templates[gi],
				Scheme: g.specs[si],
				Seed:   harness.DeriveSeed(o.Seed, gi, si),
				Runs:   runs,
				Cfg:    cfg,
			})
			coords = append(coords, [2]int{gi, si})
		}
	}
	results := o.runPoints(points, func(pi int) string {
		gi, si := coords[pi][0], coords[pi][1]
		return fmt.Sprintf("g%d/%s", gi, groups[gi].specs[si].String())
	})

	out := make([]map[string]harness.Result, len(groups))
	for gi, g := range groups {
		out[gi] = make(map[string]harness.Result, len(g.specs))
	}
	for pi, r := range results {
		gi, si := coords[pi][0], coords[pi][1]
		out[gi][groups[gi].specs[si].String()] = r
	}
	return out
}

func mkRBTree(t *tsx.Thread, size int, mix harness.Mix) harness.Workload {
	return harness.NewRBTree(t, size, mix)
}

func mkHashTable(t *tsx.Thread, size int, mix harness.Mix) harness.Workload {
	return harness.NewHashTable(t, size, mix)
}
