package figures

import (
	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/stamp"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// FigProfiles characterizes every workload's committed transactions — mean
// accesses, read-set lines, and write-set lines — the evidence that the
// re-implemented STAMP applications match the published STAMP
// characterization (vacation long transactions, kmeans tiny ones, ssca2
// minimal sets) and that the data-structure benchmarks span the intended
// spectrum.
func FigProfiles(o Options) []*stats.Table {
	o = o.withDefaults()
	tb := &stats.Table{
		Title:  "Workload transaction profiles (committed transactions under Opt-SLR, 8 threads)",
		Header: []string{"workload", "mean accesses", "read lines", "write lines", "attempts/op"},
	}

	spec := harness.SchemeSpec{Scheme: "Opt-SLR", Lock: "TTAS"}

	// STAMP applications, one independent point each.
	apps := stamp.Apps()
	stampRes := make([]stamp.Result, len(apps))
	cols := make([]*obs.Collector, len(apps))
	harness.ParallelFor(o.Parallel, len(apps), func(ai int) {
		cfg := tsx.DefaultConfig(o.Threads)
		cfg.Seed = o.Seed
		cfg.MemWords = 1 << 19
		cols[ai] = o.attachProfile(&cfg, spec.String())
		res, err := stamp.Run(cfg, spec, apps[ai].Make, o.Threads)
		if err != nil {
			panic(err)
		}
		stampRes[ai] = res
		harness.NotePoint()
	})
	for ai, app := range apps {
		o.emitProfile("stamp/"+app.Name, cols[ai])
	}
	for ai, app := range apps {
		res := stampRes[ai]
		tb.AddRow(app.Name,
			stats.F2(res.TSX.MeanAccesses()),
			stats.F2(res.TSX.MeanReadLines()),
			stats.F2(res.TSX.MeanWriteLines()),
			stats.F2(res.Ops.AttemptsPerOp()))
	}

	// Data-structure benchmarks at two sizes (plus a hash table) for
	// context.
	groups := []dsGroup{
		{size: 128, mix: harness.MixModerate, mk: mkRBTree, threads: o.Threads, specs: []harness.SchemeSpec{spec}},
		{size: 32768, mix: harness.MixModerate, mk: mkRBTree, threads: o.Threads, specs: []harness.SchemeSpec{spec}},
		{size: 1024, mix: harness.MixModerate, mk: mkHashTable, threads: o.Threads, specs: []harness.SchemeSpec{spec}},
	}
	labels := []string{"rbtree-" + stats.SizeLabel(128), "rbtree-" + stats.SizeLabel(32768), "hashtable-1K"}
	for gi, resByScheme := range dsRunGroups(o, groups) {
		res := resByScheme[spec.String()]
		tb.AddRow(labels[gi],
			stats.F2(res.TSX.MeanAccesses()),
			stats.F2(res.TSX.MeanReadLines()),
			stats.F2(res.TSX.MeanWriteLines()),
			stats.F2(res.Ops.AttemptsPerOp()))
	}

	return []*stats.Table{tb}
}
