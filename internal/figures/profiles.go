package figures

import (
	"hle/internal/harness"
	"hle/internal/stamp"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// FigProfiles characterizes every workload's committed transactions — mean
// accesses, read-set lines, and write-set lines — the evidence that the
// re-implemented STAMP applications match the published STAMP
// characterization (vacation long transactions, kmeans tiny ones, ssca2
// minimal sets) and that the data-structure benchmarks span the intended
// spectrum.
func FigProfiles(o Options) []*stats.Table {
	o = o.withDefaults()
	tb := &stats.Table{
		Title:  "Workload transaction profiles (committed transactions under Opt-SLR, 8 threads)",
		Header: []string{"workload", "mean accesses", "read lines", "write lines", "attempts/op"},
	}

	// STAMP applications.
	for _, app := range stamp.Apps() {
		cfg := tsx.DefaultConfig(o.Threads)
		cfg.Seed = o.Seed
		cfg.MemWords = 1 << 19
		res, err := stamp.Run(cfg, harness.SchemeSpec{Scheme: "Opt-SLR", Lock: "TTAS"}, app.Make, o.Threads)
		if err != nil {
			panic(err)
		}
		tb.AddRow(app.Name,
			stats.F2(res.TSX.MeanAccesses()),
			stats.F2(res.TSX.MeanReadLines()),
			stats.F2(res.TSX.MeanWriteLines()),
			stats.F2(res.Ops.AttemptsPerOp()))
	}

	// Data-structure benchmarks at two sizes for context.
	for _, size := range []int{128, 32768} {
		res := dsRun(o, size, harness.MixModerate, mkRBTree,
			[]harness.SchemeSpec{{Scheme: "Opt-SLR", Lock: "TTAS"}}, o.Threads)["Opt-SLR TTAS"]
		tb.AddRow("rbtree-"+stats.SizeLabel(size),
			stats.F2(res.TSX.MeanAccesses()),
			stats.F2(res.TSX.MeanReadLines()),
			stats.F2(res.TSX.MeanWriteLines()),
			stats.F2(res.Ops.AttemptsPerOp()))
	}
	res := dsRun(o, 1024, harness.MixModerate, mkHashTable,
		[]harness.SchemeSpec{{Scheme: "Opt-SLR", Lock: "TTAS"}}, o.Threads)["Opt-SLR TTAS"]
	tb.AddRow("hashtable-1K",
		stats.F2(res.TSX.MeanAccesses()),
		stats.F2(res.TSX.MeanReadLines()),
		stats.F2(res.TSX.MeanWriteLines()),
		stats.F2(res.Ops.AttemptsPerOp()))

	return []*stats.Table{tb}
}
