package figures

import (
	"fmt"

	"hle/internal/harness"
	"hle/internal/obs"
	"hle/internal/stamp"
	"hle/internal/stats"
	"hle/internal/tsx"
)

// ExtStamp runs the extension STAMP workloads (labyrinth) across schemes.
// Labyrinth copies the maze inside each transaction, so on large grids its
// write set overflows the L1 and every speculative attempt dies on
// capacity. Two findings beyond the paper: (1) on the overflowing grid all
// schemes converge to the serialized fallback — speculation buys nothing —
// and (2) HLE-SCM is actively *harmful* there, because Algorithm 3 retries
// MaxRetries times without consulting the abort status, burning full-length
// doomed transactions; SLR's §5.1 tuning (give up when the status says the
// transaction cannot succeed) sidesteps exactly this. Likely why the
// paper's evaluation omits labyrinth.
func ExtStamp(o Options) []*stats.Table {
	o = o.withDefaults()
	var tables []*stats.Table
	apps := []struct {
		Name string
		Make func(t *tsx.Thread) stamp.App
	}{
		// 40x40 = 200 write-set lines: fits the 512-line L1, speculates.
		{"labyrinth-small", func(t *tsx.Thread) stamp.App { return stamp.NewLabyrinth(40, 40, 16) }},
		// 72x72 = 648 write-set lines: overflows, every speculative
		// attempt dies on capacity, schemes converge on the fallback.
		{"labyrinth-large", func(t *tsx.Thread) stamp.App { return stamp.NewLabyrinth(72, 72, 12) }},
		// The other two STAMP members the paper omits.
		{"yada", func(t *tsx.Thread) stamp.App { return stamp.NewYada(90) }},
		{"bayes", func(t *tsx.Thread) stamp.App { return stamp.NewBayes(48, 96) }},
	}
	specs := []harness.SchemeSpec{
		{Scheme: "Standard", Lock: "TTAS"},
		{Scheme: "HLE", Lock: "TTAS"},
		{Scheme: "HLE-SCM", Lock: "TTAS"},
		{Scheme: "Opt-SLR", Lock: "TTAS"},
	}
	results := make([]stamp.Result, len(apps)*len(specs))
	cols := make([]*obs.Collector, len(results))
	harness.ParallelFor(o.Parallel, len(results), func(i int) {
		app, spec := apps[i/len(specs)], specs[i%len(specs)]
		cfg := tsx.DefaultConfig(o.Threads)
		cfg.Seed = o.Seed
		cfg.MemWords = 1 << 19
		cols[i] = o.attachProfile(&cfg, spec.String())
		res, err := stamp.Run(cfg, spec, app.Make, o.Threads)
		if err != nil {
			panic(fmt.Sprintf("figures: %s under %v: %v", app.Name, spec, err))
		}
		results[i] = res
		harness.NotePoint()
	})
	for i := range cols {
		o.emitProfile(fmt.Sprintf("%s/%s", apps[i/len(specs)].Name, specs[i%len(specs)].Scheme), cols[i])
	}
	for ai, app := range apps {
		tb := &stats.Table{
			Title: fmt.Sprintf("Extension — STAMP %s, %d threads",
				app.Name, o.Threads),
			Header: []string{"scheme", "norm runtime", "attempts/op", "non-spec", "capacity aborts"},
		}
		base := float64(results[ai*len(specs)].Runtime) // Standard is spec 0
		for si, spec := range specs {
			res := results[ai*len(specs)+si]
			tb.AddRow(spec.Scheme,
				stats.F2(float64(res.Runtime)/base),
				stats.F2(res.Ops.AttemptsPerOp()),
				stats.F3(res.Ops.NonSpecFraction()),
				stats.U(res.TSX.Aborted[tsx.CauseCapacityRead]+res.TSX.Aborted[tsx.CauseCapacityWrite]))
		}
		tables = append(tables, tb)
	}
	return tables
}
